// Copyright (c) 2026 The SOS Authors. MIT License.
//
// E15 -- Pseudo-SLC write staging ablation (paper §4.4 extension: "new file
// data will first be written to high-endurance ... memory" and "the
// additional write overhead is tolerable"). Quantifies the tolerability:
// staging buys ~10x lower SYS write latency and shields pseudo-QLC from
// short-lived data, at the cost of extra migration writes and a slice of
// capacity held at 1 bit/cell.

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/sos/sos_device.h"

namespace sos {
namespace {

struct StagingOutcome {
  double mean_write_us = 0.0;
  double write_amp = 0.0;
  uint64_t capacity_pages = 0;
  uint64_t migrations = 0;
  double sys_mean_pec = 0.0;
};

// A bursty SYS workload: camera bursts and app updates, with idle gaps in
// which the stage flushes (the background migration of §4.4).
StagingOutcome RunWorkload(bool staging, double stage_share) {
  SosDeviceConfig config;
  config.nand.num_blocks = 128;
  config.nand.wordlines_per_block = 32;
  config.nand.page_size_bytes = 4096;
  config.nand.seed = 12;
  config.nand.store_payloads = false;
  config.enable_slc_staging = staging;
  config.stage_share = stage_share;
  SimClock clock;
  SosDevice device(config, &clock);

  StagingOutcome out;
  out.capacity_pages = device.capacity_blocks();

  Rng rng(13);
  const uint64_t lba_space = device.capacity_blocks() / 3;
  PlacementDirectory placements(&device);
  const PlacementHandle critical = placements.For({Durability::kCritical}).value();
  RunningStats write_latency;
  for (int burst = 0; burst < 120; ++burst) {
    // A burst of 48 pages (a ~12-shot camera burst at 16 KiB/page-cluster).
    for (int i = 0; i < 48; ++i) {
      const SimTimeUs before = clock.now();
      if (!device.Write(rng.NextBounded(lba_space), {}, critical).ok()) {
        break;
      }
      write_latency.Add(static_cast<double>(clock.now() - before));
    }
    // Idle gap: the host flushes the stage in the background. The flush
    // latency lands in the gap, not on the user's writes.
    if (staging) {
      // This bench injects no faults, so the only non-OK outcome here would
      // be a modeling bug -- which the tier-1 staging tests catch, not this
      // latency probe.
      IgnoreResult(device.FlushStage());
    }
    clock.Advance(kUsPerHour);
  }

  out.mean_write_us = write_latency.mean();
  out.write_amp = device.ftl().stats().WriteAmplification();
  out.migrations = device.ftl().stats().migrations();
  out.sys_mean_pec = device.SysSnapshot().mean_pec;
  return out;
}

void Run() {
  PrintBanner("E15", "Pseudo-SLC write staging ablation", "§4.4 (extension)");

  PrintSection("Bursty SYS workload: 120 bursts x 48 pages, hourly idle flushes");
  TextTable table({"configuration", "capacity (pages)", "mean write latency (us)",
                   "write amp", "stage->SYS migrations", "SYS mean PEC"});
  const StagingOutcome off = RunWorkload(false, 0.0);
  table.AddRow({"no staging (direct pQLC)", FormatCount(off.capacity_pages),
                FormatDouble(off.mean_write_us, 0), FormatDouble(off.write_amp, 2),
                FormatCount(off.migrations), FormatDouble(off.sys_mean_pec, 1)});
  for (double share : {0.04, 0.08, 0.12}) {
    const StagingOutcome on = RunWorkload(true, share);
    char name[64];
    std::snprintf(name, sizeof(name), "pSLC stage, %.0f%% of blocks", share * 100.0);
    table.AddRow({name, FormatCount(on.capacity_pages), FormatDouble(on.mean_write_us, 0),
                  FormatDouble(on.write_amp, 2), FormatCount(on.migrations),
                  FormatDouble(on.sys_mean_pec, 1)});
  }
  PrintTable(table);

  const StagingOutcome on = RunWorkload(true, 0.08);
  PrintSection("Summary");
  PrintClaim("SLC-speed foreground writes (tProg 200us vs 2200us pQLC)",
             FormatDouble(off.mean_write_us / on.mean_write_us, 1) + "x faster with staging");
  PrintClaim("cost: capacity held at 1 bit/cell",
             FormatPercent(1.0 - static_cast<double>(on.capacity_pages) /
                                     static_cast<double>(off.capacity_pages)) +
                 " of exported pages");
  PrintClaim("cost: background migration traffic ('tolerable', §4.4)",
             FormatDouble(on.write_amp, 2) + " WA vs " + FormatDouble(off.write_amp, 2));
}

}  // namespace
}  // namespace sos

int main(int argc, char** argv) {
  sos::FlagSet flags("bench_slc_staging", "E13: SLC staging / migration traffic");
  flags.ParseOrDie(argc, argv);
  sos::Run();
  return 0;
}
