// Copyright (c) 2026 The SOS Authors. MIT License.
//
// E13 -- Performance (§4.5): "PLC access speeds will likely suffice to the
// needs of SOS" because SPARE traffic is large sequential reads. Reports the
// modeled device-level latencies/throughput per technology, the latency mix
// a SOS device actually serves, and google-benchmark micro-benchmarks of the
// simulator itself (simulation throughput).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/flash/cell_tech.h"
#include "src/flash/nand_package.h"
#include "src/ftl/ftl.h"
#include "src/sos/sos_device.h"

namespace sos {
namespace {

void PrintLatencyTables() {
  PrintBanner("E13", "PLC performance suffices for SPARE traffic", "§4.5, [14][81]");

  PrintSection("Modeled device-level operation latencies");
  TextTable table({"tech", "tR (us)", "tProg (us)", "tErase (us)", "seq read MB/s (1 die)",
                   "seq write MB/s (1 die)"});
  constexpr double kPageKb = 4096.0;
  for (CellTech tech : {CellTech::kSlc, CellTech::kMlc, CellTech::kTlc, CellTech::kQlc,
                        CellTech::kPlc}) {
    const CellTechInfo& info = GetCellTechInfo(tech);
    const double read_mbps = kPageKb / static_cast<double>(info.read_latency_us);
    const double write_mbps = kPageKb / static_cast<double>(info.program_latency_us);
    table.AddRow({std::string(CellTechName(tech)), FormatCount(info.read_latency_us),
                  FormatCount(info.program_latency_us), FormatCount(info.erase_latency_us),
                  FormatDouble(read_mbps, 1), FormatDouble(write_mbps, 1)});
  }
  PrintTable(table);

  PrintSection("What a SOS device actually serves (measured on the simulator)");
  // Drive a SOS device with the SPARE access pattern the paper describes
  // (large sequential reads of demoted media) plus SYS app traffic, and
  // report mean served latency per class.
  SosDeviceConfig config;
  config.nand.num_blocks = 64;
  config.nand.wordlines_per_block = 16;
  config.nand.page_size_bytes = 4096;
  config.nand.store_payloads = false;
  SimClock clock;
  SosDevice device(config, &clock);
  // Lay down a media file on SPARE and app state on SYS.
  PlacementDirectory placements(&device);
  const PlacementHandle degradable = placements.For({Durability::kDegradable}).value();
  const PlacementHandle critical = placements.For({Durability::kCritical}).value();
  const uint64_t media_pages = 1024;  // soslint:allow(R10) page count, not a byte size
  for (uint64_t lba = 0; lba < media_pages; ++lba) {
    IgnoreResult(device.Write(lba, {}, degradable));
  }
  for (uint64_t lba = media_pages; lba < media_pages + 256; ++lba) {
    IgnoreResult(device.Write(lba, {}, critical));
  }
  auto measure_read = [&](uint64_t first, uint64_t count) {
    const SimTimeUs start = clock.now();
    for (uint64_t lba = first; lba < first + count; ++lba) {
      IgnoreResult(device.Read(lba));
    }
    return static_cast<double>(clock.now() - start) / static_cast<double>(count);
  };
  const double spare_read_us = measure_read(0, media_pages);
  const double sys_read_us = measure_read(media_pages, 256);
  TextTable served({"traffic class", "mean page latency (us)", "effective MB/s"});
  served.AddRow({"SPARE sequential media read (PLC)", FormatDouble(spare_read_us, 1),
                 FormatDouble(4096.0 / spare_read_us, 1)});
  served.AddRow({"SYS app read (pseudo-QLC)", FormatDouble(sys_read_us, 1),
                 FormatDouble(4096.0 / sys_read_us, 1)});
  PrintTable(served);
  std::printf(
      "\nA single PLC die streams ~%.0f MB/s sequentially -- comfortably above video\n"
      "bitrates (a 4K stream is ~3-6 MB/s), and real devices stripe across 4-8 dies.\n"
      "Latency-sensitive SYS traffic is served from faster pseudo-QLC (%.0f us/page).\n\n",
      4096.0 / spare_read_us, sys_read_us);

  PrintSection("Multi-die striping: measured sequential throughput scaling");
  TextTable striping({"dies", "seq read MB/s", "scaling", "seq write MB/s"});
  double one_die_read = 0.0;
  for (uint32_t dies : {1u, 2u, 4u, 8u}) {
    NandPackageConfig pkg_config;
    pkg_config.die.num_blocks = 32;
    pkg_config.die.wordlines_per_block = 32;
    pkg_config.die.page_size_bytes = 4096;
    pkg_config.die.tech = CellTech::kPlc;
    pkg_config.die.store_payloads = false;
    pkg_config.num_dies = dies;
    SimClock pkg_clock;
    NandPackage package(pkg_config, &pkg_clock);
    const uint64_t bytes = 4ull * kMiB;
    const SimTimeUs write_start = pkg_clock.now();
    IgnoreResult(package.StripeWrite(0, std::vector<uint8_t>(bytes)));
    const double write_us = static_cast<double>(pkg_clock.now() - write_start);
    auto read = package.StripeRead(0, bytes);
    const double read_us = static_cast<double>(read.value().makespan_us);
    const double read_mbps = static_cast<double>(bytes) / read_us;
    if (dies == 1) {
      one_die_read = read_mbps;
    }
    striping.AddRow({std::to_string(dies), FormatDouble(read_mbps, 1),
                     FormatDouble(read_mbps / one_die_read, 1) + "x",
                     FormatDouble(static_cast<double>(bytes) / write_us, 1)});
  }
  PrintTable(striping);

  PrintSection("Read-retry: recovering aged data at a latency cost (voltage model)");
  // Weak-ECC PLC pages aged 6 years: sweep the retry budget.
  TextTable retry_table({"retry budget", "degraded reads / 120", "retry recoveries",
                         "mean read latency (us)"});
  for (uint32_t retries : {0u, 1u, 2u, 3u}) {
    FtlConfig ftl_config;
    ftl_config.nand.num_blocks = 16;
    ftl_config.nand.wordlines_per_block = 8;
    ftl_config.nand.page_size_bytes = 4096;
    ftl_config.nand.tech = CellTech::kPlc;
    ftl_config.nand.seed = 77;
    ftl_config.nand.store_payloads = false;
    ftl_config.nand.error_model = ErrorModelKind::kVoltage;
    FtlPoolConfig pool;
    pool.name = "MAIN";
    pool.mode = CellTech::kPlc;
    pool.ecc = EccScheme::FromPreset(EccPreset::kWeakBch);
    pool.nominal_retention_years = 20.0;
    pool.retire_rber = 0.4;
    pool.read_retries = retries;
    ftl_config.pools = {pool};
    SimClock ftl_clock;
    Ftl ftl(ftl_config, &ftl_clock);
    for (uint64_t lba = 0; lba < 120; ++lba) {
      IgnoreResult(ftl.Write(lba, {}, 0));
    }
    ftl_clock.Advance(YearsToUs(6.0));
    const SimTimeUs start = ftl_clock.now();
    uint64_t degraded = 0;
    for (uint64_t lba = 0; lba < 120; ++lba) {
      auto read = ftl.Read(lba);
      degraded += static_cast<uint64_t>(read.ok() && read.value().degraded ? 1 : 0);
    }
    retry_table.AddRow({std::to_string(retries), FormatCount(degraded),
                        FormatCount(ftl.stats().retry_recoveries()),
                        FormatDouble(static_cast<double>(ftl_clock.now() - start) / 120.0, 1)});
  }
  PrintTable(retry_table);
  std::printf(
      "\nDrift-tracking re-reads recover most retention failures -- the standard\n"
      "controller answer to exactly the errors SOS's SPARE partition tolerates.\n");
}

// --- google-benchmark micro-benchmarks of the simulator ---------------------

void BM_NandProgramRead(benchmark::State& state) {
  NandConfig config;
  config.num_blocks = 64;
  config.wordlines_per_block = 64;
  config.page_size_bytes = 4096;
  config.tech = CellTech::kPlc;
  config.store_payloads = state.range(0) != 0;
  SimClock clock;
  NandDevice device(config, &clock);
  std::vector<uint8_t> payload(4096, 0x5A);
  uint32_t block = 0;
  uint32_t page = 0;
  for (auto _ : state) {
    if (page >= config.PagesPerBlock(CellTech::kPlc)) {
      page = 0;
      block = (block + 1) % config.num_blocks;
      IgnoreResult(device.EraseBlock(block));
    }
    IgnoreResult(device.Program({block, page}, payload));
    auto read = device.Read({block, page});
    benchmark::DoNotOptimize(read);
    ++page;
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 4096 * 2);
}
BENCHMARK(BM_NandProgramRead)->Arg(0)->Arg(1)->ArgNames({"payloads"});

void BM_FtlChurn(benchmark::State& state) {
  FtlConfig config;
  config.nand.num_blocks = 64;
  config.nand.wordlines_per_block = 16;
  config.nand.page_size_bytes = 4096;
  config.nand.tech = CellTech::kPlc;
  config.nand.store_payloads = false;
  FtlPoolConfig pool;
  pool.name = "MAIN";
  pool.mode = CellTech::kPlc;
  pool.ecc = EccScheme::FromPreset(EccPreset::kNone);
  pool.retire_rber = 1e-2;  // keep blocks in service for the whole run
  config.pools = {pool};
  SimClock clock;
  Ftl ftl(config, &clock);
  const uint64_t space = ftl.ExportedPages() * 3 / 4;
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ftl.Write(rng.NextBounded(space), {}, 0));
  }
  state.counters["write_amp"] = ftl.stats().WriteAmplification();
}
BENCHMARK(BM_FtlChurn);

void BM_ErrorInjection(benchmark::State& state) {
  std::vector<uint8_t> page(4096, 0xAB);
  PageErrorState err;
  err.mode = CellTech::kPlc;
  err.endurance_pec = 300;
  err.pec_at_program = 200;
  err.retention_years = 2.0;
  uint64_t seed = 0;
  for (auto _ : state) {
    const uint64_t count = ErrorModel::SampleErrorCount(err, 4096 * 8, ++seed);
    benchmark::DoNotOptimize(ErrorModel::InjectErrors(page, count, seed));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_ErrorInjection);

}  // namespace
}  // namespace sos

int main(int argc, char** argv) {
  sos::FlagSet flags("bench_performance",
                     "simulator latency tables + google-benchmark micro-benchmarks");
  flags.Passthrough("--benchmark_");
  flags.ParseOrDie(argc, argv);
  sos::PrintLatencyTables();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
