// Copyright (c) 2026 The SOS Authors. MIT License.
//
// E20 -- Fleet-scale simulation: a population of devices, one carbon
// ledger. Draws device configurations from named archetypes (light /
// media_hoarder / app_churner) by seeded sampling, runs every
// device-lifetime on this process's shard, and folds the outcomes into a
// mergeable FleetLedger. The aggregate output is byte-identical for any
// --jobs value and any --shard split of the same population (see
// DESIGN.md §13 for the merge algebra).
//
// Modes:
//   bench_fleet --devices=N [--jobs=K]            whole fleet, one process
//   bench_fleet --shard=i/M --partial-out=F       one shard -> partial JSON
//   bench_fleet --merge=F0 --merge=F1 ...         combine partials, report

#include <cstdio>

#include "bench/bench_util.h"
#include "src/fleet/fleet.h"
#include "src/fleet/report.h"

namespace sos {
namespace {

void Report(const fleet::FleetPartial& partial, const std::string& metrics_out) {
  PrintBanner("E20", "Fleet-scale simulation: one carbon ledger",
              "§3 fleet framing; ROADMAP item 1");
  std::printf("%s", fleet::FleetReport(partial).c_str());
  if (!metrics_out.empty()) {
    if (Status s = obs::WriteFile(metrics_out, fleet::FleetMetricsJson(partial)); !s.ok()) {
      std::fprintf(stderr, "[bench] --metrics-out: %s\n", s.ToString().c_str());
      std::exit(1);
    }
  }
}

int Run(int argc, char** argv) {
  FlagSet flags("bench_fleet",
                "E20: population simulation over device archetypes with a mergeable "
                "fleet ledger (deterministic for any --jobs / --shard split)");
  uint64_t* devices = flags.U64("devices", 600, "fleet population size");
  uint64_t* seed = flags.U64("seed", 1, "fleet seed (device i draws from f(seed, i))");
  std::string* mix = flags.Path(
      "mix", "archetype weights, e.g. light:60,media_hoarder:25,app_churner:15");
  std::string* shard = flags.Path("shard", "run only shard i of N, spelled i/N");
  std::string* partial_out = flags.Path("partial-out", "write this shard's ledger as JSON");
  std::vector<std::string>* merge_inputs =
      flags.StringList("merge", "merge partial files instead of simulating");
  size_t* jobs = flags.Size("jobs", 1, JobsFlagHelp());
  std::string* metrics_out = flags.Path("metrics-out", "write fleet metrics JSON");
  flags.ParseOrDie(argc, argv);

  // --- Merge mode ---------------------------------------------------------
  if (!merge_inputs->empty()) {
    std::vector<fleet::FleetPartial> partials;
    for (const std::string& path : *merge_inputs) {
      Result<fleet::FleetPartial> partial = fleet::ReadPartialFile(path);
      if (!partial.ok()) {
        std::fprintf(stderr, "bench_fleet: %s\n", partial.status().ToString().c_str());
        return 2;
      }
      partials.push_back(std::move(partial.value()));
    }
    Result<fleet::FleetPartial> merged = fleet::MergePartials(std::move(partials));
    if (!merged.ok()) {
      std::fprintf(stderr, "bench_fleet: %s\n", merged.status().ToString().c_str());
      return 2;
    }
    Report(merged.value(), *metrics_out);
    return 0;
  }

  // --- Simulate mode ------------------------------------------------------
  fleet::FleetConfig config;
  config.devices = *devices;
  config.seed = *seed;
  config.jobs = ResolveJobs(*jobs);
  if (!mix->empty()) {
    Result<fleet::MixSpec> parsed = fleet::ParseMixSpec(*mix);
    if (!parsed.ok()) {
      std::fprintf(stderr, "bench_fleet: %s\n", parsed.status().ToString().c_str());
      return 2;
    }
    config.mix = parsed.value();
  }
  if (!shard->empty()) {
    Result<std::pair<uint64_t, uint64_t>> parsed = fleet::ParseShardSpec(*shard);
    if (!parsed.ok()) {
      std::fprintf(stderr, "bench_fleet: %s\n", parsed.status().ToString().c_str());
      return 2;
    }
    config.shard_index = parsed.value().first;
    config.shard_count = parsed.value().second;
  }

  WallTimer timer;
  Result<fleet::FleetPartial> partial = fleet::RunFleet(config);
  if (!partial.ok()) {
    std::fprintf(stderr, "bench_fleet: %s\n", partial.status().ToString().c_str());
    return 2;
  }
  const double wall_seconds = timer.Seconds();

  if (!partial_out->empty()) {
    if (Status s = obs::WriteFile(*partial_out, fleet::PartialToJson(partial.value()));
        !s.ok()) {
      std::fprintf(stderr, "bench_fleet: --partial-out: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  Report(partial.value(), *metrics_out);
  PrintJobsSummary(config.jobs, partial.value().shard_devices, wall_seconds);
  return 0;
}

}  // namespace
}  // namespace sos

int main(int argc, char** argv) { return sos::Run(argc, argv); }
