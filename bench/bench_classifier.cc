// Copyright (c) 2026 The SOS Authors. MIT License.
//
// E8 -- Machine-driven data classification (§4.4-4.5): accuracy of the
// learned priority classifiers vs the file-type rule baseline, the
// threshold/safety tradeoff, and the auto-delete predictor against the
// paper's cited ~79% accuracy ([68]).

#include <memory>

#include "bench/bench_util.h"
#include "src/classify/corpus.h"
#include "src/classify/eval.h"
#include "src/classify/boosted_stumps.h"
#include "src/classify/logistic.h"
#include "src/classify/naive_bayes.h"

namespace sos {
namespace {

std::string Pct(double v) { return FormatPercent(v); }

void Run() {
  PrintBanner("E8", "File classification quality", "§4.4-4.5, [68]");

  CorpusConfig config;
  config.num_files = 20000;
  config.seed = 31337;
  const auto corpus = GenerateCorpus(config);
  const CorpusSplit split = SplitCorpus(corpus, 5);
  const SimTimeUs now = config.device_age_us;
  const CorpusStats stats = ComputeCorpusStats(corpus);

  PrintSection("Synthetic corpus (distributions per [66-68])");
  PrintClaim("media share of stored bytes (paper: >50%)",
             Pct(static_cast<double>(stats.media_bytes) / static_cast<double>(stats.total_bytes)));
  PrintClaim("expendable share of stored bytes",
             Pct(static_cast<double>(stats.expendable_bytes) /
                 static_cast<double>(stats.total_bytes)));
  PrintClaim("files the user will delete within a year",
             Pct(static_cast<double>(stats.deleted_files) / static_cast<double>(corpus.size())));

  // Train all models.
  const RuleBasedClassifier rules;
  const NaiveBayesClassifier nb =
      NaiveBayesClassifier::Train(split.train, &ExpendableLabel, now);
  const LogisticClassifier logistic =
      LogisticClassifier::Train(split.train, &ExpendableLabel, now);
  const BoostedStumpsClassifier stumps =
      BoostedStumpsClassifier::Train(split.train, &ExpendableLabel, now);

  PrintSection("Priority classification (positive = EXPENDABLE / safe to degrade)");
  TextTable table({"model", "accuracy", "precision", "recall", "F1", "at-risk rate (FDR)"});
  struct NamedModel {
    const char* name;
    const BinaryClassifier* model;
  };
  for (const NamedModel& m : {NamedModel{"type rules (strawman)", &rules},
                              NamedModel{"naive bayes", &nb},
                              NamedModel{"logistic regression", &logistic},
                              NamedModel{"boosted stumps", &stumps}}) {
    const ConfusionMatrix cm = EvaluateClassifier(*m.model, split.test, &ExpendableLabel, now);
    table.AddRow({m.name, Pct(cm.accuracy()), Pct(cm.precision()), Pct(cm.recall()),
                  FormatDouble(cm.f1(), 3), Pct(cm.false_discovery_rate())});
  }
  PrintTable(table);
  std::printf(
      "\nNote: the corpus carries 8%% symmetric label noise (user preferences vary, [80]),\n"
      "so ~92%% is the Bayes ceiling and part of every at-risk rate is irreducible.\n");

  PrintSection("Erring on the side of caution: demotion threshold sweep (logistic)");
  TextTable sweep({"threshold", "demoted share", "at-risk rate (FDR)", "recall"});
  for (const ThresholdPoint& point :
       SweepThreshold(logistic, split.test, &ExpendableLabel, now, 9)) {
    const double demoted_share =
        static_cast<double>(point.matrix.true_positive + point.matrix.false_positive) /
        static_cast<double>(point.matrix.total());
    sweep.AddRow({FormatDouble(point.threshold, 2), Pct(demoted_share),
                  Pct(point.matrix.false_discovery_rate()), Pct(point.matrix.recall())});
  }
  PrintTable(sweep);

  PrintSection("Auto-delete predictor (§4.3/§4.5, paper cites ~79% accuracy [68])");
  const LogisticClassifier deleter =
      LogisticClassifier::Train(split.train, &DeletionLabel, now);
  const NaiveBayesClassifier nb_deleter =
      NaiveBayesClassifier::Train(split.train, &DeletionLabel, now);
  const ConfusionMatrix del_lr = EvaluateClassifier(deleter, split.test, &DeletionLabel, now);
  const ConfusionMatrix del_nb = EvaluateClassifier(nb_deleter, split.test, &DeletionLabel, now);
  PrintClaim("deletion prediction accuracy (logistic)", Pct(del_lr.accuracy()));
  PrintClaim("deletion prediction accuracy (naive bayes)", Pct(del_nb.accuracy()));
  PrintClaim("paper reference accuracy", "79% [68]");

  PrintSection("Training-set size sensitivity (logistic, priority task)");
  TextTable size_table({"training files", "accuracy", "at-risk rate"});
  for (size_t n : {200ul, 1000ul, 4000ul, 16000ul}) {
    std::vector<const FileMeta*> subset(split.train.begin(),
                                        split.train.begin() + static_cast<ptrdiff_t>(std::min(
                                                                  n, split.train.size())));
    const LogisticClassifier model =
        LogisticClassifier::Train(subset, &ExpendableLabel, now);
    const ConfusionMatrix cm = EvaluateClassifier(model, split.test, &ExpendableLabel, now);
    size_table.AddRow({FormatCount(subset.size()), Pct(cm.accuracy()),
                       Pct(cm.false_discovery_rate())});
  }
  PrintTable(size_table);
}

}  // namespace
}  // namespace sos

int main(int argc, char** argv) {
  sos::FlagSet flags("bench_classifier", "E8: file-classification accuracy and calibration");
  flags.ParseOrDie(argc, argv);
  sos::Run();
  return 0;
}
