// Copyright (c) 2026 The SOS Authors. MIT License.
//
// E16 -- "Data reduction methods ... are less effective in personal storage"
// (paper §5, [66][67][83-85]): transparent compression recovers little on a
// media-dominated personal corpus, while SOS's density lever is orthogonal
// and much larger. Compares the personal corpus against an enterprise-like
// population (databases, logs, documents) where compression genuinely pays.

#include <algorithm>

#include "bench/bench_util.h"
#include "src/carbon/embodied.h"
#include "src/classify/corpus.h"
#include "src/common/rng.h"
#include "src/host/compression.h"

namespace sos {
namespace {

// Enterprise-like population: structured, low-entropy data dominates.
std::vector<FileMeta> EnterpriseCorpus(size_t n, uint64_t seed) {
  std::vector<FileMeta> corpus;
  corpus.reserve(n);
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    const double pick = rng.NextDouble();
    FileType type = FileType::kAppData;       // databases / key-value stores
    double entropy = rng.NextGaussian(4.2, 0.8);
    uint64_t bytes = 4 * kMiB;
    if (pick < 0.35) {
      type = FileType::kDocument;             // logs, text, office docs
      entropy = rng.NextGaussian(4.8, 0.7);
      bytes = 512 * kKiB;
    } else if (pick < 0.45) {
      type = FileType::kDownload;             // packed artifacts
      entropy = rng.NextGaussian(7.6, 0.3);
      bytes = 32 * kMiB;
    }
    FileMeta meta = SynthesizeFile(type, 0, 0.0, rng);
    meta.size_bytes = bytes;
    meta.entropy_bits_per_byte = std::clamp(entropy, 0.5, 8.0);
    corpus.push_back(std::move(meta));
  }
  return corpus;
}

void PrintReport(const char* name, const CorpusCompressionReport& report) {
  PrintSection(name);
  TextTable table({"file type", "bytes", "compressed", "savings"});
  for (int t = 0; t < kNumFileTypes; ++t) {
    const CompressionEstimate& est = report.by_type[static_cast<size_t>(t)];
    if (est.original_bytes == 0) {
      continue;
    }
    table.AddRow({FileTypeName(static_cast<FileType>(t)), FormatBytes(est.original_bytes),
                  FormatBytes(est.compressed_bytes), FormatPercent(est.savings())});
  }
  table.AddRow({"TOTAL", FormatBytes(report.total.original_bytes),
                FormatBytes(report.total.compressed_bytes),
                FormatPercent(report.total.savings())});
  PrintTable(table);
}

void Run() {
  PrintBanner("E16", "Compression potential: personal vs enterprise storage",
              "§5, [66][67][83-85]");

  CorpusConfig config;
  config.num_files = 20000;
  config.seed = 5150;
  const auto personal = GenerateCorpus(config);
  const auto enterprise = EnterpriseCorpus(8000, 5151);

  const CorpusCompressionReport personal_report = AnalyzeCorpus(personal);
  const CorpusCompressionReport enterprise_report = AnalyzeCorpus(enterprise);

  PrintReport("Personal-device corpus (media-dominated, [66-68])", personal_report);
  PrintReport("Enterprise-like corpus (structured data dominated)", enterprise_report);

  PrintSection("The paper's point (§5)");
  PrintClaim("compression savings on personal storage",
             FormatPercent(personal_report.total.savings()));
  PrintClaim("compression savings on enterprise-like storage",
             FormatPercent(enterprise_report.total.savings()));
  const double sos_gain = 1.0 - 1.0 / FlashCarbonModel::SplitDensityGain(
                                          CellTech::kQlc, CellTech::kPlc, 0.5, CellTech::kTlc);
  PrintClaim("SOS's density lever (silicon saved per byte vs TLC)",
             FormatPercent(sos_gain));
  std::printf(
      "\nMedia is already entropy-coded, so transparent compression recovers only a\n"
      "few percent of a personal device -- while the density lever SOS pulls does\n"
      "not care about entropy at all. The two compose, but only one moves the\n"
      "needle on personal devices.\n");
}

}  // namespace
}  // namespace sos

int main(int argc, char** argv) {
  sos::FlagSet flags("bench_compression", "E15: approximate-compression quality ladder");
  flags.ParseOrDie(argc, argv);
  sos::Run();
  return 0;
}
