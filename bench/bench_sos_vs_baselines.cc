// Copyright (c) 2026 The SOS Authors. MIT License.
//
// E12 -- The headline comparison: SOS (split pseudo-QLC/PLC with daemons)
// vs conventional TLC, QLC, and naive-PLC devices built from the same
// physical die, running the same 3-year personal-device workload. Reports
// exported capacity, embodied carbon for an equal-capacity build, wear,
// data quality, and survival, plus seed sensitivity of the SOS build.
//
// All simulations fan out through the batch experiment driver; run with
// --jobs=N to use N cores. stdout is byte-identical for every N (timing
// goes to stderr).

#include "bench/bench_util.h"
#include "src/carbon/embodied.h"
#include "src/sos/experiment.h"

namespace sos {
namespace {

LifetimeSimConfig Config(DeviceKind kind) {
  LifetimeSimConfig config;
  config.kind = kind;
  config.days = 365 * 3;
  config.seed = 2024;
  config.nand.num_blocks = 256;  // 3-year accumulation ~50% of TLC capacity
  config.training_files = 3000;
  config.workload.photos_per_day = 1.0;
  config.workload.cache_files_per_day = 6.0;
  config.workload.deletes_per_day = 5.0;
  config.workload.app_updates_per_day = 50.0;
  config.workload.reads_per_day = 60.0;
  config.file_size_cap = 32 * kKiB;
  config.sample_period_days = 365;
  return config;
}

// Carbon intensity of each build (kgCO2e per GB of *exported* capacity).
double KgPerGb(DeviceKind kind) {
  const FlashCarbonModel model;
  switch (kind) {
    case DeviceKind::kSos:
      return model.KgPerGbSplit(CellTech::kQlc, CellTech::kPlc, 0.5);
    case DeviceKind::kTlcBaseline:
      return model.KgPerGb(CellTech::kTlc);
    case DeviceKind::kQlcBaseline:
      return model.KgPerGb(CellTech::kQlc);
    case DeviceKind::kPlcNaive:
      return model.KgPerGb(CellTech::kPlc);
  }
  return 0.0;
}

void Run(const BenchOptions& options) {
  PrintBanner("E12", "SOS vs conventional devices: 3 years, same die, same workload",
              "§4 (the paper's overall value proposition)");

  const FlashCarbonModel carbon;
  const double tlc_kg_128 = carbon.KgPerGb(CellTech::kTlc) * 128.0;

  // One batch: 4 device kinds + a 4-seed SOS sensitivity sweep, all
  // independent, all scheduled together so --jobs=N keeps N cores busy.
  const std::vector<DeviceKind> kinds = {DeviceKind::kTlcBaseline, DeviceKind::kQlcBaseline,
                                         DeviceKind::kPlcNaive, DeviceKind::kSos};
  const std::vector<uint64_t> sweep_seeds = {2024, 7, 99, 31337};
  std::vector<ExperimentJob> jobs;
  for (DeviceKind kind : kinds) {
    jobs.push_back({DeviceKindName(kind), Config(kind)});
  }
  for (const ExperimentJob& job : SeedSweep(Config(DeviceKind::kSos), sweep_seeds)) {
    jobs.push_back(job);
  }

  ExperimentDriver driver(options.jobs);
  const ExperimentBatch batch = driver.RunBatch(jobs);

  PrintSection("3-year outcomes per build");
  TextTable table({"device", "capacity (pages)", "vs TLC", "kgCO2e @128GB", "carbon saving",
                   "max wear", "flash life (yrs)", "rejected files", "quality"});
  const uint64_t tlc_capacity = batch.results[0].initial_exported_pages();
  for (size_t i = 0; i < kinds.size(); ++i) {
    const LifetimeResult& r = batch.results[i];
    const double kg128 = KgPerGb(kinds[i]) * 128.0;
    table.AddRow({DeviceKindName(kinds[i]), FormatCount(r.initial_exported_pages()),
                  FormatPercent(static_cast<double>(r.initial_exported_pages()) /
                                    static_cast<double>(tlc_capacity) -
                                1.0),
                  FormatDouble(kg128, 1), FormatPercent(1.0 - kg128 / tlc_kg_128),
                  FormatPercent(r.final_max_wear_ratio()),
                  FormatDouble(r.projected_lifetime_years(), 1), FormatCount(r.create_failures()),
                  FormatDouble(r.final_spare_quality(), 3)});
  }
  PrintTable(table);

  PrintSection("Reading the result");
  std::printf(
      "  - SOS exports ~45-50%% more capacity than TLC from the same cells, i.e. ~1/3\n"
      "    less embodied carbon for the same capacity (the paper's headline).\n"
      "  - Naive PLC gets the full +66%% density but stores *everything* on fragile\n"
      "    cells behind one ECC -- no reliability classes, no degradation management.\n"
      "    SOS trades 13%% of that density for a reliable SYS home for critical data.\n"
      "  - After 3 years of typical use every build retains years of endurance\n"
      "    headroom (E4); SOS's quality column shows SPARE media stayed near-pristine\n"
      "    (degradation under typical retention is mild and scrubbed).\n");

  PrintSection("Seed sensitivity (SOS build, 4 seeds, mean +/- stddev)");
  std::vector<LifetimeResult> sweep(batch.results.begin() + static_cast<long>(kinds.size()),
                                    batch.results.end());
  const LifetimeAggregate agg = Aggregate(sweep);
  TextTable sensitivity({"metric", "mean +/- stddev", "min", "max"});
  sensitivity.AddRow({"max wear ratio", FormatMeanStddev(agg.max_wear_ratio, 4),
                      FormatDouble(agg.max_wear_ratio.min(), 4),
                      FormatDouble(agg.max_wear_ratio.max(), 4)});
  sensitivity.AddRow({"flash life (yrs)", FormatMeanStddev(agg.projected_lifetime_years, 1),
                      FormatDouble(agg.projected_lifetime_years.min(), 1),
                      FormatDouble(agg.projected_lifetime_years.max(), 1)});
  sensitivity.AddRow({"write amplification", FormatMeanStddev(agg.write_amplification, 3),
                      FormatDouble(agg.write_amplification.min(), 3),
                      FormatDouble(agg.write_amplification.max(), 3)});
  sensitivity.AddRow({"SPARE quality", FormatMeanStddev(agg.spare_quality, 4),
                      FormatDouble(agg.spare_quality.min(), 4),
                      FormatDouble(agg.spare_quality.max(), 4)});
  sensitivity.AddRow({"rejected files", FormatMeanStddev(agg.create_failures, 1),
                      FormatDouble(agg.create_failures.min(), 0),
                      FormatDouble(agg.create_failures.max(), 0)});
  PrintTable(sensitivity);
  std::printf(
      "\nThe headline metrics are stable across seeds: the capacity/carbon story is a\n"
      "property of the design, not of one lucky workload draw.\n");

  PrintSection("Carbon at fleet scale (annual smartphone flash production)");
  // ~half of 765 EB/yr goes to personal devices (E1); what if it were SOS?
  const double personal_eb = 765.0 * 0.5;
  const double tlc_mt = personal_eb * carbon.KgPerGb(CellTech::kTlc);
  const double sos_mt = personal_eb * carbon.KgPerGbSplit(CellTech::kQlc, CellTech::kPlc, 0.5);
  PrintClaim("personal-device flash emissions at TLC intensity",
             FormatDouble(tlc_mt, 1) + " Mt CO2e/yr");
  PrintClaim("the same capacity built as SOS",
             FormatDouble(sos_mt, 1) + " Mt CO2e/yr");
  PrintClaim("annual saving", FormatDouble(tlc_mt - sos_mt, 1) + " Mt CO2e (~" +
                                  FormatDouble(PeopleEquivalent(tlc_mt - sos_mt) / 1e6, 1) +
                                  "M people's emissions)");

  ExportBatchTelemetry(batch.results, options);
  PrintJobsSummary(driver.jobs(), jobs.size(), batch.wall_seconds);
}

}  // namespace
}  // namespace sos

int main(int argc, char** argv) {
  sos::FlagSet flags("bench_sos_vs_baselines",
                     "E12: SOS vs TLC/QLC/naive-PLC builds of the same die");
  sos::Run(sos::ParseSweepArgs(flags, argc, argv));
  return 0;
}
