// Copyright (c) 2026 The SOS Authors. MIT License.
//
// E12 -- The headline comparison: SOS (split pseudo-QLC/PLC with daemons)
// vs conventional TLC, QLC, and naive-PLC devices built from the same
// physical die, running the same 3-year personal-device workload. Reports
// exported capacity, embodied carbon for an equal-capacity build, wear,
// data quality, and survival.

#include "bench/bench_util.h"
#include "src/carbon/embodied.h"
#include "src/sos/lifetime_sim.h"

namespace sos {
namespace {

LifetimeSimConfig Config(DeviceKind kind) {
  LifetimeSimConfig config;
  config.kind = kind;
  config.days = 365 * 3;
  config.seed = 2024;
  config.nand.num_blocks = 256;  // 3-year accumulation ~50% of TLC capacity
  config.training_files = 3000;
  config.workload.photos_per_day = 1.0;
  config.workload.cache_files_per_day = 6.0;
  config.workload.deletes_per_day = 5.0;
  config.workload.app_updates_per_day = 50.0;
  config.workload.reads_per_day = 60.0;
  config.file_size_cap = 32 * kKiB;
  config.sample_period_days = 365;
  return config;
}

// Carbon intensity of each build (kgCO2e per GB of *exported* capacity).
double KgPerGb(DeviceKind kind) {
  const FlashCarbonModel model;
  switch (kind) {
    case DeviceKind::kSos:
      return model.KgPerGbSplit(CellTech::kQlc, CellTech::kPlc, 0.5);
    case DeviceKind::kTlcBaseline:
      return model.KgPerGb(CellTech::kTlc);
    case DeviceKind::kQlcBaseline:
      return model.KgPerGb(CellTech::kQlc);
    case DeviceKind::kPlcNaive:
      return model.KgPerGb(CellTech::kPlc);
  }
  return 0.0;
}

void Run() {
  PrintBanner("E12", "SOS vs conventional devices: 3 years, same die, same workload",
              "§4 (the paper's overall value proposition)");

  const FlashCarbonModel carbon;
  const double tlc_kg_128 = carbon.KgPerGb(CellTech::kTlc) * 128.0;

  PrintSection("3-year outcomes per build");
  TextTable table({"device", "capacity (pages)", "vs TLC", "kgCO2e @128GB", "carbon saving",
                   "max wear", "flash life (yrs)", "rejected files", "quality"});
  uint64_t tlc_capacity = 0;
  struct Outcome {
    DeviceKind kind;
    LifetimeResult result;
  };
  std::vector<Outcome> outcomes;
  for (DeviceKind kind : {DeviceKind::kTlcBaseline, DeviceKind::kQlcBaseline,
                          DeviceKind::kPlcNaive, DeviceKind::kSos}) {
    LifetimeSim sim(Config(kind));
    outcomes.push_back({kind, sim.Run()});
    if (kind == DeviceKind::kTlcBaseline) {
      tlc_capacity = outcomes.back().result.initial_exported_pages;
    }
  }
  for (const Outcome& o : outcomes) {
    const double kg128 = KgPerGb(o.kind) * 128.0;
    table.AddRow({DeviceKindName(o.kind), FormatCount(o.result.initial_exported_pages),
                  FormatPercent(static_cast<double>(o.result.initial_exported_pages) /
                                    static_cast<double>(tlc_capacity) -
                                1.0),
                  FormatDouble(kg128, 1), FormatPercent(1.0 - kg128 / tlc_kg_128),
                  FormatPercent(o.result.final_max_wear_ratio),
                  FormatDouble(o.result.projected_lifetime_years, 1),
                  FormatCount(o.result.create_failures),
                  FormatDouble(o.result.final_spare_quality, 3)});
  }
  PrintTable(table);

  PrintSection("Reading the result");
  std::printf(
      "  - SOS exports ~45-50%% more capacity than TLC from the same cells, i.e. ~1/3\n"
      "    less embodied carbon for the same capacity (the paper's headline).\n"
      "  - Naive PLC gets the full +66%% density but stores *everything* on fragile\n"
      "    cells behind one ECC -- no reliability classes, no degradation management.\n"
      "    SOS trades 13%% of that density for a reliable SYS home for critical data.\n"
      "  - After 3 years of typical use every build retains years of endurance\n"
      "    headroom (E4); SOS's quality column shows SPARE media stayed near-pristine\n"
      "    (degradation under typical retention is mild and scrubbed).\n");

  PrintSection("Carbon at fleet scale (annual smartphone flash production)");
  // ~half of 765 EB/yr goes to personal devices (E1); what if it were SOS?
  const double personal_eb = 765.0 * 0.5;
  const double tlc_mt = personal_eb * carbon.KgPerGb(CellTech::kTlc);
  const double sos_mt = personal_eb * carbon.KgPerGbSplit(CellTech::kQlc, CellTech::kPlc, 0.5);
  PrintClaim("personal-device flash emissions at TLC intensity",
             FormatDouble(tlc_mt, 1) + " Mt CO2e/yr");
  PrintClaim("the same capacity built as SOS",
             FormatDouble(sos_mt, 1) + " Mt CO2e/yr");
  PrintClaim("annual saving", FormatDouble(tlc_mt - sos_mt, 1) + " Mt CO2e (~" +
                                  FormatDouble(PeopleEquivalent(tlc_mt - sos_mt) / 1e6, 1) +
                                  "M people's emissions)");
}

}  // namespace
}  // namespace sos

int main() {
  sos::Run();
  return 0;
}
