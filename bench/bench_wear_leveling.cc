// Copyright (c) 2026 The SOS Authors. MIT License.
//
// E9 -- Wear leveling ablation (§4.3, [73]): the paper disables preemptive
// wear leveling on the SPARE partition because leveling's extra data
// movement consumes the very endurance it tries to protect. Compare a
// SPARE-like pool with WL on vs off under the read-dominant, rarely-updated
// workload SPARE actually sees, and under a hostile skewed-write workload.

// The four (workload, WL on/off) arms are independent share-nothing FTL
// runs; they fan out through the experiment driver's deterministic Map.
// Run with --jobs=N; stdout stays byte-identical.

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/ftl/ftl.h"
#include "src/sos/experiment.h"

namespace sos {
namespace {

struct WlOutcome {
  uint64_t nand_writes = 0;
  uint64_t wl_relocations = 0;
  uint64_t gc_erases = 0;
  uint32_t max_pec = 0;
  uint32_t pec_spread = 0;
  double mean_pec = 0.0;
  uint64_t retired = 0;
};

// Runs `writes` operations against a PLC pool; `hot_fraction` of the LBA
// space absorbs 90% of the writes (cold media + hot app state).
WlOutcome RunPool(bool wear_leveling, uint64_t writes, double hot_fraction, uint64_t seed) {
  FtlConfig config;
  config.nand.num_blocks = 64;
  config.nand.wordlines_per_block = 16;
  config.nand.page_size_bytes = 2048;
  config.nand.tech = CellTech::kPlc;
  config.nand.seed = seed;
  config.nand.store_payloads = false;
  FtlPoolConfig pool;
  pool.name = "SPARE";
  pool.mode = CellTech::kPlc;
  pool.ecc = EccScheme::FromPreset(EccPreset::kNone);
  pool.retire_rber = 2e-3;
  pool.wear_leveling = wear_leveling;
  config.pools = {pool};

  SimClock clock;
  Ftl ftl(config, &clock);
  const uint64_t space = ftl.ExportedPages() * 9 / 10;
  const uint64_t hot = std::max<uint64_t>(1, static_cast<uint64_t>(
                                                 static_cast<double>(space) * hot_fraction));
  // Fill once (the cold archive).
  for (uint64_t lba = 0; lba < space; ++lba) {
    IgnoreResult(ftl.Write(lba, {}, 0));
  }
  // Identical workload stream for both arms: only the policy differs.
  Rng rng(DeriveSeed({seed}));
  for (uint64_t i = 0; i < writes; ++i) {
    const uint64_t lba = rng.NextBool(0.9) ? rng.NextBounded(hot) : rng.NextBounded(space);
    if (!ftl.Write(lba, {}, 0).ok()) {
      break;
    }
    clock.Advance(kUsPerMinute);  // background cadence
  }

  WlOutcome out;
  const FtlStats stats = ftl.stats();
  out.nand_writes = stats.nand_writes();
  out.wl_relocations = stats.wl_relocations();
  out.gc_erases = stats.gc_erases();
  out.retired = stats.retired_blocks();
  uint32_t min_pec = ~0u;
  uint64_t pec_sum = 0;
  uint32_t blocks = 0;
  for (uint32_t b = 0; b < config.nand.num_blocks; ++b) {
    const uint32_t pec = ftl.nand().block_info(b).pec;
    out.max_pec = std::max(out.max_pec, pec);
    min_pec = std::min(min_pec, pec);
    pec_sum += pec;
    ++blocks;
  }
  out.pec_spread = out.max_pec - min_pec;
  out.mean_pec = static_cast<double>(pec_sum) / blocks;
  return out;
}

struct WlArm {
  const char* workload;
  bool wear_leveling;
  uint64_t writes;
  double hot_fraction;
};

void AddRow(TextTable& table, const WlArm& arm, const WlOutcome& out) {
  table.AddRow({arm.workload, arm.wear_leveling ? "on" : "off", FormatCount(out.nand_writes),
                FormatCount(out.wl_relocations), FormatCount(out.max_pec),
                FormatCount(out.pec_spread), FormatDouble(out.mean_pec, 1),
                FormatCount(out.retired)});
}

void Run(size_t jobs) {
  PrintBanner("E9", "Wear leveling considered harmful on SPARE", "§4.3, [73]");

  const std::vector<WlArm> arms = {
      {"read-dominant (SPARE-like)", true, 8000, 0.05},
      {"read-dominant (SPARE-like)", false, 8000, 0.05},
      {"update-heavy skewed", true, 40000, 0.05},
      {"update-heavy skewed", false, 40000, 0.05},
  };
  ExperimentDriver driver(jobs);
  WallTimer timer;
  const std::vector<WlOutcome> outcomes = driver.Map(arms.size(), [&arms](size_t i) {
    return RunPool(arms[i].wear_leveling, arms[i].writes, arms[i].hot_fraction, 11);
  });

  PrintSection("SPARE-like PLC pool, WL on vs off");
  TextTable table({"workload", "WL", "nand writes", "WL moves", "max PEC", "PEC spread",
                   "mean PEC", "retired"});
  for (size_t i = 0; i < arms.size(); ++i) {
    AddRow(table, arms[i], outcomes[i]);
  }
  PrintTable(table);

  std::printf(
      "\nReading the table: leveling narrows the PEC spread but pays for it in extra\n"
      "relocation writes (total nand writes and mean PEC go *up*). On the SPARE\n"
      "partition -- read-dominant, rarely updated, error-tolerant -- the spread is\n"
      "harmless (a hot block degrading early is refreshed or retired gracefully),\n"
      "so SOS keeps leveling off and banks the endurance ([73]).\n");

  PrintJobsSummary(driver.jobs(), arms.size(), timer.Seconds());
}

}  // namespace
}  // namespace sos

int main(int argc, char** argv) {
  sos::FlagSet flags("bench_wear_leveling", "E9: wear-leveling on/off ablation for SPARE");
  size_t* jobs = flags.Size("jobs", 1, "parallel FTL runs (0 = hardware concurrency)");
  flags.ParseOrDie(argc, argv);
  sos::Run(*jobs);
  return 0;
}
