// Copyright (c) 2026 The SOS Authors. MIT License.
//
// E21 -- Per-pool QoS in the sosd request core. The serve layer's claim is
// that weighted per-class scheduling keeps SYS requests from queueing behind
// SPARE bulk/maintenance traffic even though every op ultimately serializes
// through one simulated device. This bench replays the same seeded
// mixed-class workload through AsyncBlockService twice -- QoS on and QoS
// off (global FIFO) -- in deterministic pump mode, and reports per-class
// sim-time latency percentiles plus batching/coalescing counters.
//
// Latency here is sim time end to end (Submit stamp -> completion stamp), so
// the percentile rows are byte-stable goldens; wall-clock throughput goes to
// stderr only, per the determinism contract.

#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/obs/metrics.h"
#include "src/serve/service.h"
#include "src/sos/sos_device.h"

namespace sos {
namespace {

using serve::AsyncBlockService;
using serve::QosClass;
using serve::ServeConfig;
using serve::ServeOp;
using serve::ServeRequest;
using serve::ServeResponse;
using serve::ServeStats;
using serve::kNumQosClasses;

constexpr uint64_t kSysLbas = 32;    // SYS pool working set
constexpr uint64_t kBulkBase = 64;   // bulk pool starts past the SYS range
constexpr uint64_t kBulkLbas = 64;
constexpr size_t kSeqRun = 8;        // sequential bulk stretch per round (coalescing fodder)

SosDeviceConfig ServeBenchConfig(uint64_t seed) {
  SosDeviceConfig config;
  config.nand.num_blocks = 96;
  config.nand.wordlines_per_block = 8;
  config.nand.page_size_bytes = 512;
  config.nand.seed = seed;
  config.nand.store_payloads = true;
  config.spare_ecc = EccPreset::kWeakBch;
  return config;
}

std::vector<uint8_t> FillPage(uint64_t lba, uint32_t version) {
  std::vector<uint8_t> page(512);
  for (size_t i = 0; i < page.size(); ++i) {
    page[i] = static_cast<uint8_t>(lba * 37 + version * 101 + i * 13 + 1);
  }
  return page;
}

struct ArmResult {
  std::string name;
  ServeStats stats;
  serve::LatencySummary latency[kNumQosClasses];
  uint64_t ops = 0;
  double wall_seconds = 0.0;
};

// One arm: the full seeded workload through a fresh device + service. Every
// round submits a mixed-class burst (bulk writes incl. one sequential run,
// SYS reads, SYS writes, one maintenance flush), then pumps it dry. Within a
// burst all ops share a submit stamp, so per-class latency is exactly "how
// long did this class wait for the device" under the arm's scheduler.
ArmResult RunArm(bool qos, size_t rounds, uint64_t seed) {
  ArmResult arm;
  arm.name = qos ? "qos-on" : "qos-off";

  SimClock clock;
  SosDevice device(ServeBenchConfig(seed), &clock);
  ServeConfig config;
  config.workers = 0;  // pump mode: deterministic dispatch, exact goldens
  config.qos = qos;
  AsyncBlockService service(&device, &clock, config);

  auto sys_handle = service.OpenPlacement({Durability::kCritical, LifetimeHint::kLong});
  auto bulk_handle = service.OpenPlacement({Durability::kDegradable, LifetimeHint::kShort});
  if (!sys_handle.ok() || !bulk_handle.ok()) {
    std::fprintf(stderr, "[bench] OpenPlacement failed\n");
    std::exit(1);
  }

  WallTimer timer;
  Rng rng(DeriveSeed({seed, 0x71735276ull /* "qsrv" */}));
  std::vector<std::future<ServeResponse>> futures;

  // Prefill both pools so every read hits a mapped LBA.
  for (uint64_t lba = 0; lba < kSysLbas; ++lba) {
    ServeRequest req;
    req.op = ServeOp::kWrite;
    req.lba = lba;
    req.data = FillPage(lba, 1);
    req.handle = sys_handle.value();
    futures.push_back(service.Submit(std::move(req)));
    ++arm.ops;
  }
  for (uint64_t lba = kBulkBase; lba < kBulkBase + kBulkLbas; ++lba) {
    ServeRequest req;
    req.op = ServeOp::kWrite;
    req.lba = lba;
    req.data = FillPage(lba, 1);
    req.handle = bulk_handle.value();
    futures.push_back(service.Submit(std::move(req)));
    ++arm.ops;
  }
  service.RunPending();

  for (size_t round = 0; round < rounds; ++round) {
    const uint32_t version = static_cast<uint32_t>(round) + 2;
    // Bulk pressure first in FIFO order: 24 random-LBA writes plus one
    // sequential 8-LBA stretch (which the service coalesces to WriteBatch).
    for (int w = 0; w < 24; ++w) {
      ServeRequest req;
      req.op = ServeOp::kWrite;
      req.lba = kBulkBase + rng.NextBounded(kBulkLbas);
      req.data = FillPage(req.lba, version);
      req.handle = bulk_handle.value();
      futures.push_back(service.Submit(std::move(req)));
      ++arm.ops;
    }
    const uint64_t seq_base = kBulkBase + (round * kSeqRun) % (kBulkLbas - kSeqRun);
    for (size_t s = 0; s < kSeqRun; ++s) {
      ServeRequest req;
      req.op = ServeOp::kWrite;
      req.lba = seq_base + s;
      req.data = FillPage(req.lba, version);
      req.handle = bulk_handle.value();
      futures.push_back(service.Submit(std::move(req)));
      ++arm.ops;
    }
    // SYS traffic submitted *behind* the bulk burst: under FIFO it eats the
    // whole bulk queue's device time; under QoS it is dispatched first.
    for (int r = 0; r < 8; ++r) {
      ServeRequest req;
      req.op = ServeOp::kRead;
      req.lba = rng.NextBounded(kSysLbas);
      req.handle = sys_handle.value();
      futures.push_back(service.Submit(std::move(req)));
      ++arm.ops;
    }
    for (int w = 0; w < 4; ++w) {
      ServeRequest req;
      req.op = ServeOp::kWrite;
      req.lba = rng.NextBounded(kSysLbas);
      req.data = FillPage(req.lba, version);
      req.handle = sys_handle.value();
      futures.push_back(service.Submit(std::move(req)));
      ++arm.ops;
    }
    {
      ServeRequest req;
      req.op = ServeOp::kFlush;
      futures.push_back(service.Submit(std::move(req)));
      ++arm.ops;
    }
    service.RunPending();
  }
  service.Drain();

  for (std::future<ServeResponse>& f : futures) {
    f.get();  // all resolved after Drain; surface any broken promise loudly
  }
  arm.wall_seconds = timer.Seconds();
  arm.stats = service.Stats();
  for (uint32_t c = 0; c < kNumQosClasses; ++c) {
    arm.latency[c] = service.Latency(static_cast<QosClass>(c));
  }
  service.Shutdown();
  return arm;
}

std::string MetricsJson(const std::vector<ArmResult>& arms) {
  std::string out = "{\n  \"bench\": \"bench_serve\",\n  \"arms\": [\n";
  for (size_t a = 0; a < arms.size(); ++a) {
    const ArmResult& arm = arms[a];
    char buf[256];
    out += "    {\n      \"arm\": \"" + arm.name + "\",\n";
    std::snprintf(buf, sizeof(buf),
                  "      \"submitted\": %" PRIu64 ",\n      \"completed\": %" PRIu64
                  ",\n      \"batches\": %" PRIu64 ",\n      \"coalesced\": %" PRIu64
                  ",\n      \"classes\": [\n",
                  arm.stats.submitted, arm.stats.completed, arm.stats.batches,
                  arm.stats.coalesced);
    out += buf;
    for (uint32_t c = 0; c < kNumQosClasses; ++c) {
      const serve::LatencySummary& l = arm.latency[c];
      std::snprintf(buf, sizeof(buf),
                    "        {\"class\": \"%s\", \"count\": %" PRIu64
                    ", \"p50_us\": %.1f, \"p99_us\": %.1f, \"p999_us\": %.1f}%s\n",
                    serve::QosClassName(static_cast<QosClass>(c)), l.count, l.p50, l.p99,
                    l.p999, c + 1 < kNumQosClasses ? "," : "");
      out += buf;
    }
    out += "      ]\n    }";
    out += a + 1 < arms.size() ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  return out;
}

// Per-class latency histogram rows (one JSONL line per arm x class) -- the
// CI artifact; same bytes for any --jobs.
std::string TraceJsonl(const std::vector<ArmResult>& arms) {
  std::string out;
  char buf[256];
  for (const ArmResult& arm : arms) {
    for (uint32_t c = 0; c < kNumQosClasses; ++c) {
      const serve::LatencySummary& l = arm.latency[c];
      std::snprintf(buf, sizeof(buf),
                    "{\"arm\": \"%s\", \"class\": \"%s\", \"count\": %" PRIu64
                    ", \"p50_us\": %.1f, \"p99_us\": %.1f, \"p999_us\": %.1f}\n",
                    arm.name.c_str(), serve::QosClassName(static_cast<QosClass>(c)), l.count,
                    l.p50, l.p99, l.p999);
      out += buf;
    }
  }
  return out;
}

void Run(const BenchOptions& options, size_t rounds) {
  PrintBanner("E21", "Per-pool QoS in the sosd request core", "DESIGN.md §14 (serve layer)");

  std::vector<ArmResult> arms;
  arms.push_back(RunArm(/*qos=*/false, rounds, /*seed=*/23));
  arms.push_back(RunArm(/*qos=*/true, rounds, /*seed=*/23));

  PrintSection("Sim-time request latency by QoS class (identical seeded workload)");
  TextTable table({"arm", "class", "requests", "p50 (sim us)", "p99 (sim us)", "p999 (sim us)"});
  for (const ArmResult& arm : arms) {
    for (uint32_t c = 0; c < kNumQosClasses; ++c) {
      const serve::LatencySummary& l = arm.latency[c];
      table.AddRow({arm.name, serve::QosClassName(static_cast<QosClass>(c)),
                    std::to_string(l.count), FormatDouble(l.p50, 1), FormatDouble(l.p99, 1),
                    FormatDouble(l.p999, 1)});
    }
  }
  PrintTable(table);

  PrintSection("Submission batching");
  TextTable batching({"arm", "submitted", "completed", "device batches", "coalesced away"});
  for (const ArmResult& arm : arms) {
    batching.AddRow({arm.name, std::to_string(arm.stats.submitted),
                     std::to_string(arm.stats.completed), std::to_string(arm.stats.batches),
                     std::to_string(arm.stats.coalesced)});
  }
  PrintTable(batching);

  const serve::LatencySummary& off = arms[0].latency[static_cast<uint32_t>(QosClass::kSysRead)];
  const serve::LatencySummary& on = arms[1].latency[static_cast<uint32_t>(QosClass::kSysRead)];
  PrintSection("Summary: QoS on vs off");
  PrintClaim("SYS reads never queue behind SPARE bulk writes",
             "sys_read p99 " + FormatDouble(off.p99, 1) + " -> " + FormatDouble(on.p99, 1) +
                 " sim us");
  PrintClaim("adjacent-LBA coalescing batches device work",
             std::to_string(arms[1].stats.submitted) + " submissions -> " +
                 std::to_string(arms[1].stats.batches) + " device batches");

  if (!options.metrics_out.empty()) {
    if (Status s = obs::WriteFile(options.metrics_out, MetricsJson(arms)); !s.ok()) {
      std::fprintf(stderr, "[bench] --metrics-out: %s\n", s.ToString().c_str());
      std::exit(1);
    }
  }
  if (!options.trace_out.empty()) {
    if (Status s = obs::WriteFile(options.trace_out, TraceJsonl(arms)); !s.ok()) {
      std::fprintf(stderr, "[bench] --trace-out: %s\n", s.ToString().c_str());
      std::exit(1);
    }
  }

  // Wall-clock throughput: machine-dependent, stderr only.
  uint64_t total_ops = 0;
  double total_wall = 0.0;
  for (const ArmResult& arm : arms) {
    total_ops += arm.ops;
    total_wall += arm.wall_seconds;
  }
  std::fprintf(stderr, "[bench] %" PRIu64 " ops, wall %.3fs (%.0f ops/s, pump mode)\n",
               total_ops, total_wall,
               total_wall > 0.0 ? static_cast<double>(total_ops) / total_wall : 0.0);
  PrintJobsSummary(options.jobs, arms.size(), total_wall);
}

}  // namespace
}  // namespace sos

int main(int argc, char** argv) {
  sos::FlagSet flags("bench_serve",
                     "E21: per-pool QoS and coalescing in the sosd async request core");
  size_t* rounds = flags.Size("rounds", 48, "mixed-class submission bursts per arm");
  const sos::BenchOptions options = sos::ParseSweepArgs(flags, argc, argv);
  sos::Run(options, *rounds);
  return 0;
}
