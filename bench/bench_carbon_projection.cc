// Copyright (c) 2026 The SOS Authors. MIT License.
//
// E5 -- Carbon footprint of flash (§3): the 2021 anchor (765 EB, 122 Mt,
// 28M people), the 2021-2030 projection (>150M people by 2030), and the
// carbon-credit economics (EU credits ~= +40% on a $45/TB QLC SSD).

#include "bench/bench_util.h"
#include "src/carbon/embodied.h"
#include "src/carbon/projection.h"

namespace sos {
namespace {

void Run() {
  PrintBanner("E5", "Flash production carbon projection and credit costs", "§1, §3");

  const CarbonProjection projection{ProjectionParams{}};

  PrintSection("Projected flash production emissions, 2021-2030");
  TextTable table({"year", "production (EB)", "kgCO2e/GB", "emissions (Mt)",
                   "people-equivalent (M)"});
  for (const YearProjection& year : projection.Range(2021, 2030)) {
    table.AddRow({std::to_string(year.year), FormatDouble(year.production_eb, 0),
                  FormatDouble(year.kg_per_gb, 3), FormatDouble(year.emissions_mt, 1),
                  FormatDouble(year.people_equivalent / 1e6, 1)});
  }
  PrintTable(table);

  PrintSection("Paper anchors");
  const YearProjection y2021 = projection.ForYear(2021);
  const YearProjection y2030 = projection.ForYear(2030);
  PrintClaim("2021: ~765 EB produced", FormatDouble(y2021.production_eb, 0) + " EB");
  PrintClaim("2021: ~122 Mt CO2e from flash production",
             FormatDouble(y2021.emissions_mt, 1) + " Mt");
  PrintClaim("2021: equivalent to ~28M people",
             FormatDouble(y2021.people_equivalent / 1e6, 1) + "M people");
  PrintClaim("2030: equivalent of over 150M people",
             FormatDouble(y2030.people_equivalent / 1e6, 1) + "M people");

  PrintSection("Carbon credit cost as a fraction of SSD street price (§3)");
  const FlashCarbonModel carbon;
  TextTable credit_table({"scheme", "USD/tonne", "USD/TB @TLC intensity",
                          "vs $45/TB QLC drive"});
  for (const CarbonCredit& credit : RepresentativeCreditSchemes()) {
    credit_table.AddRow(
        {std::string(credit.name), FormatDouble(credit.usd_per_tonne, 0),
         "$" + FormatDouble(credit.CostPerTb(carbon.tlc_kg_per_gb), 2),
         FormatPercent(credit.PriceIncreaseFraction(kQlcUsdPerTb2023, carbon.tlc_kg_per_gb))});
  }
  PrintTable(credit_table);
  const CarbonCredit eu = RepresentativeCreditSchemes().front();
  PrintClaim("EU credits ~= 40% price increase on $45/TB QLC",
             FormatPercent(eu.PriceIncreaseFraction(kQlcUsdPerTb2023, carbon.tlc_kg_per_gb)));

  PrintSection("Credit cost per technology (denser flash pays less)");
  TextTable tech_table({"tech", "kgCO2e/GB", "EU credit USD/TB"});
  for (CellTech tech : {CellTech::kSlc, CellTech::kMlc, CellTech::kTlc, CellTech::kQlc,
                        CellTech::kPlc}) {
    tech_table.AddRow({std::string(CellTechName(tech)), FormatDouble(carbon.KgPerGb(tech), 3),
                       "$" + FormatDouble(eu.CostPerTb(carbon.KgPerGb(tech)), 2)});
  }
  const double split_kg = carbon.KgPerGbSplit(CellTech::kQlc, CellTech::kPlc, 0.5);
  tech_table.AddRow({"SOS split", FormatDouble(split_kg, 3),
                     "$" + FormatDouble(eu.CostPerTb(split_kg), 2)});
  PrintTable(tech_table);
}

}  // namespace
}  // namespace sos

int main(int argc, char** argv) {
  sos::FlagSet flags("bench_carbon_projection", "E3: embodied-carbon projections per build");
  flags.ParseOrDie(argc, argv);
  sos::Run();
  return 0;
}
