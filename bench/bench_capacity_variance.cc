// Copyright (c) 2026 The SOS Authors. MIT License.
//
// E10 -- Capacity variance and block resuscitation (§4.3, [74][76]): as PLC
// blocks wear past their quality bound they retire; SOS shrinks the exported
// capacity (the host FS tolerates it) and resuscitates retired blocks at
// reduced density (pseudo-TLC), recovering part of the loss. This bench
// drives a SPARE-heavy device to deep wear and prints the capacity timeline.

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/sos/sos_device.h"

namespace sos {
namespace {

void Run() {
  PrintBanner("E10", "Capacity variance under deep wear", "§4.3, [74][76]");

  SosDeviceConfig config;
  config.nand.num_blocks = 96;
  config.nand.wordlines_per_block = 16;
  config.nand.page_size_bytes = 2048;
  config.nand.seed = 77;
  config.nand.store_payloads = false;
  config.sys_share = 0.25;          // SPARE-heavy: stress the lossy pool
  config.spare_retire_rber = 5e-4;  // tight quality bound -> visible retirement
  SimClock clock;
  SosDevice device(config, &clock);

  uint64_t capacity_events = 0;
  device.SetCapacityListener([&](uint64_t) { ++capacity_events; });

  const uint64_t initial_pages = device.capacity_blocks();
  Rng rng(9);
  const uint64_t working_set = initial_pages / 2;
  PlacementDirectory placements(&device);
  const PlacementHandle degradable = placements.For({Durability::kDegradable}).value();

  PrintSection("Write-cycling the SPARE pool far past rated endurance");
  TextTable table({"spare full-pool rewrites", "exported pages", "capacity vs initial",
                   "SPARE blocks", "RESCUE blocks (pTLC)", "retired", "resuscitated"});
  const uint64_t writes_per_round = working_set * 5;  // deep wear per round
  for (int round = 0; round <= 40; ++round) {
    if (round > 0) {
      for (uint64_t i = 0; i < writes_per_round; ++i) {
        // Skew into SPARE: all writes declare themselves degradable.
        if (!device.Write(rng.NextBounded(working_set), {}, degradable).ok()) {
          break;
        }
      }
      clock.Advance(30 * kUsPerDay);
    }
    if (round % 5 == 0) {
      const PoolSnapshot spare = device.SpareSnapshot();
      const PoolSnapshot rescue = device.RescueSnapshot();
      const uint64_t pages = device.capacity_blocks();
      table.AddRow({std::to_string(round), FormatCount(pages),
                    FormatPercent(static_cast<double>(pages) /
                                  static_cast<double>(initial_pages)),
                    FormatCount(spare.total_blocks), FormatCount(rescue.total_blocks),
                    FormatCount(device.ftl().stats().retired_blocks()),
                    FormatCount(device.ftl().stats().resuscitated_blocks())});
    }
  }
  PrintTable(table);

  PrintSection("Summary");
  PrintClaim("capacity shrink notifications delivered to the host",
             FormatCount(capacity_events));
  PrintClaim("capacity retained at end",
             FormatPercent(static_cast<double>(device.capacity_blocks()) /
                           static_cast<double>(initial_pages)));
  const uint64_t retired = device.ftl().stats().retired_blocks();
  const uint64_t resuscitated = device.ftl().stats().resuscitated_blocks();
  PrintClaim("retired PLC blocks reborn as pseudo-TLC",
             retired > 0 ? FormatPercent(static_cast<double>(resuscitated) /
                                         static_cast<double>(retired))
                         : std::string("n/a"));
  std::printf(
      "\nThe device degrades gracefully: capacity ratchets down as worn PLC blocks\n"
      "leave service, but resuscitation at 3 bits/cell recovers 60%% of each retired\n"
      "block's pages, and the host file system keeps operating throughout ([74]).\n");
}

}  // namespace
}  // namespace sos

int main(int argc, char** argv) {
  sos::FlagSet flags("bench_capacity_variance", "E10: capacity variance from retirement/resuscitation");
  flags.ParseOrDie(argc, argv);
  sos::Run();
  return 0;
}
