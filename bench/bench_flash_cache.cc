// Copyright (c) 2026 The SOS Authors. MIT License.
//
// E19 -- Placement directives on a flash-cache workload. A CacheLib-style
// flash cache is the workload class FDP-style placement handles were built
// for: TTLs are declared up front, so the host can tag every object with an
// honest lifetime and the FTL can co-locate data that dies together and
// steer short-lived churn onto already-worn blocks. This bench runs the
// same cache workload under each placement policy (legacy -> static
// per-handle streams -> lifetime-aware allocation) and reports WAF, wear
// variance and embodied carbon per served byte against the non-directed
// baseline.

#include <cstring>

#include "bench/bench_util.h"
#include "src/carbon/embodied.h"
#include "src/sos/experiment.h"

namespace sos {
namespace {

constexpr uint32_t kDays = 365;

LifetimeSimConfig CacheConfig(PlacementPolicy policy) {
  LifetimeSimConfig config;
  config.kind = DeviceKind::kSos;
  config.workload_kind = WorkloadKind::kFlashCache;
  config.seed = 21;
  config.days = kDays;
  config.nand.num_blocks = 96;  // small die -> real GC pressure from churn
  config.training_files = 1500;
  config.sample_period_days = 90;
  // Crank the set/get rates far past the mobile mix: a cache node rewrites
  // its working set continuously, which is where placement starts to matter.
  config.cache_workload.objects_per_day = 280.0;
  config.cache_workload.lookups_per_day = 900.0;
  config.sos.placement_policy = policy;
  return config;
}

// Embodied carbon amortized over the bytes the cache is projected to serve
// across the flash's remaining life: gCO2e per GB served. Lower WAF wears
// the die slower, stretching the same manufactured cells over more service.
double CarbonGramsPerServedGb(const LifetimeSimConfig& config, const LifetimeResult& r) {
  const double capacity_gb =
      static_cast<double>(r.initial_exported_pages()) *
      static_cast<double>(config.nand.page_size_bytes) / 1e9;
  const double device_kg = FlashCarbonModel{}.KgPerGbSplit(CellTech::kQlc, CellTech::kPlc,
                                                           config.sos.sys_share) *
                           capacity_gb;
  const double served_gb_per_year =
      static_cast<double>(r.bytes_served()) / 1e9 / (static_cast<double>(kDays) / 365.0);
  const double lifetime_served_gb = served_gb_per_year * r.projected_lifetime_years();
  return lifetime_served_gb > 0.0 ? device_kg * 1000.0 / lifetime_served_gb : 0.0;
}

size_t PolicyIndex(const std::string& name) {
  if (name == "legacy") {
    return 0;
  }
  return name == "static" ? 1 : 2;
}

void Run(const BenchOptions& options, const std::string& directed_name) {
  PrintBanner("E19", "Placement directives on a flash-cache workload",
              "§4.4 extension (FDP / CacheLib)");

  const std::vector<PlacementPolicy> policies = {
      PlacementPolicy::kLegacy, PlacementPolicy::kStatic, PlacementPolicy::kLifetime};
  std::vector<ExperimentJob> jobs;
  for (PlacementPolicy policy : policies) {
    jobs.push_back({PlacementPolicyName(policy), CacheConfig(policy)});
  }

  ExperimentDriver driver(options.jobs);
  const ExperimentBatch batch = driver.RunBatch(jobs);

  PrintSection("1 year of TTL churn (280 sets/day, 900 gets/day), per policy");
  TextTable table({"placement", "host writes", "WAF", "PEC variance", "bytes served",
                   "flash lifetime (yrs)", "carbon (gCO2e/GB served)"});
  for (size_t i = 0; i < policies.size(); ++i) {
    const LifetimeResult& r = batch.results[i];
    table.AddRow({PlacementPolicyName(policies[i]), FormatBytes(r.host_bytes_written()),
                  FormatDouble(r.ftl().WriteAmplification(), 3),
                  FormatDouble(r.pec_variance(), 1), FormatBytes(r.bytes_served()),
                  FormatDouble(r.projected_lifetime_years(), 1),
                  FormatDouble(CarbonGramsPerServedGb(jobs[i].config, r), 2)});
  }
  PrintTable(table);

  const size_t directed_idx = PolicyIndex(directed_name);
  const LifetimeResult& base = batch.results[0];
  const LifetimeResult& directed = batch.results[directed_idx];

  PrintSection(("Summary: --placement=" + directed_name + " vs legacy").c_str());
  const double base_waf = base.ftl().WriteAmplification();
  const double directed_waf = directed.ftl().WriteAmplification();
  PrintClaim("co-locating data that dies together cuts cache WAF",
             FormatDouble(base_waf, 3) + " -> " + FormatDouble(directed_waf, 3));
  PrintClaim("lower WAF wears the die slower",
             "mean wear " + FormatDouble(base.final_mean_wear_ratio(), 3) + " -> " +
                 FormatDouble(directed.final_mean_wear_ratio(), 3) + " of rated PEC");
  PrintClaim("keepers land on young blocks, churn on worn ones",
             "spare quality " + FormatDouble(base.final_spare_quality(), 3) + " -> " +
                 FormatDouble(directed.final_spare_quality(), 3));

  // Per-handle accounting, exported by the FTL only under a directed policy:
  // how each declared (durability, lifetime) class actually behaved.
  if (directed_idx != 0) {
    PrintSection("Per-handle accounting (directed run)");
    TextTable handles({"handle", "host writes (pages)", "nand writes (pages)", "WAF"});
    const obs::MetricRow* host = nullptr;
    const obs::MetricRow* nand = nullptr;
    for (const obs::MetricRow& row : directed.device_metrics()) {
      const std::string& name = row.name;
      if (name.rfind("ftl.handle.", 0) != 0) {
        continue;
      }
      if (name.size() >= 12 && name.compare(name.size() - 12, 12, ".host_writes") == 0) {
        host = &row;
      } else if (name.size() >= 12 && name.compare(name.size() - 12, 12, ".nand_writes") == 0) {
        nand = &row;
      } else if (name.size() >= 20 &&
                 name.compare(name.size() - 20, 20, ".write_amplification") == 0 &&
                 host != nullptr && nand != nullptr) {
        const std::string label =
            name.substr(std::strlen("ftl.handle."),
                        name.size() - std::strlen("ftl.handle.") - 20);
        handles.AddRow({label, FormatCount(host->counter), FormatCount(nand->counter),
                        FormatDouble(row.gauge, 3)});
        host = nullptr;
        nand = nullptr;
      }
    }
    PrintTable(handles);
  }
  std::printf(
      "\nThe host knows these lifetimes for free (the TTL is part of every set\n"
      "request); declaring them through placement handles is all the FTL needs to\n"
      "keep same-fate data in the same erase blocks. The two directed policies\n"
      "trade differently: static streams also narrow the wear spread (and with it\n"
      "carbon per served byte), while lifetime-aware allocation deliberately\n"
      "concentrates churn on already-worn blocks -- PEC variance rises, buying\n"
      "retention headroom on the young blocks that keep long-lived data.\n");

  ExportBatchTelemetry(batch.results, options);
  PrintJobsSummary(driver.jobs(), jobs.size(), batch.wall_seconds);
}

}  // namespace
}  // namespace sos

int main(int argc, char** argv) {
  sos::FlagSet flags("bench_flash_cache",
                     "E19: FDP-style placement directives on a CacheLib-like cache workload");
  std::string* placement =
      flags.Enum("placement", "lifetime", {"legacy", "static", "lifetime"},
                 "directed arm compared against the legacy baseline");
  const sos::BenchOptions options = sos::ParseSweepArgs(flags, argc, argv);
  sos::Run(options, *placement);
  return 0;
}
