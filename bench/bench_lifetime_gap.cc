// Copyright (c) 2026 The SOS Authors. MIT License.
//
// E4 -- The wear gap (§2.3.2): under typical usage a phone consumes only a
// few percent of its flash endurance before being discarded at 2-3 years;
// the flash outlives the device by roughly an order of magnitude. Runs a
// 3-year simulation per device technology and reports wear consumed and
// extrapolated flash lifetime.
//
// The device-kind table and the intensity sweep are one batch through the
// experiment driver; --jobs=N runs up to 7 sims concurrently with stdout
// byte-identical to --jobs=1.

#include "bench/bench_util.h"
#include "src/sos/experiment.h"

namespace sos {
namespace {

LifetimeSimConfig GapConfig(DeviceKind kind, double intensity) {
  LifetimeSimConfig config;
  config.kind = kind;
  config.days = 365 * 3;
  config.seed = 7;
  config.nand.num_blocks = 256;  // 3-year accumulation ~50% of TLC capacity
  config.training_files = 3000;
  config.workload.photos_per_day = 1.0;
  config.workload.cache_files_per_day = 6.0;
  config.workload.deletes_per_day = 5.0;
  config.workload.app_updates_per_day = 50.0;
  config.workload.reads_per_day = 60.0;
  config.workload.intensity = intensity;
  config.file_size_cap = 32 * kKiB;
  config.sample_period_days = 365;
  return config;
}

void Run(const BenchOptions& options) {
  PrintBanner("E4", "The wear gap: 3-year service life vs flash endurance", "§2.3.1-2.3.2");

  const std::vector<DeviceKind> kinds = {DeviceKind::kSos, DeviceKind::kTlcBaseline,
                                         DeviceKind::kQlcBaseline, DeviceKind::kPlcNaive};
  const std::vector<double> intensities = {0.5, 1.0, 1.5};
  std::vector<ExperimentJob> jobs;
  for (DeviceKind kind : kinds) {
    jobs.push_back({DeviceKindName(kind), GapConfig(kind, 1.0)});
  }
  for (double intensity : intensities) {
    jobs.push_back({FormatDouble(intensity, 1) + "x", GapConfig(DeviceKind::kSos, intensity)});
  }

  ExperimentDriver driver(options.jobs);
  const ExperimentBatch batch = driver.RunBatch(jobs);

  PrintSection("3 simulated years of typical use, per device build");
  TextTable table({"device", "data written", "WA", "mean PEC", "max wear used",
                   "flash lifetime (yrs)", "x service life"});
  for (size_t i = 0; i < kinds.size(); ++i) {
    const LifetimeResult& r = batch.results[i];
    table.AddRow({DeviceKindName(kinds[i]), FormatBytes(r.host_bytes_written()),
                  FormatDouble(r.ftl().WriteAmplification(), 2),
                  FormatDouble(r.samples().empty() ? 0.0 : r.samples().back().mean_pec, 1),
                  FormatPercent(r.final_max_wear_ratio()),
                  FormatDouble(r.projected_lifetime_years(), 1),
                  FormatDouble(r.projected_lifetime_years() / 3.0, 1) + "x"});
  }
  PrintTable(table);

  PrintSection("Paper claims (§2.3.2)");
  // Same (config, seed) as the table's TLC row -- determinism lets us reuse
  // the result instead of re-running the sim.
  const LifetimeResult& tlc = batch.results[1];
  PrintClaim("typical users wear out ~5% of rated endurance",
             FormatPercent(tlc.final_max_wear_ratio()) + " on TLC after 3 years");
  PrintClaim("flash outlasts the encasing device by ~10x",
             FormatDouble(tlc.projected_lifetime_years() / 3.0, 1) + "x the 3-year service life");
  std::printf(
      "  (Scaling note: this workload writes ~0.7 device-capacities/year; [38]'s ~5%%\n"
      "   figure reflects heavier users on smaller devices. The claim under test is\n"
      "   the *order of magnitude* of headroom, which holds across the whole table.)\n");

  PrintSection("Usage-intensity sweep (SOS device, 3 years)");
  // Beyond ~1.5x the scaled device runs capacity-full and enters the GC-
  // thrash regime the auto-delete fallback manages -- that endgame is E11's
  // experiment, not the wear-gap story.
  TextTable sweep({"intensity", "data written", "end free space", "max wear used",
                   "flash lifetime (yrs)", "auto-deletes"});
  for (size_t i = 0; i < intensities.size(); ++i) {
    const LifetimeResult& r = batch.results[kinds.size() + i];
    sweep.AddRow({FormatDouble(intensities[i], 1) + "x", FormatBytes(r.host_bytes_written()),
                  FormatPercent(r.samples().empty() ? 0.0 : r.samples().back().fs_free_fraction),
                  FormatPercent(r.final_max_wear_ratio()),
                  FormatDouble(r.projected_lifetime_years(), 1),
                  FormatCount(r.autodelete().files_deleted)});
  }
  PrintTable(sweep);
  std::printf(
      "\nEven on low-endurance PLC-based SOS, typical use leaves the flash with years of\n"
      "headroom beyond the 2-3 year device life -- the gap SOS spends on density (§4.1).\n"
      "Note the regime change as the device runs out of free space (end free < ~15%%):\n"
      "near-full GC dominates wear -- that endgame is managed by the §4.5 fallback (E11).\n");

  ExportBatchTelemetry(batch.results, options);
  PrintJobsSummary(driver.jobs(), jobs.size(), batch.wall_seconds);
}

}  // namespace
}  // namespace sos

int main(int argc, char** argv) {
  sos::FlagSet flags("bench_lifetime_gap",
                     "E4: wear gap -- 3-year service life vs flash endurance");
  sos::Run(sos::ParseSweepArgs(flags, argc, argv));
  return 0;
}
