// Copyright (c) 2026 The SOS Authors. MIT License.
//
// E3 -- Density/endurance/reliability tradeoff table (§2.2, §4.1): bits per
// cell, density relative to TLC, rated endurance, the paper's endurance
// ratios (PLC 6-10x below TLC, 2x below QLC), and the split-scheme density.

#include "bench/bench_util.h"
#include "src/carbon/embodied.h"
#include "src/flash/cell_tech.h"
#include "src/flash/error_model.h"

namespace sos {
namespace {

void Run() {
  PrintBanner("E3", "Cell technology density vs endurance", "§2.2, §4.1");

  PrintSection("Technology catalog");
  TextTable table({"tech", "bits/cell", "levels", "density vs TLC", "endurance (PEC)",
                   "base RBER", "RBER @rated+1yr"});
  for (CellTech tech : {CellTech::kSlc, CellTech::kMlc, CellTech::kTlc, CellTech::kQlc,
                        CellTech::kPlc}) {
    const CellTechInfo& info = GetCellTechInfo(tech);
    PageErrorState worn;
    worn.mode = tech;
    worn.endurance_pec = info.rated_endurance_pec;
    worn.pec_at_program = info.rated_endurance_pec;
    worn.retention_years = 1.0;
    char rber[32];
    std::snprintf(rber, sizeof(rber), "%.1e", info.base_rber);
    char worn_rber[32];
    std::snprintf(worn_rber, sizeof(worn_rber), "%.1e", ErrorModel::Rber(worn));
    table.AddRow({std::string(CellTechName(tech)), std::to_string(info.bits_per_cell),
                  std::to_string(VoltageLevels(tech)),
                  FormatPercent(RelativeDensity(tech, CellTech::kTlc) - 1.0, 0) + " gain",
                  FormatCount(info.rated_endurance_pec), rber, worn_rber});
  }
  PrintTable(table);

  PrintSection("Paper endurance ratios (§4.1)");
  const double tlc = GetCellTechInfo(CellTech::kTlc).rated_endurance_pec;
  const double qlc = GetCellTechInfo(CellTech::kQlc).rated_endurance_pec;
  const double plc = GetCellTechInfo(CellTech::kPlc).rated_endurance_pec;
  PrintClaim("PLC endurance 6-10x below TLC", FormatDouble(tlc / plc, 1) + "x");
  PrintClaim("PLC endurance ~2x below QLC", FormatDouble(qlc / plc, 1) + "x");
  PrintClaim("QLC density +33% over TLC",
             FormatPercent(RelativeDensity(CellTech::kQlc, CellTech::kTlc) - 1.0));
  PrintClaim("PLC density +66% over TLC",
             FormatPercent(RelativeDensity(CellTech::kPlc, CellTech::kTlc) - 1.0));

  PrintSection("SOS split scheme (pseudo-QLC SYS + PLC SPARE, 50/50)");
  const double eff_bits =
      FlashCarbonModel::EffectiveBitsPerCell(CellTech::kQlc, CellTech::kPlc, 0.5);
  PrintClaim("effective bits/cell of the split", FormatDouble(eff_bits, 2));
  PrintClaim("split density gain vs TLC (~+50%)",
             FormatPercent(FlashCarbonModel::SplitDensityGain(CellTech::kQlc, CellTech::kPlc,
                                                              0.5, CellTech::kTlc) -
                           1.0));
  PrintClaim("split density gain vs QLC (~+10%)",
             FormatPercent(FlashCarbonModel::SplitDensityGain(CellTech::kQlc, CellTech::kPlc,
                                                              0.5, CellTech::kQlc) -
                           1.0));

  PrintSection("SYS-share sweep: density gain vs TLC as the split varies");
  TextTable sweep({"SYS share (pQLC)", "effective bits/cell", "gain vs TLC", "gain vs QLC"});
  for (double share : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    sweep.AddRow(
        {FormatPercent(share, 0),
         FormatDouble(FlashCarbonModel::EffectiveBitsPerCell(CellTech::kQlc, CellTech::kPlc,
                                                             share),
                      2),
         FormatPercent(FlashCarbonModel::SplitDensityGain(CellTech::kQlc, CellTech::kPlc, share,
                                                          CellTech::kTlc) -
                       1.0),
         FormatPercent(FlashCarbonModel::SplitDensityGain(CellTech::kQlc, CellTech::kPlc, share,
                                                          CellTech::kQlc) -
                       1.0)});
  }
  PrintTable(sweep);
}

}  // namespace
}  // namespace sos

int main(int argc, char** argv) {
  sos::FlagSet flags("bench_density_endurance", "E2: density vs endurance/error-rate tradeoff");
  flags.ParseOrDie(argc, argv);
  sos::Run();
  return 0;
}
