// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Fault-tolerance / crash-recovery bench: replays a seeded host workload
// against the SOS FTL while a deterministic FaultInjector cuts power every
// --cut-period device ops (plus any --fault=<spec> schedule), remounting via
// RecoverFromFlash() after every cut and auditing recovered state against an
// oracle of acknowledged writes. The report is the PR's acceptance artifact:
// zero acked SYS-class loss across the sweep, SPARE degradation bounded and
// flagged, and stdout/--metrics-out byte-identical for any --jobs value.
//
// Fault specs ride the repeatable --fault flag, e.g.
//   bench_fault_tolerance --fault=power_cut@1000 --fault=die_fail@2000,d0
// Malformed specs are hard errors before any simulation runs.

#include <cinttypes>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/fault/recovery_verifier.h"

namespace sos {
namespace {

int Run(int argc, char** argv) {
  FlagSet flags("bench_fault_tolerance",
                "power-cut & fault injection recovery verifier (DESIGN.md §10)");
  uint64_t* seeds_count = flags.U64("seeds", 8, "number of consecutive seeds to sweep");
  uint64_t* seed_base = flags.U64("seed-base", 1, "first seed of the sweep");
  uint64_t* ops = flags.U64("ops", 4000, "host operations per seed");
  uint64_t* cut_period = flags.U64("cut-period", 400, "power cut every K-th device op (0 = off)");
  std::vector<std::string>* fault_args =
      flags.StringList("fault", "extra fault spec, e.g. power_cut@1000 or die_fail@2000,d0");
  size_t* jobs = flags.Size("jobs", 1, "parallel verifier runs (0 = hardware concurrency)");
  std::string* metrics_out =
      flags.Path("metrics-out", "write the sweep's metrics as JSON to this file");
  flags.ParseOrDie(argc, argv);

  VerifierConfig config;
  config.total_ops = *ops;
  config.cut_period = *cut_period;
  for (const std::string& text : *fault_args) {
    auto spec = ParseFaultSpec(text);
    if (!spec.ok()) {
      std::fprintf(stderr, "bench_fault_tolerance: %s\n", spec.status().message().c_str());
      return 2;
    }
    config.extra_faults.push_back(spec.value());
  }
  if (*seeds_count == 0) {
    std::fprintf(stderr, "bench_fault_tolerance: --seeds must be >= 1\n");
    return 2;
  }

  std::vector<uint64_t> seeds;
  seeds.reserve(*seeds_count);
  for (uint64_t s = 0; s < *seeds_count; ++s) {
    seeds.push_back(*seed_base + s);
  }

  PrintBanner("FAULT", "Power-cut recovery: zero acked SYS loss under deterministic faults",
              "DESIGN.md §10");
  WallTimer timer;
  const std::vector<VerifierResult> results = RunRecoveryVerifierSweep(config, seeds, *jobs);
  PrintJobsSummary(*jobs, results.size(), timer.Seconds());

  PrintSection("per-seed recovery audit");
  std::printf("%s", RenderVerifierReport(config, results).c_str());

  if (!metrics_out->empty()) {
    obs::MetricRegistry registry;
    for (size_t i = 0; i < results.size(); ++i) {
      registry.Append(results[i].metrics, "run." + std::to_string(i) + ".");
    }
    if (Status s = obs::WriteFile(*metrics_out, registry.ToJson()); !s.ok()) {
      std::fprintf(stderr, "[bench] --metrics-out: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  bool all_ok = true;
  for (const VerifierResult& r : results) {
    all_ok = all_ok && r.ok;
  }
  return all_ok ? 0 : 1;
}

}  // namespace
}  // namespace sos

int main(int argc, char** argv) { return sos::Run(argc, argv); }
