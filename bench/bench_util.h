// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Shared helpers for the experiment benches. Every bench binary regenerates
// one paper artifact (figure / table / quantitative claim) and prints it as
// an ASCII report; EXPERIMENTS.md records paper-vs-measured for each.

#ifndef SOS_BENCH_BENCH_UTIL_H_
#define SOS_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

#include "src/common/table.h"

namespace sos {

// Prints the standard experiment banner.
inline void PrintBanner(const char* experiment_id, const char* title, const char* paper_ref) {
  std::printf("================================================================================\n");
  std::printf("%s: %s\n", experiment_id, title);
  std::printf("Paper reference: %s\n", paper_ref);
  std::printf("================================================================================\n");
}

inline void PrintSection(const char* name) { std::printf("\n--- %s ---\n", name); }

inline void PrintTable(const TextTable& table) { std::printf("%s", table.Render().c_str()); }

inline void PrintClaim(const char* claim, const std::string& measured) {
  std::printf("  paper: %-58s measured: %s\n", claim, measured.c_str());
}

}  // namespace sos

#endif  // SOS_BENCH_BENCH_UTIL_H_
