// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Shared helpers for the experiment benches. Every bench binary regenerates
// one paper artifact (figure / table / quantitative claim) and prints it as
// an ASCII report; EXPERIMENTS.md records paper-vs-measured for each.

#ifndef SOS_BENCH_BENCH_UTIL_H_
#define SOS_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/common/table.h"

namespace sos {

// Command-line options shared by the sweep benches. --jobs=N fans a bench's
// independent simulations across N pool workers (see src/sos/experiment.h);
// the report tables on stdout are byte-identical for every N -- only wall
// clock changes.
struct BenchOptions {
  size_t jobs = 1;
};

// Parses --jobs=N / --jobs N (N == 0 means hardware concurrency). Unknown
// arguments are ignored so benches keep their own positional flags.
inline BenchOptions ParseBenchArgs(int argc, char** argv) {
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--jobs=", 7) == 0) {
      options.jobs = static_cast<size_t>(std::strtoul(arg + 7, nullptr, 10));
    } else if (std::strcmp(arg, "--jobs") == 0 && i + 1 < argc) {
      options.jobs = static_cast<size_t>(std::strtoul(argv[++i], nullptr, 10));
    }
  }
  return options;
}

// Wall-clock timer for speedup reporting.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// Prints the parallel-run summary to *stderr*: timing is machine-dependent,
// and keeping it off stdout is what lets `bench --jobs=4 > a` and
// `bench --jobs=1 > b` diff clean (the determinism contract).
inline void PrintJobsSummary(size_t jobs, size_t sims, double wall_seconds) {
  std::fprintf(stderr, "[bench] %zu simulation(s), --jobs=%zu, wall %.2fs (%.2f sims/s)\n",
               sims, jobs, wall_seconds,
               wall_seconds > 0.0 ? static_cast<double>(sims) / wall_seconds : 0.0);
}

// Prints the standard experiment banner.
inline void PrintBanner(const char* experiment_id, const char* title, const char* paper_ref) {
  std::printf("================================================================================\n");
  std::printf("%s: %s\n", experiment_id, title);
  std::printf("Paper reference: %s\n", paper_ref);
  std::printf("================================================================================\n");
}

inline void PrintSection(const char* name) { std::printf("\n--- %s ---\n", name); }

inline void PrintTable(const TextTable& table) { std::printf("%s", table.Render().c_str()); }

inline void PrintClaim(const char* claim, const std::string& measured) {
  std::printf("  paper: %-58s measured: %s\n", claim, measured.c_str());
}

}  // namespace sos

#endif  // SOS_BENCH_BENCH_UTIL_H_
