// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Shared helpers for the experiment benches. Every bench binary regenerates
// one paper artifact (figure / table / quantitative claim) and prints it as
// an ASCII report; EXPERIMENTS.md records paper-vs-measured for each.
//
// Command lines go through FlagSet: benches declare the flags they accept
// (`flags.Size("jobs", ...)`), then Parse() validates strictly -- unknown
// flags and malformed values are hard errors with usage text, never silent
// no-ops. (The previous parser ignored anything it did not recognize, so
// `--jbos=4` ran the bench serially without a word.)

#ifndef SOS_BENCH_BENCH_UTIL_H_
#define SOS_BENCH_BENCH_UTIL_H_

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/common/table.h"
#include "src/obs/metrics.h"
#include "src/sos/experiment.h"

namespace sos {

// ---------------------------------------------------------------------------
// FlagSet: declarative, strict command-line parsing for benches.
// ---------------------------------------------------------------------------

// Declare-then-parse flag registry. Each declaration returns a stable pointer
// to the parsed value (valid for the FlagSet's lifetime); Parse() fills the
// values in and rejects anything not declared:
//
//   FlagSet flags("bench_lifetime_gap", "E4: the wear gap");
//   size_t* jobs = flags.Size("jobs", 1, "parallel sims (0 = hw concurrency)");
//   std::string* out = flags.Path("metrics-out", "write metrics JSON here");
//   flags.ParseOrDie(argc, argv);
//
// Accepted syntax: --name=value and --name value. --help prints usage and
// exits 0. Numeric values must be exact non-negative decimals: empty strings,
// trailing garbage ("4x"), sign prefixes and overflow are all rejected --
// never truncated or defaulted.
class FlagSet {
 public:
  FlagSet(std::string program, std::string description)
      : program_(std::move(program)), description_(std::move(description)) {}

  FlagSet(const FlagSet&) = delete;
  FlagSet& operator=(const FlagSet&) = delete;

  // A size_t flag (worker counts, iteration counts).
  size_t* Size(const std::string& name, size_t default_value, const std::string& help) {
    Flag& flag = Declare(name, Kind::kSize, help, FormatU64(default_value));
    flag.size_value = default_value;
    return &flag.size_value;
  }

  // A uint64_t flag (seeds, byte counts).
  uint64_t* U64(const std::string& name, uint64_t default_value, const std::string& help) {
    Flag& flag = Declare(name, Kind::kU64, help, FormatU64(default_value));
    flag.u64_value = default_value;
    return &flag.u64_value;
  }

  // A file-path flag; empty (the default) means "feature off".
  std::string* Path(const std::string& name, const std::string& help) {
    Flag& flag = Declare(name, Kind::kPath, help, "unset");
    return &flag.path_value;
  }

  // An enum-valued flag: the parsed value is always one of `choices`, spelled
  // exactly. Anything else -- including case variants and abbreviations -- is
  // a hard parse error that names the accepted set. The default must itself
  // be a choice (a bench bug otherwise, caught at declaration time).
  std::string* Enum(const std::string& name, const std::string& default_value,
                    std::vector<std::string> choices, const std::string& help) {
    bool default_ok = false;
    for (const std::string& choice : choices) {
      default_ok = default_ok || choice == default_value;
    }
    if (!default_ok) {
      std::fprintf(stderr, "FlagSet: default '%s' for --%s is not one of its choices\n",
                   default_value.c_str(), name.c_str());
      std::abort();
    }
    Flag& flag = Declare(name, Kind::kEnum, help, default_value);
    flag.choices = std::move(choices);
    flag.enum_value = default_value;
    return &flag.enum_value;
  }

  // A repeatable string-valued flag: every occurrence appends, in command-line
  // order, so `--fault=power_cut@1000 --fault=die_fail@2,d3` yields both
  // specs. Values are opaque strings here; the bench parses them (and rejects
  // malformed ones) after Parse() returns. Empty values are hard errors.
  std::vector<std::string>* StringList(const std::string& name, const std::string& help) {
    Flag& flag = Declare(name, Kind::kList, help + " (repeatable)", "none");
    return &flag.list_value;
  }

  // Arguments starting with `prefix` are left for another parser (e.g.
  // "--benchmark_" for google-benchmark's Initialize()).
  void Passthrough(const std::string& prefix) { passthrough_.push_back(prefix); }

  // Strict parse. On --help: prints usage to stdout and exits 0. Returns
  // kInvalidArgument for unknown flags, missing values and malformed
  // numbers; on error the flag values are unspecified.
  [[nodiscard]] Status Parse(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg = argv[i];
      if (arg == "--help" || arg == "-h") {
        std::fputs(Usage().c_str(), stdout);
        std::exit(0);
      }
      if (IsPassthrough(arg)) {
        continue;
      }
      if (arg.size() < 3 || arg.substr(0, 2) != "--") {
        return Status(StatusCode::kInvalidArgument,
                      "unexpected argument '" + std::string(arg) + "'");
      }
      std::string_view name = arg.substr(2);
      std::string_view value;
      bool have_value = false;
      if (const size_t eq = name.find('='); eq != std::string_view::npos) {
        value = name.substr(eq + 1);
        name = name.substr(0, eq);
        have_value = true;
      }
      Flag* flag = Find(name);
      if (flag == nullptr) {
        return Status(StatusCode::kInvalidArgument, "unknown flag --" + std::string(name));
      }
      if (!have_value) {
        if (i + 1 >= argc) {
          return Status(StatusCode::kInvalidArgument,
                        "flag --" + std::string(name) + " requires a value");
        }
        value = argv[++i];
      }
      if (Status s = Assign(*flag, value); !s.ok()) {
        return s;
      }
    }
    return Status::Ok();
  }

  // Parse() or print the error plus usage to stderr and exit 2. The right
  // call for bench main(): a typo'd sweep should fail loudly, not run with
  // defaults.
  void ParseOrDie(int argc, char** argv) {
    if (Status s = Parse(argc, argv); !s.ok()) {
      std::fprintf(stderr, "%s: %s\n\n%s", program_.c_str(), s.message().c_str(),
                   Usage().c_str());
      std::exit(2);
    }
  }

  std::string Usage() const {
    std::string out = "usage: " + program_ + " [flags]\n";
    if (!description_.empty()) {
      out += "  " + description_ + "\n";
    }
    out += "flags:\n";
    for (const Flag& flag : flags_) {
      const std::string value_text =
          flag.kind == Kind::kEnum ? JoinChoices(flag.choices) : KindName(flag.kind);
      out += "  --" + flag.name + "=<" + value_text + ">  " + flag.help +
             " (default: " + flag.default_text + ")\n";
    }
    out += "  --help  print this message and exit\n";
    for (const std::string& prefix : passthrough_) {
      out += "  " + prefix + "*  passed through untouched\n";
    }
    return out;
  }

 private:
  enum class Kind { kSize, kU64, kPath, kList, kEnum };

  struct Flag {
    std::string name;
    Kind kind = Kind::kSize;
    std::string help;
    std::string default_text;
    size_t size_value = 0;
    uint64_t u64_value = 0;
    std::string path_value;
    std::vector<std::string> list_value;
    std::string enum_value;
    std::vector<std::string> choices;
  };

  static const char* KindName(Kind kind) {
    switch (kind) {
      case Kind::kSize:
      case Kind::kU64:
        return "N";
      case Kind::kPath:
        return "path";
      case Kind::kList:
        return "value";
      case Kind::kEnum:
        return "choice";
    }
    return "?";
  }

  static std::string JoinChoices(const std::vector<std::string>& choices) {
    std::string out;
    for (const std::string& choice : choices) {
      if (!out.empty()) {
        out += '|';
      }
      out += choice;
    }
    return out;
  }

  static std::string FormatU64(uint64_t v) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
    return buf;
  }

  Flag& Declare(const std::string& name, Kind kind, const std::string& help,
                std::string default_text) {
    // Duplicate declarations are a bench bug, not a user error.
    if (Find(name) != nullptr) {
      std::fprintf(stderr, "FlagSet: duplicate flag --%s\n", name.c_str());
      std::abort();
    }
    Flag flag;
    flag.name = name;
    flag.kind = kind;
    flag.help = help;
    flag.default_text = std::move(default_text);
    flags_.push_back(std::move(flag));
    return flags_.back();
  }

  Flag* Find(std::string_view name) {
    for (Flag& flag : flags_) {
      if (flag.name == name) {
        return &flag;
      }
    }
    return nullptr;
  }

  bool IsPassthrough(std::string_view arg) const {
    for (const std::string& prefix : passthrough_) {
      if (arg.substr(0, prefix.size()) == prefix) {
        return true;
      }
    }
    return false;
  }

  static Status ParseU64(std::string_view name, std::string_view text, uint64_t* out) {
    const std::string buf(text);
    // strtoull silently wraps negatives and skips leading whitespace; demand
    // a bare decimal so "--jobs=-1" and "--jobs= 4" fail instead of lying.
    if (buf.empty() || buf[0] < '0' || buf[0] > '9') {
      return Status(StatusCode::kInvalidArgument,
                    "flag --" + std::string(name) + ": '" + buf + "' is not a non-negative integer");
    }
    errno = 0;
    char* end = nullptr;
    const unsigned long long value = std::strtoull(buf.c_str(), &end, 10);
    if (errno == ERANGE) {
      return Status(StatusCode::kInvalidArgument,
                    "flag --" + std::string(name) + ": '" + buf + "' is out of range");
    }
    if (end != buf.c_str() + buf.size()) {
      return Status(StatusCode::kInvalidArgument,
                    "flag --" + std::string(name) + ": '" + buf + "' has trailing characters");
    }
    *out = value;
    return Status::Ok();
  }

  static Status Assign(Flag& flag, std::string_view value) {
    switch (flag.kind) {
      case Kind::kSize: {
        uint64_t parsed = 0;
        if (Status s = ParseU64(flag.name, value, &parsed); !s.ok()) {
          return s;
        }
        flag.size_value = static_cast<size_t>(parsed);
        return Status::Ok();
      }
      case Kind::kU64:
        return ParseU64(flag.name, value, &flag.u64_value);
      case Kind::kPath:
        if (value.empty()) {
          return Status(StatusCode::kInvalidArgument,
                        "flag --" + flag.name + " requires a non-empty path");
        }
        flag.path_value.assign(value.begin(), value.end());
        return Status::Ok();
      case Kind::kList:
        if (value.empty()) {
          return Status(StatusCode::kInvalidArgument,
                        "flag --" + flag.name + " requires a non-empty value");
        }
        flag.list_value.emplace_back(value.begin(), value.end());
        return Status::Ok();
      case Kind::kEnum:
        for (const std::string& choice : flag.choices) {
          if (choice == value) {
            flag.enum_value = choice;
            return Status::Ok();
          }
        }
        return Status(StatusCode::kInvalidArgument,
                      "flag --" + flag.name + ": '" + std::string(value) +
                          "' is not one of " + JoinChoices(flag.choices));
    }
    return Status(StatusCode::kInvalidArgument, "unhandled flag kind");
  }

  std::string program_;
  std::string description_;
  std::deque<Flag> flags_;  // deque: returned value pointers stay stable
  std::vector<std::string> passthrough_;
};

// The standard sweep-bench trio. Declared together so every driver bench
// spells its CLI identically.
struct BenchOptions {
  size_t jobs = 1;          // --jobs=N fans independent sims over N workers
  std::string metrics_out;  // --metrics-out=<file>: batch metrics JSON
  std::string trace_out;    // --trace-out=<file>: batch trace JSONL
};

// Canonical meaning of --jobs=0: "auto", i.e. one worker per hardware
// thread. Resolved at parse time so every consumer (ExperimentDriver, the
// fleet runner, ad-hoc pools) sees the same concrete worker count; negative
// and garbage values never reach here (FlagSet hard-errors on them).
inline size_t ResolveJobs(size_t jobs) { return jobs == 0 ? ThreadPool::DefaultThreads() : jobs; }

// The usage text every bench shows for --jobs; one spelling, one meaning.
inline const char* JobsFlagHelp() {
  return "parallel simulations (0 = auto: one per hardware thread)";
}

// Declares --jobs / --metrics-out / --trace-out on `flags`, parses, and
// returns the values. Exits with usage on any unknown or malformed flag.
// --jobs=0 is resolved to the hardware concurrency (see ResolveJobs).
inline BenchOptions ParseSweepArgs(FlagSet& flags, int argc, char** argv) {
  size_t* jobs = flags.Size("jobs", 1, JobsFlagHelp());
  std::string* metrics_out =
      flags.Path("metrics-out", "write the batch's metrics as JSON to this file");
  std::string* trace_out =
      flags.Path("trace-out", "write the batch's event trace as JSONL to this file");
  flags.ParseOrDie(argc, argv);
  BenchOptions options;
  options.jobs = ResolveJobs(*jobs);
  options.metrics_out = *metrics_out;
  options.trace_out = *trace_out;
  return options;
}

// Writes the batch telemetry exports named by `options`; empty paths are
// features turned off. The bytes depend only on `results` (job order), so
// re-running with any --jobs value reproduces the files exactly. A failed
// write is fatal: a bench asked for an artifact must not exit 0 without it.
inline void ExportBatchTelemetry(const std::vector<LifetimeResult>& results,
                                 const BenchOptions& options) {
  if (!options.metrics_out.empty()) {
    if (Status s = obs::WriteFile(options.metrics_out, BatchMetricsJson(results)); !s.ok()) {
      std::fprintf(stderr, "[bench] --metrics-out: %s\n", s.ToString().c_str());
      std::exit(1);
    }
  }
  if (!options.trace_out.empty()) {
    if (Status s = obs::WriteFile(options.trace_out, BatchTraceJsonl(results)); !s.ok()) {
      std::fprintf(stderr, "[bench] --trace-out: %s\n", s.ToString().c_str());
      std::exit(1);
    }
  }
}

// Wall-clock timer for speedup reporting.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// Prints the parallel-run summary to *stderr*: timing is machine-dependent,
// and keeping it off stdout is what lets `bench --jobs=4 > a` and
// `bench --jobs=1 > b` diff clean (the determinism contract).
inline void PrintJobsSummary(size_t jobs, size_t sims, double wall_seconds) {
  std::fprintf(stderr, "[bench] %zu simulation(s), --jobs=%zu, wall %.2fs (%.2f sims/s)\n",
               sims, jobs, wall_seconds,
               wall_seconds > 0.0 ? static_cast<double>(sims) / wall_seconds : 0.0);
}

// Prints the standard experiment banner.
inline void PrintBanner(const char* experiment_id, const char* title, const char* paper_ref) {
  std::printf("================================================================================\n");
  std::printf("%s: %s\n", experiment_id, title);
  std::printf("Paper reference: %s\n", paper_ref);
  std::printf("================================================================================\n");
}

inline void PrintSection(const char* name) { std::printf("\n--- %s ---\n", name); }

inline void PrintTable(const TextTable& table) { std::printf("%s", table.Render().c_str()); }

inline void PrintClaim(const char* claim, const std::string& measured) {
  std::printf("  paper: %-58s measured: %s\n", claim, measured.c_str());
}

}  // namespace sos

#endif  // SOS_BENCH_BENCH_UTIL_H_
