// Copyright (c) 2026 The SOS Authors. MIT License.
//
// E2 -- Figure 2 as a working system: host FS -> ML classifier -> device
// moving low-priority data from pseudo-QLC (SYS) to PLC (SPARE). Runs one
// simulated year of typical phone use and reports partition occupancy over
// time, migration traffic, write amplification, and end-state quality.

#include "bench/bench_util.h"
#include "src/sos/lifetime_sim.h"

namespace sos {
namespace {

LifetimeSimConfig PipelineConfig() {
  LifetimeSimConfig config;
  config.kind = DeviceKind::kSos;
  config.days = 365;
  config.seed = 2023;
  config.nand.num_blocks = 192;
  config.training_files = 4000;
  config.workload.photos_per_day = 2.0;
  config.workload.cache_files_per_day = 6.0;
  config.workload.deletes_per_day = 4.0;
  config.file_size_cap = 32 * kKiB;
  config.sample_period_days = 30;
  return config;
}

void Run() {
  PrintBanner("E2", "The SOS pipeline end to end (Figure 2)", "Figure 2, §4.2-4.4");

  std::printf("\nSimulating 1 year of typical phone use on a scaled SOS device\n");
  std::printf("(PLC die, SYS=pseudo-QLC+LDPC+parity, SPARE=PLC no-ECC, daily classifier,\n");
  std::printf(" monthly scrub, auto-delete fallback)...\n");

  LifetimeSim sim(PipelineConfig());
  const LifetimeResult result = sim.Run();

  PrintSection("Timeline (sampled monthly)");
  TextTable table({"day", "files", "SPARE pages", "fs free", "max wear", "capacity (pages)",
                   "SPARE quality"});
  for (const DaySample& s : result.samples()) {
    table.AddRow({std::to_string(s.day), FormatCount(s.live_files), FormatCount(s.spare_pages),
                  FormatPercent(s.fs_free_fraction), FormatPercent(s.max_wear_ratio),
                  FormatCount(s.exported_pages), FormatDouble(s.spare_quality, 3)});
  }
  PrintTable(table);

  PrintSection("Classifier-driven data movement (§4.4)");
  PrintClaim("new data lands on pseudo-QLC first, demoted later",
             FormatCount(result.migration().demoted) + " file demotions");
  PrintClaim("preference drift promotes some data back",
             FormatCount(result.migration().promoted) + " promotions");
  PrintClaim("device-level page migrations", FormatCount(result.ftl().migrations()));

  PrintSection("Device totals after 1 year");
  PrintClaim("host data written", FormatBytes(result.host_bytes_written()));
  PrintClaim("write amplification (incl. GC, parity, migration)",
             FormatDouble(result.ftl().WriteAmplification(), 2));
  PrintClaim("parity pages written (SYS redundancy, §4.2)",
             FormatCount(result.ftl().parity_writes()));
  PrintClaim("scrub refreshes (preemptive rescue, §4.3)", FormatCount(result.ftl().refreshes()));
  PrintClaim("blocks retired / resuscitated",
             FormatCount(result.ftl().retired_blocks()) + " / " +
                 FormatCount(result.ftl().resuscitated_blocks()));
  PrintClaim("user files rejected for space", FormatCount(result.create_failures()));
  PrintClaim("end-state SPARE media quality (1.0 = pristine)",
             FormatDouble(result.final_spare_quality(), 3));
  PrintClaim("max wear after 1 year", FormatPercent(result.final_max_wear_ratio()));
}

}  // namespace
}  // namespace sos

int main(int argc, char** argv) {
  sos::FlagSet flags("bench_fig2_pipeline", "E6: end-to-end SOS pipeline walkthrough (1 year)");
  flags.ParseOrDie(argc, argv);
  sos::Run();
  return 0;
}
