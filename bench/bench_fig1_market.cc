// Copyright (c) 2026 The SOS Authors. MIT License.
//
// E1 -- Figure 1: flash market share by device type (2020), plus the three
// derived motivation claims of §2.3: personal devices take ~half of flash
// bits, are replaced ~3x per decade, and consume only ~5% of flash wear.

#include "bench/bench_util.h"
#include "src/carbon/embodied.h"
#include "src/carbon/market.h"

namespace sos {
namespace {

void Run() {
  PrintBanner("E1", "Flash market share by device type (Figure 1)", "Figure 1, §2.3");

  PrintSection("Figure 1: flash bit production share by target device (2020)");
  TextTable table({"segment", "bit share", "replacement (yrs)", "wear used", "personal"});
  for (const MarketSegment& seg : FlashMarketSegments()) {
    table.AddRow({std::string(seg.name), FormatPercent(seg.bit_share),
                  FormatDouble(seg.replacement_years, 1), FormatPercent(seg.wear_utilization),
                  seg.personal ? "yes" : "no"});
  }
  PrintTable(table);

  PrintSection("Derived claims (§2.3)");
  PrintClaim("personal devices take ~half of annual flash bits",
             FormatPercent(PersonalBitShare()));
  PrintClaim("personal flash replaced >3x in the coming decade",
             FormatDouble(PersonalReplacementsOver(10.0), 2) + "x");
  PrintClaim("typical users consume ~5% of rated wear per device life",
             FormatPercent(PersonalWearUtilization()));
  PrintClaim("flash outlasts its encasing device by ~an order of magnitude",
             FormatDouble(1.0 / PersonalWearUtilization(), 1) + "x headroom");

  PrintSection("Carbon attribution of 2021 production by segment");
  const FlashCarbonModel carbon;
  const double total_mt = kAnnualProduction2021Eb * carbon.tlc_kg_per_gb;  // EB * kg/GB = Mt
  TextTable attribution({"segment", "share", "emissions (Mt CO2e)", "people-equivalent (M)"});
  for (const MarketSegment& seg : FlashMarketSegments()) {
    const double mt = total_mt * seg.bit_share;
    attribution.AddRow({std::string(seg.name), FormatPercent(seg.bit_share),
                        FormatDouble(mt, 1), FormatDouble(PeopleEquivalent(mt) / 1e6, 1)});
  }
  attribution.AddRow({"TOTAL", "100.0%", FormatDouble(total_mt, 1),
                      FormatDouble(PeopleEquivalent(total_mt) / 1e6, 1)});
  PrintTable(attribution);
}

}  // namespace
}  // namespace sos

int main(int argc, char** argv) {
  sos::FlagSet flags("bench_fig1_market", "E1: flash market growth and embodied-carbon share");
  flags.ParseOrDie(argc, argv);
  sos::Run();
  return 0;
}
