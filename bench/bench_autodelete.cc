// Copyright (c) 2026 The SOS Authors. MIT License.
//
// E11 -- Data-loss fallback (§4.5): under exceptionally write-intensive use
// SOS trims predicted-deletable data until >= 3% of capacity is free, then
// returns to normal degradation-only operation. Runs a 2-year power-user
// simulation and reports fallback activity and device health.

#include "bench/bench_util.h"
#include "src/sos/lifetime_sim.h"

namespace sos {
namespace {

LifetimeSimConfig StressConfig(double intensity) {
  LifetimeSimConfig config;
  config.kind = DeviceKind::kSos;
  config.days = 365 * 2;
  config.seed = 99;
  config.nand.num_blocks = 128;
  config.training_files = 3000;
  config.workload.photos_per_day = 6.0;   // heavy camera user
  config.workload.cache_files_per_day = 10.0;
  config.workload.deletes_per_day = 2.0;  // and a lazy cleaner-upper
  config.workload.intensity = intensity;
  config.file_size_cap = 32 * kKiB;
  config.sample_period_days = 91;
  return config;
}

void Run() {
  PrintBanner("E11", "Auto-delete fallback under write-intensive use", "§4.5, [68][79][80]");

  PrintSection("Intensity sweep, 2 simulated years");
  TextTable table({"intensity", "data written", "fallback activations", "files auto-deleted",
                   "bytes freed", "user files rejected", "files alive", "max wear"});
  for (double intensity : {1.0, 2.0, 4.0}) {
    LifetimeSim sim(StressConfig(intensity));
    const LifetimeResult r = sim.Run();
    table.AddRow({FormatDouble(intensity, 0) + "x", FormatBytes(r.host_bytes_written()),
                  FormatCount(r.autodelete().activations),
                  FormatCount(r.autodelete().files_deleted), FormatBytes(r.autodelete().bytes_freed),
                  FormatCount(r.create_failures()), FormatCount(r.files_alive()),
                  FormatPercent(r.final_max_wear_ratio())});
  }
  PrintTable(table);

  PrintSection("Free-space timeline at 4x intensity (fallback keeps the device usable)");
  LifetimeSim sim(StressConfig(4.0));
  const LifetimeResult r = sim.Run();
  TextTable timeline({"day", "fs free", "files", "exported pages", "max wear"});
  for (const DaySample& s : r.samples()) {
    timeline.AddRow({std::to_string(s.day), FormatPercent(s.fs_free_fraction),
                     FormatCount(s.live_files), FormatCount(s.exported_pages),
                     FormatPercent(s.max_wear_ratio)});
  }
  PrintTable(timeline);

  PrintSection("Paper mechanics (§4.5)");
  PrintClaim("fallback activates below 3% free, restores ~6%",
             FormatCount(r.autodelete().activations) + " activations over 2 years");
  PrintClaim("deletion targets ranked by predicted user deletions ([68])",
             FormatCount(r.autodelete().files_deleted) + " files deleted");
  PrintClaim("SYS (critical) data is never auto-deleted", "by construction");
}

}  // namespace
}  // namespace sos

int main(int argc, char** argv) {
  sos::FlagSet flags("bench_autodelete", "E11: auto-delete fallback under space pressure");
  flags.ParseOrDie(argc, argv);
  sos::Run();
  return 0;
}
