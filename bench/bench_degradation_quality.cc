// Copyright (c) 2026 The SOS Authors. MIT License.
//
// E7 -- Approximate storage quality over time (§4.2, [70][72]): media stored
// on PLC with weak/no ECC degrades gracefully with retention and wear. Both
// the analytic expectation and a bit-exact measurement (real payloads on the
// simulated die, real PSNR / GOP damage scoring) are reported.

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/ecc/ecc_scheme.h"
#include "src/flash/error_model.h"
#include "src/flash/nand_device.h"
#include "src/media/quality.h"

namespace sos {
namespace {

// Measures end-to-end quality of an image and a video stored on a PLC die
// aged to `years` at `pec` wear, with no ECC (approximate storage).
struct MeasuredQuality {
  double rber = 0.0;
  double image_psnr_db = 0.0;
  double video_score = 0.0;
};

MeasuredQuality MeasureAt(double years, uint32_t pec) {
  NandConfig config;
  config.num_blocks = 96;
  config.wordlines_per_block = 16;
  config.page_size_bytes = 4096;
  config.tech = CellTech::kPlc;
  config.seed = DeriveSeed({42, static_cast<uint64_t>(years * 1000), pec});
  SimClock clock;
  NandDevice device(config, &clock);

  // Pre-wear the blocks.
  for (uint32_t block = 0; block < config.num_blocks; ++block) {
    for (uint32_t cycle = 0; cycle < pec; ++cycle) {
      IgnoreResult(device.EraseBlock(block));
    }
  }

  const auto image = GenerateSyntheticImage(256, 256, 7);  // 64 KiB
  const VideoConfig video_config;
  const auto video = GenerateSyntheticVideo(video_config, 96, 8);  // 96 KiB
  const VideoQualityModel video_model(video_config);

  // Store both media files page by page.
  auto store = [&](std::span<const uint8_t> data, uint32_t first_block) {
    uint32_t block = first_block;
    uint32_t page = 0;
    for (size_t off = 0; off < data.size(); off += config.page_size_bytes) {
      const size_t len = std::min<size_t>(config.page_size_bytes, data.size() - off);
      if (page >= config.PagesPerBlock(CellTech::kPlc)) {
        ++block;
        page = 0;
      }
      Status s = device.Program({block, page++}, data.subspan(off, len));
      assert(s.ok());
      (void)s;
    }
  };
  store(image, 0);
  store(video, 40);

  clock.Advance(YearsToUs(years));

  auto read_back = [&](size_t total, uint32_t first_block) {
    std::vector<uint8_t> out;
    out.reserve(total);
    uint32_t block = first_block;
    uint32_t page = 0;
    MeasuredQuality q;
    while (out.size() < total) {
      if (page >= config.PagesPerBlock(CellTech::kPlc)) {
        ++block;
        page = 0;
      }
      auto read = device.Read({block, page++});
      assert(read.ok());
      q.rber = read.value().rber;
      const size_t take = std::min<size_t>(config.page_size_bytes, total - out.size());
      out.insert(out.end(), read.value().data.begin(),
                 read.value().data.begin() + static_cast<ptrdiff_t>(take));
    }
    return std::make_pair(out, q.rber);
  };

  MeasuredQuality q;
  auto [image_read, rber1] = read_back(image.size(), 0);
  auto [video_read, rber2] = read_back(video.size(), 40);
  q.rber = rber1;
  q.image_psnr_db = ImageQualityModel::PsnrDb(image, image_read);
  q.video_score = video_model.ScoreCorrupted(video, video_read);
  return q;
}

void Run() {
  PrintBanner("E7", "Media quality under approximate storage", "§4.2, [70][72]");

  PrintSection("Retention sweep on fresh PLC, no ECC (bit-exact measurement)");
  TextTable table({"retention (yrs)", "raw BER", "image PSNR (dB)", "image score",
                   "video score", "video score (analytic)"});
  const VideoQualityModel video_model{VideoConfig{}};
  for (double years : {0.0, 0.5, 1.0, 2.0, 3.0, 5.0, 8.0}) {
    const MeasuredQuality q = MeasureAt(years, 0);
    char rber[32];
    std::snprintf(rber, sizeof(rber), "%.1e", q.rber);
    table.AddRow({FormatDouble(years, 1), rber, FormatDouble(q.image_psnr_db, 1),
                  FormatDouble(ImageQualityModel::ScoreFromPsnr(q.image_psnr_db), 2),
                  FormatDouble(q.video_score, 3),
                  FormatDouble(video_model.ExpectedScore(q.rber, 96 * kKiB), 3)});
  }
  PrintTable(table);

  PrintSection("Wear sweep at 1 year retention (PLC rated endurance = 300 PEC)");
  TextTable wear_table({"P/E cycles", "raw BER", "image PSNR (dB)", "video score"});
  for (uint32_t pec : {0u, 100u, 200u, 300u, 450u}) {
    const MeasuredQuality q = MeasureAt(1.0, pec);
    char rber[32];
    std::snprintf(rber, sizeof(rber), "%.1e", q.rber);
    wear_table.AddRow({FormatCount(pec), rber, FormatDouble(q.image_psnr_db, 1),
                       FormatDouble(q.video_score, 3)});
  }
  PrintTable(wear_table);

  PrintSection("Retention horizon by protection policy (PLC block at 100 PEC)");
  // How long can data rest on a worn PLC block before each policy considers
  // it unusable? Error tolerance is what makes the zero-overhead row viable
  // at all -- strict integrity without ECC lasts essentially zero time
  // ([72]'s argument). Strong ECC buys more raw-BER headroom but costs
  // parity cells; SOS spends that only on the SYS partition.
  auto rber_at = [](double years) {
    PageErrorState state;
    state.mode = CellTech::kPlc;
    state.endurance_pec = GetCellTechInfo(CellTech::kPlc).rated_endurance_pec;
    state.pec_at_program = 100;  // a third of rated endurance consumed
    state.retention_years = years;
    return ErrorModel::Rber(state);
  };
  auto horizon = [&](double rber_limit) {
    double years = 0.0;
    while (years < 50.0 && rber_at(years) < rber_limit) {
      years += 0.05;
    }
    return years;
  };
  // Strict integrity with no ECC: a 4 MiB file must stay error-free with
  // 99% probability -> rber <= -ln(0.99)/bits.
  const double strict_no_ecc = 0.01 / (4.0 * kMiB * 8);
  // Error-tolerant: video quality >= 0.8.
  double tolerant_rber = 1e-6;
  while (video_model.ExpectedScore(tolerant_rber, 4 * kMiB) > 0.8 && tolerant_rber < 0.4) {
    tolerant_rber *= 1.25;
  }
  const EccScheme weak = EccScheme::FromPreset(EccPreset::kWeakBch);
  const EccScheme bch = EccScheme::FromPreset(EccPreset::kBch);
  TextTable horizons({"policy", "cell overhead", "max raw BER", "retention horizon (yrs)"});
  auto add_policy = [&](const char* name, double overhead, double limit) {
    char limit_str[32];
    std::snprintf(limit_str, sizeof(limit_str), "%.1e", limit);
    horizons.AddRow({name, FormatPercent(overhead), limit_str,
                     FormatDouble(horizon(limit), 2)});
  };
  add_policy("no ECC, strict integrity", 0.0, strict_no_ecc);
  add_policy("no ECC, tolerate video>=0.8 (SOS SPARE)", 0.0, tolerant_rber);
  add_policy("weak BCH t=8, strict", weak.parity_overhead,
             weak.MaxCorrectableRber(4096, 1e-6));
  add_policy("BCH t=40, strict (SOS SYS grade)", bch.parity_overhead,
             bch.MaxCorrectableRber(4096, 1e-6));
  PrintTable(horizons);
  const double tolerant_years = horizon(tolerant_rber);
  PrintClaim("error tolerance turns ~0 retention at zero overhead into",
             FormatDouble(tolerant_years, 2) + " years (per [72])");
}

}  // namespace
}  // namespace sos

int main(int argc, char** argv) {
  sos::FlagSet flags("bench_degradation_quality", "E7: media quality vs degradation level");
  flags.ParseOrDie(argc, argv);
  sos::Run();
  return 0;
}
