// Copyright (c) 2026 The SOS Authors. MIT License.
//
// E14 -- FTL design ablations: GC policy (greedy vs cost-benefit) and
// over-provisioning sweep -> write amplification, plus the parity-stripe
// overhead/rescue tradeoff for the SYS partition. These are the design
// choices DESIGN.md calls out for the device substrate.
//
// Each churn run owns its own Ftl + clock (share-nothing), so the sweeps
// fan out through the experiment driver's deterministic Map; --jobs=N
// leaves stdout byte-identical.

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/ftl/ftl.h"
#include "src/sos/experiment.h"

namespace sos {
namespace {

FtlConfig MakeConfig(GcPolicy gc, double op_fraction, uint32_t parity_stripe) {
  FtlConfig config;
  config.nand.num_blocks = 64;
  config.nand.wordlines_per_block = 16;
  config.nand.page_size_bytes = 2048;
  config.nand.tech = CellTech::kQlc;
  config.nand.seed = 5;
  config.nand.store_payloads = false;
  config.gc_policy = gc;
  FtlPoolConfig pool;
  pool.name = "MAIN";
  pool.mode = CellTech::kQlc;
  pool.ecc = EccScheme::FromPreset(EccPreset::kBch);
  pool.op_fraction = op_fraction;
  pool.parity_stripe = parity_stripe;
  config.pools = {pool};
  return config;
}

struct ChurnOutcome {
  double write_amp = 0.0;
  uint64_t gc_erases = 0;
  uint64_t relocations = 0;
  uint64_t exported = 0;
};

// Random-overwrite churn at `utilization` of exported space; hot/cold mix.
ChurnOutcome Churn(const FtlConfig& config, double utilization, uint64_t writes) {
  SimClock clock;
  Ftl ftl(config, &clock);
  const uint64_t space = static_cast<uint64_t>(
      static_cast<double>(ftl.ExportedPages()) * utilization);
  for (uint64_t lba = 0; lba < space; ++lba) {
    IgnoreResult(ftl.Write(lba, {}, 0));
  }
  Rng rng(17);
  for (uint64_t i = 0; i < writes; ++i) {
    // 80/20 hot-cold overwrite mix.
    const uint64_t hot = std::max<uint64_t>(1, space / 5);
    const uint64_t lba = rng.NextBool(0.8) ? rng.NextBounded(hot) : rng.NextBounded(space);
    if (!ftl.Write(lba, {}, 0).ok()) {
      break;
    }
    clock.Advance(kUsPerSecond);
  }
  ChurnOutcome out;
  const FtlStats stats = ftl.stats();
  out.write_amp = stats.WriteAmplification();
  out.gc_erases = stats.gc_erases();
  out.relocations = stats.gc_relocations();
  out.exported = ftl.ExportedPages();
  return out;
}

struct HotColdOutcome {
  double write_amp = 0.0;
  uint64_t gc_erases = 0;
  uint64_t retired = 0;
};

// Skewed-overwrite run against a PLC pool with its real retirement bound;
// `separation` toggles hot/cold stream separation.
HotColdOutcome HotColdChurn(bool separation) {
  FtlConfig config;
  config.nand.num_blocks = 32;
  config.nand.wordlines_per_block = 4;
  config.nand.page_size_bytes = 512;
  config.nand.tech = CellTech::kPlc;
  config.nand.seed = 5;
  config.nand.store_payloads = false;
  FtlPoolConfig pool;
  pool.name = "MAIN";
  pool.mode = CellTech::kPlc;
  pool.ecc = EccScheme::FromPreset(EccPreset::kBch);
  pool.hot_cold_separation = separation;
  config.pools = {pool};
  SimClock clock;
  Ftl ftl(config, &clock);
  const uint64_t space = ftl.ExportedPages() * 88 / 100;
  for (uint64_t lba = 0; lba < space; ++lba) {
    IgnoreResult(ftl.Write(lba, {}, 0));
  }
  Rng rng(21);
  const uint64_t hot = space / 10;
  for (int i = 0; i < 100000; ++i) {
    const uint64_t lba = rng.NextBool(0.8) ? rng.NextBounded(hot) : rng.NextBounded(space);
    if (!ftl.Write(lba, {}, 0).ok()) {
      break;
    }
  }
  const FtlStats stats = ftl.stats();
  return {stats.WriteAmplification(), stats.gc_erases(), stats.retired_blocks()};
}

void Run(size_t jobs) {
  PrintBanner("E14", "FTL ablations: GC policy, over-provisioning, parity stripes",
              "DESIGN.md design-choice index");

  ExperimentDriver driver(jobs);
  WallTimer timer;
  size_t total_runs = 0;

  PrintSection("GC policy x utilization -> write amplification (40k overwrites)");
  const std::vector<double> utils = {0.5, 0.7, 0.85, 0.95};
  // Job 2i is greedy, 2i+1 cost-benefit at utils[i].
  const std::vector<ChurnOutcome> gc_runs =
      driver.Map(utils.size() * 2, [&utils](size_t i) {
        const GcPolicy policy = i % 2 == 0 ? GcPolicy::kGreedy : GcPolicy::kCostBenefit;
        return Churn(MakeConfig(policy, 0.07, 0), utils[i / 2], 40000);
      });
  total_runs += gc_runs.size();
  TextTable gc_table({"utilization", "greedy WA", "cost-benefit WA", "greedy relocs",
                      "cost-benefit relocs"});
  for (size_t i = 0; i < utils.size(); ++i) {
    const ChurnOutcome& greedy = gc_runs[2 * i];
    const ChurnOutcome& cb = gc_runs[2 * i + 1];
    gc_table.AddRow({FormatPercent(utils[i], 0), FormatDouble(greedy.write_amp, 2),
                     FormatDouble(cb.write_amp, 2), FormatCount(greedy.relocations),
                     FormatCount(cb.relocations)});
  }
  PrintTable(gc_table);

  PrintSection("Over-provisioning sweep (greedy GC, 85% utilization of exported)");
  const std::vector<double> ops = {0.02, 0.07, 0.15, 0.25};
  const std::vector<ChurnOutcome> op_runs = driver.Map(ops.size(), [&ops](size_t i) {
    return Churn(MakeConfig(GcPolicy::kGreedy, ops[i], 0), 0.85, 40000);
  });
  total_runs += op_runs.size();
  TextTable op_table({"OP fraction", "exported pages", "write amp", "gc erases"});
  for (size_t i = 0; i < ops.size(); ++i) {
    op_table.AddRow({FormatPercent(ops[i], 0), FormatCount(op_runs[i].exported),
                     FormatDouble(op_runs[i].write_amp, 2), FormatCount(op_runs[i].gc_erases)});
  }
  PrintTable(op_table);
  std::printf(
      "\nThe classic tradeoff: more OP -> fewer valid pages per GC victim -> lower WA,\n"
      "at the cost of exported capacity. SOS uses 7%% per pool.\n");

  PrintSection("Hot/cold stream separation under wear pressure");
  // Pure greedy GC self-segregates static cold data, so separation's
  // standalone WA effect is modest -- but under wear pressure it breaks the
  // retirement feedback loop (erases -> retirement -> higher utilization ->
  // more erases). Same skewed workload, PLC pool with its real retirement
  // bound, 100k overwrites.
  const std::vector<HotColdOutcome> hotcold_runs =
      driver.Map(2, [](size_t i) { return HotColdChurn(i == 0); });
  total_runs += hotcold_runs.size();
  TextTable hotcold({"separation", "write amp", "gc erases", "retired blocks"});
  for (size_t i = 0; i < hotcold_runs.size(); ++i) {
    hotcold.AddRow({i == 0 ? "on" : "off", FormatDouble(hotcold_runs[i].write_amp, 2),
                    FormatCount(hotcold_runs[i].gc_erases),
                    FormatCount(hotcold_runs[i].retired)});
  }
  PrintTable(hotcold);

  PrintSection("SYS parity-stripe sweep (capacity cost of the redundancy, §4.2)");
  const std::vector<uint32_t> stripes = {0u, 8u, 16u, 32u};
  const std::vector<ChurnOutcome> parity_runs = driver.Map(stripes.size(), [&stripes](size_t i) {
    return Churn(MakeConfig(GcPolicy::kGreedy, 0.07, stripes[i]), 0.7, 20000);
  });
  total_runs += parity_runs.size();
  TextTable parity_table({"stripe (pages)", "parity overhead", "exported pages", "write amp"});
  for (size_t i = 0; i < stripes.size(); ++i) {
    const uint32_t stripe = stripes[i];
    parity_table.AddRow({stripe == 0 ? "none" : std::to_string(stripe),
                         stripe == 0 ? "0.0%" : FormatPercent(1.0 / stripe),
                         FormatCount(parity_runs[i].exported),
                         FormatDouble(parity_runs[i].write_amp, 2)});
  }
  PrintTable(parity_table);
  std::printf(
      "\nSOS's SYS pool uses 16-page stripes: 6.3%% of pages buy single-page rescue\n"
      "on top of LDPC, the \"additional redundancy\" of §4.2.\n");

  PrintJobsSummary(driver.jobs(), total_runs, timer.Seconds());
}

}  // namespace
}  // namespace sos

int main(int argc, char** argv) {
  sos::FlagSet flags("bench_ftl_ablation", "E14: GC policy / OP / parity-stripe ablations");
  size_t* jobs = flags.Size("jobs", 1, "parallel churn runs (0 = hardware concurrency)");
  flags.ParseOrDie(argc, argv);
  sos::Run(*jobs);
  return 0;
}
