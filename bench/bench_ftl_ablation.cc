// Copyright (c) 2026 The SOS Authors. MIT License.
//
// E14 -- FTL design ablations: GC policy (greedy vs cost-benefit) and
// over-provisioning sweep -> write amplification, plus the parity-stripe
// overhead/rescue tradeoff for the SYS partition. These are the design
// choices DESIGN.md calls out for the device substrate.

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/ftl/ftl.h"

namespace sos {
namespace {

FtlConfig MakeConfig(GcPolicy gc, double op_fraction, uint32_t parity_stripe) {
  FtlConfig config;
  config.nand.num_blocks = 64;
  config.nand.wordlines_per_block = 16;
  config.nand.page_size_bytes = 2048;
  config.nand.tech = CellTech::kQlc;
  config.nand.seed = 5;
  config.nand.store_payloads = false;
  config.gc_policy = gc;
  FtlPoolConfig pool;
  pool.name = "MAIN";
  pool.mode = CellTech::kQlc;
  pool.ecc = EccScheme::FromPreset(EccPreset::kBch);
  pool.op_fraction = op_fraction;
  pool.parity_stripe = parity_stripe;
  config.pools = {pool};
  return config;
}

struct ChurnOutcome {
  double write_amp = 0.0;
  uint64_t gc_erases = 0;
  uint64_t relocations = 0;
  uint64_t exported = 0;
};

// Random-overwrite churn at `utilization` of exported space; hot/cold mix.
ChurnOutcome Churn(const FtlConfig& config, double utilization, uint64_t writes) {
  SimClock clock;
  Ftl ftl(config, &clock);
  const uint64_t space = static_cast<uint64_t>(
      static_cast<double>(ftl.ExportedPages()) * utilization);
  for (uint64_t lba = 0; lba < space; ++lba) {
    (void)ftl.Write(lba, {}, 0);
  }
  Rng rng(17);
  for (uint64_t i = 0; i < writes; ++i) {
    // 80/20 hot-cold overwrite mix.
    const uint64_t hot = std::max<uint64_t>(1, space / 5);
    const uint64_t lba = rng.NextBool(0.8) ? rng.NextBounded(hot) : rng.NextBounded(space);
    if (!ftl.Write(lba, {}, 0).ok()) {
      break;
    }
    clock.Advance(kUsPerSecond);
  }
  ChurnOutcome out;
  out.write_amp = ftl.stats().WriteAmplification();
  out.gc_erases = ftl.stats().gc_erases;
  out.relocations = ftl.stats().gc_relocations;
  out.exported = ftl.ExportedPages();
  return out;
}

void Run() {
  PrintBanner("E14", "FTL ablations: GC policy, over-provisioning, parity stripes",
              "DESIGN.md design-choice index");

  PrintSection("GC policy x utilization -> write amplification (40k overwrites)");
  TextTable gc_table({"utilization", "greedy WA", "cost-benefit WA", "greedy relocs",
                      "cost-benefit relocs"});
  for (double util : {0.5, 0.7, 0.85, 0.95}) {
    const ChurnOutcome greedy = Churn(MakeConfig(GcPolicy::kGreedy, 0.07, 0), util, 40000);
    const ChurnOutcome cb = Churn(MakeConfig(GcPolicy::kCostBenefit, 0.07, 0), util, 40000);
    gc_table.AddRow({FormatPercent(util, 0), FormatDouble(greedy.write_amp, 2),
                     FormatDouble(cb.write_amp, 2), FormatCount(greedy.relocations),
                     FormatCount(cb.relocations)});
  }
  PrintTable(gc_table);

  PrintSection("Over-provisioning sweep (greedy GC, 85% utilization of exported)");
  TextTable op_table({"OP fraction", "exported pages", "write amp", "gc erases"});
  for (double op : {0.02, 0.07, 0.15, 0.25}) {
    const ChurnOutcome out = Churn(MakeConfig(GcPolicy::kGreedy, op, 0), 0.85, 40000);
    op_table.AddRow({FormatPercent(op, 0), FormatCount(out.exported),
                     FormatDouble(out.write_amp, 2), FormatCount(out.gc_erases)});
  }
  PrintTable(op_table);
  std::printf(
      "\nThe classic tradeoff: more OP -> fewer valid pages per GC victim -> lower WA,\n"
      "at the cost of exported capacity. SOS uses 7%% per pool.\n");

  PrintSection("Hot/cold stream separation under wear pressure");
  // Pure greedy GC self-segregates static cold data, so separation's
  // standalone WA effect is modest -- but under wear pressure it breaks the
  // retirement feedback loop (erases -> retirement -> higher utilization ->
  // more erases). Same skewed workload, PLC pool with its real retirement
  // bound, 100k overwrites.
  TextTable hotcold({"separation", "write amp", "gc erases", "retired blocks"});
  for (const bool separation : {true, false}) {
    FtlConfig config;
    config.nand.num_blocks = 32;
    config.nand.wordlines_per_block = 4;
    config.nand.page_size_bytes = 512;
    config.nand.tech = CellTech::kPlc;
    config.nand.seed = 5;
    config.nand.store_payloads = false;
    FtlPoolConfig pool;
    pool.name = "MAIN";
    pool.mode = CellTech::kPlc;
    pool.ecc = EccScheme::FromPreset(EccPreset::kBch);
    pool.hot_cold_separation = separation;
    config.pools = {pool};
    SimClock clock;
    Ftl ftl(config, &clock);
    const uint64_t space = ftl.ExportedPages() * 88 / 100;
    for (uint64_t lba = 0; lba < space; ++lba) {
      (void)ftl.Write(lba, {}, 0);
    }
    Rng rng(21);
    const uint64_t hot = space / 10;
    for (int i = 0; i < 100000; ++i) {
      const uint64_t lba = rng.NextBool(0.8) ? rng.NextBounded(hot) : rng.NextBounded(space);
      if (!ftl.Write(lba, {}, 0).ok()) {
        break;
      }
    }
    hotcold.AddRow({separation ? "on" : "off", FormatDouble(ftl.stats().WriteAmplification(), 2),
                    FormatCount(ftl.stats().gc_erases),
                    FormatCount(ftl.stats().retired_blocks)});
  }
  PrintTable(hotcold);

  PrintSection("SYS parity-stripe sweep (capacity cost of the redundancy, §4.2)");
  TextTable parity_table({"stripe (pages)", "parity overhead", "exported pages", "write amp"});
  for (uint32_t stripe : {0u, 8u, 16u, 32u}) {
    const ChurnOutcome out = Churn(MakeConfig(GcPolicy::kGreedy, 0.07, stripe), 0.7, 20000);
    parity_table.AddRow({stripe == 0 ? "none" : std::to_string(stripe),
                         stripe == 0 ? "0.0%" : FormatPercent(1.0 / stripe),
                         FormatCount(out.exported), FormatDouble(out.write_amp, 2)});
  }
  PrintTable(parity_table);
  std::printf(
      "\nSOS's SYS pool uses 16-page stripes: 6.3%% of pages buy single-page rescue\n"
      "on top of LDPC, the \"additional redundancy\" of §4.2.\n");
}

}  // namespace
}  // namespace sos

int main() {
  sos::Run();
  return 0;
}
