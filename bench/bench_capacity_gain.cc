// Copyright (c) 2026 The SOS Authors. MIT License.
//
// E6 -- Capacity gain of the split scheme (§4.2): "SOS would result in a 50%
// and 10% capacity gain over using TLC or QLC memory". Measured two ways:
// analytically from bits/cell, and on the actual simulated die (which also
// accounts for SYS parity overhead and over-provisioning).

#include "bench/bench_util.h"
#include "src/carbon/embodied.h"
#include "src/sos/sos_device.h"

namespace sos {
namespace {

NandConfig DieGeometry(CellTech tech) {
  NandConfig nand;
  nand.num_blocks = 256;
  nand.wordlines_per_block = 64;
  nand.page_size_bytes = 4096;
  nand.tech = tech;
  nand.store_payloads = false;
  return nand;
}

void Run() {
  PrintBanner("E6", "Capacity from the same cells: SOS split vs pure technologies", "§4.2");

  // Device-measured capacities. All four devices are built from the *same*
  // physical die geometry (same cell count); only the bit density differs.
  SimClock clock;
  SosDevice sos_dev(
      [] {
        SosDeviceConfig config;
        config.nand = DieGeometry(CellTech::kPlc);
        return config;
      }(),
      &clock);
  const uint64_t page = DieGeometry(CellTech::kPlc).page_size_bytes;

  PrintSection("Measured exported capacity (same die, 256 blocks x 64 wordlines)");
  TextTable table({"device", "exported capacity", "vs TLC", "vs QLC"});
  uint64_t tlc_bytes = 0;
  uint64_t qlc_bytes = 0;
  struct Row {
    const char* name;
    uint64_t bytes;
  };
  std::vector<Row> rows;
  for (CellTech tech : {CellTech::kTlc, CellTech::kQlc, CellTech::kPlc}) {
    SimClock c2;
    BaselineDevice device(DieGeometry(tech), &c2, EccPreset::kBch, GcPolicy::kGreedy);
    const uint64_t bytes = device.capacity_blocks() * page;
    if (tech == CellTech::kTlc) {
      tlc_bytes = bytes;
    }
    if (tech == CellTech::kQlc) {
      qlc_bytes = bytes;
    }
    rows.push_back({CellTechName(tech).data(), bytes});
  }
  rows.push_back({"SOS split (pQLC+PLC)", sos_dev.capacity_blocks() * page});
  for (const Row& row : rows) {
    table.AddRow({row.name, FormatBytes(row.bytes),
                  FormatPercent(static_cast<double>(row.bytes) / static_cast<double>(tlc_bytes) -
                                1.0),
                  FormatPercent(static_cast<double>(row.bytes) / static_cast<double>(qlc_bytes) -
                                1.0)});
  }
  PrintTable(table);

  PrintSection("Analytic vs measured split gain");
  const double analytic_tlc =
      FlashCarbonModel::SplitDensityGain(CellTech::kQlc, CellTech::kPlc, 0.5, CellTech::kTlc);
  const double analytic_qlc =
      FlashCarbonModel::SplitDensityGain(CellTech::kQlc, CellTech::kPlc, 0.5, CellTech::kQlc);
  const double measured_tlc = static_cast<double>(sos_dev.capacity_blocks() * page) /
                              static_cast<double>(tlc_bytes);
  PrintClaim("+50% capacity vs TLC (analytic bits/cell)", FormatPercent(analytic_tlc - 1.0));
  PrintClaim("+10% capacity vs QLC (analytic bits/cell)", FormatPercent(analytic_qlc - 1.0));
  PrintClaim("measured on simulated die (incl. SYS parity + OP)",
             FormatPercent(measured_tlc - 1.0) + " vs TLC");

  PrintSection("Equivalent embodied-carbon saving for a 128 GB device");
  const FlashCarbonModel carbon;
  TextTable carbon_table({"build", "kgCO2e for 128 GB", "saving vs TLC"});
  const double tlc_kg = carbon.DeviceKg(128 * kGB, CellTech::kTlc);
  carbon_table.AddRow({"TLC", FormatDouble(tlc_kg, 1), "-"});
  carbon_table.AddRow({"QLC", FormatDouble(carbon.DeviceKg(128 * kGB, CellTech::kQlc), 1),
                       FormatPercent(1.0 - carbon.DeviceKg(128 * kGB, CellTech::kQlc) / tlc_kg)});
  const double split_kg = carbon.KgPerGbSplit(CellTech::kQlc, CellTech::kPlc, 0.5) * 128.0;
  carbon_table.AddRow({"SOS split", FormatDouble(split_kg, 1),
                       FormatPercent(1.0 - split_kg / tlc_kg)});
  PrintTable(carbon_table);
}

}  // namespace
}  // namespace sos

int main(int argc, char** argv) {
  sos::FlagSet flags("bench_capacity_gain", "E5: exported-capacity gain of the split design");
  flags.ParseOrDie(argc, argv);
  sos::Run();
  return 0;
}
