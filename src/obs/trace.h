// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Bounded, deterministic event trace (DESIGN.md §9).
//
// A TraceSink records discrete simulator events -- GC victim picks, pool
// migrations, block retirement/resuscitation, auto-delete trims -- as a
// bounded stream rendered to JSONL. Fields are an *ordered* key/value list
// (insertion order = export order) so a trace line never depends on hash
// order. Timestamps are simulated time only; components stamp events with
// SimClock::now() at the emit site.
//
// Overflow policy: keep-first / drop-newest. Once `capacity` events are
// buffered, further Emit() calls only bump the dropped counter. The first N
// events of a run are therefore identical no matter how much pressure later
// phases generate -- the bounded trace itself stays deterministic.

#ifndef SOS_SRC_OBS_TRACE_H_
#define SOS_SRC_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/common/units.h"

namespace sos::obs {

class MetricRegistry;

// One discrete simulator event. `type` follows the metric naming scheme
// (`layer.component.event`, e.g. "ftl.gc.victim"); `fields` render in
// insertion order.
struct TraceEvent {
  TraceEvent() = default;
  TraceEvent(SimTimeUs t, std::string event_type) : t_us(t), type(std::move(event_type)) {}

  SimTimeUs t_us = 0;
  std::string type;
  std::vector<std::pair<std::string, std::string>> fields;

  bool operator==(const TraceEvent& other) const = default;

  // Field helpers render values deterministically (decimal u64/i64, %.17g
  // doubles) and return *this for chaining at the emit site.
  TraceEvent& With(const std::string& key, const std::string& value);
  TraceEvent& WithU64(const std::string& key, uint64_t value);
  TraceEvent& WithI64(const std::string& key, int64_t value);
  TraceEvent& WithF64(const std::string& key, double value);
};

// Bounded collector for TraceEvents. Not thread-safe by design: each worker
// owns its sink and results carry the recorded events across threads.
class TraceSink {
 public:
  // `capacity` bounds the number of retained events (see overflow policy
  // above). Defaults generously for a full LifetimeSim run.
  explicit TraceSink(size_t capacity = kDefaultCapacity);

  // Records `event` if the sink has room, else counts it as dropped.
  void Emit(TraceEvent event);

  const std::vector<TraceEvent>& events() const { return events_; }
  uint64_t dropped() const { return dropped_; }
  size_t capacity() const { return capacity_; }

  // Registers the sink's own telemetry under `prefix`: `trace.events`
  // (retained) and `trace.dropped_events` (lost to the keep-first cap).
  // The dropped counter is exported unconditionally -- a zero row is how a
  // reader can tell "nothing was dropped" from "nobody measured" (the
  // "no silent caps" rule; fleet-scale runs cap per-device traces hard and
  // still have to account for every event).
  void ToMetrics(MetricRegistry& registry, const std::string& prefix = "") const;

  static constexpr size_t kDefaultCapacity = 65536;

 private:
  size_t capacity_;
  std::vector<TraceEvent> events_;
  uint64_t dropped_ = 0;
};

// One JSONL line (no trailing newline): {"t_us": ..., "type": "...", k: v, ...}.
std::string TraceEventToJson(const TraceEvent& event);

// All events, one JSON object per line, newline-terminated. A final
// "trace.dropped" summary line records the overflow count when non-zero.
std::string TraceToJsonl(const std::vector<TraceEvent>& events, uint64_t dropped);

// Renders `sink` with TraceToJsonl and writes it to `path`.
[[nodiscard]] Status WriteTraceFile(const std::string& path, const TraceSink& sink);

}  // namespace sos::obs

#endif  // SOS_SRC_OBS_TRACE_H_
