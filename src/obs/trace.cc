// Copyright (c) 2026 The SOS Authors. MIT License.

#include "src/obs/trace.h"

#include <cinttypes>
#include <cstdio>

#include "src/obs/metrics.h"

namespace sos::obs {

namespace {

std::string FormatU64(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

std::string FormatI64(int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  return buf;
}

void AppendEscaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

// Field values are rendered by the With*() helpers; numeric ones arrive as
// already-formatted decimal/%.17g strings and are emitted bare, everything
// else is quoted. A value is "numeric" if the helper produced it, which we
// detect conservatively by shape so hand-built string fields stay quoted.
bool LooksNumeric(const std::string& v) {
  if (v.empty()) {
    return false;
  }
  size_t i = (v[0] == '-') ? 1 : 0;
  if (i == v.size()) {
    return false;
  }
  bool digits = false;
  for (; i < v.size(); ++i) {
    char c = v[i];
    if (c >= '0' && c <= '9') {
      digits = true;
    } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
      continue;
    } else {
      return false;
    }
  }
  return digits;
}

}  // namespace

TraceEvent& TraceEvent::With(const std::string& key, const std::string& value) {
  fields.emplace_back(key, value);
  return *this;
}

TraceEvent& TraceEvent::WithU64(const std::string& key, uint64_t value) {
  fields.emplace_back(key, FormatU64(value));
  return *this;
}

TraceEvent& TraceEvent::WithI64(const std::string& key, int64_t value) {
  fields.emplace_back(key, FormatI64(value));
  return *this;
}

TraceEvent& TraceEvent::WithF64(const std::string& key, double value) {
  fields.emplace_back(key, FormatJsonDouble(value));
  return *this;
}

TraceSink::TraceSink(size_t capacity) : capacity_(capacity) { events_.reserve(capacity_); }

void TraceSink::Emit(TraceEvent event) {
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(event));
}

void TraceSink::ToMetrics(MetricRegistry& registry, const std::string& prefix) const {
  registry.SetCounter(prefix + "trace.events", events_.size());
  registry.SetCounter(prefix + "trace.dropped_events", dropped_);
}

std::string TraceEventToJson(const TraceEvent& event) {
  std::string out = "{\"t_us\": ";
  out += FormatU64(event.t_us);
  out += ", \"type\": \"";
  AppendEscaped(out, event.type);
  out += "\"";
  for (const auto& [key, value] : event.fields) {
    out += ", \"";
    AppendEscaped(out, key);
    out += "\": ";
    if (LooksNumeric(value)) {
      out += value;
    } else {
      out += "\"";
      AppendEscaped(out, value);
      out += "\"";
    }
  }
  out += "}";
  return out;
}

std::string TraceToJsonl(const std::vector<TraceEvent>& events, uint64_t dropped) {
  std::string out;
  for (const TraceEvent& event : events) {
    out += TraceEventToJson(event);
    out += "\n";
  }
  if (dropped > 0) {
    out += "{\"type\": \"trace.dropped\", \"count\": ";
    out += FormatU64(dropped);
    out += "}\n";
  }
  return out;
}

Status WriteTraceFile(const std::string& path, const TraceSink& sink) {
  return WriteFile(path, TraceToJsonl(sink.events(), sink.dropped()));
}

}  // namespace sos::obs
