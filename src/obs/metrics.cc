// Copyright (c) 2026 The SOS Authors. MIT License.

#include "src/obs/metrics.h"

#include <cassert>
#include <cinttypes>
#include <cstdio>

namespace sos::obs {

namespace {

constexpr size_t kNotFound = static_cast<size_t>(-1);

void AppendEscaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void AppendU64(std::string& out, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

void AppendRow(std::string& out, const MetricRow& row) {
  out += "    {\"name\": \"";
  AppendEscaped(out, row.name);
  out += "\", ";
  switch (row.kind) {
    case MetricKind::kCounter:
      out += "\"kind\": \"counter\", \"value\": ";
      AppendU64(out, row.counter);
      break;
    case MetricKind::kGauge:
      out += "\"kind\": \"gauge\", \"value\": ";
      out += FormatJsonDouble(row.gauge);
      break;
    case MetricKind::kHistogram: {
      out += "\"kind\": \"histogram\", \"count\": ";
      AppendU64(out, row.count);
      out += ", \"sum\": ";
      out += FormatJsonDouble(row.sum);
      out += ", \"buckets\": [";
      assert(row.buckets.size() == row.bounds.size() + 1);
      for (size_t i = 0; i < row.buckets.size(); ++i) {
        if (i > 0) {
          out += ", ";
        }
        out += "{\"le\": ";
        if (i < row.bounds.size()) {
          out += FormatJsonDouble(row.bounds[i]);
        } else {
          out += "\"inf\"";
        }
        out += ", \"count\": ";
        AppendU64(out, row.buckets[i]);
        out += "}";
      }
      out += "]";
      break;
    }
  }
  out += "}";
}

}  // namespace

// --- Histogram ---------------------------------------------------------------

Histogram::Histogram(std::vector<double> upper_bounds) : bounds_(std::move(upper_bounds)) {
  for (size_t i = 1; i < bounds_.size(); ++i) {
    assert(bounds_[i - 1] < bounds_[i] && "histogram bounds must be strictly ascending");
  }
  buckets_.assign(bounds_.size() + 1, 0);
}

void Histogram::Observe(double v) {
  size_t bucket = bounds_.size();  // overflow unless a bound catches it
  for (size_t i = 0; i < bounds_.size(); ++i) {
    if (v <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  ++buckets_[bucket];
  ++count_;
  sum_ += v;
}

Histogram Histogram::LatencyUs() {
  return Histogram({10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0,
                    25000.0, 50000.0, 100000.0});
}

Histogram Histogram::Rber() {
  return Histogram({1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1});
}

Histogram Histogram::FromParts(std::vector<double> bounds, std::vector<uint64_t> buckets,
                               uint64_t count, double sum) {
  Histogram h(std::move(bounds));
  assert(buckets.size() == h.bounds_.size() + 1 && "bucket count must match bounds + overflow");
  h.buckets_ = std::move(buckets);
  h.count_ = count;
  h.sum_ = sum;
  return h;
}

Status Histogram::Merge(const Histogram& other) {
  if (bounds_ != other.bounds_) {
    return Status(StatusCode::kInvalidArgument, "histogram merge: bucket bounds differ");
  }
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  return Status::Ok();
}

// --- MetricRegistry ----------------------------------------------------------

size_t MetricRegistry::Find(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? kNotFound : it->second;
}

MetricRegistry::Entry& MetricRegistry::NewEntry(const std::string& name, MetricKind kind) {
  assert(!name.empty() && "metric names must be non-empty");
  assert(Find(name) == kNotFound && "metric registered twice");
  Entry entry;
  entry.name = name;
  entry.kind = kind;
  index_.emplace(name, entries_.size());
  entries_.push_back(std::move(entry));
  return entries_.back();
}

Counter* MetricRegistry::AddCounter(const std::string& name) {
  Entry& entry = NewEntry(name, MetricKind::kCounter);
  entry.counter = std::make_unique<Counter>();
  return entry.counter.get();
}

Gauge* MetricRegistry::AddGauge(const std::string& name) {
  Entry& entry = NewEntry(name, MetricKind::kGauge);
  entry.gauge = std::make_unique<Gauge>();
  return entry.gauge.get();
}

Histogram* MetricRegistry::AddHistogram(const std::string& name,
                                        std::vector<double> upper_bounds) {
  Entry& entry = NewEntry(name, MetricKind::kHistogram);
  entry.histogram = std::make_unique<Histogram>(std::move(upper_bounds));
  return entry.histogram.get();
}

void MetricRegistry::SetCounter(const std::string& name, uint64_t value) {
  const size_t at = Find(name);
  Counter* counter = at == kNotFound ? AddCounter(name) : entries_[at].counter.get();
  assert(counter != nullptr && "metric kind mismatch");
  counter->Add(value - counter->value());
}

void MetricRegistry::SetGauge(const std::string& name, double value) {
  const size_t at = Find(name);
  Gauge* gauge = at == kNotFound ? AddGauge(name) : entries_[at].gauge.get();
  assert(gauge != nullptr && "metric kind mismatch");
  gauge->Set(value);
}

void MetricRegistry::SetHistogram(const std::string& name, const Histogram& histogram) {
  const size_t at = Find(name);
  Histogram* target =
      at == kNotFound ? AddHistogram(name, histogram.bounds()) : entries_[at].histogram.get();
  assert(target != nullptr && "metric kind mismatch");
  *target = histogram;
}

void MetricRegistry::Append(const MetricsSnapshot& snapshot, const std::string& prefix) {
  for (const MetricRow& row : snapshot) {
    const std::string name = prefix + row.name;
    switch (row.kind) {
      case MetricKind::kCounter:
        SetCounter(name, row.counter);
        break;
      case MetricKind::kGauge:
        SetGauge(name, row.gauge);
        break;
      case MetricKind::kHistogram:
        SetHistogram(name,
                     Histogram::FromParts(row.bounds, row.buckets, row.count, row.sum));
        break;
    }
  }
}

MetricsSnapshot MetricRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  snapshot.reserve(entries_.size());
  for (const Entry& entry : entries_) {
    MetricRow row;
    row.name = entry.name;
    row.kind = entry.kind;
    switch (entry.kind) {
      case MetricKind::kCounter:
        row.counter = entry.counter->value();
        break;
      case MetricKind::kGauge:
        row.gauge = entry.gauge->value();
        break;
      case MetricKind::kHistogram:
        row.bounds = entry.histogram->bounds();
        row.buckets = entry.histogram->buckets();
        row.count = entry.histogram->count();
        row.sum = entry.histogram->sum();
        break;
    }
    snapshot.push_back(std::move(row));
  }
  return snapshot;
}

std::string MetricRegistry::ToJson() const { return MetricsToJson(Snapshot()); }

std::string MetricsToJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\n  \"metrics\": [\n";
  for (size_t i = 0; i < snapshot.size(); ++i) {
    AppendRow(out, snapshot[i]);
    if (i + 1 < snapshot.size()) {
      out += ",";
    }
    out += "\n";
  }
  out += "  ]\n}\n";
  return out;
}

std::string FormatJsonDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

Status WriteFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status(StatusCode::kUnavailable, "cannot open " + path + " for writing");
  }
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const int close_rc = std::fclose(f);
  if (written != content.size() || close_rc != 0) {
    return Status(StatusCode::kUnavailable, "short write to " + path);
  }
  return Status::Ok();
}

}  // namespace sos::obs
