// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Deterministic metrics layer (DESIGN.md §9).
//
// Every quantitative signal the simulator emits beyond its ASCII reports
// flows through a MetricRegistry: named counters, gauges and fixed-bucket
// histograms whose *registration order is the export order*. That single
// rule is what makes telemetry part of the repo's determinism contract --
// the JSON rendered from a registry is byte-identical across reruns and for
// any --jobs value, because nothing about it depends on hash order, wall
// clock, or thread scheduling. Names follow `layer.component.metric`
// (e.g. "ftl.pool.SYS.gc_relocations", "flash.die.read.rber").
//
// Time never enters this layer except as *simulated* time carried in by the
// caller (see scoped_latency.h); soslint R2 applies to obs like any other
// library.

#ifndef SOS_SRC_OBS_METRICS_H_
#define SOS_SRC_OBS_METRICS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"

namespace sos::obs {

// Monotonic event count. Wraps a plain integer so call sites read as
// telemetry, and so a future sharded registry can swap the representation.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_ += n; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

// Last-write-wins instantaneous value (free blocks, quality score, ...).
class Gauge {
 public:
  void Set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

// Fixed-bucket histogram. Buckets are defined by ascending inclusive upper
// bounds; one implicit overflow bucket catches everything above the last
// bound. Bounds are fixed at construction -- never derived from observed
// data -- so two runs that see the same samples render the same buckets.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  // Records `v` in the first bucket whose bound >= v (overflow bucket
  // otherwise).
  void Observe(double v);

  // bounds().size() + 1 counts; the last one is the overflow bucket.
  const std::vector<double>& bounds() const { return bounds_; }
  const std::vector<uint64_t>& buckets() const { return buckets_; }
  uint64_t count() const { return count_; }
  double sum() const { return sum_; }

  // Canonical bucket sets. Latency buckets cover device ops (~10us page
  // reads) through multi-ms erases and GC stalls; RBER buckets cover the
  // error model's 1e-8 .. 1e-1 range in decade steps.
  static Histogram LatencyUs();
  static Histogram Rber();

  // Rebuilds a histogram from exported state (bounds/buckets/count/sum as a
  // MetricRow carries them). Used when replaying snapshots into a registry;
  // Observe() cannot reproduce exact per-bucket counts.
  static Histogram FromParts(std::vector<double> bounds, std::vector<uint64_t> buckets,
                             uint64_t count, double sum);

  // Folds `other` into this histogram bucket by bucket. The bucket counts
  // and total count are integer sums, so merging is exactly associative and
  // commutative; `sum` is a double and therefore only order-stable if the
  // caller merges in a canonical order (the fleet ledger avoids the issue by
  // carrying fixed-point sums and materializing the double at render time).
  // kInvalidArgument if the bucket bounds differ.
  [[nodiscard]] Status Merge(const Histogram& other);

 private:
  std::vector<double> bounds_;
  std::vector<uint64_t> buckets_;  // bounds_.size() + 1, last = overflow
  uint64_t count_ = 0;
  double sum_ = 0.0;
};

enum class MetricKind : uint8_t { kCounter, kGauge, kHistogram };

// One exported metric row: a point-in-time value detached from the live
// objects above. A vector of these is the portable form results carry
// across threads (LifetimeResult::device_metrics) and what the JSON
// renderer consumes.
struct MetricRow {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  uint64_t counter = 0;               // kCounter
  double gauge = 0.0;                 // kGauge
  std::vector<double> bounds;         // kHistogram
  std::vector<uint64_t> buckets;      // kHistogram (bounds.size() + 1)
  uint64_t count = 0;                 // kHistogram
  double sum = 0.0;                   // kHistogram

  bool operator==(const MetricRow& other) const = default;
};

using MetricsSnapshot = std::vector<MetricRow>;

// Named metric container. Registration order is stable export order; names
// must be unique (re-registering a name asserts -- a duplicate would make
// export order depend on call-site luck). The name index is a hash map used
// for lookup only; every walk of the registry goes through the ordered
// entry vector (soslint R1).
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  // Live instruments, owned by the registry. Pointers stay valid for the
  // registry's lifetime.
  Counter* AddCounter(const std::string& name);
  Gauge* AddGauge(const std::string& name);
  Histogram* AddHistogram(const std::string& name, std::vector<double> upper_bounds);

  // Export-time value setters: register-and-assign in one step. Used by
  // ToMetrics()/ExportMetrics() implementations that keep their counters as
  // plain struct fields and only materialize metric rows on demand.
  void SetCounter(const std::string& name, uint64_t value);
  void SetGauge(const std::string& name, double value);
  void SetHistogram(const std::string& name, const Histogram& histogram);

  // Replays snapshot rows into this registry (each name prefixed with
  // `prefix`), preserving their order. Lets a result captured in a worker
  // thread be merged into a report registry deterministically.
  void Append(const MetricsSnapshot& snapshot, const std::string& prefix = "");

  size_t size() const { return entries_.size(); }

  // Rows in registration order.
  MetricsSnapshot Snapshot() const;

  // Deterministic JSON document (see DESIGN.md §9 for the schema). Doubles
  // are rendered with %.17g so the round trip is exact and byte-stable.
  std::string ToJson() const;

 private:
  struct Entry {
    std::string name;
    MetricKind kind = MetricKind::kCounter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& NewEntry(const std::string& name, MetricKind kind);
  // Returns the entry index for `name`, or SIZE_MAX.
  size_t Find(const std::string& name) const;

  std::vector<Entry> entries_;                      // export order
  std::unordered_map<std::string, size_t> index_;   // lookup only, never iterated
};

// Renders one snapshot as the same JSON document ToJson() produces.
std::string MetricsToJson(const MetricsSnapshot& snapshot);

// %.17g double formatting shared by the JSON emitters (exact round trip,
// byte-stable across reruns on one platform).
std::string FormatJsonDouble(double v);

// Writes `json` to `path` atomically enough for bench use (truncate +
// write + close). kUnavailable on any I/O failure.
[[nodiscard]] Status WriteFile(const std::string& path, const std::string& content);

}  // namespace sos::obs

#endif  // SOS_SRC_OBS_METRICS_H_
