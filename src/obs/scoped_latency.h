// Copyright (c) 2026 The SOS Authors. MIT License.
//
// RAII latency timer over *simulated* time.
//
// ScopedLatency snapshots SimClock::now() at construction and, on
// destruction, observes the elapsed simulated microseconds into a Histogram.
// Because the clock only advances by modeled device latency, the recorded
// distribution is a property of the workload + device model -- identical
// across reruns and --jobs values -- never of host scheduling. This is the
// only sanctioned way to time an operation in telemetry code (soslint R2
// bans wall-clock in libraries).

#ifndef SOS_SRC_OBS_SCOPED_LATENCY_H_
#define SOS_SRC_OBS_SCOPED_LATENCY_H_

#include "src/common/sim_clock.h"
#include "src/obs/metrics.h"

namespace sos::obs {

class ScopedLatency {
 public:
  // Either pointer may be null, making the timer a no-op; call sites guard
  // once at construction instead of around every timed region.
  ScopedLatency(const SimClock* clock, Histogram* histogram)
      : clock_(clock), histogram_(histogram), start_us_(clock ? clock->now() : 0) {}

  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

  ~ScopedLatency() {
    if (clock_ != nullptr && histogram_ != nullptr) {
      histogram_->Observe(static_cast<double>(clock_->now() - start_us_));
    }
  }

 private:
  const SimClock* clock_;
  Histogram* histogram_;
  SimTimeUs start_us_;
};

}  // namespace sos::obs

#endif  // SOS_SRC_OBS_SCOPED_LATENCY_H_
