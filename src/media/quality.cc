// Copyright (c) 2026 The SOS Authors. MIT License.

#include "src/media/quality.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/common/rng.h"

namespace sos {

// ---------------------------------------------------------------------------
// Images.
// ---------------------------------------------------------------------------

double ImageQualityModel::PsnrDb(std::span<const uint8_t> original,
                                 std::span<const uint8_t> corrupted) {
  assert(original.size() == corrupted.size());
  if (original.empty()) {
    return kMaxPsnrDb;
  }
  double sq_err = 0.0;
  for (size_t i = 0; i < original.size(); ++i) {
    const double d = static_cast<double>(original[i]) - static_cast<double>(corrupted[i]);
    sq_err += d * d;
  }
  if (sq_err == 0.0) {
    return kMaxPsnrDb;
  }
  const double mse = sq_err / static_cast<double>(original.size());
  const double psnr = 10.0 * std::log10(255.0 * 255.0 / mse);
  return std::min(psnr, kMaxPsnrDb);
}

double ImageQualityModel::ExpectedPsnrDb(double ber) {
  if (ber <= 0.0) {
    return kMaxPsnrDb;
  }
  // E[MSE] per pixel: each bit-plane b flips with probability ber and
  // contributes (2^b)^2 squared error. Sum_b 4^b for b=0..7 = (4^8-1)/3.
  constexpr double kSumSquares = (65536.0 - 1.0) / 3.0;  // sum of 4^b for b=0..7 = 21845
  const double mse = ber * kSumSquares;
  if (mse <= 0.0) {
    return kMaxPsnrDb;
  }
  return std::min(10.0 * std::log10(255.0 * 255.0 / mse), kMaxPsnrDb);
}

double ImageQualityModel::ScoreFromPsnr(double psnr_db) {
  constexpr double kLossless = 45.0;
  constexpr double kUnusable = 15.0;
  if (psnr_db >= kLossless) {
    return 1.0;
  }
  if (psnr_db <= kUnusable) {
    return 0.0;
  }
  return (psnr_db - kUnusable) / (kLossless - kUnusable);
}

std::vector<uint8_t> GenerateSyntheticImage(uint32_t width, uint32_t height, uint64_t seed) {
  std::vector<uint8_t> pixels(static_cast<size_t>(width) * height);
  Rng rng(DeriveSeed({seed, 0x696d616765ull /* "image" */}));
  for (uint32_t y = 0; y < height; ++y) {
    for (uint32_t x = 0; x < width; ++x) {
      // Diagonal gradient plus +-8 levels of texture noise.
      const double base = 255.0 * (static_cast<double>(x) + static_cast<double>(y)) /
                          (static_cast<double>(width) + static_cast<double>(height));
      const double noise = rng.NextGaussian(0.0, 4.0);
      const double v = std::clamp(base + noise, 0.0, 255.0);
      pixels[static_cast<size_t>(y) * width + x] = static_cast<uint8_t>(v);
    }
  }
  return pixels;
}

// ---------------------------------------------------------------------------
// Video.
// ---------------------------------------------------------------------------

char VideoQualityModel::FrameType(uint64_t frame_index) const {
  const uint64_t pos = frame_index % config_.gop_size;
  if (pos == 0) {
    return 'I';
  }
  if (config_.p_interval > 0 && pos % config_.p_interval == 0) {
    return 'P';
  }
  return 'B';
}

double VideoQualityModel::OwnDamage(uint64_t bit_errors) const {
  return std::min(1.0, static_cast<double>(bit_errors) * config_.error_gain);
}

double VideoQualityModel::ScoreCorrupted(std::span<const uint8_t> original,
                                         std::span<const uint8_t> corrupted) const {
  assert(original.size() == corrupted.size());
  if (original.empty()) {
    return 1.0;
  }
  const uint64_t frames =
      (original.size() + config_.frame_bytes - 1) / config_.frame_bytes;

  // Count bit errors per frame.
  std::vector<uint64_t> errors(frames, 0);
  for (size_t i = 0; i < original.size(); ++i) {
    uint8_t diff = static_cast<uint8_t>(original[i] ^ corrupted[i]);
    if (diff != 0) {
      errors[i / config_.frame_bytes] +=
          static_cast<uint64_t>(__builtin_popcount(static_cast<unsigned>(diff)));
    }
  }

  // Propagate damage within each GOP and average retained quality.
  double retained_total = 0.0;
  for (uint64_t gop_start = 0; gop_start < frames; gop_start += config_.gop_size) {
    const uint64_t gop_end = std::min<uint64_t>(gop_start + config_.gop_size, frames);
    double inherited = 0.0;  // damage flowing from earlier reference frames
    for (uint64_t f = gop_start; f < gop_end; ++f) {
      const char type = FrameType(f);
      const double own = OwnDamage(errors[f]);
      const double damage = std::min(1.0, own + inherited);
      retained_total += 1.0 - damage;
      if (type == 'I') {
        inherited = std::min(1.0, inherited + own * config_.i_propagation);
      } else if (type == 'P') {
        inherited = std::min(1.0, inherited + own * config_.p_propagation);
      }
      // B frames are not reference frames: no propagation.
    }
  }
  return retained_total / static_cast<double>(frames);
}

double VideoQualityModel::ExpectedScore(double ber, uint64_t total_bytes) const {
  if (ber <= 0.0 || total_bytes == 0) {
    return 1.0;
  }
  const double frame_bits = static_cast<double>(config_.frame_bytes) * 8.0;
  const double exp_errors_per_frame = ber * frame_bits;
  // Expected own damage per frame. For small error counts the min() clamp is
  // inactive and E[damage] = gain * E[errors]; near saturation cap at 1.
  const double own = std::min(1.0, exp_errors_per_frame * config_.error_gain);

  // Walk one representative GOP accumulating expected inherited damage.
  const uint64_t frames = std::max<uint64_t>(
      1, (total_bytes + config_.frame_bytes - 1) / config_.frame_bytes);
  const uint64_t gop = std::min<uint64_t>(config_.gop_size, frames);
  double inherited = 0.0;
  double retained = 0.0;
  for (uint64_t f = 0; f < gop; ++f) {
    const uint64_t pos = f % config_.gop_size;
    const char type = pos == 0 ? 'I'
                      : (config_.p_interval > 0 && pos % config_.p_interval == 0) ? 'P'
                                                                                  : 'B';
    retained += 1.0 - std::min(1.0, own + inherited);
    if (type == 'I') {
      inherited = std::min(1.0, inherited + own * config_.i_propagation);
    } else if (type == 'P') {
      inherited = std::min(1.0, inherited + own * config_.p_propagation);
    }
  }
  return retained / static_cast<double>(gop);
}

std::vector<uint8_t> GenerateSyntheticVideo(const VideoConfig& config, uint32_t frames,
                                            uint64_t seed) {
  std::vector<uint8_t> payload(static_cast<size_t>(frames) * config.frame_bytes);
  Rng rng(DeriveSeed({seed, 0x766964656full /* "video" */}));
  for (auto& byte : payload) {
    byte = static_cast<uint8_t>(rng.NextU64() & 0xff);
  }
  return payload;
}

// ---------------------------------------------------------------------------
// Aggregate file quality.
// ---------------------------------------------------------------------------

double ExpectedFileQuality(MediaKind kind, double ber, uint64_t bytes) {
  if (ber <= 0.0 || bytes == 0) {
    return 1.0;
  }
  const double bits = static_cast<double>(bytes) * 8.0;
  switch (kind) {
    case MediaKind::kVideo: {
      static const VideoQualityModel model{VideoConfig{}};
      return model.ExpectedScore(ber, bytes);
    }
    case MediaKind::kImage:
      return ImageQualityModel::ScoreFromPsnr(ImageQualityModel::ExpectedPsnrDb(ber));
    case MediaKind::kAudio: {
      // Audio frames conceal errors well and do not predict across frames;
      // model as video with no propagation and gentler per-error damage.
      VideoConfig cfg;
      cfg.error_gain = 0.1;
      cfg.i_propagation = 0.0;
      cfg.p_propagation = 0.0;
      const VideoQualityModel model{cfg};
      return model.ExpectedScore(ber, bytes);
    }
    case MediaKind::kDocument:
    case MediaKind::kBinary:
      // Intolerant: quality is the probability the file is error-free.
      return std::exp(-ber * bits);
  }
  return 0.0;
}

}  // namespace sos
