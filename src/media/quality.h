// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Media quality models for approximate storage.
//
// SOS stores SPARE files with weak or no ECC and lets them "slightly degrade
// in quality over time" (paper abstract, §4.2). To reason about what the user
// actually experiences, this module maps raw bit errors to perceptual-quality
// scores for the two media families that dominate personal storage:
//
//  - Images (ImageQualityModel): synthetic raw 8-bit grayscale bitmaps.
//    A flipped bit in pixel bit-plane b contributes (2^b)^2 of squared error,
//    so PSNR is computed *exactly* between the original and corrupted bytes.
//    This mirrors the significance-ordered encoding of approximate storage
//    systems ([70]): high bit-planes matter, low ones barely register.
//
//  - Video (VideoQualityModel): an MPEG-like GOP structure. Errors in
//    I-frames damage the whole group-of-pictures (every later frame predicts
//    from them), P-frame errors propagate to the rest of their GOP, B-frame
//    errors hurt only themselves ([72]). Most bytes live in tolerant P/B
//    frames, which is exactly why MPEG data degrades gracefully.
//
// Both models provide a bit-exact path (compare original vs corrupted bytes)
// and an analytical expectation path (quality as a function of BER) used by
// the large-scale lifetime simulations that run without stored payloads.

#ifndef SOS_SRC_MEDIA_QUALITY_H_
#define SOS_SRC_MEDIA_QUALITY_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/units.h"

namespace sos {

// ---------------------------------------------------------------------------
// Images.
// ---------------------------------------------------------------------------

class ImageQualityModel {
 public:
  // Peak signal-to-noise ratio in dB between two equal-size 8-bit pixel
  // buffers. Identical buffers return kMaxPsnrDb (lossless sentinel).
  static constexpr double kMaxPsnrDb = 99.0;
  static double PsnrDb(std::span<const uint8_t> original, std::span<const uint8_t> corrupted);

  // Expected PSNR of a raw 8-bit image at uniform bit error rate `ber`:
  // each of the 8 bit-planes flips independently, E[MSE] =
  // ber * sum_b (2^b)^2.
  static double ExpectedPsnrDb(double ber);

  // Maps PSNR to a [0,1] quality score: >= 45 dB is visually lossless (1.0),
  // <= 15 dB is unusable (0.0), linear in between. The thresholds follow
  // common subjective-quality anchors for natural images.
  static double ScoreFromPsnr(double psnr_db);
};

// Deterministic synthetic grayscale image: smooth gradient plus seeded noise,
// `width*height` bytes. Smoothness matters: it makes PSNR degradation from
// bit flips representative of natural photos.
std::vector<uint8_t> GenerateSyntheticImage(uint32_t width, uint32_t height, uint64_t seed);

// ---------------------------------------------------------------------------
// Video.
// ---------------------------------------------------------------------------

struct VideoConfig {
  uint32_t frame_bytes = kKiB;  // encoded size of one frame
  uint32_t gop_size = 12;       // frames per group-of-pictures (first is the I-frame)
  uint32_t p_interval = 3;      // every p_interval-th frame in a GOP is P, rest are B
  // Damage scaling: a frame with e bit errors loses min(1, e * error_gain)
  // of its own quality before propagation. Calibrated so the expected score
  // matches the MPEG error-tolerance regime of [72]: ~0.99 at BER 1e-6,
  // ~0.85 at 1e-4, collapsing toward 0 past 1e-3.
  double error_gain = 0.08;
  // Fraction of damage an I-frame error passes to each frame of its GOP, and
  // a P-frame passes to later frames of its GOP.
  double i_propagation = 1.0;
  double p_propagation = 0.6;
};

class VideoQualityModel {
 public:
  explicit VideoQualityModel(const VideoConfig& config) : config_(config) {}

  const VideoConfig& config() const { return config_; }

  // Bit-exact score in [0,1]: diffs the buffers, attributes errors to frames,
  // propagates damage through the GOP structure, and averages retained
  // per-frame quality.
  double ScoreCorrupted(std::span<const uint8_t> original,
                        std::span<const uint8_t> corrupted) const;

  // Analytical expected score for a stream of `total_bytes` at bit error
  // rate `ber`.
  double ExpectedScore(double ber, uint64_t total_bytes) const;

  // Frame classification helper (exposed for tests): 'I', 'P' or 'B'.
  char FrameType(uint64_t frame_index) const;

 private:
  // Per-frame damage in [0,1] given its raw bit error count.
  double OwnDamage(uint64_t bit_errors) const;

  VideoConfig config_;
};

// Deterministic synthetic "encoded video" payload of `frames` frames. The
// content is seeded noise (encoded video is high-entropy); the structure that
// matters is positional (frame boundaries and GOP layout).
std::vector<uint8_t> GenerateSyntheticVideo(const VideoConfig& config, uint32_t frames,
                                            uint64_t seed);

// ---------------------------------------------------------------------------
// Aggregate file quality.
// ---------------------------------------------------------------------------

// Media family of a stored file, used to select a degradation model.
enum class MediaKind : uint8_t {
  kVideo,
  kImage,
  kAudio,     // modeled like video with shallow propagation
  kDocument,  // intolerant: any error is a defect
  kBinary,    // intolerant: executables/libraries
};

// Expected quality in [0,1] of a file of `kind` after experiencing uniform
// user-visible bit error rate `ber` over `bytes` bytes. The intolerant kinds
// use the probability of *zero* errors (a single flip corrupts a document or
// binary); tolerant kinds use their analytical models.
double ExpectedFileQuality(MediaKind kind, double ber, uint64_t bytes);

}  // namespace sos

#endif  // SOS_SRC_MEDIA_QUALITY_H_
