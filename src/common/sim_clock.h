// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Simulated wall clock shared by the device, the FTL, and the SOS daemons.
//
// SOS phenomena span ten orders of magnitude of time: a PLC page read takes
// ~100us while retention degradation plays out over years. The simulator uses
// a single logical microsecond clock; device operations advance it by their
// modeled latency and the host can fast-forward across idle periods
// ("a week passes") to age data.

#ifndef SOS_SRC_COMMON_SIM_CLOCK_H_
#define SOS_SRC_COMMON_SIM_CLOCK_H_

#include <cassert>

#include "src/common/units.h"

namespace sos {

class SimClock {
 public:
  SimTimeUs now() const { return now_us_; }

  // Advance by a delta (device op latency, daemon period, idle gap).
  void Advance(SimTimeUs delta_us) { now_us_ += delta_us; }

  // Jump directly to an absolute time; must not go backwards.
  void AdvanceTo(SimTimeUs t_us) {
    assert(t_us >= now_us_ && "simulated time must be monotonic");
    now_us_ = t_us;
  }

  double now_days() const { return UsToDays(now_us_); }
  double now_years() const { return UsToYears(now_us_); }

 private:
  SimTimeUs now_us_ = 0;
};

}  // namespace sos

#endif  // SOS_SRC_COMMON_SIM_CLOCK_H_
