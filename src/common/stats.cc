// Copyright (c) 2026 The SOS Authors. MIT License.

#include "src/common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace sos {

void RunningStats::Add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double Percentiles::Get(double p) {
  if (samples_.empty()) {
    return 0.0;
  }
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

Histogram::Histogram(double lo, double hi, size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets > 0 ? buckets : 1)),
      counts_(buckets > 0 ? buckets : 1, 0) {}

void Histogram::Add(double x) {
  ++total_;
  if (x < lo_) {
    ++counts_.front();
    return;
  }
  size_t idx = static_cast<size_t>((x - lo_) / width_);
  if (idx >= counts_.size()) {
    idx = counts_.size() - 1;
  }
  ++counts_[idx];
}

double Histogram::BucketLow(size_t i) const { return lo_ + width_ * static_cast<double>(i); }

std::string Histogram::Render(size_t max_width) const {
  uint64_t peak = 1;
  for (uint64_t c : counts_) {
    peak = std::max(peak, c);
  }
  std::string out;
  char line[160];
  for (size_t i = 0; i < counts_.size(); ++i) {
    const size_t bar =
        static_cast<size_t>(static_cast<double>(counts_[i]) / static_cast<double>(peak) *
                            static_cast<double>(max_width));
    std::snprintf(line, sizeof(line), "[%10.3g, %10.3g) ", BucketLow(i), BucketLow(i + 1));
    out += line;
    out.append(bar, '#');
    std::snprintf(line, sizeof(line), " %llu\n", static_cast<unsigned long long>(counts_[i]));
    out += line;
  }
  return out;
}

}  // namespace sos
