// Copyright (c) 2026 The SOS Authors. MIT License.

#include "src/common/rng.h"

#include <cmath>

namespace sos {

uint64_t DeriveSeed(std::initializer_list<uint64_t> keys) {
  // Chain each key through SplitMix64 so that any single-bit change in any
  // key yields an unrelated stream.
  uint64_t acc = 0x5bf03635f0c48d32ull;
  for (uint64_t k : keys) {
    SplitMix64 mix(acc ^ k);
    acc = mix.Next();
  }
  return acc;
}

Rng::Rng(uint64_t seed) {
  SplitMix64 mix(seed);
  for (auto& word : s_) {
    word = mix.Next();
  }
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  if (bound == 0) {
    return 0;
  }
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return NextDouble() < p;
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextGaussian(double mean, double stddev) {
  double sum = 0.0;
  for (int i = 0; i < 12; ++i) {
    sum += NextDouble();
  }
  return mean + stddev * (sum - 6.0);
}

double Rng::NextExponential(double mean) {
  double u = NextDouble();
  // Guard against log(0).
  if (u >= 1.0) {
    u = 0x1.fffffffffffffp-1;
  }
  return -mean * std::log(1.0 - u);
}

uint64_t Rng::NextBinomial(uint64_t n, double p) {
  if (n == 0 || p <= 0.0) {
    return 0;
  }
  if (p >= 1.0) {
    return n;
  }
  const double np = static_cast<double>(n) * p;
  if (n <= 64) {
    // Exact Bernoulli trials.
    uint64_t count = 0;
    for (uint64_t i = 0; i < n; ++i) {
      count += NextBool(p) ? 1u : 0u;
    }
    return count;
  }
  if (np < 16.0) {
    // Inverse-transform Poisson-like exact sampling via waiting times
    // (geometric skips). O(np) expected.
    const double log_q = std::log1p(-p);
    uint64_t count = 0;
    double sum = 0.0;
    for (;;) {
      double u = NextDouble();
      if (u >= 1.0) {
        u = 0x1.fffffffffffffp-1;
      }
      sum += std::log(1.0 - u) / log_q;
      if (sum > static_cast<double>(n)) {
        return count;
      }
      ++count;
    }
  }
  // Normal approximation with continuity correction; clamp to [0, n].
  const double sigma = std::sqrt(np * (1.0 - p));
  double draw = NextGaussian(np, sigma) + 0.5;
  if (draw < 0.0) {
    return 0;
  }
  if (draw > static_cast<double>(n)) {
    return n;
  }
  return static_cast<uint64_t>(draw);
}

ZipfDistribution::ZipfDistribution(size_t n, double skew) {
  cdf_.resize(n > 0 ? n : 1);
  double sum = 0.0;
  for (size_t i = 0; i < cdf_.size(); ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), skew);
    cdf_[i] = sum;
  }
  for (double& c : cdf_) {
    c /= sum;
  }
}

size_t ZipfDistribution::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  // Binary search for the first CDF entry >= u.
  size_t lo = 0;
  size_t hi = cdf_.size() - 1;
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace sos
