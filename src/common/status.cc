// Copyright (c) 2026 The SOS Authors. MIT License.

#include "src/common/status.h"

namespace sos {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kOutOfSpace:
      return "OUT_OF_SPACE";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
    case StatusCode::kWornOut:
      return "WORN_OUT";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kPowerLost:
      return "POWER_LOST";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace sos
