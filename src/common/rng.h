// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Deterministic random number generation for the simulator.
//
// Every stochastic component in SOS draws from an explicitly seeded Rng.
// Reproducibility is a hard requirement: the same (config, seed) pair must
// produce bit-identical simulations, so we implement our own small generators
// instead of relying on std::mt19937 distribution implementations (which are
// not guaranteed identical across standard libraries).
//
// Rng               -- xoshiro256** core generator.
// SplitMix64        -- seed expander; also used to derive independent streams
//                      from (seed, key...) tuples, e.g. per-page error streams.
// ZipfDistribution  -- skewed access popularity used by workload generators.

#ifndef SOS_SRC_COMMON_RNG_H_
#define SOS_SRC_COMMON_RNG_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <vector>

namespace sos {

// SplitMix64: tiny, fast, and full-period over 2^64. Used for seed expansion
// and for hashing stream keys into seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    state_ += 0x9e3779b97f4a7c15ull;
    uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

// Mixes an arbitrary number of 64-bit keys into a single well-distributed
// seed. Used to derive independent deterministic streams, e.g.
// DeriveSeed(device_seed, block_id, page_id, read_count).
uint64_t DeriveSeed(std::initializer_list<uint64_t> keys);

// xoshiro256**: the simulator's workhorse generator. Passes BigCrush, fast,
// and trivially portable.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Raw 64 uniform bits.
  uint64_t NextU64();

  // Uniform in [0, bound). bound == 0 returns 0.
  uint64_t NextBounded(uint64_t bound);

  // Uniform double in [0, 1).
  double NextDouble();

  // True with probability p (clamped to [0,1]).
  bool NextBool(double p);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  // Approximate normal via sum of 12 uniforms (Irwin-Hall); adequate for
  // workload jitter and avoids libm differences across platforms.
  double NextGaussian(double mean, double stddev);

  // Exponential with the given mean (> 0).
  double NextExponential(double mean);

  // Number of successes in n Bernoulli(p) trials. Uses exact sampling for
  // small n*p and a normal approximation for large n to keep page-error
  // sampling O(1) even for billions of bits.
  uint64_t NextBinomial(uint64_t n, double p);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  std::array<uint64_t, 4> s_;
};

// Zipf(s) over {0, 1, ..., n-1}: rank 0 is the most popular item. Implemented
// with a precomputed CDF and binary search; construction is O(n), sampling
// O(log n). Used to model skewed file popularity on personal devices.
class ZipfDistribution {
 public:
  ZipfDistribution(size_t n, double skew);

  size_t Sample(Rng& rng) const;
  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace sos

#endif  // SOS_SRC_COMMON_RNG_H_
