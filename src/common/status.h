// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Lightweight status/error propagation for the SOS libraries.
//
// The simulator is exception-free (simulation code paths are hot and error
// outcomes like "ECC failure" are expected results, not exceptional states).
// Status carries an error code + message; Result<T> is Status-or-value.

#ifndef SOS_SRC_COMMON_STATUS_H_
#define SOS_SRC_COMMON_STATUS_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace sos {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // caller bug: out-of-range address, bad config
  kNotFound,          // unmapped LBA, missing file
  kOutOfSpace,        // no free blocks / capacity exhausted
  kDataLoss,          // uncorrectable error on a reliable partition
  kWornOut,           // block or device beyond endurance
  kFailedPrecondition,  // e.g. write to a retired block, double free
  kUnavailable,       // transient: resource busy / backup not reachable
};

// Human-readable name for a code ("OK", "DATA_LOSS", ...).
const char* StatusCodeName(StatusCode code);

class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "DATA_LOSS: page 42 uncorrectable" or "OK".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

// Result<T>: either a value or a non-OK Status. value() asserts on misuse so
// bugs fail fast in tests.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}           // NOLINT(google-explicit-constructor)
  Result(Status status) : v_(std::move(status)) {     // NOLINT(google-explicit-constructor)
    assert(!std::get<Status>(v_).ok() && "Result constructed from OK status without a value");
  }

  bool ok() const { return std::holds_alternative<T>(v_); }

  const T& value() const {
    assert(ok());
    return std::get<T>(v_);
  }
  T& value() {
    assert(ok());
    return std::get<T>(v_);
  }

  Status status() const {
    if (ok()) {
      return Status::Ok();
    }
    return std::get<Status>(v_);
  }

 private:
  std::variant<T, Status> v_;
};

}  // namespace sos

#endif  // SOS_SRC_COMMON_STATUS_H_
