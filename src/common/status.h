// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Lightweight status/error propagation for the SOS libraries.
//
// The simulator is exception-free (simulation code paths are hot and error
// outcomes like "ECC failure" are expected results, not exceptional states).
// Status carries an error code + message; Result<T> is Status-or-value.

#ifndef SOS_SRC_COMMON_STATUS_H_
#define SOS_SRC_COMMON_STATUS_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace sos {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // caller bug: out-of-range address, bad config
  kNotFound,          // unmapped LBA, missing file
  kOutOfSpace,        // no free blocks / capacity exhausted
  kDataLoss,          // uncorrectable error on a reliable partition
  kWornOut,           // block or device beyond endurance
  kFailedPrecondition,  // e.g. write to a retired block, double free
  kUnavailable,       // transient: resource busy / backup not reachable
  kPowerLost,         // simulated power cut: device dark until PowerOn()
  kResourceExhausted,  // bounded resource table full (e.g. placement handles)
};

// Human-readable name for a code ("OK", "DATA_LOSS", ...).
const char* StatusCodeName(StatusCode code);

// [[nodiscard]]: dropping a Status on the floor is how a kDataLoss silently
// becomes "everything worked" -- the exact accounting failure this simulator
// exists to quantify. Deliberate ignores must be visible at the call site
// (inspect it, assert on it, or cast to void next to a reason).
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "DATA_LOSS: page 42 uncorrectable" or "OK".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

// Result<T>: either a value or a non-OK Status. value() asserts on misuse so
// bugs fail fast in tests.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : v_(std::move(value)) {}           // NOLINT(google-explicit-constructor)
  Result(Status status) : v_(std::move(status)) {     // NOLINT(google-explicit-constructor)
    assert(!std::get<Status>(v_).ok() && "Result constructed from OK status without a value");
  }

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(v_); }

  const T& value() const {
    assert(ok());
    return std::get<T>(v_);
  }
  T& value() {
    assert(ok());
    return std::get<T>(v_);
  }

  Status status() const {
    if (ok()) {
      return Status::Ok();
    }
    return std::get<Status>(v_);
  }

 private:
  std::variant<T, Status> v_;
};

// Marks a deliberately discarded Status/Result at the call site. Prefer
// handling or asserting; reach for this only where failure is an expected,
// benign outcome (advisory trims, best-effort background work, fill loops
// that run a device to exhaustion on purpose) -- and say why in a comment.
// Grepping for IgnoreResult audits every such decision in the tree.
template <typename T>
inline void IgnoreResult(T&& /*unused*/) {}

}  // namespace sos

#endif  // SOS_SRC_COMMON_STATUS_H_
