// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Deterministic-iteration helpers for unordered containers.
//
// Hash-map iteration order is an implementation detail of the standard
// library; anything that escapes the loop -- printed tables, accumulated
// vectors, "first violation wins" error reports -- picks up that order and
// breaks bit-exact reproduction (soslint rule R1, DESIGN.md §8). Where a
// container is keyed for O(1) lookup but must be *walked* reproducibly,
// harvest and sort the keys first.

#ifndef SOS_SRC_COMMON_CONTAINER_UTIL_H_
#define SOS_SRC_COMMON_CONTAINER_UTIL_H_

#include <algorithm>
#include <vector>

namespace sos {

// Sorted keys of an associative container (map-like: value_type is a pair).
// O(n log n); intended for audit/emit paths, not per-page hot paths -- those
// should make their selection order-independent instead (e.g. the strict
// block-id tie-breaks in Ftl::PickGcVictim).
template <typename Map>
std::vector<typename Map::key_type> SortedKeys(const Map& map) {
  std::vector<typename Map::key_type> keys;
  keys.reserve(map.size());
  // soslint:allow(R1) key harvest only; the keys are sorted before return
  for (const auto& entry : map) {
    keys.push_back(entry.first);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

// Sorted copy of a set-like container's elements.
template <typename Set>
std::vector<typename Set::key_type> SortedElements(const Set& set) {
  std::vector<typename Set::key_type> elems;
  elems.reserve(set.size());
  // soslint:allow(R1) element harvest only; sorted before return
  for (const auto& elem : set) {
    elems.push_back(elem);
  }
  std::sort(elems.begin(), elems.end());
  return elems;
}

}  // namespace sos

#endif  // SOS_SRC_COMMON_CONTAINER_UTIL_H_
