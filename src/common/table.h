// Copyright (c) 2026 The SOS Authors. MIT License.
//
// ASCII table rendering for benchmark reports.
//
// Every bench binary reproduces a paper figure/claim as a printed table with
// the same rows the paper reports. TextTable right-aligns numeric-looking
// cells and pads columns, giving uniform, diffable output across benches.

#ifndef SOS_SRC_COMMON_TABLE_H_
#define SOS_SRC_COMMON_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace sos {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  // Append a data row; must match the header arity.
  void AddRow(std::vector<std::string> row);

  // Renders with a header separator line:
  //   col_a  | col_b
  //   -------+------
  //   1      | 2
  std::string Render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// printf-style float formatting helpers used when building table rows.
std::string FormatDouble(double v, int precision = 2);
std::string FormatPercent(double fraction, int precision = 1);  // 0.5 -> "50.0%"
std::string FormatCount(uint64_t v);                            // 1234567 -> "1,234,567"
std::string FormatBytes(uint64_t bytes);                        // auto KiB/MiB/GiB suffix

}  // namespace sos

#endif  // SOS_SRC_COMMON_TABLE_H_
