// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Size and time unit helpers shared by every SOS library.
//
// The simulator deals in three unit families:
//   - storage sizes (bytes, with KiB/MiB/GiB binary multiples and TB/GB/EB
//     decimal multiples used by the carbon model, which follows vendor
//     marketing units),
//   - simulated time (microseconds for device latencies, days for retention),
//   - carbon mass (grams of CO2-equivalent).
//
// All helpers are constexpr so geometry and model constants can be computed
// at compile time.

#ifndef SOS_SRC_COMMON_UNITS_H_
#define SOS_SRC_COMMON_UNITS_H_

#include <cstdint>

namespace sos {

// ---------------------------------------------------------------------------
// Storage sizes.
// ---------------------------------------------------------------------------

inline constexpr uint64_t kKiB = 1024ull;
inline constexpr uint64_t kMiB = 1024ull * kKiB;
inline constexpr uint64_t kGiB = 1024ull * kMiB;
inline constexpr uint64_t kTiB = 1024ull * kGiB;

// Decimal units, used for market-level figures (vendors sell decimal bytes).
inline constexpr uint64_t kKB = 1000ull;
inline constexpr uint64_t kMB = 1000ull * kKB;
inline constexpr uint64_t kGB = 1000ull * kMB;
inline constexpr uint64_t kTB = 1000ull * kGB;
inline constexpr uint64_t kPB = 1000ull * kTB;
inline constexpr uint64_t kEB = 1000ull * kPB;

constexpr double BytesToGiB(uint64_t bytes) { return static_cast<double>(bytes) / static_cast<double>(kGiB); }
constexpr double BytesToGB(uint64_t bytes) { return static_cast<double>(bytes) / static_cast<double>(kGB); }
constexpr double BytesToMiB(uint64_t bytes) { return static_cast<double>(bytes) / static_cast<double>(kMiB); }

// ---------------------------------------------------------------------------
// Simulated time.
//
// Device-level latencies are tracked in microseconds; retention phenomena are
// tracked in days. SimTime is a plain integer microsecond count so that the
// simulation stays exactly reproducible (no floating-point clock drift).
// ---------------------------------------------------------------------------

using SimTimeUs = uint64_t;

inline constexpr SimTimeUs kUsPerMs = 1000ull;
inline constexpr SimTimeUs kUsPerSecond = 1000ull * kUsPerMs;
inline constexpr SimTimeUs kUsPerMinute = 60ull * kUsPerSecond;
inline constexpr SimTimeUs kUsPerHour = 60ull * kUsPerMinute;
inline constexpr SimTimeUs kUsPerDay = 24ull * kUsPerHour;
inline constexpr SimTimeUs kUsPerYear = 365ull * kUsPerDay;

constexpr double UsToDays(SimTimeUs us) { return static_cast<double>(us) / static_cast<double>(kUsPerDay); }
constexpr double UsToYears(SimTimeUs us) { return static_cast<double>(us) / static_cast<double>(kUsPerYear); }
constexpr SimTimeUs DaysToUs(double days) {
  return static_cast<SimTimeUs>(days * static_cast<double>(kUsPerDay));
}
constexpr SimTimeUs YearsToUs(double years) {
  return static_cast<SimTimeUs>(years * static_cast<double>(kUsPerYear));
}

// ---------------------------------------------------------------------------
// Carbon mass. Grams CO2-equivalent as double; the carbon model works at
// planet scale (megatonnes) and device scale (kilograms) so double is the
// right representation.
// ---------------------------------------------------------------------------

inline constexpr double kGramsPerKg = 1e3;
inline constexpr double kGramsPerTonne = 1e6;
inline constexpr double kGramsPerMegatonne = 1e12;

constexpr double KgToGrams(double kg) { return kg * kGramsPerKg; }
constexpr double GramsToKg(double g) { return g / kGramsPerKg; }
constexpr double GramsToTonnes(double g) { return g / kGramsPerTonne; }
constexpr double GramsToMegatonnes(double g) { return g / kGramsPerMegatonne; }

}  // namespace sos

#endif  // SOS_SRC_COMMON_UNITS_H_
