// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Streaming and batch statistics used by benchmarks and monitors.
//
// RunningStats -- Welford-style online mean/variance/min/max, O(1) memory.
// Percentiles  -- batch percentile computation over a retained sample vector.
// Histogram    -- fixed-width bucket histogram with ASCII rendering, used by
//                 benches to show latency and wear distributions.

#ifndef SOS_SRC_COMMON_STATS_H_
#define SOS_SRC_COMMON_STATS_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace sos {

// Online mean/variance accumulator (Welford's algorithm); numerically stable
// for long simulations.
class RunningStats {
 public:
  void Add(double x);

  uint64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Retains all samples; answers arbitrary percentile queries with linear
// interpolation between order statistics.
class Percentiles {
 public:
  void Add(double x) { samples_.push_back(x); }
  void Reserve(size_t n) { samples_.reserve(n); }

  // p in [0, 100]. Returns 0 when empty. Sorts lazily on first query.
  double Get(double p);

  size_t count() const { return samples_.size(); }

 private:
  std::vector<double> samples_;
  bool sorted_ = false;
};

// Fixed-range, fixed-width bucket histogram. Values outside [lo, hi) land in
// clamped edge buckets so no sample is dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t buckets);

  void Add(double x);

  uint64_t total() const { return total_; }
  const std::vector<uint64_t>& buckets() const { return counts_; }

  // Lower edge of bucket i.
  double BucketLow(size_t i) const;

  // Multi-line ASCII rendering ("[lo, hi) ####### count"), used in bench
  // reports.
  std::string Render(size_t max_width = 50) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
};

}  // namespace sos

#endif  // SOS_SRC_COMMON_STATS_H_
