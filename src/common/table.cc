// Copyright (c) 2026 The SOS Authors. MIT License.

#include "src/common/table.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

#include "src/common/units.h"

namespace sos {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> row) {
  assert(row.size() == header_.size() && "row arity must match header");
  rows_.push_back(std::move(row));
}

namespace {

bool LooksNumeric(const std::string& s) {
  if (s.empty()) {
    return false;
  }
  for (char c : s) {
    if ((c < '0' || c > '9') && c != '.' && c != '-' && c != '+' && c != '%' && c != ',' &&
        c != 'e' && c != 'x') {
      return false;
    }
  }
  return true;
}

}  // namespace

std::string TextTable::Render() const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row, bool align_numeric) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) {
        line += " | ";
      }
      const size_t pad = widths[c] - row[c].size();
      const bool right = align_numeric && LooksNumeric(row[c]);
      if (right) {
        line.append(pad, ' ');
      }
      line += row[c];
      if (!right) {
        line.append(pad, ' ');
      }
    }
    line += '\n';
    return line;
  };

  std::string out = render_row(header_, /*align_numeric=*/false);
  for (size_t c = 0; c < header_.size(); ++c) {
    if (c > 0) {
      out += "-+-";
    }
    out.append(widths[c], '-');
  }
  out += '\n';
  for (const auto& row : rows_) {
    out += render_row(row, /*align_numeric=*/true);
  }
  return out;
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string FormatPercent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string FormatCount(uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  const size_t n = digits.size();
  for (size_t i = 0; i < n; ++i) {
    if (i > 0 && (n - i) % 3 == 0) {
      out += ',';
    }
    out += digits[i];
  }
  return out;
}

std::string FormatBytes(uint64_t bytes) {
  char buf[64];
  if (bytes >= kTiB) {
    std::snprintf(buf, sizeof(buf), "%.2f TiB", static_cast<double>(bytes) / static_cast<double>(kTiB));
  } else if (bytes >= kGiB) {
    std::snprintf(buf, sizeof(buf), "%.2f GiB", static_cast<double>(bytes) / static_cast<double>(kGiB));
  } else if (bytes >= kMiB) {
    std::snprintf(buf, sizeof(buf), "%.2f MiB", static_cast<double>(bytes) / static_cast<double>(kMiB));
  } else if (bytes >= kKiB) {
    std::snprintf(buf, sizeof(buf), "%.2f KiB", static_cast<double>(bytes) / static_cast<double>(kKiB));
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B", static_cast<unsigned long long>(bytes));
  }
  return buf;
}

}  // namespace sos
