// Copyright (c) 2026 The SOS Authors. MIT License.
//
// A small fixed-size thread pool for embarrassingly parallel sweeps.
//
// The simulator itself is single-threaded by design (see DESIGN.md
// "Concurrency model"): determinism is a hard requirement, and the cheapest
// way to keep it is to never share mutable state between threads. The pool
// exists for the one place coarse parallelism is free: running *independent*
// share-nothing jobs -- one full simulation, one FTL churn run -- side by
// side and collecting their results in a deterministic order.
//
// ThreadPool   -- fixed worker count, futures-based Submit, FIFO queue.
//                 No work stealing, no priorities: sweep jobs are long and
//                 coarse, so a single locked queue is never the bottleneck.
// ParallelFor  -- blocking index-space loop over [begin, end); rethrows the
//                 first job exception on the calling thread.
// ParallelMap  -- out[i] = fn(i): results land in index order regardless of
//                 completion order, which is what keeps sweep output
//                 byte-identical for any --jobs value.

#ifndef SOS_SRC_COMMON_THREAD_POOL_H_
#define SOS_SRC_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace sos {

class ThreadPool {
 public:
  // num_threads == 0 picks the hardware concurrency (at least 1).
  explicit ThreadPool(size_t num_threads = 0);

  // Drains nothing: pending jobs still run, then workers join.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return workers_.size(); }

  // Stops accepting new work, runs every job already queued, and joins the
  // workers. Idempotent; the destructor calls it. After Shutdown the pool is
  // permanently stopped -- a later Submit fails (see below) instead of
  // enqueueing work no worker will ever run.
  void Shutdown();

  // Enqueues a callable; the returned future yields its result or rethrows
  // the exception it threw. Submitting to a stopped pool does not enqueue:
  // the returned future reports std::future_error (broken_promise) from
  // get() -- an error, never a deadlock (the shutdown-ordering contract
  // tests/thread_pool_test.cc pins down).
  template <typename F>
  auto Submit(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_) {
        // Dropping `task` here abandons its shared state: the caller's
        // future throws broken_promise instead of blocking forever on a
        // job that will never run.
        return future;
      }
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  // max(1, hardware_concurrency) -- the default worker count.
  static size_t DefaultThreads();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  // Guarded by mu_ (with cv_ for hand-off) -- the synchronization soslint R8
  // expects around any queue shared with pool lambdas.
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;  // guarded by mu_; sticky once set
};

// Runs fn(i) for every i in [begin, end) on the pool and blocks until all
// complete. If any job throws, the first exception (in index order) is
// rethrown on the calling thread after the loop drains. Empty ranges return
// immediately without touching the pool.
void ParallelFor(ThreadPool& pool, size_t begin, size_t end,
                 const std::function<void(size_t)>& fn);

// Deterministic parallel map: returns {fn(0), ..., fn(n-1)} with each slot at
// its index regardless of which worker finished first. T must be default-
// constructible and movable.
template <typename Fn>
auto ParallelMap(ThreadPool& pool, size_t n, Fn&& fn)
    -> std::vector<std::invoke_result_t<std::decay_t<Fn>, size_t>> {
  using T = std::invoke_result_t<std::decay_t<Fn>, size_t>;
  std::vector<T> out(n);
  ParallelFor(pool, 0, n, [&out, &fn](size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace sos

#endif  // SOS_SRC_COMMON_THREAD_POOL_H_
