// Copyright (c) 2026 The SOS Authors. MIT License.

#include "src/common/thread_pool.h"

#include <algorithm>

namespace sos {

size_t ThreadPool::DefaultThreads() {
  return std::max<size_t>(1, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = num_threads == 0 ? DefaultThreads() : num_threads;
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_ && workers_.empty()) {
      return;  // already shut down
    }
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
  workers_.clear();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stop_ with a drained queue
      }
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();  // packaged_task captures any exception into its future
  }
}

void ParallelFor(ThreadPool& pool, size_t begin, size_t end,
                 const std::function<void(size_t)>& fn) {
  if (begin >= end) {
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(end - begin);
  for (size_t i = begin; i < end; ++i) {
    futures.push_back(pool.Submit([&fn, i] { fn(i); }));
  }
  // Drain everything before rethrowing so no job is left touching caller
  // state; report the lowest-index failure for deterministic error output.
  std::exception_ptr first_error;
  for (std::future<void>& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) {
        first_error = std::current_exception();
      }
    }
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

}  // namespace sos
