// Copyright (c) 2026 The SOS Authors. MIT License.
//
// XOR block parity (RAID-5 style) and CRC32 integrity checking.
//
// The SYS partition stores data "conservatively with additional redundancy
// (e.g., parity)" (paper §4.2). ParityGroup implements the concrete scheme:
// one XOR parity page protects a stripe of N data pages, so any single lost
// page (an uncorrectable ECC failure) can be rebuilt from the survivors.
// Crc32 provides the end-to-end integrity check the host uses to notice
// silent corruption on the approximate partition.

#ifndef SOS_SRC_ECC_PARITY_H_
#define SOS_SRC_ECC_PARITY_H_

#include <cstdint>
#include <span>
#include <vector>

namespace sos {

// Computes the XOR parity page over a stripe of equal-size pages.
std::vector<uint8_t> ComputeParityPage(std::span<const std::vector<uint8_t>> stripe);

// Rebuilds the page at `lost_index` from the surviving stripe members and the
// parity page. `stripe[lost_index]` is ignored. All pages must share a size.
std::vector<uint8_t> ReconstructFromParity(std::span<const std::vector<uint8_t>> stripe,
                                           std::span<const uint8_t> parity, size_t lost_index);

// Standard CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320).
uint32_t Crc32(std::span<const uint8_t> data);

}  // namespace sos

#endif  // SOS_SRC_ECC_PARITY_H_
