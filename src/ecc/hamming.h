// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Hamming(72,64) SEC-DED codec.
//
// A bit-exact single-error-correct / double-error-detect code over 64-bit
// words, the classic scheme used for NAND spare-area protection in
// SLC-generation controllers. Included as the repo's real (non-modeled)
// codec: property tests flip bits and verify correction guarantees, and the
// quickstart example uses it to show what "weak protection" means concretely.
//
// Layout: 64 data bits + 8 check bits packed as: check[0..6] are Hamming
// parity bits over the expanded 71-bit positions, check[7] is overall parity
// (the DED bit).

#ifndef SOS_SRC_ECC_HAMMING_H_
#define SOS_SRC_ECC_HAMMING_H_

#include <cstdint>

namespace sos {

struct HammingCodeword {
  uint64_t data = 0;
  uint8_t check = 0;
};

enum class HammingResult {
  kClean,         // no error detected
  kCorrected,     // single bit error corrected
  kDetectedOnly,  // double error detected, not correctable
};

// Encodes a 64-bit word into a codeword with 8 check bits.
HammingCodeword HammingEncode(uint64_t data);

// Decodes in place: fixes a single flipped bit anywhere in the codeword
// (data or check), detects double flips.
HammingResult HammingDecode(HammingCodeword& cw);

}  // namespace sos

#endif  // SOS_SRC_ECC_HAMMING_H_
