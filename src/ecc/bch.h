// Copyright (c) 2026 The SOS Authors. MIT License.
//
// A real binary BCH codec.
//
// The EccScheme capability model answers "would a t-error-correcting code
// decode this page?" analytically; this module is the bit-exact counterpart
// for the sizes where running a genuine decoder is cheap: a binary BCH code
// over GF(2^m) with configurable correction capability t.
//
//   - Encoding: systematic, data bits followed by parity bits computed as
//     the remainder of x^(n-k) * d(x) modulo the generator polynomial.
//   - Decoding: syndrome computation, Berlekamp-Massey to find the error
//     locator polynomial, Chien search to find error positions, and bit
//     flips to correct. Up to t errors are corrected; heavier corruption is
//     detected with overwhelming probability.
//
// SOS uses this codec in tests and in the quickstart-adjacent tooling; the
// page-granularity simulation path keeps the fast capability model (both are
// validated against each other in tests/bch_test.cc).

#ifndef SOS_SRC_ECC_BCH_H_
#define SOS_SRC_ECC_BCH_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"

namespace sos {

// Binary BCH code over GF(2^m), codeword length n = 2^m - 1 bits, correcting
// up to t bit errors. k (data bits) is determined by the generator
// polynomial degree: k = n - deg(g).
class BchCode {
 public:
  // Constructs the code; m in [4, 14], t >= 1 and small enough that k > 0.
  BchCode(int m, int t);

  int n() const { return n_; }          // codeword length in bits
  int k() const { return k_; }          // data bits per codeword
  int t() const { return t_; }          // designed correction capability
  int parity_bits() const { return n_ - k_; }

  // Encodes k data bits (LSB-first bit vector) into an n-bit codeword.
  // data.size() must equal k().
  std::vector<uint8_t> Encode(const std::vector<uint8_t>& data_bits) const;

  struct DecodeResult {
    bool ok = false;                 // decoded within capability
    int errors_corrected = 0;
    std::vector<uint8_t> data_bits;  // k bits, valid iff ok
  };

  // Decodes an n-bit (possibly corrupted) codeword.
  DecodeResult Decode(const std::vector<uint8_t>& codeword_bits) const;

 private:
  // GF(2^m) arithmetic via log/antilog tables.
  int GfMul(int a, int b) const;
  int GfInv(int a) const;
  int GfPow(int base, int exp) const;

  void BuildField();
  void BuildGenerator();

  int m_;
  int t_;
  int n_;
  int k_;
  std::vector<int> alpha_to_;  // antilog table
  std::vector<int> index_of_;  // log table
  std::vector<uint8_t> generator_;  // generator polynomial coefficients (GF(2))
};

}  // namespace sos

#endif  // SOS_SRC_ECC_BCH_H_
