// Copyright (c) 2026 The SOS Authors. MIT License.

#include "src/ecc/parity.h"

#include <array>
#include <cassert>

namespace sos {

std::vector<uint8_t> ComputeParityPage(std::span<const std::vector<uint8_t>> stripe) {
  assert(!stripe.empty());
  std::vector<uint8_t> parity(stripe.front().size(), 0);
  for (const auto& page : stripe) {
    assert(page.size() == parity.size() && "stripe pages must share a size");
    for (size_t i = 0; i < parity.size(); ++i) {
      parity[i] = static_cast<uint8_t>(parity[i] ^ page[i]);
    }
  }
  return parity;
}

std::vector<uint8_t> ReconstructFromParity(std::span<const std::vector<uint8_t>> stripe,
                                           std::span<const uint8_t> parity, size_t lost_index) {
  assert(lost_index < stripe.size());
  std::vector<uint8_t> rebuilt(parity.begin(), parity.end());
  for (size_t p = 0; p < stripe.size(); ++p) {
    if (p == lost_index) {
      continue;
    }
    assert(stripe[p].size() == rebuilt.size() && "stripe pages must share a size");
    for (size_t i = 0; i < rebuilt.size(); ++i) {
      rebuilt[i] = static_cast<uint8_t>(rebuilt[i] ^ stripe[p][i]);
    }
  }
  return rebuilt;
}

namespace {

constexpr std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kCrcTable = BuildCrcTable();

}  // namespace

uint32_t Crc32(std::span<const uint8_t> data) {
  uint32_t crc = 0xFFFFFFFFu;
  for (uint8_t byte : data) {
    crc = kCrcTable[(crc ^ byte) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace sos
