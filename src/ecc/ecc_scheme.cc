// Copyright (c) 2026 The SOS Authors. MIT License.

#include "src/ecc/ecc_scheme.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/common/rng.h"

namespace sos {

std::string_view EccPresetName(EccPreset preset) {
  switch (preset) {
    case EccPreset::kNone:
      return "none";
    case EccPreset::kWeakBch:
      return "weak-BCH(t=8)";
    case EccPreset::kBch:
      return "BCH(t=40)";
    case EccPreset::kLdpc:
      return "LDPC(t=72)";
  }
  return "???";
}

EccScheme EccScheme::FromPreset(EccPreset preset) {
  switch (preset) {
    case EccPreset::kNone:
      return EccScheme{preset, kKiB, 0, 0.0};
    case EccPreset::kWeakBch:
      return EccScheme{preset, kKiB, 8, 0.02};
    case EccPreset::kBch:
      return EccScheme{preset, kKiB, 40, 0.08};
    case EccPreset::kLdpc:
      return EccScheme{preset, kKiB, 72, 0.12};
  }
  return EccScheme{};
}

uint32_t EccScheme::CodewordsPerPage(uint32_t page_bytes) const {
  return (page_bytes + codeword_bytes - 1) / codeword_bytes;
}

namespace {

// std::lgamma writes the process-global `signgam`, which is a data race when
// experiment jobs construct ECC schemes on pool workers. All arguments here
// are >= 1, where the gamma function is positive, so the sign output of the
// reentrant lgamma_r can be discarded.
double LogGamma(double x) {
  int sign = 0;
  return lgamma_r(x, &sign);
}

// log(n choose k) via lgamma; exact enough for tail sums.
double LogChoose(double n, double k) {
  return LogGamma(n + 1.0) - LogGamma(k + 1.0) - LogGamma(n - k + 1.0);
}

}  // namespace

double EccScheme::CodewordFailureProb(double rber) const {
  if (rber <= 0.0) {
    return 0.0;
  }
  rber = std::min(rber, 0.5);
  const double n = static_cast<double>(codeword_bytes) * 8.0;
  const double t = static_cast<double>(correctable_bits);
  // P(X > t) with X ~ Binomial(n, rber). Sum the head in log space when the
  // head is small; otherwise use the complement of the tail.
  const double mean = n * rber;
  if (mean > t + 8.0 * std::sqrt(mean)) {
    return 1.0;  // failure essentially certain
  }
  double head = 0.0;
  const double log_p = std::log(rber);
  const double log_q = std::log1p(-rber);
  for (uint32_t k = 0; k <= correctable_bits; ++k) {
    const double log_term =
        LogChoose(n, static_cast<double>(k)) + static_cast<double>(k) * log_p +
        (n - static_cast<double>(k)) * log_q;
    head += std::exp(log_term);
  }
  return std::clamp(1.0 - head, 0.0, 1.0);
}

double EccScheme::PageFailureProb(double rber, uint32_t page_bytes) const {
  const double per_cw = CodewordFailureProb(rber);
  const double ok = std::pow(1.0 - per_cw, static_cast<double>(CodewordsPerPage(page_bytes)));
  return std::clamp(1.0 - ok, 0.0, 1.0);
}

double EccScheme::Uber(double rber) const {
  if (correctable_bits == 0) {
    return rber;  // no ECC: every raw error is a user-visible error
  }
  // When a codeword fails, its raw errors leak; expected leaked bits per data
  // bit is rber conditioned on failure, approximated by rber itself (the
  // conditional raw count is close to the mean for the regimes we model).
  return CodewordFailureProb(rber) * rber;
}

double EccScheme::MaxCorrectableRber(uint32_t page_bytes, double target) const {
  if (correctable_bits == 0) {
    return 0.0;
  }
  double lo = 0.0;
  double hi = 0.5;
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (PageFailureProb(mid, page_bytes) > target) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return lo;
}

DecodeOutcome DecodePage(const EccScheme& scheme, uint32_t page_bytes, uint64_t raw_errors,
                         uint64_t stream_seed) {
  DecodeOutcome outcome;
  if (scheme.correctable_bits == 0) {
    outcome.corrected = (raw_errors == 0);
    outcome.residual_errors = raw_errors;
    outcome.failed_codewords = raw_errors > 0 ? scheme.CodewordsPerPage(page_bytes) : 0;
    return outcome;
  }
  const uint32_t codewords = scheme.CodewordsPerPage(page_bytes);
  if (raw_errors == 0 || codewords == 0) {
    outcome.corrected = true;
    return outcome;
  }
  // Scatter the raw errors uniformly over codewords (multinomial by repeated
  // uniform draws; raw_errors is small in every regime we simulate).
  std::vector<uint64_t> per_cw(codewords, 0);
  Rng rng(DeriveSeed({stream_seed, 0x6465636f64650aull /* "decode" */}));
  for (uint64_t e = 0; e < raw_errors; ++e) {
    ++per_cw[rng.NextBounded(codewords)];
  }
  outcome.corrected = true;
  for (uint64_t errors : per_cw) {
    if (errors > scheme.correctable_bits) {
      outcome.corrected = false;
      outcome.residual_errors += errors;
      ++outcome.failed_codewords;
    }
  }
  return outcome;
}

}  // namespace sos
