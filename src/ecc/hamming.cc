// Copyright (c) 2026 The SOS Authors. MIT License.

#include "src/ecc/hamming.h"

#include <array>
#include <cstddef>

namespace sos {
namespace {

// Expanded codeword positions run 1..71: positions 1,2,4,8,16,32,64 hold the
// seven Hamming parity bits, every other position holds a data bit in order.
// kDataPos[i] is the expanded position of data bit i.
constexpr std::array<uint8_t, 64> BuildDataPositions() {
  std::array<uint8_t, 64> pos{};
  int idx = 0;
  for (int p = 1; p <= 71 && idx < 64; ++p) {
    if ((p & (p - 1)) != 0) {  // not a power of two -> data position
      pos[static_cast<size_t>(idx++)] = static_cast<uint8_t>(p);
    }
  }
  return pos;
}

constexpr std::array<uint8_t, 64> kDataPos = BuildDataPositions();

// Computes the 7-bit Hamming syndrome/parity over the expanded positions for
// the given data word with parity bits zeroed (used for encode) or taken
// from `check` (used for decode).
uint8_t ComputeParity(uint64_t data, uint8_t check_bits) {
  uint8_t parity = 0;
  for (int i = 0; i < 64; ++i) {
    if ((data >> i) & 1u) {
      parity = static_cast<uint8_t>(parity ^ kDataPos[static_cast<size_t>(i)]);
    }
  }
  // Parity bits occupy positions 1,2,4,...,64; bit j of `check_bits` sits at
  // expanded position 2^j and contributes that position to the syndrome.
  for (int j = 0; j < 7; ++j) {
    if ((check_bits >> j) & 1u) {
      parity = static_cast<uint8_t>(parity ^ (1u << j));
    }
  }
  return parity;
}

// Overall parity across all 71 expanded bits plus the DED bit.
uint8_t OverallParity(uint64_t data, uint8_t check) {
  uint64_t x = data;
  x ^= x >> 32;
  x ^= x >> 16;
  x ^= x >> 8;
  x ^= x >> 4;
  x ^= x >> 2;
  x ^= x >> 1;
  uint8_t p = static_cast<uint8_t>(x & 1u);
  uint8_t c = check;
  c = static_cast<uint8_t>(c ^ (c >> 4));
  c = static_cast<uint8_t>(c ^ (c >> 2));
  c = static_cast<uint8_t>(c ^ (c >> 1));
  return static_cast<uint8_t>(p ^ (c & 1u));
}

}  // namespace

HammingCodeword HammingEncode(uint64_t data) {
  HammingCodeword cw;
  cw.data = data;
  // With parity bits zero, ComputeParity yields exactly the parity values
  // that make the full syndrome zero.
  const uint8_t hamming = ComputeParity(data, 0);
  cw.check = hamming;
  // DED bit (check bit 7): even parity over everything else.
  const uint8_t overall = OverallParity(data, hamming);
  cw.check = static_cast<uint8_t>(hamming | (overall << 7));
  return cw;
}

HammingResult HammingDecode(HammingCodeword& cw) {
  const uint8_t hamming_bits = static_cast<uint8_t>(cw.check & 0x7f);
  const uint8_t ded_bit = static_cast<uint8_t>((cw.check >> 7) & 1u);
  const uint8_t syndrome = ComputeParity(cw.data, hamming_bits);
  const uint8_t overall = static_cast<uint8_t>(OverallParity(cw.data, hamming_bits) ^ ded_bit);

  if (syndrome == 0 && overall == 0) {
    return HammingResult::kClean;
  }
  if (syndrome == 0 && overall == 1) {
    // The DED bit itself flipped.
    cw.check = static_cast<uint8_t>(cw.check ^ 0x80);
    return HammingResult::kCorrected;
  }
  if (overall == 0) {
    // Non-zero syndrome with even overall parity: two bits flipped.
    return HammingResult::kDetectedOnly;
  }
  // Single error at expanded position `syndrome`.
  if ((syndrome & (syndrome - 1)) == 0) {
    // Power of two: one of the Hamming parity bits flipped.
    for (int j = 0; j < 7; ++j) {
      if (syndrome == (1u << j)) {
        cw.check = static_cast<uint8_t>(cw.check ^ (1u << j));
        break;
      }
    }
    return HammingResult::kCorrected;
  }
  // Data bit: find which data index maps to this position.
  for (int i = 0; i < 64; ++i) {
    if (kDataPos[static_cast<size_t>(i)] == syndrome) {
      cw.data ^= (1ull << i);
      return HammingResult::kCorrected;
    }
  }
  // Syndrome points outside the codeword (>71): treat as detected-only.
  return HammingResult::kDetectedOnly;
}

}  // namespace sos
