// Copyright (c) 2026 The SOS Authors. MIT License.

#include "src/ecc/bch.h"

#include <algorithm>
#include <array>
#include <cassert>

namespace sos {
namespace {

// Primitive polynomials for GF(2^m), m = 4..14 (standard tables; the value
// is the polynomial with the x^m term omitted, e.g. m=4: x^4 + x + 1 -> 0b0011).
constexpr std::array<int, 15> kPrimitivePoly = {
    0, 0, 0, 0,
    0b0011,        // m=4:  x^4+x+1
    0b00101,       // m=5:  x^5+x^2+1
    0b000011,      // m=6:  x^6+x+1
    0b0001001,     // m=7:  x^7+x^3+1
    0b00011101,    // m=8:  x^8+x^4+x^3+x^2+1
    0b000010001,   // m=9:  x^9+x^4+1
    0b0000001001,  // m=10: x^10+x^3+1
    0b00000000101, // m=11: x^11+x^2+1
    0b000001010011,// m=12: x^12+x^6+x^4+x+1
    0b0000000011011,// m=13: x^13+x^4+x^3+x+1
    0b00000000101011,// m=14: x^14+x^5+x^3+x+1
};

}  // namespace

BchCode::BchCode(int m, int t) : m_(m), t_(t) {
  assert(m >= 4 && m <= 14);
  assert(t >= 1);
  n_ = (1 << m_) - 1;
  BuildField();
  BuildGenerator();
  k_ = n_ - static_cast<int>(generator_.size()) + 1;
  assert(k_ > 0 && "t too large for this field");
}

void BchCode::BuildField() {
  alpha_to_.assign(static_cast<size_t>(n_) + 1, 0);
  index_of_.assign(static_cast<size_t>(n_) + 1, -1);
  int mask = 1;
  for (int i = 0; i < m_; ++i) {
    alpha_to_[static_cast<size_t>(i)] = mask;
    index_of_[static_cast<size_t>(mask)] = i;
    mask <<= 1;
  }
  // alpha^m = primitive polynomial tail.
  alpha_to_[static_cast<size_t>(m_)] = kPrimitivePoly[static_cast<size_t>(m_)] | 0;
  // Fill the rest: alpha^(i) = alpha^(i-1) * alpha.
  const int poly = kPrimitivePoly[static_cast<size_t>(m_)];
  mask = alpha_to_[static_cast<size_t>(m_ - 1)];
  for (int i = m_; i < n_; ++i) {
    const int prev = alpha_to_[static_cast<size_t>(i - 1)];
    int next = prev << 1;
    if (next & (1 << m_)) {
      next = (next ^ (1 << m_)) ^ poly;
    }
    alpha_to_[static_cast<size_t>(i)] = next;
    index_of_[static_cast<size_t>(next)] = i;
  }
  (void)mask;
  index_of_[0] = -1;
}

int BchCode::GfMul(int a, int b) const {
  if (a == 0 || b == 0) {
    return 0;
  }
  const int log_sum = (index_of_[static_cast<size_t>(a)] + index_of_[static_cast<size_t>(b)]) % n_;
  return alpha_to_[static_cast<size_t>(log_sum)];
}

int BchCode::GfInv(int a) const {
  assert(a != 0);
  const int log_a = index_of_[static_cast<size_t>(a)];
  return alpha_to_[static_cast<size_t>((n_ - log_a) % n_)];
}

int BchCode::GfPow(int base, int exp) const {
  if (base == 0) {
    return exp == 0 ? 1 : 0;
  }
  const int log_b = index_of_[static_cast<size_t>(base)];
  const int log_r = static_cast<int>((static_cast<int64_t>(log_b) * exp) % n_);
  return alpha_to_[static_cast<size_t>((log_r + n_) % n_)];
}

void BchCode::BuildGenerator() {
  // g(x) = lcm of minimal polynomials of alpha^1 .. alpha^(2t).
  // Work over GF(2): find the cyclotomic cosets, then multiply the minimal
  // polynomials together.
  std::vector<bool> used(static_cast<size_t>(n_) + 1, false);
  std::vector<uint8_t> g = {1};  // polynomial "1"

  auto poly_mul_gf2 = [](const std::vector<uint8_t>& a, const std::vector<uint8_t>& b) {
    std::vector<uint8_t> out(a.size() + b.size() - 1, 0);
    for (size_t i = 0; i < a.size(); ++i) {
      if (!a[i]) {
        continue;
      }
      for (size_t j = 0; j < b.size(); ++j) {
        out[i + j] = static_cast<uint8_t>(out[i + j] ^ (a[i] & b[j]));
      }
    }
    return out;
  };

  for (int power = 1; power <= 2 * t_; ++power) {
    if (used[static_cast<size_t>(power)]) {
      continue;
    }
    // Cyclotomic coset of `power`: {power, 2p, 4p, ...} mod n.
    std::vector<int> coset;
    int cur = power;
    do {
      coset.push_back(cur);
      used[static_cast<size_t>(cur)] = true;
      cur = (cur * 2) % n_;
    } while (cur != power);

    // Minimal polynomial = prod (x - alpha^c) over the coset, computed in
    // GF(2^m) then reduced to GF(2) coefficients (they come out 0/1).
    std::vector<int> min_poly = {1};  // coefficients in GF(2^m), low degree first
    for (int c : coset) {
      const int root = alpha_to_[static_cast<size_t>(c)];
      std::vector<int> next(min_poly.size() + 1, 0);
      for (size_t i = 0; i < min_poly.size(); ++i) {
        next[i + 1] ^= min_poly[i];           // x * term
        next[i] ^= GfMul(min_poly[i], root);  // root * term (char 2: minus == plus)
      }
      min_poly = std::move(next);
    }
    std::vector<uint8_t> min_poly_gf2(min_poly.size());
    for (size_t i = 0; i < min_poly.size(); ++i) {
      assert(min_poly[i] == 0 || min_poly[i] == 1);
      min_poly_gf2[i] = static_cast<uint8_t>(min_poly[i]);
    }
    g = poly_mul_gf2(g, min_poly_gf2);
  }
  generator_ = std::move(g);
}

std::vector<uint8_t> BchCode::Encode(const std::vector<uint8_t>& data_bits) const {
  assert(static_cast<int>(data_bits.size()) == k_);
  const int parity = n_ - k_;
  // Systematic encoding: codeword = [parity | data]; parity = remainder of
  // x^parity * d(x) / g(x). Compute with a simple LFSR-style division.
  std::vector<uint8_t> remainder(static_cast<size_t>(parity), 0);
  for (int i = k_ - 1; i >= 0; --i) {
    const uint8_t feedback =
        static_cast<uint8_t>(data_bits[static_cast<size_t>(i)] ^ remainder[static_cast<size_t>(parity - 1)]);
    for (int j = parity - 1; j > 0; --j) {
      remainder[static_cast<size_t>(j)] = static_cast<uint8_t>(
          remainder[static_cast<size_t>(j - 1)] ^
          (feedback & generator_[static_cast<size_t>(j)]));
    }
    remainder[0] = static_cast<uint8_t>(feedback & generator_[0]);
  }
  std::vector<uint8_t> codeword(static_cast<size_t>(n_), 0);
  for (int i = 0; i < parity; ++i) {
    codeword[static_cast<size_t>(i)] = remainder[static_cast<size_t>(i)];
  }
  for (int i = 0; i < k_; ++i) {
    codeword[static_cast<size_t>(parity + i)] = data_bits[static_cast<size_t>(i)];
  }
  return codeword;
}

BchCode::DecodeResult BchCode::Decode(const std::vector<uint8_t>& codeword_bits) const {
  assert(static_cast<int>(codeword_bits.size()) == n_);
  DecodeResult result;

  // Syndromes S_1 .. S_2t: S_j = r(alpha^j).
  std::vector<int> syndrome(static_cast<size_t>(2 * t_ + 1), 0);
  bool all_zero = true;
  for (int j = 1; j <= 2 * t_; ++j) {
    int s = 0;
    for (int i = 0; i < n_; ++i) {
      if (codeword_bits[static_cast<size_t>(i)]) {
        s ^= GfPow(alpha_to_[1], i * j % n_);
      }
    }
    syndrome[static_cast<size_t>(j)] = s;
    all_zero = all_zero && s == 0;
  }

  auto extract_data = [&](const std::vector<uint8_t>& bits) {
    return std::vector<uint8_t>(bits.begin() + (n_ - k_), bits.end());
  };

  if (all_zero) {
    result.ok = true;
    result.data_bits = extract_data(codeword_bits);
    return result;
  }

  // Berlekamp-Massey: find the error locator polynomial sigma(x).
  std::vector<int> sigma = {1};
  std::vector<int> prev_sigma = {1};
  int l = 0;          // current LFSR length
  int prev_discrep = 1;
  int shift = 1;
  for (int step = 1; step <= 2 * t_; ++step) {
    // Discrepancy.
    int d = syndrome[static_cast<size_t>(step)];
    for (int i = 1; i <= l && i < static_cast<int>(sigma.size()); ++i) {
      d ^= GfMul(sigma[static_cast<size_t>(i)], syndrome[static_cast<size_t>(step - i)]);
    }
    if (d == 0) {
      ++shift;
      continue;
    }
    // sigma' = sigma - (d/prev_d) * x^shift * prev_sigma
    std::vector<int> new_sigma = sigma;
    const int coef = GfMul(d, GfInv(prev_discrep));
    if (static_cast<int>(new_sigma.size()) < static_cast<int>(prev_sigma.size()) + shift) {
      new_sigma.resize(prev_sigma.size() + static_cast<size_t>(shift), 0);
    }
    for (size_t i = 0; i < prev_sigma.size(); ++i) {
      new_sigma[i + static_cast<size_t>(shift)] ^= GfMul(coef, prev_sigma[i]);
    }
    if (2 * l <= step - 1) {
      prev_sigma = sigma;
      prev_discrep = d;
      l = step - l;
      shift = 1;
    } else {
      ++shift;
    }
    sigma = std::move(new_sigma);
  }

  const int degree = static_cast<int>(sigma.size()) - 1;
  if (l > t_ || degree > t_) {
    return result;  // more errors than the code can locate
  }

  // Chien search: roots of sigma give error positions. sigma(alpha^-i) == 0
  // means an error at position i.
  std::vector<int> error_positions;
  for (int i = 0; i < n_; ++i) {
    int value = 0;
    for (size_t j = 0; j < sigma.size(); ++j) {
      if (sigma[j] != 0) {
        value ^= GfMul(sigma[j], GfPow(alpha_to_[1],
                                       static_cast<int>((static_cast<int64_t>(n_ - i) *
                                                         static_cast<int64_t>(j)) %
                                                        n_)));
      }
    }
    if (value == 0) {
      error_positions.push_back(i);
    }
  }
  if (static_cast<int>(error_positions.size()) != l) {
    return result;  // locator degree and root count disagree -> uncorrectable
  }

  std::vector<uint8_t> corrected = codeword_bits;
  for (int pos : error_positions) {
    corrected[static_cast<size_t>(pos)] ^= 1;
  }
  // Verify: recompute one syndrome as a cheap consistency check.
  {
    int s1 = 0;
    for (int i = 0; i < n_; ++i) {
      if (corrected[static_cast<size_t>(i)]) {
        s1 ^= GfPow(alpha_to_[1], i % n_);
      }
    }
    if (s1 != 0) {
      return result;
    }
  }
  result.ok = true;
  result.errors_corrected = static_cast<int>(error_positions.size());
  result.data_bits = extract_data(corrected);
  return result;
}

}  // namespace sos
