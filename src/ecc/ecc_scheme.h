// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Error-correction scheme model.
//
// SOS splits the device into a SYS partition stored "conservatively with
// additional redundancy" and a SPARE partition stored "with weak protection
// (e.g., no ECC)" (paper §4.2). This module models ECC at the granularity
// real controllers use -- a page is a sequence of codewords, each correcting
// up to `t` bit errors -- and provides the analytical UBER math used by the
// retirement policies and the lifetime benchmarks.
//
// The decode path is a *capability model*: we do not run a real BCH decoder
// over megabytes of payload (that would dominate simulation time for zero
// fidelity gain); instead the sampled raw error count of a page is split
// across its codewords and each codeword succeeds iff its share is <= t.
// A real SEC-DED Hamming codec (src/ecc/hamming.h) and XOR parity
// (src/ecc/parity.h) cover the bit-exact paths where they are cheap.

#ifndef SOS_SRC_ECC_ECC_SCHEME_H_
#define SOS_SRC_ECC_ECC_SCHEME_H_

#include <cstdint>
#include <string_view>

#include "src/common/units.h"

namespace sos {

// Correction strength presets used by the SOS partitions and baselines.
enum class EccPreset {
  kNone,      // approximate storage: raw cells, errors flow to the app
  kWeakBch,   // t=8  per 1KiB codeword: early-TLC-grade protection
  kBch,       // t=40 per 1KiB codeword: standard QLC-grade BCH
  kLdpc,      // t=72 per 1KiB codeword: LDPC-class, dense-flash grade
};

std::string_view EccPresetName(EccPreset preset);

struct EccScheme {
  EccPreset preset = EccPreset::kBch;
  uint32_t codeword_bytes = kKiB;  // data bytes protected per codeword
  uint32_t correctable_bits = 40;  // t: max raw bit errors corrected
  double parity_overhead = 0.10;   // fraction of extra cells for parity

  static EccScheme FromPreset(EccPreset preset);

  // Codewords needed to protect a page of `page_bytes` (ceil division).
  uint32_t CodewordsPerPage(uint32_t page_bytes) const;

  // Probability a single codeword fails to decode at raw bit error rate
  // `rber` (binomial tail beyond `correctable_bits`).
  double CodewordFailureProb(double rber) const;

  // Probability at least one codeword of a page fails at `rber`.
  double PageFailureProb(double rber, uint32_t page_bytes) const;

  // Uncorrectable bit error rate: expected residual error bits per data bit
  // after decoding, at raw rate `rber`. When a codeword fails, all its raw
  // errors leak through.
  double Uber(double rber) const;

  // Highest RBER this scheme sustains while keeping the page failure
  // probability below `target` (bisection; monotone in rber).
  double MaxCorrectableRber(uint32_t page_bytes, double target = 1e-6) const;
};

// Outcome of decoding one page.
struct DecodeOutcome {
  bool corrected = false;       // every codeword decoded
  uint64_t residual_errors = 0; // raw bit errors leaking to the payload
  uint32_t failed_codewords = 0;
};

// Splits `raw_errors` across the page's codewords (deterministically, from
// `stream_seed`) and decodes each. With EccPreset::kNone, decoding never
// corrects anything and all errors are residual.
DecodeOutcome DecodePage(const EccScheme& scheme, uint32_t page_bytes, uint64_t raw_errors,
                         uint64_t stream_seed);

}  // namespace sos

#endif  // SOS_SRC_ECC_ECC_SCHEME_H_
