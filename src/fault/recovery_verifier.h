// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Power-cut recovery verifier.
//
// Replays a seeded host workload (writes/reads/trims across a strict SYS
// pool and an approximate SPARE pool) against an FTL whose NAND die has a
// FaultInjector cutting power every `cut_period`-th device op. After every
// cut the verifier remounts via Ftl::RecoverFromFlash() and audits the
// recovered state against an oracle of acknowledged host writes:
//
//   - zero loss: every acknowledged SYS write reads back non-degraded with
//     exactly the acknowledged bytes (a write interrupted by the cut may
//     legally surface either the old or the new content -- the host never
//     got an acknowledgement),
//   - bounded, *flagged* degradation for SPARE data: corrupted reads must
//     arrive with degraded=true, never silently wrong,
//   - mapping/physical agreement: Ftl::CheckInvariants() after every mount,
//   - trimmed LBAs may resurrect (no trim journal -- documented behaviour);
//     resurrections are counted, not failed.
//
// The injector is detached during remount audits so that audit reads do not
// consume fault-schedule op indices: cuts land on workload-driven device
// ops only, keeping runs short and the schedule meaningful.
//
// Everything is deterministic from (config, seed); the multi-seed sweep
// fans out over the PR-1 thread pool with results in seed order, so report
// bytes are identical for any job count.

#ifndef SOS_SRC_FAULT_RECOVERY_VERIFIER_H_
#define SOS_SRC_FAULT_RECOVERY_VERIFIER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/fault/fault.h"
#include "src/obs/metrics.h"

namespace sos {

struct VerifierConfig {
  uint64_t seed = 1;
  uint64_t total_ops = 4000;   // host operations to replay
  uint64_t cut_period = 400;   // power cut every K-th *device* op; 0 = off
  std::vector<FaultSpec> extra_faults;  // scheduled on top of the cuts

  // Small, payload-carrying device geometry: big enough for real GC churn,
  // small enough that an 8-seed sweep stays interactive.
  uint32_t num_blocks = 32;
  uint32_t wordlines_per_block = 4;
  uint32_t page_size_bytes = 512;

  uint64_t working_set = 160;  // distinct LBAs
  double write_fraction = 0.60;
  double trim_fraction = 0.05;  // of non-write ops
  double sys_fraction = 0.5;    // LBAs classified SYS (stable per LBA)
};

struct VerifierResult {
  uint64_t seed = 0;
  bool ok = false;              // zero SYS loss, zero invariant failures

  uint64_t host_writes = 0;
  uint64_t host_reads = 0;
  uint64_t host_trims = 0;
  uint64_t power_cuts = 0;      // cuts survived (each followed by a remount)
  uint64_t replayed_pages = 0;      // summed over all remounts
  uint64_t orphans_reclaimed = 0;   // summed over all remounts
  uint64_t audited_reads = 0;       // oracle read-backs across remount audits
  uint64_t torn_writes_committed = 0;  // interrupted writes that survived
  uint64_t torn_writes_rolled_back = 0;
  uint64_t trim_resurrections = 0;
  uint64_t spare_degraded = 0;  // flagged degraded SPARE reads (allowed)
  uint64_t sys_loss = 0;        // MUST be 0: acked SYS data lost or wrong
  uint64_t invariant_failures = 0;  // MUST be 0

  // fault.injected.*, recovery.*, verifier.* in registration order.
  obs::MetricsSnapshot metrics;
};

// Runs one seeded verifier pass. Infrastructure errors (bad config) surface
// as a Status; verification failures come back inside VerifierResult.
[[nodiscard]] Result<VerifierResult> RunRecoveryVerifier(const VerifierConfig& config);

// Runs the verifier for each seed (config.seed is overridden), fanned out
// over `jobs` threads. Results are in `seeds` order regardless of job count.
std::vector<VerifierResult> RunRecoveryVerifierSweep(const VerifierConfig& config,
                                                     const std::vector<uint64_t>& seeds,
                                                     size_t jobs);

// Deterministic ASCII report (one row per seed + aggregate verdict).
std::string RenderVerifierReport(const VerifierConfig& config,
                                 const std::vector<VerifierResult>& results);

}  // namespace sos

#endif  // SOS_SRC_FAULT_RECOVERY_VERIFIER_H_
