// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Deterministic fault injection for the NAND die.
//
// A FaultPlan is a declarative schedule -- "power cut at op 1000", "die dies
// at op 2", "block 7 gets stuck at op 50" -- and FaultInjector executes it as
// a NandFaultHook, counting device ops (program/read/erase) and firing faults
// at exact op indices. Every decision, including whether a power cut lands
// before or after the interrupted op, derives from DeriveSeed({seed, op}),
// so a faulted run replays bit-identically from (plan, workload, seed).
//
// Fault taxonomy (paper framing: survive failures instead of replacing
// hardware, so embodied carbon keeps amortizing):
//   power_cut      whole-device supply loss; durable state retained, volatile
//                  FTL state gone -- exercised by Ftl::RecoverFromFlash()
//   die_fail       permanent whole-die death (every op -> kWornOut)
//   plane_fail     permanent death of one plane (blocks interleaved by
//                  block % num_planes, matching real plane striping)
//   block_stuck    one block refuses program/erase forever; reads still work
//                  (classic grown bad block)
//   program_fail / erase_fail / read_fail
//                  transient one-shot op failures (kUnavailable) -- the FTL
//                  must retry or reroute, not lose data

#ifndef SOS_SRC_FAULT_FAULT_H_
#define SOS_SRC_FAULT_FAULT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/flash/fault_hook.h"
#include "src/obs/metrics.h"

namespace sos {

enum class FaultKind : uint8_t {
  kPowerCut = 0,
  kDieFail,
  kPlaneFail,
  kBlockStuck,
  kProgramFailTransient,
  kEraseFailTransient,
  kReadFailTransient,
};
inline constexpr int kNumFaultKinds = 7;

// Stable lower_snake name used in specs, metrics keys and reports.
const char* FaultKindName(FaultKind kind);

// One scheduled fault. `at_op` indexes the device-op stream (0-based count of
// gated program/read/erase attempts).
struct FaultSpec {
  FaultKind kind = FaultKind::kPowerCut;
  uint64_t at_op = 0;
  uint32_t die = 0;         // die_fail: which die (packages); single die = 0
  uint32_t block = 0;       // block_stuck: which block
  uint32_t plane = 0;       // plane_fail: which plane
  uint32_t num_planes = 1;  // plane_fail: plane interleave factor

  bool operator==(const FaultSpec&) const = default;
};

// Parses one CLI fault spec. Grammar (hard error on anything else):
//   power_cut@N | die_fail@N[,dD] | plane_fail@N,pP/M | block_stuck@N,bB |
//   program_fail@N | erase_fail@N | read_fail@N
// e.g. "power_cut@1000", "die_fail@2,d3", "plane_fail@64,p1/4",
// "block_stuck@50,b7".
[[nodiscard]] Result<FaultSpec> ParseFaultSpec(const std::string& spec);

// Canonical round-trip form of a spec (same grammar ParseFaultSpec accepts).
std::string FormatFaultSpec(const FaultSpec& spec);

// A full injection schedule for one run.
struct FaultPlan {
  uint64_t seed = 1;
  // When > 0, additionally cut power at every op index that is a positive
  // multiple of this period (the verifier's "cut every K-th op" knob).
  uint64_t power_cut_period = 0;
  std::vector<FaultSpec> specs;
};

// Executes a FaultPlan against one die. Install with
// NandDevice::SetFaultHook(); the injector must outlive the hook
// registration. Op counting is monotonic across power cuts and remounts.
class FaultInjector final : public NandFaultHook {
 public:
  explicit FaultInjector(const FaultPlan& plan, uint32_t die_index = 0);

  NandFaultAction OnNandOp(NandOpKind op, uint32_t block, uint32_t page) override;

  // Total gated device ops observed (including ones a fault blocked).
  uint64_t ops_observed() const { return next_op_; }
  // Count of faults fired, by kind.
  uint64_t injected(FaultKind kind) const { return injected_[static_cast<int>(kind)]; }
  uint64_t injected_total() const;

  // Registers fault.injected.<kind> counters (and .total) under `prefix`.
  void ToMetrics(obs::MetricRegistry& registry, const std::string& prefix = "fault.injected.") const;

 private:
  struct PendingSpec {
    FaultSpec spec;
    bool fired = false;
  };

  FaultPlan plan_;
  uint32_t die_index_;
  uint64_t next_op_ = 0;  // index the next OnNandOp call will get
  bool die_failed_ = false;
  std::vector<FaultSpec> dead_planes_;   // activated plane_fail specs
  std::vector<uint32_t> stuck_blocks_;   // activated block_stuck blocks
  std::vector<PendingSpec> pending_;     // not-yet-fired schedule
  uint64_t injected_[kNumFaultKinds] = {};
};

}  // namespace sos

#endif  // SOS_SRC_FAULT_FAULT_H_
