// Copyright (c) 2026 The SOS Authors. MIT License.

#include "src/fault/recovery_verifier.h"

#include <cinttypes>
#include <cstdio>
#include <optional>
#include <unordered_map>
#include <utility>

#include "src/common/container_util.h"
#include "src/common/rng.h"
#include "src/common/sim_clock.h"
#include "src/common/thread_pool.h"
#include "src/ftl/ftl.h"

namespace sos {
namespace {

// What the host believes about one LBA. `content` is the last byte string
// the device *acknowledged* storing; `in_flight` is a write the power cut
// interrupted (no ack -- either outcome is legal after recovery).
struct OracleEntry {
  std::vector<uint8_t> content;
  bool has_content = false;
  bool trimmed = false;  // trim acked; the copy may still resurrect
  // Once a SPARE entry has been served degraded (or relocated tainted), its
  // stored bytes are no longer predictable from the oracle_map -- relocations
  // re-encode whatever the read path produced. Exact-match checks stop;
  // degradation stays counted.
  bool fuzzy = false;
  std::optional<std::vector<uint8_t>> in_flight;
};

FtlConfig BuildVerifierFtlConfig(const VerifierConfig& config) {
  FtlConfig ftl;
  ftl.nand.num_blocks = config.num_blocks;
  ftl.nand.wordlines_per_block = config.wordlines_per_block;
  ftl.nand.page_size_bytes = config.page_size_bytes;
  ftl.nand.tech = CellTech::kPlc;
  ftl.nand.seed = config.seed;
  ftl.nand.store_payloads = true;  // byte-exact oracle_map comparisons

  // The paper's two reliability domains, scaled down: a strict SYS pool
  // (pseudo-QLC, strong ECC, parity, retries) and an approximate SPARE pool
  // (native PLC, no ECC, degradation allowed but flagged).
  FtlPoolConfig sys;
  sys.name = "SYS";
  sys.mode = CellTech::kQlc;
  sys.ecc = EccScheme::FromPreset(EccPreset::kBch);
  sys.share = 0.5;
  sys.wear_leveling = true;
  sys.parity_stripe = 8;
  sys.read_retries = 2;
  sys.strict_fidelity = true;

  FtlPoolConfig spare;
  spare.name = "SPARE";
  spare.mode = CellTech::kPlc;
  spare.ecc = EccScheme::FromPreset(EccPreset::kNone);
  spare.share = 0.5;
  spare.wear_leveling = false;
  spare.retire_rber = 2e-3;

  ftl.pools = {sys, spare};
  return ftl;
}

std::vector<uint8_t> PayloadFor(uint64_t seed, uint64_t lba, uint64_t op, uint32_t size) {
  std::vector<uint8_t> data(size);
  Rng rng(DeriveSeed({seed, lba, op, 0xDA7Aull}));
  for (auto& b : data) {
    b = static_cast<uint8_t>(rng.NextBounded(256));
  }
  return data;
}

// Stable per-LBA classification, independent of op order.
bool IsSysLba(uint64_t lba, double sys_fraction) {
  return static_cast<double>(DeriveSeed({lba, 0x515C1A55ull}) % 10000) <
         sys_fraction * 10000.0;
}

}  // namespace

Result<VerifierResult> RunRecoveryVerifier(const VerifierConfig& config) {
  if (config.working_set == 0 || config.total_ops == 0) {
    return Status(StatusCode::kInvalidArgument, "verifier needs a non-empty workload");
  }
  if (config.write_fraction < 0.0 || config.write_fraction > 1.0 ||
      config.trim_fraction < 0.0 || config.write_fraction + config.trim_fraction > 1.0 ||
      config.sys_fraction < 0.0 || config.sys_fraction > 1.0) {
    return Status(StatusCode::kInvalidArgument, "verifier op mix fractions out of range");
  }

  SimClock clock;
  Ftl ftl(BuildVerifierFtlConfig(config), &clock);
  const uint32_t sys_pool = ftl.PoolIdByName("SYS");
  const uint32_t spare_pool = ftl.PoolIdByName("SPARE");

  FaultPlan plan;
  plan.seed = config.seed;
  plan.power_cut_period = config.cut_period;
  plan.specs = config.extra_faults;
  FaultInjector injector(plan);
  ftl.nand().SetFaultHook(&injector);

  VerifierResult res;
  res.seed = config.seed;
  std::unordered_map<uint64_t, OracleEntry> oracle_map;
  Rng rng(DeriveSeed({config.seed, 0xFA5EEDull}));

  // Remount after a power cut and audit every oracle_map entry against the
  // recovered state. The injector is detached for the duration so audit
  // reads do not consume fault-schedule op indices. Returns false when the
  // mount itself failed (fatal for the run).
  auto remount_and_audit = [&]() -> bool {
    ++res.power_cuts;
    ftl.nand().SetFaultHook(nullptr);
    Status mounted = ftl.RecoverFromFlash();
    if (!mounted.ok()) {
      ++res.invariant_failures;
      return false;
    }
    res.replayed_pages += ftl.last_recovery().replayed_pages;
    res.orphans_reclaimed += ftl.last_recovery().orphans_reclaimed;

    for (const uint64_t lba : SortedKeys(oracle_map)) {
      OracleEntry& e = oracle_map.at(lba);
      const bool sys = IsSysLba(lba, config.sys_fraction);
      const bool mapped = ftl.IsMapped(lba);

      if (e.in_flight.has_value()) {
        // The cut interrupted a write of this LBA: the device may surface
        // the new bytes (committed, never acked) or the previous state.
        if (!mapped) {
          if (e.has_content && !e.trimmed) {
            // An acknowledged copy existed and vanished entirely.
            if (sys) {
              ++res.sys_loss;
            } else {
              ++res.invariant_failures;
            }
          } else {
            ++res.torn_writes_rolled_back;  // first write; nothing was acked
            e.in_flight.reset();
            oracle_map.erase(lba);
            continue;
          }
          e.in_flight.reset();
          continue;
        }
        auto read = ftl.Read(lba);
        ++res.audited_reads;
        if (read.ok() && read.value().data == *e.in_flight) {
          ++res.torn_writes_committed;
          e.content = std::move(*e.in_flight);
          e.has_content = true;
          if (e.trimmed) {
            e.trimmed = false;
          }
          e.fuzzy = false;  // committed fresh bytes
        } else if (e.trimmed) {
          // Base state was "trimmed": the trim invalidated the newest copy,
          // so GC may have erased it and *any* older orphan may resurface.
          // Whatever the device serves now is legal; resync the oracle to it.
          ++res.torn_writes_rolled_back;
          ++res.trim_resurrections;
          if (read.ok() && !read.value().degraded) {
            e.content = std::move(read.value().data);
            e.has_content = true;
            e.trimmed = false;
            e.fuzzy = read.value().tainted;
          } else {
            if (read.ok() && !sys) {
              ++res.spare_degraded;
            }
            e.in_flight.reset();
            oracle_map.erase(lba);  // unpredictable resurrected bytes
            continue;
          }
        } else if (read.ok() && e.has_content &&
                   (e.fuzzy || read.value().data == e.content || read.value().degraded)) {
          ++res.torn_writes_rolled_back;
          if (!sys && read.value().degraded) {
            ++res.spare_degraded;
            e.fuzzy = true;
          }
        } else {
          if (sys) {
            ++res.sys_loss;  // neither acked nor in-flight bytes: loss
          } else {
            ++res.invariant_failures;
          }
        }
        e.in_flight.reset();
        continue;
      }

      if (e.trimmed) {
        if (mapped) {
          // No trim journal: a copy resurrected -- documented, counted. The
          // trim invalidated the newest copy, so GC may have erased it and
          // an *older* orphan can be the surviving winner; resync the oracle
          // to whatever the device serves now.
          ++res.trim_resurrections;
          auto read = ftl.Read(lba);
          ++res.audited_reads;
          if (read.ok() && !read.value().degraded) {
            e.content = std::move(read.value().data);
            e.has_content = true;
            e.trimmed = false;
            e.fuzzy = read.value().tainted;
          } else {
            if (read.ok() && !sys) {
              ++res.spare_degraded;
            }
            oracle_map.erase(lba);  // unpredictable resurrected bytes
          }
        } else {
          oracle_map.erase(lba);
        }
        continue;
      }

      if (!e.has_content) {
        continue;
      }
      if (!mapped) {
        if (sys) {
          ++res.sys_loss;  // acked SYS data gone from the mapping table
        } else {
          ++res.invariant_failures;
        }
        continue;
      }
      auto read = ftl.Read(lba);
      ++res.audited_reads;
      if (!read.ok()) {
        if (sys) {
          ++res.sys_loss;  // strict pool errored on acked data
        } else {
          ++res.invariant_failures;
        }
        continue;
      }
      if (sys) {
        if (read.value().degraded || read.value().data != e.content) {
          ++res.sys_loss;
        }
      } else {
        if (read.value().degraded) {
          ++res.spare_degraded;
          e.fuzzy = true;
        } else if (read.value().tainted) {
          e.fuzzy = true;
        } else if (!e.fuzzy && read.value().data != e.content) {
          ++res.invariant_failures;  // silent (unflagged) SPARE corruption
        }
      }
    }
    ftl.nand().SetFaultHook(&injector);
    return true;
  };

  bool fatal = false;
  for (uint64_t op = 0; op < config.total_ops && !fatal; ++op) {
    const uint64_t lba = rng.NextBounded(config.working_set);
    const bool sys = IsSysLba(lba, config.sys_fraction);
    const double roll = rng.NextDouble();

    if (roll < config.write_fraction) {
      ++res.host_writes;
      std::vector<uint8_t> payload =
          PayloadFor(config.seed, lba, op, config.page_size_bytes);
      Status wrote = ftl.Write(lba, payload, sys ? sys_pool : spare_pool);
      if (wrote.ok()) {
        OracleEntry& e = oracle_map[lba];
        e.content = std::move(payload);
        e.has_content = true;
        e.trimmed = false;
        e.fuzzy = false;
        e.in_flight.reset();
      } else if (wrote.code() == StatusCode::kPowerLost) {
        oracle_map[lba].in_flight = std::move(payload);
        fatal = !remount_and_audit();
      } else if (wrote.code() != StatusCode::kOutOfSpace) {
        ++res.invariant_failures;  // out-of-space is legal under churn
      }
    } else if (roll < config.write_fraction + config.trim_fraction) {
      ++res.host_trims;
      Status trimmed = ftl.Trim(lba);
      if (trimmed.ok()) {
        oracle_map[lba].trimmed = true;
      } else if (trimmed.code() != StatusCode::kNotFound) {
        ++res.invariant_failures;
      }
    } else {
      ++res.host_reads;
      auto read = ftl.Read(lba);
      auto it = oracle_map.find(lba);
      const bool expect = it != oracle_map.end() && it->second.has_content &&
                          !it->second.trimmed && !it->second.in_flight.has_value();
      if (!read.ok()) {
        if (read.status().code() == StatusCode::kPowerLost) {
          fatal = !remount_and_audit();
        } else if (read.status().code() == StatusCode::kNotFound) {
          if (expect) {
            if (sys) {
              ++res.sys_loss;
            } else {
              ++res.invariant_failures;
            }
          }
        } else if (read.status().code() == StatusCode::kDataLoss && sys) {
          ++res.sys_loss;  // strict SYS pool lost acked data, loudly
        } else {
          ++res.invariant_failures;
        }
      } else if (expect) {
        OracleEntry& e = it->second;
        if (sys) {
          if (read.value().degraded || read.value().data != e.content) {
            ++res.sys_loss;
          }
        } else {
          if (read.value().degraded) {
            ++res.spare_degraded;
            e.fuzzy = true;
          } else if (read.value().tainted) {
            e.fuzzy = true;
          } else if (!e.fuzzy && read.value().data != e.content) {
            ++res.invariant_failures;
          }
        }
      }
    }
  }

  // Final consistency audit so a run that ends between cuts still checks
  // mapping/physical agreement.
  if (!fatal) {
    if (Status audit = ftl.CheckInvariants(); !audit.ok()) {
      ++res.invariant_failures;
    }
  }
  ftl.nand().SetFaultHook(nullptr);

  res.ok = res.sys_loss == 0 && res.invariant_failures == 0;

  obs::MetricRegistry registry;
  injector.ToMetrics(registry);
  registry.SetCounter("recovery.power_cuts", res.power_cuts);
  registry.SetCounter("recovery.replayed_pages", res.replayed_pages);
  registry.SetCounter("recovery.orphans_reclaimed", res.orphans_reclaimed);
  registry.SetCounter("recovery.audited_reads", res.audited_reads);
  registry.SetCounter("recovery.torn_writes_committed", res.torn_writes_committed);
  registry.SetCounter("recovery.torn_writes_rolled_back", res.torn_writes_rolled_back);
  registry.SetCounter("recovery.trim_resurrections", res.trim_resurrections);
  registry.SetCounter("verifier.host_writes", res.host_writes);
  registry.SetCounter("verifier.host_reads", res.host_reads);
  registry.SetCounter("verifier.host_trims", res.host_trims);
  registry.SetCounter("verifier.spare_degraded", res.spare_degraded);
  registry.SetCounter("verifier.sys_loss", res.sys_loss);
  registry.SetCounter("verifier.invariant_failures", res.invariant_failures);
  registry.SetCounter("verifier.ok", res.ok ? 1 : 0);
  res.metrics = registry.Snapshot();
  return res;
}

std::vector<VerifierResult> RunRecoveryVerifierSweep(const VerifierConfig& config,
                                                     const std::vector<uint64_t>& seeds,
                                                     size_t jobs) {
  auto run_one = [&config](uint64_t seed) {
    VerifierConfig c = config;
    c.seed = seed;
    auto result = RunRecoveryVerifier(c);
    if (result.ok()) {
      return result.value();
    }
    VerifierResult failed;  // config rejected: surfaces as a failed seed
    failed.seed = seed;
    failed.invariant_failures = 1;
    return failed;
  };
  if (jobs <= 1 || seeds.size() <= 1) {
    std::vector<VerifierResult> out;
    out.reserve(seeds.size());
    for (uint64_t seed : seeds) {
      out.push_back(run_one(seed));
    }
    return out;
  }
  ThreadPool pool(jobs);
  return ParallelMap(pool, seeds.size(),
                     [&](size_t i) { return run_one(seeds[i]); });
}

std::string RenderVerifierReport(const VerifierConfig& config,
                                 const std::vector<VerifierResult>& results) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "power-cut recovery verifier: %zu seed(s), %" PRIu64
                " host ops, cut every %" PRIu64 " device ops\n",
                results.size(), config.total_ops, config.cut_period);
  out += line;
  std::snprintf(line, sizeof(line), "%-6s %6s %8s %8s %7s %7s %7s %7s %5s %4s  %s\n", "seed",
                "cuts", "replayed", "orphans", "commit", "rollbk", "resurr", "degrad", "loss",
                "inv", "verdict");
  out += line;
  uint64_t total_cuts = 0;
  uint64_t total_loss = 0;
  uint64_t total_inv = 0;
  bool all_ok = true;
  for (const VerifierResult& r : results) {
    std::snprintf(line, sizeof(line),
                  "%-6" PRIu64 " %6" PRIu64 " %8" PRIu64 " %8" PRIu64 " %7" PRIu64 " %7" PRIu64
                  " %7" PRIu64 " %7" PRIu64 " %5" PRIu64 " %4" PRIu64 "  %s\n",
                  r.seed, r.power_cuts, r.replayed_pages, r.orphans_reclaimed,
                  r.torn_writes_committed, r.torn_writes_rolled_back, r.trim_resurrections,
                  r.spare_degraded, r.sys_loss, r.invariant_failures, r.ok ? "PASS" : "FAIL");
    out += line;
    total_cuts += r.power_cuts;
    total_loss += r.sys_loss;
    total_inv += r.invariant_failures;
    all_ok = all_ok && r.ok;
  }
  std::snprintf(line, sizeof(line),
                "total: %" PRIu64 " cuts survived, %" PRIu64 " acked SYS pages lost, %" PRIu64
                " invariant failures -> %s\n",
                total_cuts, total_loss, total_inv, all_ok ? "PASS" : "FAIL");
  out += line;
  return out;
}

}  // namespace sos
