// Copyright (c) 2026 The SOS Authors. MIT License.

#include "src/fault/fault.h"

#include <algorithm>

#include "src/common/rng.h"

namespace sos {
namespace {

// Strict decimal parse: every character must be a digit, no empties.
bool ParseStrictU64(const std::string& text, uint64_t* out) {
  if (text.empty() || text.size() > 19) {
    return false;
  }
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      return false;
    }
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

Status BadSpec(const std::string& spec, const char* why) {
  return Status(StatusCode::kInvalidArgument,
                "malformed fault spec '" + spec + "': " + why);
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kPowerCut:
      return "power_cut";
    case FaultKind::kDieFail:
      return "die_fail";
    case FaultKind::kPlaneFail:
      return "plane_fail";
    case FaultKind::kBlockStuck:
      return "block_stuck";
    case FaultKind::kProgramFailTransient:
      return "program_fail";
    case FaultKind::kEraseFailTransient:
      return "erase_fail";
    case FaultKind::kReadFailTransient:
      return "read_fail";
  }
  return "unknown";
}

Result<FaultSpec> ParseFaultSpec(const std::string& spec) {
  const size_t at = spec.find('@');
  if (at == std::string::npos) {
    return BadSpec(spec, "expected <kind>@<op>");
  }
  const std::string name = spec.substr(0, at);
  std::string rest = spec.substr(at + 1);
  std::string arg;
  if (const size_t comma = rest.find(','); comma != std::string::npos) {
    arg = rest.substr(comma + 1);
    rest = rest.substr(0, comma);
    if (arg.empty()) {
      return BadSpec(spec, "trailing comma");
    }
  }

  FaultSpec out;
  if (!ParseStrictU64(rest, &out.at_op)) {
    return BadSpec(spec, "op index must be a decimal number");
  }

  uint64_t value = 0;
  if (name == "power_cut" || name == "program_fail" || name == "erase_fail" ||
      name == "read_fail") {
    if (!arg.empty()) {
      return BadSpec(spec, "kind takes no argument");
    }
    out.kind = name == "power_cut"      ? FaultKind::kPowerCut
               : name == "program_fail" ? FaultKind::kProgramFailTransient
               : name == "erase_fail"   ? FaultKind::kEraseFailTransient
                                        : FaultKind::kReadFailTransient;
    return out;
  }
  if (name == "die_fail") {
    out.kind = FaultKind::kDieFail;
    if (!arg.empty()) {
      if (arg[0] != 'd' || !ParseStrictU64(arg.substr(1), &value)) {
        return BadSpec(spec, "die argument must be d<index>");
      }
      out.die = static_cast<uint32_t>(value);
    }
    return out;
  }
  if (name == "plane_fail") {
    out.kind = FaultKind::kPlaneFail;
    const size_t slash = arg.find('/');
    if (arg.empty() || arg[0] != 'p' || slash == std::string::npos) {
      return BadSpec(spec, "plane argument must be p<plane>/<num_planes>");
    }
    uint64_t planes = 0;
    if (!ParseStrictU64(arg.substr(1, slash - 1), &value) ||
        !ParseStrictU64(arg.substr(slash + 1), &planes)) {
      return BadSpec(spec, "plane argument must be p<plane>/<num_planes>");
    }
    if (planes == 0 || value >= planes) {
      return BadSpec(spec, "plane index must be below num_planes");
    }
    out.plane = static_cast<uint32_t>(value);
    out.num_planes = static_cast<uint32_t>(planes);
    return out;
  }
  if (name == "block_stuck") {
    out.kind = FaultKind::kBlockStuck;
    if (arg.empty() || arg[0] != 'b' || !ParseStrictU64(arg.substr(1), &value)) {
      return BadSpec(spec, "block argument must be b<block>");
    }
    out.block = static_cast<uint32_t>(value);
    return out;
  }
  return BadSpec(spec, "unknown fault kind");
}

std::string FormatFaultSpec(const FaultSpec& spec) {
  std::string out = FaultKindName(spec.kind);
  out += "@" + std::to_string(spec.at_op);
  switch (spec.kind) {
    case FaultKind::kDieFail:
      if (spec.die != 0) {
        out += ",d" + std::to_string(spec.die);
      }
      break;
    case FaultKind::kPlaneFail:
      out += ",p" + std::to_string(spec.plane) + "/" + std::to_string(spec.num_planes);
      break;
    case FaultKind::kBlockStuck:
      out += ",b" + std::to_string(spec.block);
      break;
    default:
      break;
  }
  return out;
}

FaultInjector::FaultInjector(const FaultPlan& plan, uint32_t die_index)
    : plan_(plan), die_index_(die_index) {
  pending_.reserve(plan_.specs.size());
  for (const FaultSpec& spec : plan_.specs) {
    pending_.push_back(PendingSpec{spec, false});
  }
}

uint64_t FaultInjector::injected_total() const {
  uint64_t total = 0;
  for (uint64_t n : injected_) {
    total += n;
  }
  return total;
}

NandFaultAction FaultInjector::OnNandOp(NandOpKind op, uint32_t block, uint32_t /*page*/) {
  const uint64_t idx = next_op_++;

  // Phase 1: activate persistent faults whose time has come (schedule order).
  for (PendingSpec& p : pending_) {
    if (p.fired || p.spec.at_op > idx) {
      continue;
    }
    switch (p.spec.kind) {
      case FaultKind::kDieFail:
        p.fired = true;
        if (p.spec.die == die_index_) {
          die_failed_ = true;
        }
        break;
      case FaultKind::kPlaneFail:
        p.fired = true;
        dead_planes_.push_back(p.spec);
        break;
      case FaultKind::kBlockStuck:
        p.fired = true;
        stuck_blocks_.push_back(p.spec.block);
        break;
      default:
        break;
    }
  }

  // Phase 2: one action per op, most severe cause first. injected_ counts
  // every op the injector interfered with, bucketed by cause.

  // Scheduled power cuts (catch-up semantics: a cut scheduled during a dark
  // window lands on the first op after power returns).
  for (PendingSpec& p : pending_) {
    if (!p.fired && p.spec.kind == FaultKind::kPowerCut && p.spec.at_op <= idx) {
      p.fired = true;
      ++injected_[static_cast<int>(FaultKind::kPowerCut)];
      const bool after_op = Rng(DeriveSeed({plan_.seed, idx})).NextBool(0.5);
      return NandFaultAction::PowerCut(after_op, "scheduled power cut");
    }
  }
  // Periodic power cuts (the verifier's every-K-th-op schedule).
  if (plan_.power_cut_period > 0 && idx > 0 && idx % plan_.power_cut_period == 0) {
    ++injected_[static_cast<int>(FaultKind::kPowerCut)];
    const bool after_op = Rng(DeriveSeed({plan_.seed, idx})).NextBool(0.5);
    return NandFaultAction::PowerCut(after_op, "periodic power cut");
  }

  if (die_failed_) {
    ++injected_[static_cast<int>(FaultKind::kDieFail)];
    return NandFaultAction::Fail(StatusCode::kWornOut, "die failed");
  }
  for (const FaultSpec& plane : dead_planes_) {
    if (block % plane.num_planes == plane.plane) {
      ++injected_[static_cast<int>(FaultKind::kPlaneFail)];
      return NandFaultAction::Fail(StatusCode::kWornOut, "plane failed");
    }
  }
  if (op != NandOpKind::kRead &&
      std::find(stuck_blocks_.begin(), stuck_blocks_.end(), block) != stuck_blocks_.end()) {
    ++injected_[static_cast<int>(FaultKind::kBlockStuck)];
    return NandFaultAction::Fail(StatusCode::kWornOut, "block stuck");
  }

  // One-shot transient failures: fire on the first matching op at/after at_op.
  for (PendingSpec& p : pending_) {
    if (p.fired || p.spec.at_op > idx) {
      continue;
    }
    const bool matches = (p.spec.kind == FaultKind::kProgramFailTransient &&
                          op == NandOpKind::kProgram) ||
                         (p.spec.kind == FaultKind::kEraseFailTransient &&
                          op == NandOpKind::kErase) ||
                         (p.spec.kind == FaultKind::kReadFailTransient &&
                          op == NandOpKind::kRead);
    if (matches) {
      p.fired = true;
      ++injected_[static_cast<int>(p.spec.kind)];
      return NandFaultAction::Fail(StatusCode::kUnavailable, "transient fault");
    }
  }
  return NandFaultAction::None();
}

void FaultInjector::ToMetrics(obs::MetricRegistry& registry, const std::string& prefix) const {
  for (int k = 0; k < kNumFaultKinds; ++k) {
    registry.SetCounter(prefix + FaultKindName(static_cast<FaultKind>(k)), injected_[k]);
  }
  registry.SetCounter(prefix + "total", injected_total());
}

}  // namespace sos
