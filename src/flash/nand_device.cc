// Copyright (c) 2026 The SOS Authors. MIT License.

#include "src/flash/nand_device.h"

#include <algorithm>
#include <cassert>

#include "src/common/rng.h"

namespace sos {

NandDevice::NandDevice(const NandConfig& config, SimClock* clock)
    : config_(config), clock_(clock), rber_cache_(config.error_model, config.rber_memo) {
  assert(clock != nullptr);
  assert(config_.num_blocks > 0 && config_.wordlines_per_block > 0 && config_.page_size_bytes > 0);
  blocks_.resize(config_.num_blocks);
  for (auto& blk : blocks_) {
    blk.info.mode = config_.tech;  // native density until told otherwise
    blk.info.pec = config_.initial_pec;
    blk.pages.resize(config_.PagesPerBlock(blk.info.mode));
    if (config_.store_payloads) {
      blk.data.resize(blk.pages.size());
    }
  }
}

Status NandDevice::SetBlockMode(uint32_t block, CellTech mode) {
  if (block >= blocks_.size()) {
    return Status(StatusCode::kInvalidArgument, "block out of range");
  }
  if (static_cast<int>(mode) > static_cast<int>(config_.tech)) {
    return Status(StatusCode::kInvalidArgument,
                  "mode denser than the die's native technology");
  }
  Block& blk = blocks_[block];
  if (blk.info.programmed_pages > 0) {
    return Status(StatusCode::kFailedPrecondition, "block holds data; erase before mode change");
  }
  blk.info.mode = mode;
  blk.info.next_page = 0;
  blk.pages.assign(config_.PagesPerBlock(mode), PageMeta{});
  if (config_.store_payloads) {
    blk.data.assign(blk.pages.size(), {});
  }
  return Status::Ok();
}

double NandDevice::EffectiveEndurance(uint32_t block) const {
  const Block& blk = blocks_[block];
  const CellTechInfo& info = GetCellTechInfo(blk.info.mode);
  return static_cast<double>(info.rated_endurance_pec) *
         PseudoModeEnduranceBonus(config_.tech, blk.info.mode);
}

Status NandDevice::GateOp(NandOpKind op, uint32_t block, uint32_t page,
                          NandFaultAction* action) {
  *action = NandFaultAction::None();
  if (!powered_) {
    return Status(StatusCode::kPowerLost, "device is powered off");
  }
  if (fault_hook_ == nullptr) {
    return Status::Ok();
  }
  *action = fault_hook_->OnNandOp(op, block, page);
  switch (action->kind) {
    case NandFaultAction::Kind::kNone:
      return Status::Ok();
    case NandFaultAction::Kind::kFail:
      return Status(action->code, action->reason);
    case NandFaultAction::Kind::kPowerCut:
      if (!action->after_op) {
        // Cut lands before the op touches the array: nothing durable happens.
        powered_ = false;
        return Status(StatusCode::kPowerLost, action->reason);
      }
      // after_op: let the caller commit the op, then cut (torn-write window).
      return Status::Ok();
  }
  return Status::Ok();
}

Status NandDevice::EraseBlock(uint32_t block) {
  if (block >= blocks_.size()) {
    return Status(StatusCode::kInvalidArgument, "block out of range");
  }
  NandFaultAction action;
  if (Status s = GateOp(NandOpKind::kErase, block, 0, &action); !s.ok()) {
    return s;
  }
  Block& blk = blocks_[block];
  ++blk.info.pec;
  blk.info.next_page = 0;
  blk.info.programmed_pages = 0;
  blk.info.erased = true;
  for (auto& page : blk.pages) {
    page = PageMeta{};
  }
  if (config_.store_payloads) {
    for (auto& payload : blk.data) {
      payload.clear();
    }
  }
  const SimTimeUs latency = GetCellTechInfo(blk.info.mode).erase_latency_us;
  if (config_.advance_clock) {
    clock_->Advance(latency);
  }
  ++stats_.erases;
  stats_.busy_us += latency;
  if (action.kind == NandFaultAction::Kind::kPowerCut) {
    // Post-op cut: the erase completed in the array but power died before
    // the device could acknowledge it.
    powered_ = false;
    return Status(StatusCode::kPowerLost, action.reason);
  }
  return Status::Ok();
}

Status NandDevice::CheckAddr(PageAddr addr) const {
  if (addr.block >= blocks_.size()) {
    return Status(StatusCode::kInvalidArgument, "block out of range");
  }
  if (addr.page >= blocks_[addr.block].pages.size()) {
    return Status(StatusCode::kInvalidArgument, "page out of range for block mode");
  }
  return Status::Ok();
}

Status NandDevice::Program(PageAddr addr, std::span<const uint8_t> data, const PageOob* oob) {
  if (Status s = CheckAddr(addr); !s.ok()) {
    return s;
  }
  if (data.size() > config_.page_size_bytes) {
    return Status(StatusCode::kInvalidArgument, "payload exceeds page size");
  }
  Block& blk = blocks_[addr.block];
  if (addr.page != blk.info.next_page) {
    return Status(StatusCode::kFailedPrecondition, "pages must be programmed sequentially");
  }
  PageMeta& page = blk.pages[addr.page];
  if (page.programmed) {
    return Status(StatusCode::kFailedPrecondition, "page already programmed; erase block first");
  }
  NandFaultAction action;
  if (Status s = GateOp(NandOpKind::kProgram, addr.block, addr.page, &action); !s.ok()) {
    return s;
  }
  page.programmed = true;
  page.program_time_us = clock_->now();
  page.pec_at_program = blk.info.pec;
  page.reads = 0;
  page.has_oob = oob != nullptr;
  page.oob = oob != nullptr ? *oob : PageOob{};
  ++blk.info.next_page;
  ++blk.info.programmed_pages;
  blk.info.erased = false;
  if (config_.store_payloads) {
    auto& payload = blk.data[addr.page];
    payload.assign(data.begin(), data.end());
    payload.resize(config_.page_size_bytes, 0);  // NAND pads with the erased pattern
  }
  const SimTimeUs latency = GetCellTechInfo(blk.info.mode).program_latency_us;
  if (config_.advance_clock) {
    clock_->Advance(latency);
  }
  ++stats_.programs;
  stats_.bytes_programmed += config_.page_size_bytes;
  stats_.busy_us += latency;
  if (action.kind == NandFaultAction::Kind::kPowerCut) {
    // Post-op cut: bytes + OOB reached the cells but the host never saw an
    // acknowledgement -- recovery may legitimately surface either version.
    powered_ = false;
    return Status(StatusCode::kPowerLost, action.reason);
  }
  return Status::Ok();
}

PageErrorState NandDevice::ErrorStateFor(const Block& blk, const PageMeta& page) const {
  PageErrorState state;
  state.mode = blk.info.mode;
  state.endurance_pec = static_cast<double>(GetCellTechInfo(blk.info.mode).rated_endurance_pec) *
                        PseudoModeEnduranceBonus(config_.tech, blk.info.mode);
  state.pec_at_program = page.pec_at_program;
  state.retention_years =
      UsToYears(clock_->now() >= page.program_time_us ? clock_->now() - page.program_time_us : 0);
  state.reads_since_program = page.reads;
  return state;
}

Result<ReadResult> NandDevice::Read(PageAddr addr, int retry_level) {
  if (Status s = CheckAddr(addr); !s.ok()) {
    return s;
  }
  Block& blk = blocks_[addr.block];
  PageMeta& page = blk.pages[addr.page];
  if (!page.programmed) {
    return Status(StatusCode::kNotFound, "page not programmed");
  }
  NandFaultAction action;
  if (Status s = GateOp(NandOpKind::kRead, addr.block, addr.page, &action); !s.ok()) {
    return s;
  }
  ++page.reads;

  const PageErrorState state = ErrorStateFor(blk, page);
  const uint64_t bits = static_cast<uint64_t>(config_.page_size_bytes) * 8;
  const uint64_t stream_seed =
      DeriveSeed({config_.seed, addr.block, addr.page, page.pec_at_program, page.reads,
                  static_cast<uint64_t>(retry_level)});
  ReadResult result;
  result.rber = rber_cache_.Rber(state, retry_level);
  result.bit_errors =
      result.rber <= 0.0 ? 0 : Rng(stream_seed).NextBinomial(bits, result.rber);
  if (config_.store_payloads) {
    result.data = blk.data[addr.page];
    ErrorModel::InjectErrors(result.data, result.bit_errors, stream_seed);
  }
  result.latency_us = GetCellTechInfo(blk.info.mode).read_latency_us;
  if (config_.advance_clock) {
    clock_->Advance(result.latency_us);
  }
  ++stats_.reads;
  stats_.bytes_read += config_.page_size_bytes;
  stats_.bit_errors_injected += result.bit_errors;
  stats_.busy_us += result.latency_us;
  rber_histogram_.Observe(result.rber);
  if (action.kind == NandFaultAction::Kind::kPowerCut) {
    // The sense amps fired but power died before data left the die.
    powered_ = false;
    return Status(StatusCode::kPowerLost, action.reason);
  }
  return result;
}

Result<PageOob> NandDevice::ReadOob(PageAddr addr) const {
  if (!powered_) {
    return Status(StatusCode::kPowerLost, "device is powered off");
  }
  if (Status s = CheckAddr(addr); !s.ok()) {
    return s;
  }
  const Block& blk = blocks_[addr.block];
  const PageMeta& page = blk.pages[addr.page];
  if (!page.programmed) {
    return Status(StatusCode::kNotFound, "page not programmed");
  }
  if (!page.has_oob) {
    return Status(StatusCode::kNotFound, "page carries no OOB metadata");
  }
  return page.oob;
}

Status NandDevice::SetBlockLabel(uint32_t block, uint32_t label) {
  if (block >= blocks_.size()) {
    return Status(StatusCode::kInvalidArgument, "block out of range");
  }
  blocks_[block].label = label;
  return Status::Ok();
}

uint32_t NandDevice::block_label(uint32_t block) const {
  assert(block < blocks_.size());
  return blocks_[block].label;
}

Result<std::vector<uint8_t>> NandDevice::PeekClean(PageAddr addr) const {
  if (Status s = CheckAddr(addr); !s.ok()) {
    return s;
  }
  const Block& blk = blocks_[addr.block];
  if (!blk.pages[addr.page].programmed) {
    return Status(StatusCode::kNotFound, "page not programmed");
  }
  if (!config_.store_payloads) {
    return std::vector<uint8_t>{};
  }
  return blk.data[addr.page];
}

Result<double> NandDevice::PredictRber(PageAddr addr, double ahead_years) const {
  if (Status s = CheckAddr(addr); !s.ok()) {
    return s;
  }
  const Block& blk = blocks_[addr.block];
  const PageMeta& page = blk.pages[addr.page];
  if (!page.programmed) {
    return Status(StatusCode::kNotFound, "page not programmed");
  }
  PageErrorState state = ErrorStateFor(blk, page);
  state.retention_years += std::max(ahead_years, 0.0);
  return rber_cache_.Rber(state, 0);
}

std::vector<Result<ReadResult>> NandDevice::ReadRun(uint32_t block, uint32_t start_page,
                                                    uint32_t count, int retry_level) {
  std::vector<Result<ReadResult>> results;
  results.reserve(count);
  // Delegating per page keeps the run byte-identical to a serial loop by
  // construction (same gating, clock and error-stream derivation); the
  // batching win is the amortized call overhead in the FTL's loops.
  for (uint32_t i = 0; i < count; ++i) {
    results.push_back(Read({block, start_page + i}, retry_level));
  }
  return results;
}

Status NandDevice::ProgramRun(uint32_t block, std::span<const std::vector<uint8_t>> payloads,
                              std::span<const PageOob> oobs) {
  if (!oobs.empty() && oobs.size() != payloads.size()) {
    return Status(StatusCode::kInvalidArgument, "oob count must match payload count");
  }
  if (block >= blocks_.size()) {
    return Status(StatusCode::kInvalidArgument, "block out of range");
  }
  for (size_t i = 0; i < payloads.size(); ++i) {
    const PageAddr addr{block, blocks_[block].info.next_page};
    const PageOob* oob = oobs.empty() ? nullptr : &oobs[i];
    if (Status s = Program(addr, payloads[i], oob); !s.ok()) {
      return s;  // pages programmed so far remain, as in a serial loop
    }
  }
  return Status::Ok();
}

std::vector<Result<PageOob>> NandDevice::ReadOobRun(uint32_t block, uint32_t start_page,
                                                    uint32_t count) const {
  std::vector<Result<PageOob>> results;
  results.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    results.push_back(ReadOob({block, start_page + i}));
  }
  return results;
}

double NandDevice::MaxWearRatio() const {
  double worst = 0.0;
  for (uint32_t b = 0; b < blocks_.size(); ++b) {
    const double endurance = EffectiveEndurance(b);
    worst = std::max(worst, static_cast<double>(blocks_[b].info.pec) / endurance);
  }
  return worst;
}

double NandDevice::MeanPec() const {
  if (blocks_.empty()) {
    return 0.0;
  }
  uint64_t total = 0;
  for (const auto& blk : blocks_) {
    total += blk.info.pec;
  }
  return static_cast<double>(total) / static_cast<double>(blocks_.size());
}

void NandDevice::ToMetrics(obs::MetricRegistry& registry, const std::string& prefix) const {
  registry.SetCounter(prefix + "programs", stats_.programs);
  registry.SetCounter(prefix + "reads", stats_.reads);
  registry.SetCounter(prefix + "erases", stats_.erases);
  registry.SetCounter(prefix + "bytes_programmed", stats_.bytes_programmed);
  registry.SetCounter(prefix + "bytes_read", stats_.bytes_read);
  registry.SetCounter(prefix + "bit_errors_injected", stats_.bit_errors_injected);
  registry.SetCounter(prefix + "busy_us", stats_.busy_us);
  registry.SetGauge(prefix + "max_wear_ratio", MaxWearRatio());
  registry.SetGauge(prefix + "mean_pec", MeanPec());
  registry.SetHistogram(prefix + "read.rber", rber_histogram_);
}

}  // namespace sos
