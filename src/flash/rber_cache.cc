// Copyright (c) 2026 The SOS Authors. MIT License.

#include "src/flash/rber_cache.h"

#include <algorithm>
#include <cmath>

namespace sos {

RberCache::RberCache(ErrorModelKind kind, bool memoize)
    : kind_(kind), memoize_(memoize) {}

double RberCache::Rber(const PageErrorState& state, int retry_level) const {
  if (!memoize_) {
    return ComputeRber(kind_, state, retry_level);  // bit-identical default
  }
  return kind_ == ErrorModelKind::kVoltage ? VoltageRber(state, retry_level)
                                           : PhenoRber(state, retry_level);
}

void RberCache::EnsurePowGrid(ModeMemo& memo, double m) const {
  if (memo.pow_built) {
    return;
  }
  // Geometric grid: t_i = kTMinYears * ratio^i. Linear interpolation in
  // index space is linear in ln(t); over one step h = ln(ratio) the relative
  // interpolation error of t^m = exp(m ln t) is ~ (m*h)^2 / 8, which at 1024
  // points across [1e-4, 25] years is below 2e-5 -- far inside the bound.
  const double ratio = std::pow(kTMaxYears / kTMinYears,
                                1.0 / static_cast<double>(kPowGridPoints - 1));
  const double log_step = std::log(ratio);
  memo.inv_log_step = 1.0 / log_step;
  memo.pow_grid.resize(kPowGridPoints);
  for (uint32_t i = 0; i < kPowGridPoints; ++i) {
    const double t = kTMinYears * std::exp(log_step * static_cast<double>(i));
    memo.pow_grid[i] = std::pow(t, m);
  }
  memo.pow_built = true;
}

double RberCache::PowLookup(ModeMemo& memo, double m, double t) const {
  if (t <= 0.0) {
    return 0.0;
  }
  EnsurePowGrid(memo, m);
  if (t <= kTMinYears) {
    // Chord from the exact (0, 0) point. t^m with m < 1 lies above the
    // chord, but the absolute shortfall is < pow(kTMinYears, m), which is
    // negligible once multiplied by the retention coefficient.
    return memo.pow_grid[0] * (t / kTMinYears);
  }
  const double x = std::log(t / kTMinYears) * memo.inv_log_step;
  uint32_t i = static_cast<uint32_t>(x);
  double frac = x - static_cast<double>(i);
  if (i >= kPowGridPoints - 1) {  // t == kTMaxYears up to rounding
    i = kPowGridPoints - 2;
    frac = 1.0;
  }
  return memo.pow_grid[i] + frac * (memo.pow_grid[i + 1] - memo.pow_grid[i]);
}

double RberCache::PhenoRber(const PageErrorState& state, int retry_level) const {
  const double endurance = std::max(state.endurance_pec, 1.0);
  ModeMemo& memo = modes_[static_cast<size_t>(state.mode)];
  if (memo.endurance < 0.0) {
    memo.endurance = endurance;
  }
  // A retry re-reads with drift-tracking references; the phenomenological
  // mapping scales the retention age (see ComputeRber), so the same memo
  // serves every retry level.
  double t = std::max(state.retention_years, 0.0);
  if (retry_level > 0) {
    t *= 1.0 - VoltageModel::RetryTracking(retry_level);
  }
  if (memo.endurance != endurance || state.pec_at_program >= kMaxMemoPec ||
      t > kTMaxYears) {
    return ComputeRber(kind_, state, retry_level);
  }
  const CellTechInfo& info = GetCellTechInfo(state.mode);
  const uint32_t pec = state.pec_at_program;
  if (memo.base_wear_by_pec.size() <= pec) {
    memo.base_wear_by_pec.resize(
        std::max<size_t>(pec + 1, memo.base_wear_by_pec.size() * 2), -1.0);
  }
  double& base_wear = memo.base_wear_by_pec[pec];
  if (base_wear < 0.0) {
    const double wear_ratio = static_cast<double>(pec) / endurance;
    base_wear = info.base_rber *
                (1.0 + info.wear_alpha * std::pow(wear_ratio, info.wear_exponent));
  }
  const double powv = PowLookup(memo, info.retention_exponent, t);
  const double rber =
      base_wear * (1.0 + info.retention_beta * powv) +
      info.read_disturb_per_read * static_cast<double>(state.reads_since_program);
  return std::clamp(rber, 0.0, 0.5);
}

void RberCache::EnsureVoltTable(VoltTable& table, CellTech mode, int retry) const {
  if (table.built) {
    return;
  }
  const VoltageModelParams& params = VoltageModel::ParamsFor(mode);
  // Sigma axis spans fresh cells to kMaxWearRatio of effective endurance;
  // drift axis spans retention 0 .. kTMaxYears. Beyond either the caller
  // falls back to the exact model.
  table.sigma_lo = params.sigma0;
  const double sigma_hi =
      params.sigma0 *
      (1.0 + params.sigma_wear_gain * std::pow(kMaxWearRatio, params.wear_exponent));
  const double drift_hi =
      params.shift_per_year * std::pow(kTMaxYears, params.retention_exponent);
  const double dsigma = (sigma_hi - table.sigma_lo) / static_cast<double>(kSigmaPoints - 1);
  const double ddrift = drift_hi / static_cast<double>(kDriftPoints - 1);
  table.inv_dsigma = 1.0 / dsigma;
  table.inv_ddrift = 1.0 / ddrift;
  const double tracking = VoltageModel::RetryTracking(retry);
  table.f.resize(static_cast<size_t>(kSigmaPoints) * kDriftPoints);
  table.fd.resize(table.f.size());
  for (uint32_t si = 0; si < kSigmaPoints; ++si) {
    const double sigma = table.sigma_lo + dsigma * static_cast<double>(si);
    for (uint32_t di = 0; di < kDriftPoints; ++di) {
      const double drift = ddrift * static_cast<double>(di);
      const size_t idx = static_cast<size_t>(si) * kDriftPoints + di;
      const double f0 = VoltageModel::RberPhysics(mode, sigma, drift, tracking, 0.0);
      const double f1 =
          VoltageModel::RberPhysics(mode, sigma, drift, tracking, kDisturbDelta);
      table.f[idx] = f0;
      // Read disturb only nudges the lowest level's mean; over the tiny
      // disturb magnitudes the cache accepts (<= kMaxDisturbWindow, well
      // under any sigma) the response is linear to first order.
      table.fd[idx] = (f1 - f0) / kDisturbDelta;
    }
  }
  table.built = true;
}

double RberCache::VoltageRber(const PageErrorState& state, int retry_level) const {
  const VoltageModelParams& params = VoltageModel::ParamsFor(state.mode);
  const double endurance = std::max(state.endurance_pec, 1.0);
  ModeMemo& memo = modes_[static_cast<size_t>(state.mode)];
  if (memo.endurance < 0.0) {
    memo.endurance = endurance;
  }
  const double t = std::max(state.retention_years, 0.0);
  const double disturb =
      params.disturb_per_read * static_cast<double>(state.reads_since_program);
  if (memo.endurance != endurance || state.pec_at_program >= kMaxMemoPec ||
      t > kTMaxYears || disturb > kMaxDisturbWindow) {
    return ComputeRber(kind_, state, retry_level);
  }
  const uint32_t pec = state.pec_at_program;
  if (memo.sigma_by_pec.size() <= pec) {
    memo.sigma_by_pec.resize(std::max<size_t>(pec + 1, memo.sigma_by_pec.size() * 2),
                             -1.0);
  }
  double& sigma_slot = memo.sigma_by_pec[pec];
  if (sigma_slot < 0.0) {
    const double wear_ratio = static_cast<double>(pec) / endurance;
    sigma_slot = params.sigma0 *
                 (1.0 + params.sigma_wear_gain *
                            std::pow(wear_ratio, params.wear_exponent));
  }
  const double sigma = sigma_slot;
  // RetryTracking saturates at level 3, so deeper retries share its table.
  const int retry = std::clamp(retry_level, 0, kMaxRetryTables - 1);
  VoltTable& table = volt_[static_cast<size_t>(state.mode)][static_cast<size_t>(retry)];
  EnsureVoltTable(table, state.mode, retry);

  const double drift =
      params.shift_per_year * PowLookup(memo, params.retention_exponent, t);
  double x = (sigma - table.sigma_lo) * table.inv_dsigma;
  if (x > static_cast<double>(kSigmaPoints - 1)) {
    return ComputeRber(kind_, state, retry_level);  // wear ratio beyond the axis
  }
  x = std::max(x, 0.0);
  double y = std::clamp(drift * table.inv_ddrift, 0.0,
                        static_cast<double>(kDriftPoints - 1));
  uint32_t xi = std::min(static_cast<uint32_t>(x), kSigmaPoints - 2);
  uint32_t yi = std::min(static_cast<uint32_t>(y), kDriftPoints - 2);
  const double fx = x - static_cast<double>(xi);
  const double fy = y - static_cast<double>(yi);
  const size_t i00 = static_cast<size_t>(xi) * kDriftPoints + yi;
  const size_t i10 = i00 + kDriftPoints;
  auto bilerp = [&](const std::vector<double>& v) {
    const double lo = v[i00] + fy * (v[i00 + 1] - v[i00]);
    const double hi = v[i10] + fy * (v[i10 + 1] - v[i10]);
    return lo + fx * (hi - lo);
  };
  return std::clamp(bilerp(table.f) + bilerp(table.fd) * disturb, 0.0, 0.5);
}

}  // namespace sos
