// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Fault-interception interface for the NAND die.
//
// NandDevice consults an optional NandFaultHook at every operation boundary
// (program / read / erase), *after* address validation and *before* the op
// mutates device state. The hook decides whether the op proceeds, fails with
// an injected error, or is interrupted by a power cut. The concrete injector
// lives in src/fault (FaultInjector); keeping only this tiny interface in
// src/flash avoids a flash -> fault dependency cycle.
//
// Determinism contract: a hook must derive every decision from explicit
// seeds and its own op counter -- never from wall clock or ambient
// randomness -- so that a faulted run is exactly as reproducible as a clean
// one (soslint R2 applies to hooks like any other code).

#ifndef SOS_SRC_FLASH_FAULT_HOOK_H_
#define SOS_SRC_FLASH_FAULT_HOOK_H_

#include <cstdint>

#include "src/common/status.h"

namespace sos {

enum class NandOpKind : uint8_t { kProgram, kRead, kErase };

// What the hook wants done with one device operation.
struct NandFaultAction {
  enum class Kind : uint8_t {
    kNone,      // proceed normally
    kFail,      // op fails with `code` (state untouched)
    kPowerCut,  // power dies at this op; device goes dark until PowerOn()
  };

  Kind kind = Kind::kNone;
  // Error code for kFail (kUnavailable = transient, kWornOut = stuck/dead).
  StatusCode code = StatusCode::kUnavailable;
  // kPowerCut only: true models the cut landing *after* the op committed to
  // the array (durable but unacknowledged -- the classic torn-write window);
  // false models the cut before anything reached the cells.
  bool after_op = false;
  const char* reason = "";

  static NandFaultAction None() { return {}; }
  static NandFaultAction Fail(StatusCode code, const char* reason) {
    return {Kind::kFail, code, false, reason};
  }
  static NandFaultAction PowerCut(bool after_op, const char* reason) {
    return {Kind::kPowerCut, StatusCode::kPowerLost, after_op, reason};
  }
};

class NandFaultHook {
 public:
  virtual ~NandFaultHook() = default;

  // Called once per attempted (address-valid) device op. `page` is 0 for
  // erases. Implementations own their op counting.
  virtual NandFaultAction OnNandOp(NandOpKind op, uint32_t block, uint32_t page) = 0;
};

}  // namespace sos

#endif  // SOS_SRC_FLASH_FAULT_HOOK_H_
