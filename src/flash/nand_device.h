// Copyright (c) 2026 The SOS Authors. MIT License.
//
// NAND flash die simulator.
//
// Geometry follows real parts: a die is a set of erase blocks; each block is
// a stack of *wordlines*; each wordline is one physical row of cells that
// exposes one logical page per stored bit. A block of 64 wordlines therefore
// offers 64 pages in pseudo-SLC mode, 192 in pseudo-TLC, 256 in pseudo-QLC
// and 320 in native PLC -- which is exactly the density arithmetic of paper
// §4.1 (TLC -> QLC +33%, TLC -> PLC +66%).
//
// The device enforces the NAND programming constraints that matter to an FTL:
//   - pages within a block must be programmed sequentially,
//   - a programmed page cannot be reprogrammed before a block erase,
//   - the programming mode of a block can only change while it is erased.
//
// Reads inject bit errors according to ErrorModel, driven by the block's
// wear, the page's retention age and its accumulated read disturb. When
// `store_payloads` is on the device keeps the actual bytes and corrupts a
// copy on every read (end-to-end observable degradation); when off it tracks
// metadata only and reports sampled error counts, letting multi-year
// device-lifetime simulations run at scale.
//
// The device advances the shared SimClock by each operation's latency, i.e.
// it models a single serial die. Multi-die parallelism is out of scope here
// and handled analytically by the performance benchmark.

#ifndef SOS_SRC_FLASH_NAND_DEVICE_H_
#define SOS_SRC_FLASH_NAND_DEVICE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/sim_clock.h"
#include "src/common/status.h"
#include "src/common/units.h"
#include "src/flash/cell_tech.h"
#include "src/flash/error_model.h"
#include "src/flash/fault_hook.h"
#include "src/flash/rber_cache.h"
#include "src/flash/voltage_model.h"
#include "src/obs/metrics.h"

namespace sos {

struct NandConfig {
  uint32_t num_blocks = 128;
  uint32_t wordlines_per_block = 64;
  uint32_t page_size_bytes = 4096;  // one bit-layer of one wordline
  CellTech tech = CellTech::kPlc;   // physical die technology (max density)
  uint64_t seed = 1;
  bool store_payloads = true;
  // RBER source: fitted curves (default) or the physical threshold-voltage
  // model (src/flash/voltage_model.h).
  ErrorModelKind error_model = ErrorModelKind::kPhenomenological;
  // When false the die does NOT advance the shared clock on operations (the
  // caller owns timing). Used by NandPackage, which overlaps dies and
  // advances the clock to batch completion itself. Latencies are still
  // reported in each result / via CellTechInfo.
  bool advance_clock = true;
  // Memoize RBER evaluation through RberCache (lookup tables instead of
  // libm pow/erfc per read). OFF by default: the memoized value differs
  // from the exact model by up to RberCache::kRelErrorBound, which would
  // drift the goldens. Flip on for fleet-scale throughput runs.
  bool rber_memo = false;
  // Pre-aging: every block starts life with this many program/erase cycles
  // already on the odometer. The fleet simulator uses it to model devices
  // entering the population mid-life (archetype "initial age"); 0 keeps the
  // factory-fresh default every existing bench and golden assumes.
  uint32_t initial_pec = 0;

  // Page count of one block when programmed in `mode`.
  uint32_t PagesPerBlock(CellTech mode) const {
    return wordlines_per_block * static_cast<uint32_t>(BitsPerCell(mode));
  }
  // Byte capacity of one block in `mode`.
  uint64_t BlockBytes(CellTech mode) const {
    return static_cast<uint64_t>(PagesPerBlock(mode)) * page_size_bytes;
  }
  // Whole-die byte capacity in `mode`.
  uint64_t DieBytes(CellTech mode) const { return static_cast<uint64_t>(num_blocks) * BlockBytes(mode); }
};

struct PageAddr {
  uint32_t block = 0;
  uint32_t page = 0;

  bool operator==(const PageAddr&) const = default;
};

// Out-of-band (spare-area) metadata stored alongside a page's payload at
// program time. Real NAND pages carry a few dozen spare bytes under much
// stronger ECC than the data area; the FTL uses them for the reverse map so
// a mount can rebuild L2P state from flash alone. Modeled as always readable
// for a programmed page (no injected errors): OOB loss is orders of magnitude
// rarer than data-area ECC failure and out of scope for this simulator.
struct PageOob {
  uint64_t lba = 0;    // host LBA, or a reserved marker (see src/ftl)
  uint64_t seq = 0;    // monotonically increasing write sequence number
  uint32_t pool = 0;   // owning FTL pool id at program time
  uint8_t flags = 0;   // FTL-defined bits (tainted, parity, ...)

  bool operator==(const PageOob&) const = default;
};

struct ReadResult {
  std::vector<uint8_t> data;  // corrupted copy; empty when !store_payloads
  uint64_t bit_errors = 0;    // raw bit errors present in this read
  double rber = 0.0;          // model RBER used for the sample
  SimTimeUs latency_us = 0;
};

// Per-block bookkeeping, exposed read-only for FTL policies and tests.
struct BlockInfo {
  CellTech mode = CellTech::kPlc;
  uint32_t pec = 0;                // completed program/erase cycles
  uint32_t next_page = 0;          // sequential-programming cursor
  uint32_t programmed_pages = 0;   // pages currently holding data
  bool erased = true;              // true after erase until first program
};

// Cumulative device counters for benches.
struct NandStats {
  uint64_t programs = 0;
  uint64_t reads = 0;
  uint64_t erases = 0;
  uint64_t bytes_programmed = 0;
  uint64_t bytes_read = 0;
  uint64_t bit_errors_injected = 0;
  SimTimeUs busy_us = 0;
};

class NandDevice {
 public:
  // No block owner recorded (fresh die, or label cleared on retirement).
  static constexpr uint32_t kNoLabel = UINT32_MAX;

  // `clock` must outlive the device; it is advanced by operation latencies.
  NandDevice(const NandConfig& config, SimClock* clock);

  const NandConfig& config() const { return config_; }

  // --- Power & fault injection ---------------------------------------------

  // Installs (or clears, with nullptr) the fault hook consulted at every op
  // boundary. The hook must outlive the device or be cleared first.
  void SetFaultHook(NandFaultHook* hook) { fault_hook_ = hook; }

  // Cuts power: every subsequent op fails with kPowerLost until PowerOn().
  // Durable state (payloads, OOB, labels, wear counters) is retained; this
  // models an SSD losing its supply mid-workload, not losing its flash.
  void PowerCut() { powered_ = false; }
  void PowerOn() { powered_ = true; }
  bool powered() const { return powered_; }

  // --- Block mode management -----------------------------------------------

  // Sets the programming mode of an erased block. Fails with
  // kFailedPrecondition if the block currently holds data and with
  // kInvalidArgument if the mode exceeds the die's native density.
  [[nodiscard]] Status SetBlockMode(uint32_t block, CellTech mode);

  // Effective endurance of a block in its current mode (rated endurance of
  // the mode times the pseudo-mode bonus of this die).
  double EffectiveEndurance(uint32_t block) const;

  // --- Operations ----------------------------------------------------------

  // Erases a block, incrementing its P/E count. Always succeeds on a valid
  // address: worn blocks keep erasing, they just get noisier (retirement is
  // an FTL policy, not a device behaviour).
  [[nodiscard]] Status EraseBlock(uint32_t block);

  // Programs the next-expected page of a block. `data` must be at most one
  // page; shorter payloads are zero-padded. Fails on out-of-order pages or a
  // full block. `oob`, when given, is stored durably in the page's spare
  // area and survives until the block is erased.
  [[nodiscard]] Status Program(PageAddr addr, std::span<const uint8_t> data,
                               const PageOob* oob = nullptr);

  // Returns the OOB metadata of a programmed page. No error injection, no
  // clock advance (OOB reads ride along with the data-area read the FTL
  // already paid for, and the spare area is strongly protected -- see
  // PageOob). kNotFound for unprogrammed pages.
  [[nodiscard]] Result<PageOob> ReadOob(PageAddr addr) const;

  // --- Durable block labels ------------------------------------------------
  //
  // One uint32 of per-block metadata that survives erase cycles, modeling
  // the FTL superblock/root structure real drives keep in a reserved region:
  // which pool owns the block. Written outside the op path (no latency, no
  // fault interception) because label updates piggyback on ops the FTL
  // already performs.

  [[nodiscard]] Status SetBlockLabel(uint32_t block, uint32_t label);
  // kNoLabel when the block was never labeled. Asserts on a bad address.
  uint32_t block_label(uint32_t block) const;

  // Reads a programmed page, injecting bit errors per the error model.
  // `retry_level` > 0 models a READ-RETRY re-read with reference voltages
  // tracking the retention drift: lower RBER, same latency per attempt, and
  // an independent error sample (each re-read is a fresh analog measurement).
  [[nodiscard]] Result<ReadResult> Read(PageAddr addr, int retry_level = 0);

  // --- Batched multi-page entry points --------------------------------------
  //
  // One device call per contiguous page run instead of per page, for the
  // FTL's GC/migration/recovery loops. Per-page semantics (clock advance,
  // fault gating, error sampling, stats) are exactly those of the single-page
  // ops issued in sequence -- a power cut mid-run fails the remaining pages
  // with kPowerLost just as a serial loop would -- so a batched run is
  // byte-identical to the loop it replaces.

  // Reads `count` consecutive pages starting at `start_page`; result i is
  // page start_page + i.
  [[nodiscard]] std::vector<Result<ReadResult>> ReadRun(uint32_t block, uint32_t start_page,
                                                        uint32_t count, int retry_level = 0);

  // Programs payloads[i] (with oobs[i], when `oobs` is non-empty) at the
  // block's sequential program cursor. Stops at the first failure and
  // returns its Status; previously programmed pages of the run remain.
  [[nodiscard]] Status ProgramRun(uint32_t block, std::span<const std::vector<uint8_t>> payloads,
                                  std::span<const PageOob> oobs);

  // OOB metadata of `count` consecutive pages. Like ReadOob: pure -- no
  // clock advance, no error injection, no fault-hook consultation.
  [[nodiscard]] std::vector<Result<PageOob>> ReadOobRun(uint32_t block, uint32_t start_page,
                                                        uint32_t count) const;

  // Returns the stored payload of a programmed page *without* error injection
  // and without advancing time. This is the "ECC succeeded" backdoor: the
  // ECC layer models correction on error counts, and when a codeword is
  // within the correction capability the corrected output equals the
  // original bytes. Empty when the device runs payload-free.
  [[nodiscard]] Result<std::vector<uint8_t>> PeekClean(PageAddr addr) const;

  // Model RBER the page would see if read `ahead_years` from now, without
  // performing the read (no disturb, no time). Used by scrub policies to
  // predict degradation.
  [[nodiscard]] Result<double> PredictRber(PageAddr addr, double ahead_years) const;

  // --- Introspection -------------------------------------------------------

  const BlockInfo& block_info(uint32_t block) const { return blocks_[block].info; }
  const NandStats& stats() const { return stats_; }
  SimClock& clock() { return *clock_; }

  // Distribution of the model RBER used on every read of this die.
  const obs::Histogram& rber_histogram() const { return rber_histogram_; }

  // Registers this die's op/byte counters, busy time, wear summary and the
  // read RBER histogram under `prefix` (e.g. "flash.die.").
  void ToMetrics(obs::MetricRegistry& registry, const std::string& prefix = "flash.die.") const;

  // Fraction of rated endurance consumed by the most worn block, in [0, inf).
  double MaxWearRatio() const;
  // Mean P/E cycles across all blocks.
  double MeanPec() const;

 private:
  struct PageMeta {
    SimTimeUs program_time_us = 0;
    uint32_t pec_at_program = 0;
    uint32_t reads = 0;
    bool programmed = false;
    bool has_oob = false;
    PageOob oob;
  };

  struct Block {
    BlockInfo info;
    uint32_t label = kNoLabel;             // durable owner tag, survives erase
    std::vector<PageMeta> pages;           // sized for the current mode
    std::vector<std::vector<uint8_t>> data;  // payloads, iff store_payloads
  };

  [[nodiscard]] Status CheckAddr(PageAddr addr) const;
  // Power gate + fault-hook consultation for one op. On pre-op interference
  // returns the failing Status (possibly cutting power); on success stores
  // the hook's verdict in `*action` so the caller can honour a post-op cut.
  [[nodiscard]] Status GateOp(NandOpKind op, uint32_t block, uint32_t page,
                              NandFaultAction* action);
  PageErrorState ErrorStateFor(const Block& blk, const PageMeta& page) const;

  NandConfig config_;
  SimClock* clock_;
  std::vector<Block> blocks_;
  // Memoized (or, by default, passthrough-exact) RBER evaluation; its
  // internal tables are mutable so const prediction paths share them.
  RberCache rber_cache_;
  NandStats stats_;
  bool powered_ = true;
  NandFaultHook* fault_hook_ = nullptr;
  obs::Histogram rber_histogram_ = obs::Histogram::Rber();
};

}  // namespace sos

#endif  // SOS_SRC_FLASH_NAND_DEVICE_H_
