// Copyright (c) 2026 The SOS Authors. MIT License.

#include "src/flash/cell_tech.h"

#include <array>
#include <cassert>

namespace sos {

std::string_view CellTechName(CellTech tech) {
  switch (tech) {
    case CellTech::kSlc:
      return "SLC";
    case CellTech::kMlc:
      return "MLC";
    case CellTech::kTlc:
      return "TLC";
    case CellTech::kQlc:
      return "QLC";
    case CellTech::kPlc:
      return "PLC";
  }
  return "???";
}

namespace {

// Endurance: SLC ~100K (paper §2.2), MLC ~10K, TLC ~3K, QLC ~1K ([22]),
// PLC ~300 (early generations: "a factor of 6-10 versus TLC, 2 versus QLC",
// paper §4.1).
//
// base_rber anchors: fresh TLC RBER is ~1e-7..1e-6 in field studies; each
// density step costs roughly an order of magnitude.
constexpr std::array<CellTechInfo, kNumCellTechs> kCatalog = {{
    // tech, bits, PEC,   base_rber, alpha, wear_k, beta, ret_m, disturb,  tR,   tProg, tErase
    {CellTech::kSlc, 1, 100000, 1.0e-9, 15.0, 2.0, 2.0, 1.1, 1.0e-12, 25, 200, 2000},
    {CellTech::kMlc, 2, 10000, 2.0e-8, 15.0, 2.0, 2.5, 1.1, 5.0e-12, 50, 600, 3000},
    {CellTech::kTlc, 3, 3000, 2.0e-7, 15.0, 2.0, 3.0, 1.2, 2.0e-11, 75, 900, 5000},
    {CellTech::kQlc, 4, 1000, 2.0e-6, 18.0, 2.0, 4.0, 1.2, 8.0e-11, 140, 2200, 8000},
    {CellTech::kPlc, 5, 300, 2.0e-5, 20.0, 2.0, 5.0, 1.3, 3.0e-10, 280, 5000, 12000},
}};

}  // namespace

const CellTechInfo& GetCellTechInfo(CellTech tech) {
  const auto idx = static_cast<size_t>(tech);
  assert(idx < kCatalog.size());
  return kCatalog[idx];
}

double RelativeDensity(CellTech tech, CellTech baseline) {
  return static_cast<double>(BitsPerCell(tech)) / static_cast<double>(BitsPerCell(baseline));
}

double PseudoModeEnduranceBonus(CellTech physical, CellTech mode) {
  assert(static_cast<int>(mode) <= static_cast<int>(physical) &&
         "pseudo-mode cannot add bits beyond the die's native density");
  if (mode == physical) {
    return 1.0;
  }
  // Dense-generation 3D cells are larger than native cells of older
  // technologies, so each density step down buys a modest endurance bonus on
  // top of the mode's own rating. 20% per step is within the ranges reported
  // for pseudo-SLC operation of TLC parts.
  const int steps = static_cast<int>(physical) - static_cast<int>(mode);
  double bonus = 1.0;
  for (int i = 0; i < steps; ++i) {
    bonus *= 1.2;
  }
  return bonus;
}

}  // namespace sos
