// Copyright (c) 2026 The SOS Authors. MIT License.
//
// NAND cell technology catalog.
//
// SOS's central tradeoff (paper §2.2, §4.1) is between bit density and
// endurance/reliability: each added bit per cell subdivides the same physical
// voltage window into twice as many levels, which raises the raw bit error
// rate (RBER) and lowers program/erase endurance, but proportionally reduces
// silicon -- and therefore embodied carbon -- per stored bit.
//
// CellTechInfo captures the per-technology constants used across the
// simulator: bits per cell, rated endurance, the RBER model coefficients, and
// operation latencies. Values follow the ranges cited in the paper
// ([21][22][81]) and the approximate-storage literature ([70][72]):
//   SLC ~100K P/E cycles ... TLC ~3K ... QLC ~1K ... PLC a few hundred,
// i.e. PLC endurance is 6-10x below TLC and ~2x below QLC (paper §4.1).
//
// Pseudo-modes: a physical die built as PLC can be *programmed* at fewer bits
// per cell ("pseudo-QLC"/"pseudo-TLC"/"pseudo-SLC", paper [69][76]); the cell
// then enjoys the wider voltage margins of the lower density, plus a small
// endurance bonus because dense-generation 3D cells are physically larger
// than native cells of the older technology ([26-28]).

#ifndef SOS_SRC_FLASH_CELL_TECH_H_
#define SOS_SRC_FLASH_CELL_TECH_H_

#include <cstdint>
#include <string_view>

#include "src/common/units.h"

namespace sos {

enum class CellTech : uint8_t {
  kSlc = 0,  // 1 bit/cell
  kMlc = 1,  // 2 bits/cell
  kTlc = 2,  // 3 bits/cell
  kQlc = 3,  // 4 bits/cell
  kPlc = 4,  // 5 bits/cell
};

inline constexpr int kNumCellTechs = 5;

// Short display name: "SLC", "MLC", ...
std::string_view CellTechName(CellTech tech);

// Bits stored per physical cell (1..5).
constexpr int BitsPerCell(CellTech tech) { return static_cast<int>(tech) + 1; }

// Number of distinguishable voltage levels (2^bits).
constexpr int VoltageLevels(CellTech tech) { return 1 << BitsPerCell(tech); }

// Per-technology device constants. All figures are per *mode*, i.e. a PLC die
// programmed in pseudo-QLC mode uses the kQlc row (plus the pseudo bonus).
struct CellTechInfo {
  CellTech tech;
  int bits_per_cell;

  // Rated program/erase cycles before the block is considered worn out when
  // protected by nominal ECC (paper §2.1: "1-5K PEC" for modern flash).
  uint32_t rated_endurance_pec;

  // RBER model coefficients; see ErrorModel for the formula.
  double base_rber;          // fresh cell, zero retention
  double wear_alpha;         // multiplicative wear amplification at rated PEC
  double wear_exponent;      // super-linearity of wear
  double retention_beta;     // retention amplification per year
  double retention_exponent; // super-linearity of retention loss
  double read_disturb_per_read;  // additive RBER per read of the page

  // Operation latencies (typical datasheet-order values; paper §4.5 notes
  // PLC speeds match nearline/sequential use).
  SimTimeUs read_latency_us;
  SimTimeUs program_latency_us;
  SimTimeUs erase_latency_us;
};

// Catalog lookup. The returned reference is to a static constexpr table.
const CellTechInfo& GetCellTechInfo(CellTech tech);

// Density of `tech` relative to `baseline`, in stored bits for the same cell
// count: Density(kPlc, kTlc) == 5/3 ~= 1.67 (the paper's "66% improvement").
double RelativeDensity(CellTech tech, CellTech baseline);

// Endurance bonus applied when a die of `physical` technology is programmed
// in a sparser `mode` (pseudo-mode). Returns 1.0 for native operation and
// >1.0 for pseudo-modes; the bonus reflects the physically larger cells of
// dense-generation dies ([26-28], FlexFS [76]).
double PseudoModeEnduranceBonus(CellTech physical, CellTech mode);

}  // namespace sos

#endif  // SOS_SRC_FLASH_CELL_TECH_H_
