// Copyright (c) 2026 The SOS Authors. MIT License.

#include "src/flash/nand_package.h"

#include <algorithm>
#include <cassert>

namespace sos {

NandPackage::NandPackage(const NandPackageConfig& config, SimClock* clock)
    : config_(config), clock_(clock) {
  assert(config_.num_dies > 0);
  NandConfig die_config = config_.die;
  die_config.advance_clock = false;  // the package owns timing
  dies_.reserve(config_.num_dies);
  for (uint32_t d = 0; d < config_.num_dies; ++d) {
    die_config.seed = config_.die.seed + d;  // independent error streams
    dies_.push_back(std::make_unique<NandDevice>(die_config, clock));
  }
  busy_until_.assign(config_.num_dies, 0);
}

SimTimeUs NandPackage::Account(uint32_t die, SimTimeUs latency) {
  const SimTimeUs start = std::max(clock_->now(), busy_until_[die]);
  busy_until_[die] = start + latency;
  return busy_until_[die];
}

Status NandPackage::QueueProgram(GlobalPageAddr addr, std::span<const uint8_t> data) {
  if (addr.global_block >= total_blocks()) {
    return Status(StatusCode::kInvalidArgument, "global block out of range");
  }
  const uint32_t die = DieOfBlock(addr.global_block);
  Status s = dies_[die]->Program({LocalBlock(addr.global_block), addr.page}, data);
  if (s.ok()) {
    const CellTech mode = dies_[die]->block_info(LocalBlock(addr.global_block)).mode;
    Account(die, GetCellTechInfo(mode).program_latency_us);
  }
  return s;
}

Result<ReadResult> NandPackage::QueueRead(GlobalPageAddr addr, int retry_level) {
  if (addr.global_block >= total_blocks()) {
    return Status(StatusCode::kInvalidArgument, "global block out of range");
  }
  const uint32_t die = DieOfBlock(addr.global_block);
  auto read = dies_[die]->Read({LocalBlock(addr.global_block), addr.page}, retry_level);
  if (read.ok()) {
    Account(die, read.value().latency_us);
  }
  return read;
}

Status NandPackage::QueueErase(uint32_t global_block) {
  if (global_block >= total_blocks()) {
    return Status(StatusCode::kInvalidArgument, "global block out of range");
  }
  const uint32_t die = DieOfBlock(global_block);
  const CellTech mode = dies_[die]->block_info(LocalBlock(global_block)).mode;
  Status s = dies_[die]->EraseBlock(LocalBlock(global_block));
  if (s.ok()) {
    Account(die, GetCellTechInfo(mode).erase_latency_us);
  }
  return s;
}

SimTimeUs NandPackage::Drain() {
  SimTimeUs latest = clock_->now();
  for (SimTimeUs busy : busy_until_) {
    latest = std::max(latest, busy);
  }
  const SimTimeUs makespan = latest - clock_->now();
  if (latest > clock_->now()) {
    clock_->AdvanceTo(latest);
  }
  return makespan;
}

Status NandPackage::StripeWrite(uint32_t first_local_block, std::span<const uint8_t> data) {
  const uint32_t page_bytes = config_.die.page_size_bytes;
  const CellTech mode = dies_[0]->block_info(first_local_block).mode;
  const uint32_t pages_per_block = config_.die.PagesPerBlock(mode);
  std::vector<uint32_t> block(num_dies(), first_local_block);
  std::vector<uint32_t> page(num_dies(), 0);
  uint32_t die = 0;
  for (size_t off = 0; off < data.size(); off += page_bytes) {
    if (page[die] >= pages_per_block) {
      ++block[die];
      page[die] = 0;
      if (block[die] >= blocks_per_die()) {
        return Status(StatusCode::kOutOfSpace, "stripe ran past the die");
      }
    }
    const size_t len = std::min<size_t>(page_bytes, data.size() - off);
    const uint32_t global = die * blocks_per_die() + block[die];
    if (Status s = QueueProgram({global, page[die]}, data.subspan(off, len)); !s.ok()) {
      return s;
    }
    ++page[die];
    die = (die + 1) % num_dies();
  }
  Drain();
  return Status::Ok();
}

Result<NandPackage::StripeReadResult> NandPackage::StripeRead(uint32_t first_local_block,
                                                              uint64_t bytes) {
  const uint32_t page_bytes = config_.die.page_size_bytes;
  const CellTech mode = dies_[0]->block_info(first_local_block).mode;
  const uint32_t pages_per_block = config_.die.PagesPerBlock(mode);
  StripeReadResult result;
  result.data.reserve(bytes);
  std::vector<uint32_t> block(num_dies(), first_local_block);
  std::vector<uint32_t> page(num_dies(), 0);
  uint32_t die = 0;
  for (uint64_t off = 0; off < bytes; off += page_bytes) {
    if (page[die] >= pages_per_block) {
      ++block[die];
      page[die] = 0;
      if (block[die] >= blocks_per_die()) {
        return Status(StatusCode::kOutOfSpace, "stripe ran past the die");
      }
    }
    const uint32_t global = die * blocks_per_die() + block[die];
    auto read = QueueRead({global, page[die]});
    if (!read.ok()) {
      return read.status();
    }
    const uint64_t take = std::min<uint64_t>(page_bytes, bytes - off);
    if (!read.value().data.empty()) {
      result.data.insert(result.data.end(), read.value().data.begin(),
                         read.value().data.begin() + static_cast<ptrdiff_t>(take));
    }
    ++page[die];
    die = (die + 1) % num_dies();
  }
  result.makespan_us = Drain();
  return result;
}

}  // namespace sos
