// Copyright (c) 2026 The SOS Authors. MIT License.

#include "src/flash/error_model.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "src/common/rng.h"

namespace sos {

double ErrorModel::Rber(const PageErrorState& state) {
  const CellTechInfo& info = GetCellTechInfo(state.mode);
  const double endurance = std::max(state.endurance_pec, 1.0);
  const double wear_ratio = static_cast<double>(state.pec_at_program) / endurance;
  const double wear_term =
      1.0 + info.wear_alpha * std::pow(std::max(wear_ratio, 0.0), info.wear_exponent);
  const double retention_term =
      1.0 + info.retention_beta *
                std::pow(std::max(state.retention_years, 0.0), info.retention_exponent);
  const double disturb_term =
      info.read_disturb_per_read * static_cast<double>(state.reads_since_program);
  const double rber = info.base_rber * wear_term * retention_term + disturb_term;
  return std::clamp(rber, 0.0, 0.5);
}

double ErrorModel::ExpectedErrors(const PageErrorState& state, uint64_t bits) {
  return Rber(state) * static_cast<double>(bits);
}

uint64_t ErrorModel::SampleErrorCount(const PageErrorState& state, uint64_t bits,
                                      uint64_t stream_seed) {
  const double rber = Rber(state);
  if (rber <= 0.0 || bits == 0) {
    return 0;
  }
  Rng rng(stream_seed);
  return rng.NextBinomial(bits, rber);
}

uint64_t ErrorModel::InjectErrors(std::span<uint8_t> data, uint64_t error_count,
                                  uint64_t stream_seed) {
  const uint64_t total_bits = static_cast<uint64_t>(data.size()) * 8;
  if (total_bits == 0 || error_count == 0) {
    return 0;
  }
  error_count = std::min(error_count, total_bits);
  // Derive the position stream from a distinct sub-seed so the count and the
  // positions are independent.
  Rng rng(DeriveSeed({stream_seed, 0x706f736974696f6eull /* "position" */}));
  // Draw *distinct* bit positions: re-flipping the same bit would cancel the
  // error and under-deliver the sampled count. Collisions are rare because
  // error_count << total_bits in any realistic state, so rejection is cheap;
  // a retry cap guards the degenerate near-saturation case.
  std::unordered_set<uint64_t> chosen;
  chosen.reserve(static_cast<size_t>(error_count));
  uint64_t attempts = 0;
  const uint64_t max_attempts = error_count * 16 + 64;
  while (chosen.size() < error_count && attempts < max_attempts) {
    ++attempts;
    const uint64_t bit = rng.NextBounded(total_bits);
    if (!chosen.insert(bit).second) {
      continue;
    }
    const uint64_t byte = bit / 8;
    const uint8_t mask = static_cast<uint8_t>(1u << (bit % 8));
    data[byte] = static_cast<uint8_t>(data[byte] ^ mask);
  }
  return chosen.size();
}

}  // namespace sos
