// Copyright (c) 2026 The SOS Authors. MIT License.

#include "src/flash/voltage_model.h"

#include <algorithm>
#include <array>
#include <cmath>

namespace sos {
namespace {

// P(Gaussian(mu, sigma) crosses a reference at distance d) = Q(d / sigma).
double TailProb(double distance, double sigma) {
  if (sigma <= 0.0) {
    return distance > 0.0 ? 0.0 : 1.0;
  }
  return 0.5 * std::erfc(distance / (sigma * std::sqrt(2.0)));
}

// Core computation: average bit error rate over a uniformly-distributed
// level population with retention drift, wear-widened sigma, and references
// optionally tracking a fraction of the drift.
double RberFromPhysics(const VoltageModelParams& params, double sigma, double drift,
                       double tracking, double disturb_up) {
  const int levels = params.levels;
  const double spacing = 1.0 / static_cast<double>(levels - 1);
  double crossings = 0.0;
  for (int i = 0; i < levels; ++i) {
    // Level mean after retention loss (proportional to stored charge) and
    // read-disturb upshift on the lowest levels.
    const double fresh_mean = static_cast<double>(i) * spacing;
    double mean = fresh_mean - drift * fresh_mean;
    if (i == 0) {
      mean += disturb_up;
    }
    // Reference below (between i-1 and i) and above (between i and i+1),
    // each tracking `tracking` of the *average* drift at that boundary.
    if (i > 0) {
      const double fresh_ref = (static_cast<double>(i - 1) + 0.5) * spacing;
      const double ref = fresh_ref - tracking * drift * fresh_ref;
      crossings += TailProb(mean - ref, sigma);  // read below the lower ref
    }
    if (i < levels - 1) {
      const double fresh_ref = (static_cast<double>(i) + 0.5) * spacing;
      const double ref = fresh_ref - tracking * drift * fresh_ref;
      crossings += TailProb(ref - mean, sigma);  // read above the upper ref
    }
  }
  // Uniform level usage; Gray coding: one misread = one flipped bit of b.
  const double per_cell = crossings / static_cast<double>(levels);
  return std::clamp(per_cell / static_cast<double>(params.bits), 0.0, 0.5);
}

// Solves sigma0 so the fresh-cell RBER matches the catalog's base_rber.
double CalibrateSigma(const VoltageModelParams& params, double target_rber) {
  double lo = 1e-5;
  double hi = 0.5;
  for (int iter = 0; iter < 80; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (RberFromPhysics(params, mid, 0.0, 0.0, 0.0) < target_rber) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

std::array<VoltageModelParams, kNumCellTechs> BuildTable() {
  std::array<VoltageModelParams, kNumCellTechs> table{};
  for (int t = 0; t < kNumCellTechs; ++t) {
    const CellTech tech = static_cast<CellTech>(t);
    const CellTechInfo& info = GetCellTechInfo(tech);
    VoltageModelParams params;
    params.bits = info.bits_per_cell;
    params.levels = VoltageLevels(tech);
    // Retention and wear coefficients: denser cells have tighter margins, so
    // the same physical drift hurts them more; the per-year drift itself is
    // roughly technology-independent (same oxide physics).
    params.shift_per_year = 0.004;
    params.retention_exponent = info.retention_exponent;
    params.sigma_wear_gain = 0.5 + 0.15 * static_cast<double>(info.bits_per_cell);
    params.wear_exponent = info.wear_exponent / 2.0;  // sigma ~ sqrt(damage)
    params.disturb_per_read = info.read_disturb_per_read * 10.0;  // window units
    params.sigma0 = CalibrateSigma(params, info.base_rber);
    table[static_cast<size_t>(t)] = params;
  }
  return table;
}

const std::array<VoltageModelParams, kNumCellTechs>& Table() {
  static const std::array<VoltageModelParams, kNumCellTechs> table = BuildTable();
  return table;
}

}  // namespace

const VoltageModelParams& VoltageModel::ParamsFor(CellTech mode) {
  return Table()[static_cast<size_t>(mode)];
}

double VoltageModel::RetryTracking(int retry_level) {
  switch (retry_level) {
    case 0:
      return 0.0;
    case 1:
      return 0.7;
    case 2:
      return 0.9;
    default:
      return 0.97;
  }
}

double VoltageModel::RberPhysics(CellTech mode, double sigma, double drift,
                                 double tracking, double disturb_up) {
  return RberFromPhysics(ParamsFor(mode), sigma, drift, tracking, disturb_up);
}

double VoltageModel::RberAt(const PageErrorState& state, int retry_level) {
  const VoltageModelParams& params = ParamsFor(state.mode);
  const double endurance = std::max(state.endurance_pec, 1.0);
  const double wear_ratio =
      std::max(0.0, static_cast<double>(state.pec_at_program) / endurance);
  const double sigma =
      params.sigma0 *
      (1.0 + params.sigma_wear_gain * std::pow(wear_ratio, params.wear_exponent));
  const double drift = params.shift_per_year *
                       std::pow(std::max(state.retention_years, 0.0),
                                params.retention_exponent);
  const double disturb =
      params.disturb_per_read * static_cast<double>(state.reads_since_program);
  return RberFromPhysics(params, sigma, drift, RetryTracking(retry_level), disturb);
}

double ComputeRber(ErrorModelKind kind, const PageErrorState& state, int retry_level) {
  if (kind == ErrorModelKind::kVoltage) {
    return VoltageModel::RberAt(state, retry_level);
  }
  // The phenomenological model has no reference-tracking notion; model a
  // retry as recovering most of the retention component, mirroring what the
  // physical model's tracking achieves.
  if (retry_level <= 0) {
    return ErrorModel::Rber(state);
  }
  PageErrorState tracked = state;
  tracked.retention_years *= 1.0 - VoltageModel::RetryTracking(retry_level);
  return ErrorModel::Rber(tracked);
}

}  // namespace sos
