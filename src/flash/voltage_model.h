// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Physical threshold-voltage cell model.
//
// The phenomenological ErrorModel fits RBER curves directly; this module
// derives them from the §2.1 mechanics instead: a cell stores one of 2^b
// charge levels in a fixed voltage window, each level a Gaussian of width
// sigma; reading compares against the 2^b - 1 reference voltages between
// adjacent level means. Errors are adjacent-level misreads, so with Gray
// coding each misread flips exactly one of the b bits.
//
// Degradation enters physically:
//   - wear widens the Gaussians (oxide damage -> threshold dispersion),
//   - retention shifts level means downward proportionally to their charge
//     (higher levels leak more),
//   - read disturb nudges low levels upward slightly.
//
// Because references are calibrated for fresh cells, retention shift makes
// the distributions drift off-center -- which is exactly why real
// controllers implement READ RETRY: re-reading with references shifted to
// track the drift recovers most retention errors at the cost of extra read
// latency. RberAt exposes `retry_level` for that mechanism.
//
// Per-technology sigma is auto-calibrated at startup so the fresh-cell RBER
// matches the catalog's base_rber; wear/retention coefficients are chosen so
// the curves track the phenomenological model within a small factor (the
// validation is test- and bench-enforced, see voltage sections of E3/E7).

#ifndef SOS_SRC_FLASH_VOLTAGE_MODEL_H_
#define SOS_SRC_FLASH_VOLTAGE_MODEL_H_

#include "src/flash/cell_tech.h"
#include "src/flash/error_model.h"

namespace sos {

struct VoltageModelParams {
  int bits = 3;
  int levels = 8;
  double sigma0 = 0.01;          // fresh per-level std dev (window = 1.0)
  double sigma_wear_gain = 0.6;  // sigma multiplier added at rated endurance
  double wear_exponent = 1.0;
  double shift_per_year = 0.004; // top-level mean shift per year^m (window units)
  double retention_exponent = 0.9;
  double disturb_per_read = 2e-9;  // low-level upshift per read
};

class VoltageModel {
 public:
  // Calibrated parameters for a programming mode (cached static table).
  static const VoltageModelParams& ParamsFor(CellTech mode);

  // Raw bit error rate for the page state, optionally with read-retry
  // reference tracking: retry 0 reads at fresh references; each retry level
  // tracks more of the retention drift (0.0 / 0.7 / 0.9 / 0.97 of it).
  static double RberAt(const PageErrorState& state, int retry_level = 0);

  // The drift-tracking fraction applied at a retry level (exposed for tests).
  static double RetryTracking(int retry_level);

  // Core physics evaluation at explicit (sigma, drift, disturb) operating
  // point, bypassing the per-state parameter derivation. Exposed so the
  // memoization tables in src/flash/rber_cache.cc are built by *this* TU's
  // arithmetic (identical floating-point contraction) rather than a
  // re-implementation, and for model validation tests.
  static double RberPhysics(CellTech mode, double sigma, double drift, double tracking,
                            double disturb_up);
};

// Which RBER source a simulated die uses.
enum class ErrorModelKind : uint8_t {
  kPhenomenological,  // fitted curves (ErrorModel::Rber) -- the default
  kVoltage,           // physical threshold-voltage model (VoltageModel)
};

// Dispatches to the configured model.
double ComputeRber(ErrorModelKind kind, const PageErrorState& state, int retry_level = 0);

}  // namespace sos

#endif  // SOS_SRC_FLASH_VOLTAGE_MODEL_H_
