// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Memoized RBER evaluation for the NAND read hot path.
//
// ComputeRber dominates the inner loop of lifetime simulations: the
// phenomenological model costs two libm pow() calls per read, and the
// voltage model a full 2*levels erfc() sweep (64 tail evaluations for PLC).
// Both are pure functions of a handful of slowly-varying inputs, so this
// cache trades them for table lookups:
//
//   phenomenological   rber = [base * wear_term](pec)            exact memo
//                             * (1 + beta * pow(t, m))           interpolated
//                             + disturb * reads                  exact
//
//   voltage            sigma(pec)                                exact memo
//                      drift = shift * pow(t, m)                 interpolated
//                      F(sigma, drift) + dF/ddisturb * disturb   bilinear
//
// pow(t, m) is interpolated on a geometric (log-spaced) grid over
// t in [kTMinYears, kTMaxYears]; below the grid the curve is chorded from
// the exact zero point, above it (and for any other out-of-range input:
// pec >= 2^20, wear ratio > 2, disturb > kMaxDisturbWindow, or an endurance
// that changed under the cache) the cache falls back to the exact model.
// Voltage tables are built lazily per (mode, retry) by calling
// VoltageModel::RberPhysics -- the model's own arithmetic -- at the grid
// nodes, never by re-implementing the physics here.
//
// Accuracy contract: kRelErrorBound/kAbsErrorBound below, enforced over the
// full wear x retention x retry grid for every cell tech by
// tests/rber_memo_test.cc.
//
// Determinism contract: memoization is OPT-IN (NandConfig::rber_memo,
// default false). With it off, Rber() is a pure passthrough to ComputeRber
// and every simulated byte stays identical to the historical goldens. With
// it on, results differ from exact by at most the documented bound -- use it
// for fleet-scale throughput runs, not for golden comparisons.

#ifndef SOS_SRC_FLASH_RBER_CACHE_H_
#define SOS_SRC_FLASH_RBER_CACHE_H_

#include <array>
#include <cstdint>
#include <vector>

#include "src/flash/cell_tech.h"
#include "src/flash/error_model.h"
#include "src/flash/voltage_model.h"

namespace sos {

class RberCache {
 public:
  // Documented quantization-error bound of the memoized path:
  //   |memo - exact| <= kRelErrorBound * exact + kAbsErrorBound
  static constexpr double kRelErrorBound = 0.01;
  static constexpr double kAbsErrorBound = 1e-9;

  // Inputs beyond these limits take the exact fallback path.
  static constexpr double kTMinYears = 1e-4;
  static constexpr double kTMaxYears = 25.0;
  static constexpr uint32_t kMaxMemoPec = 1u << 20;
  static constexpr double kMaxWearRatio = 2.0;
  static constexpr double kMaxDisturbWindow = 2e-4;  // window units (voltage)

  RberCache(ErrorModelKind kind, bool memoize);

  // RBER for `state` at `retry_level`. Pure passthrough to ComputeRber when
  // memoization is off. const (with mutable tables) because the prediction
  // entry points on NandDevice are const.
  double Rber(const PageErrorState& state, int retry_level) const;

  bool memoizing() const { return memoize_; }

 private:
  // Grid densities are sized so the worst-case bilinear interpolation error
  // over the full test grid stays well under kRelErrorBound. The binding
  // case is fresh cells (sigma = sigma0): RBER sits deepest in the erfc
  // tail there, so its *relative* curvature along the drift axis is
  // maximal, which is why the drift axis is the densest. Error shrinks
  // quadratically with node spacing (~2.5x margin measured by
  // tests/rber_memo_test.cc at these densities).
  // soslint:allow(R10) interpolation grid density, not a size unit
  static constexpr uint32_t kPowGridPoints = 1024;
  static constexpr uint32_t kSigmaPoints = 257;
  static constexpr uint32_t kDriftPoints = 769;
  static constexpr int kMaxRetryTables = 4;  // tracking saturates at level 3
  static constexpr double kDisturbDelta = 2e-5;  // finite-difference step

  // Per-mode memo state. `endurance` guards the pec-keyed vectors: all
  // blocks of one mode on one die share an effective endurance, but if a
  // caller ever presents a different value the cache refuses (exact path)
  // rather than serving stale entries.
  struct ModeMemo {
    double endurance = -1.0;
    std::vector<double> base_wear_by_pec;  // base_rber * wear_term(pec); <0 = empty
    std::vector<double> sigma_by_pec;      // voltage sigma(pec); <0 = empty
    bool pow_built = false;
    double inv_log_step = 0.0;             // 1 / ln(grid ratio)
    std::vector<double> pow_grid;          // pow(t_i, retention_exponent)
  };

  // Bilinear (sigma, drift) table of the voltage model's RBER surface plus
  // its first-order read-disturb sensitivity.
  struct VoltTable {
    bool built = false;
    double sigma_lo = 0.0;
    double inv_dsigma = 0.0;
    double inv_ddrift = 0.0;
    std::vector<double> f;   // kSigmaPoints * kDriftPoints
    std::vector<double> fd;  // dF/ddisturb at the same nodes
  };

  double PhenoRber(const PageErrorState& state, int retry_level) const;
  double VoltageRber(const PageErrorState& state, int retry_level) const;

  // pow(t, m) via the mode's log-spaced grid; t must be in [0, kTMaxYears].
  double PowLookup(ModeMemo& memo, double m, double t) const;
  void EnsurePowGrid(ModeMemo& memo, double m) const;
  void EnsureVoltTable(VoltTable& table, CellTech mode, int retry) const;

  ErrorModelKind kind_;
  bool memoize_;
  mutable std::array<ModeMemo, kNumCellTechs> modes_;
  mutable std::array<std::array<VoltTable, kMaxRetryTables>, kNumCellTechs> volt_;
};

}  // namespace sos

#endif  // SOS_SRC_FLASH_RBER_CACHE_H_
