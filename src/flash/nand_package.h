// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Multi-die NAND package with per-die command queuing.
//
// Real devices hide the slow cell operations behind parallelism: a package
// stripes sequential data across several dies so N reads overlap and the
// effective throughput approaches N x the single-die rate (§4.5: SPARE
// traffic is sequential, which is exactly the access pattern that stripes
// well; existing PLC SSDs are built for such nearline streams [14]).
//
// The package owns its dies in caller-timed mode (advance_clock=false) and
// models timing itself: each die has a busy-until horizon; a queued command
// starts at max(now, busy[die]) and completes after the operation latency.
// Drain() advances the shared clock to the last completion, returning the
// batch makespan. Issuing through the package with queue depth 1 degenerates
// to the serial single-die model used by the FTL.
//
// Addressing: global block id g maps to die g / blocks_per_die, local block
// g % blocks_per_die. Sequential *pages* of a stream should be written
// die-round-robin (StripeWrite/StripeRead helpers) to expose parallelism.

#ifndef SOS_SRC_FLASH_NAND_PACKAGE_H_
#define SOS_SRC_FLASH_NAND_PACKAGE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/flash/nand_device.h"

namespace sos {

struct NandPackageConfig {
  NandConfig die;           // per-die geometry (advance_clock is forced off)
  uint32_t num_dies = 4;
};

struct GlobalPageAddr {
  uint32_t global_block = 0;
  uint32_t page = 0;
};

class NandPackage {
 public:
  NandPackage(const NandPackageConfig& config, SimClock* clock);

  uint32_t num_dies() const { return static_cast<uint32_t>(dies_.size()); }
  uint32_t blocks_per_die() const { return config_.die.num_blocks; }
  uint32_t total_blocks() const { return num_dies() * blocks_per_die(); }

  NandDevice& die(uint32_t i) { return *dies_[i]; }
  uint32_t DieOfBlock(uint32_t global_block) const { return global_block / blocks_per_die(); }
  uint32_t LocalBlock(uint32_t global_block) const { return global_block % blocks_per_die(); }

  // --- Queued operations ----------------------------------------------------
  // Execute the state change immediately (deterministic data path) but
  // account the latency on the owning die's queue. Results are valid right
  // away; *time* is settled by Drain().

  [[nodiscard]] Status QueueProgram(GlobalPageAddr addr, std::span<const uint8_t> data);
  [[nodiscard]] Result<ReadResult> QueueRead(GlobalPageAddr addr, int retry_level = 0);
  [[nodiscard]] Status QueueErase(uint32_t global_block);

  // Advances the clock to the completion of everything queued since the last
  // drain and returns the batch makespan in microseconds.
  SimTimeUs Drain();

  // --- Striping helpers -------------------------------------------------------
  // Writes/reads `pages` sequential pages of a stream, one page per die in
  // round-robin order starting at (start_block, page 0) of each die's
  // current cursor. Simplified bulk API for throughput studies; the general
  // FTL path manages blocks itself.

  // Programs `data` split into page-size chunks across dies; each die fills
  // its own blocks sequentially starting from local block `first_local_block`.
  [[nodiscard]] Status StripeWrite(uint32_t first_local_block, std::span<const uint8_t> data);

  // Reads the same layout back; returns makespan via Drain() internally.
  struct StripeReadResult {
    std::vector<uint8_t> data;
    SimTimeUs makespan_us = 0;
  };
  [[nodiscard]] Result<StripeReadResult> StripeRead(uint32_t first_local_block, uint64_t bytes);

 private:
  NandPackageConfig config_;
  SimClock* clock_;
  std::vector<std::unique_ptr<NandDevice>> dies_;
  std::vector<SimTimeUs> busy_until_;

  // Accounts an op of `latency` on `die`, returning its completion time.
  SimTimeUs Account(uint32_t die, SimTimeUs latency);
};

}  // namespace sos

#endif  // SOS_SRC_FLASH_NAND_PACKAGE_H_
