// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Raw bit error rate (RBER) model and deterministic bit-error injection.
//
// The model combines the three error mechanisms the paper leans on (§2.1,
// §4.2-4.3):
//
//   RBER(pec, t, r) = base * (1 + alpha * (pec / endurance)^k)   [wear]
//                          * (1 + beta * (t_years)^m)            [retention]
//                   + disturb * r                                 [read disturb]
//
// where `pec` is the block's program/erase cycle count at program time,
// `t_years` is the time the data has rested since being programmed, and `r`
// is the number of reads the page has absorbed since program. Coefficients
// live in CellTechInfo per technology/mode.
//
// Determinism: error injection derives its random stream from
// (device_seed, block, page, pec, read_count), so re-running a simulation or
// re-reading the same page state produces identical corrupted bytes.

#ifndef SOS_SRC_FLASH_ERROR_MODEL_H_
#define SOS_SRC_FLASH_ERROR_MODEL_H_

#include <cstdint>
#include <span>

#include "src/flash/cell_tech.h"

namespace sos {

// Wear/retention/disturb inputs for one page read.
struct PageErrorState {
  CellTech mode = CellTech::kTlc;     // programming mode of the block
  double endurance_pec = 3000.0;      // effective endurance (incl. pseudo bonus)
  uint32_t pec_at_program = 0;        // block P/E count when page was written
  double retention_years = 0.0;       // time since program
  uint32_t reads_since_program = 0;   // accumulated read disturb
};

class ErrorModel {
 public:
  // Raw bit error rate for a page in the given state; clamped to [0, 0.5].
  static double Rber(const PageErrorState& state);

  // Expected number of bit errors in a payload of `bits` bits.
  static double ExpectedErrors(const PageErrorState& state, uint64_t bits);

  // Samples the number of bit errors for a payload of `bits` bits using a
  // stream derived from `stream_seed`; deterministic for equal inputs.
  static uint64_t SampleErrorCount(const PageErrorState& state, uint64_t bits,
                                   uint64_t stream_seed);

  // Flips `error_count` distinct bits of `data` in place, positions drawn
  // from the `stream_seed` stream. Returns the number of bits flipped
  // (== error_count unless the payload has fewer bits).
  static uint64_t InjectErrors(std::span<uint8_t> data, uint64_t error_count,
                               uint64_t stream_seed);
};

}  // namespace sos

#endif  // SOS_SRC_FLASH_ERROR_MODEL_H_
