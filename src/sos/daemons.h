// Copyright (c) 2026 The SOS Authors. MIT License.
//
// The SOS host daemons (paper §4.2-4.5).
//
// MigrationDaemon   -- the periodic privileged scanner of §4.4: classifies
//                      every file and demotes low-priority data from the
//                      SYS partition to SPARE (and optionally promotes data
//                      the model now considers critical). The decision
//                      threshold encodes "erring on the side of caution".
// DegradationMonitor-- the scrubber of §4.3: predicts near-future RBER for
//                      approximate-pool pages, preemptively refreshes pages
//                      on dangerously degraded blocks, and (when a cloud
//                      backup exists) repairs files whose local copy has
//                      visibly degraded. SOS does not *rely* on the cloud;
//                      without one, at-risk files are only counted.
// AutoDeleteManager -- the §4.5 fallback: when free space drops below the
//                      low-water mark (3% in the paper), deletes the
//                      SPARE-resident files a deletion predictor ranks most
//                      likely to be deleted by the user anyway, until the
//                      high-water mark is restored.

#ifndef SOS_SRC_SOS_DAEMONS_H_
#define SOS_SRC_SOS_DAEMONS_H_

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/classify/classifier.h"
#include "src/host/file_system.h"
#include "src/obs/trace.h"
#include "src/sos/sos_device.h"

namespace sos {

// ---------------------------------------------------------------------------
// Migration daemon.
// ---------------------------------------------------------------------------

struct MigrationDaemonConfig {
  // Demote to SPARE when P(expendable) >= this. Higher = more conservative
  // (fewer precious files at risk, less density benefit realized).
  double demote_threshold = 0.6;
  // Promote back to SYS when P(expendable) <= this (preferences drift, §4.4).
  double promote_threshold = 0.2;
  bool allow_promotion = true;
  // Never demote files younger than this (fresh data is still hot and its
  // access features unsettled).
  SimTimeUs min_age_us = kUsPerDay;
  // User preference bias per file type, added to the classifier score before
  // thresholding (paper §4.4: "prompting users for general preferences on
  // device setup"). Negative values protect a type ("never risk my photos"),
  // positive values volunteer it ("my downloads are disposable").
  std::array<double, kNumFileTypes> type_score_bias{};
};

class MigrationDaemon {
 public:
  struct RunStats {
    uint64_t scanned = 0;
    uint64_t demoted = 0;
    uint64_t promoted = 0;
    uint64_t demote_failures = 0;  // e.g. SPARE out of space
  };

  // `fs`, `placements` and `model` must outlive the daemon. `placements`
  // mints the demotion/promotion handles (degradable vs critical, with the
  // file's lifetime hint) against the device under reclassification.
  MigrationDaemon(ExtentFileSystem* fs, PlacementDirectory* placements,
                  const BinaryClassifier* model, const MigrationDaemonConfig& config);

  // One periodic review pass at simulated time `now`.
  RunStats RunOnce(SimTimeUs now);

  const RunStats& lifetime_stats() const { return lifetime_; }

 private:
  ExtentFileSystem* fs_;
  PlacementDirectory* placements_;
  const BinaryClassifier* model_;
  MigrationDaemonConfig config_;
  RunStats lifetime_;
};

// ---------------------------------------------------------------------------
// Degradation monitor (scrubber).
// ---------------------------------------------------------------------------

// Pristine-copy oracle standing in for the user's cloud backup (§4.3). The
// lifetime simulation stores file content here at create time.
class CloudBackup {
 public:
  virtual ~CloudBackup() = default;
  virtual bool Has(uint64_t file_id) const = 0;
  virtual std::vector<uint8_t> Fetch(uint64_t file_id) const = 0;
  virtual void Store(uint64_t file_id, std::span<const uint8_t> content) = 0;
  virtual void Forget(uint64_t file_id) = 0;
};

class InMemoryCloud final : public CloudBackup {
 public:
  bool Has(uint64_t file_id) const override { return store_.contains(file_id); }
  std::vector<uint8_t> Fetch(uint64_t file_id) const override { return store_.at(file_id); }
  void Store(uint64_t file_id, std::span<const uint8_t> content) override {
    store_[file_id].assign(content.begin(), content.end());
  }
  void Forget(uint64_t file_id) override { store_.erase(file_id); }

 private:
  std::unordered_map<uint64_t, std::vector<uint8_t>> store_;
};

struct DegradationMonitorConfig {
  // Prediction horizon: refresh pages that would cross the threshold within
  // one scrub period.
  double lookahead_years = 0.25;
  // Refresh a page when its predicted RBER exceeds this fraction of the
  // pool's quality budget (the SPARE retirement bound). 0.15 of the 2e-3
  // default budget is ~3e-4 raw BER -- the point where video quality dips
  // below ~0.8 and the paper's "dangerously degraded" rescue should fire.
  double refresh_fraction = 0.15;
  // Attempt cloud repair of a file when a read of it comes back degraded
  // with CRC mismatch.
  bool cloud_repair = true;
};

class DegradationMonitor {
 public:
  struct RunStats {
    uint64_t pages_scanned = 0;
    uint64_t pages_refreshed = 0;
    uint64_t files_repaired = 0;
    uint64_t files_at_risk = 0;  // degraded, no cloud copy available
  };

  // `fs` and `device` must outlive the monitor; `cloud` may be null.
  DegradationMonitor(ExtentFileSystem* fs, SosDevice* device,
                     const DegradationMonitorConfig& config, CloudBackup* cloud = nullptr);

  RunStats RunOnce(SimTimeUs now);

  const RunStats& lifetime_stats() const { return lifetime_; }

 private:
  // Device-level scrub of one approximate pool.
  void ScrubPool(uint32_t pool_id, RunStats& stats);

  ExtentFileSystem* fs_;
  SosDevice* device_;
  DegradationMonitorConfig config_;
  CloudBackup* cloud_;
  RunStats lifetime_;
};

// ---------------------------------------------------------------------------
// Auto-delete fallback.
// ---------------------------------------------------------------------------

struct AutoDeleteConfig {
  double low_water_free = 0.03;   // activate below 3% free (paper §4.5)
  double high_water_free = 0.06;  // delete until this much is free
  // Only delete files the predictor scores at least this likely-to-delete.
  double min_delete_score = 0.3;
};

class AutoDeleteManager {
 public:
  struct RunStats {
    uint64_t activations = 0;
    uint64_t files_deleted = 0;
    uint64_t bytes_freed = 0;
    uint64_t exhausted = 0;  // ran out of candidates before high water
  };

  AutoDeleteManager(ExtentFileSystem* fs, const BinaryClassifier* deletion_model,
                    const AutoDeleteConfig& config);

  RunStats RunOnce(SimTimeUs now);

  const RunStats& lifetime_stats() const { return lifetime_; }

  // Optional event trace of activations and per-file trims. `sink` must
  // outlive the manager; null disables tracing.
  void SetTraceSink(obs::TraceSink* sink) { trace_ = sink; }

 private:
  double FreeFraction() const;

  ExtentFileSystem* fs_;
  const BinaryClassifier* deletion_model_;
  AutoDeleteConfig config_;
  RunStats lifetime_;
  obs::TraceSink* trace_ = nullptr;
};

}  // namespace sos

#endif  // SOS_SRC_SOS_DAEMONS_H_
