// Copyright (c) 2026 The SOS Authors. MIT License.
//
// SosDevice: the paper's storage device (Figure 2), as a BlockDevice.
//
// A PLC die partitioned into three FTL pools:
//   SYS    -- pseudo-QLC, LDPC-grade ECC, intra-block parity stripes, wear
//             leveling on. Holds everything the host labels critical. New
//             data always lands here first (paper §4.4: "new file data will
//             first be written to high-endurance pseudo-QLC memory").
//   SPARE  -- native PLC, weak/no ECC, wear leveling off ([73]). Holds data
//             the classifier demoted; reads may return degraded bytes.
//   RESCUE -- pseudo-TLC pool that adopts PLC blocks retired out of SPARE
//             (flexible resuscitation, §4.3/[76]). Also approximate.
//
// Hosts direct placement through PlacementHandles (src/host/placement.h):
// a handle's declared durability picks the reliability domain (kCritical ->
// SYS, kDegradable -> SPARE/RESCUE), its lifetime hint feeds the FTL's
// lifetime-aware allocator, and Reclassify() migrates a block between
// domains. Capacity variance propagates from block retirement up through
// the BlockDevice capacity listener.
//
// Baseline devices for the E12 comparison (pure TLC / pure QLC, uniform
// strong ECC) are built with MakeBaselineDevice().

#ifndef SOS_SRC_SOS_SOS_DEVICE_H_
#define SOS_SRC_SOS_SOS_DEVICE_H_

#include <memory>
#include <optional>

#include "src/ftl/ftl.h"
#include "src/host/block_device.h"

namespace sos {

struct SosDeviceConfig {
  NandConfig nand;               // tech should be kPlc for the real design
  double sys_share = 0.5;        // fraction of physical blocks for SYS
  EccPreset sys_ecc = EccPreset::kLdpc;
  uint32_t sys_parity_stripe = 16;  // every 16th SYS page is XOR parity
  EccPreset spare_ecc = EccPreset::kNone;  // approximate storage
  // Retirement RBER bound for the ECC-less pools: the block leaves service
  // when one year of retention would exceed this raw error rate. 2e-3 keeps
  // video quality above ~0.8 (see media quality model).
  double spare_retire_rber = 2e-3;
  GcPolicy gc_policy = GcPolicy::kGreedy;
  double op_fraction = 0.07;
  // Two-phase (batch-read, then re-append) block evacuation; see
  // FtlConfig::batched_relocation. Off by default to keep goldens.
  bool batched_relocation = false;
  // How the FTL consumes placement directives (per-handle append points,
  // lifetime-aware allocation). kLegacy keeps the historical write schedule
  // byte-identical; see PlacementPolicy in src/ftl/ftl.h.
  PlacementPolicy placement_policy = PlacementPolicy::kLegacy;

  // Optional pseudo-SLC write staging (paper §4.4 extension: "new file data
  // will first be written to high-endurance memory"). A small pool of blocks
  // programmed at 1 bit/cell absorbs incoming SYS writes at SLC speed and
  // endurance; a background flush migrates staged data into pseudo-QLC.
  bool enable_slc_staging = false;
  double stage_share = 0.06;          // fraction of blocks, carved out of SYS
  double stage_flush_high = 0.70;     // flush when stage fills past this...
  double stage_flush_low = 0.30;      // ...down to this utilization

  SosDeviceConfig() { nand.tech = CellTech::kPlc; }
};

class SosDevice final : public BlockDevice {
 public:
  // `clock` must outlive the device.
  SosDevice(const SosDeviceConfig& config, SimClock* clock);

  // --- BlockDevice ---------------------------------------------------------

  uint32_t block_size() const override;
  uint64_t capacity_blocks() const override;
  [[nodiscard]] Result<PlacementHandle> OpenPlacement(const PlacementSpec& spec) override;
  [[nodiscard]] Status ClosePlacement(PlacementHandle handle) override;
  [[nodiscard]] Result<PlacementSpec> DescribePlacement(PlacementHandle handle) const override;
  [[nodiscard]] Status Write(uint64_t lba, std::span<const uint8_t> data,
                             PlacementHandle handle) override;
  [[nodiscard]] Result<BlockReadResult> Read(uint64_t lba) override;
  [[nodiscard]] Status Trim(uint64_t lba) override;
  [[nodiscard]] Status Reclassify(uint64_t lba, PlacementHandle handle) override;
  void SetCapacityListener(CapacityListener listener) override;

  // --- Batched entry points (serve-layer coalescing, DESIGN.md §14) -------

  // Reads `count` consecutive LBAs; result i is lba + i. Contiguous
  // physical stretches go through one NandDevice::ReadRun (Ftl::ReadRun);
  // semantics per page are exactly Read()'s.
  [[nodiscard]] std::vector<Result<BlockReadResult>> ReadBatch(uint64_t lba, uint32_t count);

  // Writes pages[i] at lba + i under `handle`. The primary pool's stretch
  // goes through the ProgramRun-backed Ftl::WriteRun; pages it cannot place
  // (pool overflow, transient faults) fall back to the serial Write path
  // with its durability-ordered overflow. Per-page status mirrors the
  // equivalent serial loop; after a power cut the remaining pages report
  // kPowerLost without touching the dark device.
  [[nodiscard]] std::vector<Status> WriteBatch(uint64_t lba,
                                               std::span<const std::vector<uint8_t>> pages,
                                               PlacementHandle handle);

  // --- SOS introspection ---------------------------------------------------

  Ftl& ftl() { return *ftl_; }
  const Ftl& ftl() const { return *ftl_; }

  uint32_t sys_pool() const { return sys_pool_; }
  uint32_t spare_pool() const { return spare_pool_; }
  uint32_t rescue_pool() const { return rescue_pool_; }
  std::optional<uint32_t> stage_pool() const { return stage_pool_; }

  PoolSnapshot SysSnapshot() const { return ftl_->Snapshot(sys_pool_); }
  PoolSnapshot SpareSnapshot() const { return ftl_->Snapshot(spare_pool_); }
  PoolSnapshot RescueSnapshot() const { return ftl_->Snapshot(rescue_pool_); }

  // --- Pseudo-SLC staging (only with enable_slc_staging) -------------------

  bool staging_enabled() const { return stage_pool_.has_value(); }
  PoolSnapshot StageSnapshot() const { return ftl_->Snapshot(*stage_pool_); }

  // Migrates staged data into SYS until stage utilization reaches
  // `stage_flush_low` (or the stage empties). Returns pages flushed. Called
  // automatically when the stage passes its high-water mark; hosts may also
  // call it during idle periods (the background flush of §4.4).
  //
  // SYS running out of room is the expected stop condition and is *not* an
  // error (the remainder simply stays staged); any other migration failure
  // (power loss, data loss) is returned instead of being swallowed -- the
  // old uint64_t signature silently dropped those on the recovery path.
  Result<uint64_t> FlushStage();

  // Overall free fraction of exported capacity (drives auto-delete).
  double FreeFraction() const;

  // --- Crash recovery ------------------------------------------------------

  // Remounts the device after a simulated power cut: powers the die on and
  // rebuilds all volatile FTL state (mapping table, pool free/valid state)
  // from durable flash metadata via Ftl::RecoverFromFlash(). Pool ids and
  // snapshots are valid again afterwards, so SOS daemons and health
  // collection resume exactly where the durable state left them.
  [[nodiscard]] Status RecoverFromPowerLoss();

  const SosDeviceConfig& config() const { return config_; }

 private:
  // The FTL directive for writing `spec`-classified data into `pool`: the
  // handle's slot id becomes the stream tag (1-based; 0 is the shared
  // stream), the declared lifetime rides along.
  WriteDirective DirectiveFor(PlacementHandle handle, const PlacementSpec& spec,
                              uint32_t pool) const {
    return WriteDirective{pool, spec.lifetime, handle.id() + 1};
  }

  SosDeviceConfig config_;
  PlacementHandleTable handles_;
  std::unique_ptr<Ftl> ftl_;
  uint32_t sys_pool_ = 0;
  uint32_t spare_pool_ = 0;
  uint32_t rescue_pool_ = 0;
  std::optional<uint32_t> stage_pool_;
};

// A conventional single-pool device of the given technology with uniform
// strong ECC and wear leveling -- the TLC/QLC baselines of experiment E12.
// Geometry (blocks/wordlines/page size) is taken from `nand`.
std::unique_ptr<BlockDevice> MakeBaselineDevice(const NandConfig& nand, SimClock* clock,
                                                EccPreset ecc = EccPreset::kBch,
                                                GcPolicy gc = GcPolicy::kGreedy);

// Baseline implementation exposed for benches that need FTL stats access.
class BaselineDevice final : public BlockDevice {
 public:
  BaselineDevice(const NandConfig& nand, SimClock* clock, EccPreset ecc, GcPolicy gc);

  uint32_t block_size() const override;
  uint64_t capacity_blocks() const override;
  [[nodiscard]] Result<PlacementHandle> OpenPlacement(const PlacementSpec& spec) override;
  [[nodiscard]] Status ClosePlacement(PlacementHandle handle) override;
  [[nodiscard]] Result<PlacementSpec> DescribePlacement(PlacementHandle handle) const override;
  // A baseline device honors the handle lifecycle but ignores the spec: all
  // data shares one undirected stream in the single pool.
  [[nodiscard]] Status Write(uint64_t lba, std::span<const uint8_t> data,
                             PlacementHandle handle) override;
  [[nodiscard]] Result<BlockReadResult> Read(uint64_t lba) override;
  [[nodiscard]] Status Trim(uint64_t lba) override;
  [[nodiscard]] Status Reclassify(uint64_t lba, PlacementHandle handle) override;
  void SetCapacityListener(CapacityListener listener) override;

  Ftl& ftl() { return *ftl_; }
  const Ftl& ftl() const { return *ftl_; }

 private:
  PlacementHandleTable handles_;
  std::unique_ptr<Ftl> ftl_;
};

}  // namespace sos

#endif  // SOS_SRC_SOS_SOS_DEVICE_H_
