// Copyright (c) 2026 The SOS Authors. MIT License.

#include "src/sos/sos_device.h"

#include <array>
#include <cassert>
#include <optional>

namespace sos {
namespace {

FtlConfig BuildSosFtlConfig(const SosDeviceConfig& config) {
  FtlConfig ftl;
  ftl.nand = config.nand;
  ftl.gc_policy = config.gc_policy;
  ftl.batched_relocation = config.batched_relocation;
  ftl.placement_policy = config.placement_policy;

  FtlPoolConfig sys;
  sys.name = "SYS";
  sys.mode = CellTech::kQlc;  // pseudo-QLC on the PLC die
  sys.ecc = EccScheme::FromPreset(config.sys_ecc);
  sys.share = config.enable_slc_staging ? config.sys_share - config.stage_share
                                        : config.sys_share;
  assert(sys.share > 0.0);
  sys.wear_leveling = true;
  sys.parity_stripe = config.sys_parity_stripe;
  sys.op_fraction = config.op_fraction;
  sys.nominal_retention_years = 1.0;
  sys.read_retries = 2;
  // SYS holds the host's critical data: never serve silent corruption. With
  // LDPC + parity stripes + retries an unrescued failure is essentially
  // unreachable below retirement wear, so this changes no healthy-path
  // behaviour -- it turns the residual case into a loud kDataLoss.
  sys.strict_fidelity = true;

  FtlPoolConfig spare;
  spare.name = "SPARE";
  spare.mode = config.nand.tech;  // native density (PLC)
  spare.ecc = EccScheme::FromPreset(config.spare_ecc);
  spare.share = 1.0 - config.sys_share;
  spare.wear_leveling = false;  // paper §4.3 / [73]
  spare.op_fraction = config.op_fraction;
  spare.nominal_retention_years = 1.0;
  spare.retire_rber = config.spare_retire_rber;
  spare.resuscitate_into = "RESCUE";

  FtlPoolConfig rescue;
  rescue.name = "RESCUE";
  rescue.mode = CellTech::kTlc;  // pseudo-TLC rebirth of worn PLC blocks
  rescue.ecc = EccScheme::FromPreset(config.spare_ecc);
  rescue.share = 0.0;  // populated only by resuscitation
  rescue.wear_leveling = false;
  rescue.op_fraction = config.op_fraction;
  rescue.nominal_retention_years = 1.0;
  rescue.retire_rber = config.spare_retire_rber;
  rescue.min_live_blocks = 1;

  // SPARE is listed last so it absorbs block-count rounding (RESCUE must
  // start empty: it is populated only by resuscitated blocks).
  ftl.pools = {sys, rescue, spare};

  if (config.enable_slc_staging) {
    FtlPoolConfig stage;
    stage.name = "STAGE";
    stage.mode = CellTech::kSlc;  // pseudo-SLC: fast, near-indestructible
    stage.ecc = EccScheme::FromPreset(EccPreset::kWeakBch);
    stage.share = config.stage_share;
    stage.wear_leveling = true;
    stage.op_fraction = config.op_fraction;
    stage.min_live_blocks = 2;
    ftl.pools.insert(ftl.pools.begin(), stage);
  }
  return ftl;
}

}  // namespace

SosDevice::SosDevice(const SosDeviceConfig& config, SimClock* clock) : config_(config) {
  ftl_ = std::make_unique<Ftl>(BuildSosFtlConfig(config_), clock);
  sys_pool_ = ftl_->PoolIdByName("SYS");
  spare_pool_ = ftl_->PoolIdByName("SPARE");
  rescue_pool_ = ftl_->PoolIdByName("RESCUE");
  if (config_.enable_slc_staging) {
    stage_pool_ = ftl_->PoolIdByName("STAGE");
  }
}

Result<uint64_t> SosDevice::FlushStage() {
  if (!stage_pool_.has_value()) {
    return uint64_t{0};
  }
  uint64_t flushed = 0;
  const PoolSnapshot before = ftl_->Snapshot(*stage_pool_);
  if (before.exported_pages == 0) {
    return uint64_t{0};
  }
  const uint64_t target_valid = static_cast<uint64_t>(
      static_cast<double>(before.exported_pages) * config_.stage_flush_low);
  for (uint64_t lba : ftl_->LbasInPool(*stage_pool_)) {
    if (ftl_->Snapshot(*stage_pool_).valid_pages <= target_valid) {
      break;
    }
    Status migrated = ftl_->Migrate(lba, sys_pool_);
    if (migrated.ok()) {
      ++flushed;
      continue;
    }
    if (migrated.code() == StatusCode::kOutOfSpace) {
      break;  // SYS out of space: leave the rest staged
    }
    // Power loss, data loss, ...: the flush did not merely stall, it failed.
    return migrated;
  }
  return flushed;
}

uint32_t SosDevice::block_size() const { return config_.nand.page_size_bytes; }

uint64_t SosDevice::capacity_blocks() const { return ftl_->ExportedPages(); }

Result<PlacementHandle> SosDevice::OpenPlacement(const PlacementSpec& spec) {
  auto handle = handles_.Open(spec);
  if (!handle.ok()) {
    return handle.status();
  }
  // Name the handle's FTL stream for per-handle metric export. Reopening a
  // recycled slot renames the stream; its counters persist (device-lifetime
  // telemetry, like SMART attributes).
  ftl_->RegisterStream(handle.value().id() + 1, PlacementLabel(handle.value(), spec));
  return handle;
}

Status SosDevice::ClosePlacement(PlacementHandle handle) { return handles_.Close(handle); }

Result<PlacementSpec> SosDevice::DescribePlacement(PlacementHandle handle) const {
  return handles_.Describe(handle);
}

Status SosDevice::Write(uint64_t lba, std::span<const uint8_t> data, PlacementHandle handle) {
  if (Status s = handles_.Check(handle); !s.ok()) {
    return s;
  }
  const PlacementSpec& spec = handles_.SpecOf(handle);
  // Critical writes land in the pseudo-SLC stage first when staging is on
  // ("new file data will first be written to high-endurance memory", §4.4);
  // the stage flushes to pseudo-QLC once it passes its high-water mark.
  if (spec.durability == Durability::kCritical && stage_pool_.has_value()) {
    const PoolSnapshot stage = ftl_->Snapshot(*stage_pool_);
    if (stage.exported_pages > 0 &&
        static_cast<double>(stage.valid_pages) >
            static_cast<double>(stage.exported_pages) * config_.stage_flush_high) {
      if (auto flushed = FlushStage(); !flushed.ok()) {
        return flushed.status();  // power/data loss mid-flush: the write fails too
      }
    }
    Status staged = ftl_->Write(lba, data, DirectiveFor(handle, spec, *stage_pool_));
    if (staged.code() != StatusCode::kOutOfSpace) {
      return staged;
    }
    // Stage exhausted even after the flush attempt: fall through to SYS.
  }
  // The device exports a single LBA space, so a write must not fail while
  // *any* pool has room: each durability class overflows into the others in
  // preference order (critical data prefers the most reliable fallback
  // first, and the migration daemon re-sorts misplacements later).
  const std::array<uint32_t, 3> order =
      spec.durability == Durability::kDegradable
          ? std::array<uint32_t, 3>{spare_pool_, rescue_pool_, sys_pool_}
          : std::array<uint32_t, 3>{sys_pool_, rescue_pool_, spare_pool_};
  Status last = Status(StatusCode::kOutOfSpace, "no pools");
  for (uint32_t pool : order) {
    last = ftl_->Write(lba, data, DirectiveFor(handle, spec, pool));
    if (last.code() != StatusCode::kOutOfSpace) {
      return last;
    }
  }
  return last;
}

Result<BlockReadResult> SosDevice::Read(uint64_t lba) {
  auto read = ftl_->Read(lba);
  if (!read.ok()) {
    return read.status();
  }
  BlockReadResult result;
  result.data = std::move(read.value().data);
  result.residual_bit_errors = read.value().residual_bit_errors;
  result.degraded = read.value().degraded;
  return result;
}

std::vector<Result<BlockReadResult>> SosDevice::ReadBatch(uint64_t lba, uint32_t count) {
  std::vector<Result<BlockReadResult>> out;
  out.reserve(count);
  for (auto& read : ftl_->ReadRun(lba, count)) {
    if (!read.ok()) {
      out.push_back(read.status());
      continue;
    }
    BlockReadResult result;
    result.data = std::move(read.value().data);
    result.residual_bit_errors = read.value().residual_bit_errors;
    result.degraded = read.value().degraded;
    out.push_back(std::move(result));
  }
  return out;
}

std::vector<Status> SosDevice::WriteBatch(uint64_t lba,
                                          std::span<const std::vector<uint8_t>> pages,
                                          PlacementHandle handle) {
  std::vector<Status> out(pages.size(), Status::Ok());
  if (Status s = handles_.Check(handle); !s.ok()) {
    for (Status& slot : out) {
      slot = s;
    }
    return out;
  }
  const PlacementSpec& spec = handles_.SpecOf(handle);
  size_t done = 0;
  // Fast path: one ProgramRun-backed stretch into the primary pool. Staged
  // critical writes interleave flush migrations with appends, so with SLC
  // staging on the batch keeps the serial path's exact schedule instead.
  if (!(spec.durability == Durability::kCritical && stage_pool_.has_value())) {
    const uint32_t primary =
        spec.durability == Durability::kDegradable ? spare_pool_ : sys_pool_;
    uint64_t written = 0;
    Status run = ftl_->WriteRun(lba, pages, DirectiveFor(handle, spec, primary), &written);
    done = written;  // leading pages acknowledged by the run are already Ok
    if (!run.ok() && run.code() == StatusCode::kPowerLost) {
      for (size_t i = done; i < pages.size(); ++i) {
        out[i] = run;
      }
      return out;
    }
  }
  // Remainder (overflow, transient failure, or the staging path): the
  // serial write with its durability-ordered pool fallback.
  for (size_t i = done; i < pages.size(); ++i) {
    out[i] = Write(lba + static_cast<uint64_t>(i), pages[i], handle);
    if (!out[i].ok() && out[i].code() == StatusCode::kPowerLost) {
      for (size_t j = i + 1; j < pages.size(); ++j) {
        out[j] = out[i];
      }
      break;
    }
  }
  return out;
}

Status SosDevice::Trim(uint64_t lba) { return ftl_->Trim(lba); }

Status SosDevice::Reclassify(uint64_t lba, PlacementHandle handle) {
  if (Status s = handles_.Check(handle); !s.ok()) {
    return s;
  }
  // Edge-case contract (BlockDevice::Reclassify): unmapped/trimmed LBAs are
  // kNotFound with no state change; an LBA already in the handle's primary
  // target pool is an Ok no-op (Ftl::Migrate returns before any flash op).
  // Residency in an *overflow* pool (e.g. RESCUE for degradable data) is
  // deliberately not a no-op: the device re-sorts it toward the primary.
  if (!ftl_->IsMapped(lba)) {
    return Status(StatusCode::kNotFound, "unmapped LBA");
  }
  const PlacementSpec& spec = handles_.SpecOf(handle);
  if (spec.durability == Durability::kCritical) {
    return ftl_->Migrate(lba, DirectiveFor(handle, spec, sys_pool_));
  }
  // Demotion: SPARE first, overflow into RESCUE.
  Status s = ftl_->Migrate(lba, DirectiveFor(handle, spec, spare_pool_));
  if (s.code() == StatusCode::kOutOfSpace) {
    return ftl_->Migrate(lba, DirectiveFor(handle, spec, rescue_pool_));
  }
  return s;
}

void SosDevice::SetCapacityListener(CapacityListener listener) {
  ftl_->SetCapacityListener(std::move(listener));
}

Status SosDevice::RecoverFromPowerLoss() {
  if (Status s = ftl_->RecoverFromFlash(); !s.ok()) {
    return s;
  }
  // Pool ids are stable (pool order is fixed at construction), but resolve
  // them again so a future pool-layout change cannot silently desync.
  sys_pool_ = ftl_->PoolIdByName("SYS");
  spare_pool_ = ftl_->PoolIdByName("SPARE");
  rescue_pool_ = ftl_->PoolIdByName("RESCUE");
  if (config_.enable_slc_staging) {
    stage_pool_ = ftl_->PoolIdByName("STAGE");
  }
  return Status::Ok();
}

double SosDevice::FreeFraction() const {
  uint64_t exported = 0;
  uint64_t valid = 0;
  std::vector<uint32_t> pools = {sys_pool_, spare_pool_, rescue_pool_};
  if (stage_pool_.has_value()) {
    pools.push_back(*stage_pool_);
  }
  for (uint32_t pool : pools) {
    const PoolSnapshot snap = ftl_->Snapshot(pool);
    exported += snap.exported_pages;
    valid += snap.valid_pages;
  }
  if (exported == 0) {
    return 0.0;
  }
  const uint64_t free_pages = exported > valid ? exported - valid : 0;
  return static_cast<double>(free_pages) / static_cast<double>(exported);
}

// ---------------------------------------------------------------------------
// Baseline device.
// ---------------------------------------------------------------------------

BaselineDevice::BaselineDevice(const NandConfig& nand, SimClock* clock, EccPreset ecc,
                               GcPolicy gc) {
  FtlConfig config;
  config.nand = nand;
  config.gc_policy = gc;
  FtlPoolConfig pool;
  pool.name = "MAIN";
  pool.mode = nand.tech;
  pool.ecc = EccScheme::FromPreset(ecc);
  pool.share = 1.0;
  pool.wear_leveling = true;
  pool.read_retries = 2;
  config.pools = {pool};
  ftl_ = std::make_unique<Ftl>(config, clock);
}

uint32_t BaselineDevice::block_size() const { return ftl_->nand().config().page_size_bytes; }

uint64_t BaselineDevice::capacity_blocks() const { return ftl_->ExportedPages(); }

Result<PlacementHandle> BaselineDevice::OpenPlacement(const PlacementSpec& spec) {
  return handles_.Open(spec);
}

Status BaselineDevice::ClosePlacement(PlacementHandle handle) {
  return handles_.Close(handle);
}

Result<PlacementSpec> BaselineDevice::DescribePlacement(PlacementHandle handle) const {
  return handles_.Describe(handle);
}

Status BaselineDevice::Write(uint64_t lba, std::span<const uint8_t> data,
                             PlacementHandle handle) {
  if (Status s = handles_.Check(handle); !s.ok()) {
    return s;
  }
  // Non-directed: every handle funnels into the shared stream of the single
  // pool -- the conventional-SSD comparison point.
  return ftl_->Write(lba, data, 0);
}

Result<BlockReadResult> BaselineDevice::Read(uint64_t lba) {
  auto read = ftl_->Read(lba);
  if (!read.ok()) {
    return read.status();
  }
  BlockReadResult result;
  result.data = std::move(read.value().data);
  result.residual_bit_errors = read.value().residual_bit_errors;
  result.degraded = read.value().degraded;
  return result;
}

Status BaselineDevice::Trim(uint64_t lba) { return ftl_->Trim(lba); }

Status BaselineDevice::Reclassify(uint64_t lba, PlacementHandle handle) {
  if (Status s = handles_.Check(handle); !s.ok()) {
    return s;
  }
  // Same edge-case contract as SosDevice: reclassifying a block that was
  // never written (or was trimmed) is a caller bug, not a silent success.
  if (!ftl_->IsMapped(lba)) {
    return Status(StatusCode::kNotFound, "unmapped LBA");
  }
  return Status::Ok();  // single reliability domain: nothing to move
}

void BaselineDevice::SetCapacityListener(CapacityListener listener) {
  ftl_->SetCapacityListener(std::move(listener));
}

std::unique_ptr<BlockDevice> MakeBaselineDevice(const NandConfig& nand, SimClock* clock,
                                                EccPreset ecc, GcPolicy gc) {
  return std::make_unique<BaselineDevice>(nand, clock, ecc, gc);
}

}  // namespace sos
