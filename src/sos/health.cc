// Copyright (c) 2026 The SOS Authors. MIT License.

#include "src/sos/health.h"

#include <algorithm>
#include <cstdio>

#include "src/common/table.h"
#include "src/media/quality.h"

namespace sos {

DeviceHealthReport CollectHealth(const SosDevice& device, double elapsed_years,
                                 uint64_t initial_exported_pages) {
  DeviceHealthReport report;
  const Ftl& ftl = device.ftl();
  static const VideoQualityModel kVideoModel{VideoConfig{}};

  std::vector<uint32_t> pool_ids = {device.sys_pool(), device.spare_pool(),
                                    device.rescue_pool()};
  if (device.stage_pool().has_value()) {
    pool_ids.insert(pool_ids.begin(), *device.stage_pool());
  }
  double worst_wear = 0.0;
  for (uint32_t pool_id : pool_ids) {
    const PoolSnapshot snap = ftl.Snapshot(pool_id);
    PoolHealth health;
    health.name = snap.name;
    health.mode = snap.mode;
    health.live_blocks = snap.total_blocks;
    health.retired_blocks = snap.retired_blocks;
    health.mean_pec = snap.mean_pec;
    health.max_pec = snap.max_pec;
    const double endurance =
        static_cast<double>(GetCellTechInfo(snap.mode).rated_endurance_pec);
    health.wear_consumed = endurance > 0.0 ? snap.max_pec / endurance : 0.0;
    worst_wear = std::max(worst_wear, health.wear_consumed);
    health.valid_pages = snap.valid_pages;

    double rber_sum = 0.0;
    uint64_t pages = 0;
    for (uint64_t lba : ftl.LbasInPool(pool_id)) {
      if (ftl.IsTainted(lba)) {
        ++health.tainted_pages;
      }
      auto rber = ftl.PredictLbaRber(lba, 0.0);
      if (rber.ok()) {
        health.worst_predicted_rber = std::max(health.worst_predicted_rber, rber.value());
        rber_sum += rber.value();
        ++pages;
      }
    }
    if (pages > 0) {
      health.est_media_quality =
          kVideoModel.ExpectedScore(rber_sum / static_cast<double>(pages), 4 * kMiB);
    }
    report.pools.push_back(std::move(health));
  }

  report.exported_pages = ftl.ExportedPages();
  report.initial_exported_pages = initial_exported_pages;
  report.capacity_retained =
      initial_exported_pages > 0
          ? static_cast<double>(report.exported_pages) /
                static_cast<double>(initial_exported_pages)
          : 1.0;
  const FtlStats stats = ftl.stats();
  report.host_writes = stats.host_writes();
  report.write_amplification = stats.WriteAmplification();
  report.projected_remaining_years =
      worst_wear > 0.0 && elapsed_years > 0.0
          ? elapsed_years * (1.0 - worst_wear) / worst_wear
          : 1e6;
  return report;
}

std::string RenderHealth(const DeviceHealthReport& report) {
  std::string out;
  char line[256];
  out += "=== SOS device health ===\n";
  for (const PoolHealth& pool : report.pools) {
    std::snprintf(line, sizeof(line),
                  "%-7s %-4s blocks=%3u(-%u) pec=%5.1f/%u wear=%5.1f%% valid=%6llu "
                  "tainted=%4llu worst-rber=%.1e quality=%.3f\n",
                  pool.name.c_str(), std::string(CellTechName(pool.mode)).c_str(),
                  pool.live_blocks, pool.retired_blocks, pool.mean_pec, pool.max_pec,
                  pool.wear_consumed * 100.0,
                  static_cast<unsigned long long>(pool.valid_pages),
                  static_cast<unsigned long long>(pool.tainted_pages),
                  pool.worst_predicted_rber, pool.est_media_quality);
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "capacity retained: %.1f%%   WA: %.2f   projected remaining life: %s\n",
                report.capacity_retained * 100.0, report.write_amplification,
                report.projected_remaining_years >= 1e5
                    ? "unworn"
                    : (FormatDouble(report.projected_remaining_years, 1) + " years").c_str());
  out += line;
  return out;
}

}  // namespace sos
