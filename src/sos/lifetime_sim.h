// Copyright (c) 2026 The SOS Authors. MIT License.
//
// End-to-end device-lifetime simulation: Figure 2 running for years.
//
// Wires the whole stack together -- workload generator -> file system ->
// (SOS or baseline) device -> NAND -- and runs it for a configurable number
// of simulated days with the SOS daemons on their schedules:
//   daily    migration daemon (classification review, §4.4)
//   monthly  degradation monitor (scrub + cloud repair, §4.3)
//   daily    auto-delete check (§4.5)
//
// The simulation runs at reduced geometry: a ~hundreds-of-MiB die stands in
// for a 128 GB phone, with file sizes and daily write volume scaled by the
// same factor, so wear *ratios* (bytes written / capacity / endurance) match
// the full-size device. Payload storage is off by default (error counts are
// still exact; content bytes are not retained), letting multi-year runs
// finish in seconds; tests and the quickstart run small payload-on configs.

#ifndef SOS_SRC_SOS_LIFETIME_SIM_H_
#define SOS_SRC_SOS_LIFETIME_SIM_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/classify/logistic.h"
#include "src/host/cache_workload.h"
#include "src/host/workload.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sos/daemons.h"
#include "src/sos/sos_device.h"

namespace sos {

enum class DeviceKind : uint8_t {
  kSos,          // split pseudo-QLC / PLC with daemons (the paper's design)
  kTlcBaseline,  // conventional TLC device, uniform strong ECC
  kQlcBaseline,  // conventional QLC device, uniform strong ECC
  kPlcNaive,     // PLC everywhere with strong ECC but no SOS management
};

const char* DeviceKindName(DeviceKind kind);

// Short identifier safe for metric names and file paths ("sos", "tlc", ...).
const char* DeviceKindSlug(DeviceKind kind);

// Coarse device condition derived from wear and retained capacity; the
// simulation counts transitions between these states (health telemetry).
enum class HealthState : uint8_t { kHealthy, kWorn, kCritical };

const char* HealthStateName(HealthState state);

// Which workload drives the simulated device.
enum class WorkloadKind : uint8_t {
  kMobile,      // personal-device mix (photos, apps, caches; §2.3.2)
  kFlashCache,  // CacheLib-style TTL churn (src/host/cache_workload.h)
};

const char* WorkloadKindName(WorkloadKind kind);

struct LifetimeSimConfig {
  DeviceKind kind = DeviceKind::kSos;
  uint64_t seed = 1;
  uint32_t days = 365 * 3;  // typical phone service life (§2.3.2)

  // Scaled-down geometry (see file comment). ~320 MiB of PLC cells.
  NandConfig nand;

  WorkloadKind workload_kind = WorkloadKind::kMobile;
  MobileWorkloadConfig workload;
  FlashCacheWorkloadConfig cache_workload;  // used when kind is kFlashCache
  uint64_t file_size_cap = 256 * kKiB;  // clamp synthesized file sizes

  // Daemon scheduling.
  uint32_t classify_period_days = 1;
  uint32_t scrub_period_days = 30;
  bool enable_autodelete = true;
  bool enable_cloud = false;  // cloud repair needs payloads on

  MigrationDaemonConfig migration;
  AutoDeleteConfig autodelete;
  DegradationMonitorConfig monitor;
  SosDeviceConfig sos;  // nand is overwritten from `nand`

  // Classifier training corpus size (trained before the sim starts).
  size_t training_files = 6000;

  // Periodic on-device retraining (paper §4.4: "periodically re-evaluate
  // user preferences as these tend to change over time"): every N days the
  // classifiers are refit on the device's current file population (whose
  // ground-truth labels stand in for collected user feedback). 0 = off.
  uint32_t retrain_period_days = 0;

  // Record a DaySample every this many days.
  uint32_t sample_period_days = 30;

  // Capacity of the per-run trace buffer (keep-first / drop-newest; see
  // obs/trace.h). Fleet runs shrink this to 0 so a million devices don't
  // retain a million traces -- the dropped counter still accounts for every
  // event that would have been recorded.
  size_t trace_capacity = obs::TraceSink::kDefaultCapacity;

  // Capture the per-device metric rows (ftl.*, flash.die.*) into the
  // result. That is ~100 rows per run; the fleet runner turns this off and
  // folds only the scalar outcomes into its ledger.
  bool capture_device_metrics = true;

  LifetimeSimConfig() {
    nand.num_blocks = 256;
    nand.wordlines_per_block = 64;
    nand.page_size_bytes = 4096;
    nand.tech = CellTech::kPlc;
    nand.store_payloads = false;
    workload.photos_per_day = 8.0;
    workload.cache_files_per_day = 30.0;
    workload.reads_per_day = 200.0;
  }
};

struct DaySample {
  uint32_t day = 0;
  double max_wear_ratio = 0.0;      // worst block PEC / effective endurance
  double mean_pec = 0.0;            // die-wide
  uint64_t exported_pages = 0;      // capacity variance over time
  double fs_free_fraction = 0.0;
  uint64_t live_files = 0;
  uint64_t retired_blocks = 0;
  // Estimated media quality of SPARE data (1.0 for baselines, which store
  // everything reliably). Mean over mapped SPARE pages of the video-model
  // quality at each page's current predicted RBER.
  double spare_quality = 1.0;
  uint64_t spare_pages = 0;
};

// Outcome of one lifetime run. Mutation is confined to the owning
// LifetimeSim (friend); consumers read through the accessors or export via
// Snapshot()/ToMetrics(). The result is a plain value: it carries its
// telemetry (metric rows + trace events) across worker threads, so batch
// exports stay independent of scheduling.
class LifetimeResult {
 public:
  DeviceKind kind() const { return kind_; }
  const std::vector<DaySample>& samples() const { return samples_; }
  const FtlStats& ftl() const { return ftl_; }
  uint64_t host_bytes_written() const { return host_bytes_written_; }
  // Bytes of file content returned to the host by successful reads ("served"
  // bytes, the denominator of the flash cache's carbon-per-served-byte).
  uint64_t bytes_served() const { return bytes_served_; }
  // Final population variance of per-block PEC across all pool-owned blocks
  // (the wear-variance outcome the lifetime-aware allocator targets).
  double pec_variance() const { return pec_variance_; }
  uint64_t create_failures() const { return create_failures_; }  // rejected even after auto-delete
  double final_max_wear_ratio() const { return final_max_wear_ratio_; }
  double final_mean_wear_ratio() const { return final_mean_wear_ratio_; }
  uint64_t final_exported_pages() const { return final_exported_pages_; }
  uint64_t initial_exported_pages() const { return initial_exported_pages_; }
  double final_spare_quality() const { return final_spare_quality_; }
  const MigrationDaemon::RunStats& migration() const { return migration_; }
  const AutoDeleteManager::RunStats& autodelete() const { return autodelete_; }
  const DegradationMonitor::RunStats& monitor() const { return monitor_; }
  uint64_t files_alive() const { return files_alive_; }
  uint64_t retrainings() const { return retrainings_; }

  // Years of identical use until the worst block reaches its endurance,
  // extrapolated from the final wear slope. The paper's order-of-magnitude
  // wear-gap claim (§2.3.2) reads directly off this.
  double projected_lifetime_years() const { return projected_lifetime_years_; }

  // --- Telemetry captured during the run (DESIGN.md §9) --------------------

  // Device metric rows (ftl.*, flash.die.*) snapshotted at end of run.
  const obs::MetricsSnapshot& device_metrics() const { return device_metrics_; }
  // FTL + daemon event trace, bounded (keep-first) with overflow count.
  const std::vector<obs::TraceEvent>& trace() const { return trace_; }
  uint64_t trace_dropped() const { return trace_dropped_; }
  // Total daemon RunOnce invocations (migration + monitor + auto-delete).
  uint64_t daemon_activations() const { return daemon_activations_; }
  // Coarse health-state changes observed over the run (see HealthState).
  uint64_t health_transitions() const { return health_transitions_; }

  // Point-in-time copy; names the intent at call sites that stash results.
  LifetimeResult Snapshot() const { return *this; }

  // Registers the run's scalar outcomes (sim.*), daemon counters (sos.*)
  // and the captured device rows, each name prefixed with `prefix`.
  // Registration order is fixed by this function, so the export is
  // byte-stable for a given build.
  void ToMetrics(obs::MetricRegistry& registry, const std::string& prefix = "") const;

 private:
  friend class LifetimeSim;

  DeviceKind kind_ = DeviceKind::kSos;
  WorkloadKind workload_kind_ = WorkloadKind::kMobile;
  std::vector<DaySample> samples_;
  FtlStats ftl_;
  uint64_t host_bytes_written_ = 0;
  uint64_t bytes_served_ = 0;
  double pec_variance_ = 0.0;
  uint64_t create_failures_ = 0;
  double final_max_wear_ratio_ = 0.0;
  double final_mean_wear_ratio_ = 0.0;
  uint64_t final_exported_pages_ = 0;
  uint64_t initial_exported_pages_ = 0;
  double final_spare_quality_ = 1.0;
  MigrationDaemon::RunStats migration_;
  AutoDeleteManager::RunStats autodelete_;
  DegradationMonitor::RunStats monitor_;
  uint64_t files_alive_ = 0;
  uint64_t retrainings_ = 0;
  double projected_lifetime_years_ = 0.0;
  obs::MetricsSnapshot device_metrics_;
  std::vector<obs::TraceEvent> trace_;
  uint64_t trace_dropped_ = 0;
  uint64_t daemon_activations_ = 0;
  uint64_t health_transitions_ = 0;
};

class LifetimeSim {
 public:
  explicit LifetimeSim(const LifetimeSimConfig& config);

  // Runs the configured number of days and returns the result. Can be called
  // once per instance.
  LifetimeResult Run();

 private:
  void ApplyEvent(const WorkloadEvent& event);
  void RunDaemons(uint32_t day);
  DaySample Sample(uint32_t day) const;
  double EstimateSpareQuality(uint64_t* pages_out) const;
  std::vector<uint8_t> ContentFor(uint64_t ref, uint64_t bytes);
  // Re-derives the coarse health state and counts/traces transitions.
  void UpdateHealthState(uint32_t day);

  LifetimeSimConfig config_;
  SimClock clock_;
  std::unique_ptr<SosDevice> sos_device_;
  std::unique_ptr<BaselineDevice> baseline_device_;
  BlockDevice* device_ = nullptr;  // whichever of the above is active
  // Memoizes one open placement handle per distinct spec the host declares;
  // workload creates and daemon reclassifications all mint through it.
  std::unique_ptr<PlacementDirectory> placements_;
  std::unique_ptr<ExtentFileSystem> fs_;
  std::unique_ptr<WorkloadGenerator> workload_;
  std::unique_ptr<LogisticClassifier> priority_model_;
  std::unique_ptr<LogisticClassifier> deletion_model_;
  std::unique_ptr<MigrationDaemon> migration_;
  std::unique_ptr<DegradationMonitor> monitor_;
  std::unique_ptr<AutoDeleteManager> autodelete_;
  std::unique_ptr<InMemoryCloud> cloud_;
  // Workload file-ref -> live file id. Lookup/erase only -- never iterated:
  // any walk of this map would feed hash order into the simulation (soslint
  // R1). Iteration over live files goes through fs_->ScanFiles(), which is
  // id-ordered.
  std::unordered_map<uint64_t, uint64_t> ref_to_fsid_;
  obs::TraceSink trace_;
  HealthState health_state_ = HealthState::kHealthy;
  LifetimeResult result_;
};

// The FTL behind whichever device kind is active (bench helper).
Ftl& FtlOf(SosDevice* sos_dev, BaselineDevice* baseline);

}  // namespace sos

#endif  // SOS_SRC_SOS_LIFETIME_SIM_H_
