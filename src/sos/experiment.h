// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Batch experiment driver: fan independent (LifetimeSimConfig, seed) jobs
// across a thread pool and collect results deterministically.
//
// Every sweep in this repo -- seeds x device kinds x workload intensities --
// is a set of completely independent single-threaded simulations, so the
// only parallelism worth having is "run N sims at once". The driver owns
// that pattern:
//
//   * each job constructs its own LifetimeSim (share-nothing: no state is
//     visible to any other job);
//   * results land in *job order*, never completion order, so report output
//     is byte-identical for any --jobs value;
//   * aggregation over a seed sweep (mean/stddev of the headline metrics)
//     uses RunningStats from src/common/stats.h.
//
// Benches route their sweeps through ExperimentDriver and report wall-clock
// speedup via bench_util.h; the determinism regression test
// (tests/determinism_test.cc) holds serial and parallel runs bit-identical.

#ifndef SOS_SRC_SOS_EXPERIMENT_H_
#define SOS_SRC_SOS_EXPERIMENT_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/common/thread_pool.h"
#include "src/sos/lifetime_sim.h"

namespace sos {

struct ExperimentJob {
  std::string label;  // for reports; empty is fine
  LifetimeSimConfig config;
};

struct ExperimentBatch {
  std::vector<LifetimeResult> results;  // 1:1 with the submitted jobs, in job order
  double wall_seconds = 0.0;
  size_t jobs_used = 1;  // worker count the batch actually ran with
};

// Runs batches of lifetime simulations over a fixed-size pool. jobs == 1
// runs inline on the calling thread (no pool, zero threading overhead);
// jobs == 0 uses the hardware concurrency.
class ExperimentDriver {
 public:
  explicit ExperimentDriver(size_t jobs = 1);
  ~ExperimentDriver();

  ExperimentDriver(const ExperimentDriver&) = delete;
  ExperimentDriver& operator=(const ExperimentDriver&) = delete;

  size_t jobs() const { return jobs_; }

  // Runs every job and returns results in job order. Exceptions from a sim
  // propagate to the caller after the batch drains.
  ExperimentBatch RunBatch(const std::vector<ExperimentJob>& jobs);

  // Convenience: configs only, no labels.
  ExperimentBatch Run(const std::vector<LifetimeSimConfig>& configs);

  // Generic deterministic fan-out for non-LifetimeSim sweeps (FTL churn
  // runs, classifier evaluations): out[i] = fn(i), in index order. Runs
  // inline when the driver was built with jobs == 1.
  template <typename Fn>
  auto Map(size_t n, Fn&& fn)
      -> std::vector<std::invoke_result_t<std::decay_t<Fn>, size_t>> {
    using T = std::invoke_result_t<std::decay_t<Fn>, size_t>;
    if (pool_ == nullptr) {
      std::vector<T> out;
      out.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        out.push_back(fn(i));
      }
      return out;
    }
    return ParallelMap(*pool_, n, std::forward<Fn>(fn));
  }

 private:
  size_t jobs_;
  ThreadPool* pool_;  // null when jobs_ == 1
};

// Clones `base` once per seed (overriding config.seed). The usual way to
// build a seed-sweep batch.
std::vector<ExperimentJob> SeedSweep(const LifetimeSimConfig& base,
                                     const std::vector<uint64_t>& seeds);

// Mean/stddev/min/max over a batch's headline metrics, one accumulator per
// metric. Aggregation order is job order, so the aggregate is as
// deterministic as the results themselves.
struct LifetimeAggregate {
  RunningStats host_bytes_written;
  RunningStats max_wear_ratio;
  RunningStats mean_wear_ratio;
  RunningStats projected_lifetime_years;
  RunningStats exported_pages;   // final
  RunningStats create_failures;
  RunningStats spare_quality;    // final
  RunningStats write_amplification;
  RunningStats files_deleted;    // auto-delete
};

LifetimeAggregate Aggregate(const std::vector<LifetimeResult>& results);

// Serializes every result's telemetry into one metrics JSON document. Run i's
// rows are prefixed "run.<i>.<kind-slug>." and registered in job order, so
// the bytes depend only on the results -- never on how the batch was
// scheduled (--jobs=1 and --jobs=N produce identical files).
std::string BatchMetricsJson(const std::vector<LifetimeResult>& results);

// One JSONL stream of every result's trace: a "trace.run" header line per
// run, then its events in emission order (plus a "trace.dropped" line when
// the sink overflowed). Deterministic for the same reason as the metrics.
std::string BatchTraceJsonl(const std::vector<LifetimeResult>& results);

// "mean +/- stddev" with `digits` fractional digits, e.g. "12.40 +/- 0.31".
std::string FormatMeanStddev(const RunningStats& stats, int digits);

}  // namespace sos

#endif  // SOS_SRC_SOS_EXPERIMENT_H_
