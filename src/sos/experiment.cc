// Copyright (c) 2026 The SOS Authors. MIT License.

#include "src/sos/experiment.h"

#include <chrono>
#include <cstdio>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace sos {

ExperimentDriver::ExperimentDriver(size_t jobs)
    : jobs_(jobs == 0 ? ThreadPool::DefaultThreads() : jobs),
      pool_(jobs_ > 1 ? new ThreadPool(jobs_) : nullptr) {}

ExperimentDriver::~ExperimentDriver() { delete pool_; }

ExperimentBatch ExperimentDriver::RunBatch(const std::vector<ExperimentJob>& jobs) {
  const auto start = std::chrono::steady_clock::now();
  ExperimentBatch batch;
  batch.jobs_used = jobs_;
  batch.results = Map(jobs.size(), [&jobs](size_t i) {
    // Each job owns its entire simulation stack; nothing leaks across jobs,
    // so the result depends only on (config, seed) -- never on scheduling.
    LifetimeSim sim(jobs[i].config);
    return sim.Run();
  });
  batch.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return batch;
}

ExperimentBatch ExperimentDriver::Run(const std::vector<LifetimeSimConfig>& configs) {
  std::vector<ExperimentJob> jobs;
  jobs.reserve(configs.size());
  for (const LifetimeSimConfig& config : configs) {
    jobs.push_back({"", config});
  }
  return RunBatch(jobs);
}

std::vector<ExperimentJob> SeedSweep(const LifetimeSimConfig& base,
                                     const std::vector<uint64_t>& seeds) {
  std::vector<ExperimentJob> jobs;
  jobs.reserve(seeds.size());
  for (uint64_t seed : seeds) {
    ExperimentJob job;
    job.label = "seed " + std::to_string(seed);
    job.config = base;
    job.config.seed = seed;
    jobs.push_back(std::move(job));
  }
  return jobs;
}

LifetimeAggregate Aggregate(const std::vector<LifetimeResult>& results) {
  LifetimeAggregate agg;
  for (const LifetimeResult& r : results) {
    agg.host_bytes_written.Add(static_cast<double>(r.host_bytes_written()));
    agg.max_wear_ratio.Add(r.final_max_wear_ratio());
    agg.mean_wear_ratio.Add(r.final_mean_wear_ratio());
    agg.projected_lifetime_years.Add(r.projected_lifetime_years());
    agg.exported_pages.Add(static_cast<double>(r.final_exported_pages()));
    agg.create_failures.Add(static_cast<double>(r.create_failures()));
    agg.spare_quality.Add(r.final_spare_quality());
    agg.write_amplification.Add(r.ftl().WriteAmplification());
    agg.files_deleted.Add(static_cast<double>(r.autodelete().files_deleted));
  }
  return agg;
}

std::string BatchMetricsJson(const std::vector<LifetimeResult>& results) {
  obs::MetricRegistry registry;
  for (size_t i = 0; i < results.size(); ++i) {
    const std::string prefix =
        "run." + std::to_string(i) + "." + DeviceKindSlug(results[i].kind()) + ".";
    results[i].ToMetrics(registry, prefix);
  }
  return registry.ToJson();
}

std::string BatchTraceJsonl(const std::vector<LifetimeResult>& results) {
  std::string out;
  for (size_t i = 0; i < results.size(); ++i) {
    obs::TraceEvent header{0, "trace.run"};
    header.WithU64("run", i).With("device", DeviceKindSlug(results[i].kind()));
    out += obs::TraceEventToJson(header);
    out += '\n';
    out += obs::TraceToJsonl(results[i].trace(), results[i].trace_dropped());
  }
  return out;
}

std::string FormatMeanStddev(const RunningStats& stats, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f +/- %.*f", digits, stats.mean(), digits,
                stats.stddev());
  return buf;
}

}  // namespace sos
