// Copyright (c) 2026 The SOS Authors. MIT License.
//
// UFS-style logical-unit view of an SOS device.
//
// The paper notes (§4.3) that the JEDEC UFS standard used by Android phones
// "already supports optional LUNs with varying reliability during power
// failures as well as dynamic device capacity" [75] -- i.e. SOS's two-class
// design maps onto an existing host interface. This module renders an
// SosDevice as a UFS-like unit descriptor table: one high-reliability LUN
// backed by the SYS pool and one degradable, dynamically-sized LUN backed by
// SPARE (+RESCUE), so host software written against UFS semantics can reason
// about an SOS device without new abstractions.

#ifndef SOS_SRC_SOS_UFS_H_
#define SOS_SRC_SOS_UFS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sos/sos_device.h"

namespace sos {

// Mirrors the spirit of the UFS unit descriptor fields the paper leans on.
struct UfsLunDescriptor {
  uint32_t lun_id = 0;
  std::string name;
  uint64_t capacity_bytes = 0;     // current (may shrink: dynamic capacity)
  uint64_t allocated_bytes = 0;    // valid data currently stored
  bool high_reliability = false;   // "enhanced" memory type in UFS terms
  bool dynamic_capacity = false;   // capacity may change over the LUN's life
  CellTech backing_mode = CellTech::kQlc;
  double mean_wear_pec = 0.0;
};

class UfsView {
 public:
  // `device` must outlive the view.
  explicit UfsView(const SosDevice* device) : device_(device) {}

  // LUN 0: SYS (enhanced reliability). LUN 1: SPARE+RESCUE (degradable,
  // dynamic capacity). Snapshot of the current state.
  std::vector<UfsLunDescriptor> Describe() const;

  // bAvailable-style summary: total exported bytes across LUNs.
  uint64_t TotalBytes() const;

  // Renders the descriptor table the way `ufs-utils` would print it.
  std::string Render() const;

 private:
  const SosDevice* device_;
};

}  // namespace sos

#endif  // SOS_SRC_SOS_UFS_H_
