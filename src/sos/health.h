// Copyright (c) 2026 The SOS Authors. MIT License.
//
// SMART-style device health report for an SOS device.
//
// Real drives expose wear and reliability counters through SMART / UFS
// health descriptors; SOS has more to tell because its partitions age on
// purpose. The report aggregates, per pool: wear consumed, retirement and
// resuscitation history, tainted (known-corrupted) pages, the predicted
// media quality of approximate data, and an extrapolated remaining lifetime
// under the observed write rate. The mobile_lifetime example prints it; the
// degradation monitor's decisions are all derivable from it.

#ifndef SOS_SRC_SOS_HEALTH_H_
#define SOS_SRC_SOS_HEALTH_H_

#include <string>
#include <vector>

#include "src/sos/sos_device.h"

namespace sos {

struct PoolHealth {
  std::string name;
  CellTech mode = CellTech::kQlc;
  uint32_t live_blocks = 0;
  uint32_t retired_blocks = 0;
  double mean_pec = 0.0;
  uint32_t max_pec = 0;
  double wear_consumed = 0.0;     // max PEC / effective endurance of the mode
  uint64_t valid_pages = 0;
  uint64_t tainted_pages = 0;     // stored copies with baked-in corruption
  double worst_predicted_rber = 0.0;  // over mapped pages, at current age
  double est_media_quality = 1.0;     // video-model score at the mean RBER
};

struct DeviceHealthReport {
  std::vector<PoolHealth> pools;
  uint64_t exported_pages = 0;
  uint64_t initial_exported_pages = 0;  // caller-supplied baseline (0 = unknown)
  double capacity_retained = 1.0;
  uint64_t host_writes = 0;
  double write_amplification = 0.0;
  // Remaining device life in "years at the observed write rate", from the
  // worst pool's wear slope; infinity-ish when nothing has worn yet.
  double projected_remaining_years = 0.0;
};

// Collects the report. `elapsed_years` is the device's service time so far
// (for the lifetime extrapolation); `initial_exported_pages` may be 0.
DeviceHealthReport CollectHealth(const SosDevice& device, double elapsed_years,
                                 uint64_t initial_exported_pages = 0);

// Renders the report as the ASCII block a `smartctl`-like tool would print.
std::string RenderHealth(const DeviceHealthReport& report);

}  // namespace sos

#endif  // SOS_SRC_SOS_HEALTH_H_
