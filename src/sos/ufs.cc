// Copyright (c) 2026 The SOS Authors. MIT License.

#include "src/sos/ufs.h"

#include <cstdio>

#include "src/common/units.h"

namespace sos {

std::vector<UfsLunDescriptor> UfsView::Describe() const {
  const uint32_t page = device_->block_size();
  const PoolSnapshot sys = device_->SysSnapshot();
  const PoolSnapshot spare = device_->SpareSnapshot();
  const PoolSnapshot rescue = device_->RescueSnapshot();

  UfsLunDescriptor lun0;
  lun0.lun_id = 0;
  lun0.name = "sys (enhanced reliability)";
  lun0.capacity_bytes = sys.exported_pages * page;
  lun0.allocated_bytes = sys.valid_pages * page;
  lun0.high_reliability = true;
  lun0.dynamic_capacity = false;
  lun0.backing_mode = sys.mode;
  lun0.mean_wear_pec = sys.mean_pec;

  UfsLunDescriptor lun1;
  lun1.lun_id = 1;
  lun1.name = "spare (degradable, dynamic)";
  lun1.capacity_bytes = (spare.exported_pages + rescue.exported_pages) * page;
  lun1.allocated_bytes = (spare.valid_pages + rescue.valid_pages) * page;
  lun1.high_reliability = false;
  lun1.dynamic_capacity = true;  // retirement shrinks it ([74][75])
  lun1.backing_mode = spare.mode;
  lun1.mean_wear_pec = spare.mean_pec;

  return {lun0, lun1};
}

uint64_t UfsView::TotalBytes() const {
  uint64_t total = 0;
  for (const UfsLunDescriptor& lun : Describe()) {
    total += lun.capacity_bytes;
  }
  return total;
}

std::string UfsView::Render() const {
  std::string out;
  char line[256];
  for (const UfsLunDescriptor& lun : Describe()) {
    std::snprintf(line, sizeof(line),
                  "LUN %u  %-28s %10.2f MiB (%5.1f%% used)  %s  %s  mode=%s\n", lun.lun_id,
                  lun.name.c_str(), BytesToMiB(lun.capacity_bytes),
                  lun.capacity_bytes > 0
                      ? 100.0 * static_cast<double>(lun.allocated_bytes) /
                            static_cast<double>(lun.capacity_bytes)
                      : 0.0,
                  lun.high_reliability ? "RELIABLE " : "DEGRADABLE",
                  lun.dynamic_capacity ? "DYN-CAP" : "FIXED  ",
                  std::string(CellTechName(lun.backing_mode)).c_str());
    out += line;
  }
  return out;
}

}  // namespace sos
