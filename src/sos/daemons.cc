// Copyright (c) 2026 The SOS Authors. MIT License.

#include "src/sos/daemons.h"

#include "src/flash/error_model.h"

#include <algorithm>
#include <cassert>

namespace sos {

// ---------------------------------------------------------------------------
// MigrationDaemon.
// ---------------------------------------------------------------------------

MigrationDaemon::MigrationDaemon(ExtentFileSystem* fs, PlacementDirectory* placements,
                                 const BinaryClassifier* model,
                                 const MigrationDaemonConfig& config)
    : fs_(fs), placements_(placements), model_(model), config_(config) {
  assert(fs_ != nullptr && placements_ != nullptr && model_ != nullptr);
}

MigrationDaemon::RunStats MigrationDaemon::RunOnce(SimTimeUs now) {
  RunStats stats;
  // Re-declares a file's placement with a fresh handle of the opposite
  // durability, keeping the file's lifetime hint. The directory memoizes
  // handles per spec, so repeat verdicts reuse one slot.
  auto reclassify = [&](uint64_t id, const FileMeta& meta, Durability durability) -> bool {
    PlacementSpec spec;
    spec.durability = durability;
    spec.lifetime = LifetimeHintFor(meta);
    auto handle = placements_->For(spec);
    if (!handle.ok()) {
      return false;
    }
    return fs_->ReclassifyFile(id, handle.value()).ok();
  };
  for (uint64_t id : fs_->FileIds()) {
    const FileMeta* meta = fs_->Lookup(id);
    if (meta == nullptr) {
      continue;  // deleted between listing and scan
    }
    ++stats.scanned;
    const double score =
        std::clamp(model_->Score(*meta, now) +
                       config_.type_score_bias[static_cast<size_t>(meta->type)],
                   0.0, 1.0);
    const auto spec = fs_->PlacementSpecOf(id);
    if (!spec.ok()) {
      continue;  // handle closed out from under the file: nothing safe to do
    }
    const Durability durability = spec.value().durability;
    if (durability == Durability::kCritical && score >= config_.demote_threshold &&
        now >= meta->created_us + config_.min_age_us) {
      if (reclassify(id, *meta, Durability::kDegradable)) {
        ++stats.demoted;
      } else {
        ++stats.demote_failures;
      }
    } else if (config_.allow_promotion && durability == Durability::kDegradable &&
               score <= config_.promote_threshold) {
      if (reclassify(id, *meta, Durability::kCritical)) {
        ++stats.promoted;
      }
    }
  }
  lifetime_.scanned += stats.scanned;
  lifetime_.demoted += stats.demoted;
  lifetime_.promoted += stats.promoted;
  lifetime_.demote_failures += stats.demote_failures;
  return stats;
}

// ---------------------------------------------------------------------------
// DegradationMonitor.
// ---------------------------------------------------------------------------

DegradationMonitor::DegradationMonitor(ExtentFileSystem* fs, SosDevice* device,
                                       const DegradationMonitorConfig& config, CloudBackup* cloud)
    : fs_(fs), device_(device), config_(config), cloud_(cloud) {
  assert(fs_ != nullptr && device_ != nullptr);
}

void DegradationMonitor::ScrubPool(uint32_t pool_id, RunStats& stats) {
  Ftl& ftl = device_->ftl();
  const double budget = device_->config().spare_retire_rber;
  const double refresh_at = budget * config_.refresh_fraction;

  // Futility guard: refreshing rewrites data onto another block of the same
  // pool, which resets *retention* but not *wear*. Once the pool is worn
  // enough that even a freshly-programmed page would sit above the refresh
  // threshold, scrubbing would only burn more endurance chasing an
  // unreachable target (a refresh death spiral). Leave such pools to
  // retirement and the cloud-repair path.
  {
    const PoolSnapshot snap = ftl.Snapshot(pool_id);
    PageErrorState fresh;
    fresh.mode = snap.mode;
    fresh.endurance_pec =
        static_cast<double>(GetCellTechInfo(snap.mode).rated_endurance_pec);
    fresh.pec_at_program = static_cast<uint32_t>(snap.mean_pec);
    fresh.retention_years = 0.0;
    if (ErrorModel::Rber(fresh) > refresh_at) {
      return;
    }
  }

  for (uint64_t lba : ftl.LbasInPool(pool_id)) {
    ++stats.pages_scanned;
    auto predicted = ftl.PredictLbaRber(lba, config_.lookahead_years);
    if (!predicted.ok()) {
      continue;  // trimmed mid-scan
    }
    if (predicted.value() > refresh_at) {
      if (ftl.Refresh(lba).ok()) {
        ++stats.pages_refreshed;
      }
    }
  }
}

DegradationMonitor::RunStats DegradationMonitor::RunOnce(SimTimeUs /*now*/) {
  RunStats stats;
  ScrubPool(device_->spare_pool(), stats);
  ScrubPool(device_->rescue_pool(), stats);

  // File-level repair: the device's taint tracking identifies files whose
  // *stored* bytes absorbed unrecoverable corruption during a relocation
  // (FtlReadResult::tainted); those are the repair candidates. With a cloud
  // copy the local data is restored; without one the file is counted as at
  // risk ("SOS does not inherently rely on such redundant copies", §4.3).
  if (config_.cloud_repair) {
    Ftl& ftl = device_->ftl();
    for (uint64_t id : fs_->FileIds()) {
      const auto spec = fs_->PlacementSpecOf(id);
      if (!spec.ok() || spec.value().durability != Durability::kDegradable) {
        continue;  // only degradable data may rot; critical files stay exact
      }
      bool tainted = false;
      for (const Extent& extent : fs_->ExtentsOf(id)) {
        for (uint32_t i = 0; i < extent.blocks && !tainted; ++i) {
          tainted = ftl.IsTainted(extent.lba + i);
        }
        if (tainted) {
          break;
        }
      }
      if (!tainted) {
        continue;
      }
      if (cloud_ != nullptr && cloud_->Has(id)) {
        const std::vector<uint8_t> pristine = cloud_->Fetch(id);
        if (fs_->OverwriteFile(id, pristine).ok()) {
          ++stats.files_repaired;
        }
      } else {
        ++stats.files_at_risk;
      }
    }
  }

  lifetime_.pages_scanned += stats.pages_scanned;
  lifetime_.pages_refreshed += stats.pages_refreshed;
  lifetime_.files_repaired += stats.files_repaired;
  lifetime_.files_at_risk += stats.files_at_risk;
  return stats;
}

// ---------------------------------------------------------------------------
// AutoDeleteManager.
// ---------------------------------------------------------------------------

AutoDeleteManager::AutoDeleteManager(ExtentFileSystem* fs, const BinaryClassifier* deletion_model,
                                     const AutoDeleteConfig& config)
    : fs_(fs), deletion_model_(deletion_model), config_(config) {
  assert(fs_ != nullptr && deletion_model_ != nullptr);
}

double AutoDeleteManager::FreeFraction() const {
  const FsStats stats = fs_->Stats();
  if (stats.capacity_blocks == 0) {
    return 0.0;
  }
  const uint64_t free_blocks =
      stats.capacity_blocks > stats.used_blocks ? stats.capacity_blocks - stats.used_blocks : 0;
  return static_cast<double>(free_blocks) / static_cast<double>(stats.capacity_blocks);
}

AutoDeleteManager::RunStats AutoDeleteManager::RunOnce(SimTimeUs now) {
  RunStats stats;
  const double free_before = FreeFraction();
  if (free_before >= config_.low_water_free) {
    return stats;
  }
  ++stats.activations;
  if (trace_ != nullptr) {
    trace_->Emit(obs::TraceEvent{now, "sos.autodelete.activated"}
                     .WithF64("free_fraction", free_before));
  }

  // Rank SPARE-resident files by predicted deletion likelihood. SYS files
  // are never auto-deleted (they are, by classification, critical).
  struct Candidate {
    uint64_t id;
    double score;
    uint64_t bytes;
  };
  std::vector<Candidate> candidates;
  for (uint64_t id : fs_->FileIds()) {
    const auto spec = fs_->PlacementSpecOf(id);
    if (!spec.ok() || spec.value().durability != Durability::kDegradable) {
      continue;
    }
    const FileMeta* meta = fs_->Lookup(id);
    if (meta == nullptr) {
      continue;
    }
    candidates.push_back({id, deletion_model_->Score(*meta, now), meta->size_bytes});
  }
  std::sort(candidates.begin(), candidates.end(), [](const Candidate& a, const Candidate& b) {
    return a.score > b.score;
  });

  // First pass deletes only confident predictions; if that cannot restore
  // the high-water mark, SOS "temporarily transforms its data degradation
  // scheme to automatically delete data" (§4.5) -- the score gate is dropped
  // and the remaining SPARE files go in predicted-deletion order.
  for (const bool gated : {true, false}) {
    for (const Candidate& c : candidates) {
      if (FreeFraction() >= config_.high_water_free) {
        break;
      }
      if (gated && c.score < config_.min_delete_score) {
        break;  // candidates are sorted; the rest score lower
      }
      if (!gated && c.score >= config_.min_delete_score) {
        continue;  // already handled by the gated pass
      }
      if (fs_->DeleteFile(c.id).ok()) {
        ++stats.files_deleted;
        stats.bytes_freed += c.bytes;
        if (trace_ != nullptr) {
          trace_->Emit(obs::TraceEvent{now, "sos.autodelete.trim"}
                           .WithU64("file_id", c.id)
                           .WithF64("score", c.score)
                           .WithU64("bytes", c.bytes));
        }
      }
    }
    if (FreeFraction() >= config_.high_water_free) {
      break;
    }
  }
  if (FreeFraction() < config_.high_water_free) {
    ++stats.exhausted;
  }

  lifetime_.activations += stats.activations;
  lifetime_.files_deleted += stats.files_deleted;
  lifetime_.bytes_freed += stats.bytes_freed;
  lifetime_.exhausted += stats.exhausted;
  return stats;
}

}  // namespace sos
