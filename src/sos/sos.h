// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Umbrella header: the public API of Sustainability-Oriented Storage.
//
// Include this to get the whole stack; the individual headers remain the
// canonical documentation for each piece.
//
//   SosDevice            the split pseudo-QLC / PLC device   (sos_device.h)
//   ExtentFileSystem     host file system with placement     (host/file_system.h)
//   MigrationDaemon      nightly classify-and-demote         (daemons.h)
//   DegradationMonitor   predictive scrub + cloud repair     (daemons.h)
//   AutoDeleteManager    the 3%-free fallback                (daemons.h)
//   LifetimeSim          years-of-usage driver               (lifetime_sim.h)
//   CollectHealth        SMART-style reporting               (health.h)
//   UfsView              UFS LUN rendering                   (ufs.h)
//   classifiers          NB / logistic / boosted stumps      (classify/*.h)
//   FlashCarbonModel     embodied-carbon arithmetic          (carbon/embodied.h)
//
// Minimal use:
//
//   sos::SimClock clock;
//   sos::SosDevice device(sos::SosDeviceConfig{}, &clock);
//   sos::ExtentFileSystem fs(&device, &clock);
//   sos::PlacementDirectory placements(&device);
//   auto handle = placements.For({sos::Durability::kCritical});
//   auto id = fs.CreateFile(meta, content, handle.value());

#ifndef SOS_SRC_SOS_SOS_H_
#define SOS_SRC_SOS_SOS_H_

#include "src/carbon/embodied.h"
#include "src/carbon/market.h"
#include "src/carbon/projection.h"
#include "src/classify/boosted_stumps.h"
#include "src/classify/corpus.h"
#include "src/classify/eval.h"
#include "src/classify/logistic.h"
#include "src/classify/naive_bayes.h"
#include "src/host/compression.h"
#include "src/host/file_system.h"
#include "src/host/workload.h"
#include "src/media/quality.h"
#include "src/sos/daemons.h"
#include "src/sos/health.h"
#include "src/sos/lifetime_sim.h"
#include "src/sos/sos_device.h"
#include "src/sos/ufs.h"

#endif  // SOS_SRC_SOS_SOS_H_
