// Copyright (c) 2026 The SOS Authors. MIT License.

#include "src/sos/lifetime_sim.h"

#include <algorithm>
#include <cassert>

#include "src/classify/corpus.h"
#include "src/common/rng.h"
#include "src/media/quality.h"

namespace sos {

const char* DeviceKindName(DeviceKind kind) {
  switch (kind) {
    case DeviceKind::kSos:
      return "SOS (pQLC+PLC)";
    case DeviceKind::kTlcBaseline:
      return "TLC baseline";
    case DeviceKind::kQlcBaseline:
      return "QLC baseline";
    case DeviceKind::kPlcNaive:
      return "PLC naive";
  }
  return "???";
}

const char* DeviceKindSlug(DeviceKind kind) {
  switch (kind) {
    case DeviceKind::kSos:
      return "sos";
    case DeviceKind::kTlcBaseline:
      return "tlc";
    case DeviceKind::kQlcBaseline:
      return "qlc";
    case DeviceKind::kPlcNaive:
      return "plc_naive";
  }
  return "unknown";
}

const char* WorkloadKindName(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kMobile:
      return "mobile";
    case WorkloadKind::kFlashCache:
      return "flash_cache";
  }
  return "unknown";
}

const char* HealthStateName(HealthState state) {
  switch (state) {
    case HealthState::kHealthy:
      return "healthy";
    case HealthState::kWorn:
      return "worn";
    case HealthState::kCritical:
      return "critical";
  }
  return "unknown";
}

void LifetimeResult::ToMetrics(obs::MetricRegistry& registry, const std::string& prefix) const {
  registry.SetCounter(prefix + "sim.host_bytes_written", host_bytes_written_);
  registry.SetCounter(prefix + "sim.create_failures", create_failures_);
  registry.SetGauge(prefix + "sim.final_max_wear_ratio", final_max_wear_ratio_);
  registry.SetGauge(prefix + "sim.final_mean_wear_ratio", final_mean_wear_ratio_);
  registry.SetCounter(prefix + "sim.initial_exported_pages", initial_exported_pages_);
  registry.SetCounter(prefix + "sim.final_exported_pages", final_exported_pages_);
  registry.SetGauge(prefix + "sim.final_spare_quality", final_spare_quality_);
  registry.SetCounter(prefix + "sim.files_alive", files_alive_);
  registry.SetCounter(prefix + "sim.retrainings", retrainings_);
  registry.SetGauge(prefix + "sim.projected_lifetime_years", projected_lifetime_years_);
  // Cache-workload outcomes only; the mobile export predates these rows and
  // its goldens pin the row set above.
  if (workload_kind_ == WorkloadKind::kFlashCache) {
    registry.SetCounter(prefix + "sim.bytes_served", bytes_served_);
    registry.SetGauge(prefix + "sim.pec_variance", pec_variance_);
  }
  registry.SetCounter(prefix + "sos.daemon.activations", daemon_activations_);
  registry.SetCounter(prefix + "sos.health.transitions", health_transitions_);
  registry.SetCounter(prefix + "sos.migration.scanned", migration_.scanned);
  registry.SetCounter(prefix + "sos.migration.demoted", migration_.demoted);
  registry.SetCounter(prefix + "sos.migration.promoted", migration_.promoted);
  registry.SetCounter(prefix + "sos.migration.demote_failures", migration_.demote_failures);
  registry.SetCounter(prefix + "sos.monitor.pages_scanned", monitor_.pages_scanned);
  registry.SetCounter(prefix + "sos.monitor.pages_refreshed", monitor_.pages_refreshed);
  registry.SetCounter(prefix + "sos.monitor.files_repaired", monitor_.files_repaired);
  registry.SetCounter(prefix + "sos.monitor.files_at_risk", monitor_.files_at_risk);
  registry.SetCounter(prefix + "sos.autodelete.activations", autodelete_.activations);
  registry.SetCounter(prefix + "sos.autodelete.files_deleted", autodelete_.files_deleted);
  registry.SetCounter(prefix + "sos.autodelete.bytes_freed", autodelete_.bytes_freed);
  registry.SetCounter(prefix + "sos.autodelete.exhausted", autodelete_.exhausted);
  registry.SetCounter(prefix + "obs.trace.events", trace_.size());
  registry.SetCounter(prefix + "obs.trace.dropped", trace_dropped_);
  registry.Append(device_metrics_, prefix);
}

Ftl& FtlOf(SosDevice* sos_dev, BaselineDevice* baseline) {
  assert(sos_dev != nullptr || baseline != nullptr);
  return sos_dev != nullptr ? sos_dev->ftl() : baseline->ftl();
}

LifetimeSim::LifetimeSim(const LifetimeSimConfig& config)
    : config_(config), trace_(config.trace_capacity) {
  // Build the device.
  NandConfig nand = config_.nand;
  switch (config_.kind) {
    case DeviceKind::kSos: {
      SosDeviceConfig sos_config = config_.sos;
      sos_config.nand = nand;
      sos_device_ = std::make_unique<SosDevice>(sos_config, &clock_);
      device_ = sos_device_.get();
      break;
    }
    case DeviceKind::kTlcBaseline:
      nand.tech = CellTech::kTlc;
      baseline_device_ = std::make_unique<BaselineDevice>(nand, &clock_, EccPreset::kBch,
                                                          GcPolicy::kGreedy);
      device_ = baseline_device_.get();
      break;
    case DeviceKind::kQlcBaseline:
      nand.tech = CellTech::kQlc;
      baseline_device_ = std::make_unique<BaselineDevice>(nand, &clock_, EccPreset::kBch,
                                                          GcPolicy::kGreedy);
      device_ = baseline_device_.get();
      break;
    case DeviceKind::kPlcNaive:
      nand.tech = CellTech::kPlc;
      baseline_device_ = std::make_unique<BaselineDevice>(nand, &clock_, EccPreset::kLdpc,
                                                          GcPolicy::kGreedy);
      device_ = baseline_device_.get();
      break;
  }

  placements_ = std::make_unique<PlacementDirectory>(device_);
  fs_ = std::make_unique<ExtentFileSystem>(device_, &clock_);

  switch (config_.workload_kind) {
    case WorkloadKind::kMobile: {
      MobileWorkloadConfig wl = config_.workload;
      wl.seed = DeriveSeed({config_.seed, 0x776cull});
      workload_ = std::make_unique<MobileWorkloadGenerator>(wl);
      break;
    }
    case WorkloadKind::kFlashCache: {
      FlashCacheWorkloadConfig wl = config_.cache_workload;
      wl.seed = DeriveSeed({config_.seed, 0x776cull});
      workload_ = std::make_unique<FlashCacheWorkloadGenerator>(wl);
      break;
    }
  }

  // Train classifiers offline on a synthetic "previously scanned" corpus.
  CorpusConfig corpus_config;
  corpus_config.num_files = config_.training_files;
  corpus_config.seed = DeriveSeed({config_.seed, 0x747261696eull /* "train" */});
  const std::vector<FileMeta> corpus = GenerateCorpus(corpus_config);
  const auto pointers = AsPointers(corpus);
  priority_model_ = std::make_unique<LogisticClassifier>(
      LogisticClassifier::Train(pointers, &ExpendableLabel, corpus_config.device_age_us));
  deletion_model_ = std::make_unique<LogisticClassifier>(
      LogisticClassifier::Train(pointers, &DeletionLabel, corpus_config.device_age_us));

  if (sos_device_ != nullptr) {
    migration_ = std::make_unique<MigrationDaemon>(fs_.get(), placements_.get(),
                                                   priority_model_.get(), config_.migration);
    if (config_.enable_cloud) {
      cloud_ = std::make_unique<InMemoryCloud>();
    }
    monitor_ = std::make_unique<DegradationMonitor>(fs_.get(), sos_device_.get(),
                                                    config_.monitor, cloud_.get());
  }
  if (config_.enable_autodelete) {
    autodelete_ = std::make_unique<AutoDeleteManager>(fs_.get(), deletion_model_.get(),
                                                      config_.autodelete);
    autodelete_->SetTraceSink(&trace_);
  }
  FtlOf(sos_device_.get(), baseline_device_.get()).SetTraceSink(&trace_);
  result_.kind_ = config_.kind;
  result_.workload_kind_ = config_.workload_kind;
}

std::vector<uint8_t> LifetimeSim::ContentFor(uint64_t ref, uint64_t bytes) {
  if (!config_.nand.store_payloads) {
    return {};
  }
  std::vector<uint8_t> content(bytes);
  Rng rng(DeriveSeed({config_.seed, 0x636f6e74656e74ull /* "content" */, ref}));
  for (auto& b : content) {
    b = static_cast<uint8_t>(rng.NextU64() & 0xff);
  }
  return content;
}

void LifetimeSim::ApplyEvent(const WorkloadEvent& event) {
  if (event.at > clock_.now()) {
    clock_.AdvanceTo(event.at);
  }
  switch (event.op) {
    case WorkloadOp::kCreate: {
      FileMeta meta = event.meta;
      meta.size_bytes = std::min(meta.size_bytes, config_.file_size_cap);
      const std::vector<uint8_t> content = ContentFor(event.file_ref, meta.size_bytes);
      // Placement directive for the new file. Mobile data always lands
      // critical first (§4.4); the daemon demotes later. The flash cache
      // knows at admission time that a TTL'd object is degradable and
      // short-lived, so it says so up front. Baselines honor the handle
      // lifecycle but route every write identically.
      PlacementSpec spec;
      spec.durability = config_.workload_kind == WorkloadKind::kFlashCache &&
                                meta.true_priority == Priority::kExpendable
                            ? Durability::kDegradable
                            : Durability::kCritical;
      spec.lifetime = LifetimeHintFor(meta);
      const auto handle = placements_->For(spec);
      if (!handle.ok()) {
        ++result_.create_failures_;
        workload_->DropRef(event.file_ref);
        return;
      }
      auto created = fs_->CreateFile(meta, content, handle.value());
      if (!created.ok() && autodelete_ != nullptr) {
        // Emergency space reclamation, then retry once.
        autodelete_->RunOnce(clock_.now());
        created = fs_->CreateFile(meta, content, handle.value());
      }
      if (!created.ok()) {
        ++result_.create_failures_;
        workload_->DropRef(event.file_ref);
        return;
      }
      ref_to_fsid_[event.file_ref] = created.value();
      result_.host_bytes_written_ += meta.size_bytes;
      if (cloud_ != nullptr && !content.empty()) {
        cloud_->Store(created.value(), content);
      }
      break;
    }
    case WorkloadOp::kRead: {
      auto it = ref_to_fsid_.find(event.file_ref);
      if (it != ref_to_fsid_.end()) {
        // Reads exist to age the device (read disturb); degraded or failed
        // payloads are an expected outcome on approximate pools.
        const FileMeta* meta = fs_->Lookup(it->second);
        if (fs_->ReadFile(it->second).ok() && meta != nullptr) {
          result_.bytes_served_ += std::min(meta->size_bytes, config_.file_size_cap);
        }
      }
      break;
    }
    case WorkloadOp::kUpdate: {
      auto it = ref_to_fsid_.find(event.file_ref);
      if (it == ref_to_fsid_.end()) {
        return;
      }
      const FileMeta* meta = fs_->Lookup(it->second);
      if (meta == nullptr) {
        return;
      }
      const uint64_t bytes = std::min(meta->size_bytes, config_.file_size_cap);
      const std::vector<uint8_t> content = ContentFor(event.file_ref, bytes);
      if (fs_->OverwriteFile(it->second, content).ok()) {
        result_.host_bytes_written_ += bytes;
        if (cloud_ != nullptr && !content.empty()) {
          cloud_->Store(it->second, content);
        }
      }
      break;
    }
    case WorkloadOp::kDelete: {
      auto it = ref_to_fsid_.find(event.file_ref);
      if (it != ref_to_fsid_.end()) {
        if (cloud_ != nullptr) {
          cloud_->Forget(it->second);
        }
        // kNotFound is legal here: the auto-delete daemon may have reclaimed
        // the file already, leaving this ref stale until now.
        IgnoreResult(fs_->DeleteFile(it->second));
        ref_to_fsid_.erase(it);
      }
      break;
    }
  }
}

void LifetimeSim::RunDaemons(uint32_t day) {
  if (sos_device_ != nullptr && sos_device_->staging_enabled()) {
    // Nightly idle flush of the pseudo-SLC stage (§4.4 extension). Daemons
    // have no caller to report to; a mid-flush device failure resurfaces on
    // the next host op against the same device.
    IgnoreResult(sos_device_->FlushStage());
  }
  if (sos_device_ != nullptr) {
    // Overnight idle housekeeping: pre-pay GC so daytime writes don't stall.
    (void)sos_device_->ftl().BackgroundCollect();
  }
  if (sos_device_ != nullptr && config_.retrain_period_days > 0 && day > 0 &&
      day % config_.retrain_period_days == 0) {
    // Refit on the live file population: preferences drift and the device's
    // own mix diverges from the offline corpus over time (§4.4).
    const std::vector<const FileMeta*> files = fs_->ScanFiles();
    if (files.size() >= 200) {
      *priority_model_ = LogisticClassifier::Train(files, &ExpendableLabel, clock_.now());
      *deletion_model_ = LogisticClassifier::Train(files, &DeletionLabel, clock_.now());
      ++result_.retrainings_;
    }
  }
  if (migration_ != nullptr && config_.classify_period_days > 0 &&
      day % config_.classify_period_days == 0) {
    migration_->RunOnce(clock_.now());
    ++result_.daemon_activations_;
  }
  if (monitor_ != nullptr && config_.scrub_period_days > 0 &&
      day % config_.scrub_period_days == 0 && day > 0) {
    monitor_->RunOnce(clock_.now());
    ++result_.daemon_activations_;
  }
  if (autodelete_ != nullptr) {
    autodelete_->RunOnce(clock_.now());
    ++result_.daemon_activations_;
  }
  UpdateHealthState(day);
}

void LifetimeSim::UpdateHealthState(uint32_t day) {
  const Ftl& ftl = sos_device_ != nullptr ? sos_device_->ftl() : baseline_device_->ftl();
  const double wear = ftl.nand().MaxWearRatio();
  const double capacity_retained =
      result_.initial_exported_pages_ > 0
          ? static_cast<double>(ftl.ExportedPages()) /
                static_cast<double>(result_.initial_exported_pages_)
          : 1.0;
  HealthState next = HealthState::kHealthy;
  if (wear >= 1.0 || capacity_retained <= 0.7) {
    next = HealthState::kCritical;
  } else if (wear >= 0.5 || capacity_retained <= 0.9) {
    next = HealthState::kWorn;
  }
  if (next != health_state_) {
    ++result_.health_transitions_;
    trace_.Emit(obs::TraceEvent{clock_.now(), "sos.health.transition"}
                    .WithU64("day", day)
                    .With("from", HealthStateName(health_state_))
                    .With("to", HealthStateName(next))
                    .WithF64("max_wear_ratio", wear)
                    .WithF64("capacity_retained", capacity_retained));
    health_state_ = next;
  }
}

double LifetimeSim::EstimateSpareQuality(uint64_t* pages_out) const {
  if (sos_device_ == nullptr) {
    if (pages_out != nullptr) {
      *pages_out = 0;
    }
    return 1.0;
  }
  static const VideoQualityModel kVideoModel{VideoConfig{}};
  const Ftl& ftl = sos_device_->ftl();
  double quality_sum = 0.0;
  uint64_t pages = 0;
  for (uint32_t pool : {sos_device_->spare_pool(), sos_device_->rescue_pool()}) {
    for (uint64_t lba : ftl.LbasInPool(pool)) {
      auto rber = ftl.PredictLbaRber(lba, 0.0);
      if (!rber.ok()) {
        continue;
      }
      // ECC-less pool: user-visible BER equals raw BER. Score it with the
      // video model over a nominal media-file span.
      quality_sum += kVideoModel.ExpectedScore(rber.value(), 4 * kMiB);
      ++pages;
    }
  }
  if (pages_out != nullptr) {
    *pages_out = pages;
  }
  return pages > 0 ? quality_sum / static_cast<double>(pages) : 1.0;
}

DaySample LifetimeSim::Sample(uint32_t day) const {
  DaySample sample;
  sample.day = day;
  const Ftl& ftl = sos_device_ != nullptr ? sos_device_->ftl() : baseline_device_->ftl();
  sample.max_wear_ratio = ftl.nand().MaxWearRatio();
  sample.mean_pec = ftl.nand().MeanPec();
  sample.exported_pages = ftl.ExportedPages();
  const FsStats fs_stats = fs_->Stats();
  sample.fs_free_fraction =
      fs_stats.capacity_blocks > 0
          ? static_cast<double>(fs_stats.capacity_blocks -
                                std::min(fs_stats.used_blocks, fs_stats.capacity_blocks)) /
                static_cast<double>(fs_stats.capacity_blocks)
          : 0.0;
  sample.live_files = fs_stats.files;
  sample.retired_blocks = ftl.stats().retired_blocks();
  sample.spare_quality = EstimateSpareQuality(&sample.spare_pages);
  return sample;
}

LifetimeResult LifetimeSim::Run() {
  result_.initial_exported_pages_ =
      (sos_device_ != nullptr ? sos_device_->ftl() : baseline_device_->ftl()).ExportedPages();

  for (uint32_t day = 0; day < config_.days; ++day) {
    const SimTimeUs day_start = static_cast<SimTimeUs>(day) * kUsPerDay;
    if (day_start > clock_.now()) {
      clock_.AdvanceTo(day_start);
    }
    for (const WorkloadEvent& event : workload_->Day(day)) {
      ApplyEvent(event);
    }
    RunDaemons(day);
    if (config_.sample_period_days > 0 && day % config_.sample_period_days == 0) {
      result_.samples_.push_back(Sample(day));
    }
  }

  const Ftl& ftl = sos_device_ != nullptr ? sos_device_->ftl() : baseline_device_->ftl();
  result_.ftl_ = ftl.stats();
  result_.final_max_wear_ratio_ = ftl.nand().MaxWearRatio();
  // Mean wear ratio across the die: mean PEC over the *native-mode* rated
  // endurance is not meaningful for mixed-mode dies, so use max-wear pool
  // snapshots instead. Approximate with max ratio scaled by mean/max PEC.
  const double mean_pec = ftl.nand().MeanPec();
  result_.final_mean_wear_ratio_ =
      result_.final_max_wear_ratio_ > 0.0 && mean_pec > 0.0
          ? result_.final_max_wear_ratio_ * mean_pec /
                std::max(1.0, static_cast<double>([&] {
                           uint32_t max_pec = 0;
                           for (uint32_t b = 0; b < ftl.nand().config().num_blocks; ++b) {
                             max_pec = std::max(max_pec, ftl.nand().block_info(b).pec);
                           }
                           return max_pec;
                         }()))
          : 0.0;
  result_.final_exported_pages_ = ftl.ExportedPages();
  result_.final_spare_quality_ = EstimateSpareQuality(nullptr);
  result_.pec_variance_ = ftl.PecVariance();
  if (migration_ != nullptr) {
    result_.migration_ = migration_->lifetime_stats();
  }
  if (autodelete_ != nullptr) {
    result_.autodelete_ = autodelete_->lifetime_stats();
  }
  if (monitor_ != nullptr) {
    result_.monitor_ = monitor_->lifetime_stats();
  }
  result_.files_alive_ = fs_->Stats().files;

  const double years = static_cast<double>(config_.days) / 365.0;
  result_.projected_lifetime_years_ =
      result_.final_max_wear_ratio_ > 0.0 ? years / result_.final_max_wear_ratio_ : 1e6;

  // Capture the device-side telemetry into the portable result so exports
  // can happen on any thread after the simulator is gone.
  if (config_.capture_device_metrics) {
    obs::MetricRegistry device_registry;
    ftl.ToMetrics(device_registry, "ftl.");
    ftl.nand().ToMetrics(device_registry, "flash.die.");
    result_.device_metrics_ = device_registry.Snapshot();
  }
  result_.trace_ = trace_.events();
  result_.trace_dropped_ = trace_.dropped();
  return result_;
}

}  // namespace sos
