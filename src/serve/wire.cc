// Copyright (c) 2026 The SOS Authors. MIT License.

#include "src/serve/wire.h"

#include <cstring>

namespace sos::serve {
namespace {

void PutU16(std::vector<uint8_t>& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v & 0xff));
  out.push_back(static_cast<uint8_t>(v >> 8));
}

void PutU32(std::vector<uint8_t>& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutU64(std::vector<uint8_t>& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

uint32_t GetU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | p[i];
  }
  return v;
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | p[i];
  }
  return v;
}

// Highest StatusCode a well-formed reply may carry.
constexpr uint8_t kMaxStatusCode = static_cast<uint8_t>(StatusCode::kResourceExhausted);

bool ValidFrameType(uint8_t raw) {
  return raw >= static_cast<uint8_t>(FrameType::kRead) &&
         raw <= static_cast<uint8_t>(FrameType::kClosePlacement);
}

}  // namespace

void AppendFrame(std::vector<uint8_t>& out, const Frame& frame) {
  out.push_back(kWireMagic0);
  out.push_back(kWireMagic1);
  out.push_back(kWireVersion);
  out.push_back(static_cast<uint8_t>(frame.type) | (frame.reply ? kReplyBit : 0));
  out.push_back(static_cast<uint8_t>(frame.status));
  uint8_t flags = 0;
  if (frame.reply && frame.degraded) {
    flags |= kFlagDegraded;
  }
  if (!frame.reply) {
    flags |= static_cast<uint8_t>((frame.handle_slot & 0x0f) << 4);
  }
  out.push_back(flags);
  PutU16(out, 0);  // reserved
  PutU64(out, frame.lba);
  PutU32(out, static_cast<uint32_t>(frame.payload.size()));
  PutU32(out, frame.count);
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
}

Result<Frame> ParseFrame(std::span<const uint8_t> bytes, size_t* consumed) {
  if (bytes.size() < kWireHeaderSize) {
    return Status(StatusCode::kUnavailable, "incomplete frame header");
  }
  const uint8_t* h = bytes.data();
  if (h[0] != kWireMagic0 || h[1] != kWireMagic1) {
    return Status(StatusCode::kInvalidArgument, "bad frame magic");
  }
  if (h[2] != kWireVersion) {
    return Status(StatusCode::kInvalidArgument, "unsupported wire version");
  }
  const uint8_t raw_type = h[3];
  if (!ValidFrameType(raw_type & static_cast<uint8_t>(~kReplyBit))) {
    return Status(StatusCode::kInvalidArgument, "unknown frame type");
  }
  if (h[4] > kMaxStatusCode) {
    return Status(StatusCode::kInvalidArgument, "unknown status code");
  }
  const uint8_t flags = h[5];
  if ((flags & 0x0e) != 0) {
    return Status(StatusCode::kInvalidArgument, "reserved flag bits set");
  }
  if (h[6] != 0 || h[7] != 0) {
    return Status(StatusCode::kInvalidArgument, "reserved header bytes set");
  }
  const uint32_t payload_len = GetU32(h + 16);
  if (payload_len > kMaxFramePayload) {
    return Status(StatusCode::kInvalidArgument, "frame payload too large");
  }
  const uint32_t count = GetU32(h + 20);
  if (count > kMaxFrameCount) {
    return Status(StatusCode::kInvalidArgument, "frame count too large");
  }
  if (bytes.size() < kWireHeaderSize + payload_len) {
    return Status(StatusCode::kUnavailable, "incomplete frame payload");
  }

  Frame frame;
  frame.reply = (raw_type & kReplyBit) != 0;
  frame.type = static_cast<FrameType>(raw_type & static_cast<uint8_t>(~kReplyBit));
  frame.status = static_cast<StatusCode>(h[4]);
  frame.degraded = frame.reply && (flags & kFlagDegraded) != 0;
  frame.handle_slot = frame.reply ? 0 : static_cast<uint32_t>(flags >> 4);
  if (frame.reply && (flags & 0xf0) != 0) {
    // Bits 4..7 carry the handle slot on requests only.
    return Status(StatusCode::kInvalidArgument, "reserved reply flag bits set");
  }
  if (!frame.reply && (flags & kFlagDegraded) != 0) {
    return Status(StatusCode::kInvalidArgument, "degraded flag on a request");
  }
  frame.lba = GetU64(h + 8);
  frame.count = count == 0 ? 1 : count;
  frame.payload.assign(bytes.begin() + kWireHeaderSize,
                       bytes.begin() + kWireHeaderSize + payload_len);
  *consumed = kWireHeaderSize + payload_len;
  return frame;
}

std::vector<uint8_t> EncodeSpec(const PlacementSpec& spec) {
  // Pre-sized + memcpy rather than push_back/insert: GCC 12's
  // -Wstringop-overflow misfires on the grow-then-insert form and CI builds
  // with -Werror (same workaround as PlacementLabel).
  std::vector<uint8_t> out(3 + spec.label.size());
  out[0] = static_cast<uint8_t>(spec.durability);
  out[1] = static_cast<uint8_t>(spec.lifetime);
  out[2] = static_cast<uint8_t>(spec.update_frequency);
  if (!spec.label.empty()) {
    std::memcpy(out.data() + 3, spec.label.data(), spec.label.size());
  }
  return out;
}

Result<PlacementSpec> DecodeSpec(std::span<const uint8_t> payload) {
  if (payload.size() < 3) {
    return Status(StatusCode::kInvalidArgument, "placement spec payload too short");
  }
  if (payload[0] > static_cast<uint8_t>(Durability::kDegradable) ||
      payload[1] > static_cast<uint8_t>(LifetimeHint::kLong) ||
      payload[2] > static_cast<uint8_t>(UpdateFrequency::kFrequent)) {
    return Status(StatusCode::kInvalidArgument, "placement spec attribute out of range");
  }
  PlacementSpec spec(static_cast<Durability>(payload[0]), static_cast<LifetimeHint>(payload[1]),
                     static_cast<UpdateFrequency>(payload[2]),
                     std::string(payload.begin() + 3, payload.end()));
  return spec;
}

}  // namespace sos::serve
