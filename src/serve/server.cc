// Copyright (c) 2026 The SOS Authors. MIT License.

#include "src/serve/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <thread>
#include <utility>
#include <vector>

namespace sos::serve {
namespace {

// Writes the whole buffer, retrying on EINTR / short writes.
bool WriteAll(int fd, const std::vector<uint8_t>& bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

Frame ErrorReply(StatusCode code) {
  Frame reply;
  reply.type = FrameType::kRead;  // designated error carrier
  reply.reply = true;
  reply.status = code;
  return reply;
}

}  // namespace

bool SosdServer::HandleFrame(const Frame& frame, std::vector<uint8_t>* reply_bytes) {
  if (frame.reply) {
    AppendFrame(*reply_bytes, ErrorReply(StatusCode::kInvalidArgument));
    return false;
  }

  Frame reply;
  reply.type = frame.type;
  reply.reply = true;
  reply.lba = frame.lba;
  reply.count = frame.count;

  switch (frame.type) {
    case FrameType::kOpenPlacement: {
      auto spec = DecodeSpec(frame.payload);
      if (!spec.ok()) {
        AppendFrame(*reply_bytes, ErrorReply(spec.status().code()));
        return false;
      }
      auto opened = service_->OpenPlacement(spec.value());
      reply.status = opened.ok() ? StatusCode::kOk : opened.status().code();
      reply.lba = opened.ok() ? opened.value().id() : 0;
      break;
    }
    case FrameType::kClosePlacement: {
      reply.status = service_->ClosePlacement(PlacementHandle(frame.handle_slot)).code();
      break;
    }
    case FrameType::kDescribePlacement: {
      ServeRequest req;
      req.op = ServeOp::kDescribePlacement;
      req.handle = PlacementHandle(frame.handle_slot);
      auto future = service_->Submit(std::move(req));
      service_->RunPending();
      ServeResponse resp = future.get();
      reply.status = resp.status.code();
      if (resp.status.ok()) {
        reply.payload = EncodeSpec(resp.spec);
      }
      break;
    }
    case FrameType::kRead: {
      // Fan out per block; the service coalesces adjacent submissions back
      // into one device ReadBatch.
      std::vector<std::future<ServeResponse>> futures;
      futures.reserve(frame.count);
      for (uint32_t i = 0; i < frame.count; ++i) {
        ServeRequest req;
        req.op = ServeOp::kRead;
        req.lba = frame.lba + i;
        req.handle = PlacementHandle(frame.handle_slot);
        futures.push_back(service_->Submit(std::move(req)));
      }
      service_->RunPending();  // no-op in async mode; drives pump mode
      for (std::future<ServeResponse>& f : futures) {
        ServeResponse resp = f.get();
        if (!resp.status.ok() && reply.status == StatusCode::kOk) {
          reply.status = resp.status.code();
        }
        reply.degraded = reply.degraded || resp.degraded;
        reply.payload.insert(reply.payload.end(), resp.data.begin(), resp.data.end());
      }
      if (reply.status != StatusCode::kOk) {
        reply.payload.clear();
      }
      break;
    }
    case FrameType::kWrite: {
      if (frame.payload.empty() || frame.payload.size() % frame.count != 0) {
        AppendFrame(*reply_bytes, ErrorReply(StatusCode::kInvalidArgument));
        return false;
      }
      const size_t page = frame.payload.size() / frame.count;
      std::vector<std::future<ServeResponse>> futures;
      futures.reserve(frame.count);
      for (uint32_t i = 0; i < frame.count; ++i) {
        ServeRequest req;
        req.op = ServeOp::kWrite;
        req.lba = frame.lba + i;
        req.handle = PlacementHandle(frame.handle_slot);
        req.data.assign(frame.payload.begin() + static_cast<std::ptrdiff_t>(i * page),
                        frame.payload.begin() + static_cast<std::ptrdiff_t>((i + 1) * page));
        futures.push_back(service_->Submit(std::move(req)));
      }
      service_->RunPending();
      for (std::future<ServeResponse>& f : futures) {
        ServeResponse resp = f.get();
        if (!resp.status.ok() && reply.status == StatusCode::kOk) {
          reply.status = resp.status.code();
        }
      }
      break;
    }
    case FrameType::kTrim:
    case FrameType::kFlush: {
      ServeRequest req;
      req.op = frame.type == FrameType::kTrim ? ServeOp::kTrim : ServeOp::kFlush;
      req.lba = frame.lba;
      auto future = service_->Submit(std::move(req));
      service_->RunPending();
      reply.status = future.get().status.code();
      break;
    }
  }
  AppendFrame(*reply_bytes, reply);
  return true;
}

uint64_t SosdServer::ServeConnection(int fd) {
  std::vector<uint8_t> buffer;
  uint64_t served = 0;
  uint8_t chunk[4096];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return served;
    }
    if (n == 0) {
      return served;  // peer closed
    }
    buffer.insert(buffer.end(), chunk, chunk + n);
    // Drain every complete frame currently buffered.
    for (;;) {
      size_t consumed = 0;
      auto parsed = ParseFrame(buffer, &consumed);
      if (!parsed.ok()) {
        if (parsed.status().code() == StatusCode::kUnavailable) {
          break;  // incomplete; read more
        }
        std::vector<uint8_t> error_bytes;
        AppendFrame(error_bytes, ErrorReply(StatusCode::kInvalidArgument));
        WriteAll(fd, error_bytes);
        return served;  // malformed stream: close
      }
      buffer.erase(buffer.begin(), buffer.begin() + static_cast<std::ptrdiff_t>(consumed));
      std::vector<uint8_t> reply_bytes;
      const bool keep_open = HandleFrame(parsed.value(), &reply_bytes);
      if (!WriteAll(fd, reply_bytes) || !keep_open) {
        return served;
      }
      ++served;
    }
  }
}

void SosdServer::ServeListener(int listen_fd, const std::atomic<bool>& stop) {
  std::vector<std::thread> connections;
  while (!stop.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready < 0 && errno != EINTR) {
      break;
    }
    if (ready <= 0 || (pfd.revents & POLLIN) == 0) {
      continue;
    }
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == EAGAIN) {
        continue;
      }
      break;
    }
    connections.emplace_back([this, fd] {
      ServeConnection(fd);
      ::close(fd);
    });
  }
  for (std::thread& t : connections) {
    t.join();
  }
}

}  // namespace sos::serve
