// Copyright (c) 2026 The SOS Authors. MIT License.
//
// The sosd wire protocol: length-prefixed binary frames over a byte stream.
//
// Every frame is a fixed 24-byte little-endian header followed by
// `payload_len` payload bytes:
//
//   offset  size  field
//   0       2     magic 'S','B'
//   2       1     version (kWireVersion)
//   3       1     type (FrameType; replies set kReplyBit)
//   4       1     status (StatusCode of a reply; 0 on requests)
//   5       1     flags: bit0 = degraded (replies); bits 4..7 = placement
//                 handle slot id (requests); bits 1..3 reserved, must be 0
//   6       2     reserved, must be 0
//   8       8     lba (also carries the handle id in open-placement replies)
//   16      4     payload_len
//   20      4     count (multi-block ops; 0 and 1 both mean one block)
//
// Payloads: write request = block bytes; read reply = block bytes;
// open-placement request / describe reply = encoded PlacementSpec
// (3 attribute bytes + label). Everything else has none.
//
// Parsing is incremental and hostile-input safe: ParseFrame reports
// kUnavailable for "need more bytes" (the only retryable status) and
// kInvalidArgument for anything malformed -- bad magic, unknown version or
// type, nonzero reserved bits, oversized payload or count. A server closes
// the connection on the latter; the fuzz test feeds it arbitrary bytes and
// asserts it never does anything but one of those two outcomes.

#ifndef SOS_SRC_SERVE_WIRE_H_
#define SOS_SRC_SERVE_WIRE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/status.h"
#include "src/host/placement.h"

namespace sos::serve {

inline constexpr uint8_t kWireMagic0 = 'S';
inline constexpr uint8_t kWireMagic1 = 'B';
inline constexpr uint8_t kWireVersion = 1;
inline constexpr size_t kWireHeaderSize = 24;

// Bounds a malicious length prefix can't exceed: no device in this repo has
// pages anywhere near 1 MiB, and batches are capped well below 4096 blocks.
inline constexpr uint32_t kMaxFramePayload = 1u << 20;
inline constexpr uint32_t kMaxFrameCount = 4096;

inline constexpr uint8_t kReplyBit = 0x80;

enum class FrameType : uint8_t {
  kRead = 1,
  kWrite = 2,
  kTrim = 3,
  kFlush = 4,
  kDescribePlacement = 5,
  kOpenPlacement = 6,
  kClosePlacement = 7,
};

// Reply flag bits.
inline constexpr uint8_t kFlagDegraded = 0x01;

struct Frame {
  FrameType type = FrameType::kRead;
  bool reply = false;
  StatusCode status = StatusCode::kOk;  // meaningful on replies
  bool degraded = false;                // reply flag bit0
  uint32_t handle_slot = 0;             // request flag bits 4..7
  uint64_t lba = 0;
  uint32_t count = 1;
  std::vector<uint8_t> payload;
};

// Serializes `frame` onto `out` (appends; never fails -- oversized payloads
// are a programming error upstream and are clamped by the caller's bounds).
void AppendFrame(std::vector<uint8_t>& out, const Frame& frame);

// Parses one frame from the front of `bytes`. On Ok, *consumed is the number
// of bytes the frame occupied. kUnavailable = incomplete (retry with more
// bytes; *consumed untouched); kInvalidArgument = malformed stream.
[[nodiscard]] Result<Frame> ParseFrame(std::span<const uint8_t> bytes, size_t* consumed);

// PlacementSpec payload codec (open-placement requests, describe replies):
// durability, lifetime, update_frequency as one byte each, then the label.
std::vector<uint8_t> EncodeSpec(const PlacementSpec& spec);
[[nodiscard]] Result<PlacementSpec> DecodeSpec(std::span<const uint8_t> payload);

}  // namespace sos::serve

#endif  // SOS_SRC_SERVE_WIRE_H_
