// Copyright (c) 2026 The SOS Authors. MIT License.
//
// BoundedQueue<T>: the blocking MPMC channel of the serve layer's
// submission/completion pipeline (DESIGN.md §14).
//
// Internally synchronized -- one mutex, two condition variables -- which is
// what makes handing one to a thread-pool lambda the *sanctioned* R8 idiom:
// soslint's cross-TU index records every class with a mutex/cv/atomic member
// as a synchronized type and exempts mutating calls through its instances
// (`pool.Submit([&completions] { completions.Push(...); })`). The queue, not
// the caller, owns the synchronization.
//
// Shutdown contract (mirrors ThreadPool's): Shutdown() wakes every waiter;
// pushes after Shutdown fail with kFailedPrecondition; pops drain whatever is
// already queued and then return nullopt. Nothing blocks forever across a
// shutdown -- the ordering regression tests pin this down.

#ifndef SOS_SRC_SERVE_BOUNDED_QUEUE_H_
#define SOS_SRC_SERVE_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "src/common/status.h"

namespace sos::serve {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // Blocks while the queue is full. Fails with kFailedPrecondition once the
  // queue is closed (also when the close lands while blocked).
  [[nodiscard]] Status Push(T item) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      space_cv_.wait(lock, [this] { return closed_ || items_.size() < capacity_; });
      if (closed_) {
        return Status(StatusCode::kFailedPrecondition, "queue is closed");
      }
      items_.push_back(std::move(item));
    }
    item_cv_.notify_one();
    return Status::Ok();
  }

  // Non-blocking push: kUnavailable when full, kFailedPrecondition when
  // closed.
  [[nodiscard]] Status TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) {
        return Status(StatusCode::kFailedPrecondition, "queue is closed");
      }
      if (items_.size() >= capacity_) {
        return Status(StatusCode::kUnavailable, "queue is full");
      }
      items_.push_back(std::move(item));
    }
    item_cv_.notify_one();
    return Status::Ok();
  }

  // Blocks until an item is available or the queue is closed *and* drained;
  // nullopt only in the latter case.
  std::optional<T> Pop() {
    std::optional<T> out;
    {
      std::unique_lock<std::mutex> lock(mu_);
      item_cv_.wait(lock, [this] { return closed_ || !items_.empty(); });
      if (items_.empty()) {
        return std::nullopt;  // closed and drained
      }
      out = std::move(items_.front());
      items_.pop_front();
    }
    space_cv_.notify_one();
    return out;
  }

  // Non-blocking pop; nullopt when nothing is queued right now.
  std::optional<T> TryPop() {
    std::optional<T> out;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (items_.empty()) {
        return std::nullopt;
      }
      out = std::move(items_.front());
      items_.pop_front();
    }
    space_cv_.notify_one();
    return out;
  }

  // Sticky: wakes every blocked producer and consumer.
  void Shutdown() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    item_cv_.notify_all();
    space_cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable item_cv_;   // signaled on push/close
  std::condition_variable space_cv_;  // signaled on pop/close
  std::deque<T> items_;               // guarded by mu_
  bool closed_ = false;               // guarded by mu_; sticky
};

}  // namespace sos::serve

#endif  // SOS_SRC_SERVE_BOUNDED_QUEUE_H_
