// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Block-service clients: the caller-side API benches and tests share.
//
// BlockServiceClient is the synchronous client contract; two transports
// implement it:
//   InProcessClient -- wraps an AsyncBlockService directly (Submit + wait).
//   SocketClient    -- speaks the sosd wire protocol (wire.h) over a
//                      connected byte-stream fd, one outstanding request at
//                      a time.
// Code written against the interface runs unchanged in-process or against a
// live sosd, which is how the protocol conformance test cross-checks the
// two paths.

#ifndef SOS_SRC_SERVE_CLIENT_H_
#define SOS_SRC_SERVE_CLIENT_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/host/block_device.h"
#include "src/serve/service.h"
#include "src/serve/wire.h"

namespace sos::serve {

class BlockServiceClient {
 public:
  virtual ~BlockServiceClient() = default;

  [[nodiscard]] virtual Result<PlacementHandle> OpenPlacement(const PlacementSpec& spec) = 0;
  [[nodiscard]] virtual Status ClosePlacement(PlacementHandle handle) = 0;
  [[nodiscard]] virtual Result<PlacementSpec> DescribePlacement(PlacementHandle handle) = 0;

  // `handle` on Read is a QoS durability hint (it classifies the request);
  // the returned bytes come from wherever the device mapped the LBA.
  [[nodiscard]] virtual Status Write(uint64_t lba, std::span<const uint8_t> data,
                                     PlacementHandle handle) = 0;
  [[nodiscard]] virtual Result<BlockReadResult> Read(uint64_t lba,
                                                     PlacementHandle hint = {}) = 0;
  // Reads `count` consecutive blocks starting at `lba` in one logical call;
  // transports turn this into a coalescible batch.
  [[nodiscard]] virtual Result<std::vector<BlockReadResult>> ReadBatch(
      uint64_t lba, uint32_t count, PlacementHandle hint = {}) = 0;
  [[nodiscard]] virtual Status Trim(uint64_t lba) = 0;
  [[nodiscard]] virtual Status Flush() = 0;
};

class InProcessClient final : public BlockServiceClient {
 public:
  // `service` must outlive the client.
  explicit InProcessClient(AsyncBlockService* service) : service_(service) {}

  [[nodiscard]] Result<PlacementHandle> OpenPlacement(const PlacementSpec& spec) override;
  [[nodiscard]] Status ClosePlacement(PlacementHandle handle) override;
  [[nodiscard]] Result<PlacementSpec> DescribePlacement(PlacementHandle handle) override;
  [[nodiscard]] Status Write(uint64_t lba, std::span<const uint8_t> data,
                             PlacementHandle handle) override;
  [[nodiscard]] Result<BlockReadResult> Read(uint64_t lba, PlacementHandle hint) override;
  [[nodiscard]] Result<std::vector<BlockReadResult>> ReadBatch(uint64_t lba, uint32_t count,
                                                               PlacementHandle hint) override;
  [[nodiscard]] Status Trim(uint64_t lba) override;
  [[nodiscard]] Status Flush() override;

  AsyncBlockService* service() { return service_; }

 private:
  // Submits and waits, pumping inline when the service is in pump mode.
  ServeResponse Roundtrip(ServeRequest req);

  AsyncBlockService* const service_;
};

class SocketClient final : public BlockServiceClient {
 public:
  // Takes ownership of the connected fd (closed on destruction).
  explicit SocketClient(int fd) : fd_(fd) {}
  ~SocketClient() override;

  SocketClient(const SocketClient&) = delete;
  SocketClient& operator=(const SocketClient&) = delete;

  [[nodiscard]] Result<PlacementHandle> OpenPlacement(const PlacementSpec& spec) override;
  [[nodiscard]] Status ClosePlacement(PlacementHandle handle) override;
  [[nodiscard]] Result<PlacementSpec> DescribePlacement(PlacementHandle handle) override;
  [[nodiscard]] Status Write(uint64_t lba, std::span<const uint8_t> data,
                             PlacementHandle handle) override;
  [[nodiscard]] Result<BlockReadResult> Read(uint64_t lba, PlacementHandle hint) override;
  [[nodiscard]] Result<std::vector<BlockReadResult>> ReadBatch(uint64_t lba, uint32_t count,
                                                               PlacementHandle hint) override;
  [[nodiscard]] Status Trim(uint64_t lba) override;
  [[nodiscard]] Status Flush() override;

 private:
  // One request frame out, one reply frame back. kUnavailable when the
  // connection drops mid-exchange.
  Result<Frame> Roundtrip(const Frame& request);

  int fd_;
  std::vector<uint8_t> buffer_;  // bytes read past the last parsed reply
};

}  // namespace sos::serve

#endif  // SOS_SRC_SERVE_CLIENT_H_
