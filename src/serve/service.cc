// Copyright (c) 2026 The SOS Authors. MIT License.

#include "src/serve/service.h"

#include <utility>

namespace sos::serve {

AsyncBlockService::AsyncBlockService(SosDevice* device, SimClock* clock,
                                     const ServeConfig& config)
    : device_(device),
      clock_(clock),
      config_(config),
      scheduler_(config.qos, config.weights),
      sim_now_us_(clock->now()) {
  if (config_.workers > 0) {
    completions_ = std::make_unique<BoundedQueue<Completion>>(config_.submission_depth);
    completion_thread_ = std::thread([this] { CompletionLoop(); });
    pool_ = std::make_unique<ThreadPool>(config_.workers);
    worker_futures_.reserve(config_.workers);
    for (size_t i = 0; i < config_.workers; ++i) {
      worker_futures_.push_back(pool_->Submit([this] { WorkerLoop(); }));
    }
  }
}

AsyncBlockService::~AsyncBlockService() { Shutdown(); }

Result<PlacementHandle> AsyncBlockService::OpenPlacement(const PlacementSpec& spec) {
  std::lock_guard<std::mutex> gate(device_mu_);
  auto opened = device_->OpenPlacement(spec);
  if (opened.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    handle_specs_[opened.value().id()] = spec;
  }
  return opened;
}

Status AsyncBlockService::ClosePlacement(PlacementHandle handle) {
  std::lock_guard<std::mutex> gate(device_mu_);
  Status closed = device_->ClosePlacement(handle);
  if (closed.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    handle_specs_.erase(handle.id());
  }
  return closed;
}

QosClass AsyncBlockService::Classify(const ServeRequest& req) const {
  switch (req.op) {
    case ServeOp::kFlush:
      return QosClass::kMaintenance;
    case ServeOp::kTrim:
      return QosClass::kBulk;
    case ServeOp::kDescribePlacement:
      return QosClass::kSysRead;
    case ServeOp::kRead:
    case ServeOp::kWrite:
      break;
  }
  // Reads carry the handle as a durability hint; writes place under it. A
  // handle this service did not broker (or an invalid one) defaults to bulk
  // -- the device will report the lifecycle error on the write path.
  auto it = handle_specs_.find(req.handle.id());
  const bool critical = it != handle_specs_.end() && it->second.durability == Durability::kCritical;
  if (!critical) {
    return QosClass::kBulk;
  }
  return req.op == ServeOp::kRead ? QosClass::kSysRead : QosClass::kSysWrite;
}

std::future<ServeResponse> AsyncBlockService::Submit(ServeRequest req) {
  std::promise<ServeResponse> promise;
  std::future<ServeResponse> future = promise.get_future();

  Pending pending;
  pending.req = std::move(req);

  std::unique_lock<std::mutex> lock(mu_);
  pending.cls = Classify(pending.req);
  if (config_.workers == 0) {
    // Pump mode is single-caller: blocking on space would deadlock, so make
    // room by dispatching inline instead.
    while (!stopping_ && !scheduler_.HasRoom(pending.cls, config_.submission_depth)) {
      lock.unlock();
      RunPending(1);
      lock.lock();
    }
  } else {
    space_cv_.wait(lock, [&] {
      return stopping_ || scheduler_.HasRoom(pending.cls, config_.submission_depth);
    });
  }
  if (stopping_) {
    ++stats_.rejected;
    lock.unlock();
    ServeResponse resp;
    resp.status = Status(StatusCode::kUnavailable, "service is shutting down");
    resp.cls = pending.cls;
    promise.set_value(std::move(resp));
    return future;
  }
  pending.seq = seq_++;
  pending.submit_sim_us = sim_now_us_.load(std::memory_order_relaxed);
  pending.promise = std::move(promise);
  ++stats_.submitted;
  scheduler_.Enqueue(std::move(pending));
  lock.unlock();
  work_cv_.notify_one();
  return future;
}

bool AsyncBlockService::PopBatchLocked(Batch* batch) {
  std::optional<Pending> first = scheduler_.Next();
  if (!first.has_value()) {
    return false;
  }
  const QosClass cls = first->cls;
  const ServeOp op = first->req.op;
  const uint64_t start_lba = first->req.lba;
  const PlacementHandle handle = first->req.handle;
  batch->reqs.push_back(std::move(*first));
  if (config_.coalesce && (op == ServeOp::kRead || op == ServeOp::kWrite)) {
    while (batch->reqs.size() < config_.max_coalesce) {
      std::optional<Pending> next = scheduler_.TakeAdjacent(
          cls, op, start_lba + batch->reqs.size(), handle, config_.coalesce_window);
      if (!next.has_value()) {
        break;
      }
      batch->reqs.push_back(std::move(*next));
    }
  }
  return true;
}

void AsyncBlockService::ExecuteBatch(Batch batch) {
  const size_t n = batch.reqs.size();
  std::vector<ServeResponse> resps(n);

  std::unique_lock<std::mutex> gate(device_mu_);
  const ServeOp op = batch.reqs.front().req.op;
  if (op == ServeOp::kRead && n > 1) {
    auto results = device_->ReadBatch(batch.reqs.front().req.lba, static_cast<uint32_t>(n));
    for (size_t i = 0; i < n; ++i) {
      if (results[i].ok()) {
        resps[i].data = std::move(results[i].value().data);
        resps[i].degraded = results[i].value().degraded;
      } else {
        resps[i].status = results[i].status();
      }
    }
  } else if (op == ServeOp::kWrite && n > 1) {
    std::vector<std::vector<uint8_t>> pages;
    pages.reserve(n);
    for (Pending& p : batch.reqs) {
      pages.push_back(std::move(p.req.data));
    }
    std::vector<Status> statuses =
        device_->WriteBatch(batch.reqs.front().req.lba, pages, batch.reqs.front().req.handle);
    for (size_t i = 0; i < n; ++i) {
      resps[i].status = statuses[i];
    }
  } else {
    for (size_t i = 0; i < n; ++i) {
      Pending& p = batch.reqs[i];
      switch (p.req.op) {
        case ServeOp::kRead: {
          auto result = device_->Read(p.req.lba);
          if (result.ok()) {
            resps[i].data = std::move(result.value().data);
            resps[i].degraded = result.value().degraded;
          } else {
            resps[i].status = result.status();
          }
          break;
        }
        case ServeOp::kWrite:
          resps[i].status = device_->Write(p.req.lba, p.req.data, p.req.handle);
          break;
        case ServeOp::kTrim:
          resps[i].status = device_->Trim(p.req.lba);
          break;
        case ServeOp::kFlush: {
          if (device_->staging_enabled()) {
            auto flushed = device_->FlushStage();
            if (!flushed.ok()) {
              resps[i].status = flushed.status();
            }
          }
          device_->ftl().BackgroundCollect();
          break;
        }
        case ServeOp::kDescribePlacement: {
          auto described = device_->DescribePlacement(p.req.handle);
          if (described.ok()) {
            resps[i].spec = described.value();
          } else {
            resps[i].status = described.status();
          }
          break;
        }
      }
    }
  }
  const uint64_t now = clock_->now();
  sim_now_us_.store(now, std::memory_order_relaxed);
  gate.unlock();

  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.batches;
    stats_.coalesced += n - 1;
  }

  for (size_t i = 0; i < n; ++i) {
    Completion completion;
    Pending& p = batch.reqs[i];
    completion.promise = std::move(p.promise);
    completion.resp = std::move(resps[i]);
    completion.resp.cls = p.cls;
    completion.resp.submit_sim_us = p.submit_sim_us;
    completion.resp.complete_sim_us = now;
    if (completions_ != nullptr) {
      // The R8-sanctioned hand-off: the queue is internally synchronized;
      // the drain thread resolves the future. Push only fails after Shutdown,
      // which Shutdown orders strictly after every worker has exited.
      if (completions_->Push(std::move(completion)).ok()) {
        continue;
      }
    }
    DeliverCompletion(std::move(completion));
  }
}

void AsyncBlockService::DeliverCompletion(Completion completion) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    const uint32_t c = static_cast<uint32_t>(completion.resp.cls);
    ++stats_.completed;
    ++stats_.per_class[c].completed;
    if (!completion.resp.status.ok()) {
      ++stats_.per_class[c].errors;
    }
    latency_us_[c].Add(
        static_cast<double>(completion.resp.complete_sim_us - completion.resp.submit_sim_us));
  }
  idle_cv_.notify_all();
  completion.promise.set_value(std::move(completion.resp));
}

void AsyncBlockService::WorkerLoop() {
  for (;;) {
    Batch batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stopping_ || !scheduler_.empty(); });
      if (!PopBatchLocked(&batch)) {
        if (stopping_) {
          return;
        }
        continue;
      }
    }
    space_cv_.notify_all();
    ExecuteBatch(std::move(batch));
  }
}

void AsyncBlockService::CompletionLoop() {
  while (std::optional<Completion> completion = completions_->Pop()) {
    DeliverCompletion(std::move(*completion));
  }
}

size_t AsyncBlockService::RunPending(size_t max_batches) {
  if (config_.workers != 0) {
    return 0;  // async mode dispatches itself
  }
  size_t completed = 0;
  for (size_t b = 0; b < max_batches; ++b) {
    Batch batch;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!PopBatchLocked(&batch)) {
        break;
      }
    }
    completed += batch.reqs.size();
    ExecuteBatch(std::move(batch));
  }
  return completed;
}

void AsyncBlockService::Drain() {
  if (config_.workers == 0) {
    RunPending();
  }
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return stats_.completed >= stats_.submitted; });
}

void AsyncBlockService::Shutdown() {
  Drain();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      return;
    }
    stopping_ = true;
  }
  work_cv_.notify_all();
  space_cv_.notify_all();
  if (config_.workers > 0) {
    for (std::future<void>& worker : worker_futures_) {
      worker.get();
    }
    pool_->Shutdown();
    completions_->Shutdown();
    completion_thread_.join();
  }
}

ServeStats AsyncBlockService::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

LatencySummary AsyncBlockService::Latency(QosClass cls) const {
  Percentiles samples;
  {
    std::lock_guard<std::mutex> lock(mu_);
    samples = latency_us_[static_cast<uint32_t>(cls)];
  }
  LatencySummary summary;
  summary.count = samples.count();
  summary.p50 = samples.Get(50);
  summary.p99 = samples.Get(99);
  summary.p999 = samples.Get(99.9);
  return summary;
}

}  // namespace sos::serve
