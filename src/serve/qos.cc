// Copyright (c) 2026 The SOS Authors. MIT License.

#include "src/serve/qos.h"

#include <utility>

namespace sos::serve {

QosScheduler::QosScheduler(bool qos_enabled, const QosWeights& weights)
    : qos_enabled_(qos_enabled), weights_(weights) {
  for (uint32_t c = 0; c < kNumQosClasses; ++c) {
    credit_[c] = weights_.of(static_cast<QosClass>(c));
  }
}

bool QosScheduler::HasRoom(QosClass cls, size_t depth) const {
  const size_t cap = (cls == QosClass::kSysRead || cls == QosClass::kSysWrite)
                         ? depth
                         : (depth / 2 == 0 ? 1 : depth / 2);
  return queues_[static_cast<uint32_t>(cls)].size() < cap;
}

void QosScheduler::Enqueue(Pending pending) {
  queues_[static_cast<uint32_t>(pending.cls)].push_back(std::move(pending));
  ++size_;
}

std::optional<Pending> QosScheduler::Next() {
  if (size_ == 0) {
    return std::nullopt;
  }
  if (!qos_enabled_) {
    // Global FIFO: the head with the smallest admission seq across classes.
    uint32_t best = kNumQosClasses;
    for (uint32_t c = 0; c < kNumQosClasses; ++c) {
      if (queues_[c].empty()) {
        continue;
      }
      if (best == kNumQosClasses || queues_[c].front().seq < queues_[best].front().seq) {
        best = c;
      }
    }
    Pending out = std::move(queues_[best].front());
    queues_[best].pop_front();
    --size_;
    return out;
  }
  // Weighted round-robin: highest-priority backlogged class with credit; a
  // cycle ends when every backlogged class has spent its credit.
  for (;;) {
    for (uint32_t c = 0; c < kNumQosClasses; ++c) {
      if (queues_[c].empty() || credit_[c] == 0) {
        continue;
      }
      --credit_[c];
      Pending out = std::move(queues_[c].front());
      queues_[c].pop_front();
      --size_;
      return out;
    }
    for (uint32_t c = 0; c < kNumQosClasses; ++c) {
      credit_[c] = weights_.of(static_cast<QosClass>(c));
    }
  }
}

std::optional<Pending> QosScheduler::TakeAdjacent(QosClass cls, ServeOp op, uint64_t lba,
                                                  PlacementHandle handle, uint32_t window) {
  std::deque<Pending>& queue = queues_[static_cast<uint32_t>(cls)];
  const size_t limit = window < queue.size() ? window : queue.size();
  for (size_t i = 0; i < limit; ++i) {
    Pending& cand = queue[i];
    if (cand.req.op == op && cand.req.lba == lba && cand.req.handle == handle) {
      Pending out = std::move(cand);
      queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(i));
      --size_;
      return out;
    }
  }
  return std::nullopt;
}

}  // namespace sos::serve
