// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Request/response value types of the serve layer (DESIGN.md §14).
//
// A ServeRequest is one block-service operation as submitted by a client;
// the service classifies it into a QosClass at admission (from the op and
// the placement handle's declared durability) and hands the caller a future
// for the ServeResponse. Everything here is plain data -- the scheduling,
// synchronization and device access live in service.{h,cc}.

#ifndef SOS_SRC_SERVE_REQUEST_H_
#define SOS_SRC_SERVE_REQUEST_H_

#include <cstdint>
#include <future>
#include <vector>

#include "src/common/status.h"
#include "src/common/units.h"
#include "src/host/placement.h"

namespace sos::serve {

// The block-service operations sosd speaks (wire.h mirrors these as frame
// types, plus the placement-handle lifecycle frames).
enum class ServeOp : uint8_t {
  kRead = 0,
  kWrite = 1,
  kTrim = 2,
  kFlush = 3,
  kDescribePlacement = 4,
};

inline const char* ServeOpName(ServeOp op) {
  switch (op) {
    case ServeOp::kRead:
      return "read";
    case ServeOp::kWrite:
      return "write";
    case ServeOp::kTrim:
      return "trim";
    case ServeOp::kFlush:
      return "flush";
    case ServeOp::kDescribePlacement:
      return "describe";
  }
  return "?";
}

// QoS classes in strict priority order of the weighted scheduler. The class
// is derived, never declared: critical-handle traffic is SYS-bound, so it
// must not queue behind SPARE bulk writes or maintenance work (the per-pool
// QoS requirement of §14).
enum class QosClass : uint8_t {
  kSysRead = 0,      // reads under a critical (SYS-pool) handle + describes
  kSysWrite = 1,     // writes under a critical handle
  kBulk = 2,         // degradable reads/writes, trims
  kMaintenance = 3,  // flushes (stage drain + background GC)
};

inline constexpr uint32_t kNumQosClasses = 4;

inline const char* QosClassName(QosClass cls) {
  switch (cls) {
    case QosClass::kSysRead:
      return "sys_read";
    case QosClass::kSysWrite:
      return "sys_write";
    case QosClass::kBulk:
      return "bulk";
    case QosClass::kMaintenance:
      return "maintenance";
  }
  return "?";
}

// One submitted operation. `data` is the payload for writes; `handle` is
// required for writes (placement) and consulted for reads only to classify
// (a read's bytes come from the device's own mapping).
struct ServeRequest {
  ServeOp op = ServeOp::kRead;
  uint64_t lba = 0;
  std::vector<uint8_t> data;
  PlacementHandle handle;
};

// The completion a client's future resolves to.
struct ServeResponse {
  Status status;
  std::vector<uint8_t> data;     // read payload (empty otherwise)
  bool degraded = false;         // read served from approximate storage
  PlacementSpec spec;            // describe-placement answer
  QosClass cls = QosClass::kBulk;
  // Sim-time bracket of the request: admission -> completion. The difference
  // is the per-class latency bench_serve reports (sim time, so the numbers
  // are deterministic and golden-able; wall clock never appears here).
  SimTimeUs submit_sim_us = 0;
  SimTimeUs complete_sim_us = 0;
};

// A request in flight inside the service: the scheduler's unit of work.
// Move-only (it owns the promise side of the client's future).
struct Pending {
  ServeRequest req;
  std::promise<ServeResponse> promise;
  QosClass cls = QosClass::kBulk;
  uint64_t seq = 0;  // admission order; the QoS-off FIFO key
  SimTimeUs submit_sim_us = 0;

  Pending() = default;
  Pending(Pending&&) = default;
  Pending& operator=(Pending&&) = default;
  Pending(const Pending&) = delete;
  Pending& operator=(const Pending&) = delete;
};

}  // namespace sos::serve

#endif  // SOS_SRC_SERVE_REQUEST_H_
