// Copyright (c) 2026 The SOS Authors. MIT License.
//
// AsyncBlockService: a thread-safe async request core over SosDevice
// (DESIGN.md §14 -- the sosd tentpole).
//
// SosDevice and the FTL beneath it are single-caller by design: the
// deterministic sim path drives them from one thread and the goldens depend
// on that op schedule. This layer is the multi-caller adapter. Clients
// Submit() requests from any number of threads and get futures; internally
// the service
//
//   1. classifies each request into a QosClass from its op and the placement
//      handle's declared durability (critical -> SYS classes),
//   2. admits it into a bounded submission queue with per-class capacity
//      (bulk/maintenance can occupy at most half the depth -- per-pool
//      admission, so background work never starves SYS),
//   3. dispatches via a weighted scheduler (qos.h) on a fixed worker pool
//      (src/common/thread_pool), coalescing adjacent-LBA requests of the
//      same class/op/handle into one ReadBatch/WriteBatch (which the device
//      turns into physical ReadRun/ProgramRun stretches),
//   4. serializes all device + sim-clock access behind one device gate
//      mutex, so the device itself never sees concurrency, and
//   5. hands completions to a drain thread through a BoundedQueue -- the
//      sanctioned R8 queue hand-off idiom -- which resolves the futures and
//      records per-class sim-time latency.
//
// Two execution modes, same scheduling logic:
//   workers == 0  -- deterministic pump mode: no threads are created; the
//                    caller drives dispatch with RunPending(). Benches and
//                    QoS unit tests use this so latency goldens are exact.
//   workers > 0   -- async mode: N long-lived worker jobs on a ThreadPool
//                    plus one completion-drain thread. The stress harness
//                    runs this under TSan.
//
// Latency is sim time end to end: Submit stamps the current sim time,
// completion stamps it again after the device batch ran. Wall clock never
// enters any number this class reports.

#ifndef SOS_SRC_SERVE_SERVICE_H_
#define SOS_SRC_SERVE_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "src/common/sim_clock.h"
#include "src/common/stats.h"
#include "src/common/thread_pool.h"
#include "src/serve/bounded_queue.h"
#include "src/serve/qos.h"
#include "src/serve/request.h"
#include "src/sos/sos_device.h"

namespace sos::serve {

struct ServeConfig {
  // 0 = pump mode (caller drives via RunPending; fully deterministic).
  size_t workers = 0;
  // Total submission-queue depth; bulk/maintenance classes are each capped
  // at half of it (see QosScheduler::HasRoom).
  size_t submission_depth = 256;
  bool qos = true;
  QosWeights weights;
  // Coalescing: merge up to max_coalesce forward-adjacent same-class
  // same-op same-handle requests per dispatch, scanning at most
  // coalesce_window queued entries per probe.
  bool coalesce = true;
  uint32_t max_coalesce = 8;
  uint32_t coalesce_window = 32;
};

// Per-class completion statistics snapshot.
struct ClassStats {
  uint64_t completed = 0;
  uint64_t errors = 0;  // completions with !status.ok()
};

struct ServeStats {
  ClassStats per_class[kNumQosClasses];
  uint64_t submitted = 0;
  uint64_t completed = 0;
  uint64_t rejected = 0;  // refused at admission (shutdown)
  uint64_t batches = 0;   // device dispatches
  uint64_t coalesced = 0; // requests that rode along in a multi-request batch
};

// Sim-time latency percentiles for one class, in microseconds.
struct LatencySummary {
  uint64_t count = 0;
  double p50 = 0;
  double p99 = 0;
  double p999 = 0;
};

class AsyncBlockService {
 public:
  // `device` and `clock` must outlive the service. The clock must be the
  // device's own sim clock (the gate advances it on every dispatch).
  AsyncBlockService(SosDevice* device, SimClock* clock, const ServeConfig& config);
  ~AsyncBlockService();

  AsyncBlockService(const AsyncBlockService&) = delete;
  AsyncBlockService& operator=(const AsyncBlockService&) = delete;

  // --- Control plane (synchronous; brokered so classification can see the
  // declared durability without a device round-trip per request) -----------

  [[nodiscard]] Result<PlacementHandle> OpenPlacement(const PlacementSpec& spec);
  [[nodiscard]] Status ClosePlacement(PlacementHandle handle);

  // --- Data plane ----------------------------------------------------------

  // Thread-safe. Blocks while the target class's admission quota is full;
  // fails fast (future resolves to kUnavailable) once shutdown began.
  [[nodiscard]] std::future<ServeResponse> Submit(ServeRequest req);

  // Pump mode only (workers == 0): dispatches up to `max_batches` scheduler
  // batches inline on the calling thread, delivering completions before
  // returning. Returns the number of requests completed.
  size_t RunPending(size_t max_batches = ~size_t{0});

  // Blocks until every submitted request has completed. In pump mode this
  // pumps inline; in async mode it waits on the workers.
  void Drain();

  // Orderly stop: drains queued work, then joins workers and the completion
  // thread. Idempotent; the destructor calls it. Submissions racing with
  // shutdown resolve to kUnavailable instead of blocking.
  void Shutdown();

  // --- Introspection -------------------------------------------------------

  ServeStats Stats() const;
  // Percentiles are computed over a snapshot copy; callable concurrently.
  LatencySummary Latency(QosClass cls) const;

  SosDevice* device() { return device_; }
  const ServeConfig& config() const { return config_; }

 private:
  // One dispatched device batch: 1..max_coalesce requests, ascending
  // contiguous LBAs when size > 1.
  struct Batch {
    std::vector<Pending> reqs;
  };

  struct Completion {
    std::promise<ServeResponse> promise;
    ServeResponse resp;
  };

  QosClass Classify(const ServeRequest& req) const;  // callers hold mu_
  bool PopBatchLocked(Batch* batch);                 // callers hold mu_
  void ExecuteBatch(Batch batch);
  void DeliverCompletion(Completion completion);
  void WorkerLoop();
  void CompletionLoop();

  SosDevice* const device_;
  SimClock* const clock_;
  const ServeConfig config_;

  // Guards scheduler_, handle_specs_, seq_, stats counters, and the latency
  // samplers. Never held across a device call.
  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // scheduler gained work / stopping
  std::condition_variable space_cv_;  // scheduler freed admission space
  std::condition_variable idle_cv_;   // completed_ caught up to submitted_
  QosScheduler scheduler_;
  std::map<uint32_t, PlacementSpec> handle_specs_;  // open slot id -> spec
  uint64_t seq_ = 0;
  ServeStats stats_;
  Percentiles latency_us_[kNumQosClasses];
  bool stopping_ = false;

  // The device gate: all SosDevice and SimClock access happens under this
  // mutex, one batch at a time -- the external synchronization layer that
  // keeps the device single-caller. Acquired after (never while holding)
  // mu_.
  std::mutex device_mu_;
  // Sim-time mirror maintained under device_mu_, readable without it at
  // Submit for the admission timestamp.
  std::atomic<uint64_t> sim_now_us_;

  // Async mode only.
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<BoundedQueue<Completion>> completions_;
  std::thread completion_thread_;
  std::vector<std::future<void>> worker_futures_;
};

}  // namespace sos::serve

#endif  // SOS_SRC_SERVE_SERVICE_H_
