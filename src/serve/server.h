// Copyright (c) 2026 The SOS Authors. MIT License.
//
// SosdServer: speaks the sosd wire protocol (wire.h) on byte-stream file
// descriptors and forwards requests into an AsyncBlockService.
//
// One connection = one blocking parse/submit/reply loop (ServeConnection),
// usable directly on a socketpair end in tests. tools/sosd adds the listening
// socket and runs ServeConnection on a thread per accepted client
// (ServeListener). Frame handling:
//
//   - multi-count reads/writes fan out into per-block submissions (which the
//     service's coalescer merges back into device batches); the reply
//     aggregates payloads and reports the first non-ok status;
//   - placement lifecycle frames run synchronously on the service's control
//     plane;
//   - a malformed frame gets one kInvalidArgument error reply (type kRead,
//     the protocol's designated error carrier) and the connection is closed.
//     Incomplete frames just wait for more bytes.

#ifndef SOS_SRC_SERVE_SERVER_H_
#define SOS_SRC_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>

#include "src/serve/service.h"
#include "src/serve/wire.h"

namespace sos::serve {

class SosdServer {
 public:
  // `service` must outlive the server.
  explicit SosdServer(AsyncBlockService* service) : service_(service) {}

  // Serves one established connection until the peer closes, an I/O error
  // occurs, or a malformed frame arrives. Blocking; run it on its own
  // thread. Returns the number of request frames served.
  uint64_t ServeConnection(int fd);

  // Accept loop for a listening socket: spawns a thread per connection and
  // polls `stop` between accepts. Returns when `stop` becomes true or the
  // listening socket fails. Joins all connection threads before returning.
  void ServeListener(int listen_fd, const std::atomic<bool>& stop);

  AsyncBlockService* service() { return service_; }

 private:
  // Handles one parsed request frame; appends the reply bytes. Returns false
  // when the frame is unserviceable and the connection should close.
  bool HandleFrame(const Frame& frame, std::vector<uint8_t>* reply);

  AsyncBlockService* const service_;
};

}  // namespace sos::serve

#endif  // SOS_SRC_SERVE_SERVER_H_
