// Copyright (c) 2026 The SOS Authors. MIT License.

#include "src/serve/client.h"

#include <unistd.h>

#include <cerrno>
#include <utility>

namespace sos::serve {

// --- InProcessClient --------------------------------------------------------

ServeResponse InProcessClient::Roundtrip(ServeRequest req) {
  std::future<ServeResponse> future = service_->Submit(std::move(req));
  service_->RunPending();  // drives pump mode; no-op with workers
  return future.get();
}

Result<PlacementHandle> InProcessClient::OpenPlacement(const PlacementSpec& spec) {
  return service_->OpenPlacement(spec);
}

Status InProcessClient::ClosePlacement(PlacementHandle handle) {
  return service_->ClosePlacement(handle);
}

Result<PlacementSpec> InProcessClient::DescribePlacement(PlacementHandle handle) {
  ServeRequest req;
  req.op = ServeOp::kDescribePlacement;
  req.handle = handle;
  ServeResponse resp = Roundtrip(std::move(req));
  if (!resp.status.ok()) {
    return resp.status;
  }
  return resp.spec;
}

Status InProcessClient::Write(uint64_t lba, std::span<const uint8_t> data,
                              PlacementHandle handle) {
  ServeRequest req;
  req.op = ServeOp::kWrite;
  req.lba = lba;
  req.data.assign(data.begin(), data.end());
  req.handle = handle;
  return Roundtrip(std::move(req)).status;
}

Result<BlockReadResult> InProcessClient::Read(uint64_t lba, PlacementHandle hint) {
  ServeRequest req;
  req.op = ServeOp::kRead;
  req.lba = lba;
  req.handle = hint;
  ServeResponse resp = Roundtrip(std::move(req));
  if (!resp.status.ok()) {
    return resp.status;
  }
  BlockReadResult result;
  result.data = std::move(resp.data);
  result.degraded = resp.degraded;
  return result;
}

Result<std::vector<BlockReadResult>> InProcessClient::ReadBatch(uint64_t lba, uint32_t count,
                                                                PlacementHandle hint) {
  std::vector<std::future<ServeResponse>> futures;
  futures.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    ServeRequest req;
    req.op = ServeOp::kRead;
    req.lba = lba + i;
    req.handle = hint;
    futures.push_back(service_->Submit(std::move(req)));
  }
  service_->RunPending();
  std::vector<BlockReadResult> results;
  results.reserve(count);
  for (std::future<ServeResponse>& f : futures) {
    ServeResponse resp = f.get();
    if (!resp.status.ok()) {
      return resp.status;
    }
    BlockReadResult result;
    result.data = std::move(resp.data);
    result.degraded = resp.degraded;
    results.push_back(std::move(result));
  }
  return results;
}

Status InProcessClient::Trim(uint64_t lba) {
  ServeRequest req;
  req.op = ServeOp::kTrim;
  req.lba = lba;
  return Roundtrip(std::move(req)).status;
}

Status InProcessClient::Flush() {
  ServeRequest req;
  req.op = ServeOp::kFlush;
  return Roundtrip(std::move(req)).status;
}

// --- SocketClient -----------------------------------------------------------

SocketClient::~SocketClient() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

Result<Frame> SocketClient::Roundtrip(const Frame& request) {
  std::vector<uint8_t> out;
  AppendFrame(out, request);
  size_t off = 0;
  while (off < out.size()) {
    const ssize_t n = ::write(fd_, out.data() + off, out.size() - off);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Status(StatusCode::kUnavailable, "connection write failed");
    }
    off += static_cast<size_t>(n);
  }
  for (;;) {
    size_t consumed = 0;
    auto parsed = ParseFrame(buffer_, &consumed);
    if (parsed.ok()) {
      buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(consumed));
      if (!parsed.value().reply) {
        return Status(StatusCode::kInvalidArgument, "peer sent a request frame");
      }
      return parsed;
    }
    if (parsed.status().code() != StatusCode::kUnavailable) {
      return parsed.status();
    }
    uint8_t chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Status(StatusCode::kUnavailable, "connection read failed");
    }
    if (n == 0) {
      return Status(StatusCode::kUnavailable, "connection closed by peer");
    }
    buffer_.insert(buffer_.end(), chunk, chunk + n);
  }
}

Result<PlacementHandle> SocketClient::OpenPlacement(const PlacementSpec& spec) {
  Frame req;
  req.type = FrameType::kOpenPlacement;
  req.payload = EncodeSpec(spec);
  auto reply = Roundtrip(req);
  if (!reply.ok()) {
    return reply.status();
  }
  if (reply.value().status != StatusCode::kOk) {
    return Status(reply.value().status, "open placement refused");
  }
  return PlacementHandle(static_cast<uint32_t>(reply.value().lba));
}

Status SocketClient::ClosePlacement(PlacementHandle handle) {
  Frame req;
  req.type = FrameType::kClosePlacement;
  req.handle_slot = handle.id();
  auto reply = Roundtrip(req);
  if (!reply.ok()) {
    return reply.status();
  }
  return reply.value().status == StatusCode::kOk
             ? Status::Ok()
             : Status(reply.value().status, "close placement refused");
}

Result<PlacementSpec> SocketClient::DescribePlacement(PlacementHandle handle) {
  Frame req;
  req.type = FrameType::kDescribePlacement;
  req.handle_slot = handle.id();
  auto reply = Roundtrip(req);
  if (!reply.ok()) {
    return reply.status();
  }
  if (reply.value().status != StatusCode::kOk) {
    return Status(reply.value().status, "describe placement refused");
  }
  return DecodeSpec(reply.value().payload);
}

Status SocketClient::Write(uint64_t lba, std::span<const uint8_t> data, PlacementHandle handle) {
  Frame req;
  req.type = FrameType::kWrite;
  req.lba = lba;
  req.handle_slot = handle.id();
  req.payload.assign(data.begin(), data.end());
  auto reply = Roundtrip(req);
  if (!reply.ok()) {
    return reply.status();
  }
  return reply.value().status == StatusCode::kOk ? Status::Ok()
                                                 : Status(reply.value().status, "write failed");
}

Result<BlockReadResult> SocketClient::Read(uint64_t lba, PlacementHandle hint) {
  auto batch = ReadBatch(lba, 1, hint);
  if (!batch.ok()) {
    return batch.status();
  }
  return std::move(batch.value().front());
}

Result<std::vector<BlockReadResult>> SocketClient::ReadBatch(uint64_t lba, uint32_t count,
                                                             PlacementHandle hint) {
  Frame req;
  req.type = FrameType::kRead;
  req.lba = lba;
  req.count = count;
  req.handle_slot = hint.valid() ? hint.id() : 0;
  auto reply = Roundtrip(req);
  if (!reply.ok()) {
    return reply.status();
  }
  if (reply.value().status != StatusCode::kOk) {
    return Status(reply.value().status, "read failed");
  }
  const std::vector<uint8_t>& payload = reply.value().payload;
  if (count == 0 || payload.size() % count != 0) {
    return Status(StatusCode::kInvalidArgument, "read reply payload not divisible by count");
  }
  const size_t page = payload.size() / count;
  std::vector<BlockReadResult> results(count);
  for (uint32_t i = 0; i < count; ++i) {
    results[i].data.assign(payload.begin() + static_cast<std::ptrdiff_t>(i * page),
                           payload.begin() + static_cast<std::ptrdiff_t>((i + 1) * page));
    results[i].degraded = reply.value().degraded;
  }
  return results;
}

Status SocketClient::Trim(uint64_t lba) {
  Frame req;
  req.type = FrameType::kTrim;
  req.lba = lba;
  auto reply = Roundtrip(req);
  if (!reply.ok()) {
    return reply.status();
  }
  return reply.value().status == StatusCode::kOk ? Status::Ok()
                                                 : Status(reply.value().status, "trim failed");
}

Status SocketClient::Flush() {
  Frame req;
  req.type = FrameType::kFlush;
  auto reply = Roundtrip(req);
  if (!reply.ok()) {
    return reply.status();
  }
  return reply.value().status == StatusCode::kOk ? Status::Ok()
                                                 : Status(reply.value().status, "flush failed");
}

}  // namespace sos::serve
