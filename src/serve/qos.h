// Copyright (c) 2026 The SOS Authors. MIT License.
//
// QosScheduler: weighted per-class dispatch for the serve layer.
//
// Four strict-priority-ordered classes (request.h) with configurable
// weights. Scheduling is weighted round-robin over *backlogged* classes:
// every class starts a cycle with credit = weight; Next() serves the
// highest-priority backlogged class that still has credit, and when every
// backlogged class is out of credit the cycle resets. A SYS read therefore
// waits at most the other classes' remaining credits in the current cycle
// -- it is never queued behind an unbounded run of SPARE bulk writes or
// maintenance flushes. With qos=false Next() degrades to a single global
// FIFO (admission order), which is exactly the comparison row bench_serve
// plots.
//
// The scheduler is deliberately *not* synchronized: it is plain deterministic
// state owned by AsyncBlockService and only touched under the service mutex.
// Determinism matters because the pump-mode bench replays a seeded stream
// through it and goldens the resulting per-class latencies.

#ifndef SOS_SRC_SERVE_QOS_H_
#define SOS_SRC_SERVE_QOS_H_

#include <cstdint>
#include <deque>
#include <optional>

#include "src/serve/request.h"

namespace sos::serve {

// Per-class weights, highest priority first. A weight of w gives the class
// w dispatch slots per cycle; zero is clamped to 1 (a zero-weight class
// would starve, defeating the bounded-wait guarantee).
struct QosWeights {
  uint32_t weights[kNumQosClasses] = {8, 4, 2, 1};

  uint32_t of(QosClass cls) const {
    const uint32_t w = weights[static_cast<uint32_t>(cls)];
    return w == 0 ? 1 : w;
  }
};

class QosScheduler {
 public:
  QosScheduler(bool qos_enabled, const QosWeights& weights);

  // Admission-capacity check: sys classes get the full depth, bulk and
  // maintenance half of it, so background work cannot occupy every slot
  // ahead of critical traffic (per-pool admission, DESIGN.md §14).
  bool HasRoom(QosClass cls, size_t depth) const;

  void Enqueue(Pending pending);

  // The next request to dispatch, or nullopt when idle.
  std::optional<Pending> Next();

  // Removes and returns the queued request adjacent to [lba, lba+1) with the
  // same class, op and handle, scanning at most `window` entries of the
  // class queue -- the coalescing probe. `lba` is the exclusive end of the
  // run built so far; only forward-adjacent requests merge, which keeps the
  // batch a single ascending ReadRun/ProgramRun stretch.
  std::optional<Pending> TakeAdjacent(QosClass cls, ServeOp op, uint64_t lba,
                                      PlacementHandle handle, uint32_t window);

  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }
  size_t class_size(QosClass cls) const { return queues_[static_cast<uint32_t>(cls)].size(); }

 private:
  const bool qos_enabled_;
  const QosWeights weights_;
  std::deque<Pending> queues_[kNumQosClasses];
  uint32_t credit_[kNumQosClasses] = {};
  size_t size_ = 0;
};

}  // namespace sos::serve

#endif  // SOS_SRC_SERVE_QOS_H_
