// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Compression-potential analysis (paper §5, related work).
//
// The paper dismisses data-reduction methods for personal storage: media
// files (most personal bytes) are already entropy-coded, so transparent
// compression recovers little ([66][67][83-85]). This module quantifies that
// claim over a file population: per-file savings are modeled from content
// entropy (a byte stream of H bits/byte compresses to no less than H/8 of
// its size; real LZ-class compressors get close at a small framing cost),
// and a corpus-level report aggregates per type.
//
// A real bit-exact compressor is intentionally out of scope: the *analysis*
// only needs the entropy bound, which the synthetic corpus carries per file.

#ifndef SOS_SRC_HOST_COMPRESSION_H_
#define SOS_SRC_HOST_COMPRESSION_H_

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "src/classify/file_meta.h"

namespace sos {

struct CompressionEstimate {
  uint64_t original_bytes = 0;
  uint64_t compressed_bytes = 0;
  double savings() const {
    return original_bytes > 0
               ? 1.0 - static_cast<double>(compressed_bytes) /
                           static_cast<double>(original_bytes)
               : 0.0;
  }
};

// Entropy-bound compression estimate for one file. `framing_overhead` models
// block headers/dictionaries (fraction of the compressed size); files whose
// entropy leaves less to gain than the framing costs are stored raw
// (savings 0), as real inline-compression FTLs do ([83]).
CompressionEstimate EstimateFile(const FileMeta& meta, double framing_overhead = 0.03);

// Corpus-level roll-up with a per-type breakdown.
struct CorpusCompressionReport {
  CompressionEstimate total;
  std::array<CompressionEstimate, kNumFileTypes> by_type{};
};

CorpusCompressionReport AnalyzeCorpus(std::span<const FileMeta> corpus,
                                      double framing_overhead = 0.03);

// Measured Shannon entropy (bits/byte) of a concrete buffer; used by tests
// to sanity-check the synthetic entropy attributes against real payloads.
double MeasuredEntropyBitsPerByte(std::span<const uint8_t> data);

}  // namespace sos

#endif  // SOS_SRC_HOST_COMPRESSION_H_
