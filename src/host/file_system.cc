// Copyright (c) 2026 The SOS Authors. MIT License.

#include "src/host/file_system.h"

#include <algorithm>
#include <cassert>

#include "src/ecc/parity.h"

namespace sos {

ExtentFileSystem::ExtentFileSystem(BlockDevice* device, SimClock* clock)
    : device_(device), clock_(clock) {
  assert(device_ != nullptr && clock_ != nullptr);
  capacity_blocks_ = device_->capacity_blocks();
  device_->SetCapacityListener(
      [this](uint64_t new_capacity) { OnCapacityChange(new_capacity); });
}

void ExtentFileSystem::OnCapacityChange(uint64_t new_capacity_blocks) {
  capacity_blocks_ = std::min(capacity_blocks_, new_capacity_blocks);
}

Result<std::vector<Extent>> ExtentFileSystem::Allocate(uint64_t blocks_needed) {
  if (used_blocks_ + blocks_needed > capacity_blocks_) {
    return Status(StatusCode::kOutOfSpace, "file system full");
  }
  std::vector<Extent> extents;
  uint64_t remaining = blocks_needed;
  // Reuse trimmed LBAs first, then extend the frontier.
  while (remaining > 0 && !free_lbas_.empty()) {
    const uint64_t lba = free_lbas_.back();
    free_lbas_.pop_back();
    if (!extents.empty() && extents.back().lba + extents.back().blocks == lba) {
      ++extents.back().blocks;  // merge contiguous
    } else {
      extents.push_back({lba, 1});
    }
    --remaining;
  }
  if (remaining > 0) {
    if (next_unused_lba_ + remaining > capacity_blocks_) {
      // Frontier exhausted even though the budget allowed it (can happen
      // after a shrink); roll back.
      for (const auto& e : extents) {
        for (uint32_t i = 0; i < e.blocks; ++i) {
          free_lbas_.push_back(e.lba + i);
        }
      }
      return Status(StatusCode::kOutOfSpace, "LBA frontier exhausted after capacity shrink");
    }
    extents.push_back({next_unused_lba_, static_cast<uint32_t>(remaining)});
    next_unused_lba_ += remaining;
  }
  used_blocks_ += blocks_needed;
  return extents;
}

void ExtentFileSystem::Release(const std::vector<Extent>& extents) {
  for (const auto& e : extents) {
    for (uint32_t i = 0; i < e.blocks; ++i) {
      free_lbas_.push_back(e.lba + i);
    }
    used_blocks_ -= e.blocks;
  }
}

Result<uint64_t> ExtentFileSystem::CreateFile(FileMeta meta, std::span<const uint8_t> content,
                                              PlacementHandle placement) {
  const uint32_t bs = device_->block_size();
  const uint64_t bytes = std::max<uint64_t>(meta.size_bytes, content.size());
  const uint64_t blocks_needed = std::max<uint64_t>(1, (bytes + bs - 1) / bs);

  auto alloc = Allocate(blocks_needed);
  if (!alloc.ok()) {
    return alloc.status();
  }

  FsFile file;
  file.meta = std::move(meta);
  file.meta.file_id = next_file_id_++;
  file.extents = alloc.value();
  file.placement = placement;
  file.content_crc = Crc32(content);
  file.content_bytes = content.size();
  file.synthetic = content.empty();

  // Write content block by block; blocks past the content are zero-filled.
  uint64_t offset = 0;
  for (const auto& e : file.extents) {
    for (uint32_t i = 0; i < e.blocks; ++i) {
      std::span<const uint8_t> chunk;
      if (offset < content.size()) {
        chunk = content.subspan(offset, std::min<uint64_t>(bs, content.size() - offset));
      }
      if (Status s = device_->Write(e.lba + i, chunk, placement); !s.ok()) {
        Release(file.extents);
        return s;
      }
      ++writes_issued_;
      offset += bs;
    }
  }

  const uint64_t id = file.meta.file_id;
  files_.emplace(id, std::move(file));
  return id;
}

Result<FileReadResult> ExtentFileSystem::ReadFile(uint64_t file_id) {
  auto it = files_.find(file_id);
  if (it == files_.end()) {
    return Status(StatusCode::kNotFound, "no such file");
  }
  FsFile& file = it->second;
  FileReadResult result;
  result.data.reserve(file.content_bytes);
  const uint32_t bs = device_->block_size();
  // Synthetic files read their full allocation (the device traffic is what
  // the simulation models); content-bearing files read their content span.
  uint64_t remaining = file.content_bytes;
  if (file.synthetic) {
    remaining = 0;
    for (const auto& e : file.extents) {
      remaining += static_cast<uint64_t>(e.blocks) * bs;
    }
  }
  for (const auto& e : file.extents) {
    for (uint32_t i = 0; i < e.blocks && remaining > 0; ++i) {
      auto read = device_->Read(e.lba + i);
      if (!read.ok()) {
        return read.status();
      }
      ++reads_issued_;
      result.residual_bit_errors += read.value().residual_bit_errors;
      result.degraded = result.degraded || read.value().degraded;
      const uint64_t take = std::min<uint64_t>(remaining, bs);
      if (!file.synthetic) {
        const auto& data = read.value().data;
        if (!data.empty()) {
          result.data.insert(
              result.data.end(), data.begin(),
              data.begin() + static_cast<ptrdiff_t>(std::min<uint64_t>(take, data.size())));
        }
      }
      remaining -= take;
    }
  }
  result.crc_ok = file.synthetic
                      ? (!result.degraded && result.residual_bit_errors == 0)
                      : (result.data.size() == file.content_bytes &&
                         Crc32(result.data) == file.content_crc);
  file.meta.last_accessed_us = clock_->now();
  ++file.meta.read_count;
  return result;
}

Status ExtentFileSystem::OverwriteFile(uint64_t file_id, std::span<const uint8_t> content) {
  auto it = files_.find(file_id);
  if (it == files_.end()) {
    return Status(StatusCode::kNotFound, "no such file");
  }
  FsFile& file = it->second;
  const uint32_t bs = device_->block_size();
  uint64_t allocated_bytes = 0;
  for (const auto& e : file.extents) {
    allocated_bytes += static_cast<uint64_t>(e.blocks) * bs;
  }
  if (content.size() > allocated_bytes) {
    return Status(StatusCode::kInvalidArgument, "overwrite larger than allocation");
  }
  // An empty overwrite of a synthetic file rewrites the full allocation.
  const uint64_t rewrite_bytes =
      content.empty() && file.synthetic ? allocated_bytes : content.size();
  uint64_t offset = 0;
  for (const auto& e : file.extents) {
    for (uint32_t i = 0; i < e.blocks && offset < rewrite_bytes; ++i) {
      std::span<const uint8_t> chunk;
      if (offset < content.size()) {
        chunk = content.subspan(offset, std::min<uint64_t>(bs, content.size() - offset));
      }
      if (Status s = device_->Write(e.lba + i, chunk, file.placement); !s.ok()) {
        return s;
      }
      ++writes_issued_;
      offset += bs;
    }
  }
  file.content_crc = Crc32(content);
  file.content_bytes = content.size();
  file.synthetic = content.empty() && file.synthetic;
  file.meta.last_modified_us = clock_->now();
  ++file.meta.write_count;
  return Status::Ok();
}

Status ExtentFileSystem::DeleteFile(uint64_t file_id) {
  auto it = files_.find(file_id);
  if (it == files_.end()) {
    return Status(StatusCode::kNotFound, "no such file");
  }
  for (const auto& e : it->second.extents) {
    for (uint32_t i = 0; i < e.blocks; ++i) {
      IgnoreResult(device_->Trim(e.lba + i));  // trim failures are advisory
    }
  }
  Release(it->second.extents);
  files_.erase(it);
  return Status::Ok();
}

Status ExtentFileSystem::ReclassifyFile(uint64_t file_id, PlacementHandle placement) {
  auto it = files_.find(file_id);
  if (it == files_.end()) {
    return Status(StatusCode::kNotFound, "no such file");
  }
  FsFile& file = it->second;
  if (file.placement == placement) {
    return Status::Ok();
  }
  for (const auto& e : file.extents) {
    for (uint32_t i = 0; i < e.blocks; ++i) {
      if (Status s = device_->Reclassify(e.lba + i, placement); !s.ok()) {
        return s;
      }
    }
  }
  file.placement = placement;
  return Status::Ok();
}

const FileMeta* ExtentFileSystem::Lookup(uint64_t file_id) const {
  auto it = files_.find(file_id);
  return it == files_.end() ? nullptr : &it->second.meta;
}

PlacementHandle ExtentFileSystem::PlacementOf(uint64_t file_id) const {
  auto it = files_.find(file_id);
  assert(it != files_.end());
  return it->second.placement;
}

Result<PlacementSpec> ExtentFileSystem::PlacementSpecOf(uint64_t file_id) const {
  auto it = files_.find(file_id);
  if (it == files_.end()) {
    return Status(StatusCode::kNotFound, "no such file");
  }
  return device_->DescribePlacement(it->second.placement);
}

std::vector<uint64_t> ExtentFileSystem::FileIds() const {
  std::vector<uint64_t> ids;
  ids.reserve(files_.size());
  for (const auto& [id, file] : files_) {
    ids.push_back(id);
  }
  return ids;
}

std::vector<const FileMeta*> ExtentFileSystem::ScanFiles() const {
  std::vector<const FileMeta*> metas;
  metas.reserve(files_.size());
  for (const auto& [id, file] : files_) {
    metas.push_back(&file.meta);
  }
  return metas;
}

std::vector<Extent> ExtentFileSystem::ExtentsOf(uint64_t file_id) const {
  auto it = files_.find(file_id);
  return it == files_.end() ? std::vector<Extent>{} : it->second.extents;
}

FsStats ExtentFileSystem::Stats() const {
  FsStats stats;
  stats.files = files_.size();
  stats.used_blocks = used_blocks_;
  stats.capacity_blocks = capacity_blocks_;
  stats.writes_issued = writes_issued_;
  stats.reads_issued = reads_issued_;
  stats.overcommitted = used_blocks_ > capacity_blocks_;
  return stats;
}

uint64_t ExtentFileSystem::FreeBlocks() const {
  return capacity_blocks_ > used_blocks_ ? capacity_blocks_ - used_blocks_ : 0;
}

}  // namespace sos
