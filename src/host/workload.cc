// Copyright (c) 2026 The SOS Authors. MIT License.

#include "src/host/workload.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace sos {
namespace {

bool IsDeleteProneType(FileType type) {
  return type == FileType::kCache || type == FileType::kDownload;
}

// Poisson-ish count for a day with mean `rate` (exponential gaps would be
// overkill; a rounded gaussian around the mean captures day-to-day variance).
uint64_t DailyCount(Rng& rng, double rate) {
  if (rate <= 0.0) {
    return 0;
  }
  const double draw = rng.NextGaussian(rate, std::sqrt(rate));
  return draw <= 0.0 ? 0 : static_cast<uint64_t>(draw + 0.5);
}

}  // namespace

MobileWorkloadGenerator::MobileWorkloadGenerator(const MobileWorkloadConfig& config)
    : config_(config), rng_(DeriveSeed({config.seed, 0x776f726b6c6f6164ull /* "workload" */})) {}

void MobileWorkloadGenerator::EmitCreate(std::vector<WorkloadEvent>& events, FileType type,
                                         SimTimeUs at) {
  WorkloadEvent ev;
  ev.at = at;
  ev.op = WorkloadOp::kCreate;
  ev.file_ref = next_ref_++;
  ev.meta = SynthesizeFile(type, at, config_.label_noise, rng_);
  ev.meta.file_id = ev.file_ref;
  live_.push_back({ev.file_ref, type, at, IsDeleteProneType(type) || ev.meta.will_be_deleted});
  events.push_back(std::move(ev));
}

const MobileWorkloadGenerator::LiveFile* MobileWorkloadGenerator::SampleLive() {
  if (live_.empty()) {
    return nullptr;
  }
  // Recency bias: 70% of accesses hit the newest 20% of files (hot camera
  // roll, active apps), the rest spread uniformly over the archive.
  if (rng_.NextBool(0.7)) {
    const size_t hot = std::max<size_t>(1, live_.size() / 5);
    return &live_[live_.size() - 1 - rng_.NextBounded(hot)];
  }
  return &live_[rng_.NextBounded(live_.size())];
}

const MobileWorkloadGenerator::LiveFile* MobileWorkloadGenerator::SampleDeletable() {
  // A few probes suffice; delete-prone files are common in steady state.
  for (int probe = 0; probe < 8; ++probe) {
    if (live_.empty()) {
      return nullptr;
    }
    const LiveFile* candidate = &live_[rng_.NextBounded(live_.size())];
    if (candidate->delete_prone) {
      return candidate;
    }
  }
  return nullptr;
}

void MobileWorkloadGenerator::DropRef(uint64_t file_ref) {
  auto it = std::find_if(live_.begin(), live_.end(),
                         [file_ref](const LiveFile& f) { return f.ref == file_ref; });
  if (it != live_.end()) {
    *it = live_.back();
    live_.pop_back();
  }
}

std::vector<WorkloadEvent> MobileWorkloadGenerator::Day(uint64_t day_index) {
  std::vector<WorkloadEvent> events;
  const SimTimeUs day_start = day_index * kUsPerDay;
  // Causality within a day: creates/reads/updates happen in the first 23
  // hours (reads of a file created today are timestamped after its create),
  // deletes occupy the final hour. Sorting by time then never yields a
  // reference to a file that does not exist yet or was already deleted.
  const SimTimeUs active_window = 23 * kUsPerHour;
  auto at_random_time = [&] { return day_start + rng_.NextBounded(active_window); };
  auto at_random_time_after = [&](SimTimeUs t0) {
    const SimTimeUs window_end = day_start + active_window;
    return t0 >= window_end ? t0 : t0 + rng_.NextBounded(window_end - t0);
  };
  auto at_delete_time = [&] {
    return day_start + active_window + rng_.NextBounded(kUsPerDay - active_window);
  };
  const double w = config_.intensity;

  // Creates.
  struct CreateRate {
    FileType type;
    double per_day;
  };
  const CreateRate create_rates[] = {
      {FileType::kPhoto, config_.photos_per_day * w},
      {FileType::kVideo, config_.videos_per_week / 7.0 * w},
      {FileType::kAudio, config_.audio_per_week / 7.0 * w},
      {FileType::kDocument, config_.documents_per_week / 7.0 * w},
      {FileType::kDownload, config_.downloads_per_week / 7.0 * w},
      {FileType::kAppData, config_.app_installs_per_week / 7.0 * w},
      {FileType::kCache, config_.cache_files_per_day * w},
  };
  for (const auto& rate : create_rates) {
    const uint64_t count = DailyCount(rng_, rate.per_day);
    for (uint64_t i = 0; i < count; ++i) {
      EmitCreate(events, rate.type, at_random_time());
    }
  }

  // Reads (ordered after the target's create when it was created today).
  for (uint64_t i = DailyCount(rng_, config_.reads_per_day); i > 0; --i) {
    if (const LiveFile* f = SampleLive()) {
      events.push_back(
          {at_random_time_after(std::max(f->created_at, day_start)), WorkloadOp::kRead, f->ref, {}});
    }
  }

  // In-place updates (app state, caches): target writable types.
  for (uint64_t i = DailyCount(rng_, config_.app_updates_per_day * w); i > 0; --i) {
    for (int probe = 0; probe < 8; ++probe) {
      const LiveFile* f = SampleLive();
      if (f != nullptr &&
          (f->type == FileType::kAppData || f->type == FileType::kCache)) {
        events.push_back({at_random_time_after(std::max(f->created_at, day_start)),
                          WorkloadOp::kUpdate, f->ref, {}});
        break;
      }
    }
  }

  // Deletes.
  for (uint64_t i = DailyCount(rng_, config_.deletes_per_day * w); i > 0; --i) {
    if (const LiveFile* f = SampleDeletable()) {
      const uint64_t ref = f->ref;
      events.push_back({at_delete_time(), WorkloadOp::kDelete, ref, {}});
      DropRef(ref);
    }
  }

  std::sort(events.begin(), events.end(),
            [](const WorkloadEvent& a, const WorkloadEvent& b) { return a.at < b.at; });
  return events;
}

// ---------------------------------------------------------------------------
// Trace serialization.
// ---------------------------------------------------------------------------

std::string SerializeTrace(const std::vector<WorkloadEvent>& events) {
  std::string out;
  char line[512];
  for (const auto& ev : events) {
    switch (ev.op) {
      case WorkloadOp::kCreate:
        std::snprintf(line, sizeof(line),
                      "C %llu %llu %d %llu %.4f %.4f %d %d %s\n",
                      static_cast<unsigned long long>(ev.at),
                      static_cast<unsigned long long>(ev.file_ref),
                      static_cast<int>(ev.meta.type),
                      static_cast<unsigned long long>(ev.meta.size_bytes),
                      ev.meta.entropy_bits_per_byte, ev.meta.personal_signal,
                      ev.meta.true_priority == Priority::kExpendable ? 1 : 0,
                      ev.meta.will_be_deleted ? 1 : 0, ev.meta.path.c_str());
        break;
      case WorkloadOp::kRead:
        std::snprintf(line, sizeof(line), "R %llu %llu\n",
                      static_cast<unsigned long long>(ev.at),
                      static_cast<unsigned long long>(ev.file_ref));
        break;
      case WorkloadOp::kUpdate:
        std::snprintf(line, sizeof(line), "U %llu %llu\n",
                      static_cast<unsigned long long>(ev.at),
                      static_cast<unsigned long long>(ev.file_ref));
        break;
      case WorkloadOp::kDelete:
        std::snprintf(line, sizeof(line), "D %llu %llu\n",
                      static_cast<unsigned long long>(ev.at),
                      static_cast<unsigned long long>(ev.file_ref));
        break;
    }
    out += line;
  }
  return out;
}

std::vector<WorkloadEvent> ParseTrace(const std::string& text) {
  std::vector<WorkloadEvent> events;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    WorkloadEvent ev;
    std::istringstream ls(line);
    char op = 0;
    unsigned long long at = 0;
    unsigned long long ref = 0;
    ls >> op >> at >> ref;
    ev.at = at;
    ev.file_ref = ref;
    switch (op) {
      case 'C': {
        ev.op = WorkloadOp::kCreate;
        int type = 0;
        unsigned long long size = 0;
        int expendable = 0;
        int deleted = 0;
        ls >> type >> size >> ev.meta.entropy_bits_per_byte >> ev.meta.personal_signal >>
            expendable >> deleted >> ev.meta.path;
        ev.meta.type = static_cast<FileType>(type);
        ev.meta.size_bytes = size;
        ev.meta.file_id = ref;
        ev.meta.created_us = ev.at;
        ev.meta.last_modified_us = ev.at;
        ev.meta.last_accessed_us = ev.at;
        ev.meta.true_priority = expendable != 0 ? Priority::kExpendable : Priority::kCritical;
        ev.meta.will_be_deleted = deleted != 0;
        break;
      }
      case 'R':
        ev.op = WorkloadOp::kRead;
        break;
      case 'U':
        ev.op = WorkloadOp::kUpdate;
        break;
      case 'D':
        ev.op = WorkloadOp::kDelete;
        break;
      default:
        continue;  // skip malformed lines
    }
    events.push_back(std::move(ev));
  }
  return events;
}

}  // namespace sos
