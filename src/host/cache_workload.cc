// Copyright (c) 2026 The SOS Authors. MIT License.

#include "src/host/cache_workload.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace sos {
namespace {

// Same day-to-day variance model as the mobile generator: a rounded
// gaussian around the mean rate.
uint64_t DailyCount(Rng& rng, double rate) {
  if (rate <= 0.0) {
    return 0;
  }
  const double draw = rng.NextGaussian(rate, std::sqrt(rate));
  return draw <= 0.0 ? 0 : static_cast<uint64_t>(draw + 0.5);
}

}  // namespace

FlashCacheWorkloadGenerator::FlashCacheWorkloadGenerator(const FlashCacheWorkloadConfig& config)
    : config_(config), rng_(DeriveSeed({config.seed, 0x6361636865ull /* "cache" */})) {}

uint64_t FlashCacheWorkloadGenerator::SampleSize() {
  double total = 0.0;
  for (const auto& c : config_.sizes) {
    total += c.weight;
  }
  double draw = rng_.NextDouble() * total;
  for (const auto& c : config_.sizes) {
    draw -= c.weight;
    if (draw <= 0.0) {
      return c.bytes;
    }
  }
  return config_.sizes.empty() ? 4 * kKiB : config_.sizes.back().bytes;
}

uint32_t FlashCacheWorkloadGenerator::SampleTtlDays() {
  double total = 0.0;
  for (const auto& c : config_.ttls) {
    total += c.weight;
  }
  double draw = rng_.NextDouble() * total;
  for (const auto& c : config_.ttls) {
    draw -= c.weight;
    if (draw <= 0.0) {
      return c.days;
    }
  }
  return config_.ttls.empty() ? 1 : config_.ttls.back().days;
}

const FlashCacheWorkloadGenerator::LiveObject* FlashCacheWorkloadGenerator::SampleLive() {
  if (live_.empty()) {
    return nullptr;
  }
  // Cache gets are sharply recency-skewed: most hits land on the newest
  // admissions, the tail spreads over everything still unexpired.
  if (rng_.NextBool(0.8)) {
    const size_t hot = std::max<size_t>(1, live_.size() / 5);
    return &live_[live_.size() - 1 - rng_.NextBounded(hot)];
  }
  return &live_[rng_.NextBounded(live_.size())];
}

void FlashCacheWorkloadGenerator::DropRef(uint64_t file_ref) {
  auto it = std::find_if(live_.begin(), live_.end(),
                         [file_ref](const LiveObject& o) { return o.ref == file_ref; });
  if (it != live_.end()) {
    *it = live_.back();
    live_.pop_back();
    return;
  }
  auto idx = std::find(index_refs_.begin(), index_refs_.end(), file_ref);
  if (idx != index_refs_.end()) {
    index_refs_.erase(idx);
  }
}

std::vector<WorkloadEvent> FlashCacheWorkloadGenerator::Day(uint64_t day_index) {
  std::vector<WorkloadEvent> events;
  const SimTimeUs day_start = day_index * kUsPerDay;
  // Same intra-day causality contract as the mobile generator: admissions,
  // gets and index updates fill the first 23 hours; TTL expiries occupy the
  // final hour, so a time-sorted replay never references a dead object.
  const SimTimeUs active_window = 23 * kUsPerHour;
  auto at_random_time = [&] { return day_start + rng_.NextBounded(active_window); };
  auto at_random_time_after = [&](SimTimeUs t0) {
    const SimTimeUs window_end = day_start + active_window;
    return t0 >= window_end ? t0 : t0 + rng_.NextBounded(window_end - t0);
  };
  auto at_expire_time = [&] {
    return day_start + active_window + rng_.NextBounded(kUsPerDay - active_window);
  };

  // Day zero: create the cache's index files (critical, no TTL).
  if (day_index == 0) {
    for (uint32_t i = 0; i < config_.index_files; ++i) {
      WorkloadEvent ev;
      ev.at = day_start + i;  // deterministic, before any object traffic
      ev.op = WorkloadOp::kCreate;
      ev.file_ref = next_ref_++;
      ev.meta.file_id = ev.file_ref;
      ev.meta.path = "cache/index_" + std::to_string(i);
      ev.meta.type = FileType::kSystem;
      ev.meta.size_bytes = config_.index_file_bytes;
      ev.meta.created_us = ev.at;
      ev.meta.last_modified_us = ev.at;
      ev.meta.last_accessed_us = ev.at;
      ev.meta.entropy_bits_per_byte = 6.0;
      ev.meta.true_priority = Priority::kCritical;
      ev.meta.will_be_deleted = false;
      index_refs_.push_back(ev.file_ref);
      events.push_back(std::move(ev));
    }
  }

  // TTL expiries scheduled before new admissions so today's admissions are
  // never expired today (minimum TTL is one day).
  for (size_t i = 0; i < live_.size();) {
    if (live_[i].expires_day <= day_index) {
      events.push_back({at_expire_time(), WorkloadOp::kDelete, live_[i].ref, {}});
      live_[i] = live_.back();
      live_.pop_back();
    } else {
      ++i;
    }
  }

  // Admissions: each set request passes the admission coin or is dropped
  // before it costs a flash write.
  for (uint64_t i = DailyCount(rng_, config_.objects_per_day); i > 0; --i) {
    if (!rng_.NextBool(config_.admission_ratio)) {
      continue;
    }
    WorkloadEvent ev;
    ev.at = at_random_time();
    ev.op = WorkloadOp::kCreate;
    ev.file_ref = next_ref_++;
    const uint32_t ttl_days = SampleTtlDays();
    ev.meta.file_id = ev.file_ref;
    ev.meta.path = "cache/obj_" + std::to_string(ev.file_ref);
    ev.meta.type = FileType::kCache;
    ev.meta.size_bytes = SampleSize();
    ev.meta.created_us = ev.at;
    ev.meta.last_modified_us = ev.at;
    ev.meta.last_accessed_us = ev.at;
    ev.meta.entropy_bits_per_byte = 8.0;
    ev.meta.true_priority = Priority::kExpendable;
    ev.meta.will_be_deleted = true;
    ev.meta.expected_lifetime_us = static_cast<uint64_t>(ttl_days) * kUsPerDay;
    live_.push_back({ev.file_ref, day_index + ttl_days, ev.at});
    events.push_back(std::move(ev));
  }

  // Gets over unexpired objects.
  for (uint64_t i = DailyCount(rng_, config_.lookups_per_day); i > 0; --i) {
    if (const LiveObject* o = SampleLive()) {
      events.push_back({at_random_time_after(std::max(o->created_at, day_start)),
                        WorkloadOp::kRead, o->ref, {}});
    }
  }

  // Index churn: hot in-place overwrites of the critical metadata files.
  if (!index_refs_.empty()) {
    for (uint64_t i = DailyCount(rng_, config_.index_updates_per_day); i > 0; --i) {
      const uint64_t ref = index_refs_[rng_.NextBounded(index_refs_.size())];
      events.push_back({at_random_time(), WorkloadOp::kUpdate, ref, {}});
    }
  }

  std::sort(events.begin(), events.end(),
            [](const WorkloadEvent& a, const WorkloadEvent& b) { return a.at < b.at; });
  return events;
}

}  // namespace sos
