// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Synthetic mobile workload generator and trace format.
//
// Reproduces the usage pattern the paper's wear-gap argument rests on
// (§2.3.2, [38]): personal devices are read-dominant, write bursts come from
// camera capture, app updates and cache churn, and even "heavy" users
// consume only a few percent of their flash's rated wear before the device
// is discarded. The generator emits day-granularity event batches; a driver
// (tests, the SOS lifetime simulation) applies them to a file system.
//
// Events reference files through generator-scoped refs so traces are
// self-contained and replayable; the driver owns the ref -> fs-file-id map.

#ifndef SOS_SRC_HOST_WORKLOAD_H_
#define SOS_SRC_HOST_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/classify/corpus.h"
#include "src/classify/file_meta.h"
#include "src/common/rng.h"

namespace sos {

enum class WorkloadOp : uint8_t {
  kCreate,  // new file (meta populated)
  kRead,    // whole-file read
  kUpdate,  // in-place overwrite (app state, caches)
  kDelete,  // user/file-manager deletion
};

struct WorkloadEvent {
  SimTimeUs at = 0;
  WorkloadOp op = WorkloadOp::kRead;
  uint64_t file_ref = 0;  // generator-scoped file reference
  FileMeta meta;          // populated for kCreate only
};

// Driver-facing generator interface: day-batched event streams over
// generator-scoped refs. Implementations: the mobile generator below and the
// flash-cache generator (src/host/cache_workload.h).
class WorkloadGenerator {
 public:
  virtual ~WorkloadGenerator() = default;

  // Generates the events of simulation day `day_index` (0-based), spread
  // over that day's 24 hours in time order.
  virtual std::vector<WorkloadEvent> Day(uint64_t day_index) = 0;

  // Tells the generator a create was rejected (device full): the ref is
  // removed from the live set so later events do not reference it.
  virtual void DropRef(uint64_t file_ref) = 0;

  // Number of live (created, not deleted) files the generator tracks.
  virtual size_t live_files() const = 0;
};

struct MobileWorkloadConfig {
  uint64_t seed = 1;
  // Daily/weekly activity rates (means; actual counts are randomized).
  double photos_per_day = 8.0;
  double videos_per_week = 4.0;
  double audio_per_week = 5.0;
  double documents_per_week = 2.0;
  double downloads_per_week = 3.0;
  double app_installs_per_week = 2.0;   // new appdata/system files
  double cache_files_per_day = 40.0;    // small new cache files
  double app_updates_per_day = 60.0;    // in-place overwrites of app state
  double reads_per_day = 250.0;         // whole-file reads, recency-skewed
  double deletes_per_day = 3.0;         // cleanup of delete-prone files
  double label_noise = 0.08;            // passed to SynthesizeFile
  // Write-amplification knob for stress scenarios (multiplies all write
  // activity; 1.0 = typical user).
  double intensity = 1.0;
};

class MobileWorkloadGenerator final : public WorkloadGenerator {
 public:
  explicit MobileWorkloadGenerator(const MobileWorkloadConfig& config);

  std::vector<WorkloadEvent> Day(uint64_t day_index) override;
  void DropRef(uint64_t file_ref) override;
  size_t live_files() const override { return live_.size(); }

 private:
  struct LiveFile {
    uint64_t ref;
    FileType type;
    SimTimeUs created_at;
    bool delete_prone;
  };

  void EmitCreate(std::vector<WorkloadEvent>& events, FileType type, SimTimeUs at);
  // Samples a live file, biased toward recently created ones.
  const LiveFile* SampleLive();
  // Samples a live delete-prone file; nullptr if none.
  const LiveFile* SampleDeletable();

  MobileWorkloadConfig config_;
  Rng rng_;
  std::vector<LiveFile> live_;
  uint64_t next_ref_ = 1;
};

// Line-oriented trace serialization (one event per line), for record/replay
// tests and for inspecting workloads offline. Create events serialize the
// subset of FileMeta the driver needs (type, size, labels, signals).
std::string SerializeTrace(const std::vector<WorkloadEvent>& events);
std::vector<WorkloadEvent> ParseTrace(const std::string& text);

}  // namespace sos

#endif  // SOS_SRC_HOST_WORKLOAD_H_
