// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Placement directives: the host->device data-path contract.
//
// An NVMe-FDP-style interface ([FDP caches, PAPERS.md]): instead of tagging
// every write with a closed classification enum, the host *opens* a
// placement handle declaring the data's attributes -- durability (may the
// device degrade it?), expected lifetime, and update frequency -- and passes
// the handle on each write. The device maps the handle onto a reclaim unit
// (an FTL pool + a per-handle active superblock) and may use the declared
// lifetime to pick which physical blocks the data lands on (worn blocks for
// short-lived data, young blocks for long-lived data; "Exploiting Data
// Longevity", PAPERS.md).
//
// Handle semantics (mirrors FDP reclaim-unit handles):
//   - OpenPlacement returns the lowest free slot id; the table is bounded
//     (kMaxPlacementHandles) and exhaustion is kResourceExhausted.
//   - ClosePlacement frees the slot; ids are recycled, so a stale handle
//     held across a close can alias a newer one (the documented FDP caveat
//     -- hosts own their handle hygiene).
//   - Using a never-opened/closed slot fails kFailedPrecondition; a
//     malformed handle (invalid sentinel, id beyond the table) fails
//     kInvalidArgument.

#ifndef SOS_SRC_HOST_PLACEMENT_H_
#define SOS_SRC_HOST_PLACEMENT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/units.h"

namespace sos {

// May the device trade this data's fidelity for density/endurance?
enum class Durability : uint8_t {
  kCritical = 0,    // exact storage: reliable pools, loud failures
  kDegradable = 1,  // approximate storage: weak/no ECC, bytes may rot
};

// Host-declared expected lifetime of the data written under a handle.
enum class LifetimeHint : uint8_t {
  kUnknown = 0,  // no declaration: device falls back to legacy behavior
  kShort = 1,    // hours..days (cache objects, temp files)
  kMedium = 2,   // weeks..months (app state, downloads)
  kLong = 3,     // years (photos, documents, system image)
};

// Host-declared overwrite behavior (advisory; informs hot/cold treatment).
enum class UpdateFrequency : uint8_t {
  kUnknown = 0,
  kRare = 1,      // write-once-ish (media, installers)
  kFrequent = 2,  // overwritten in place (databases, counters)
};

inline const char* DurabilityName(Durability d) {
  return d == Durability::kCritical ? "critical" : "degradable";
}

inline const char* LifetimeHintName(LifetimeHint h) {
  switch (h) {
    case LifetimeHint::kUnknown:
      return "unknown";
    case LifetimeHint::kShort:
      return "short";
    case LifetimeHint::kMedium:
      return "medium";
    case LifetimeHint::kLong:
      return "long";
  }
  return "?";
}

// The attributes a host declares when opening a placement handle. The
// constructors (rather than aggregate init) let call sites declare only the
// attributes they care about -- `{Durability::kDegradable}` or
// `{durability, lifetime}` -- without partial-initializer warnings.
struct PlacementSpec {
  PlacementSpec() = default;
  PlacementSpec(Durability d, LifetimeHint h = LifetimeHint::kUnknown,  // NOLINT
                UpdateFrequency f = UpdateFrequency::kUnknown, std::string tag = {})
      : durability(d), lifetime(h), update_frequency(f), label(std::move(tag)) {}

  Durability durability = Durability::kCritical;
  LifetimeHint lifetime = LifetimeHint::kUnknown;
  UpdateFrequency update_frequency = UpdateFrequency::kUnknown;
  // Optional human-readable tag; used in per-handle metric names. When empty
  // the device derives a deterministic label from the attributes.
  std::string label;
};

// An open placement directive. A small value type: copying it does not
// duplicate device state, and equality is slot identity (two handles compare
// equal iff they name the same open slot).
class PlacementHandle {
 public:
  static constexpr uint32_t kInvalidId = ~0u;

  PlacementHandle() = default;
  explicit PlacementHandle(uint32_t id) : id_(id) {}

  uint32_t id() const { return id_; }
  bool valid() const { return id_ != kInvalidId; }

  friend bool operator==(PlacementHandle a, PlacementHandle b) { return a.id_ == b.id_; }
  friend bool operator!=(PlacementHandle a, PlacementHandle b) { return a.id_ != b.id_; }

 private:
  uint32_t id_ = kInvalidId;
};

// Bound on open handles per device. Small on purpose (real FDP devices
// expose a handful of reclaim-unit handles) and <= 255 so the FTL can stamp
// a one-byte stream tag per page.
inline constexpr uint32_t kMaxPlacementHandles = 16;

// The handle table every BlockDevice implementation embeds: slot allocation,
// lifecycle errors, and spec storage are identical across devices -- only
// what a device *does* with an open spec differs.
class PlacementHandleTable {
 public:
  explicit PlacementHandleTable(uint32_t max_handles = kMaxPlacementHandles)
      : slots_(max_handles) {}

  [[nodiscard]] Result<PlacementHandle> Open(const PlacementSpec& spec) {
    for (uint32_t id = 0; id < slots_.size(); ++id) {
      if (!slots_[id].open) {
        slots_[id].open = true;
        slots_[id].spec = spec;
        return PlacementHandle(id);
      }
    }
    return Status(StatusCode::kResourceExhausted, "placement handle table full");
  }

  [[nodiscard]] Status Close(PlacementHandle handle) {
    if (Status s = Check(handle); !s.ok()) {
      return s;
    }
    slots_[handle.id()].open = false;
    slots_[handle.id()].spec = PlacementSpec{};
    return Status::Ok();
  }

  [[nodiscard]] Result<PlacementSpec> Describe(PlacementHandle handle) const {
    if (Status s = Check(handle); !s.ok()) {
      return s;
    }
    return slots_[handle.id()].spec;
  }

  // Ok iff `handle` names an open slot: kInvalidArgument for malformed
  // handles, kFailedPrecondition for well-formed but not-open slots
  // (never opened, or closed -- including double close).
  [[nodiscard]] Status Check(PlacementHandle handle) const {
    if (!handle.valid() || handle.id() >= slots_.size()) {
      return Status(StatusCode::kInvalidArgument, "malformed placement handle");
    }
    if (!slots_[handle.id()].open) {
      return Status(StatusCode::kFailedPrecondition, "placement handle not open");
    }
    return Status::Ok();
  }

  // Precondition: Check(handle).ok().
  const PlacementSpec& SpecOf(PlacementHandle handle) const { return slots_[handle.id()].spec; }

  uint32_t open_count() const {
    uint32_t n = 0;
    for (const Slot& slot : slots_) {
      n += slot.open ? 1 : 0;
    }
    return n;
  }

  uint32_t capacity() const { return static_cast<uint32_t>(slots_.size()); }

 private:
  struct Slot {
    bool open = false;
    PlacementSpec spec;
  };
  std::vector<Slot> slots_;
};

// Deterministic per-handle metric label: the spec's label when given, else
// "h<id>_<durability>_<lifetime>" so reopened slots stay distinguishable.
inline std::string PlacementLabel(PlacementHandle handle, const PlacementSpec& spec) {
  if (!spec.label.empty()) {
    return spec.label;
  }
  // Built with appends, not operator+ chains: GCC 12's -Wrestrict misfires
  // on rvalue string concatenation in some inlining contexts, and CI builds
  // with -Werror.
  std::string label = "h";
  label += std::to_string(handle.id());
  label += "_";
  label += DurabilityName(spec.durability);
  label += "_";
  label += LifetimeHintName(spec.lifetime);
  return label;
}

}  // namespace sos

#endif  // SOS_SRC_HOST_PLACEMENT_H_
