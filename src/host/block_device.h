// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Host-visible block device interface.
//
// The SOS co-design keeps the host/device split of Figure 2, but the
// classification channel is a placement-directive API (src/host/placement.h)
// rather than a per-write enum: the host opens a PlacementHandle declaring
// durability / expected lifetime / update frequency (paper §4.3:
// "classification information is sent to the storage device for each stored
// data block", via multi-stream/zoned/FDP-style interfaces [77][78]), and
// every write and reclassification carries a handle. The device decides
// physical placement, ECC strength, and migration from the handle's
// declared attributes.
//
// Capacity variance (paper §4.3, [74]): the device may retire worn blocks
// and *shrink*; hosts poll capacity_blocks() and must tolerate it going
// down. A CapacityListener receives shrink notifications.

#ifndef SOS_SRC_HOST_BLOCK_DEVICE_H_
#define SOS_SRC_HOST_BLOCK_DEVICE_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "src/common/status.h"
#include "src/common/units.h"
#include "src/host/placement.h"

namespace sos {

// Result of a logical block read.
struct BlockReadResult {
  std::vector<uint8_t> data;
  // Residual (post-ECC) bit errors present in `data`. Zero on the reliable
  // path; possibly nonzero for approximately stored blocks.
  uint64_t residual_bit_errors = 0;
  // True when the device had to return degraded data (ECC failed and no
  // redundancy could repair it).
  bool degraded = false;
};

class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  // Logical block size in bytes (constant for the device's lifetime).
  virtual uint32_t block_size() const = 0;

  // Currently usable logical capacity in blocks. May decrease over time as
  // the device retires worn flash (never increases).
  virtual uint64_t capacity_blocks() const = 0;

  // --- Placement directives (see src/host/placement.h) ---------------------

  // Opens a placement handle with the declared attributes. The table is
  // bounded: kResourceExhausted once kMaxPlacementHandles are open.
  [[nodiscard]] virtual Result<PlacementHandle> OpenPlacement(const PlacementSpec& spec) = 0;

  // Closes an open handle; its slot id becomes reusable. Data written under
  // the handle is unaffected. kInvalidArgument for malformed handles,
  // kFailedPrecondition if the slot is not open (double close included).
  [[nodiscard]] virtual Status ClosePlacement(PlacementHandle handle) = 0;

  // The spec an open handle was declared with.
  [[nodiscard]] virtual Result<PlacementSpec> DescribePlacement(PlacementHandle handle) const = 0;

  // --- Data path -----------------------------------------------------------

  // Writes one logical block under an open placement handle. `data` must be
  // at most block_size; shorter payloads are padded.
  [[nodiscard]] virtual Status Write(uint64_t lba, std::span<const uint8_t> data,
                                     PlacementHandle handle) = 0;

  // Reads one logical block.
  [[nodiscard]] virtual Result<BlockReadResult> Read(uint64_t lba) = 0;

  // Invalidates a logical block (TRIM).
  [[nodiscard]] virtual Status Trim(uint64_t lba) = 0;

  // Re-declares placement of an already-written block; the device migrates
  // physical placement accordingly (SOS's daemon uses this to demote data to
  // approximate storage). Contract:
  //   - unmapped/trimmed LBA: kNotFound, no device state changes;
  //   - the block already resides in the handle's primary target placement:
  //     Ok, a no-op (no flash operations are issued);
  //   - handle lifecycle errors as for Write.
  [[nodiscard]] virtual Status Reclassify(uint64_t lba, PlacementHandle handle) = 0;

  // Registers a callback fired when usable capacity shrinks (new capacity in
  // blocks). Default implementation ignores it (fixed-capacity devices).
  using CapacityListener = std::function<void(uint64_t new_capacity_blocks)>;
  virtual void SetCapacityListener(CapacityListener listener) { (void)listener; }
};

// ---------------------------------------------------------------------------
// PlacementDirectory: host-side handle memoization.
// ---------------------------------------------------------------------------

// Most hosts want one handle per distinct attribute combination, not one per
// file. The directory memoizes OpenPlacement by (durability, lifetime,
// update frequency) and closes everything it opened on destruction, so
// callers can ask For(spec) on every write path without leaking slots.
// Specs that differ only in label share a handle (the first label wins).
class PlacementDirectory {
 public:
  explicit PlacementDirectory(BlockDevice* device) : device_(device) {}

  PlacementDirectory(const PlacementDirectory&) = delete;
  PlacementDirectory& operator=(const PlacementDirectory&) = delete;

  ~PlacementDirectory() { CloseAll(); }

  [[nodiscard]] Result<PlacementHandle> For(const PlacementSpec& spec) {
    const uint32_t key = (static_cast<uint32_t>(spec.durability) << 16) |
                         (static_cast<uint32_t>(spec.lifetime) << 8) |
                         static_cast<uint32_t>(spec.update_frequency);
    if (auto it = open_.find(key); it != open_.end()) {
      return it->second;
    }
    auto opened = device_->OpenPlacement(spec);
    if (!opened.ok()) {
      return opened.status();
    }
    open_.emplace(key, opened.value());
    return opened.value();
  }

  [[nodiscard]] Result<PlacementSpec> Describe(PlacementHandle handle) const {
    return device_->DescribePlacement(handle);
  }

  void CloseAll() {
    for (const auto& [key, handle] : open_) {
      // Destruction-path cleanup: the device outlives us and a double close
      // of an already-invalidated handle is not actionable here.
      IgnoreResult(device_->ClosePlacement(handle));
    }
    open_.clear();
  }

  BlockDevice* device() const { return device_; }

 private:
  BlockDevice* device_;
  std::map<uint32_t, PlacementHandle> open_;  // ordered: deterministic CloseAll
};

}  // namespace sos

#endif  // SOS_SRC_HOST_BLOCK_DEVICE_H_
