// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Host-visible block device interface.
//
// The SOS co-design keeps the host/device split of Figure 2: the host file
// system issues logical block reads/writes plus a *stream hint* carrying the
// classification of each written block (paper §4.3: "classification
// information is sent to the storage device for each stored data block",
// via multi-stream/zoned-style interfaces [77][78]). The device decides
// physical placement, ECC strength, and migration.
//
// Capacity variance (paper §4.3, [74]): the device may retire worn blocks
// and *shrink*; hosts poll capacity_blocks() and must tolerate it going
// down. A CapacityListener receives shrink notifications.

#ifndef SOS_SRC_HOST_BLOCK_DEVICE_H_
#define SOS_SRC_HOST_BLOCK_DEVICE_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "src/common/status.h"
#include "src/common/units.h"

namespace sos {

// Host classification hint attached to each write (the two sets of §4.2).
enum class StreamClass : uint8_t {
  kSys = 0,    // critical: reliable placement (pseudo-QLC + parity)
  kSpare = 1,  // expendable: approximate placement (PLC, weak ECC)
};

inline const char* StreamClassName(StreamClass cls) {
  return cls == StreamClass::kSys ? "SYS" : "SPARE";
}

// Result of a logical block read.
struct BlockReadResult {
  std::vector<uint8_t> data;
  // Residual (post-ECC) bit errors present in `data`. Zero on the reliable
  // path; possibly nonzero for approximately stored blocks.
  uint64_t residual_bit_errors = 0;
  // True when the device had to return degraded data (ECC failed and no
  // redundancy could repair it).
  bool degraded = false;
};

class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  // Logical block size in bytes (constant for the device's lifetime).
  virtual uint32_t block_size() const = 0;

  // Currently usable logical capacity in blocks. May decrease over time as
  // the device retires worn flash (never increases).
  virtual uint64_t capacity_blocks() const = 0;

  // Writes one logical block. `data` must be at most block_size; shorter
  // payloads are padded. The stream hint classifies the data.
  [[nodiscard]] virtual Status Write(uint64_t lba, std::span<const uint8_t> data, StreamClass hint) = 0;

  // Reads one logical block.
  [[nodiscard]] virtual Result<BlockReadResult> Read(uint64_t lba) = 0;

  // Invalidates a logical block (TRIM).
  [[nodiscard]] virtual Status Trim(uint64_t lba) = 0;

  // Re-classifies an already-written block; the device migrates physical
  // placement accordingly (SOS's daemon uses this to demote data to SPARE).
  [[nodiscard]] virtual Status Reclassify(uint64_t lba, StreamClass hint) = 0;

  // Registers a callback fired when usable capacity shrinks (new capacity in
  // blocks). Default implementation ignores it (fixed-capacity devices).
  using CapacityListener = std::function<void(uint64_t new_capacity_blocks)>;
  virtual void SetCapacityListener(CapacityListener listener) { (void)listener; }
};

}  // namespace sos

#endif  // SOS_SRC_HOST_BLOCK_DEVICE_H_
