// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Extent-based file system over a BlockDevice.
//
// A deliberately small FS -- flat namespace keyed by file id, block-granular
// extents, no journaling -- because what SOS needs from the host FS is
// exactly three things (paper §4.2-4.3):
//   1. per-file placement: every write carries the file's PlacementHandle,
//   2. re-classification: re-declare a whole file's placement (demotion to
//      approximate storage, promotion back),
//   3. capacity variance: tolerate the device shrinking underneath it.
// File content integrity is tracked with a CRC32 of the written content, so
// reads can report whether degradation touched the file.

#ifndef SOS_SRC_HOST_FILE_SYSTEM_H_
#define SOS_SRC_HOST_FILE_SYSTEM_H_

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "src/classify/file_meta.h"
#include "src/common/sim_clock.h"
#include "src/common/status.h"
#include "src/host/block_device.h"

namespace sos {

struct Extent {
  uint64_t lba = 0;
  uint32_t blocks = 0;
};

struct FileReadResult {
  std::vector<uint8_t> data;          // possibly degraded content
  uint64_t residual_bit_errors = 0;   // total across the file's blocks
  bool degraded = false;              // any block returned degraded
  bool crc_ok = true;                 // matches the CRC at write time
};

struct FsStats {
  uint64_t files = 0;
  uint64_t used_blocks = 0;
  uint64_t capacity_blocks = 0;   // current device capacity
  uint64_t writes_issued = 0;
  uint64_t reads_issued = 0;
  // True when a capacity shrink left the FS overcommitted (used > capacity);
  // the host must delete data to recover (SOS auto-delete hooks in here).
  bool overcommitted = false;
};

class ExtentFileSystem {
 public:
  // `device` and `clock` must outlive the file system.
  ExtentFileSystem(BlockDevice* device, SimClock* clock);

  // Creates a file and writes `content` under the open placement handle
  // `placement` (the caller keeps it open for the file's lifetime --
  // PlacementDirectory memoizes this). Empty content marks the file
  // *synthetic*: it occupies meta.size_bytes of logical space and all device
  // traffic (writes, reads, rewrites) touches every allocated block, but no
  // bytes are retained -- the mode used by large metadata-only simulations.
  // Fails with kOutOfSpace when full. Returns the file id.
  [[nodiscard]] Result<uint64_t> CreateFile(FileMeta meta, std::span<const uint8_t> content,
                              PlacementHandle placement);

  // Reads the whole file, updating access statistics.
  [[nodiscard]] Result<FileReadResult> ReadFile(uint64_t file_id);

  // Overwrites content in place (same extents, same placement). Content must
  // not exceed the original allocation. Empty content on a synthetic file
  // rewrites every allocated block (an in-place update at full size).
  [[nodiscard]] Status OverwriteFile(uint64_t file_id, std::span<const uint8_t> content);

  // Deletes the file and trims its blocks.
  [[nodiscard]] Status DeleteFile(uint64_t file_id);

  // Re-declares the file's placement; the device migrates each of its
  // blocks. A no-op when the file already holds this handle.
  [[nodiscard]] Status ReclassifyFile(uint64_t file_id, PlacementHandle placement);

  // --- Introspection -------------------------------------------------------

  const FileMeta* Lookup(uint64_t file_id) const;
  PlacementHandle PlacementOf(uint64_t file_id) const;
  // The spec behind the file's handle (device lookup); errors if the handle
  // was closed out from under the file.
  [[nodiscard]] Result<PlacementSpec> PlacementSpecOf(uint64_t file_id) const;
  std::vector<uint64_t> FileIds() const;
  FsStats Stats() const;
  uint64_t FreeBlocks() const;

  // All file metadata, for the classification daemon's periodic scan.
  std::vector<const FileMeta*> ScanFiles() const;

  // The file's allocated extents (device-level daemons map them to LBAs).
  // Empty for unknown ids.
  std::vector<Extent> ExtentsOf(uint64_t file_id) const;

 private:
  struct FsFile {
    FileMeta meta;
    std::vector<Extent> extents;
    PlacementHandle placement;  // open handle the file was last written under
    uint32_t content_crc = 0;
    uint64_t content_bytes = 0;  // bytes actually written (for CRC check)
    bool synthetic = false;      // sized-but-empty content (metadata-only sims)
  };

  [[nodiscard]] Result<std::vector<Extent>> Allocate(uint64_t blocks_needed);
  void Release(const std::vector<Extent>& extents);
  void OnCapacityChange(uint64_t new_capacity_blocks);

  BlockDevice* device_;
  SimClock* clock_;
  std::map<uint64_t, FsFile> files_;
  std::vector<uint64_t> free_lbas_;  // LIFO free list
  uint64_t next_unused_lba_ = 0;     // bump allocator frontier
  uint64_t capacity_blocks_ = 0;     // tracks device shrink
  uint64_t used_blocks_ = 0;
  uint64_t next_file_id_ = 1;
  uint64_t writes_issued_ = 0;
  uint64_t reads_issued_ = 0;
};

}  // namespace sos

#endif  // SOS_SRC_HOST_FILE_SYSTEM_H_
