// Copyright (c) 2026 The SOS Authors. MIT License.

#include "src/host/compression.h"

#include <algorithm>
#include <cmath>

namespace sos {

CompressionEstimate EstimateFile(const FileMeta& meta, double framing_overhead) {
  CompressionEstimate estimate;
  estimate.original_bytes = meta.size_bytes;
  const double entropy_fraction = std::clamp(meta.entropy_bits_per_byte / 8.0, 0.0, 1.0);
  const double compressed =
      static_cast<double>(meta.size_bytes) * entropy_fraction * (1.0 + framing_overhead);
  // Below ~3% gain an inline compressor stores the block raw.
  if (compressed >= static_cast<double>(meta.size_bytes) * 0.97) {
    estimate.compressed_bytes = meta.size_bytes;
  } else {
    estimate.compressed_bytes = static_cast<uint64_t>(compressed);
  }
  return estimate;
}

CorpusCompressionReport AnalyzeCorpus(std::span<const FileMeta> corpus,
                                      double framing_overhead) {
  CorpusCompressionReport report;
  for (const FileMeta& meta : corpus) {
    const CompressionEstimate file = EstimateFile(meta, framing_overhead);
    report.total.original_bytes += file.original_bytes;
    report.total.compressed_bytes += file.compressed_bytes;
    CompressionEstimate& type = report.by_type[static_cast<size_t>(meta.type)];
    type.original_bytes += file.original_bytes;
    type.compressed_bytes += file.compressed_bytes;
  }
  return report;
}

double MeasuredEntropyBitsPerByte(std::span<const uint8_t> data) {
  if (data.empty()) {
    return 0.0;
  }
  std::array<uint64_t, 256> counts{};
  for (uint8_t byte : data) {
    ++counts[byte];
  }
  double entropy = 0.0;
  const double n = static_cast<double>(data.size());
  for (uint64_t count : counts) {
    if (count == 0) {
      continue;
    }
    const double p = static_cast<double>(count) / n;
    entropy -= p * std::log2(p);
  }
  return entropy;
}

}  // namespace sos
