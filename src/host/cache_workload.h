// Copyright (c) 2026 The SOS Authors. MIT License.
//
// CacheLib-style flash-cache workload generator.
//
// Models the other end of the placement-directive spectrum from the mobile
// workload: a flash cache in a datacenter knows its object lifetimes *up
// front* (TTLs are part of the set request), churns through short-lived
// objects at high rate, and mixes that churn with a small set of hot,
// critical index files. This is the workload class FDP-style placement
// directives were designed for: tagging TTL'd objects with short-lifetime
// degradable handles lets the FTL co-locate data that dies together and
// steer it onto worn blocks, collapsing GC write amplification toward 1.
//
// The generator emits the same day-batched WorkloadEvent stream as the
// mobile generator, so the lifetime simulation drives both through one code
// path. Object metadata carries `expected_lifetime_us` (the TTL) so the
// placement layer can declare the lifetime honestly instead of guessing.

#ifndef SOS_SRC_HOST_CACHE_WORKLOAD_H_
#define SOS_SRC_HOST_CACHE_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "src/host/workload.h"

namespace sos {

struct FlashCacheWorkloadConfig {
  uint64_t seed = 1;

  // Fraction of set requests admitted to flash (CacheLib's admission
  // policy rejects the rest before they cost a write).
  double admission_ratio = 0.7;

  // Mean set requests per day (before admission) and get requests per day
  // (over admitted, unexpired objects; recency-skewed).
  double objects_per_day = 60.0;
  double lookups_per_day = 400.0;

  // Object size mix: mostly small objects with a heavy tail.
  struct SizeClass {
    uint64_t bytes;
    double weight;
  };
  std::vector<SizeClass> sizes = {{4 * kKiB, 0.50}, {32 * kKiB, 0.35}, {128 * kKiB, 0.15}};

  // TTL churn classes: most objects expire within a day, a tail lives for
  // weeks. The TTL is declared on the object's FileMeta as
  // expected_lifetime_us, and expiry emits a delete event.
  struct TtlClass {
    uint32_t days;
    double weight;
  };
  std::vector<TtlClass> ttls = {{1, 0.60}, {7, 0.30}, {30, 0.10}};

  // Hot critical state: the cache's index / metadata files, created on day
  // zero and overwritten in place throughout the run.
  uint32_t index_files = 4;
  uint64_t index_file_bytes = 64 * kKiB;
  double index_updates_per_day = 32.0;
};

class FlashCacheWorkloadGenerator final : public WorkloadGenerator {
 public:
  explicit FlashCacheWorkloadGenerator(const FlashCacheWorkloadConfig& config);

  std::vector<WorkloadEvent> Day(uint64_t day_index) override;
  void DropRef(uint64_t file_ref) override;
  size_t live_files() const override { return live_.size() + index_refs_.size(); }

 private:
  struct LiveObject {
    uint64_t ref;
    uint64_t expires_day;  // first day on which the object is expired
    SimTimeUs created_at;
  };

  // Weighted pick over the configured size / TTL classes.
  uint64_t SampleSize();
  uint32_t SampleTtlDays();
  // Samples a live object, biased toward recently admitted ones.
  const LiveObject* SampleLive();

  FlashCacheWorkloadConfig config_;
  Rng rng_;
  std::vector<LiveObject> live_;
  std::vector<uint64_t> index_refs_;
  uint64_t next_ref_ = 1;
};

}  // namespace sos

#endif  // SOS_SRC_HOST_CACHE_WORKLOAD_H_
