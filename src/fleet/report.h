// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Fleet report rendering, shared by bench_fleet and tools/fleetmerge so the
// merged-from-partials path and the single-process path emit byte-identical
// text and metrics JSON for the same population.

#ifndef SOS_SRC_FLEET_REPORT_H_
#define SOS_SRC_FLEET_REPORT_H_

#include <string>

#include "src/fleet/partial.h"

namespace sos::fleet {

// Human-readable fleet report: population table per archetype, outcome
// distributions, and the carbon ledger with the paper's people-equivalent
// framing. Deterministic text -- every number renders from the ledger's
// exact integers.
std::string FleetReport(const FleetPartial& partial);

// The metrics JSON document for --metrics-out / the golden diff: the ledger
// under "fleet." plus the population echo under "fleet.config.".
std::string FleetMetricsJson(const FleetPartial& partial);

}  // namespace sos::fleet

#endif  // SOS_SRC_FLEET_REPORT_H_
