// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Device archetypes for fleet-scale simulation (DESIGN.md §13).
//
// A fleet is a *population*: millions of devices that differ in how hard
// they are used (workload mix), how big they are (die geometry, full-size
// capacity), how old they are (initial PEC), and whether they run the SOS
// scheme or a conventional baseline. An Archetype names one such usage
// profile; DrawDevice() turns (fleet seed, device index) into a concrete
// LifetimeSimConfig by seeded sampling inside the archetype's parameter
// ranges.
//
// The sampling contract is the foundation of the fleet determinism story:
// device i's entire configuration is a pure function of
// DeriveSeed({fleet_seed, i}) -- never of the shard it lands on, the worker
// that runs it, or how many devices the invocation covers. Any shard split
// of the index range therefore simulates the exact same population.

#ifndef SOS_SRC_FLEET_ARCHETYPE_H_
#define SOS_SRC_FLEET_ARCHETYPE_H_

#include <array>
#include <cstdint>
#include <string>

#include "src/common/status.h"
#include "src/sos/lifetime_sim.h"

namespace sos::fleet {

// The population profiles ROADMAP item 1 names. Values are contiguous so
// ledgers can index per-archetype counters by cast.
enum class Archetype : uint8_t {
  kLight = 0,        // casual user: few photos, light churn, small device
  kMediaHoarder = 1,  // camera-heavy: large media inflow, rare deletes
  kAppChurner = 2,    // app-update churn: heavy small overwrites + caches
};

inline constexpr size_t kNumArchetypes = 3;

// Display name ("light", "media_hoarder", "app_churner"); also the spelling
// the --mix flag accepts.
const char* ArchetypeName(Archetype archetype);

// Inverse of ArchetypeName; kInvalidArgument on an unknown spelling.
Result<Archetype> ParseArchetype(const std::string& name);

// Relative population weights, one per archetype (indexed by cast). Weights
// are relative, not percentages; they only need to be non-negative with a
// positive sum.
struct MixSpec {
  std::array<double, kNumArchetypes> weights = {60.0, 25.0, 15.0};

  double TotalWeight() const;
};

// Parses "light:60,media_hoarder:25,app_churner:15". Every named archetype
// gets the given weight; unnamed ones get zero. kInvalidArgument on unknown
// names, malformed weights, negative weights, duplicates, or an all-zero
// mix.
Result<MixSpec> ParseMixSpec(const std::string& spec);

// Canonical rendering of a mix ("light:60,media_hoarder:25,app_churner:15"),
// used to echo the mix into partial files so a merge can refuse to combine
// partials drawn from different populations.
std::string MixSpecToString(const MixSpec& mix);

// One sampled device: the archetype it was drawn from, the concrete sim
// config, and the full-size capacity (decimal GB) the scaled-down sim stands
// in for -- the quantity the embodied-carbon ledger is denominated in.
struct DeviceDraw {
  uint64_t index = 0;
  Archetype archetype = Archetype::kLight;
  LifetimeSimConfig config;
  double full_size_gb = 128.0;
};

// Samples device `index` of the population defined by (`mix`, `fleet_seed`).
// Pure function of its arguments; see the file comment for why that matters.
// The returned config has the fleet throughput knobs pre-set (memoized RBER,
// batched relocation, no payloads, no trace retention, no per-device metric
// rows) -- a fleet of a million devices keeps only scalar outcomes.
DeviceDraw DrawDevice(const MixSpec& mix, uint64_t fleet_seed, uint64_t index);

}  // namespace sos::fleet

#endif  // SOS_SRC_FLEET_ARCHETYPE_H_
