// Copyright (c) 2026 The SOS Authors. MIT License.

#include "src/fleet/partial.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace sos::fleet {

// Assembles a ledger from parsed parts. Lives here (not in ledger.cc) so the
// private-field assignment stays next to the only reader that needs it.
struct LedgerCodec {
  struct Totals {
    uint64_t autodelete_files = 0;
    uint64_t autodelete_bytes = 0;
    uint64_t create_failures = 0;
    uint64_t host_bytes = 0;
    uint64_t daemon_activations = 0;
    uint64_t trace_dropped = 0;
  };

  static FleetLedger Build(uint64_t devices,
                           const std::array<uint64_t, kNumArchetypes>& archetype_devices,
                           uint64_t sos_devices, uint64_t baseline_devices,
                           FleetHistogram lifetime, FleetHistogram capacity,
                           FleetHistogram autodelete, FleetHistogram pec,
                           const CarbonAccumulator& carbon,
                           const std::array<CarbonAccumulator, kNumArchetypes>& archetype_carbon,
                           const Totals& totals) {
    FleetLedger ledger;
    ledger.devices_ = devices;
    ledger.archetype_devices_ = archetype_devices;
    ledger.sos_devices_ = sos_devices;
    ledger.baseline_devices_ = baseline_devices;
    ledger.lifetime_years_ = std::move(lifetime);
    ledger.capacity_retained_ = std::move(capacity);
    ledger.autodelete_files_ = std::move(autodelete);
    ledger.pec_variance_ = std::move(pec);
    ledger.carbon_ = carbon;
    ledger.archetype_carbon_ = archetype_carbon;
    ledger.autodelete_files_total_ = totals.autodelete_files;
    ledger.autodelete_bytes_total_ = totals.autodelete_bytes;
    ledger.create_failures_total_ = totals.create_failures;
    ledger.host_bytes_total_ = totals.host_bytes;
    ledger.daemon_activations_total_ = totals.daemon_activations;
    ledger.trace_dropped_total_ = totals.trace_dropped;
    return ledger;
  }
};

namespace {

// --- Writer ------------------------------------------------------------------

void AppendU64(std::string& out, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

void AppendI64(std::string& out, int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out += buf;
}

void AppendEscaped(std::string& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
}

void AppendHistogram(std::string& out, const char* name, const FleetHistogram& h) {
  out += "      \"";
  out += name;
  out += "\": {\"count\": ";
  AppendU64(out, h.count());
  out += ", \"micro_sum\": ";
  AppendI64(out, h.micro_sum());
  out += ", \"buckets\": [";
  for (size_t i = 0; i < h.buckets().size(); ++i) {
    if (i > 0) {
      out += ", ";
    }
    AppendU64(out, h.buckets()[i]);
  }
  out += "]}";
}

void AppendCarbon(std::string& out, const CarbonAccumulator& c) {
  out += "[";
  AppendI64(out, c.actual_micro_kg);
  out += ", ";
  AppendI64(out, c.tlc_counterfactual_micro_kg);
  out += ", ";
  AppendI64(out, c.capacity_micro_gb);
  out += "]";
}

// --- Minimal JSON reader -----------------------------------------------------
//
// Parses exactly the subset PartialToJson emits: objects with string keys,
// arrays, signed integers, and strings with \"/\\ escapes. Object members
// are kept as an ordered vector (no hash iteration; soslint R1) and looked
// up by key.

struct JsonValue {
  enum class Kind : uint8_t { kObject, kArray, kNumber, kString };
  Kind kind = Kind::kNumber;
  std::vector<std::pair<std::string, JsonValue>> members;  // kObject
  std::vector<JsonValue> elements;                         // kArray
  std::string text;                                        // kNumber / kString

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : members) {
      if (k == key) {
        return &v;
      }
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& input) : input_(input) {}

  Result<JsonValue> Parse() {
    Result<JsonValue> value = ParseValue();
    if (!value.ok()) {
      return value;
    }
    SkipSpace();
    if (pos_ != input_.size()) {
      return Error("trailing characters");
    }
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    char buf[32];
    std::snprintf(buf, sizeof(buf), " at byte %zu", pos_);
    return Status(StatusCode::kInvalidArgument, "partial json: " + what + buf);
  }

  void SkipSpace() {
    while (pos_ < input_.size() &&
           (input_[pos_] == ' ' || input_[pos_] == '\n' || input_[pos_] == '\t' ||
            input_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < input_.size() && input_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    SkipSpace();
    if (pos_ >= input_.size()) {
      return Error("unexpected end of input");
    }
    const char c = input_[pos_];
    if (c == '{') {
      return ParseObject();
    }
    if (c == '[') {
      return ParseArray();
    }
    if (c == '"') {
      return ParseString();
    }
    if (c == '-' || (c >= '0' && c <= '9')) {
      return ParseNumber();
    }
    return Error(std::string("unexpected character '") + c + "'");
  }

  Result<JsonValue> ParseObject() {
    ++pos_;  // '{'
    JsonValue value;
    value.kind = JsonValue::Kind::kObject;
    if (Consume('}')) {
      return value;
    }
    while (true) {
      SkipSpace();
      Result<JsonValue> key = ParseString();
      if (!key.ok()) {
        return key;
      }
      if (!Consume(':')) {
        return Error("expected ':'");
      }
      Result<JsonValue> member = ParseValue();
      if (!member.ok()) {
        return member;
      }
      value.members.emplace_back(key.value().text, std::move(member.value()));
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        return value;
      }
      return Error("expected ',' or '}'");
    }
  }

  Result<JsonValue> ParseArray() {
    ++pos_;  // '['
    JsonValue value;
    value.kind = JsonValue::Kind::kArray;
    if (Consume(']')) {
      return value;
    }
    while (true) {
      Result<JsonValue> element = ParseValue();
      if (!element.ok()) {
        return element;
      }
      value.elements.push_back(std::move(element.value()));
      if (Consume(',')) {
        continue;
      }
      if (Consume(']')) {
        return value;
      }
      return Error("expected ',' or ']'");
    }
  }

  Result<JsonValue> ParseString() {
    SkipSpace();
    if (pos_ >= input_.size() || input_[pos_] != '"') {
      return Error("expected string");
    }
    ++pos_;
    JsonValue value;
    value.kind = JsonValue::Kind::kString;
    while (pos_ < input_.size() && input_[pos_] != '"') {
      char c = input_[pos_];
      if (c == '\\') {
        ++pos_;
        if (pos_ >= input_.size()) {
          return Error("dangling escape");
        }
        c = input_[pos_];
        if (c != '"' && c != '\\') {
          return Error("unsupported escape");
        }
      }
      value.text += c;
      ++pos_;
    }
    if (pos_ >= input_.size()) {
      return Error("unterminated string");
    }
    ++pos_;  // closing quote
    return value;
  }

  Result<JsonValue> ParseNumber() {
    JsonValue value;
    value.kind = JsonValue::Kind::kNumber;
    if (input_[pos_] == '-') {
      value.text += '-';
      ++pos_;
    }
    while (pos_ < input_.size() && input_[pos_] >= '0' && input_[pos_] <= '9') {
      value.text += input_[pos_];
      ++pos_;
    }
    if (value.text.empty() || value.text == "-") {
      return Error("malformed number");
    }
    return value;
  }

  const std::string& input_;
  size_t pos_ = 0;
};

Result<uint64_t> GetU64(const JsonValue& object, const std::string& key) {
  const JsonValue* v = object.Find(key);
  if (v == nullptr || v->kind != JsonValue::Kind::kNumber || v->text.empty() ||
      v->text[0] == '-') {
    return Status(StatusCode::kInvalidArgument, "partial json: missing/invalid u64 '" + key + "'");
  }
  return static_cast<uint64_t>(std::strtoull(v->text.c_str(), nullptr, 10));
}

Result<int64_t> GetI64(const JsonValue& object, const std::string& key) {
  const JsonValue* v = object.Find(key);
  if (v == nullptr || v->kind != JsonValue::Kind::kNumber) {
    return Status(StatusCode::kInvalidArgument, "partial json: missing/invalid i64 '" + key + "'");
  }
  return static_cast<int64_t>(std::strtoll(v->text.c_str(), nullptr, 10));
}

Result<std::string> GetString(const JsonValue& object, const std::string& key) {
  const JsonValue* v = object.Find(key);
  if (v == nullptr || v->kind != JsonValue::Kind::kString) {
    return Status(StatusCode::kInvalidArgument, "partial json: missing string '" + key + "'");
  }
  return v->text;
}

Result<FleetHistogram> ParseHistogram(const JsonValue& histograms, const std::string& name,
                                      const FleetHistogram& shape) {
  const JsonValue* v = histograms.Find(name);
  if (v == nullptr || v->kind != JsonValue::Kind::kObject) {
    return Status(StatusCode::kInvalidArgument, "partial json: missing histogram '" + name + "'");
  }
  Result<uint64_t> count = GetU64(*v, "count");
  if (!count.ok()) {
    return count.status();
  }
  Result<int64_t> micro_sum = GetI64(*v, "micro_sum");
  if (!micro_sum.ok()) {
    return micro_sum.status();
  }
  const JsonValue* buckets = v->Find("buckets");
  if (buckets == nullptr || buckets->kind != JsonValue::Kind::kArray ||
      buckets->elements.size() != shape.bounds().size() + 1) {
    return Status(StatusCode::kInvalidArgument,
                  "partial json: histogram '" + name + "' has wrong bucket count");
  }
  std::vector<uint64_t> counts;
  counts.reserve(buckets->elements.size());
  for (const JsonValue& e : buckets->elements) {
    if (e.kind != JsonValue::Kind::kNumber || e.text.empty() || e.text[0] == '-') {
      return Status(StatusCode::kInvalidArgument,
                    "partial json: histogram '" + name + "' has non-u64 bucket");
    }
    counts.push_back(static_cast<uint64_t>(std::strtoull(e.text.c_str(), nullptr, 10)));
  }
  return FleetHistogram::FromParts(shape.bounds(), std::move(counts), count.value(),
                                   micro_sum.value());
}

Result<CarbonAccumulator> ParseCarbon(const JsonValue& array) {
  if (array.kind != JsonValue::Kind::kArray || array.elements.size() != 3) {
    return Status(StatusCode::kInvalidArgument, "partial json: carbon must be [a, tlc, gb]");
  }
  CarbonAccumulator acc;
  int64_t* fields[3] = {&acc.actual_micro_kg, &acc.tlc_counterfactual_micro_kg,
                        &acc.capacity_micro_gb};
  for (size_t i = 0; i < 3; ++i) {
    const JsonValue& e = array.elements[i];
    if (e.kind != JsonValue::Kind::kNumber) {
      return Status(StatusCode::kInvalidArgument, "partial json: carbon entry not a number");
    }
    *fields[i] = static_cast<int64_t>(std::strtoll(e.text.c_str(), nullptr, 10));
  }
  return acc;
}

}  // namespace

std::string PartialToJson(const FleetPartial& partial) {
  const FleetLedger& ledger = partial.ledger;
  std::string out = "{\n  \"fleet_partial\": {\n";
  out += "    \"schema_version\": ";
  AppendU64(out, partial.schema_version);
  out += ",\n    \"fleet_seed\": ";
  AppendU64(out, partial.fleet_seed);
  out += ",\n    \"fleet_devices\": ";
  AppendU64(out, partial.fleet_devices);
  out += ",\n    \"mix\": \"";
  AppendEscaped(out, partial.mix);
  out += "\",\n    \"shard_index\": ";
  AppendU64(out, partial.shard_index);
  out += ",\n    \"shard_count\": ";
  AppendU64(out, partial.shard_count);
  out += ",\n    \"shard_devices\": ";
  AppendU64(out, partial.shard_devices);
  out += ",\n    \"devices\": ";
  AppendU64(out, ledger.devices());
  out += ",\n    \"archetype_devices\": [";
  for (size_t i = 0; i < kNumArchetypes; ++i) {
    if (i > 0) {
      out += ", ";
    }
    AppendU64(out, ledger.archetype_devices()[i]);
  }
  out += "],\n    \"sos_devices\": ";
  AppendU64(out, ledger.sos_devices());
  out += ",\n    \"baseline_devices\": ";
  AppendU64(out, ledger.baseline_devices());
  out += ",\n    \"histograms\": {\n";
  AppendHistogram(out, "lifetime_years", ledger.lifetime_years());
  out += ",\n";
  AppendHistogram(out, "capacity_retained", ledger.capacity_retained());
  out += ",\n";
  AppendHistogram(out, "autodelete_files", ledger.autodelete_files());
  out += ",\n";
  AppendHistogram(out, "pec_variance", ledger.pec_variance());
  out += "\n    },\n    \"carbon\": ";
  AppendCarbon(out, ledger.carbon());
  out += ",\n    \"archetype_carbon\": [";
  for (size_t i = 0; i < kNumArchetypes; ++i) {
    if (i > 0) {
      out += ", ";
    }
    AppendCarbon(out, ledger.archetype_carbon()[i]);
  }
  out += "],\n    \"totals\": [";
  AppendU64(out, ledger.autodelete_files_total());
  out += ", ";
  AppendU64(out, ledger.autodelete_bytes_total());
  out += ", ";
  AppendU64(out, ledger.create_failures_total());
  out += ", ";
  AppendU64(out, ledger.host_bytes_total());
  out += ", ";
  AppendU64(out, ledger.daemon_activations_total());
  out += ", ";
  AppendU64(out, ledger.trace_dropped_total());
  out += "]\n  }\n}\n";
  return out;
}

Result<FleetPartial> ParsePartialJson(const std::string& json) {
  Result<JsonValue> parsed = JsonParser(json).Parse();
  if (!parsed.ok()) {
    return parsed.status();
  }
  const JsonValue* root = parsed.value().Find("fleet_partial");
  if (root == nullptr || root->kind != JsonValue::Kind::kObject) {
    return Status(StatusCode::kInvalidArgument, "partial json: missing 'fleet_partial' object");
  }

  FleetPartial partial;
  struct U64Field {
    const char* key;
    uint64_t* dst;
  };
  const U64Field header[] = {
      {"schema_version", &partial.schema_version},
      {"fleet_seed", &partial.fleet_seed},
      {"fleet_devices", &partial.fleet_devices},
      {"shard_index", &partial.shard_index},
      {"shard_count", &partial.shard_count},
      {"shard_devices", &partial.shard_devices},
  };
  for (const U64Field& field : header) {
    Result<uint64_t> value = GetU64(*root, field.key);
    if (!value.ok()) {
      return value.status();
    }
    *field.dst = value.value();
  }
  if (partial.schema_version != kPartialSchemaVersion) {
    return Status(StatusCode::kInvalidArgument, "partial json: unsupported schema version");
  }
  Result<std::string> mix = GetString(*root, "mix");
  if (!mix.ok()) {
    return mix.status();
  }
  partial.mix = mix.value();

  Result<uint64_t> devices = GetU64(*root, "devices");
  if (!devices.ok()) {
    return devices.status();
  }
  const JsonValue* arch_devices = root->Find("archetype_devices");
  if (arch_devices == nullptr || arch_devices->kind != JsonValue::Kind::kArray ||
      arch_devices->elements.size() != kNumArchetypes) {
    return Status(StatusCode::kInvalidArgument, "partial json: bad archetype_devices");
  }
  std::array<uint64_t, kNumArchetypes> archetype_devices = {};
  for (size_t i = 0; i < kNumArchetypes; ++i) {
    const JsonValue& e = arch_devices->elements[i];
    if (e.kind != JsonValue::Kind::kNumber || e.text.empty() || e.text[0] == '-') {
      return Status(StatusCode::kInvalidArgument, "partial json: bad archetype_devices entry");
    }
    archetype_devices[i] = static_cast<uint64_t>(std::strtoull(e.text.c_str(), nullptr, 10));
  }
  Result<uint64_t> sos_devices = GetU64(*root, "sos_devices");
  if (!sos_devices.ok()) {
    return sos_devices.status();
  }
  Result<uint64_t> baseline_devices = GetU64(*root, "baseline_devices");
  if (!baseline_devices.ok()) {
    return baseline_devices.status();
  }

  const JsonValue* histograms = root->Find("histograms");
  if (histograms == nullptr || histograms->kind != JsonValue::Kind::kObject) {
    return Status(StatusCode::kInvalidArgument, "partial json: missing 'histograms'");
  }
  const FleetLedger shape;  // supplies the fixed bucket bounds
  Result<FleetHistogram> lifetime =
      ParseHistogram(*histograms, "lifetime_years", shape.lifetime_years());
  if (!lifetime.ok()) {
    return lifetime.status();
  }
  Result<FleetHistogram> capacity =
      ParseHistogram(*histograms, "capacity_retained", shape.capacity_retained());
  if (!capacity.ok()) {
    return capacity.status();
  }
  Result<FleetHistogram> autodelete =
      ParseHistogram(*histograms, "autodelete_files", shape.autodelete_files());
  if (!autodelete.ok()) {
    return autodelete.status();
  }
  Result<FleetHistogram> pec = ParseHistogram(*histograms, "pec_variance", shape.pec_variance());
  if (!pec.ok()) {
    return pec.status();
  }

  const JsonValue* carbon_value = root->Find("carbon");
  if (carbon_value == nullptr) {
    return Status(StatusCode::kInvalidArgument, "partial json: missing 'carbon'");
  }
  Result<CarbonAccumulator> carbon = ParseCarbon(*carbon_value);
  if (!carbon.ok()) {
    return carbon.status();
  }
  const JsonValue* arch_carbon_value = root->Find("archetype_carbon");
  if (arch_carbon_value == nullptr || arch_carbon_value->kind != JsonValue::Kind::kArray ||
      arch_carbon_value->elements.size() != kNumArchetypes) {
    return Status(StatusCode::kInvalidArgument, "partial json: bad archetype_carbon");
  }
  std::array<CarbonAccumulator, kNumArchetypes> archetype_carbon = {};
  for (size_t i = 0; i < kNumArchetypes; ++i) {
    Result<CarbonAccumulator> acc = ParseCarbon(arch_carbon_value->elements[i]);
    if (!acc.ok()) {
      return acc.status();
    }
    archetype_carbon[i] = acc.value();
  }

  const JsonValue* totals_value = root->Find("totals");
  if (totals_value == nullptr || totals_value->kind != JsonValue::Kind::kArray ||
      totals_value->elements.size() != 6) {
    return Status(StatusCode::kInvalidArgument, "partial json: bad 'totals'");
  }
  LedgerCodec::Totals totals;
  uint64_t* total_fields[6] = {&totals.autodelete_files,   &totals.autodelete_bytes,
                               &totals.create_failures,    &totals.host_bytes,
                               &totals.daemon_activations, &totals.trace_dropped};
  for (size_t i = 0; i < 6; ++i) {
    const JsonValue& e = totals_value->elements[i];
    if (e.kind != JsonValue::Kind::kNumber || e.text.empty() || e.text[0] == '-') {
      return Status(StatusCode::kInvalidArgument, "partial json: bad totals entry");
    }
    *total_fields[i] = static_cast<uint64_t>(std::strtoull(e.text.c_str(), nullptr, 10));
  }

  partial.ledger = LedgerCodec::Build(
      devices.value(), archetype_devices, sos_devices.value(), baseline_devices.value(),
      std::move(lifetime.value()), std::move(capacity.value()), std::move(autodelete.value()),
      std::move(pec.value()), carbon.value(), archetype_carbon, totals);
  return partial;
}

Result<FleetPartial> ReadPartialFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status(StatusCode::kUnavailable, "cannot open " + path);
  }
  std::string content;
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    content.append(buf, n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status(StatusCode::kUnavailable, "read error on " + path);
  }
  Result<FleetPartial> partial = ParsePartialJson(content);
  if (!partial.ok()) {
    return Status(partial.status().code(), path + ": " + partial.status().message());
  }
  return partial;
}

Result<FleetPartial> MergePartials(std::vector<FleetPartial> partials) {
  if (partials.empty()) {
    return Status(StatusCode::kInvalidArgument, "merge: no partials given");
  }
  const FleetPartial& first = partials.front();
  const uint64_t shard_count = first.shard_count;
  if (partials.size() != shard_count) {
    return Status(StatusCode::kInvalidArgument, "merge: shard set incomplete or oversized");
  }
  std::vector<bool> seen(shard_count, false);
  for (const FleetPartial& p : partials) {
    if (p.fleet_seed != first.fleet_seed || p.fleet_devices != first.fleet_devices ||
        p.mix != first.mix || p.shard_count != shard_count) {
      return Status(StatusCode::kInvalidArgument,
                    "merge: partials describe different populations");
    }
    if (p.shard_index >= shard_count) {
      return Status(StatusCode::kInvalidArgument, "merge: shard index out of range");
    }
    if (seen[p.shard_index]) {
      return Status(StatusCode::kInvalidArgument, "merge: duplicate shard");
    }
    seen[p.shard_index] = true;
  }

  // Canonical order (the ledger algebra is order-insensitive; sorting keeps
  // even hypothetical future non-commutative fields honest).
  std::vector<const FleetPartial*> ordered(shard_count, nullptr);
  for (const FleetPartial& p : partials) {
    ordered[p.shard_index] = &p;
  }

  FleetPartial merged;
  merged.fleet_seed = first.fleet_seed;
  merged.fleet_devices = first.fleet_devices;
  merged.mix = first.mix;
  merged.shard_index = 0;
  merged.shard_count = 1;
  for (const FleetPartial* p : ordered) {
    merged.shard_devices += p->shard_devices;
    Status status = merged.ledger.Merge(p->ledger);
    if (!status.ok()) {
      return status;
    }
  }
  if (merged.shard_devices != merged.fleet_devices) {
    return Status(StatusCode::kInvalidArgument,
                  "merge: shard device counts do not cover the fleet");
  }
  return merged;
}

}  // namespace sos::fleet
