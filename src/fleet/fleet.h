// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Fleet runner: population simulation over the experiment driver
// (DESIGN.md §13).
//
// RunFleet() simulates every device of the population that lands on this
// process's shard (index % shard_count == shard_index) and folds the
// outcomes into one FleetLedger. Parallelism is the PR-1 share-nothing
// pattern: each device is an independent LifetimeSim, fanned out over the
// ExperimentDriver in fixed-size waves (bounding peak memory to one wave of
// outcomes, not the whole fleet) and folded in index order. Because the
// ledger algebra is order-insensitive (ledger.h) AND the fold order is
// fixed anyway, the aggregate is byte-identical for any --jobs value.

#ifndef SOS_SRC_FLEET_FLEET_H_
#define SOS_SRC_FLEET_FLEET_H_

#include <cstdint>
#include <string>
#include <utility>

#include "src/common/status.h"
#include "src/fleet/archetype.h"
#include "src/fleet/ledger.h"
#include "src/fleet/partial.h"

namespace sos::fleet {

struct FleetConfig {
  uint64_t devices = 10000;
  uint64_t seed = 1;
  MixSpec mix;
  // Process-level shard coordinates: this run covers device indices with
  // index % shard_count == shard_index. 0/1 = the whole fleet.
  uint64_t shard_index = 0;
  uint64_t shard_count = 1;
  // Worker threads for the intra-process fan-out (1 = inline; pass through
  // bench_util's ResolveJobs for --jobs=0 auto semantics).
  size_t jobs = 1;
};

// Validates shard coordinates and device count. kInvalidArgument on
// shard_index >= shard_count or zero devices/shard_count.
[[nodiscard]] Status ValidateFleetConfig(const FleetConfig& config);

// Parses "i/N" (e.g. "0/4") into (shard_index, shard_count).
Result<std::pair<uint64_t, uint64_t>> ParseShardSpec(const std::string& spec);

// Runs this shard of the population and returns its partial (ledger +
// population echo). The devices simulated and their configurations depend
// only on (seed, mix, devices) -- never on the shard split or jobs.
Result<FleetPartial> RunFleet(const FleetConfig& config);

}  // namespace sos::fleet

#endif  // SOS_SRC_FLEET_FLEET_H_
