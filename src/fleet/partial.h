// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Shard partial files: the process-level half of fleet sharding
// (DESIGN.md §13).
//
// A shard run (`bench_fleet --shard=i/N --partial-out=...`) simulates every
// device whose index i satisfies index % N == i and writes its FleetLedger
// as a JSON partial. A merge step (tools/fleetmerge, or bench_fleet
// --merge) reads any complete set of partials and reconstructs the exact
// ledger a single-process run would have produced.
//
// Everything a partial carries is an integer (counts and micro-unit fixed
// point) or an echo string -- no doubles -- so serialization is trivially
// exact and the merged ledger is bit-identical to the unsharded one. The
// header echoes the population identity (seed, device count, mix, schema
// version) and the shard coordinates; MergePartials() refuses mismatched
// populations, duplicate shards, and incomplete covers.

#ifndef SOS_SRC_FLEET_PARTIAL_H_
#define SOS_SRC_FLEET_PARTIAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/fleet/ledger.h"

namespace sos::fleet {

// Version of the partial schema; bumped whenever the ledger layout changes
// so a merge never silently combines incompatible files.
inline constexpr uint64_t kPartialSchemaVersion = 1;

// One shard's ledger plus the population identity it was computed from.
struct FleetPartial {
  uint64_t schema_version = kPartialSchemaVersion;
  uint64_t fleet_seed = 0;
  uint64_t fleet_devices = 0;  // whole population, not this shard's slice
  std::string mix;             // MixSpecToString echo
  uint64_t shard_index = 0;
  uint64_t shard_count = 1;
  uint64_t shard_devices = 0;  // devices this shard actually simulated
  FleetLedger ledger;
};

// Deterministic JSON rendering (fixed key order, integer values only).
std::string PartialToJson(const FleetPartial& partial);

// Parses what PartialToJson wrote. kInvalidArgument on malformed input or
// schema mismatch.
Result<FleetPartial> ParsePartialJson(const std::string& json);

// Reads and parses a partial file. kUnavailable on I/O failure.
Result<FleetPartial> ReadPartialFile(const std::string& path);

// Merges a complete shard set into one partial (shard 0/1 of the whole
// population). Validation: all partials must agree on schema, seed, device
// count, mix, and shard_count; every shard 0..N-1 must appear exactly once.
// Merge order is canonicalized by shard index -- and the ledger algebra is
// order-insensitive anyway (see ledger.h).
Result<FleetPartial> MergePartials(std::vector<FleetPartial> partials);

}  // namespace sos::fleet

#endif  // SOS_SRC_FLEET_PARTIAL_H_
