// Copyright (c) 2026 The SOS Authors. MIT License.

#include "src/fleet/fleet.h"

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "src/sos/experiment.h"

namespace sos::fleet {

namespace {

// Devices simulated per driver wave. Large enough to keep every worker of a
// wide pool busy, small enough that peak memory is one wave of outcomes --
// a million-device fleet never holds a million results.
constexpr uint64_t kWaveSize = 4096;

}  // namespace

Status ValidateFleetConfig(const FleetConfig& config) {
  if (config.devices == 0) {
    return Status(StatusCode::kInvalidArgument, "fleet: devices must be > 0");
  }
  if (config.shard_count == 0) {
    return Status(StatusCode::kInvalidArgument, "fleet: shard count must be > 0");
  }
  if (config.shard_index >= config.shard_count) {
    return Status(StatusCode::kInvalidArgument, "fleet: shard index out of range");
  }
  if (config.mix.TotalWeight() <= 0.0) {
    return Status(StatusCode::kInvalidArgument, "fleet: mix has zero total weight");
  }
  return Status::Ok();
}

Result<std::pair<uint64_t, uint64_t>> ParseShardSpec(const std::string& spec) {
  const size_t slash = spec.find('/');
  if (slash == std::string::npos || slash == 0 || slash + 1 >= spec.size()) {
    return Status(StatusCode::kInvalidArgument, "shard spec must be i/N, got '" + spec + "'");
  }
  for (size_t i = 0; i < spec.size(); ++i) {
    if (i == slash) {
      continue;
    }
    if (spec[i] < '0' || spec[i] > '9') {
      return Status(StatusCode::kInvalidArgument, "shard spec must be i/N, got '" + spec + "'");
    }
  }
  const uint64_t index = std::strtoull(spec.substr(0, slash).c_str(), nullptr, 10);
  const uint64_t count = std::strtoull(spec.substr(slash + 1).c_str(), nullptr, 10);
  if (count == 0 || index >= count) {
    return Status(StatusCode::kInvalidArgument,
                  "shard spec needs 0 <= i < N, got '" + spec + "'");
  }
  return std::make_pair(index, count);
}

Result<FleetPartial> RunFleet(const FleetConfig& config) {
  Status status = ValidateFleetConfig(config);
  if (!status.ok()) {
    return status;
  }

  // Strided shard assignment: device i belongs to shard i % N. Like the
  // per-device seeding, this is a pure function of the index, so any N
  // partitions the same population.
  std::vector<uint64_t> indices;
  indices.reserve(config.devices / config.shard_count + 1);
  for (uint64_t i = config.shard_index; i < config.devices; i += config.shard_count) {
    indices.push_back(i);
  }

  FleetPartial partial;
  partial.fleet_seed = config.seed;
  partial.fleet_devices = config.devices;
  partial.mix = MixSpecToString(config.mix);
  partial.shard_index = config.shard_index;
  partial.shard_count = config.shard_count;
  partial.shard_devices = indices.size();

  ExperimentDriver driver(config.jobs);
  for (uint64_t wave_start = 0; wave_start < indices.size(); wave_start += kWaveSize) {
    const uint64_t wave_end = std::min<uint64_t>(wave_start + kWaveSize, indices.size());
    std::vector<DeviceOutcome> outcomes =
        driver.Map(wave_end - wave_start, [&](size_t offset) {
          const uint64_t index = indices[wave_start + offset];
          const DeviceDraw draw = DrawDevice(config.mix, config.seed, index);
          LifetimeSim sim(draw.config);
          return MakeOutcome(draw, sim.Run());
        });
    for (const DeviceOutcome& outcome : outcomes) {
      partial.ledger.Fold(outcome);
    }
  }
  return partial;
}

}  // namespace sos::fleet
