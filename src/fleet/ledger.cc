// Copyright (c) 2026 The SOS Authors. MIT License.

#include "src/fleet/ledger.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/carbon/embodied.h"

namespace sos::fleet {

namespace {

// Distribution bounds. Fixed constants (never data-derived), so every
// partial of every fleet shares bucket shapes and Merge() is total.
std::vector<double> LifetimeBounds() {
  return {0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 5.0, 7.0, 10.0, 15.0, 25.0, 50.0};
}

std::vector<double> CapacityRetainedBounds() {
  return {0.5, 0.6, 0.7, 0.8, 0.85, 0.9, 0.925, 0.95, 0.975, 0.99, 1.0};
}

std::vector<double> AutodeleteBounds() {
  return {0.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0};
}

std::vector<double> PecVarianceBounds() {
  return {1.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 5000.0};
}

// Embodied kg of `gb` decimal GB built as the outcome's scheme. One shared
// model instance: the anchor constant is compile-time fixed, so per-device
// carbon is a pure function of the outcome.
double ActualKg(const DeviceOutcome& outcome) {
  const FlashCarbonModel model;
  if (outcome.kind == DeviceKind::kSos) {
    // SYS is pseudo-QLC, SPARE native PLC (paper §4.1-4.2).
    return outcome.full_size_gb *
           model.KgPerGbSplit(CellTech::kQlc, CellTech::kPlc, outcome.sys_share);
  }
  return outcome.full_size_gb * model.KgPerGb(CellTech::kTlc);
}

double TlcKg(const DeviceOutcome& outcome) {
  const FlashCarbonModel model;
  return outcome.full_size_gb * model.KgPerGb(CellTech::kTlc);
}

}  // namespace

int64_t ToMicro(double value) { return std::llround(value * kMicroScale); }

double FromMicro(int64_t micro) { return static_cast<double>(micro) / kMicroScale; }

// --- FleetHistogram ----------------------------------------------------------

FleetHistogram::FleetHistogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  for (size_t i = 1; i < bounds_.size(); ++i) {
    assert(bounds_[i - 1] < bounds_[i] && "histogram bounds must be strictly ascending");
  }
  buckets_.assign(bounds_.size() + 1, 0);
}

void FleetHistogram::Observe(double v) {
  size_t bucket = bounds_.size();
  for (size_t i = 0; i < bounds_.size(); ++i) {
    if (v <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  ++buckets_[bucket];
  ++count_;
  micro_sum_ += ToMicro(v);
}

Status FleetHistogram::Merge(const FleetHistogram& other) {
  if (bounds_ != other.bounds_) {
    return Status(StatusCode::kInvalidArgument, "fleet histogram merge: bounds differ");
  }
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  micro_sum_ += other.micro_sum_;
  return Status::Ok();
}

obs::Histogram FleetHistogram::ToObs() const {
  return obs::Histogram::FromParts(bounds_, buckets_, count_, FromMicro(micro_sum_));
}

FleetHistogram FleetHistogram::FromParts(std::vector<double> bounds,
                                         std::vector<uint64_t> buckets, uint64_t count,
                                         int64_t micro_sum) {
  FleetHistogram h(std::move(bounds));
  assert(buckets.size() == h.bounds_.size() + 1 && "bucket count must match bounds + overflow");
  h.buckets_ = std::move(buckets);
  h.count_ = count;
  h.micro_sum_ = micro_sum;
  return h;
}

// --- DeviceOutcome -----------------------------------------------------------

DeviceOutcome MakeOutcome(const DeviceDraw& draw, const LifetimeResult& result) {
  DeviceOutcome outcome;
  outcome.archetype = draw.archetype;
  outcome.kind = result.kind();
  outcome.full_size_gb = draw.full_size_gb;
  outcome.sys_share = draw.config.sos.sys_share;
  outcome.projected_lifetime_years = result.projected_lifetime_years();
  outcome.initial_exported_pages = result.initial_exported_pages();
  outcome.final_exported_pages = result.final_exported_pages();
  outcome.pec_variance = result.pec_variance();
  outcome.autodelete_files = result.autodelete().files_deleted;
  outcome.autodelete_bytes = result.autodelete().bytes_freed;
  outcome.create_failures = result.create_failures();
  outcome.host_bytes_written = result.host_bytes_written();
  outcome.daemon_activations = result.daemon_activations();
  outcome.trace_dropped = result.trace_dropped();
  return outcome;
}

// --- CarbonAccumulator -------------------------------------------------------

void CarbonAccumulator::Add(const CarbonAccumulator& other) {
  actual_micro_kg += other.actual_micro_kg;
  tlc_counterfactual_micro_kg += other.tlc_counterfactual_micro_kg;
  capacity_micro_gb += other.capacity_micro_gb;
}

// --- FleetLedger -------------------------------------------------------------

FleetLedger::FleetLedger()
    : lifetime_years_(LifetimeBounds()),
      capacity_retained_(CapacityRetainedBounds()),
      autodelete_files_(AutodeleteBounds()),
      pec_variance_(PecVarianceBounds()) {}

void FleetLedger::Fold(const DeviceOutcome& outcome) {
  ++devices_;
  ++archetype_devices_[static_cast<size_t>(outcome.archetype)];
  if (outcome.kind == DeviceKind::kSos) {
    ++sos_devices_;
  } else {
    ++baseline_devices_;
  }

  // Distribution observations. Lifetime is clamped to 100 years: a device
  // that saw no wear projects "effectively forever", which would swamp the
  // population mean; clamped it still lands in the overflow bucket.
  const double lifetime = std::min(outcome.projected_lifetime_years, 100.0);
  lifetime_years_.Observe(lifetime);
  const double retained =
      outcome.initial_exported_pages > 0
          ? static_cast<double>(outcome.final_exported_pages) /
                static_cast<double>(outcome.initial_exported_pages)
          : 1.0;
  capacity_retained_.Observe(retained);
  autodelete_files_.Observe(static_cast<double>(outcome.autodelete_files));
  pec_variance_.Observe(outcome.pec_variance);

  // Carbon, micro-kg. Rounded once per device, then summed exactly.
  CarbonAccumulator device_carbon;
  device_carbon.actual_micro_kg = ToMicro(ActualKg(outcome));
  device_carbon.tlc_counterfactual_micro_kg = ToMicro(TlcKg(outcome));
  device_carbon.capacity_micro_gb = ToMicro(outcome.full_size_gb);
  carbon_.Add(device_carbon);
  archetype_carbon_[static_cast<size_t>(outcome.archetype)].Add(device_carbon);

  autodelete_files_total_ += outcome.autodelete_files;
  autodelete_bytes_total_ += outcome.autodelete_bytes;
  create_failures_total_ += outcome.create_failures;
  host_bytes_total_ += outcome.host_bytes_written;
  daemon_activations_total_ += outcome.daemon_activations;
  trace_dropped_total_ += outcome.trace_dropped;
}

Status FleetLedger::Merge(const FleetLedger& other) {
  Status status = lifetime_years_.Merge(other.lifetime_years_);
  if (!status.ok()) {
    return status;
  }
  status = capacity_retained_.Merge(other.capacity_retained_);
  if (!status.ok()) {
    return status;
  }
  status = autodelete_files_.Merge(other.autodelete_files_);
  if (!status.ok()) {
    return status;
  }
  status = pec_variance_.Merge(other.pec_variance_);
  if (!status.ok()) {
    return status;
  }
  devices_ += other.devices_;
  for (size_t i = 0; i < kNumArchetypes; ++i) {
    archetype_devices_[i] += other.archetype_devices_[i];
    archetype_carbon_[i].Add(other.archetype_carbon_[i]);
  }
  sos_devices_ += other.sos_devices_;
  baseline_devices_ += other.baseline_devices_;
  carbon_.Add(other.carbon_);
  autodelete_files_total_ += other.autodelete_files_total_;
  autodelete_bytes_total_ += other.autodelete_bytes_total_;
  create_failures_total_ += other.create_failures_total_;
  host_bytes_total_ += other.host_bytes_total_;
  daemon_activations_total_ += other.daemon_activations_total_;
  trace_dropped_total_ += other.trace_dropped_total_;
  return Status::Ok();
}

double FleetLedger::SavingsKg() const {
  return FromMicro(carbon_.tlc_counterfactual_micro_kg - carbon_.actual_micro_kg);
}

void FleetLedger::ToMetrics(obs::MetricRegistry& registry, const std::string& prefix) const {
  registry.SetCounter(prefix + "devices", devices_);
  for (size_t i = 0; i < kNumArchetypes; ++i) {
    registry.SetCounter(
        prefix + "archetype." + ArchetypeName(static_cast<Archetype>(i)) + ".devices",
        archetype_devices_[i]);
  }
  registry.SetCounter(prefix + "devices.sos", sos_devices_);
  registry.SetCounter(prefix + "devices.baseline", baseline_devices_);
  registry.SetHistogram(prefix + "lifetime_years", lifetime_years_.ToObs());
  registry.SetHistogram(prefix + "capacity_retained", capacity_retained_.ToObs());
  registry.SetHistogram(prefix + "autodelete_files", autodelete_files_.ToObs());
  registry.SetHistogram(prefix + "pec_variance", pec_variance_.ToObs());
  registry.SetGauge(prefix + "carbon.actual_kg", FromMicro(carbon_.actual_micro_kg));
  registry.SetGauge(prefix + "carbon.tlc_counterfactual_kg",
                    FromMicro(carbon_.tlc_counterfactual_micro_kg));
  registry.SetGauge(prefix + "carbon.savings_kg", SavingsKg());
  registry.SetGauge(prefix + "carbon.capacity_gb", FromMicro(carbon_.capacity_micro_gb));
  for (size_t i = 0; i < kNumArchetypes; ++i) {
    const std::string arch_prefix =
        prefix + "archetype." + ArchetypeName(static_cast<Archetype>(i)) + ".carbon.";
    const CarbonAccumulator& acc = archetype_carbon_[i];
    registry.SetGauge(arch_prefix + "actual_kg", FromMicro(acc.actual_micro_kg));
    registry.SetGauge(arch_prefix + "savings_kg",
                      FromMicro(acc.tlc_counterfactual_micro_kg - acc.actual_micro_kg));
  }
  registry.SetCounter(prefix + "autodelete.files", autodelete_files_total_);
  registry.SetCounter(prefix + "autodelete.bytes", autodelete_bytes_total_);
  registry.SetCounter(prefix + "create_failures", create_failures_total_);
  registry.SetCounter(prefix + "host_bytes_written", host_bytes_total_);
  registry.SetCounter(prefix + "daemon_activations", daemon_activations_total_);
  registry.SetCounter(prefix + "trace.dropped_events", trace_dropped_total_);
}

}  // namespace sos::fleet
