// Copyright (c) 2026 The SOS Authors. MIT License.

#include "src/fleet/report.h"

#include <cinttypes>
#include <cstdio>

#include "src/carbon/embodied.h"
#include "src/common/table.h"
#include "src/obs/metrics.h"

namespace sos::fleet {

namespace {

// Worldwide smartphone-scale population the per-device savings are
// extrapolated to for the paper's framing (§3: "millions of users" -- there
// are roughly 1.5e9 active smartphones).
constexpr double kWorldDevices = 1.5e9;

std::string BoundLabel(const std::vector<double>& bounds, size_t bucket, int precision) {
  if (bucket >= bounds.size()) {
    return "inf";
  }
  return FormatDouble(bounds[bucket], precision);
}

// Smallest bucket whose cumulative count reaches `quantile` of the total;
// integer arithmetic, so the label is exact for any merge grouping.
std::string QuantileLabel(const FleetHistogram& h, double quantile, int precision) {
  if (h.count() == 0) {
    return "-";
  }
  const auto target =
      static_cast<uint64_t>(quantile * static_cast<double>(h.count()) + 0.5);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < h.buckets().size(); ++i) {
    cumulative += h.buckets()[i];
    if (cumulative >= target) {
      return BoundLabel(h.bounds(), i, precision);
    }
  }
  return "inf";
}

std::string MeanLabel(const FleetHistogram& h, int precision) {
  if (h.count() == 0) {
    return "-";
  }
  return FormatDouble(FromMicro(h.micro_sum()) / static_cast<double>(h.count()), precision);
}

void AddDistributionRow(TextTable& table, const char* name, const FleetHistogram& h,
                        int precision) {
  table.AddRow({name, FormatCount(h.count()), MeanLabel(h, precision),
                "<= " + QuantileLabel(h, 0.5, precision), "<= " + QuantileLabel(h, 0.9, precision),
                "<= " + QuantileLabel(h, 0.99, precision)});
}

}  // namespace

std::string FleetReport(const FleetPartial& partial) {
  const FleetLedger& ledger = partial.ledger;
  std::string out;
  char line[256];

  std::snprintf(line, sizeof(line),
                "Fleet: %" PRIu64 " devices (seed %" PRIu64 ", mix %s)\n",
                ledger.devices(), partial.fleet_seed, partial.mix.c_str());
  out += line;

  out += "\n--- Population ---\n";
  TextTable population({"archetype", "devices", "share", "capacity (GB)", "embodied (kgCO2e)",
                        "savings vs TLC (kgCO2e)"});
  for (size_t i = 0; i < kNumArchetypes; ++i) {
    const CarbonAccumulator& acc = ledger.archetype_carbon()[i];
    const double share =
        ledger.devices() > 0 ? static_cast<double>(ledger.archetype_devices()[i]) /
                                   static_cast<double>(ledger.devices())
                             : 0.0;
    population.AddRow({ArchetypeName(static_cast<Archetype>(i)),
                       FormatCount(ledger.archetype_devices()[i]), FormatPercent(share),
                       FormatDouble(FromMicro(acc.capacity_micro_gb), 0),
                       FormatDouble(FromMicro(acc.actual_micro_kg), 2),
                       FormatDouble(FromMicro(acc.tlc_counterfactual_micro_kg - acc.actual_micro_kg),
                                    2)});
  }
  population.AddRow({"total", FormatCount(ledger.devices()), FormatPercent(1.0),
                     FormatDouble(FromMicro(ledger.carbon().capacity_micro_gb), 0),
                     FormatDouble(FromMicro(ledger.carbon().actual_micro_kg), 2),
                     FormatDouble(ledger.SavingsKg(), 2)});
  out += population.Render();

  std::snprintf(line, sizeof(line), "\nSOS devices: %" PRIu64 "  baseline (TLC): %" PRIu64 "\n",
                ledger.sos_devices(), ledger.baseline_devices());
  out += line;

  out += "\n--- Outcome distributions ---\n";
  TextTable distributions({"distribution", "n", "mean", "p50", "p90", "p99"});
  AddDistributionRow(distributions, "projected lifetime (yrs)", ledger.lifetime_years(), 2);
  AddDistributionRow(distributions, "capacity retained (frac)", ledger.capacity_retained(), 3);
  AddDistributionRow(distributions, "auto-deleted files", ledger.autodelete_files(), 0);
  AddDistributionRow(distributions, "PEC variance", ledger.pec_variance(), 0);
  out += distributions.Render();

  out += "\n--- Carbon ledger ---\n";
  const double savings_kg = ledger.SavingsKg();
  const double per_device_kg =
      ledger.devices() > 0 ? savings_kg / static_cast<double>(ledger.devices()) : 0.0;
  // kg -> megatonnes: 1 Mt = 1e9 kg.
  const double world_mt = per_device_kg * kWorldDevices / 1e9;
  std::snprintf(line, sizeof(line), "embodied, as configured : %s kgCO2e\n",
                FormatDouble(FromMicro(ledger.carbon().actual_micro_kg), 2).c_str());
  out += line;
  std::snprintf(line, sizeof(line), "embodied, all-TLC       : %s kgCO2e\n",
                FormatDouble(FromMicro(ledger.carbon().tlc_counterfactual_micro_kg), 2).c_str());
  out += line;
  std::snprintf(line, sizeof(line), "fleet savings           : %s kgCO2e (%s/device)\n",
                FormatDouble(savings_kg, 2).c_str(), FormatDouble(per_device_kg, 3).c_str());
  out += line;
  std::snprintf(line, sizeof(line),
                "at smartphone scale     : %s MtCO2e/generation (~%s people-years)\n",
                FormatDouble(world_mt, 2).c_str(),
                FormatCount(static_cast<uint64_t>(PeopleEquivalent(world_mt))).c_str());
  out += line;

  out += "\n--- Daemon activity ---\n";
  std::snprintf(line, sizeof(line),
                "auto-delete: %s files (%s) across the fleet, %s create failures\n",
                FormatCount(ledger.autodelete_files_total()).c_str(),
                FormatBytes(ledger.autodelete_bytes_total()).c_str(),
                FormatCount(ledger.create_failures_total()).c_str());
  out += line;
  std::snprintf(line, sizeof(line),
                "host writes: %s; daemon activations: %s; trace events dropped: %s\n",
                FormatBytes(ledger.host_bytes_total()).c_str(),
                FormatCount(ledger.daemon_activations_total()).c_str(),
                FormatCount(ledger.trace_dropped_total()).c_str());
  out += line;
  return out;
}

std::string FleetMetricsJson(const FleetPartial& partial) {
  obs::MetricRegistry registry;
  registry.SetCounter("fleet.config.seed", partial.fleet_seed);
  registry.SetCounter("fleet.config.devices", partial.fleet_devices);
  partial.ledger.ToMetrics(registry, "fleet.");
  return registry.ToJson();
}

}  // namespace sos::fleet
