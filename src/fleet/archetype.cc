// Copyright (c) 2026 The SOS Authors. MIT License.

#include "src/fleet/archetype.h"

#include <cstdio>
#include <cstdlib>

#include "src/common/rng.h"
#include "src/common/units.h"

namespace sos::fleet {

namespace {

// Per-archetype sampling ranges. Rates are the MobileWorkloadConfig means;
// [lo, hi] pairs are sampled uniformly per device. Geometry is deliberately
// tiny -- the fleet trades per-device fidelity for population size, and wear
// *ratios* stay meaningful at any scale (see lifetime_sim.h's file comment).
struct ArchetypeParams {
  // Workload activity ranges (events per day / per week).
  double photos_lo, photos_hi;
  double videos_week_lo, videos_week_hi;
  double cache_lo, cache_hi;
  double app_updates_lo, app_updates_hi;
  double installs_week_lo, installs_week_hi;
  double deletes_lo, deletes_hi;
  double intensity_lo, intensity_hi;
  // Die geometry (blocks of 32 wordlines).
  uint32_t blocks_lo, blocks_hi;
  // Devices enter the fleet mid-life: initial PEC range.
  uint32_t initial_pec_lo, initial_pec_hi;
  // Simulated service window (days) covered by one lifetime run.
  uint32_t days_lo, days_hi;
  // Probability the device runs the SOS scheme (vs the TLC baseline).
  double sos_fraction;
  // Full-size capacities (decimal GB) this profile ships with.
  std::array<double, 3> full_size_gb;
};

const ArchetypeParams& ParamsFor(Archetype archetype) {
  static const ArchetypeParams kLightParams = {
      /*photos=*/0.5, 2.0, /*videos_week=*/0.5, 2.0, /*cache=*/3.0, 8.0,
      /*app_updates=*/6.0, 16.0, /*installs_week=*/0.3, 1.0, /*deletes=*/2.0, 5.0,
      /*intensity=*/0.6, 1.0, /*blocks=*/24, 32, /*initial_pec=*/0, 60,
      /*days=*/45, 90, /*sos_fraction=*/0.5, /*full_size_gb=*/{64.0, 128.0, 128.0}};
  static const ArchetypeParams kHoarderParams = {
      /*photos=*/3.0, 8.0, /*videos_week=*/2.0, 6.0, /*cache=*/5.0, 14.0,
      /*app_updates=*/8.0, 20.0, /*installs_week=*/0.5, 2.0, /*deletes=*/2.0, 5.0,
      /*intensity=*/0.8, 1.2, /*blocks=*/40, 56, /*initial_pec=*/20, 120,
      /*days=*/45, 90, /*sos_fraction=*/0.5, /*full_size_gb=*/{128.0, 256.0, 512.0}};
  static const ArchetypeParams kChurnerParams = {
      /*photos=*/0.5, 2.0, /*videos_week=*/0.5, 2.0, /*cache=*/12.0, 28.0,
      /*app_updates=*/24.0, 56.0, /*installs_week=*/1.5, 4.0, /*deletes=*/5.0, 12.0,
      /*intensity=*/0.9, 1.4, /*blocks=*/32, 44, /*initial_pec=*/40, 200,
      /*days=*/45, 90, /*sos_fraction=*/0.5, /*full_size_gb=*/{128.0, 128.0, 256.0}};
  switch (archetype) {
    case Archetype::kLight:
      return kLightParams;
    case Archetype::kMediaHoarder:
      return kHoarderParams;
    case Archetype::kAppChurner:
      return kChurnerParams;
  }
  return kLightParams;  // unreachable
}

double SampleRange(Rng& rng, double lo, double hi) { return lo + (hi - lo) * rng.NextDouble(); }

uint32_t SampleRangeU32(Rng& rng, uint32_t lo, uint32_t hi) {
  return static_cast<uint32_t>(rng.NextInt(lo, hi));
}

}  // namespace

const char* ArchetypeName(Archetype archetype) {
  switch (archetype) {
    case Archetype::kLight:
      return "light";
    case Archetype::kMediaHoarder:
      return "media_hoarder";
    case Archetype::kAppChurner:
      return "app_churner";
  }
  return "unknown";
}

Result<Archetype> ParseArchetype(const std::string& name) {
  for (size_t i = 0; i < kNumArchetypes; ++i) {
    const auto archetype = static_cast<Archetype>(i);
    if (name == ArchetypeName(archetype)) {
      return archetype;
    }
  }
  return Status(StatusCode::kInvalidArgument, "unknown archetype: " + name);
}

double MixSpec::TotalWeight() const {
  double total = 0.0;
  for (double w : weights) {
    total += w;
  }
  return total;
}

Result<MixSpec> ParseMixSpec(const std::string& spec) {
  MixSpec mix;
  mix.weights.fill(0.0);
  std::array<bool, kNumArchetypes> seen = {};
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) {
      comma = spec.size();
    }
    const std::string entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    const size_t colon = entry.find(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 >= entry.size()) {
      return Status(StatusCode::kInvalidArgument,
                    "mix entry must be name:weight, got '" + entry + "'");
    }
    Result<Archetype> archetype = ParseArchetype(entry.substr(0, colon));
    if (!archetype.ok()) {
      return archetype.status();
    }
    const std::string weight_text = entry.substr(colon + 1);
    char* end = nullptr;
    const double weight = std::strtod(weight_text.c_str(), &end);
    if (end == weight_text.c_str() || *end != '\0' || weight < 0.0) {
      return Status(StatusCode::kInvalidArgument,
                    "mix weight must be a non-negative number, got '" + weight_text + "'");
    }
    const auto at = static_cast<size_t>(archetype.value());
    if (seen[at]) {
      return Status(StatusCode::kInvalidArgument,
                    std::string("duplicate mix entry: ") + ArchetypeName(archetype.value()));
    }
    seen[at] = true;
    mix.weights[at] = weight;
  }
  if (mix.TotalWeight() <= 0.0) {
    return Status(StatusCode::kInvalidArgument, "mix has zero total weight: '" + spec + "'");
  }
  return mix;
}

std::string MixSpecToString(const MixSpec& mix) {
  std::string out;
  for (size_t i = 0; i < kNumArchetypes; ++i) {
    if (!out.empty()) {
      out += ",";
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s:%.17g", ArchetypeName(static_cast<Archetype>(i)),
                  mix.weights[i]);
    out += buf;
  }
  return out;
}

DeviceDraw DrawDevice(const MixSpec& mix, uint64_t fleet_seed, uint64_t index) {
  // Everything about device `index` flows from this one seed; the 'flt'
  // domain key keeps the stream disjoint from every other DeriveSeed user.
  Rng rng(DeriveSeed({fleet_seed, 0x666c74ull /* "flt" */, index}));

  // Archetype by cumulative weight.
  DeviceDraw draw;
  draw.index = index;
  const double pick = rng.NextDouble() * mix.TotalWeight();
  double cumulative = 0.0;
  draw.archetype = static_cast<Archetype>(kNumArchetypes - 1);
  for (size_t i = 0; i < kNumArchetypes; ++i) {
    cumulative += mix.weights[i];
    if (pick < cumulative) {
      draw.archetype = static_cast<Archetype>(i);
      break;
    }
  }
  const ArchetypeParams& p = ParamsFor(draw.archetype);

  LifetimeSimConfig& config = draw.config;
  config.kind = rng.NextBool(p.sos_fraction) ? DeviceKind::kSos : DeviceKind::kTlcBaseline;
  config.seed = DeriveSeed({fleet_seed, 0x646576ull /* "dev" */, index});
  config.days = SampleRangeU32(rng, p.days_lo, p.days_hi);

  // Tiny per-device geometry: the fleet's statistics come from population
  // size, not per-device die size. 32-wordline blocks keep GC meaningful.
  config.nand.num_blocks = SampleRangeU32(rng, p.blocks_lo, p.blocks_hi);
  config.nand.wordlines_per_block = 32;
  config.nand.page_size_bytes = 4 * kKiB;
  config.nand.store_payloads = false;
  config.nand.initial_pec = SampleRangeU32(rng, p.initial_pec_lo, p.initial_pec_hi);
  // Throughput knobs DESIGN.md §11 reserves for fleet-scale sweeps.
  config.nand.rber_memo = true;
  config.sos.batched_relocation = true;

  config.workload.photos_per_day = SampleRange(rng, p.photos_lo, p.photos_hi);
  config.workload.videos_per_week = SampleRange(rng, p.videos_week_lo, p.videos_week_hi);
  config.workload.cache_files_per_day = SampleRange(rng, p.cache_lo, p.cache_hi);
  config.workload.app_updates_per_day = SampleRange(rng, p.app_updates_lo, p.app_updates_hi);
  config.workload.app_installs_per_week = SampleRange(rng, p.installs_week_lo, p.installs_week_hi);
  config.workload.deletes_per_day = SampleRange(rng, p.deletes_lo, p.deletes_hi);
  config.workload.intensity = SampleRange(rng, p.intensity_lo, p.intensity_hi);
  config.workload.reads_per_day = 25.0;
  config.workload.audio_per_week = 1.0;
  config.workload.documents_per_week = 0.5;
  config.workload.downloads_per_week = 1.0;
  config.file_size_cap = 32 * kKiB;

  // Per-device telemetry off: a million devices keep scalar outcomes only.
  config.trace_capacity = 0;
  config.capture_device_metrics = false;
  config.sample_period_days = 0;
  config.training_files = 192;

  draw.full_size_gb = p.full_size_gb[rng.NextBounded(p.full_size_gb.size())];
  return draw;
}

}  // namespace sos::fleet
