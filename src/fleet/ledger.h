// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Fleet ledger: the mergeable aggregate of a device population
// (DESIGN.md §13).
//
// The determinism contract -- byte-identical aggregate output for any
// --jobs value and any shard split -- forbids floating-point accumulation:
// double addition is commutative but NOT associative, so two shard
// groupings of the same devices could disagree in the last ulp. Every
// mergeable quantity in this ledger is therefore an integer: plain counts,
// or fixed-point micro-units (value x 1e6, rounded ONCE per device at
// observation time). Integer addition is an abelian monoid, so Merge() is
// exactly associative and commutative and any fold order -- serial,
// threaded, 2-shard, 8-shard -- lands on the same bits. Doubles are
// materialized only at render time, from integers that are already exact.

#ifndef SOS_SRC_FLEET_LEDGER_H_
#define SOS_SRC_FLEET_LEDGER_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/fleet/archetype.h"
#include "src/obs/metrics.h"
#include "src/sos/lifetime_sim.h"

namespace sos::fleet {

// Fixed-point scale for ledger quantities: 1 unit = 1e-6 of the carried
// value (micro-years, micro-kg, ...).
inline constexpr double kMicroScale = 1e6;

// Rounds a per-device observation into ledger fixed point. The ONLY place a
// double becomes a ledger integer; everything after is exact arithmetic.
int64_t ToMicro(double value);

// Renders a fixed-point quantity back to double for reports. Exact in the
// sense that every shard grouping renders the same bits (the int is).
double FromMicro(int64_t micro);

// Fixed-bucket histogram with a fixed-point sum. Same bucketing rule as
// obs::Histogram (ascending inclusive upper bounds + overflow bucket), but
// the sum is carried in micro-units so merge stays exact.
class FleetHistogram {
 public:
  FleetHistogram() = default;
  explicit FleetHistogram(std::vector<double> upper_bounds);

  void Observe(double v);

  // Elementwise add; kInvalidArgument if bucket bounds differ.
  [[nodiscard]] Status Merge(const FleetHistogram& other);

  const std::vector<double>& bounds() const { return bounds_; }
  const std::vector<uint64_t>& buckets() const { return buckets_; }
  uint64_t count() const { return count_; }
  int64_t micro_sum() const { return micro_sum_; }

  // Materializes the obs-layer histogram (sum = FromMicro(micro_sum)) for
  // registry export.
  obs::Histogram ToObs() const;

  // Rebuilds from serialized parts (the partial-file reader).
  static FleetHistogram FromParts(std::vector<double> bounds, std::vector<uint64_t> buckets,
                                  uint64_t count, int64_t micro_sum);

 private:
  std::vector<double> bounds_;
  std::vector<uint64_t> buckets_;  // bounds_.size() + 1, last = overflow
  uint64_t count_ = 0;
  int64_t micro_sum_ = 0;
};

// The per-device scalars the ledger folds. A plain value so tests can
// synthesize outcomes without running simulations; MakeOutcome() extracts
// one from a real LifetimeResult.
struct DeviceOutcome {
  Archetype archetype = Archetype::kLight;
  DeviceKind kind = DeviceKind::kSos;
  double full_size_gb = 128.0;
  double sys_share = 0.5;  // SOS split fraction (carbon arithmetic)

  double projected_lifetime_years = 0.0;
  uint64_t initial_exported_pages = 0;
  uint64_t final_exported_pages = 0;
  double pec_variance = 0.0;
  uint64_t autodelete_files = 0;
  uint64_t autodelete_bytes = 0;
  uint64_t create_failures = 0;
  uint64_t host_bytes_written = 0;
  uint64_t daemon_activations = 0;
  uint64_t trace_dropped = 0;
};

DeviceOutcome MakeOutcome(const DeviceDraw& draw, const LifetimeResult& result);

// Embodied-carbon accumulator, micro-kg fixed point. `actual` is the carbon
// of the fleet as configured (SOS split or TLC); `tlc_counterfactual` prices
// the same usable capacity built as TLC -- the paper's baseline. Savings is
// their difference, computed at render time from exact integers.
struct CarbonAccumulator {
  int64_t actual_micro_kg = 0;
  int64_t tlc_counterfactual_micro_kg = 0;
  int64_t capacity_micro_gb = 0;

  // Infallible elementwise add (unlike the histogram Merge, there is no
  // shape to validate).
  void Add(const CarbonAccumulator& other);
};

// The fleet-level aggregate: population counts, outcome distributions, and
// the carbon ledger. Fold() ingests one device; Merge() combines ledgers
// from any partition of the population (see file comment for why the result
// is bit-exact either way).
class FleetLedger {
 public:
  FleetLedger();

  void Fold(const DeviceOutcome& outcome);

  // kInvalidArgument if histogram shapes differ (ledgers from different
  // schema versions).
  [[nodiscard]] Status Merge(const FleetLedger& other);

  uint64_t devices() const { return devices_; }
  const std::array<uint64_t, kNumArchetypes>& archetype_devices() const {
    return archetype_devices_;
  }
  uint64_t sos_devices() const { return sos_devices_; }
  uint64_t baseline_devices() const { return baseline_devices_; }
  const FleetHistogram& lifetime_years() const { return lifetime_years_; }
  const FleetHistogram& capacity_retained() const { return capacity_retained_; }
  const FleetHistogram& autodelete_files() const { return autodelete_files_; }
  const FleetHistogram& pec_variance() const { return pec_variance_; }
  const CarbonAccumulator& carbon() const { return carbon_; }
  const std::array<CarbonAccumulator, kNumArchetypes>& archetype_carbon() const {
    return archetype_carbon_;
  }
  uint64_t autodelete_files_total() const { return autodelete_files_total_; }
  uint64_t autodelete_bytes_total() const { return autodelete_bytes_total_; }
  uint64_t create_failures_total() const { return create_failures_total_; }
  uint64_t host_bytes_total() const { return host_bytes_total_; }
  uint64_t daemon_activations_total() const { return daemon_activations_total_; }
  uint64_t trace_dropped_total() const { return trace_dropped_total_; }
  int64_t lifetime_micro_years_total() const { return lifetime_years_.micro_sum(); }

  // Carbon savings (kg) of the fleet vs the all-TLC counterfactual.
  double SavingsKg() const;

  // Registers the ledger under `prefix` ("fleet." by convention).
  // Registration order is fixed here, so the export is byte-stable for any
  // fold/merge grouping of the same population.
  void ToMetrics(obs::MetricRegistry& registry, const std::string& prefix = "fleet.") const;

  // Serialization hooks for the partial-file codec (src/fleet/partial.h).
  friend struct LedgerCodec;

 private:
  uint64_t devices_ = 0;
  std::array<uint64_t, kNumArchetypes> archetype_devices_ = {};
  uint64_t sos_devices_ = 0;
  uint64_t baseline_devices_ = 0;
  FleetHistogram lifetime_years_;
  FleetHistogram capacity_retained_;  // final/initial exported pages
  FleetHistogram autodelete_files_;   // auto-deleted files per device
  FleetHistogram pec_variance_;       // wear spread within each device
  CarbonAccumulator carbon_;
  std::array<CarbonAccumulator, kNumArchetypes> archetype_carbon_ = {};
  uint64_t autodelete_files_total_ = 0;
  uint64_t autodelete_bytes_total_ = 0;
  uint64_t create_failures_total_ = 0;
  uint64_t host_bytes_total_ = 0;
  uint64_t daemon_activations_total_ = 0;
  uint64_t trace_dropped_total_ = 0;
};

}  // namespace sos::fleet

#endif  // SOS_SRC_FLEET_LEDGER_H_
