// Copyright (c) 2026 The SOS Authors. MIT License.

#include "src/ftl/ftl.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <utility>

#include "src/common/rng.h"
#include "src/flash/error_model.h"
#include "src/obs/scoped_latency.h"

namespace sos {

void FtlStats::Accumulate(const FtlStats& other) {
  host_writes_ += other.host_writes_;
  nand_writes_ += other.nand_writes_;
  parity_writes_ += other.parity_writes_;
  gc_relocations_ += other.gc_relocations_;
  wl_relocations_ += other.wl_relocations_;
  migrations_ += other.migrations_;
  refreshes_ += other.refreshes_;
  gc_erases_ += other.gc_erases_;
  background_collections_ += other.background_collections_;
  retired_blocks_ += other.retired_blocks_;
  resuscitated_blocks_ += other.resuscitated_blocks_;
  ecc_failures_ += other.ecc_failures_;
  retry_recoveries_ += other.retry_recoveries_;
  parity_rescues_ += other.parity_rescues_;
  degraded_reads_ += other.degraded_reads_;
  grown_bad_blocks_ += other.grown_bad_blocks_;
  lost_pages_ += other.lost_pages_;
}

void FtlStats::ToMetrics(obs::MetricRegistry& registry, const std::string& prefix) const {
  registry.SetCounter(prefix + "host_writes", host_writes_);
  registry.SetCounter(prefix + "nand_writes", nand_writes_);
  registry.SetCounter(prefix + "parity_writes", parity_writes_);
  registry.SetCounter(prefix + "gc_relocations", gc_relocations_);
  registry.SetCounter(prefix + "wl_relocations", wl_relocations_);
  registry.SetCounter(prefix + "migrations", migrations_);
  registry.SetCounter(prefix + "refreshes", refreshes_);
  registry.SetCounter(prefix + "gc_erases", gc_erases_);
  registry.SetCounter(prefix + "background_collections", background_collections_);
  registry.SetCounter(prefix + "retired_blocks", retired_blocks_);
  registry.SetCounter(prefix + "resuscitated_blocks", resuscitated_blocks_);
  registry.SetCounter(prefix + "ecc_failures", ecc_failures_);
  registry.SetCounter(prefix + "retry_recoveries", retry_recoveries_);
  registry.SetCounter(prefix + "parity_rescues", parity_rescues_);
  registry.SetCounter(prefix + "degraded_reads", degraded_reads_);
  registry.SetCounter(prefix + "grown_bad_blocks", grown_bad_blocks_);
  registry.SetCounter(prefix + "lost_pages", lost_pages_);
  registry.SetGauge(prefix + "write_amplification", WriteAmplification());
}

const char* PlacementPolicyName(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kLegacy:
      return "legacy";
    case PlacementPolicy::kStatic:
      return "static";
    case PlacementPolicy::kLifetime:
      return "lifetime";
  }
  return "?";
}

Ftl::Ftl(const FtlConfig& config, SimClock* clock)
    : config_(config), clock_(clock), nand_(config.nand, clock) {
  assert(!config_.pools.empty());
  double share_sum = 0.0;
  for (const auto& pc : config_.pools) {
    share_sum += pc.share;
  }
  assert(share_sum > 0.0);

  // Flat per-block metadata, sized once from device geometry. The reverse
  // map uses a fixed per-block stride of the die's *native* page count --
  // an upper bound for every pool mode, so rows never move when a block
  // changes mode on resuscitation.
  const uint32_t total_blocks = config_.nand.num_blocks;
  page_stride_ = config_.nand.PagesPerBlock(config_.nand.tech);
  p2l_.assign(static_cast<size_t>(total_blocks) * page_stride_, kLbaInvalid);
  page_stream_.assign(static_cast<size_t>(total_blocks) * page_stride_, 0);
  block_owner_.assign(total_blocks, kNoPool);
  block_valid_.assign(total_blocks, 0);
  block_last_write_.assign(total_blocks, 0);
  block_sealed_.assign(total_blocks, 0);

  // Partition the physical blocks across pools by share.
  uint32_t next_block = 0;
  for (size_t p = 0; p < config_.pools.size(); ++p) {
    Pool pool;
    pool.config = config_.pools[p];
    assert(pool.config.parity_stripe != 1 && "stripe of 1 would be all parity");
    const uint32_t pages = config_.nand.PagesPerBlock(pool.config.mode);
    const uint32_t parity_slots =
        pool.config.parity_stripe > 0 ? pages / pool.config.parity_stripe : 0;
    pool.data_slots_per_block = pages - parity_slots;
    pool.retire_rber = pool.config.retire_rber > 0.0
                           ? pool.config.retire_rber
                           : pool.config.ecc.MaxCorrectableRber(config_.nand.page_size_bytes);
    assert(pool.retire_rber > 0.0 &&
           "ECC-less pools must set an explicit retire_rber bound");
    pool.active_host.stripe_xor.assign(config_.nand.page_size_bytes, 0);
    pool.active_cold.stripe_xor.assign(config_.nand.page_size_bytes, 0);

    uint32_t count = static_cast<uint32_t>(static_cast<double>(total_blocks) *
                                           pool.config.share / share_sum);
    if (p + 1 == config_.pools.size()) {
      count = total_blocks - next_block;  // last pool absorbs rounding
    }
    for (uint32_t i = 0; i < count && next_block < total_blocks; ++i, ++next_block) {
      Status s = nand_.SetBlockMode(next_block, pool.config.mode);
      assert(s.ok());
      (void)s;
      // Durable owner label: recovery reassigns the block to this pool.
      Status label = nand_.SetBlockLabel(next_block, static_cast<uint32_t>(p));
      assert(label.ok());
      (void)label;
      block_owner_[next_block] = static_cast<uint32_t>(p);
      ++pool.num_blocks;
      pool.free_blocks.push_back(next_block);
    }
    pools_.push_back(std::move(pool));
  }

  // Resolve resuscitation targets by name.
  for (auto& pool : pools_) {
    if (pool.config.resuscitate_into.has_value()) {
      pool.resuscitate_pool = PoolIdByName(*pool.config.resuscitate_into);
    }
  }
  last_exported_pages_ = ExportedPages();
  // Pre-size the forward map to the exported capacity: the steady-state host
  // write path then never reallocates.
  l2p_.Reserve(last_exported_pages_);
}

uint32_t Ftl::PoolIdByName(const std::string& name) const {
  for (size_t p = 0; p < pools_.size(); ++p) {
    if (pools_[p].config.name == name) {
      return static_cast<uint32_t>(p);
    }
  }
  assert(false && "unknown pool name");
  return 0;
}

bool Ftl::IsParitySlot(const Pool& pool, uint32_t page) const {
  return pool.config.parity_stripe > 0 && (page + 1) % pool.config.parity_stripe == 0;
}

uint32_t Ftl::PagesPerBlock(const Pool& pool) const {
  return config_.nand.PagesPerBlock(pool.config.mode);
}

void Ftl::ResetBlockRow(uint32_t block) {
  uint64_t* row = P2lRow(block);
  std::fill(row, row + page_stride_, kLbaInvalid);
  uint8_t* streams = &page_stream_[static_cast<size_t>(block) * page_stride_];
  std::fill(streams, streams + page_stride_, uint8_t{0});
  block_valid_[block] = 0;
  block_sealed_[block] = 0;
}

std::optional<uint32_t> Ftl::AllocateBlock(Pool& pool, LifetimeHint lifetime) {
  if (pool.free_blocks.empty()) {
    return std::nullopt;
  }
  size_t pick = 0;
  const bool lifetime_aware =
      config_.placement_policy == PlacementPolicy::kLifetime &&
      (lifetime == LifetimeHint::kShort || lifetime == LifetimeHint::kLong);
  if (lifetime_aware) {
    // Lifetime-aware allocation ("Exploiting Data Longevity", PAPERS.md):
    // short-lived data soaks up the most-worn free block (its imminent
    // invalidation wastes none of a young block's endurance); long-lived
    // data gets the youngest. Strict comparisons keep the first (lowest
    // free-list position) candidate on ties, so the pick is deterministic.
    if (lifetime == LifetimeHint::kShort) {
      uint32_t best_pec = 0;
      for (size_t i = 0; i < pool.free_blocks.size(); ++i) {
        const uint32_t pec = nand_.block_info(pool.free_blocks[i]).pec;
        if (i == 0 || pec > best_pec) {
          best_pec = pec;
          pick = i;
        }
      }
    } else {
      uint32_t best_pec = std::numeric_limits<uint32_t>::max();
      for (size_t i = 0; i < pool.free_blocks.size(); ++i) {
        const uint32_t pec = nand_.block_info(pool.free_blocks[i]).pec;
        if (pec < best_pec) {
          best_pec = pec;
          pick = i;
        }
      }
    }
  } else if (pool.config.wear_leveling) {
    // Dynamic wear leveling: lowest-PEC free block first.
    uint32_t best_pec = std::numeric_limits<uint32_t>::max();
    for (size_t i = 0; i < pool.free_blocks.size(); ++i) {
      const uint32_t pec = nand_.block_info(pool.free_blocks[i]).pec;
      if (pec < best_pec) {
        best_pec = pec;
        pick = i;
      }
    }
  }
  const uint32_t id = pool.free_blocks[pick];
  pool.free_blocks.erase(pool.free_blocks.begin() + static_cast<ptrdiff_t>(pick));
  return id;
}

Ftl::ActiveSlot& Ftl::SlotFor(Pool& pool, bool cold, uint32_t stream) {
  // Relocated data always takes the legacy slots: a per-stream slot for GC
  // traffic would let a nested relocation grow `active_streams` while an
  // outer AppendPage holds a reference into it. Stream slots are for fresh
  // host writes only.
  if (cold || stream == 0 || config_.placement_policy == PlacementPolicy::kLegacy) {
    return cold && pool.config.hot_cold_separation ? pool.active_cold : pool.active_host;
  }
  for (auto& [tag, slot] : pool.active_streams) {
    if (tag == stream) {
      return slot;
    }
  }
  // First write under this tag: open a dedicated append point (FDP-style
  // reclaim unit). Append order is first-write order -- deterministic.
  pool.active_streams.emplace_back(stream, ActiveSlot{});
  ActiveSlot& slot = pool.active_streams.back().second;
  slot.stripe_xor.assign(config_.nand.page_size_bytes, 0);
  return slot;
}

bool Ftl::EnsureWritable(uint32_t pool_id, ActiveSlot& slot, bool allow_gc,
                         LifetimeHint lifetime) {
  Pool& pool = pools_[pool_id];
  if (pool.num_blocks < pool.config.min_live_blocks) {
    return false;  // pool has worn down to a husk
  }
  // True while the slot's active block has a free page; clears a spent one.
  auto active_usable = [&]() -> bool {
    if (!slot.block.has_value()) {
      return false;
    }
    const uint32_t id = *slot.block;
    if (block_sealed_[id] == 0 && nand_.block_info(id).next_page < PagesPerBlock(pool)) {
      return true;
    }
    slot.block.reset();
    return false;
  };
  if (active_usable()) {
    return true;
  }
  // Keep a GC slack of free blocks. Loop: under heavy churn each collection
  // may reclaim only a few net pages, so a single pass cannot keep up with
  // demand. Stop when the threshold is restored or no victim remains.
  if (allow_gc && !in_relocation_) {
    int guard = 0;
    while (pool.free_blocks.size() <= pool.config.gc_threshold_blocks &&
           guard++ < static_cast<int>(config_.nand.num_blocks)) {
      if (!CollectGarbage(pool_id)) {
        break;
      }
    }
    // GC may have installed (and partially filled) a block into this slot --
    // keep appending to it rather than leaking it half-programmed.
    if (active_usable()) {
      return true;
    }
  }
  // Host writes must not raid the GC reserve; relocation writes may.
  if (!in_relocation_ && pool.free_blocks.size() <= kGcReserveBlocks) {
    return false;
  }
  std::optional<uint32_t> block = AllocateBlock(pool, lifetime);
  if (!block.has_value()) {
    return false;
  }
  slot.block = *block;
  ResetBlockRow(*block);
  // A fresh stripe starts with a fresh block.
  std::fill(slot.stripe_xor.begin(), slot.stripe_xor.end(), 0);
  slot.stripe_fill = 0;
  return true;
}

Status Ftl::WriteParityPage(uint32_t pool_id, ActiveSlot& slot) {
  Pool& pool = pools_[pool_id];
  assert(slot.block.has_value());
  const uint32_t bid = *slot.block;
  const uint32_t page = nand_.block_info(bid).next_page;
  assert(IsParitySlot(pool, page));
  std::span<const uint8_t> payload;
  if (config_.nand.store_payloads) {
    payload = slot.stripe_xor;
  }
  PageOob oob;
  oob.lba = kLbaParity;
  oob.seq = write_seq_;
  oob.pool = pool_id;
  oob.flags = kOobFlagParity;
  if (Status s = nand_.Program({bid, page}, payload, &oob); !s.ok()) {
    return s;
  }
  ++write_seq_;
  P2lRow(bid)[page] = kLbaParity;
  block_last_write_[bid] = clock_->now();
  ++pool.stats.parity_writes_;
  ++pool.stats.nand_writes_;
  std::fill(slot.stripe_xor.begin(), slot.stripe_xor.end(), 0);
  slot.stripe_fill = 0;
  if (nand_.block_info(bid).next_page >= PagesPerBlock(pool)) {
    block_sealed_[bid] = 1;
    slot.block.reset();
  }
  return Status::Ok();
}

Result<PhysLoc> Ftl::AppendPage(uint32_t pool_id, uint64_t lba,
                                std::span<const uint8_t> data, bool allow_gc, bool cold,
                                bool tainted, uint32_t stream, LifetimeHint lifetime) {
  Pool& pool = pools_[pool_id];
  ActiveSlot& slot = SlotFor(pool, cold, stream);
  // The retry budget absorbs stripe-boundary reseals, transient program
  // faults and grown-bad-block drops; each attempt starts from a usable
  // append point.
  for (int attempts = 0; attempts < 5; ++attempts) {
    if (!EnsureWritable(pool_id, slot, allow_gc, lifetime)) {
      return Status(StatusCode::kOutOfSpace,
                    "pool '" + pool.config.name + "' has no writable blocks");
    }
    const uint32_t bid = *slot.block;
    uint32_t page = nand_.block_info(bid).next_page;
    // Flush parity pages until the cursor rests on a data slot (a stripe
    // boundary may seal the block, hence the outer retry loop).
    bool resealed = false;
    Status parity_status = Status::Ok();
    while (IsParitySlot(pool, page)) {
      if (Status s = WriteParityPage(pool_id, slot); !s.ok()) {
        parity_status = s;
        break;
      }
      if (!slot.block.has_value()) {
        resealed = true;
        break;
      }
      page = nand_.block_info(bid).next_page;
    }
    if (!parity_status.ok()) {
      if (parity_status.code() == StatusCode::kPowerLost) {
        return parity_status;  // device is dark; only RecoverFromFlash helps
      }
      if (parity_status.code() == StatusCode::kWornOut) {
        // Parity slot refuses to program: the block is grown-bad.
        const uint32_t bad = *slot.block;
        if (Status s = DropBadBlock(pool_id, bad); !s.ok()) {
          return s;
        }
      }
      continue;  // transient parity failure: retry the append
    }
    if (resealed) {
      continue;  // block sealed by parity flush; pick a new one
    }
    PageOob oob;
    oob.lba = lba;
    oob.seq = write_seq_;
    oob.pool = pool_id;
    oob.flags = tainted ? kOobFlagTainted : 0;
    if (Status s = nand_.Program({bid, page}, data, &oob); !s.ok()) {
      if (s.code() == StatusCode::kPowerLost) {
        // The page may or may not have reached the cells (torn write);
        // volatile bookkeeping is not updated -- recovery rebuilds it.
        return s;
      }
      if (s.code() == StatusCode::kWornOut) {
        if (Status drop = DropBadBlock(pool_id, bid); !drop.ok()) {
          return drop;
        }
      }
      continue;  // transient program failure: retry on a fresh append point
    }
    ++write_seq_;
    P2lRow(bid)[page] = lba;
    page_stream_[static_cast<size_t>(bid) * page_stride_ + page] =
        static_cast<uint8_t>(stream);
    ++block_valid_[bid];
    ++pool.valid_pages;
    block_last_write_[bid] = clock_->now();
    ++pool.stats.nand_writes_;
    if (stream != 0) {
      ++StreamEntry(stream).nand_writes;
    }
    if (pool.config.parity_stripe > 0 && config_.nand.store_payloads) {
      for (size_t i = 0; i < data.size() && i < slot.stripe_xor.size(); ++i) {
        slot.stripe_xor[i] = static_cast<uint8_t>(slot.stripe_xor[i] ^ data[i]);
      }
      ++slot.stripe_fill;
    }
    if (nand_.block_info(bid).next_page >= PagesPerBlock(pool)) {
      block_sealed_[bid] = 1;
      slot.block.reset();
    }
    return PhysLoc{pool_id, bid, page, tainted};
  }
  return Status(StatusCode::kOutOfSpace, "append retry budget exhausted");
}

void Ftl::InvalidateLoc(const PhysLoc& loc) {
  Pool& pool = pools_[loc.pool];
  if (!OwnedBy(loc.block, loc.pool)) {
    return;  // block was retired out from under the mapping
  }
  uint64_t* row = P2lRow(loc.block);
  if (loc.page < PagesPerBlock(pool) && row[loc.page] != kLbaInvalid &&
      row[loc.page] != kLbaParity) {
    row[loc.page] = kLbaInvalid;
    assert(block_valid_[loc.block] > 0);
    --block_valid_[loc.block];
    assert(pool.valid_pages > 0);
    --pool.valid_pages;
  }
}

Status Ftl::Write(uint64_t lba, std::span<const uint8_t> data,
                  const WriteDirective& directive) {
  if (directive.pool_id >= pools_.size()) {
    return Status(StatusCode::kInvalidArgument, "bad pool id");
  }
  if (directive.stream > 255) {
    return Status(StatusCode::kInvalidArgument, "stream tag exceeds one byte");
  }
  if (data.size() > config_.nand.page_size_bytes) {
    return Status(StatusCode::kInvalidArgument, "payload exceeds page size");
  }
  obs::ScopedLatency timer(clock_, &write_latency_);
  auto loc = AppendPage(directive.pool_id, lba, data, /*allow_gc=*/true, /*cold=*/false,
                        /*tainted=*/false,  // fresh host data supersedes any corruption
                        directive.stream, directive.lifetime);
  if (!loc.ok()) {
    return loc.status();
  }
  if (auto old = l2p_.Find(lba); old.has_value()) {
    InvalidateLoc(*old);
  }
  l2p_.Set(lba, loc.value());
  ++pools_[directive.pool_id].stats.host_writes_;
  if (directive.stream != 0) {
    ++StreamEntry(directive.stream).host_writes;
  }
  return Status::Ok();
}

Result<FtlReadResult> Ftl::ReadInternal(uint64_t lba, bool count_stats) {
  const auto found = l2p_.Find(lba);
  if (!found.has_value()) {
    return Status(StatusCode::kNotFound, "unmapped LBA");
  }
  const PhysLoc loc = *found;
  auto read = nand_.Read({loc.block, loc.page});
  if (!read.ok() && read.status().code() == StatusCode::kUnavailable) {
    // Transient device fault (bus glitch, busy die): one deterministic
    // retry before giving up, as any real controller would.
    read = nand_.Read({loc.block, loc.page});
  }
  if (!read.ok()) {
    return read.status();
  }
  return DecodeRead(loc, std::move(read.value()), count_stats);
}

Result<FtlReadResult> Ftl::DecodeRead(const PhysLoc& loc, ReadResult raw, bool count_stats) {
  Pool& pool = pools_[loc.pool];
  FtlReadResult result;
  result.raw_rber = raw.rber;
  result.pool_id = loc.pool;
  result.tainted = loc.tainted;

  const uint64_t decode_seed =
      DeriveSeed({config_.nand.seed, loc.block, loc.page, raw.bit_errors});
  const DecodeOutcome outcome = DecodePage(pool.config.ecc, config_.nand.page_size_bytes,
                                           raw.bit_errors, decode_seed);
  if (outcome.corrected) {
    auto clean = nand_.PeekClean({loc.block, loc.page});
    if (clean.ok()) {
      result.data = std::move(clean.value());
    }
    return result;
  }

  if (count_stats) {
    ++pool.stats.ecc_failures_;
  }

  // READ RETRY (paper §2.1 mechanics; see voltage_model.h): re-read with
  // drift-tracking references. Each attempt is an independent, lower-RBER
  // analog measurement; the first one that decodes wins.
  for (int retry = 1; retry <= static_cast<int>(pool.config.read_retries); ++retry) {
    auto reread = nand_.Read({loc.block, loc.page}, retry);
    if (!reread.ok()) {
      break;
    }
    const uint64_t retry_seed = DeriveSeed(
        {config_.nand.seed, loc.block, loc.page, reread.value().bit_errors,
         static_cast<uint64_t>(retry)});
    if (DecodePage(pool.config.ecc, config_.nand.page_size_bytes,
                   reread.value().bit_errors, retry_seed)
            .corrected) {
      auto clean = nand_.PeekClean({loc.block, loc.page});
      if (clean.ok()) {
        result.data = std::move(clean.value());
      }
      if (count_stats) {
        ++pool.stats.retry_recoveries_;
      }
      return result;
    }
  }

  // Parity rescue: possible when the page sits in a completed stripe and
  // every other stripe member (including the parity page) decodes.
  if (pool.config.parity_stripe > 0) {
    const uint32_t stripe = pool.config.parity_stripe;
    const uint32_t start = loc.page / stripe * stripe;
    const uint32_t parity_page = start + stripe - 1;
    const bool stripe_complete = OwnedBy(loc.block, loc.pool) &&
                                 parity_page < PagesPerBlock(pool) &&
                                 P2lRow(loc.block)[parity_page] == kLbaParity;
    if (stripe_complete) {
      bool rescue_ok = true;
      for (uint32_t p = start; p < start + stripe && rescue_ok; ++p) {
        if (p == loc.page) {
          continue;
        }
        auto member = nand_.Read({loc.block, p});
        if (!member.ok()) {
          rescue_ok = false;
          break;
        }
        const uint64_t member_seed =
            DeriveSeed({config_.nand.seed, loc.block, p, member.value().bit_errors});
        rescue_ok = DecodePage(pool.config.ecc, config_.nand.page_size_bytes,
                               member.value().bit_errors, member_seed)
                        .corrected;
      }
      if (rescue_ok) {
        auto clean = nand_.PeekClean({loc.block, loc.page});
        if (clean.ok()) {
          result.data = std::move(clean.value());
        }
        result.parity_rescued = true;
        if (count_stats) {
          ++pool.stats.parity_rescues_;
        }
        return result;
      }
    }
  }

  // Unrescued. A strict-fidelity pool errors loudly on the host-facing path
  // (count_stats == true) rather than serving corruption -- the paper's SYS
  // contract. Internal relocations still move the degraded bytes (with the
  // taint marker) so GC cannot wedge on a corrupt page.
  if (pool.config.strict_fidelity && count_stats) {
    return Status(StatusCode::kDataLoss,
                  "unrecoverable corruption on strict pool '" + pool.config.name + "'");
  }
  // Deliver the raw (corrupted) bytes -- approximate storage.
  result.data = std::move(raw.data);
  result.residual_bit_errors = outcome.residual_errors;
  result.degraded = true;
  if (count_stats) {
    ++pool.stats.degraded_reads_;
  }
  return result;
}

Result<FtlReadResult> Ftl::Read(uint64_t lba) {
  obs::ScopedLatency timer(clock_, &read_latency_);
  return ReadInternal(lba, /*count_stats=*/true);
}

std::vector<Result<FtlReadResult>> Ftl::ReadRun(uint64_t start_lba, uint32_t count) {
  std::vector<Result<FtlReadResult>> out;
  out.reserve(count);
  uint32_t i = 0;
  while (i < count) {
    const auto first = l2p_.Find(start_lba + i);
    if (!first.has_value()) {
      out.push_back(Status(StatusCode::kNotFound, "unmapped LBA"));
      ++i;
      continue;
    }
    // Extend the stretch while the next LBA maps to the next physical page
    // of the same block -- the layout sequential batched writes produce.
    std::vector<PhysLoc> locs{*first};
    while (i + locs.size() < count) {
      const auto next = l2p_.Find(start_lba + i + locs.size());
      if (!next.has_value() || next->block != first->block ||
          next->page != first->page + locs.size()) {
        break;
      }
      locs.push_back(*next);
    }
    obs::ScopedLatency timer(clock_, &read_latency_);
    auto raws = nand_.ReadRun(first->block, first->page, static_cast<uint32_t>(locs.size()));
    for (size_t j = 0; j < locs.size(); ++j) {
      Result<ReadResult> raw = std::move(raws[j]);
      if (!raw.ok() && raw.status().code() == StatusCode::kUnavailable) {
        // Same single deterministic retry as ReadInternal.
        raw = nand_.Read({locs[j].block, locs[j].page});
      }
      if (!raw.ok()) {
        out.push_back(raw.status());
        continue;
      }
      out.push_back(DecodeRead(locs[j], std::move(raw.value()), /*count_stats=*/true));
    }
    i += static_cast<uint32_t>(locs.size());
  }
  return out;
}

Status Ftl::WriteRun(uint64_t start_lba, std::span<const std::vector<uint8_t>> pages,
                     const WriteDirective& directive, uint64_t* written) {
  *written = 0;
  if (directive.pool_id >= pools_.size()) {
    return Status(StatusCode::kInvalidArgument, "bad pool id");
  }
  if (directive.stream > 255) {
    return Status(StatusCode::kInvalidArgument, "stream tag exceeds one byte");
  }
  for (const std::vector<uint8_t>& page : pages) {
    if (page.size() > config_.nand.page_size_bytes) {
      return Status(StatusCode::kInvalidArgument, "payload exceeds page size");
    }
  }
  obs::ScopedLatency timer(clock_, &write_latency_);
  Pool& pool = pools_[directive.pool_id];
  int attempts = 0;  // consecutive no-progress iterations, as AppendPage's budget
  while (*written < pages.size()) {
    if (++attempts > 5) {
      return Status(StatusCode::kOutOfSpace, "append retry budget exhausted");
    }
    ActiveSlot& slot = SlotFor(pool, /*cold=*/false, directive.stream);
    if (!EnsureWritable(directive.pool_id, slot, /*allow_gc=*/true, directive.lifetime)) {
      return Status(StatusCode::kOutOfSpace,
                    "pool '" + pool.config.name + "' has no writable blocks");
    }
    const uint32_t bid = *slot.block;
    uint32_t page = nand_.block_info(bid).next_page;
    // Flush parity pages until the cursor rests on a data slot, exactly as
    // AppendPage does (a stripe boundary may seal the block).
    bool resealed = false;
    Status parity_status = Status::Ok();
    while (IsParitySlot(pool, page)) {
      if (Status s = WriteParityPage(directive.pool_id, slot); !s.ok()) {
        parity_status = s;
        break;
      }
      if (!slot.block.has_value()) {
        resealed = true;
        break;
      }
      page = nand_.block_info(bid).next_page;
    }
    if (!parity_status.ok()) {
      if (parity_status.code() == StatusCode::kPowerLost) {
        return parity_status;  // device is dark; only RecoverFromFlash helps
      }
      if (parity_status.code() == StatusCode::kWornOut) {
        if (Status s = DropBadBlock(directive.pool_id, bid); !s.ok()) {
          return s;
        }
      }
      continue;  // transient parity failure: retry
    }
    if (resealed) {
      continue;  // block sealed by the parity flush; pick a new one
    }
    // The contiguous data-slot stretch from the cursor: up to the next
    // parity slot or the end of the block, one ProgramRun.
    uint32_t n = 0;
    while (*written + n < pages.size() && page + n < PagesPerBlock(pool) &&
           !IsParitySlot(pool, page + n)) {
      ++n;
    }
    std::vector<PageOob> oobs(n);
    for (uint32_t j = 0; j < n; ++j) {
      oobs[j].lba = start_lba + *written + j;
      oobs[j].seq = write_seq_ + j;
      oobs[j].pool = directive.pool_id;
      oobs[j].flags = 0;  // fresh host data supersedes any corruption
    }
    const Status programmed = nand_.ProgramRun(bid, pages.subspan(*written, n), oobs);
    // Pages that physically landed: the program cursor is the ground truth.
    // A post-op power cut advances it for the torn page, which the serial
    // path would not have acknowledged -- report that one unwritten.
    uint32_t landed = nand_.block_info(bid).next_page - page;
    if (!programmed.ok() && programmed.code() == StatusCode::kPowerLost && landed > 0) {
      --landed;
    }
    for (uint32_t j = 0; j < landed; ++j) {
      const uint64_t lba = start_lba + *written;
      const uint32_t pg = page + j;
      ++write_seq_;
      P2lRow(bid)[pg] = lba;
      page_stream_[static_cast<size_t>(bid) * page_stride_ + pg] =
          static_cast<uint8_t>(directive.stream);
      ++block_valid_[bid];
      ++pool.valid_pages;
      block_last_write_[bid] = clock_->now();
      ++pool.stats.nand_writes_;
      if (directive.stream != 0) {
        ++StreamEntry(directive.stream).nand_writes;
      }
      if (pool.config.parity_stripe > 0 && config_.nand.store_payloads) {
        const std::vector<uint8_t>& data = pages[*written];
        for (size_t b = 0; b < data.size() && b < slot.stripe_xor.size(); ++b) {
          slot.stripe_xor[b] = static_cast<uint8_t>(slot.stripe_xor[b] ^ data[b]);
        }
        ++slot.stripe_fill;
      }
      if (auto old = l2p_.Find(lba); old.has_value()) {
        InvalidateLoc(*old);
      }
      l2p_.Set(lba, PhysLoc{directive.pool_id, bid, pg, /*tainted=*/false});
      ++pool.stats.host_writes_;
      if (directive.stream != 0) {
        ++StreamEntry(directive.stream).host_writes;
      }
      ++*written;
      attempts = 0;  // progress resets the retry budget
    }
    if (nand_.block_info(bid).next_page >= PagesPerBlock(pool)) {
      block_sealed_[bid] = 1;
      slot.block.reset();
    }
    if (!programmed.ok()) {
      if (programmed.code() == StatusCode::kPowerLost) {
        return programmed;
      }
      if (programmed.code() == StatusCode::kWornOut) {
        if (Status s = DropBadBlock(directive.pool_id, bid); !s.ok()) {
          return s;
        }
      }
      continue;  // transient program failure: retry on a fresh append point
    }
  }
  return Status::Ok();
}

Status Ftl::Trim(uint64_t lba) {
  const auto loc = l2p_.Find(lba);
  if (!loc.has_value()) {
    return Status(StatusCode::kNotFound, "unmapped LBA");
  }
  InvalidateLoc(*loc);
  l2p_.Erase(lba);
  return Status::Ok();
}

Status Ftl::Migrate(uint64_t lba, const WriteDirective& directive) {
  const uint32_t target_pool = directive.pool_id;
  if (target_pool >= pools_.size()) {
    return Status(StatusCode::kInvalidArgument, "bad pool id");
  }
  if (directive.stream > 255) {
    return Status(StatusCode::kInvalidArgument, "stream tag exceeds one byte");
  }
  const auto cur = l2p_.Find(lba);
  if (!cur.has_value()) {
    return Status(StatusCode::kNotFound, "unmapped LBA");
  }
  if (cur->pool == target_pool) {
    return Status::Ok();
  }
  auto read = ReadInternal(lba, /*count_stats=*/false);
  if (!read.ok()) {
    return read.status();
  }
  const bool tainted = cur->tainted || read.value().degraded;
  const uint32_t source_pool = cur->pool;
  auto loc = AppendPage(target_pool, lba, read.value().data, /*allow_gc=*/true,
                        /*cold=*/false, tainted, directive.stream, directive.lifetime);
  if (!loc.ok()) {
    return loc.status();
  }
  // The append may have dropped a grown-bad block and moved (or lost) the old
  // copy's mapping; re-look the entry up rather than trusting the old value.
  if (auto moved = l2p_.Find(lba); moved.has_value()) {
    InvalidateLoc(*moved);
  }
  l2p_.Set(lba, loc.value());
  ++pools_[target_pool].stats.migrations_;
  Trace(obs::TraceEvent{clock_->now(), "ftl.migrate"}
            .WithU64("lba", lba)
            .With("from", pools_[source_pool].config.name)
            .With("to", pools_[target_pool].config.name)
            .WithU64("tainted", tainted ? 1 : 0));
  return Status::Ok();
}

Status Ftl::Refresh(uint64_t lba) {
  const auto cur = l2p_.Find(lba);
  if (!cur.has_value()) {
    return Status(StatusCode::kNotFound, "unmapped LBA");
  }
  const uint32_t pool_id = cur->pool;
  // The rewritten copy keeps the old page's stream tag (accounting follows
  // the data through scrubs, like relocations).
  const uint32_t stream =
      page_stream_[static_cast<size_t>(cur->block) * page_stride_ + cur->page];
  auto read = ReadInternal(lba, /*count_stats=*/false);
  if (!read.ok()) {
    return read.status();
  }
  const bool tainted = cur->tainted || read.value().degraded;
  auto loc = AppendPage(pool_id, lba, read.value().data, /*allow_gc=*/true, /*cold=*/true,
                        tainted, stream);
  if (!loc.ok()) {
    return loc.status();
  }
  // A grown-bad-block drop inside the append may have moved the mapping.
  if (auto moved = l2p_.Find(lba); moved.has_value()) {
    InvalidateLoc(*moved);
  }
  l2p_.Set(lba, loc.value());
  ++pools_[pool_id].stats.refreshes_;
  return Status::Ok();
}

uint32_t Ftl::BackgroundCollect(uint32_t max_blocks_per_pool) {
  uint32_t collected = 0;
  for (uint32_t pool_id = 0; pool_id < pools_.size(); ++pool_id) {
    Pool& pool = pools_[pool_id];
    uint32_t budget = max_blocks_per_pool;
    while (budget > 0 &&
           pool.free_blocks.size() <= 2 * pool.config.gc_threshold_blocks) {
      if (!CollectGarbage(pool_id)) {
        break;
      }
      --budget;
      ++collected;
      ++pool.stats.background_collections_;
    }
  }
  return collected;
}

// ---------------------------------------------------------------------------
// Garbage collection, wear leveling, retirement.
// ---------------------------------------------------------------------------

std::optional<uint32_t> Ftl::PickGcVictim(uint32_t pool_id) const {
  const Pool& pool = pools_[pool_id];
  std::optional<uint32_t> best;
  double best_score = -1.0;
  // Ascending block-id scan: with a strict `>` comparison the first (lowest
  // id) of any score tie wins, reproducing the id tie-break the hash-map
  // implementation enforced explicitly.
  for (uint32_t id = 0; id < block_owner_.size(); ++id) {
    if (block_owner_[id] != pool_id) {
      continue;
    }
    if (block_sealed_[id] == 0 || pool.IsActive(id)) {
      continue;
    }
    const double slots = static_cast<double>(pool.data_slots_per_block);
    const double u = slots > 0.0 ? static_cast<double>(block_valid_[id]) / slots : 1.0;
    if (u >= 1.0) {
      continue;  // nothing reclaimable
    }
    double score = 0.0;
    if (config_.gc_policy == GcPolicy::kGreedy) {
      score = 1.0 - u;
    } else {
      const SimTimeUs last_write = block_last_write_[id];
      const double age_us = static_cast<double>(
          clock_->now() >= last_write ? clock_->now() - last_write : 0);
      score = (1.0 - u) / (1.0 + u) * (1.0 + age_us / static_cast<double>(kUsPerDay));
    }
    if (score > best_score) {
      best_score = score;
      best = id;
    }
  }
  return best;
}

bool Ftl::CollectGarbage(uint32_t pool_id) {
  Pool& pool = pools_[pool_id];
  obs::ScopedLatency timer(clock_, &gc_latency_);
  const auto victim = PickGcVictim(pool_id);
  if (!victim.has_value()) {
    return false;
  }
  Trace(obs::TraceEvent{clock_->now(), "ftl.gc.victim"}
            .With("pool", pool.config.name)
            .WithU64("block", *victim)
            .WithU64("valid_pages", block_valid_[*victim]));
  if (!EvacuateAndRecycle(pool_id, *victim, /*count_as_wl=*/false).ok()) {
    return false;
  }
  MaybeStaticWearLevel(pool_id);
  return true;
}

Status Ftl::RelocatePage(uint32_t pool_id, uint64_t lba, const FtlReadResult& read,
                         bool count_as_wl) {
  const auto cur = l2p_.Find(lba);
  const bool tainted = (cur.has_value() && cur->tainted) || read.degraded;
  // Relocated pages carry their stream tag with them: per-handle nand_writes
  // charges GC/WL rewrites of a handle's data back to that handle.
  const uint32_t stream =
      cur.has_value()
          ? page_stream_[static_cast<size_t>(cur->block) * page_stride_ + cur->page]
          : 0;
  auto loc = AppendPage(pool_id, lba, read.data, /*allow_gc=*/false,
                        /*cold=*/true, tainted, stream);
  if (!loc.ok()) {
    return loc.status();
  }
  // Invalidate the old copy (decrements its block's counters). Re-look the
  // mapping up: the append may have dropped a grown-bad block and rewritten
  // mappings.
  if (auto moved = l2p_.Find(lba); moved.has_value()) {
    InvalidateLoc(*moved);
  }
  l2p_.Set(lba, loc.value());
  Pool& pool = pools_[pool_id];
  if (count_as_wl) {
    ++pool.stats.wl_relocations_;
  } else {
    ++pool.stats.gc_relocations_;
  }
  return Status::Ok();
}

Status Ftl::EvacuateAndRecycle(uint32_t pool_id, uint32_t block_id, bool count_as_wl) {
  Pool& pool = pools_[pool_id];
  if (!OwnedBy(block_id, pool_id)) {
    return Status(StatusCode::kNotFound, "block not owned by pool");
  }
  assert(!in_relocation_ && "nested relocation");
  in_relocation_ = true;
  Status status = Status::Ok();
  const uint32_t pages = PagesPerBlock(pool);

  if (!config_.batched_relocation) {
    // Interleaved read-append per page: the historical schedule every golden
    // output was recorded against.
    for (uint32_t p = 0; p < pages; ++p) {
      const uint64_t lba = P2lRow(block_id)[p];
      if (lba == kLbaInvalid || lba == kLbaParity) {
        continue;
      }
      const auto cur = l2p_.Find(lba);
      if (!cur.has_value() || cur->block != block_id || cur->pool != pool_id ||
          cur->page != p) {
        continue;  // stale reverse entry
      }
      auto read = ReadInternal(lba, /*count_stats=*/false);
      if (!read.ok()) {
        status = read.status();
        break;
      }
      if (Status s = RelocatePage(pool_id, lba, read.value(), count_as_wl); !s.ok()) {
        status = s;
        break;
      }
    }
  } else {
    // Two-phase: batch-read every valid run of the victim first (one device
    // call per contiguous run), then decode + re-append. Deterministic, but a
    // different op schedule than the interleaved path -- see FtlConfig.
    std::vector<std::pair<uint32_t, uint64_t>> items;  // (page, lba)
    for (uint32_t p = 0; p < pages; ++p) {
      const uint64_t lba = P2lRow(block_id)[p];
      if (lba == kLbaInvalid || lba == kLbaParity) {
        continue;
      }
      const auto cur = l2p_.Find(lba);
      if (cur.has_value() && cur->block == block_id && cur->pool == pool_id &&
          cur->page == p) {
        items.emplace_back(p, lba);
      }
    }
    std::vector<Result<ReadResult>> raws;
    raws.reserve(items.size());
    for (size_t i = 0; i < items.size();) {
      size_t j = i + 1;
      while (j < items.size() && items[j].first == items[j - 1].first + 1) {
        ++j;
      }
      auto run = nand_.ReadRun(block_id, items[i].first, static_cast<uint32_t>(j - i));
      for (auto& r : run) {
        raws.push_back(std::move(r));
      }
      i = j;
    }
    for (size_t i = 0; i < items.size(); ++i) {
      const auto [p, lba] = items[i];
      // Re-validate: a grown-bad-block drop triggered by an earlier append in
      // this batch may have moved the mapping already.
      const auto cur = l2p_.Find(lba);
      if (!cur.has_value() || cur->block != block_id || cur->pool != pool_id ||
          cur->page != p) {
        continue;
      }
      Result<ReadResult> raw = std::move(raws[i]);
      if (!raw.ok() && raw.status().code() == StatusCode::kUnavailable) {
        raw = nand_.Read({block_id, p});  // transient fault: one retry
      }
      if (!raw.ok()) {
        status = raw.status();
        break;
      }
      auto read = DecodeRead(*cur, std::move(raw.value()), /*count_stats=*/false);
      if (!read.ok()) {
        status = read.status();
        break;
      }
      if (Status s = RelocatePage(pool_id, lba, read.value(), count_as_wl); !s.ok()) {
        status = s;
        break;
      }
    }
  }

  in_relocation_ = false;
  if (!status.ok()) {
    return status;
  }
  RecycleBlock(pool_id, block_id);
  return Status::Ok();
}

void Ftl::MaybeStaticWearLevel(uint32_t pool_id) {
  Pool& pool = pools_[pool_id];
  if (!pool.config.wear_leveling || pool.num_blocks == 0) {
    return;
  }
  uint32_t min_pec = std::numeric_limits<uint32_t>::max();
  uint32_t max_pec = 0;
  std::optional<uint32_t> coldest;
  // Ascending scan + strict `<`: the lowest-id block among equal-PEC eligible
  // candidates wins, matching the old map implementation's tie-break.
  for (uint32_t id = 0; id < block_owner_.size(); ++id) {
    if (block_owner_[id] != pool_id) {
      continue;
    }
    const uint32_t pec = nand_.block_info(id).pec;
    max_pec = std::max(max_pec, pec);
    const bool eligible = block_sealed_[id] != 0 && block_valid_[id] > 0 && !pool.IsActive(id);
    if (eligible && pec < min_pec) {
      min_pec = pec;
      coldest = id;
    }
  }
  const double endurance =
      static_cast<double>(GetCellTechInfo(pool.config.mode).rated_endurance_pec);
  if (coldest.has_value() &&
      static_cast<double>(max_pec - min_pec) > config_.static_wl_spread * endurance) {
    // Best-effort: a failed leveling pass just postpones the spread fix to a
    // later GC cycle; the write path that triggered it must not fail on it.
    IgnoreResult(EvacuateAndRecycle(pool_id, *coldest, /*count_as_wl=*/true));
  }
}

bool Ftl::ShouldRetire(const Pool& pool, uint32_t block_id) const {
  // Every owned block shares the pool's mode, endurance and nominal
  // retention, so the exact model value is a pure function of the PEC: cache
  // the computed double per PEC and replay it bit-for-bit on hits. This
  // keeps the (pow-heavy) model call off the per-recycle hot path.
  const uint32_t pec = nand_.block_info(block_id).pec;
  auto exact = [&]() {
    PageErrorState state;
    state.mode = pool.config.mode;
    state.endurance_pec = nand_.EffectiveEndurance(block_id);
    state.pec_at_program = pec;
    state.retention_years = pool.config.nominal_retention_years;
    state.reads_since_program = 0;
    return ErrorModel::Rber(state);
  };
  constexpr uint32_t kMaxMemoPec = 1u << 20;  // sanity cap on cache growth
  if (pec >= kMaxMemoPec) {
    return exact() > pool.retire_rber;
  }
  if (pool.retire_rber_by_pec.size() <= pec) {
    const size_t grown = std::max<size_t>(pec + 1, pool.retire_rber_by_pec.size() * 2);
    pool.retire_rber_by_pec.resize(grown, -1.0);
  }
  double& slot = pool.retire_rber_by_pec[pec];
  if (slot < 0.0) {
    slot = exact();
  }
  return slot > pool.retire_rber;
}

void Ftl::RecycleBlock(uint32_t pool_id, uint32_t block_id) {
  Pool& pool = pools_[pool_id];
  Status s = nand_.EraseBlock(block_id);
  if (!s.ok()) {
    if (s.code() == StatusCode::kPowerLost) {
      return;  // device is dark; RecoverFromFlash rebuilds this state anyway
    }
    if (s.code() == StatusCode::kUnavailable) {
      s = nand_.EraseBlock(block_id);  // transient: one retry
    }
    if (!s.ok()) {
      // Erase refuses permanently: classic grown bad block. The block was
      // already evacuated (it holds no valid data), so the drop just
      // removes it from the pool.
      IgnoreResult(DropBadBlock(pool_id, block_id));  // power loss here surfaces on the next op
      return;
    }
  }
  ++pool.stats.gc_erases_;

  // Retirement is postponed while the free list is at or below the GC
  // reserve: retiring now would consume the relocation slack GC itself needs
  // and could wedge the pool. The worn block stays in service (approximate
  // pools tolerate it) and retires on a later cycle once slack recovers.
  const bool may_retire = pool.free_blocks.size() >= kGcReserveBlocks;
  if (!may_retire || !ShouldRetire(pool, block_id)) {
    ResetBlockRow(block_id);
    pool.free_blocks.push_back(block_id);
    return;
  }

  // Retired from this pool.
  block_owner_[block_id] = kNoPool;
  --pool.num_blocks;
  ++pool.retired;
  ++pool.stats.retired_blocks_;
  Trace(obs::TraceEvent{clock_->now(), "ftl.block.retired"}
            .With("pool", pool.config.name)
            .WithU64("block", block_id)
            .WithU64("pec", nand_.block_info(block_id).pec));

  bool resuscitated = false;
  if (pool.resuscitate_pool.has_value()) {
    Pool& target = pools_[*pool.resuscitate_pool];
    Status mode_status = nand_.SetBlockMode(block_id, target.config.mode);
    if (mode_status.ok() && !ShouldRetire(target, block_id)) {
      block_owner_[block_id] = *pool.resuscitate_pool;
      ++target.num_blocks;
      ResetBlockRow(block_id);
      target.free_blocks.push_back(block_id);
      ++pool.stats.resuscitated_blocks_;
      resuscitated = true;
      Status label = nand_.SetBlockLabel(block_id, *pool.resuscitate_pool);
      assert(label.ok());
      (void)label;
      Trace(obs::TraceEvent{clock_->now(), "ftl.block.resuscitated"}
                .With("from", pool.config.name)
                .With("to", target.config.name)
                .WithU64("block", block_id));
    }
  }
  if (!resuscitated) {
    // The block left service entirely; recovery must not hand it back.
    Status label = nand_.SetBlockLabel(block_id, NandDevice::kNoLabel);
    assert(label.ok());
    (void)label;
  }
  NotifyCapacity();
}

Status Ftl::DropBadBlock(uint32_t pool_id, uint32_t block_id) {
  Pool& pool = pools_[pool_id];
  if (!OwnedBy(block_id, pool_id)) {
    return Status(StatusCode::kNotFound, "block not owned by pool");
  }
  // Detach from the append points and the free list before touching data.
  if (pool.active_host.block.has_value() && *pool.active_host.block == block_id) {
    pool.active_host.block.reset();
  }
  if (pool.active_cold.block.has_value() && *pool.active_cold.block == block_id) {
    pool.active_cold.block.reset();
  }
  for (auto& [tag, slot] : pool.active_streams) {
    if (slot.block.has_value() && *slot.block == block_id) {
      slot.block.reset();
    }
  }
  std::erase(pool.free_blocks, block_id);

  // Rescue whatever it still holds: program/erase refuse on a grown-bad
  // block but reads keep working, so valid pages relocate through the
  // normal degradation-aware path.
  const bool prev_relocation = in_relocation_;
  in_relocation_ = true;
  const uint32_t pages = PagesPerBlock(pool);
  for (uint32_t p = 0; p < pages; ++p) {
    const uint64_t lba = P2lRow(block_id)[p];
    if (lba == kLbaInvalid || lba == kLbaParity) {
      continue;
    }
    const auto cur = l2p_.Find(lba);
    if (!cur.has_value() || cur->block != block_id || cur->pool != pool_id ||
        cur->page != p) {
      continue;  // stale reverse entry
    }
    bool relocated = false;
    auto read = ReadInternal(lba, /*count_stats=*/false);
    if (!read.ok() && read.status().code() == StatusCode::kPowerLost) {
      in_relocation_ = prev_relocation;
      return read.status();
    }
    if (read.ok()) {
      Status s = RelocatePage(pool_id, lba, read.value(), /*count_as_wl=*/false);
      if (!s.ok() && s.code() == StatusCode::kPowerLost) {
        in_relocation_ = prev_relocation;
        return s;
      }
      relocated = s.ok();
    }
    if (!relocated) {
      // Unreadable and unsalvageable: the mapping dies here, counted loudly.
      if (auto dead = l2p_.Find(lba); dead.has_value()) {
        InvalidateLoc(*dead);
        l2p_.Erase(lba);
      }
      ++pool.stats.lost_pages_;
    }
  }
  in_relocation_ = prev_relocation;

  block_owner_[block_id] = kNoPool;
  --pool.num_blocks;
  ResetBlockRow(block_id);
  ++pool.stats.grown_bad_blocks_;
  Status label = nand_.SetBlockLabel(block_id, NandDevice::kNoLabel);
  assert(label.ok());
  (void)label;
  Trace(obs::TraceEvent{clock_->now(), "ftl.block.grown_bad"}
            .With("pool", pool.config.name)
            .WithU64("block", block_id));
  NotifyCapacity();
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Crash recovery.
// ---------------------------------------------------------------------------

Status Ftl::RecoverFromFlash() {
  nand_.PowerOn();
  last_recovery_ = RecoveryReport{};

  // Everything volatile is gone: the mapping table, free lists, append
  // points, open parity stripes, per-block reverse maps. Stats survive --
  // they model telemetry the host persists out-of-band. The flat arrays are
  // wiped in place (capacity kept), not reallocated.
  l2p_.Clear();
  std::fill(p2l_.begin(), p2l_.end(), kLbaInvalid);
  std::fill(block_owner_.begin(), block_owner_.end(), kNoPool);
  std::fill(block_valid_.begin(), block_valid_.end(), 0u);
  std::fill(block_last_write_.begin(), block_last_write_.end(), SimTimeUs{0});
  std::fill(block_sealed_.begin(), block_sealed_.end(), uint8_t{0});
  for (auto& pool : pools_) {
    pool.num_blocks = 0;
    pool.free_blocks.clear();
    pool.active_host.block.reset();
    std::fill(pool.active_host.stripe_xor.begin(), pool.active_host.stripe_xor.end(), 0);
    pool.active_host.stripe_fill = 0;
    pool.active_cold.block.reset();
    std::fill(pool.active_cold.stripe_xor.begin(), pool.active_cold.stripe_xor.end(), 0);
    pool.active_cold.stripe_fill = 0;
    pool.active_streams.clear();
    pool.valid_pages = 0;
  }
  in_relocation_ = false;
  // Stream tags are volatile (not in the durable OOB): per-handle accounting
  // restarts from zero after a cut. Registered names survive -- the metric
  // label set is host-side state the device re-learns on reopen anyway.
  std::fill(page_stream_.begin(), page_stream_.end(), uint8_t{0});
  for (StreamStats& stats : stream_stats_) {
    stats.host_writes = 0;
    stats.nand_writes = 0;
  }

  // Pass 1: walk the die in block order. Labels assign ownership; OOB
  // records per-page identity. Multiple copies of an LBA are expected (the
  // cut can land between a new program and the old copy's invalidation) --
  // collect the candidates and let the highest write sequence win. Host
  // LBAs are dense, so the candidate table is a flat vector too.
  struct Candidate {
    uint64_t seq = 0;
    uint32_t pool = 0;
    uint32_t block = 0;
    uint32_t page = 0;
    bool tainted = false;
    bool present = false;
  };
  std::vector<Candidate> winners;
  auto winner_slot = [&winners](uint64_t lba) -> Candidate& {
    if (lba >= winners.size()) {
      winners.resize(std::max<size_t>(lba + 1, winners.size() * 2));
    }
    return winners[lba];
  };
  uint64_t max_seq = 0;
  for (uint32_t b = 0; b < config_.nand.num_blocks; ++b) {
    const uint32_t label = nand_.block_label(b);
    if (label == NandDevice::kNoLabel) {
      ++last_recovery_.unlabeled_blocks;  // retired/dropped/unformatted
      continue;
    }
    if (label >= pools_.size()) {
      return Status(StatusCode::kFailedPrecondition,
                    "block " + std::to_string(b) + " labeled for unknown pool");
    }
    Pool& pool = pools_[label];
    const uint32_t pages = PagesPerBlock(pool);
    block_owner_[b] = label;
    ++pool.num_blocks;
    const BlockInfo& info = nand_.block_info(b);
    if (info.programmed_pages == 0) {
      pool.free_blocks.push_back(b);  // block order => deterministic free list
      continue;
    }
    // One batched OOB read per block instead of one device call per page;
    // OOB reads are pure (no clock, no error injection), so batching them
    // cannot perturb a single simulated byte.
    const uint32_t scan = std::min(info.next_page, pages);
    const auto oobs = nand_.ReadOobRun(b, 0, scan);
    uint64_t* row = P2lRow(b);
    for (uint32_t p = 0; p < scan; ++p) {
      if (!oobs[p].ok()) {
        continue;  // page predates OOB stamping; treated as garbage
      }
      ++last_recovery_.scanned_pages;
      const PageOob& meta = oobs[p].value();
      max_seq = std::max(max_seq, meta.seq);
      if ((meta.flags & kOobFlagParity) != 0) {
        row[p] = kLbaParity;
        ++last_recovery_.parity_pages;
        continue;
      }
      row[p] = meta.lba;
      const Candidate cand{meta.seq, label, b, p, (meta.flags & kOobFlagTainted) != 0,
                           true};
      Candidate& slot = winner_slot(meta.lba);
      if (!slot.present || cand.seq > slot.seq) {
        slot = cand;
      }
    }
    // A partially-programmed block is crash-sealed: its open parity stripe
    // is unreconstructible, so it never becomes an append point again. GC
    // reclaims it like any other sealed block.
    if (info.next_page < pages) {
      ++last_recovery_.open_blocks_sealed;
    }
    block_sealed_[b] = 1;
    block_last_write_[b] = clock_->now();
  }

  // Pass 2: install winners, demote losers. Deterministic walk order (pool,
  // then ascending block id) so counter increments replay identically.
  for (uint32_t pool_id = 0; pool_id < pools_.size(); ++pool_id) {
    Pool& pool = pools_[pool_id];
    for (uint32_t id = 0; id < block_owner_.size(); ++id) {
      if (block_owner_[id] != pool_id) {
        continue;
      }
      uint64_t* row = P2lRow(id);
      const uint32_t pages = PagesPerBlock(pool);
      for (uint32_t p = 0; p < pages; ++p) {
        const uint64_t lba = row[p];
        if (lba == kLbaInvalid || lba == kLbaParity) {
          continue;
        }
        const Candidate& win = winners[lba];
        if (win.pool == pool_id && win.block == id && win.page == p) {
          l2p_.Set(lba, PhysLoc{pool_id, id, p, win.tainted});
          ++block_valid_[id];
          ++pool.valid_pages;
          ++last_recovery_.replayed_pages;
        } else {
          row[p] = kLbaInvalid;  // superseded copy -> garbage
          ++last_recovery_.orphans_reclaimed;
        }
      }
    }
  }

  write_seq_ = max_seq + 1;
  // Re-baseline capacity without firing the shrink listener: the listener
  // reacts to retirement events, and remounting is not one.
  last_exported_pages_ = ExportedPages();

  return CheckInvariants();
}

// ---------------------------------------------------------------------------
// Capacity and introspection.
// ---------------------------------------------------------------------------

FtlStats Ftl::stats() const {
  FtlStats total;
  for (const auto& pool : pools_) {
    total.Accumulate(pool.stats);
  }
  return total;
}

void Ftl::ToMetrics(obs::MetricRegistry& registry, const std::string& prefix) const {
  stats().ToMetrics(registry, prefix);
  for (const auto& pool : pools_) {
    pool.stats.ToMetrics(registry, prefix + "pool." + pool.config.name + ".");
  }
  registry.SetHistogram(prefix + "read.latency_us", read_latency_);
  registry.SetHistogram(prefix + "write.latency_us", write_latency_);
  registry.SetHistogram(prefix + "gc.latency_us", gc_latency_);
  // Per-handle accounting + wear variance: appended after the historical
  // rows and only under a non-legacy policy, so every pre-directive golden
  // stays byte-identical (registration order is export order).
  if (config_.placement_policy == PlacementPolicy::kLegacy) {
    return;
  }
  for (uint32_t tag = 1; tag < stream_stats_.size(); ++tag) {
    const StreamStats& stats = stream_stats_[tag];
    if (stats.name.empty() && stats.host_writes == 0 && stats.nand_writes == 0) {
      continue;  // tag never registered nor written
    }
    const std::string label =
        stats.name.empty() ? "tag" + std::to_string(tag) : stats.name;
    const std::string handle_prefix = prefix + "handle." + label + ".";
    registry.SetCounter(handle_prefix + "host_writes", stats.host_writes);
    registry.SetCounter(handle_prefix + "nand_writes", stats.nand_writes);
    registry.SetGauge(handle_prefix + "write_amplification", stats.WriteAmplification());
  }
  registry.SetGauge(prefix + "placement.pec_variance", PecVariance());
  for (uint32_t pool_id = 0; pool_id < pools_.size(); ++pool_id) {
    registry.SetGauge(prefix + "placement.pool." + pools_[pool_id].config.name +
                          ".pec_variance",
                      Snapshot(pool_id).pec_variance);
  }
}

void Ftl::Trace(obs::TraceEvent event) {
  if (trace_ != nullptr) {
    trace_->Emit(std::move(event));
  }
}

uint64_t Ftl::ExportedPages() const {
  uint64_t exported = 0;
  for (const auto& pool : pools_) {
    const uint64_t usable_blocks =
        pool.num_blocks > kGcReserveBlocks ? pool.num_blocks - kGcReserveBlocks : 0;
    const uint64_t raw = usable_blocks * pool.data_slots_per_block;
    exported += static_cast<uint64_t>(static_cast<double>(raw) *
                                      (1.0 - pool.config.op_fraction));
  }
  return exported;
}

void Ftl::NotifyCapacity() {
  const uint64_t exported = ExportedPages();
  if (exported < last_exported_pages_) {
    last_exported_pages_ = exported;
    if (capacity_listener_) {
      capacity_listener_(exported);
    }
  }
}

PoolSnapshot Ftl::Snapshot(uint32_t pool_id) const {
  const Pool& pool = pools_[pool_id];
  PoolSnapshot snap;
  snap.name = pool.config.name;
  snap.mode = pool.config.mode;
  snap.total_blocks = pool.num_blocks;
  snap.free_blocks = static_cast<uint32_t>(pool.free_blocks.size());
  snap.retired_blocks = pool.retired;
  const uint64_t usable_blocks =
      pool.num_blocks > kGcReserveBlocks ? pool.num_blocks - kGcReserveBlocks : 0;
  const uint64_t raw = usable_blocks * pool.data_slots_per_block;
  snap.exported_pages =
      static_cast<uint64_t>(static_cast<double>(raw) * (1.0 - pool.config.op_fraction));
  snap.valid_pages = pool.valid_pages;
  uint64_t pec_sum = 0;
  uint64_t pec_sq_sum = 0;
  for (uint32_t id = 0; id < block_owner_.size(); ++id) {
    if (block_owner_[id] != pool_id) {
      continue;
    }
    const uint32_t pec = nand_.block_info(id).pec;
    pec_sum += pec;
    pec_sq_sum += static_cast<uint64_t>(pec) * pec;
    snap.max_pec = std::max(snap.max_pec, pec);
    if (block_sealed_[id] != 0) {
      ++snap.sealed_blocks;
      if (block_valid_[id] < pool.data_slots_per_block) {
        ++snap.gc_candidates;
      }
    } else if (nand_.block_info(id).programmed_pages > 0) {
      ++snap.unsealed_blocks;
    }
  }
  snap.mean_pec = pool.num_blocks == 0
                      ? 0.0
                      : static_cast<double>(pec_sum) / static_cast<double>(pool.num_blocks);
  if (pool.num_blocks > 0) {
    // Population variance in integer sums: E[X^2] - E[X]^2 with exact
    // uint64 accumulators, so the result is schedule-independent.
    const double n = static_cast<double>(pool.num_blocks);
    const double mean_sq = static_cast<double>(pec_sq_sum) / n;
    snap.pec_variance = std::max(0.0, mean_sq - snap.mean_pec * snap.mean_pec);
  }
  snap.free_page_fraction =
      snap.exported_pages > 0
          ? static_cast<double>(snap.exported_pages -
                                std::min(snap.valid_pages, snap.exported_pages)) /
                static_cast<double>(snap.exported_pages)
          : 0.0;
  return snap;
}

Ftl::StreamStats& Ftl::StreamEntry(uint32_t stream) {
  assert(stream <= 255);
  if (stream_stats_.size() <= stream) {
    stream_stats_.resize(stream + 1);
  }
  return stream_stats_[stream];
}

void Ftl::RegisterStream(uint32_t stream, const std::string& name) {
  if (stream == 0 || stream > 255) {
    return;  // tag 0 is the shared stream; larger tags cannot be stamped
  }
  StreamEntry(stream).name = name;
}

Ftl::StreamStats Ftl::StreamStatsOf(uint32_t stream) const {
  if (stream < stream_stats_.size()) {
    return stream_stats_[stream];
  }
  return StreamStats{};
}

double Ftl::PecVariance() const {
  uint64_t n = 0;
  uint64_t pec_sum = 0;
  uint64_t pec_sq_sum = 0;
  for (uint32_t id = 0; id < block_owner_.size(); ++id) {
    if (block_owner_[id] == kNoPool) {
      continue;
    }
    const uint32_t pec = nand_.block_info(id).pec;
    ++n;
    pec_sum += pec;
    pec_sq_sum += static_cast<uint64_t>(pec) * pec;
  }
  if (n == 0) {
    return 0.0;
  }
  const double mean = static_cast<double>(pec_sum) / static_cast<double>(n);
  const double mean_sq = static_cast<double>(pec_sq_sum) / static_cast<double>(n);
  return std::max(0.0, mean_sq - mean * mean);
}

bool Ftl::IsTainted(uint64_t lba) const {
  const auto loc = l2p_.Find(lba);
  return loc.has_value() && loc->tainted;
}

uint32_t Ftl::PoolOf(uint64_t lba) const {
  const auto loc = l2p_.Find(lba);
  assert(loc.has_value());
  return loc->pool;
}

Result<double> Ftl::PredictLbaRber(uint64_t lba, double ahead_years) const {
  const auto loc = l2p_.Find(lba);
  if (!loc.has_value()) {
    return Status(StatusCode::kNotFound, "unmapped LBA");
  }
  return nand_.PredictRber({loc->block, loc->page}, ahead_years);
}

Status Ftl::CheckInvariants() const {
  auto fail = [](const std::string& what) {
    return Status(StatusCode::kFailedPrecondition, "invariant violated: " + what);
  };

  // The audit walks the flat arrays in ascending order so that when several
  // invariants are broken at once, every run reports the same first
  // violation -- the report feeds golden-output test logs.

  // Block ownership is disjoint by construction (one owner word per block);
  // verify the per-pool counts agree with the owner array.
  std::vector<uint32_t> owned_count(pools_.size(), 0);
  for (uint32_t id = 0; id < block_owner_.size(); ++id) {
    const uint32_t owner = block_owner_[id];
    if (owner == kNoPool) {
      continue;
    }
    if (owner >= pools_.size()) {
      return fail("block " + std::to_string(id) + " owned by unknown pool");
    }
    ++owned_count[owner];
  }
  for (uint32_t p = 0; p < pools_.size(); ++p) {
    if (owned_count[p] != pools_[p].num_blocks) {
      return fail("pool '" + pools_[p].config.name + "' num_blocks=" +
                  std::to_string(pools_[p].num_blocks) + " but owner entries=" +
                  std::to_string(owned_count[p]));
    }
  }

  // Forward map agrees with reverse maps (ascending LBA order).
  Status forward = Status::Ok();
  l2p_.ForEachMapped([&](uint64_t lba, const PhysLoc& loc) {
    if (!forward.ok()) {
      return;
    }
    if (loc.pool >= pools_.size()) {
      forward = fail("mapping with bad pool id");
      return;
    }
    const Pool& pool = pools_[loc.pool];
    if (!OwnedBy(loc.block, loc.pool)) {
      forward = fail("LBA " + std::to_string(lba) + " maps to unowned block");
      return;
    }
    if (loc.page >= PagesPerBlock(pool) || P2lRow(loc.block)[loc.page] != lba) {
      forward = fail("LBA " + std::to_string(lba) + " reverse entry mismatch");
    }
  });
  if (!forward.ok()) {
    return forward;
  }

  // Per-block and per-pool counters, and free-list hygiene.
  for (uint32_t p = 0; p < pools_.size(); ++p) {
    const Pool& pool = pools_[p];
    uint64_t pool_valid = 0;
    for (uint32_t id = 0; id < block_owner_.size(); ++id) {
      if (block_owner_[id] != p) {
        continue;
      }
      const uint64_t* row = P2lRow(id);
      uint32_t live = 0;
      for (uint32_t page = 0; page < PagesPerBlock(pool); ++page) {
        const uint64_t lba = row[page];
        if (lba == kLbaInvalid || lba == kLbaParity) {
          continue;
        }
        const auto loc = l2p_.Find(lba);
        if (!loc.has_value() || loc->pool != p || loc->block != id || loc->page != page) {
          // A stale reverse entry is only legal when the LBA now lives
          // elsewhere (overwrite left the old copy behind until GC) or was
          // trimmed; either way it awaits GC.
          continue;
        }
        ++live;
      }
      if (live != block_valid_[id]) {
        return fail("block " + std::to_string(id) + " valid=" +
                    std::to_string(block_valid_[id]) +
                    " but live reverse entries=" + std::to_string(live));
      }
      pool_valid += block_valid_[id];
    }
    if (pool_valid != pool.valid_pages) {
      return fail("pool '" + pool.config.name + "' valid_pages=" +
                  std::to_string(pool.valid_pages) + " but sum=" + std::to_string(pool_valid));
    }
    for (uint32_t id : pool.free_blocks) {
      if (!OwnedBy(id, p)) {
        return fail("free list references unowned block");
      }
      if (block_valid_[id] != 0) {
        return fail("free block " + std::to_string(id) + " holds valid data");
      }
      if (nand_.block_info(id).programmed_pages != 0) {
        return fail("free block " + std::to_string(id) + " is programmed");
      }
      if (pool.IsActive(id)) {
        return fail("active block is also on the free list");
      }
    }
  }
  return Status::Ok();
}

std::vector<uint64_t> Ftl::LbasInPool(uint32_t pool_id) const {
  std::vector<uint64_t> lbas;
  // ForEachMapped walks ascending LBAs, so the scrub order is deterministic
  // without an explicit sort.
  l2p_.ForEachMapped([&](uint64_t lba, const PhysLoc& loc) {
    if (loc.pool == pool_id) {
      lbas.push_back(lba);
    }
  });
  return lbas;
}

}  // namespace sos
