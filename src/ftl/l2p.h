// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Flat logical-to-physical mapping table.
//
// The FTL's forward map is the hottest structure in the simulator: every
// host read/write, every GC relocation and every recovery replay goes
// through it. Host LBAs are dense (the file system hands them out from a
// bump allocator plus a LIFO free list, src/host/file_system.h), so a flat
// vector indexed by LBA beats a hash map on both lookup latency and cache
// footprint -- see DESIGN.md §11 for the measured gap and the layout
// rationale.
//
// Each entry packs one PhysLoc into a single uint64_t:
//
//     bit 63      valid     (0 = unmapped; an all-zero word is "absent")
//     bit 62      tainted   (sticky corruption marker, travels with the map)
//     bits 52-61  pool      (10 bits, up to 1024 pools)
//     bits 20-51  block     (32 bits)
//     bits 0-19   page      (20 bits, up to 1M pages per block)
//
// The table grows on demand (amortized doubling) so arbitrary test LBAs
// still work; Clear() keeps capacity so recovery does not reallocate.
//
// ReferenceL2pMap is the deliberately boring hash-map implementation of the
// same interface. It exists for the equivalence property tests
// (tests/l2p_equivalence_test.cc) and as the perfcheck baseline the flat
// table is measured against; production code uses L2pTable only.

#ifndef SOS_SRC_FTL_L2P_H_
#define SOS_SRC_FTL_L2P_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/common/container_util.h"

namespace sos {

// Physical location of one logical page.
struct PhysLoc {
  uint32_t pool = 0;
  uint32_t block = 0;
  uint32_t page = 0;
  // Sticky corruption marker; travels with the mapping through relocations,
  // cleared by a fresh host write.
  bool tainted = false;

  bool operator==(const PhysLoc&) const = default;
};

class L2pTable {
 public:
  static constexpr uint64_t kValidBit = 1ull << 63;
  static constexpr uint64_t kTaintedBit = 1ull << 62;
  static constexpr uint32_t kPoolBits = 10;
  static constexpr uint32_t kPageBits = 20;

  static uint64_t Pack(const PhysLoc& loc) {
    assert(loc.pool < (1u << kPoolBits));
    assert(loc.page < (1u << kPageBits));
    return kValidBit | (loc.tainted ? kTaintedBit : 0) |
           (static_cast<uint64_t>(loc.pool) << (kPageBits + 32)) |
           (static_cast<uint64_t>(loc.block) << kPageBits) |
           static_cast<uint64_t>(loc.page);
  }

  static PhysLoc Unpack(uint64_t entry) {
    PhysLoc loc;
    loc.pool = static_cast<uint32_t>((entry >> (kPageBits + 32)) & ((1u << kPoolBits) - 1));
    loc.block = static_cast<uint32_t>((entry >> kPageBits) & 0xFFFFFFFFull);
    loc.page = static_cast<uint32_t>(entry & ((1u << kPageBits) - 1));
    loc.tainted = (entry & kTaintedBit) != 0;
    return loc;
  }

  // Pre-sizes the dense prefix (e.g. to the device's exported capacity) so
  // the steady-state write path never reallocates.
  void Reserve(uint64_t lbas) {
    if (lbas > entries_.size()) {
      entries_.resize(lbas, 0);
    }
  }

  bool Contains(uint64_t lba) const {
    return lba < entries_.size() && entries_[lba] != 0;
  }

  std::optional<PhysLoc> Find(uint64_t lba) const {
    if (!Contains(lba)) {
      return std::nullopt;
    }
    return Unpack(entries_[lba]);
  }

  void Set(uint64_t lba, const PhysLoc& loc) {
    if (lba >= entries_.size()) {
      // Amortized doubling keeps a stray large LBA from forcing per-insert
      // reallocation while staying dense for bump-allocated hosts.
      uint64_t grown = entries_.empty() ? 64 : entries_.size() * 2;
      entries_.resize(std::max<uint64_t>(lba + 1, grown), 0);
    }
    mapped_ += entries_[lba] == 0 ? 1u : 0u;
    entries_[lba] = Pack(loc);
  }

  // Returns false when the LBA was not mapped.
  bool Erase(uint64_t lba) {
    if (!Contains(lba)) {
      return false;
    }
    entries_[lba] = 0;
    --mapped_;
    return true;
  }

  uint64_t mapped() const { return mapped_; }

  // Drops every mapping but keeps capacity (recovery wipes and refills).
  void Clear() {
    std::fill(entries_.begin(), entries_.end(), 0);
    mapped_ = 0;
  }

  // Visits mapped entries in ascending LBA order -- the same order the old
  // hash-map implementation produced via SortedKeys(), so audit/export walks
  // stay byte-identical.
  template <typename Fn>
  void ForEachMapped(Fn&& fn) const {
    for (uint64_t lba = 0; lba < entries_.size(); ++lba) {
      if (entries_[lba] != 0) {
        fn(lba, Unpack(entries_[lba]));
      }
    }
  }

 private:
  std::vector<uint64_t> entries_;  // 0 = unmapped (valid bit clear)
  uint64_t mapped_ = 0;
};

// Hash-map shadow model with the identical interface; see file comment.
class ReferenceL2pMap {
 public:
  void Reserve(uint64_t lbas) { map_.reserve(lbas); }

  bool Contains(uint64_t lba) const { return map_.contains(lba); }

  std::optional<PhysLoc> Find(uint64_t lba) const {
    auto it = map_.find(lba);
    if (it == map_.end()) {
      return std::nullopt;
    }
    return it->second;
  }

  void Set(uint64_t lba, const PhysLoc& loc) { map_[lba] = loc; }

  bool Erase(uint64_t lba) { return map_.erase(lba) > 0; }

  uint64_t mapped() const { return map_.size(); }

  void Clear() { map_.clear(); }

  template <typename Fn>
  void ForEachMapped(Fn&& fn) const {
    for (const uint64_t lba : SortedKeys(map_)) {
      fn(lba, map_.at(lba));
    }
  }

 private:
  std::unordered_map<uint64_t, PhysLoc> map_;
};

}  // namespace sos

#endif  // SOS_SRC_FTL_L2P_H_
