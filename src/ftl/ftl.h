// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Pool-based, page-mapped flash translation layer.
//
// The FTL manages one NAND die as a set of *pools*, each with its own
// programming mode, ECC strength, parity policy, and wear-leveling setting.
// This is the device half of SOS's Figure 2: the SYS pool runs pseudo-QLC
// with strong ECC plus intra-block XOR parity stripes; the SPARE pool runs
// native PLC with weak/no ECC and wear leveling disabled (paper §4.2-4.3).
// Pure single-pool configurations give the TLC/QLC baselines of E12.
//
// Policies implemented:
//   - Garbage collection: greedy (max invalid pages) or cost-benefit
//     ((1-u)/(1+u) * age, Rosenblum-style), per-pool trigger thresholds.
//   - Dynamic wear leveling: when enabled, new blocks are allocated
//     lowest-PEC-first; when disabled, FIFO. Static wear leveling: when the
//     pool's PEC spread exceeds a threshold, cold data is moved off the
//     least-worn block so it re-enters rotation. The paper disables all of
//     this on SPARE ([73]: "wear leveling considered harmful").
//   - Intra-block parity (RAIN-style): every `parity_stripe`-th page of a
//     block stores the XOR of the preceding stripe; a page whose ECC fails
//     is rebuilt iff every other stripe member decodes.
//   - Retirement: a block is retired when its predicted RBER at the pool's
//     nominal retention exceeds what the pool's ECC can correct (or an
//     explicit RBER bound for ECC-less pools). Retired blocks may be
//     *resuscitated* into a sparser-mode pool (worn PLC reborn as
//     pseudo-TLC, paper §4.3 / FlexFS [76]); otherwise capacity shrinks and
//     listeners are notified (capacity variance, [74]).
//
// Degradation semantics: a read whose ECC fails and cannot be rescued
// returns the *corrupted* payload with `degraded=true` rather than an
// error -- approximate storage delivers bits, not failures. Relocations
// (GC/migration) re-encode whatever the read path produced, so corruption
// accumulated on an approximate pool survives moves, exactly as it would
// through a real controller that cannot correct it.

#ifndef SOS_SRC_FTL_FTL_H_
#define SOS_SRC_FTL_FTL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/ecc/ecc_scheme.h"
#include "src/flash/nand_device.h"
#include "src/ftl/l2p.h"
#include "src/host/placement.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace sos {

enum class GcPolicy : uint8_t {
  kGreedy,       // victim = most invalid pages
  kCostBenefit,  // victim = max (1-u)/(1+u) * age
};

// How the FTL consumes host placement directives (DESIGN.md §12).
enum class PlacementPolicy : uint8_t {
  // Directives select only the pool; stream tags and lifetime hints are
  // recorded (accounting) but never change block allocation or append-point
  // selection. Bit-for-bit the historical behavior -- the goldens' mode.
  kLegacy = 0,
  // Per-handle append points: each stream tag gets its own active block
  // inside the pool (FDP-style reclaim units), so data written under one
  // handle dies together. Block allocation stays wear-agnostic.
  kStatic = 1,
  // kStatic plus lifetime-aware block allocation: short-lived streams draw
  // the most-worn free block, long-lived streams the youngest.
  kLifetime = 2,
};

const char* PlacementPolicyName(PlacementPolicy policy);

// Per-write placement directive, the FTL half of the host's PlacementHandle:
// the device maps an open handle to {pool, stream tag, lifetime} and passes
// it down on every write. `stream` 0 is the shared/untagged stream (internal
// writes, parity, legacy callers); device handles map to tags 1..255.
struct WriteDirective {
  uint32_t pool_id = 0;
  LifetimeHint lifetime = LifetimeHint::kUnknown;
  uint32_t stream = 0;
};

struct FtlPoolConfig {
  std::string name = "pool";
  CellTech mode = CellTech::kQlc;
  EccScheme ecc = EccScheme::FromPreset(EccPreset::kBch);
  double share = 1.0;            // fraction of physical blocks at format time
  bool wear_leveling = true;     // dynamic + static WL toggle
  uint32_t parity_stripe = 0;    // every Nth page is XOR parity; 0 = none
  double op_fraction = 0.07;     // over-provisioned fraction of pool capacity
  double nominal_retention_years = 1.0;  // retirement look-ahead
  // Explicit retirement RBER bound; 0 derives it from the ECC scheme. Pools
  // with EccPreset::kNone must set this (there is no ECC limit to derive).
  double retire_rber = 0.0;
  // When set, retired blocks change mode and join the pool with this name.
  std::optional<std::string> resuscitate_into;
  uint32_t gc_threshold_blocks = 3;  // GC when free blocks <= this
  uint32_t min_live_blocks = 4;      // below this the pool is dead (no writes)
  // READ-RETRY attempts after an ECC failure: each re-reads the page with
  // reference voltages tracking the retention drift (lower RBER, +tR
  // latency). Real controllers use several; pointless without ECC.
  uint32_t read_retries = 0;
  // Hot/cold stream separation: relocated (GC/WL/refresh) data is appended
  // to a dedicated "cold" active block instead of mixing with fresh host
  // writes. Cold data clusters with cold data, so future GC victims are
  // either mostly-hot (cheap: mostly invalid) or mostly-cold (skipped),
  // cutting write amplification under skewed workloads.
  bool hot_cold_separation = true;
  // Fidelity contract for host reads (paper's SYS-vs-SPARE split): a strict
  // pool turns an unrescued ECC failure into a loud kDataLoss error instead
  // of serving corrupted bytes. Applies to host-facing reads only; internal
  // relocations still move the degraded bytes (with the taint marker) so GC
  // never wedges on a corrupt page.
  bool strict_fidelity = false;
};

struct FtlConfig {
  NandConfig nand;
  std::vector<FtlPoolConfig> pools;
  GcPolicy gc_policy = GcPolicy::kGreedy;
  // Static WL kicks in when (max PEC - min PEC) exceeds this fraction of the
  // mode's endurance.
  double static_wl_spread = 0.10;
  // Two-phase block evacuation: GC/WL first batch-reads every valid page of
  // the victim (one NandDevice::ReadRun per page run), then decodes and
  // re-appends. Fewer device calls and better locality, but a *different*
  // (still deterministic) NAND op schedule than the interleaved
  // read-append-read-append default: clock timestamps, and therefore
  // retention-driven error samples, diverge from the historical goldens.
  // Off by default so existing golden outputs stay byte-identical; flip it
  // on for fleet-scale throughput runs (see DESIGN.md §11).
  bool batched_relocation = false;
  // How placement directives steer the write path (see PlacementPolicy).
  // kLegacy keeps the historical schedule byte-identical.
  PlacementPolicy placement_policy = PlacementPolicy::kLegacy;
};

struct FtlReadResult {
  std::vector<uint8_t> data;        // empty in metadata-only simulations
  uint64_t residual_bit_errors = 0; // post-ECC errors in `data`
  bool degraded = false;            // ECC failed and parity could not rescue
  bool parity_rescued = false;
  // True when the *stored* copy is known to have absorbed unrecoverable
  // corruption at some earlier relocation (GC, migration, refresh): the
  // controller re-encoded degraded bytes, so even an error-free read of the
  // current physical page cannot return the original data. This is the
  // signal SOS's cloud-repair path keys on (paper §4.3).
  bool tainted = false;
  double raw_rber = 0.0;
  uint32_t pool_id = 0;
};

// Cumulative FTL operation counters. One instance lives inside each pool;
// Ftl::stats() sums them into the device-wide aggregate and
// Ftl::pool_stats() exposes the per-pool view. Mutation is confined to the
// owning Ftl (friend); everything else reads through the accessors or
// exports via Snapshot()/ToMetrics().
class FtlStats {
 public:
  uint64_t host_writes() const { return host_writes_; }      // host data pages accepted
  uint64_t nand_writes() const { return nand_writes_; }      // physical pages programmed (all causes)
  uint64_t parity_writes() const { return parity_writes_; }
  uint64_t gc_relocations() const { return gc_relocations_; }
  uint64_t wl_relocations() const { return wl_relocations_; }
  uint64_t migrations() const { return migrations_; }        // cross-pool moves
  uint64_t refreshes() const { return refreshes_; }          // in-place scrub rewrites
  uint64_t gc_erases() const { return gc_erases_; }
  uint64_t background_collections() const { return background_collections_; }  // idle-GC victims
  uint64_t retired_blocks() const { return retired_blocks_; }
  uint64_t resuscitated_blocks() const { return resuscitated_blocks_; }
  uint64_t ecc_failures() const { return ecc_failures_; }    // pages whose ECC decode failed
  uint64_t retry_recoveries() const { return retry_recoveries_; }  // recovered by read-retry
  uint64_t parity_rescues() const { return parity_rescues_; }
  uint64_t degraded_reads() const { return degraded_reads_; }  // reads returned with residual errors
  uint64_t grown_bad_blocks() const { return grown_bad_blocks_; }  // dropped after program/erase failure
  uint64_t lost_pages() const { return lost_pages_; }  // mappings dropped: data unrecoverable

  double WriteAmplification() const {
    return host_writes_ > 0
               ? static_cast<double>(nand_writes_) / static_cast<double>(host_writes_)
               : 0.0;
  }

  // Point-in-time copy; names the intent at call sites that stash stats.
  FtlStats Snapshot() const { return *this; }

  // Registers one counter per field under `prefix` ("ftl." for the
  // aggregate, "ftl.pool.<name>." per pool) plus a write-amplification
  // gauge. Field order here is the export order.
  void ToMetrics(obs::MetricRegistry& registry, const std::string& prefix) const;

  bool operator==(const FtlStats&) const = default;

 private:
  friend class Ftl;

  void Accumulate(const FtlStats& other);

  uint64_t host_writes_ = 0;
  uint64_t nand_writes_ = 0;
  uint64_t parity_writes_ = 0;
  uint64_t gc_relocations_ = 0;
  uint64_t wl_relocations_ = 0;
  uint64_t migrations_ = 0;
  uint64_t refreshes_ = 0;
  uint64_t gc_erases_ = 0;
  uint64_t background_collections_ = 0;
  uint64_t retired_blocks_ = 0;
  uint64_t resuscitated_blocks_ = 0;
  uint64_t ecc_failures_ = 0;
  uint64_t retry_recoveries_ = 0;
  uint64_t parity_rescues_ = 0;
  uint64_t degraded_reads_ = 0;
  uint64_t grown_bad_blocks_ = 0;
  uint64_t lost_pages_ = 0;
};

// What Ftl::RecoverFromFlash() found while rebuilding volatile state from
// the durable OOB metadata after a power cut.
struct RecoveryReport {
  uint64_t scanned_pages = 0;      // programmed pages whose OOB was examined
  uint64_t replayed_pages = 0;     // mappings reinstalled (winning copies)
  uint64_t orphans_reclaimed = 0;  // superseded copies demoted to garbage
  uint64_t parity_pages = 0;       // parity slots re-recognized
  uint64_t open_blocks_sealed = 0; // partially-programmed blocks crash-sealed
  uint64_t unlabeled_blocks = 0;   // blocks owned by no pool (never formatted
                                   // or dropped as grown-bad pre-cut)

  bool operator==(const RecoveryReport&) const = default;
};

// Point-in-time view of one pool, for benches and the SOS daemons.
struct PoolSnapshot {
  std::string name;
  CellTech mode = CellTech::kQlc;
  uint32_t total_blocks = 0;     // currently owned (live, incl. free)
  uint32_t free_blocks = 0;
  uint32_t retired_blocks = 0;   // retired while owned by this pool
  uint64_t exported_pages = 0;   // host-visible capacity in pages
  uint64_t valid_pages = 0;      // live host data
  double mean_pec = 0.0;
  uint32_t max_pec = 0;
  double free_page_fraction = 0.0;  // (exported - valid) / exported
  // Block-state breakdown (diagnostics; sums to total_blocks):
  uint32_t sealed_blocks = 0;       // fully programmed
  uint32_t gc_candidates = 0;       // sealed with at least one invalid page
  uint32_t unsealed_blocks = 0;     // partially programmed (active block + 0)
  // Population variance of PEC across the pool's owned blocks -- the
  // wear-variance measure the lifetime-aware allocator aims to widen
  // usefully (worn blocks absorb short-lived churn) without runaway.
  double pec_variance = 0.0;
};

class Ftl {
 public:
  // `clock` must outlive the FTL.
  Ftl(const FtlConfig& config, SimClock* clock);

  Ftl(const Ftl&) = delete;
  Ftl& operator=(const Ftl&) = delete;

  // --- Host interface ------------------------------------------------------

  // Writes one logical page under a placement directive. Overwrites relocate
  // the LBA into the directive's pool regardless of where it lived before.
  [[nodiscard]] Status Write(uint64_t lba, std::span<const uint8_t> data,
                             const WriteDirective& directive);

  // Undirected write into `pool_id` (the shared stream, no lifetime hint) --
  // internal callers and pre-directive tooling.
  [[nodiscard]] Status Write(uint64_t lba, std::span<const uint8_t> data, uint32_t pool_id) {
    return Write(lba, data, WriteDirective{pool_id, LifetimeHint::kUnknown, 0});
  }

  // Reads a logical page through the owning pool's ECC/parity path.
  [[nodiscard]] Result<FtlReadResult> Read(uint64_t lba);

  // --- Batched host entry points (serve-layer coalescing, DESIGN.md §14) ---
  //
  // Op-schedule-equivalent to the serial loops they replace: per-page NAND
  // semantics (clock advance, fault gating, error sampling, bookkeeping
  // order) are exactly those of Read()/Write() issued in sequence -- only
  // the number of device calls shrinks. The sim-latency histograms record
  // one observation per physical run rather than one per page (the honest
  // cost model for a queued batch); nothing on the historical single-page
  // path changes, so all pre-existing goldens stay byte-identical.

  // Reads `count` consecutive LBAs; result i is start_lba + i. Physically
  // contiguous mappings are fetched with one NandDevice::ReadRun per
  // stretch; unmapped LBAs yield kNotFound in their slot.
  [[nodiscard]] std::vector<Result<FtlReadResult>> ReadRun(uint64_t start_lba, uint32_t count);

  // Writes pages[i] at start_lba + i under `directive`, filling each
  // contiguous free data-slot stretch of the active block with one
  // NandDevice::ProgramRun. Mappings commit page by page exactly as the
  // serial loop would; on error `*written` tells how many leading pages
  // were acknowledged (their mappings installed) and the status describes
  // the first failure. After a mid-run power cut the final physically
  // landed page is conservatively reported unacknowledged (the torn-write
  // window): recovery may surface either version, which is the same
  // contract the serial path gives an interrupted caller.
  [[nodiscard]] Status WriteRun(uint64_t start_lba, std::span<const std::vector<uint8_t>> pages,
                                const WriteDirective& directive, uint64_t* written);

  // Invalidates a logical page.
  [[nodiscard]] Status Trim(uint64_t lba);

  // Moves a logical page under a placement directive (classification
  // change). Reads through the normal path, so undetected corruption travels
  // along. A no-op (Ok, no flash ops) when the LBA already lives in the
  // directive's pool.
  [[nodiscard]] Status Migrate(uint64_t lba, const WriteDirective& directive);

  // Undirected pool move (shared stream, no lifetime hint).
  [[nodiscard]] Status Migrate(uint64_t lba, uint32_t target_pool) {
    return Migrate(lba, WriteDirective{target_pool, LifetimeHint::kUnknown, 0});
  }

  // Rewrites a logical page in place (same pool, fresh physical page),
  // resetting its retention clock. The scrubber's preemptive rescue of
  // dangerously degraded data (paper §4.3).
  [[nodiscard]] Status Refresh(uint64_t lba);

  // Opportunistic idle-time garbage collection: tops every pool's free list
  // up to twice its GC threshold, collecting at most `max_blocks_per_pool`
  // victims each. Work done here is work foreground writes will not stall
  // on. Returns the number of blocks collected.
  uint32_t BackgroundCollect(uint32_t max_blocks_per_pool = 2);

  // --- Crash recovery ------------------------------------------------------

  // Mount path after a simulated power cut: powers the die back on, discards
  // all volatile state (mapping table, free lists, active blocks, open
  // parity stripes) and rebuilds it from durable flash state alone -- block
  // owner labels plus the per-page OOB written at program time. Where the
  // cut left several copies of an LBA, the highest write-sequence copy wins
  // and the rest become reclaimable garbage. Partially-programmed blocks are
  // crash-sealed (never appended to again; GC reclaims them normally).
  // Trimmed LBAs whose old copies are still on flash resurrect -- this FTL
  // keeps no trim journal, which is the honest consequence documented in
  // DESIGN.md §10. Finishes with a full CheckInvariants() audit and fails
  // loudly if the rebuilt state is inconsistent.
  [[nodiscard]] Status RecoverFromFlash();

  // Counters from the most recent RecoverFromFlash().
  const RecoveryReport& last_recovery() const { return last_recovery_; }

  // --- Capacity ------------------------------------------------------------

  // Host-visible capacity across pools, in pages.
  uint64_t ExportedPages() const;

  // Fired with the new ExportedPages() whenever retirement shrinks capacity.
  using CapacityListener = std::function<void(uint64_t exported_pages)>;
  void SetCapacityListener(CapacityListener listener) { capacity_listener_ = std::move(listener); }

  // --- Introspection (SOS daemons, benches, tests) -------------------------

  uint32_t PoolIdByName(const std::string& name) const;
  PoolSnapshot Snapshot(uint32_t pool_id) const;
  // Device-wide aggregate: the sum of every pool's counters.
  FtlStats stats() const;
  // Counters of one pool (GC/WL/migration activity is naturally per-pool).
  uint32_t num_pools() const { return static_cast<uint32_t>(pools_.size()); }
  const FtlStats& pool_stats(uint32_t pool_id) const { return pools_[pool_id].stats; }
  NandDevice& nand() { return nand_; }
  const NandDevice& nand() const { return nand_; }

  // Registers aggregate + per-pool counters and the simulated-latency
  // histograms under `prefix` (metric names: ftl.*, ftl.pool.<name>.*).
  // Under a non-legacy placement policy, also exports per-handle accounting
  // (ftl.handle.<label>.{host_writes,nand_writes,write_amplification}) and
  // wear variance (ftl.placement.pec_variance, per-pool variants); kLegacy
  // omits them so pre-directive goldens stay byte-identical.
  void ToMetrics(obs::MetricRegistry& registry, const std::string& prefix = "ftl.") const;

  // --- Placement streams (per-handle accounting) ---------------------------

  // Volatile per-stream write accounting. Pages are stamped with their
  // stream tag in RAM only (the durable OOB format is unchanged), so these
  // counters reset on crash recovery -- like any SSD's SMART-adjacent
  // per-handle telemetry.
  struct StreamStats {
    std::string name;           // metric label; empty = never registered
    uint64_t host_writes = 0;   // pages written via a directive with this tag
    uint64_t nand_writes = 0;   // + relocations of pages carrying this tag
    double WriteAmplification() const {
      return host_writes > 0
                 ? static_cast<double>(nand_writes) / static_cast<double>(host_writes)
                 : 0.0;
    }
  };

  // Names a stream tag for metric export (idempotent; re-registration
  // renames, counters persist across handle reuse). Tags must fit the
  // one-byte per-page stamp: 1..255.
  void RegisterStream(uint32_t stream, const std::string& name);

  // Stats for one stream tag (zeroes for tags never written).
  StreamStats StreamStatsOf(uint32_t stream) const;

  // Population variance of PEC across all pool-owned blocks of the die.
  double PecVariance() const;

  // Optional event trace (GC victim picks, migrations, block retirement and
  // resuscitation). `sink` must outlive the FTL; null disables tracing.
  void SetTraceSink(obs::TraceSink* sink) { trace_ = sink; }

  bool IsMapped(uint64_t lba) const { return l2p_.Contains(lba); }
  uint32_t PoolOf(uint64_t lba) const;

  // True when the stored copy of `lba` has absorbed unrecoverable corruption
  // during some past relocation (see FtlReadResult::tainted).
  bool IsTainted(uint64_t lba) const;

  // Predicted raw BER of the physical page backing `lba`, `ahead_years`
  // from now. kNotFound for unmapped LBAs.
  [[nodiscard]] Result<double> PredictLbaRber(uint64_t lba, double ahead_years) const;

  // All LBAs currently mapped into `pool_id` (scrub iteration).
  std::vector<uint64_t> LbasInPool(uint32_t pool_id) const;

  // Exhaustive internal consistency audit, used by stress tests:
  //  - every mapping entry points at a page whose reverse entry names it,
  //  - per-block valid counters equal the live reverse entries,
  //  - per-pool valid_pages equals the sum over its blocks,
  //  - free-listed blocks are erased and hold no valid data,
  //  - block ownership is disjoint across pools.
  // Returns kFailedPrecondition with a description on the first violation.
  [[nodiscard]] Status CheckInvariants() const;

 private:
  static constexpr uint64_t kLbaInvalid = ~0ull;
  static constexpr uint64_t kLbaParity = ~0ull - 1;

  // PageOob::flags bits (durable; recovery depends on them).
  static constexpr uint8_t kOobFlagParity = 1;
  static constexpr uint8_t kOobFlagTainted = 2;

  // Free blocks withheld from host writes so garbage collection always has
  // relocation targets. Without this reserve a burst of writes can consume
  // the last free block and wedge the pool permanently (GC needs somewhere
  // to move valid pages before it can erase a victim). The reserve is
  // excluded from exported capacity.
  static constexpr uint32_t kGcReserveBlocks = 2;

  // block_owner_ sentinel: block belongs to no pool (never formatted,
  // retired without resuscitation, or dropped as grown-bad).
  static constexpr uint32_t kNoPool = UINT32_MAX;

  // An append point: a partially-programmed block plus its open parity
  // stripe. Pools keep two -- one for host writes, one for relocated (cold)
  // data -- when hot/cold separation is on.
  struct ActiveSlot {
    std::optional<uint32_t> block;
    std::vector<uint8_t> stripe_xor;  // running parity of the open stripe
    uint32_t stripe_fill = 0;         // data pages since last parity write
  };

  struct Pool {
    FtlPoolConfig config;
    uint32_t data_slots_per_block = 0;  // pages per block minus parity slots
    double retire_rber = 0.0;           // resolved bound
    uint32_t num_blocks = 0;            // owned blocks (block_owner_ == this)
    std::deque<uint32_t> free_blocks;
    ActiveSlot active_host;
    ActiveSlot active_cold;             // used iff config.hot_cold_separation
    // Per-stream append points (FDP-style reclaim units), created lazily in
    // first-write order under non-legacy placement policies. Append-ordered
    // vector: deterministic iteration, tiny N (bounded by the handle table).
    std::vector<std::pair<uint32_t, ActiveSlot>> active_streams;
    uint32_t retired = 0;
    uint64_t valid_pages = 0;
    std::optional<uint32_t> resuscitate_pool;  // resolved target pool id
    FtlStats stats;                     // this pool's share of the counters
    // Memo of ShouldRetire's ErrorModel::Rber result keyed by PEC (all owned
    // blocks share the pool's mode and nominal retention, so PEC is the only
    // free input). Stores the exact computed double -- a hit replays the
    // identical value, so retirement decisions stay bit-for-bit the same.
    // Mutable: ShouldRetire is morally const. -1 marks an empty slot.
    mutable std::vector<double> retire_rber_by_pec;

    bool IsActive(uint32_t id) const {
      if ((active_host.block.has_value() && *active_host.block == id) ||
          (active_cold.block.has_value() && *active_cold.block == id)) {
        return true;
      }
      for (const auto& [tag, slot] : active_streams) {
        if (slot.block.has_value() && *slot.block == id) {
          return true;
        }
      }
      return false;
    }
  };

  bool IsParitySlot(const Pool& pool, uint32_t page) const;
  uint32_t PagesPerBlock(const Pool& pool) const;

  // Ensures `slot` has an active block with a free data slot; may run GC.
  // The lifetime hint steers which free block is allocated (kLifetime
  // policy). Returns false when the pool is out of writable space.
  bool EnsureWritable(uint32_t pool_id, ActiveSlot& slot, bool allow_gc, LifetimeHint lifetime);

  // Allocates the next block from the pool free list. Legacy behavior:
  // lowest-PEC-first under wear leveling, FIFO otherwise. Under
  // PlacementPolicy::kLifetime a declared lifetime overrides it: kShort
  // takes the most-worn free block, kLong the least-worn.
  std::optional<uint32_t> AllocateBlock(Pool& pool, LifetimeHint lifetime);

  // Picks the append slot for a write: relocated data goes to the cold slot
  // when the pool separates streams; under non-legacy placement policies a
  // nonzero stream tag gets its own per-handle slot.
  ActiveSlot& SlotFor(Pool& pool, bool cold, uint32_t stream);

  // Appends one data page to the chosen active slot. Handles parity slots,
  // retries transient program failures and drops grown-bad blocks. `tainted`
  // is stamped into the durable OOB so recovery preserves the corruption
  // marker; `stream`/`lifetime` feed per-handle accounting and (non-legacy
  // policies) slot/block selection. Fails on physical exhaustion or power
  // loss.
  [[nodiscard]] Result<PhysLoc> AppendPage(uint32_t pool_id, uint64_t lba, std::span<const uint8_t> data,
                             bool allow_gc, bool cold, bool tainted,
                             uint32_t stream = 0,
                             LifetimeHint lifetime = LifetimeHint::kUnknown);

  // Writes the parity page for the slot's open stripe. Called when the
  // append cursor reaches a parity slot.
  [[nodiscard]] Status WriteParityPage(uint32_t pool_id, ActiveSlot& slot);

  void InvalidateLoc(const PhysLoc& loc);

  // Garbage collection: frees at least one block if possible.
  bool CollectGarbage(uint32_t pool_id);
  std::optional<uint32_t> PickGcVictim(uint32_t pool_id) const;
  // Moves all valid pages off `block_id`, erases it, and returns it to the
  // free list (or retires it).
  [[nodiscard]] Status EvacuateAndRecycle(uint32_t pool_id, uint32_t block_id, bool count_as_wl);

  // Static wear leveling pass; no-op when disabled or spread is small.
  void MaybeStaticWearLevel(uint32_t pool_id);

  // Erases a block and either returns it to the pool, retires it into a
  // resuscitation target, or drops it (capacity shrink).
  void RecycleBlock(uint32_t pool_id, uint32_t block_id);

  // Grown bad block: a program or erase on `block_id` failed permanently.
  // Relocates whatever valid data it still holds (reads keep working on a
  // stuck block), drops unrecoverable mappings as lost, removes the block
  // from the pool and clears its durable label. Propagates kPowerLost.
  [[nodiscard]] Status DropBadBlock(uint32_t pool_id, uint32_t block_id);

  // True when the block has worn past the pool's retirement bound.
  bool ShouldRetire(const Pool& pool, uint32_t block_id) const;

  void NotifyCapacity();

  // Internal read used by relocation: returns the bytes to rewrite plus
  // degradation bookkeeping.
  [[nodiscard]] Result<FtlReadResult> ReadInternal(uint64_t lba, bool count_stats);

  // Everything downstream of the initial NAND read: ECC decode, read-retry,
  // parity rescue, fidelity policy. Split out so the batched relocation path
  // can feed it raw results from a ReadRun.
  [[nodiscard]] Result<FtlReadResult> DecodeRead(const PhysLoc& loc, ReadResult raw,
                                                 bool count_stats);

  // One item of relocation work: re-appends `lba` (read as `read`) into
  // `pool_id` and reinstalls the mapping. Shared by the serial and batched
  // evacuation paths and by DropBadBlock's rescue loop.
  [[nodiscard]] Status RelocatePage(uint32_t pool_id, uint64_t lba,
                                    const FtlReadResult& read, bool count_as_wl);

  // Emits one trace event (no-op when no sink is attached).
  void Trace(obs::TraceEvent event);

  // --- Flat per-page / per-block metadata (struct-of-arrays) ---------------
  //
  // All four block arrays are indexed by NAND block id; the reverse map is a
  // single flat vector with a fixed per-block stride of `page_stride_`
  // entries (the die's native-mode page count, an upper bound for every
  // pool mode). See DESIGN.md §11 for the layout diagram.

  uint64_t* P2lRow(uint32_t block) { return &p2l_[static_cast<size_t>(block) * page_stride_]; }
  const uint64_t* P2lRow(uint32_t block) const {
    return &p2l_[static_cast<size_t>(block) * page_stride_];
  }
  bool OwnedBy(uint32_t block, uint32_t pool_id) const {
    return block < block_owner_.size() && block_owner_[block] == pool_id;
  }
  // Wipes a block's whole reverse-map row (full stride, so stale entries
  // from a previous, denser mode can never leak) and zeroes its counters.
  void ResetBlockRow(uint32_t block);

  FtlConfig config_;
  SimClock* clock_;
  NandDevice nand_;
  std::vector<Pool> pools_;
  L2pTable l2p_;
  uint32_t page_stride_ = 0;               // p2l_ entries per block
  std::vector<uint64_t> p2l_;              // reverse map, kLba* sentinels
  // Volatile per-page stream tag, parallel to p2l_ (same stride). Not part
  // of the durable OOB format: zeroed wholesale by RecoverFromFlash, so
  // per-handle accounting restarts after a power cut.
  std::vector<uint8_t> page_stream_;
  std::vector<uint32_t> block_owner_;      // pool id or kNoPool
  std::vector<uint32_t> block_valid_;      // live data pages per block
  std::vector<SimTimeUs> block_last_write_;
  std::vector<uint8_t> block_sealed_;      // bool; fully programmed
  CapacityListener capacity_listener_;
  obs::TraceSink* trace_ = nullptr;
  // Simulated-time latency distributions for the host-facing entry points
  // and for whole GC passes (see obs/scoped_latency.h).
  obs::Histogram read_latency_ = obs::Histogram::LatencyUs();
  obs::Histogram write_latency_ = obs::Histogram::LatencyUs();
  obs::Histogram gc_latency_ = obs::Histogram::LatencyUs();
  bool in_relocation_ = false;  // guards GC re-entry
  uint64_t last_exported_pages_ = 0;
  // Monotonic write sequence stamped into every page's OOB; recovery picks
  // the highest-sequence copy of each LBA as the live one.
  uint64_t write_seq_ = 0;
  RecoveryReport last_recovery_;
  // Per-stream accounting, indexed by tag (grown on demand). Entry 0 is the
  // shared stream; it exists but is never exported.
  std::vector<StreamStats> stream_stats_;

  // Grows stream_stats_ to cover `stream` and returns the entry.
  StreamStats& StreamEntry(uint32_t stream);
};

}  // namespace sos

#endif  // SOS_SRC_FTL_FTL_H_
