// Copyright (c) 2026 The SOS Authors. MIT License.

#include "src/carbon/market.h"

#include <array>

namespace sos {
namespace {

// Figure 1 shares: smartphone 38%, SSD 32%, memory card 8%, tablet 12%,
// other 10% (the figure labels 38/32/8; tablet+other split chosen so that
// phones+tablets make the paper's "approximately half").
//
// Replacement lifetimes: phones 2-3 years ([41-43]), tablets slightly
// longer, SSDs ~5 (warranty [29][30]), memory cards 5-10 ([33][34]).
// Wear utilization of mobile flash over its service life: ~5% ([38]).
constexpr std::array<MarketSegment, 5> kSegments = {{
    {"smartphone", 0.38, 2.5, 0.05, true},
    {"ssd", 0.32, 5.0, 0.25, false},
    {"memory card", 0.08, 7.0, 0.10, true},
    {"tablet", 0.12, 3.0, 0.05, true},
    {"other", 0.10, 4.0, 0.15, false},
}};

}  // namespace

std::span<const MarketSegment> FlashMarketSegments() { return kSegments; }

double PersonalBitShare() {
  double share = 0.0;
  for (const auto& seg : kSegments) {
    if (seg.personal) {
      share += seg.bit_share;
    }
  }
  return share;
}

double PersonalReplacementsOver(double horizon_years) {
  double weighted = 0.0;
  double total_share = 0.0;
  for (const auto& seg : kSegments) {
    if (seg.personal) {
      weighted += seg.bit_share * (horizon_years / seg.replacement_years);
      total_share += seg.bit_share;
    }
  }
  return total_share > 0.0 ? weighted / total_share : 0.0;
}

double PersonalWearUtilization() {
  double weighted = 0.0;
  double total_share = 0.0;
  for (const auto& seg : kSegments) {
    if (seg.personal) {
      weighted += seg.bit_share * seg.wear_utilization;
      total_share += seg.bit_share;
    }
  }
  return total_share > 0.0 ? weighted / total_share : 0.0;
}

}  // namespace sos
