// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Flash market model -- the data behind Figure 1 and §2.3.
//
// Figure 1 breaks 2020 flash bit production down by target device. The
// paper's motivation chains three observations on top of it:
//   (1) personal devices (smartphones + tablets) absorb ~half of all bits,
//   (2) those devices are replaced every ~2-3 years while their flash can
//       survive an order of magnitude longer, and
//   (3) flash soldered into discarded devices is effectively never re-used.
// The market model encodes the share table plus per-segment replacement
// lifetimes and wear utilization, and derives the headline claim: over half
// of all flash bits manufactured annually will be discarded and replaced
// about three times in the coming decade.

#ifndef SOS_SRC_CARBON_MARKET_H_
#define SOS_SRC_CARBON_MARKET_H_

#include <cstdint>
#include <span>
#include <string_view>

namespace sos {

struct MarketSegment {
  std::string_view name;
  double bit_share;            // fraction of annual flash bit production
  double replacement_years;    // typical encasing-device service life
  double wear_utilization;     // fraction of rated flash wear consumed over
                               // that life (mobile study [38]: ~5%)
  bool personal;               // counts toward "personal storage devices"
};

// The Figure 1 breakdown (2020, [39]). Shares sum to 1.
std::span<const MarketSegment> FlashMarketSegments();

// Annual flash capacity production in 2021: ~765 EB ([11]).
inline constexpr double kAnnualProduction2021Eb = 765.0;

// Fraction of flash bits that go into personal devices (phones + tablets +
// memory cards); the paper's "approximately half".
double PersonalBitShare();

// Production-weighted mean number of device replacements over `horizon_years`
// for personal segments: horizon / replacement_years, averaged by bit share.
// ~3 for a decade (paper: "replaced over three times in the coming decade").
double PersonalReplacementsOver(double horizon_years);

// Production-weighted mean wear utilization of personal-device flash at the
// moment its encasing device is discarded (paper: ~5%, i.e. flash outlives
// the device by an order of magnitude).
double PersonalWearUtilization();

}  // namespace sos

#endif  // SOS_SRC_CARBON_MARKET_H_
