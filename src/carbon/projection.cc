// Copyright (c) 2026 The SOS Authors. MIT License.

#include "src/carbon/projection.h"

#include <cassert>
#include <cmath>

#include "src/carbon/embodied.h"
#include "src/common/units.h"

namespace sos {

YearProjection CarbonProjection::ForYear(int year) const {
  assert(year >= params_.start_year);
  const double years = static_cast<double>(year - params_.start_year);
  YearProjection proj;
  proj.year = year;
  proj.production_eb = params_.start_production_eb *
                       std::pow(1.0 + params_.demand_growth + params_.flash_share_shift, years);
  proj.kg_per_gb = params_.kg_per_gb_start * std::pow(1.0 - params_.density_growth, years);
  // EB -> GB is 1e9; kg -> Mt is 1e-9; the factors cancel.
  proj.emissions_mt = proj.production_eb * proj.kg_per_gb;
  proj.people_equivalent = PeopleEquivalent(proj.emissions_mt);
  return proj;
}

std::vector<YearProjection> CarbonProjection::Range(int from_year, int to_year) const {
  std::vector<YearProjection> out;
  for (int y = from_year; y <= to_year; ++y) {
    out.push_back(ForYear(y));
  }
  return out;
}

double CarbonCredit::CostPerTb(double kg_per_gb) const {
  // kg/GB * 1000 GB/TB = kg/TB; / 1000 kg/t = tonnes/TB.
  const double tonnes_per_tb = kg_per_gb;  // the factors cancel exactly
  return tonnes_per_tb * usd_per_tonne;
}

double CarbonCredit::PriceIncreaseFraction(double drive_usd_per_tb, double kg_per_gb) const {
  assert(drive_usd_per_tb > 0.0);
  return CostPerTb(kg_per_gb) / drive_usd_per_tb;
}

std::vector<CarbonCredit> RepresentativeCreditSchemes() {
  return {
      {"EU ETS", 111.0},
      {"Korea ETS", 12.0},
      {"China national", 9.0},
  };
}

}  // namespace sos
