// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Embodied (production) carbon model for flash storage.
//
// The paper's §3 argument: flash production emissions dominate the lifecycle
// footprint, scale with the number of manufactured *cells* (wafer area and
// fab energy), and therefore drop proportionally when more bits are packed
// into each cell. The anchor constant is 0.16 kgCO2e per GB for today's
// (TLC-dominated) production, from Tannu & Nair, HotCarbon'22 [8].
//
// The model exposes per-technology carbon intensity and the arithmetic for
// SOS's split scheme (paper §4.1-4.2): a device whose cells are partitioned
// between pseudo-QLC (SYS) and native PLC (SPARE) needs
//     cells_per_bit = sys_frac/4 + spare_frac/5
// of the cells a pure scheme needs per bit, which for a 50/50 split yields
// the paper's "+50% capacity vs TLC, +10% vs QLC for the same cells".

#ifndef SOS_SRC_CARBON_EMBODIED_H_
#define SOS_SRC_CARBON_EMBODIED_H_

#include <cstdint>

#include "src/flash/cell_tech.h"

namespace sos {

struct FlashCarbonModel {
  // Production carbon intensity of TLC-generation flash (kgCO2e per decimal
  // GB), the [8] anchor. Everything else scales from it by cell count.
  double tlc_kg_per_gb = 0.16;

  // kgCO2e per GB for a given cell technology: carbon scales with cells per
  // bit, i.e. inversely with bits per cell (TLC = 3 is the anchor).
  double KgPerGb(CellTech tech) const;

  // kgCO2e per GB for a split scheme storing `sys_fraction` of bits in
  // `sys_mode` and the rest in `spare_mode` on the same die generation.
  double KgPerGbSplit(CellTech sys_mode, CellTech spare_mode, double sys_fraction) const;

  // Embodied carbon (kg) of `capacity_bytes` of storage built as `tech`.
  double DeviceKg(uint64_t capacity_bytes, CellTech tech) const;

  // Effective bits-per-cell of a split scheme: 1 / (sys_frac/bits_sys +
  // spare_frac/bits_spare). The paper's 50/50 pQLC+PLC split gives ~4.44.
  static double EffectiveBitsPerCell(CellTech sys_mode, CellTech spare_mode, double sys_fraction);

  // Density (capacity from the same cells) of the split scheme relative to a
  // pure `baseline` device: 50/50 pQLC+PLC vs TLC ~= 1.48 ("up to 50%").
  static double SplitDensityGain(CellTech sys_mode, CellTech spare_mode, double sys_fraction,
                                 CellTech baseline);
};

// Per-capita annual CO2 emissions (tonnes/person/year) used by the paper to
// translate megatonnes into "emissions of N people" (World Bank [12]; the
// paper's 122 Mt ~ 28M people implies ~4.36 t/person).
inline constexpr double kTonnesCo2PerPersonYear = 122.4e6 / 28.0e6;

// People whose annual emissions equal `megatonnes` of CO2e.
double PeopleEquivalent(double megatonnes);

}  // namespace sos

#endif  // SOS_SRC_CARBON_EMBODIED_H_
