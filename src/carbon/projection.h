// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Flash production and emissions projection (paper §3) plus carbon-credit
// economics.
//
// The projection composes three trends the paper cites:
//   - data/demand growth of ~20-30%/year ([55][56]),
//   - flash taking share from HDDs and users moving to high-capacity phones,
//     further inflating flash *bit* demand beyond data growth ([13][58][59]),
//   - density improvement from layer stacking ("quadrupling within a
//     decade", [24]). Density cuts cells per bit ~15%/year, but carbon per
//     bit falls more slowly: each added 3D layer adds deposition/etch steps,
//     so emissions per wafer rise with layer count (Boyd [50], Tannu &
//     Nair [8]). The default nets out to ~8%/year lower kgCO2e/GB.
// Emissions for a year = produced GB x kgCO2e/GB after intensity scaling.
// With the defaults, 2021 lands on the paper's 122 Mt / 28M-people anchor
// and 2030 exceeds the paper's ">150M people" claim.
//
// CarbonCredit converts emission intensity into money: at the EU's ~$111 per
// tonne, 0.16 kgCO2e/GB is $17.8/TB -- a ~40% surcharge on a $45/TB QLC SSD
// (the paper's closing §3 example).

#ifndef SOS_SRC_CARBON_PROJECTION_H_
#define SOS_SRC_CARBON_PROJECTION_H_

#include <string_view>
#include <vector>

namespace sos {

struct ProjectionParams {
  int start_year = 2021;
  double start_production_eb = 765.0;  // [11]
  double demand_growth = 0.28;         // 28%/yr data growth driving bit demand
  double density_growth = 0.08;        // net carbon-per-bit reduction per year
  double flash_share_shift = 0.07;     // extra bit demand/yr: flash displacing HDD
  double kg_per_gb_start = 0.16;       // [8], TLC-era intensity
};

struct YearProjection {
  int year = 0;
  double production_eb = 0.0;   // flash bits manufactured that year
  double kg_per_gb = 0.0;       // carbon intensity after density scaling
  double emissions_mt = 0.0;    // production emissions, megatonnes CO2e
  double people_equivalent = 0.0;
};

class CarbonProjection {
 public:
  explicit CarbonProjection(const ProjectionParams& params) : params_(params) {}

  // Projection for a single year (>= start_year).
  YearProjection ForYear(int year) const;

  // Inclusive range of yearly projections.
  std::vector<YearProjection> Range(int from_year, int to_year) const;

  const ProjectionParams& params() const { return params_; }

 private:
  ProjectionParams params_;
};

// A carbon pricing scheme (EU ETS, Korea ETS, China national market, ...).
struct CarbonCredit {
  std::string_view name;
  double usd_per_tonne = 0.0;

  // Carbon cost in USD per decimal TB at the given production intensity.
  double CostPerTb(double kg_per_gb) const;

  // Carbon cost as a fraction of the drive's street price per TB
  // (0.40 for the paper's EU + QLC example).
  double PriceIncreaseFraction(double drive_usd_per_tb, double kg_per_gb) const;
};

// Representative schemes at the paper's writing: EU ~$111/t peak [61],
// Korea ~$12/t [63], China ~$9/t [62].
std::vector<CarbonCredit> RepresentativeCreditSchemes();

// Street price anchor used in §3: Intel 670p QLC at ~$45/TB [65].
inline constexpr double kQlcUsdPerTb2023 = 45.0;

}  // namespace sos

#endif  // SOS_SRC_CARBON_PROJECTION_H_
