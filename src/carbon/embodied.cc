// Copyright (c) 2026 The SOS Authors. MIT License.

#include "src/carbon/embodied.h"

#include <cassert>

#include "src/common/units.h"

namespace sos {

double FlashCarbonModel::KgPerGb(CellTech tech) const {
  // Carbon per bit scales with cells per bit; TLC (3 bits/cell) anchors.
  return tlc_kg_per_gb * 3.0 / static_cast<double>(BitsPerCell(tech));
}

double FlashCarbonModel::KgPerGbSplit(CellTech sys_mode, CellTech spare_mode,
                                      double sys_fraction) const {
  const double eff_bits = EffectiveBitsPerCell(sys_mode, spare_mode, sys_fraction);
  return tlc_kg_per_gb * 3.0 / eff_bits;
}

double FlashCarbonModel::DeviceKg(uint64_t capacity_bytes, CellTech tech) const {
  return KgPerGb(tech) * BytesToGB(capacity_bytes);
}

double FlashCarbonModel::EffectiveBitsPerCell(CellTech sys_mode, CellTech spare_mode,
                                              double sys_fraction) {
  assert(sys_fraction >= 0.0 && sys_fraction <= 1.0);
  const double cells_per_bit =
      sys_fraction / static_cast<double>(BitsPerCell(sys_mode)) +
      (1.0 - sys_fraction) / static_cast<double>(BitsPerCell(spare_mode));
  return 1.0 / cells_per_bit;
}

double FlashCarbonModel::SplitDensityGain(CellTech sys_mode, CellTech spare_mode,
                                          double sys_fraction, CellTech baseline) {
  return EffectiveBitsPerCell(sys_mode, spare_mode, sys_fraction) /
         static_cast<double>(BitsPerCell(baseline));
}

double PeopleEquivalent(double megatonnes) {
  return megatonnes * 1e6 / kTonnesCo2PerPersonYear;
}

}  // namespace sos
