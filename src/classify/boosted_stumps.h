// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Gradient-boosted decision stumps.
//
// The third learned model in the E8 comparison: an ensemble of depth-1
// regression trees fit to the logistic loss gradient (LogitBoost-style).
// Stumps capture threshold structure the linear model cannot (e.g. "personal
// signal above 0.4" or "size above 1 MiB"), which is how human curation
// rules actually look -- and they remain cheap enough for an on-device
// nightly daemon (§4.4).

#ifndef SOS_SRC_CLASSIFY_BOOSTED_STUMPS_H_
#define SOS_SRC_CLASSIFY_BOOSTED_STUMPS_H_

#include <vector>

#include "src/classify/classifier.h"

namespace sos {

struct BoostedStumpsConfig {
  int rounds = 60;           // number of stumps
  double learning_rate = 0.3;
  int candidate_thresholds = 16;  // quantile cuts evaluated per feature
};

class BoostedStumpsClassifier final : public BinaryClassifier {
 public:
  static BoostedStumpsClassifier Train(const std::vector<const FileMeta*>& corpus,
                                       LabelFn label_fn, SimTimeUs now_us,
                                       const BoostedStumpsConfig& config = {});

  double Score(const FileMeta& meta, SimTimeUs now_us) const override;

  size_t num_stumps() const { return stumps_.size(); }

 private:
  BoostedStumpsClassifier() = default;

  struct Stump {
    size_t feature = 0;
    double threshold = 0.0;
    double left_value = 0.0;   // added to the margin when f < threshold
    double right_value = 0.0;  // added when f >= threshold
  };

  double Margin(const FeatureVector& f) const;

  double bias_ = 0.0;
  std::vector<Stump> stumps_;
};

}  // namespace sos

#endif  // SOS_SRC_CLASSIFY_BOOSTED_STUMPS_H_
