// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Classifier evaluation: split, metrics, threshold sweeps.
//
// The paper quotes one number -- the auto-delete predictor's ~79% accuracy
// ([68]) -- but SOS's safety story depends on the full confusion matrix:
// a false EXPENDABLE (precious file sent to the lossy partition) is the
// failure mode "erring on the side of caution" must minimize, while a false
// CRITICAL merely wastes some reliable capacity. EvaluateClassifier reports
// both, and SweepThreshold exposes the tradeoff curve the E8 bench prints.

#ifndef SOS_SRC_CLASSIFY_EVAL_H_
#define SOS_SRC_CLASSIFY_EVAL_H_

#include <cstdint>
#include <vector>

#include "src/classify/classifier.h"

namespace sos {

struct ConfusionMatrix {
  uint64_t true_positive = 0;   // predicted positive, is positive
  uint64_t false_positive = 0;  // predicted positive, is negative
  uint64_t true_negative = 0;
  uint64_t false_negative = 0;

  uint64_t total() const {
    return true_positive + false_positive + true_negative + false_negative;
  }
  double accuracy() const;
  double precision() const;  // of predicted positives, fraction correct
  double recall() const;     // of actual positives, fraction found
  double f1() const;
  // Of predicted positives, fraction that are actually negative: for the
  // priority model this is the at-risk rate (critical data sent to SPARE).
  double false_discovery_rate() const;
};

// Deterministic split: every k-th sample (by index) goes to test.
struct CorpusSplit {
  std::vector<const FileMeta*> train;
  std::vector<const FileMeta*> test;
};
CorpusSplit SplitCorpus(const std::vector<FileMeta>& corpus, uint32_t test_every = 5);

// Evaluates `model` on `samples` at `threshold`.
ConfusionMatrix EvaluateClassifier(const BinaryClassifier& model,
                                   const std::vector<const FileMeta*>& samples, LabelFn label_fn,
                                   SimTimeUs now_us, double threshold = 0.5);

struct ThresholdPoint {
  double threshold = 0.0;
  ConfusionMatrix matrix;
};

// Evaluates at evenly spaced thresholds in (0, 1).
std::vector<ThresholdPoint> SweepThreshold(const BinaryClassifier& model,
                                           const std::vector<const FileMeta*>& samples,
                                           LabelFn label_fn, SimTimeUs now_us, int steps = 9);

}  // namespace sos

#endif  // SOS_SRC_CLASSIFY_EVAL_H_
