// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Classifier interfaces and the rule-based baseline.
//
// SOS needs two predictions per file (paper §4.4-4.5):
//   - priority: SYS (critical) vs SPARE (expendable) placement,
//   - deletion: will the user delete this file soon (the auto-delete
//     fallback's ranking signal).
// Both are binary classifiers over the same features; BinaryClassifier is
// the shared abstraction. The paper stresses "erring on the side of
// caution": the decision threshold is explicit so SOS can trade recall on
// EXPENDABLE against the risk of degrading something precious.
//
// RuleBasedClassifier is the strawman the paper dismisses ("straightforwardly
// classifying files of certain types as non-critical according to type is
// insufficient"): pure file-type rules, no content signal. It serves as the
// baseline in the E8 benchmark.

#ifndef SOS_SRC_CLASSIFY_CLASSIFIER_H_
#define SOS_SRC_CLASSIFY_CLASSIFIER_H_

#include <memory>
#include <vector>

#include "src/classify/features.h"
#include "src/classify/file_meta.h"
#include "src/host/placement.h"

namespace sos {

// A binary classifier over FileMeta. Scores near 1 mean "positive class".
// For priority models the positive class is EXPENDABLE (safe-to-degrade);
// for deletion models it is WILL-DELETE.
class BinaryClassifier {
 public:
  virtual ~BinaryClassifier() = default;

  // P(positive) in [0, 1].
  virtual double Score(const FileMeta& meta, SimTimeUs now_us) const = 0;

  // Hard decision at `threshold` (default 0.5). Higher thresholds are more
  // conservative about declaring a file expendable/deletable.
  bool Predict(const FileMeta& meta, SimTimeUs now_us, double threshold = 0.5) const {
    return Score(meta, now_us) >= threshold;
  }
};

// Priority decision helper: maps a positive ("expendable") prediction to the
// partition enum.
inline Priority PredictPriority(const BinaryClassifier& model, const FileMeta& meta,
                                SimTimeUs now_us, double threshold = 0.5) {
  return model.Predict(meta, now_us, threshold) ? Priority::kExpendable : Priority::kCritical;
}

// File-type-only baseline: media/cache/download are expendable, everything
// else critical. Ignores the personal-significance signal entirely.
class RuleBasedClassifier final : public BinaryClassifier {
 public:
  double Score(const FileMeta& meta, SimTimeUs now_us) const override;
};

// Maps file metadata onto the placement API's lifetime declaration. An
// explicit expected_lifetime_us wins (TTL'd cache objects); otherwise a
// coarse per-type heuristic (caches churn in days, app state in weeks,
// media and system data live for years). Deliberately simple -- the point
// of the directive API is that even crude host knowledge beats none.
inline LifetimeHint LifetimeHintFor(const FileMeta& meta) {
  if (meta.expected_lifetime_us > 0) {
    if (meta.expected_lifetime_us <= 7 * kUsPerDay) {
      return LifetimeHint::kShort;
    }
    if (meta.expected_lifetime_us <= 90 * kUsPerDay) {
      return LifetimeHint::kMedium;
    }
    return LifetimeHint::kLong;
  }
  switch (meta.type) {
    case FileType::kCache:
      return LifetimeHint::kShort;
    case FileType::kAppData:
    case FileType::kDownload:
      return LifetimeHint::kMedium;
    default:
      return LifetimeHint::kLong;
  }
}

// Label accessors shared by trainers/evaluators.
inline bool ExpendableLabel(const FileMeta& meta) {
  return meta.true_priority == Priority::kExpendable;
}
inline bool DeletionLabel(const FileMeta& meta) { return meta.will_be_deleted; }

using LabelFn = bool (*)(const FileMeta&);

// View of a corpus as non-owning pointers, the form trainers and evaluators
// consume (so train/test splits avoid copying FileMeta).
std::vector<const FileMeta*> AsPointers(const std::vector<FileMeta>& corpus);

}  // namespace sos

#endif  // SOS_SRC_CLASSIFY_CLASSIFIER_H_
