// Copyright (c) 2026 The SOS Authors. MIT License.
//
// L2-regularized logistic regression trained with mini-batch SGD.
//
// The discriminative counterpart to the Naive Bayes model: typically a point
// or two more accurate on the synthetic corpus and the default classifier
// wired into SosDevice. Features are standardized with training-set
// statistics baked into the model.

#ifndef SOS_SRC_CLASSIFY_LOGISTIC_H_
#define SOS_SRC_CLASSIFY_LOGISTIC_H_

#include <array>
#include <vector>

#include "src/classify/classifier.h"

namespace sos {

struct LogisticConfig {
  int epochs = 30;
  double learning_rate = 0.15;
  double l2 = 1e-4;
  uint64_t seed = 7;  // shuffling
};

class LogisticClassifier final : public BinaryClassifier {
 public:
  static LogisticClassifier Train(const std::vector<const FileMeta*>& corpus, LabelFn label_fn,
                                  SimTimeUs now_us, const LogisticConfig& config = {});

  double Score(const FileMeta& meta, SimTimeUs now_us) const override;

  const std::array<double, kFeatureDim>& weights() const { return w_; }
  double bias() const { return b_; }

 private:
  LogisticClassifier() = default;

  std::array<double, kFeatureDim> Standardize(const FeatureVector& f) const;

  std::array<double, kFeatureDim> w_{};
  double b_ = 0.0;
  std::array<double, kFeatureDim> feat_mean_{};
  std::array<double, kFeatureDim> feat_std_{};
};

}  // namespace sos

#endif  // SOS_SRC_CLASSIFY_LOGISTIC_H_
