// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Gaussian Naive Bayes over the dense feature vector.
//
// Per class c and feature j the trainer fits a Gaussian N(mu_cj, sigma_cj^2)
// (variances floored for numerical stability); scoring combines per-feature
// log-likelihoods with the class prior and squashes the log-odds into a
// probability. Simple, fast to train, and a classic strong baseline on
// tabular metadata -- a plausible stand-in for the "machine-learning based
// classifier" the paper's background daemon runs on-device (§4.4).

#ifndef SOS_SRC_CLASSIFY_NAIVE_BAYES_H_
#define SOS_SRC_CLASSIFY_NAIVE_BAYES_H_

#include <array>
#include <vector>

#include "src/classify/classifier.h"

namespace sos {

class NaiveBayesClassifier final : public BinaryClassifier {
 public:
  // Trains on `corpus` with labels from `label_fn` (positive = true).
  // `now_us` anchors the time-derived features.
  static NaiveBayesClassifier Train(const std::vector<const FileMeta*>& corpus, LabelFn label_fn,
                                    SimTimeUs now_us);

  double Score(const FileMeta& meta, SimTimeUs now_us) const override;

  // Log-odds contribution of each feature for a given sample; used by the
  // introspection dump in the classifier bench.
  std::array<double, kFeatureDim> FeatureLogOdds(const FileMeta& meta, SimTimeUs now_us) const;

 private:
  NaiveBayesClassifier() = default;

  struct ClassStats {
    std::array<double, kFeatureDim> mean{};
    std::array<double, kFeatureDim> var{};
    double log_prior = 0.0;
  };

  double LogLikelihood(const ClassStats& cls, const FeatureVector& f) const;

  ClassStats positive_;
  ClassStats negative_;
};

}  // namespace sos

#endif  // SOS_SRC_CLASSIFY_NAIVE_BAYES_H_
