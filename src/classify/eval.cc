// Copyright (c) 2026 The SOS Authors. MIT License.

#include "src/classify/eval.h"

namespace sos {

double ConfusionMatrix::accuracy() const {
  const uint64_t n = total();
  return n > 0 ? static_cast<double>(true_positive + true_negative) / static_cast<double>(n) : 0.0;
}

double ConfusionMatrix::precision() const {
  const uint64_t denom = true_positive + false_positive;
  return denom > 0 ? static_cast<double>(true_positive) / static_cast<double>(denom) : 0.0;
}

double ConfusionMatrix::recall() const {
  const uint64_t denom = true_positive + false_negative;
  return denom > 0 ? static_cast<double>(true_positive) / static_cast<double>(denom) : 0.0;
}

double ConfusionMatrix::f1() const {
  const double p = precision();
  const double r = recall();
  return (p + r) > 0.0 ? 2.0 * p * r / (p + r) : 0.0;
}

double ConfusionMatrix::false_discovery_rate() const {
  const uint64_t denom = true_positive + false_positive;
  return denom > 0 ? static_cast<double>(false_positive) / static_cast<double>(denom) : 0.0;
}

CorpusSplit SplitCorpus(const std::vector<FileMeta>& corpus, uint32_t test_every) {
  CorpusSplit split;
  for (size_t i = 0; i < corpus.size(); ++i) {
    if (test_every > 0 && i % test_every == 0) {
      split.test.push_back(&corpus[i]);
    } else {
      split.train.push_back(&corpus[i]);
    }
  }
  return split;
}

ConfusionMatrix EvaluateClassifier(const BinaryClassifier& model,
                                   const std::vector<const FileMeta*>& samples, LabelFn label_fn,
                                   SimTimeUs now_us, double threshold) {
  ConfusionMatrix cm;
  for (const FileMeta* meta : samples) {
    const bool predicted = model.Predict(*meta, now_us, threshold);
    const bool actual = label_fn(*meta);
    if (predicted && actual) {
      ++cm.true_positive;
    } else if (predicted && !actual) {
      ++cm.false_positive;
    } else if (!predicted && actual) {
      ++cm.false_negative;
    } else {
      ++cm.true_negative;
    }
  }
  return cm;
}

std::vector<ThresholdPoint> SweepThreshold(const BinaryClassifier& model,
                                           const std::vector<const FileMeta*>& samples,
                                           LabelFn label_fn, SimTimeUs now_us, int steps) {
  std::vector<ThresholdPoint> points;
  for (int i = 1; i <= steps; ++i) {
    const double threshold = static_cast<double>(i) / (static_cast<double>(steps) + 1.0);
    points.push_back({threshold, EvaluateClassifier(model, samples, label_fn, now_us, threshold)});
  }
  return points;
}

}  // namespace sos
