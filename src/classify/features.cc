// Copyright (c) 2026 The SOS Authors. MIT License.

#include "src/classify/features.h"

#include <cmath>
#include <cstdio>
#include <string_view>

#include "src/common/rng.h"

namespace sos {
namespace {

double LogBytes(uint64_t bytes) { return std::log2(static_cast<double>(bytes) + 1.0); }

double AgeDays(SimTimeUs now, SimTimeUs then) {
  return now >= then ? UsToDays(now - then) : 0.0;
}

// FNV-1a over a path token.
uint64_t HashToken(std::string_view token) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (char c : token) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

FeatureVector ExtractFeatures(const FileMeta& meta, SimTimeUs now_us) {
  FeatureVector f{};
  size_t i = 0;
  // Numeric block.
  f[i++] = LogBytes(meta.size_bytes);
  f[i++] = std::log1p(AgeDays(now_us, meta.created_us)) / 3.0;
  f[i++] = std::log1p(AgeDays(now_us, meta.last_accessed_us)) / 3.0;
  // Reads per day of life; +1 day avoids the new-file singularity.
  const double life_days = AgeDays(now_us, meta.created_us) + 1.0;
  f[i++] = std::log1p(static_cast<double>(meta.read_count) / life_days);
  f[i++] = std::log1p(static_cast<double>(meta.write_count) / life_days);
  f[i++] = meta.entropy_bits_per_byte / 8.0;
  f[i++] = meta.personal_signal;

  // One-hot file type.
  f[kNumericFeatures + static_cast<size_t>(meta.type)] = 1.0;

  // Hashed path tokens ('/'-separated components, lowercase assumed).
  const size_t base = kNumericFeatures + kNumFileTypes;
  std::string_view path = meta.path;
  size_t start = 0;
  while (start < path.size()) {
    size_t end = path.find('/', start);
    if (end == std::string_view::npos) {
      end = path.size();
    }
    if (end > start) {
      const uint64_t h = HashToken(path.substr(start, end - start));
      f[base + h % kPathHashBuckets] += 1.0;
    }
    start = end + 1;
  }
  return f;
}

const char* FeatureName(size_t i) {
  static const char* kNumericNames[kNumericFeatures] = {
      "log_size", "log_age", "log_recency", "read_rate", "write_rate", "entropy", "personal",
  };
  if (i < kNumericFeatures) {
    return kNumericNames[i];
  }
  if (i < kNumericFeatures + kNumFileTypes) {
    return FileTypeName(static_cast<FileType>(i - kNumericFeatures));
  }
  // thread_local: sweep jobs may query names concurrently from pool workers.
  thread_local char buf[32];
  std::snprintf(buf, sizeof(buf), "path_hash_%zu", i - kNumericFeatures - kNumFileTypes);
  return buf;
}

}  // namespace sos
