// Copyright (c) 2026 The SOS Authors. MIT License.
//
// File metadata: the unit of classification in SOS.
//
// The paper's classifier (§4.4) decides, per file, whether data is critical
// (SYS: OS files, app binaries, documents, personally significant media) or
// expendable (SPARE: low-significance, read-dominant media). Training uses
// "data collected from a large pool of previously scanned users files";
// we synthesize that pool (src/classify/corpus.h) with the attribute
// distributions reported by mobile-storage studies ([66-68]).
//
// FileMeta carries what a privileged scanning daemon could observe without
// reading full content: path, type, size, timestamps, access statistics, a
// content-entropy estimate, and an abstract `personal_signal` standing in
// for the visual/content significance analysis the paper sketches (faces,
// sensitive photos, keywords).

#ifndef SOS_SRC_CLASSIFY_FILE_META_H_
#define SOS_SRC_CLASSIFY_FILE_META_H_

#include <cstdint>
#include <string>

#include "src/common/units.h"
#include "src/media/quality.h"

namespace sos {

// Coarse file type, recoverable from extension + path.
enum class FileType : uint8_t {
  kSystem,    // OS image, libraries, executables (.so, .apk, /system/...)
  kAppData,   // app databases, settings (.db, .xml, .json)
  kDocument,  // user documents (.pdf, .docx, .txt)
  kPhoto,     // .jpg/.png/.heic
  kVideo,     // .mp4/.mov
  kAudio,     // .mp3/.flac
  kDownload,  // browser downloads, installers
  kCache,     // app caches, thumbnails, temp files
};

inline constexpr int kNumFileTypes = 8;

const char* FileTypeName(FileType type);

// Media family used for degradation modeling of this file type.
MediaKind MediaKindForType(FileType type);

// Ground-truth / predicted placement class (paper §4.2).
enum class Priority : uint8_t {
  kCritical,    // SYS partition: pseudo-QLC + parity, never degraded
  kExpendable,  // SPARE partition: PLC, approximate storage
};

struct FileMeta {
  uint64_t file_id = 0;
  std::string path;
  FileType type = FileType::kCache;
  uint64_t size_bytes = 0;

  // Times are simulation timestamps (microseconds since device birth).
  SimTimeUs created_us = 0;
  SimTimeUs last_modified_us = 0;
  SimTimeUs last_accessed_us = 0;

  uint32_t read_count = 0;
  uint32_t write_count = 0;

  // Shannon-entropy estimate of content in bits/byte (compressed media ~8,
  // text ~4.5, sparse app data lower). Mobile data compresses poorly ([66]).
  double entropy_bits_per_byte = 8.0;

  // Abstract significance signal in [0,1] from content inspection (faces,
  // favorites, sensitive keywords). Stands in for the paper's visual model.
  double personal_signal = 0.0;

  // Host-declared expected lifetime of the data (0 = unknown). Workloads
  // that know their object lifetimes up front (TTL'd cache entries) set it;
  // the placement layer folds it into the handle's LifetimeHint so the FTL
  // can allocate worn blocks to short-lived data.
  uint64_t expected_lifetime_us = 0;

  // --- Synthetic ground truth (corpus generator only; never features) -----
  Priority true_priority = Priority::kCritical;
  bool will_be_deleted = false;  // user deletes this file within a year
};

}  // namespace sos

#endif  // SOS_SRC_CLASSIFY_FILE_META_H_
