// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Synthetic labelled file corpus.
//
// The paper trains its classifier on "data collected from a large pool of
// previously scanned users files" (§4.4) -- data we do not have. This
// generator synthesizes a personal-device file population with the
// distributions reported by the mobile storage studies the paper cites:
// media files dominate capacity ([66-68]), most files are read-dominant,
// app data is small and write-heavy, and caches churn.
//
// Ground-truth labels follow the paper's classification intent: system and
// app files are critical; media criticality tracks an abstract personal-
// significance signal (standing in for face/favorite/keyword detection);
// caches and stale downloads are expendable and likely to be deleted.
// `label_noise` injects irreducible disagreement (user preferences vary,
// [80]), which bounds any classifier's achievable accuracy -- that is how
// the auto-delete predictor lands near the cited 79% rather than 100%.

#ifndef SOS_SRC_CLASSIFY_CORPUS_H_
#define SOS_SRC_CLASSIFY_CORPUS_H_

#include <cstdint>
#include <vector>

#include "src/classify/file_meta.h"

namespace sos {

struct CorpusConfig {
  size_t num_files = 10000;
  uint64_t seed = 42;
  SimTimeUs device_age_us = 2 * kUsPerYear;  // files spread over this window
  double label_noise = 0.08;                 // fraction of labels flipped
};

std::vector<FileMeta> GenerateCorpus(const CorpusConfig& config);

// Synthesizes a single file of the given type created at `created_us`:
// size/entropy/personal-signal distributions plus ground-truth labels (with
// `label_noise` flip probability). Access statistics are left at zero -- the
// caller (corpus or workload generator) owns the access history.
class Rng;  // src/common/rng.h
FileMeta SynthesizeFile(FileType type, SimTimeUs created_us, double label_noise, Rng& rng);

// Draws a file type from the personal-device count mix (photo-heavy).
FileType SampleFileType(Rng& rng);

// Aggregate corpus statistics used by tests and the Fig-2 bench.
struct CorpusStats {
  uint64_t total_bytes = 0;
  uint64_t media_bytes = 0;       // photo + video + audio
  uint64_t expendable_bytes = 0;  // ground-truth SPARE bytes
  size_t expendable_files = 0;
  size_t deleted_files = 0;
};

CorpusStats ComputeCorpusStats(const std::vector<FileMeta>& corpus);

}  // namespace sos

#endif  // SOS_SRC_CLASSIFY_CORPUS_H_
