// Copyright (c) 2026 The SOS Authors. MIT License.

#include "src/classify/naive_bayes.h"

#include <algorithm>
#include <cmath>

namespace sos {
namespace {

constexpr double kVarianceFloor = 1e-4;

}  // namespace

NaiveBayesClassifier NaiveBayesClassifier::Train(const std::vector<const FileMeta*>& corpus,
                                                 LabelFn label_fn, SimTimeUs now_us) {
  NaiveBayesClassifier model;
  // First pass: means and counts.
  uint64_t n_pos = 0;
  uint64_t n_neg = 0;
  std::vector<FeatureVector> features;
  features.reserve(corpus.size());
  for (const FileMeta* meta : corpus) {
    features.push_back(ExtractFeatures(*meta, now_us));
    const bool positive = label_fn(*meta);
    ClassStats& cls = positive ? model.positive_ : model.negative_;
    uint64_t& n = positive ? n_pos : n_neg;
    ++n;
    for (size_t j = 0; j < kFeatureDim; ++j) {
      cls.mean[j] += features.back()[j];
    }
  }
  const double np = std::max<double>(1.0, static_cast<double>(n_pos));
  const double nn = std::max<double>(1.0, static_cast<double>(n_neg));
  for (size_t j = 0; j < kFeatureDim; ++j) {
    model.positive_.mean[j] /= np;
    model.negative_.mean[j] /= nn;
  }
  // Second pass: variances.
  size_t idx = 0;
  for (const FileMeta* meta : corpus) {
    const bool positive = label_fn(*meta);
    ClassStats& cls = positive ? model.positive_ : model.negative_;
    const FeatureVector& f = features[idx++];
    for (size_t j = 0; j < kFeatureDim; ++j) {
      const double d = f[j] - cls.mean[j];
      cls.var[j] += d * d;
    }
  }
  for (size_t j = 0; j < kFeatureDim; ++j) {
    model.positive_.var[j] = std::max(model.positive_.var[j] / np, kVarianceFloor);
    model.negative_.var[j] = std::max(model.negative_.var[j] / nn, kVarianceFloor);
  }
  // Laplace-smoothed priors.
  const double total = static_cast<double>(n_pos + n_neg) + 2.0;
  model.positive_.log_prior = std::log((static_cast<double>(n_pos) + 1.0) / total);
  model.negative_.log_prior = std::log((static_cast<double>(n_neg) + 1.0) / total);
  return model;
}

double NaiveBayesClassifier::LogLikelihood(const ClassStats& cls, const FeatureVector& f) const {
  double ll = cls.log_prior;
  for (size_t j = 0; j < kFeatureDim; ++j) {
    const double d = f[j] - cls.mean[j];
    ll += -0.5 * (std::log(2.0 * M_PI * cls.var[j]) + d * d / cls.var[j]);
  }
  return ll;
}

double NaiveBayesClassifier::Score(const FileMeta& meta, SimTimeUs now_us) const {
  const FeatureVector f = ExtractFeatures(meta, now_us);
  const double log_odds = LogLikelihood(positive_, f) - LogLikelihood(negative_, f);
  // Squash with a clamp: extreme log-odds saturate.
  if (log_odds > 30.0) {
    return 1.0;
  }
  if (log_odds < -30.0) {
    return 0.0;
  }
  return 1.0 / (1.0 + std::exp(-log_odds));
}

std::array<double, kFeatureDim> NaiveBayesClassifier::FeatureLogOdds(const FileMeta& meta,
                                                                     SimTimeUs now_us) const {
  const FeatureVector f = ExtractFeatures(meta, now_us);
  std::array<double, kFeatureDim> odds{};
  for (size_t j = 0; j < kFeatureDim; ++j) {
    const double dp = f[j] - positive_.mean[j];
    const double dn = f[j] - negative_.mean[j];
    const double lp = -0.5 * (std::log(2.0 * M_PI * positive_.var[j]) + dp * dp / positive_.var[j]);
    const double ln = -0.5 * (std::log(2.0 * M_PI * negative_.var[j]) + dn * dn / negative_.var[j]);
    odds[j] = lp - ln;
  }
  return odds;
}

}  // namespace sos
