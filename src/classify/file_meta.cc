// Copyright (c) 2026 The SOS Authors. MIT License.

#include "src/classify/file_meta.h"

namespace sos {

const char* FileTypeName(FileType type) {
  switch (type) {
    case FileType::kSystem:
      return "system";
    case FileType::kAppData:
      return "appdata";
    case FileType::kDocument:
      return "document";
    case FileType::kPhoto:
      return "photo";
    case FileType::kVideo:
      return "video";
    case FileType::kAudio:
      return "audio";
    case FileType::kDownload:
      return "download";
    case FileType::kCache:
      return "cache";
  }
  return "???";
}

MediaKind MediaKindForType(FileType type) {
  switch (type) {
    case FileType::kPhoto:
      return MediaKind::kImage;
    case FileType::kVideo:
      return MediaKind::kVideo;
    case FileType::kAudio:
      return MediaKind::kAudio;
    case FileType::kDocument:
      return MediaKind::kDocument;
    case FileType::kSystem:
    case FileType::kAppData:
    case FileType::kDownload:
    case FileType::kCache:
      return MediaKind::kBinary;
  }
  return MediaKind::kBinary;
}

}  // namespace sos
