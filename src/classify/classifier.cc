// Copyright (c) 2026 The SOS Authors. MIT License.

#include "src/classify/classifier.h"

namespace sos {

std::vector<const FileMeta*> AsPointers(const std::vector<FileMeta>& corpus) {
  std::vector<const FileMeta*> out;
  out.reserve(corpus.size());
  for (const auto& meta : corpus) {
    out.push_back(&meta);
  }
  return out;
}

double RuleBasedClassifier::Score(const FileMeta& meta, SimTimeUs /*now_us*/) const {
  switch (meta.type) {
    case FileType::kPhoto:
    case FileType::kVideo:
    case FileType::kAudio:
    case FileType::kDownload:
    case FileType::kCache:
      return 0.9;  // "media and junk are expendable"
    case FileType::kSystem:
    case FileType::kAppData:
    case FileType::kDocument:
      return 0.1;
  }
  return 0.5;
}

}  // namespace sos
