// Copyright (c) 2026 The SOS Authors. MIT License.

#include "src/classify/boosted_stumps.h"

#include <algorithm>
#include <cmath>

namespace sos {
namespace {

double Sigmoid(double z) {
  if (z > 30.0) {
    return 1.0;
  }
  if (z < -30.0) {
    return 0.0;
  }
  return 1.0 / (1.0 + std::exp(-z));
}

}  // namespace

BoostedStumpsClassifier BoostedStumpsClassifier::Train(
    const std::vector<const FileMeta*>& corpus, LabelFn label_fn, SimTimeUs now_us,
    const BoostedStumpsConfig& config) {
  BoostedStumpsClassifier model;
  const size_t n = corpus.size();
  if (n == 0) {
    return model;
  }

  std::vector<FeatureVector> features;
  std::vector<double> labels;
  features.reserve(n);
  labels.reserve(n);
  double positives = 0.0;
  for (const FileMeta* meta : corpus) {
    features.push_back(ExtractFeatures(*meta, now_us));
    labels.push_back(label_fn(*meta) ? 1.0 : 0.0);
    positives += labels.back();
  }
  // Initialize the margin at the prior log-odds.
  const double prior = std::clamp(positives / static_cast<double>(n), 1e-3, 1.0 - 1e-3);
  model.bias_ = std::log(prior / (1.0 - prior));

  // Candidate thresholds per feature: evenly spaced quantiles of the
  // training distribution (computed once).
  std::vector<std::vector<double>> cuts(kFeatureDim);
  {
    std::vector<double> column(n);
    for (size_t j = 0; j < kFeatureDim; ++j) {
      for (size_t i = 0; i < n; ++i) {
        column[i] = features[i][j];
      }
      std::sort(column.begin(), column.end());
      if (column.front() == column.back()) {
        continue;  // constant feature: no usable cut
      }
      for (int q = 1; q <= config.candidate_thresholds; ++q) {
        const size_t idx =
            std::min(n - 1, n * static_cast<size_t>(q) /
                                (static_cast<size_t>(config.candidate_thresholds) + 1));
        const double cut = column[idx];
        if (cuts[j].empty() || cuts[j].back() != cut) {
          cuts[j].push_back(cut);
        }
      }
    }
  }

  std::vector<double> margin(n, model.bias_);
  for (int round = 0; round < config.rounds; ++round) {
    // Logistic-loss gradients and curvature (Newton boosting).
    std::vector<double> grad(n);
    std::vector<double> hess(n);
    for (size_t i = 0; i < n; ++i) {
      const double p = Sigmoid(margin[i]);
      grad[i] = labels[i] - p;
      hess[i] = std::max(p * (1.0 - p), 1e-6);
    }

    // Find the stump (feature, threshold) with the best gain.
    Stump best;
    double best_gain = -1.0;
    for (size_t j = 0; j < kFeatureDim; ++j) {
      for (double cut : cuts[j]) {
        double g_left = 0.0;
        double h_left = 0.0;
        double g_right = 0.0;
        double h_right = 0.0;
        for (size_t i = 0; i < n; ++i) {
          if (features[i][j] < cut) {
            g_left += grad[i];
            h_left += hess[i];
          } else {
            g_right += grad[i];
            h_right += hess[i];
          }
        }
        if (h_left < 1e-9 || h_right < 1e-9) {
          continue;
        }
        const double gain = g_left * g_left / h_left + g_right * g_right / h_right;
        if (gain > best_gain) {
          best_gain = gain;
          best.feature = j;
          best.threshold = cut;
          best.left_value = config.learning_rate * g_left / h_left;
          best.right_value = config.learning_rate * g_right / h_right;
        }
      }
    }
    if (best_gain <= 0.0) {
      break;
    }
    for (size_t i = 0; i < n; ++i) {
      margin[i] += features[i][best.feature] < best.threshold ? best.left_value
                                                              : best.right_value;
    }
    model.stumps_.push_back(best);
  }
  return model;
}

double BoostedStumpsClassifier::Margin(const FeatureVector& f) const {
  double margin = bias_;
  for (const Stump& stump : stumps_) {
    margin += f[stump.feature] < stump.threshold ? stump.left_value : stump.right_value;
  }
  return margin;
}

double BoostedStumpsClassifier::Score(const FileMeta& meta, SimTimeUs now_us) const {
  return Sigmoid(Margin(ExtractFeatures(meta, now_us)));
}

}  // namespace sos
