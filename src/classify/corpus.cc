// Copyright (c) 2026 The SOS Authors. MIT License.

#include "src/classify/corpus.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>

#include "src/common/rng.h"
#include "src/common/units.h"

namespace sos {
namespace {

struct TypeProfile {
  FileType type;
  double count_fraction;    // share of file count
  double median_bytes;      // log-normal-ish size center
  double size_spread;       // multiplicative spread factor
  double entropy;           // typical bits/byte
  double read_rate;         // expected reads/day while hot
  double write_rate;        // expected writes/day while hot
  double base_critical;     // P(critical) before the personal signal
  double personal_weight;   // how strongly personal_signal pulls to critical
  double delete_prob;       // P(user deletes within a year | expendable)
  const char* path_fmt;     // printf template with one %llu
};

// Count mix leans photo-heavy (camera rolls); byte mix lands media > 50% of
// capacity via the large video/photo sizes -- matching [66-68].
constexpr std::array<TypeProfile, kNumFileTypes> kProfiles = {{
    {FileType::kSystem, 0.10, 1.5 * kMiB, 4.0, 7.0, 1.0, 0.001, 1.00, 0.0, 0.00,
     "system/lib/lib%llu.so"},
    {FileType::kAppData, 0.20, 96.0 * kKiB, 6.0, 5.5, 2.0, 1.5, 0.98, 0.0, 0.02,
     "data/app/com.app%llu/state.db"},
    {FileType::kDocument, 0.05, 400.0 * kKiB, 8.0, 6.5, 0.3, 0.05, 0.90, 0.05, 0.05,
     "documents/report_%llu.pdf"},
    {FileType::kPhoto, 0.32, 3.0 * kMiB, 3.0, 7.9, 0.5, 0.002, 0.25, 0.65, 0.20,
     "dcim/camera/img_%llu.jpg"},
    {FileType::kVideo, 0.08, 120.0 * kMiB, 5.0, 7.95, 0.2, 0.001, 0.15, 0.60, 0.30,
     "dcim/camera/vid_%llu.mp4"},
    {FileType::kAudio, 0.10, 5.0 * kMiB, 2.5, 7.9, 0.8, 0.001, 0.10, 0.30, 0.25,
     "music/track_%llu.mp3"},
    {FileType::kDownload, 0.05, 18.0 * kMiB, 10.0, 7.5, 0.1, 0.001, 0.10, 0.10, 0.50,
     "download/file_%llu.bin"},
    {FileType::kCache, 0.10, 180.0 * kKiB, 8.0, 7.0, 1.5, 0.8, 0.02, 0.0, 0.75,
     "data/cache/app%llu.tmp"},
}};

const TypeProfile& ProfileFor(FileType type) {
  return kProfiles[static_cast<size_t>(type)];
}

// Monotonically increasing id for synthesized paths; purely cosmetic (paths
// feed the hashed-token features, uniqueness avoids artificial collisions).
// soslint:allow(R10) nonce modulus for path uniqueness, not a unit quantity
uint64_t NextPathNonce(Rng& rng) { return rng.NextU64() % 1000000; }

}  // namespace

FileType SampleFileType(Rng& rng) {
  double u = rng.NextDouble();
  for (const auto& p : kProfiles) {
    if (u < p.count_fraction) {
      return p.type;
    }
    u -= p.count_fraction;
  }
  return kProfiles.back().type;
}

FileMeta SynthesizeFile(FileType type, SimTimeUs created_us, double label_noise, Rng& rng) {
  const TypeProfile& profile = ProfileFor(type);
  FileMeta meta;
  meta.type = type;
  char path[128];
  std::snprintf(path, sizeof(path), profile.path_fmt,
                static_cast<unsigned long long>(NextPathNonce(rng)));
  meta.path = path;

  // Log-normal-ish size: median * spread^gaussian.
  const double size_mult = std::pow(profile.size_spread, rng.NextGaussian(0.0, 0.5));
  meta.size_bytes =
      std::max<uint64_t>(512, static_cast<uint64_t>(profile.median_bytes * size_mult));

  meta.created_us = created_us;
  meta.last_modified_us = created_us;
  meta.last_accessed_us = created_us;
  meta.entropy_bits_per_byte = std::clamp(rng.NextGaussian(profile.entropy, 0.2), 0.5, 8.0);

  // Personal significance: most media is low-value; a skewed minority is
  // precious (family albums, favorites).
  meta.personal_signal =
      profile.personal_weight > 0.0 ? std::pow(rng.NextDouble(), 3.0) : 0.0;

  // Ground truth.
  const double p_critical = std::clamp(
      profile.base_critical + profile.personal_weight * meta.personal_signal, 0.0, 1.0);
  bool critical = rng.NextBool(p_critical);
  bool deleted = !critical && rng.NextBool(profile.delete_prob);
  // Irreducible labeling noise: users disagree with any policy ([80]).
  if (rng.NextBool(label_noise)) {
    critical = !critical;
  }
  if (rng.NextBool(label_noise)) {
    deleted = !deleted;
  }
  meta.true_priority = critical ? Priority::kCritical : Priority::kExpendable;
  meta.will_be_deleted = deleted;
  return meta;
}

std::vector<FileMeta> GenerateCorpus(const CorpusConfig& config) {
  std::vector<FileMeta> corpus;
  corpus.reserve(config.num_files);
  Rng rng(DeriveSeed({config.seed, 0x636f72707573ull /* "corpus" */}));

  for (size_t n = 0; n < config.num_files; ++n) {
    const FileType type = SampleFileType(rng);
    const auto created_us = static_cast<SimTimeUs>(
        rng.NextDouble() * static_cast<double>(config.device_age_us));
    FileMeta meta = SynthesizeFile(type, created_us, config.label_noise, rng);
    meta.file_id = n;

    // Simulated access history: media cools after ~1-3 months, system and
    // app data stay hot for the device's whole life.
    const TypeProfile& profile = ProfileFor(type);
    const SimTimeUs age_us = config.device_age_us - created_us;
    const double age_days = UsToDays(age_us);
    const bool media = type == FileType::kPhoto || type == FileType::kVideo ||
                       type == FileType::kAudio;
    const double hot_days =
        media ? std::min(age_days, 30.0 + rng.NextDouble() * 60.0) : age_days;
    meta.read_count = static_cast<uint32_t>(
        std::min(1e6, rng.NextExponential(profile.read_rate * hot_days + 0.5)));
    meta.write_count = static_cast<uint32_t>(
        std::min(1e6, rng.NextExponential(profile.write_rate * hot_days + 0.1)));
    const double recency_frac = media ? std::min(1.0, hot_days / std::max(age_days, 1.0)) : 1.0;
    meta.last_accessed_us =
        created_us + static_cast<SimTimeUs>(static_cast<double>(age_us) * recency_frac);
    meta.last_modified_us = profile.write_rate > 0.1 ? meta.last_accessed_us : created_us;

    corpus.push_back(std::move(meta));
  }
  return corpus;
}

CorpusStats ComputeCorpusStats(const std::vector<FileMeta>& corpus) {
  CorpusStats stats;
  for (const auto& meta : corpus) {
    stats.total_bytes += meta.size_bytes;
    const bool media = meta.type == FileType::kPhoto || meta.type == FileType::kVideo ||
                       meta.type == FileType::kAudio;
    if (media) {
      stats.media_bytes += meta.size_bytes;
    }
    if (meta.true_priority == Priority::kExpendable) {
      stats.expendable_bytes += meta.size_bytes;
      ++stats.expendable_files;
    }
    if (meta.will_be_deleted) {
      ++stats.deleted_files;
    }
  }
  return stats;
}

}  // namespace sos
