// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Feature extraction for the SOS classifiers.
//
// Turns a FileMeta into a fixed-length dense vector combining numeric
// attributes (log size, ages, access rates, entropy, significance signal),
// a one-hot file-type block, and a small hashed bag of path tokens (feature
// hashing keeps the vector fixed-size without a vocabulary).
//
// The ground-truth fields of FileMeta are never read here.

#ifndef SOS_SRC_CLASSIFY_FEATURES_H_
#define SOS_SRC_CLASSIFY_FEATURES_H_

#include <array>
#include <cstdint>
#include <vector>

#include "src/classify/file_meta.h"

namespace sos {

inline constexpr size_t kNumericFeatures = 7;
inline constexpr size_t kPathHashBuckets = 16;
inline constexpr size_t kFeatureDim = kNumericFeatures + kNumFileTypes + kPathHashBuckets;

using FeatureVector = std::array<double, kFeatureDim>;

// Extracts features; `now_us` anchors the age/recency features.
FeatureVector ExtractFeatures(const FileMeta& meta, SimTimeUs now_us);

// Human-readable name of feature `i` (for model introspection dumps).
const char* FeatureName(size_t i);

}  // namespace sos

#endif  // SOS_SRC_CLASSIFY_FEATURES_H_
