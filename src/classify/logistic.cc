// Copyright (c) 2026 The SOS Authors. MIT License.

#include "src/classify/logistic.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/common/rng.h"

namespace sos {
namespace {

double Sigmoid(double z) {
  if (z > 30.0) {
    return 1.0;
  }
  if (z < -30.0) {
    return 0.0;
  }
  return 1.0 / (1.0 + std::exp(-z));
}

}  // namespace

std::array<double, kFeatureDim> LogisticClassifier::Standardize(const FeatureVector& f) const {
  std::array<double, kFeatureDim> out{};
  for (size_t j = 0; j < kFeatureDim; ++j) {
    out[j] = (f[j] - feat_mean_[j]) / feat_std_[j];
  }
  return out;
}

LogisticClassifier LogisticClassifier::Train(const std::vector<const FileMeta*>& corpus, LabelFn label_fn,
                                             SimTimeUs now_us, const LogisticConfig& config) {
  LogisticClassifier model;

  std::vector<FeatureVector> features;
  std::vector<double> labels;
  features.reserve(corpus.size());
  labels.reserve(corpus.size());
  for (const FileMeta* meta : corpus) {
    features.push_back(ExtractFeatures(*meta, now_us));
    labels.push_back(label_fn(*meta) ? 1.0 : 0.0);
  }

  // Standardization statistics.
  const double n = std::max<double>(1.0, static_cast<double>(features.size()));
  for (const auto& f : features) {
    for (size_t j = 0; j < kFeatureDim; ++j) {
      model.feat_mean_[j] += f[j];
    }
  }
  for (size_t j = 0; j < kFeatureDim; ++j) {
    model.feat_mean_[j] /= n;
  }
  for (const auto& f : features) {
    for (size_t j = 0; j < kFeatureDim; ++j) {
      const double d = f[j] - model.feat_mean_[j];
      model.feat_std_[j] += d * d;
    }
  }
  for (size_t j = 0; j < kFeatureDim; ++j) {
    model.feat_std_[j] = std::max(std::sqrt(model.feat_std_[j] / n), 1e-6);
  }

  // SGD with per-epoch shuffling and 1/sqrt(epoch) learning-rate decay.
  std::vector<size_t> order(features.size());
  std::iota(order.begin(), order.end(), 0);
  Rng rng(DeriveSeed({config.seed, 0x6c6f67697374ull /* "logist" */}));
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    rng.Shuffle(order);
    const double lr = config.learning_rate / std::sqrt(static_cast<double>(epoch) + 1.0);
    for (size_t idx : order) {
      const auto x = model.Standardize(features[idx]);
      double z = model.b_;
      for (size_t j = 0; j < kFeatureDim; ++j) {
        z += model.w_[j] * x[j];
      }
      const double err = Sigmoid(z) - labels[idx];
      for (size_t j = 0; j < kFeatureDim; ++j) {
        model.w_[j] -= lr * (err * x[j] + config.l2 * model.w_[j]);
      }
      model.b_ -= lr * err;
    }
  }
  return model;
}

double LogisticClassifier::Score(const FileMeta& meta, SimTimeUs now_us) const {
  const auto x = Standardize(ExtractFeatures(meta, now_us));
  double z = b_;
  for (size_t j = 0; j < kFeatureDim; ++j) {
    z += w_[j] * x[j];
  }
  return Sigmoid(z);
}

}  // namespace sos
