// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Tests for the media quality models: PSNR math, GOP damage propagation,
// and the per-kind tolerance ordering SOS's placement policy relies on.

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/units.h"
#include "src/flash/error_model.h"
#include "src/media/quality.h"

namespace sos {
namespace {

// --- Image -----------------------------------------------------------------

TEST(ImageQualityTest, IdenticalBuffersAreLossless) {
  const auto img = GenerateSyntheticImage(64, 64, 1);
  EXPECT_DOUBLE_EQ(ImageQualityModel::PsnrDb(img, img), ImageQualityModel::kMaxPsnrDb);
  EXPECT_DOUBLE_EQ(ImageQualityModel::ScoreFromPsnr(ImageQualityModel::kMaxPsnrDb), 1.0);
}

TEST(ImageQualityTest, PsnrDropsWithMoreErrors) {
  const auto img = GenerateSyntheticImage(64, 64, 2);
  auto lightly = img;
  auto heavily = img;
  ErrorModel::InjectErrors(lightly, 16, 3);
  ErrorModel::InjectErrors(heavily, 1024, 4);  // soslint:allow(R10) bit-flip count, not a size
  const double psnr_light = ImageQualityModel::PsnrDb(img, lightly);
  const double psnr_heavy = ImageQualityModel::PsnrDb(img, heavily);
  EXPECT_GT(psnr_light, psnr_heavy);
  EXPECT_LT(psnr_heavy, ImageQualityModel::kMaxPsnrDb);
}

TEST(ImageQualityTest, ExpectedPsnrMonotonicInBer) {
  double prev = 1e9;
  for (double ber : {1e-8, 1e-6, 1e-4, 1e-2}) {
    const double psnr = ImageQualityModel::ExpectedPsnrDb(ber);
    EXPECT_LT(psnr, prev);
    prev = psnr;
  }
  EXPECT_DOUBLE_EQ(ImageQualityModel::ExpectedPsnrDb(0.0), ImageQualityModel::kMaxPsnrDb);
}

TEST(ImageQualityTest, ExpectedPsnrMatchesMeasured) {
  // Inject errors at a known BER and compare measured PSNR to the analytic
  // expectation (loose tolerance: one image, one draw).
  const uint32_t side = 256;
  const auto img = GenerateSyntheticImage(side, side, 5);
  const double ber = 1e-3;
  auto corrupted = img;
  const uint64_t bits = static_cast<uint64_t>(img.size()) * 8;
  ErrorModel::InjectErrors(corrupted, static_cast<uint64_t>(static_cast<double>(bits) * ber), 6);
  const double measured = ImageQualityModel::PsnrDb(img, corrupted);
  const double expected = ImageQualityModel::ExpectedPsnrDb(ber);
  EXPECT_NEAR(measured, expected, 2.0);
}

TEST(ImageQualityTest, ScoreMappingAnchors) {
  EXPECT_DOUBLE_EQ(ImageQualityModel::ScoreFromPsnr(50.0), 1.0);
  EXPECT_DOUBLE_EQ(ImageQualityModel::ScoreFromPsnr(10.0), 0.0);
  EXPECT_NEAR(ImageQualityModel::ScoreFromPsnr(30.0), 0.5, 1e-9);
}

TEST(ImageQualityTest, SyntheticImageDeterministic) {
  EXPECT_EQ(GenerateSyntheticImage(32, 32, 9), GenerateSyntheticImage(32, 32, 9));
  EXPECT_NE(GenerateSyntheticImage(32, 32, 9), GenerateSyntheticImage(32, 32, 10));
}

// --- Video -----------------------------------------------------------------

TEST(VideoQualityTest, FrameTypeLayout) {
  VideoConfig config;
  config.gop_size = 12;
  config.p_interval = 3;
  const VideoQualityModel model(config);
  EXPECT_EQ(model.FrameType(0), 'I');
  EXPECT_EQ(model.FrameType(3), 'P');
  EXPECT_EQ(model.FrameType(6), 'P');
  EXPECT_EQ(model.FrameType(1), 'B');
  EXPECT_EQ(model.FrameType(2), 'B');
  EXPECT_EQ(model.FrameType(12), 'I');  // next GOP
}

TEST(VideoQualityTest, CleanStreamScoresOne) {
  VideoConfig config;
  const VideoQualityModel model(config);
  const auto video = GenerateSyntheticVideo(config, 24, 11);
  EXPECT_DOUBLE_EQ(model.ScoreCorrupted(video, video), 1.0);
  EXPECT_DOUBLE_EQ(model.ExpectedScore(0.0, video.size()), 1.0);
}

TEST(VideoQualityTest, IFrameErrorHurtsMoreThanBFrame) {
  VideoConfig config;
  config.frame_bytes = 512;
  config.gop_size = 12;
  const VideoQualityModel model(config);
  const auto video = GenerateSyntheticVideo(config, 24, 12);

  // Flip one bit in the I-frame (frame 0) vs one bit in a B-frame (frame 1).
  auto i_damaged = video;
  i_damaged[10] ^= 1;  // inside frame 0
  auto b_damaged = video;
  b_damaged[512 + 10] ^= 1;  // inside frame 1
  EXPECT_LT(model.ScoreCorrupted(video, i_damaged), model.ScoreCorrupted(video, b_damaged));
}

TEST(VideoQualityTest, ScoreDecreasesWithBer) {
  const VideoQualityModel model{VideoConfig{}};
  double prev = 1.1;
  for (double ber : {1e-8, 1e-6, 1e-5, 1e-4, 1e-3}) {
    const double score = model.ExpectedScore(ber, 8 * kMiB);
    EXPECT_LT(score, prev);
    EXPECT_GE(score, 0.0);
    prev = score;
  }
}

TEST(VideoQualityTest, MeasuredTracksExpected) {
  VideoConfig config;
  config.frame_bytes = kKiB;
  const VideoQualityModel model(config);
  const auto video = GenerateSyntheticVideo(config, 120, 13);
  const double ber = 2e-5;
  const uint64_t bits = static_cast<uint64_t>(video.size()) * 8;
  RunningStats scores;
  for (uint64_t trial = 0; trial < 10; ++trial) {
    auto corrupted = video;
    ErrorModel::InjectErrors(corrupted,
                             static_cast<uint64_t>(static_cast<double>(bits) * ber), trial);
    scores.Add(model.ScoreCorrupted(video, corrupted));
  }
  EXPECT_NEAR(scores.mean(), model.ExpectedScore(ber, video.size()), 0.15);
}

TEST(VideoQualityTest, GracefulDegradationRegime) {
  // The paper's premise: MPEG-like data tolerates low error rates well.
  const VideoQualityModel model{VideoConfig{}};
  EXPECT_GT(model.ExpectedScore(1e-7, 16 * kMiB), 0.95);
  EXPECT_LT(model.ExpectedScore(1e-2, 16 * kMiB), 0.2);
}

// --- Aggregate kinds -------------------------------------------------------

TEST(FileQualityTest, ToleranceOrdering) {
  // At a modest BER, documents/binaries (intolerant) must score far below
  // media (tolerant). This ordering is why SOS sends media to SPARE.
  const double ber = 1e-6;
  const uint64_t bytes = 4 * kMiB;
  const double video = ExpectedFileQuality(MediaKind::kVideo, ber, bytes);
  const double audio = ExpectedFileQuality(MediaKind::kAudio, ber, bytes);
  const double image = ExpectedFileQuality(MediaKind::kImage, ber, bytes);
  const double document = ExpectedFileQuality(MediaKind::kDocument, ber, bytes);
  EXPECT_GT(video, 0.8);
  EXPECT_GT(audio, video * 0.99);  // audio conceals at least as well
  EXPECT_GT(image, 0.5);
  EXPECT_LT(document, 0.01);  // ~33 expected flips ruin a document
}

TEST(FileQualityTest, PerfectAtZeroBer) {
  for (MediaKind kind : {MediaKind::kVideo, MediaKind::kImage, MediaKind::kAudio,
                         MediaKind::kDocument, MediaKind::kBinary}) {
    EXPECT_DOUBLE_EQ(ExpectedFileQuality(kind, 0.0, kMiB), 1.0);
  }
}

TEST(FileQualityTest, EmptyFileIsPerfect) {
  EXPECT_DOUBLE_EQ(ExpectedFileQuality(MediaKind::kDocument, 1e-3, 0), 1.0);
}

}  // namespace
}  // namespace sos
