// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Tests for the SOS core: device partitioning, the three daemons, and the
// lifetime simulation driver.

#include <gtest/gtest.h>

#include "src/classify/corpus.h"
#include "src/classify/logistic.h"
#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/sos/daemons.h"
#include "src/sos/health.h"
#include "src/sos/lifetime_sim.h"
#include "src/sos/sos_device.h"

namespace sos {
namespace {

SosDeviceConfig SmallSos(bool payloads = true) {
  SosDeviceConfig config;
  config.nand.num_blocks = 32;
  config.nand.wordlines_per_block = 4;
  config.nand.page_size_bytes = 512;
  config.nand.tech = CellTech::kPlc;
  config.nand.seed = 21;
  config.nand.store_payloads = payloads;
  return config;
}

std::vector<uint8_t> Block(uint8_t fill) { return std::vector<uint8_t>(512, fill); }

// Opens a handle of the given durability directly on the device.
PlacementHandle OpenHandle(BlockDevice& device, Durability durability) {
  PlacementSpec spec;
  spec.durability = durability;
  auto handle = device.OpenPlacement(spec);
  EXPECT_TRUE(handle.ok());
  return handle.value();
}

// --- SosDevice -------------------------------------------------------------

TEST(SosDeviceTest, PoolLayout) {
  SimClock clock;
  SosDevice device(SmallSos(), &clock);
  const PoolSnapshot sys = device.SysSnapshot();
  const PoolSnapshot spare = device.SpareSnapshot();
  const PoolSnapshot rescue = device.RescueSnapshot();
  EXPECT_EQ(sys.mode, CellTech::kQlc);     // pseudo-QLC
  EXPECT_EQ(spare.mode, CellTech::kPlc);   // native PLC
  EXPECT_EQ(rescue.mode, CellTech::kTlc);  // resuscitation target
  EXPECT_EQ(sys.total_blocks, 16u);
  EXPECT_GE(spare.total_blocks, 16u);
  EXPECT_EQ(rescue.total_blocks, 0u);  // populated only by retirement
  // SYS loses capacity to parity; SPARE is denser per block.
  EXPECT_GT(spare.exported_pages, sys.exported_pages);
}

TEST(SosDeviceTest, DirectiveRoutesWrites) {
  SimClock clock;
  SosDevice device(SmallSos(), &clock);
  const PlacementHandle critical = OpenHandle(device, Durability::kCritical);
  const PlacementHandle degradable = OpenHandle(device, Durability::kDegradable);
  ASSERT_TRUE(device.Write(1, Block(1), critical).ok());
  ASSERT_TRUE(device.Write(2, Block(2), degradable).ok());
  EXPECT_EQ(device.ftl().PoolOf(1), device.sys_pool());
  EXPECT_EQ(device.ftl().PoolOf(2), device.spare_pool());
}

TEST(SosDeviceTest, SysReadsAreReliable) {
  SimClock clock;
  SosDevice device(SmallSos(), &clock);
  ASSERT_TRUE(device.Write(1, Block(0x5A), OpenHandle(device, Durability::kCritical)).ok());
  clock.Advance(YearsToUs(1.0));
  auto read = device.Read(1);
  ASSERT_TRUE(read.ok());
  EXPECT_FALSE(read.value().degraded);
  EXPECT_EQ(read.value().data, Block(0x5A));
}

TEST(SosDeviceTest, ReclassifyMovesData) {
  SimClock clock;
  SosDevice device(SmallSos(), &clock);
  const PlacementHandle critical = OpenHandle(device, Durability::kCritical);
  const PlacementHandle degradable = OpenHandle(device, Durability::kDegradable);
  ASSERT_TRUE(device.Write(1, Block(7), critical).ok());
  ASSERT_TRUE(device.Reclassify(1, degradable).ok());
  EXPECT_EQ(device.ftl().PoolOf(1), device.spare_pool());
  ASSERT_TRUE(device.Reclassify(1, critical).ok());
  EXPECT_EQ(device.ftl().PoolOf(1), device.sys_pool());
  EXPECT_EQ(device.Reclassify(42, critical).code(), StatusCode::kNotFound);
}

TEST(SosDeviceTest, FreeFractionFallsWithWrites) {
  SimClock clock;
  SosDevice device(SmallSos(), &clock);
  const double before = device.FreeFraction();
  const PlacementHandle critical = OpenHandle(device, Durability::kCritical);
  for (uint64_t lba = 0; lba < 50; ++lba) {
    ASSERT_TRUE(device.Write(lba, Block(1), critical).ok());
  }
  EXPECT_LT(device.FreeFraction(), before);
}

TEST(SosDeviceTest, BaselineDeviceBasics) {
  SimClock clock;
  NandConfig nand = SmallSos().nand;
  nand.tech = CellTech::kTlc;
  BaselineDevice device(nand, &clock, EccPreset::kBch, GcPolicy::kGreedy);
  const PlacementHandle degradable = OpenHandle(device, Durability::kDegradable);
  ASSERT_TRUE(device.Write(1, Block(3), degradable).ok());  // spec inert
  auto read = device.Read(1);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value().data, Block(3));
  EXPECT_TRUE(device.Reclassify(1, OpenHandle(device, Durability::kCritical)).ok());
  EXPECT_GT(device.capacity_blocks(), 0u);
}

TEST(SosDeviceTest, SplitCapacityBeatsTlcBaseline) {
  // E6 in miniature: same die, SOS split exports more bytes than the die
  // would as TLC. (The SOS die *is* PLC; a TLC die of the same cell count
  // exports 3/5 of the PLC page count.)
  SimClock clock;
  SosDevice device(SmallSos(), &clock);
  const uint64_t sos_pages = device.ftl().ExportedPages();

  NandConfig tlc = SmallSos().nand;
  tlc.tech = CellTech::kTlc;
  SimClock clock2;
  BaselineDevice baseline(tlc, &clock2, EccPreset::kBch, GcPolicy::kGreedy);
  const uint64_t tlc_pages = baseline.ftl().ExportedPages();
  EXPECT_GT(static_cast<double>(sos_pages), static_cast<double>(tlc_pages) * 1.2);
}

TEST(SosDeviceTest, SlcStagingAbsorbsWritesAndFlushes) {
  SimClock clock;
  SosDeviceConfig config = SmallSos();
  config.nand.num_blocks = 64;
  config.enable_slc_staging = true;
  config.stage_share = 0.125;  // 8 of 64 blocks
  SosDevice device(config, &clock);
  ASSERT_TRUE(device.staging_enabled());
  EXPECT_EQ(device.StageSnapshot().mode, CellTech::kSlc);

  // A small burst lands entirely in the stage.
  const PlacementHandle critical = OpenHandle(device, Durability::kCritical);
  for (uint64_t lba = 0; lba < 8; ++lba) {
    ASSERT_TRUE(device.Write(lba, Block(static_cast<uint8_t>(lba)), critical).ok());
  }
  EXPECT_EQ(device.StageSnapshot().valid_pages, 8u);
  EXPECT_EQ(device.SysSnapshot().valid_pages, 0u);

  // Flushing moves it to pseudo-QLC; data survives.
  const auto flushed = device.FlushStage();
  ASSERT_TRUE(flushed.ok());
  EXPECT_GT(flushed.value(), 0u);
  EXPECT_GT(device.SysSnapshot().valid_pages, 0u);
  for (uint64_t lba = 0; lba < 8; ++lba) {
    auto read = device.Read(lba);
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(read.value().data, Block(static_cast<uint8_t>(lba)));
  }
}

TEST(SosDeviceTest, StagingHighWaterTriggersAutoFlush) {
  SimClock clock;
  SosDeviceConfig config = SmallSos();
  config.nand.num_blocks = 64;
  config.nand.store_payloads = false;
  config.enable_slc_staging = true;
  config.stage_share = 0.125;
  SosDevice device(config, &clock);
  const uint64_t stage_capacity = device.StageSnapshot().exported_pages;
  ASSERT_GT(stage_capacity, 0u);
  // Write enough SYS data to cross the high-water mark several times over.
  const PlacementHandle critical = OpenHandle(device, Durability::kCritical);
  for (uint64_t lba = 0; lba < stage_capacity * 3; ++lba) {
    ASSERT_TRUE(device.Write(lba, {}, critical).ok()) << "lba " << lba;
  }
  // The stage never overflows: auto-flush kept it at or below high water
  // (modulo the burst between checks), and SYS received the flushed data.
  EXPECT_GT(device.SysSnapshot().valid_pages, 0u);
  EXPECT_GT(device.ftl().stats().migrations(), 0u);
  EXPECT_TRUE(device.ftl().CheckInvariants().ok());
}

TEST(SosDeviceTest, StagingSpeedsUpSysWrites) {
  // The point of the stage: SLC program latency instead of pseudo-QLC.
  auto mean_write_latency = [](bool staging) {
    SimClock clock;
    SosDeviceConfig config = SmallSos();
    config.nand.num_blocks = 64;
    config.nand.wordlines_per_block = 16;  // SLC pages are scarce (1 bit/cell)
    config.nand.store_payloads = false;
    config.enable_slc_staging = staging;
    config.stage_share = 0.125;
    SosDevice device(config, &clock);
    const PlacementHandle critical = OpenHandle(device, Durability::kCritical);
    const SimTimeUs start = clock.now();
    const int writes = 20;  // fits under the flush high-water mark
    for (uint64_t lba = 0; lba < writes; ++lba) {
      EXPECT_TRUE(device.Write(lba, {}, critical).ok());
    }
    return static_cast<double>(clock.now() - start) / writes;
  };
  EXPECT_LT(mean_write_latency(true), mean_write_latency(false) / 5.0);
}

TEST(HealthTest, ReportReflectsDeviceState) {
  SimClock clock;
  SosDevice device(SmallSos(), &clock);
  const uint64_t initial = device.capacity_blocks();
  const PlacementHandle critical = OpenHandle(device, Durability::kCritical);
  const PlacementHandle degradable = OpenHandle(device, Durability::kDegradable);
  for (uint64_t lba = 0; lba < 30; ++lba) {
    ASSERT_TRUE(device.Write(lba, Block(1), lba % 2 == 0 ? critical : degradable).ok());
  }
  clock.Advance(YearsToUs(1.0));
  const DeviceHealthReport report = CollectHealth(device, 1.0, initial);
  ASSERT_EQ(report.pools.size(), 3u);  // SYS, SPARE, RESCUE (no stage)
  uint64_t valid_total = 0;
  for (const PoolHealth& pool : report.pools) {
    valid_total += pool.valid_pages;
    EXPECT_GE(pool.worst_predicted_rber, 0.0);
    EXPECT_LE(pool.est_media_quality, 1.0);
  }
  EXPECT_EQ(valid_total, 30u);
  EXPECT_DOUBLE_EQ(report.capacity_retained, 1.0);
  const std::string rendered = RenderHealth(report);
  EXPECT_NE(rendered.find("SYS"), std::string::npos);
  EXPECT_NE(rendered.find("SPARE"), std::string::npos);
  EXPECT_NE(rendered.find("capacity retained"), std::string::npos);
}

TEST(HealthTest, TaintCensusCounts) {
  SimClock clock;
  SosDevice device(SmallSos(), &clock);
  ASSERT_TRUE(device.Write(1, Block(1), OpenHandle(device, Durability::kDegradable)).ok());
  clock.Advance(YearsToUs(10.0));  // heavy degradation on ECC-less PLC
  ASSERT_TRUE(device.ftl().Refresh(1).ok());  // bakes in corruption -> taint
  const DeviceHealthReport report = CollectHealth(device, 10.0, 0);
  uint64_t tainted = 0;
  for (const PoolHealth& pool : report.pools) {
    tainted += pool.tainted_pages;
  }
  EXPECT_EQ(tainted, 1u);
}

// --- Daemons ---------------------------------------------------------------

struct DaemonFixture {
  SimClock clock;
  SosDevice device;
  ExtentFileSystem fs;
  PlacementDirectory placements;
  PlacementHandle critical;
  PlacementHandle degradable;
  std::vector<FileMeta> corpus;
  LogisticClassifier priority;
  LogisticClassifier deletion;

  explicit DaemonFixture(SosDeviceConfig config = SmallSos())
      : device(config, &clock),
        fs(&device, &clock),
        placements(&device),
        critical(placements.For({Durability::kCritical}).value()),
        degradable(placements.For({Durability::kDegradable}).value()),
        corpus(GenerateCorpus({.num_files = 4000, .seed = 99})),
        priority(LogisticClassifier::Train(AsPointers(corpus), &ExpendableLabel,
                                           CorpusConfig{}.device_age_us)),
        deletion(LogisticClassifier::Train(AsPointers(corpus), &DeletionLabel,
                                           CorpusConfig{}.device_age_us)) {}

  // Creates a file from the corpus sample `i`, scaled to a small size.
  uint64_t AddFile(size_t i, uint64_t size = kKiB) {
    FileMeta meta = corpus[i];
    meta.size_bytes = size;
    auto id = fs.CreateFile(meta, std::vector<uint8_t>(size, static_cast<uint8_t>(i)),
                            critical);
    EXPECT_TRUE(id.ok());
    return id.value();
  }

  // The file's declared durability, for placement assertions.
  Durability DurabilityOf(uint64_t id) {
    auto spec = fs.PlacementSpecOf(id);
    EXPECT_TRUE(spec.ok());
    return spec.value().durability;
  }
};

TEST(MigrationDaemonTest, DemotesExpendableKeepsCritical) {
  DaemonFixture f;
  // Add a precious photo and a junk cache file, both in SYS.
  FileMeta precious;
  precious.type = FileType::kPhoto;
  precious.path = "dcim/camera/wedding.jpg";
  precious.size_bytes = kKiB;
  precious.personal_signal = 0.99;
  FileMeta junk;
  junk.type = FileType::kCache;
  junk.path = "data/cache/app1.tmp";
  junk.size_bytes = kKiB;
  auto precious_id = f.fs.CreateFile(precious, Block(1), f.critical);
  auto junk_id = f.fs.CreateFile(junk, Block(2), f.critical);
  ASSERT_TRUE(precious_id.ok());
  ASSERT_TRUE(junk_id.ok());

  f.clock.Advance(7 * kUsPerDay);  // past min demotion age
  MigrationDaemon daemon(&f.fs, &f.placements, &f.priority, {});
  const auto stats = daemon.RunOnce(f.clock.now());
  EXPECT_EQ(stats.scanned, 2u);
  EXPECT_EQ(f.DurabilityOf(junk_id.value()), Durability::kDegradable);
  EXPECT_EQ(f.DurabilityOf(precious_id.value()), Durability::kCritical);
}

TEST(MigrationDaemonTest, RespectsMinAge) {
  DaemonFixture f;
  FileMeta junk;
  junk.type = FileType::kCache;
  junk.path = "data/cache/fresh.tmp";
  junk.size_bytes = 512;
  junk.created_us = f.clock.now();
  auto id = f.fs.CreateFile(junk, Block(1), f.critical);
  ASSERT_TRUE(id.ok());
  MigrationDaemon daemon(&f.fs, &f.placements, &f.priority, {});
  daemon.RunOnce(f.clock.now());  // file is 0 days old
  EXPECT_EQ(f.DurabilityOf(id.value()), Durability::kCritical);
}

TEST(MigrationDaemonTest, HigherThresholdDemotesLess) {
  auto demoted_at = [](double threshold) {
    DaemonFixture f;
    for (size_t i = 0; i < 60; ++i) {
      f.AddFile(i, 512);
    }
    f.clock.Advance(7 * kUsPerDay);
    MigrationDaemonConfig config;
    config.demote_threshold = threshold;
    MigrationDaemon daemon(&f.fs, &f.placements, &f.priority, config);
    return daemon.RunOnce(f.clock.now()).demoted;
  };
  EXPECT_GE(demoted_at(0.5), demoted_at(0.9));
}

TEST(AutoDeleteTest, InactiveWhenSpaceAvailable) {
  DaemonFixture f;
  f.AddFile(0);
  AutoDeleteManager manager(&f.fs, &f.deletion, {});
  const auto stats = manager.RunOnce(f.clock.now());
  EXPECT_EQ(stats.activations, 0u);
  EXPECT_EQ(stats.files_deleted, 0u);
}

TEST(AutoDeleteTest, FreesSpaceUnderPressure) {
  DaemonFixture f;
  // Fill the FS almost to capacity with SPARE-placed cache junk.
  std::vector<uint64_t> ids;
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    FileMeta junk = SynthesizeFile(FileType::kCache, f.clock.now(), 0.0, rng);
    junk.size_bytes = 2048;
    auto id = f.fs.CreateFile(junk, {}, f.degradable);
    if (!id.ok()) {
      break;
    }
    ids.push_back(id.value());
  }
  ASSERT_GT(ids.size(), 10u);
  AutoDeleteConfig config;
  config.low_water_free = 0.03;
  config.high_water_free = 0.10;
  AutoDeleteManager manager(&f.fs, &f.deletion, config);
  const auto stats = manager.RunOnce(f.clock.now());
  EXPECT_EQ(stats.activations, 1u);
  EXPECT_GT(stats.files_deleted, 0u);
  const FsStats fs_stats = f.fs.Stats();
  const double free_fraction =
      static_cast<double>(fs_stats.capacity_blocks - fs_stats.used_blocks) /
      static_cast<double>(fs_stats.capacity_blocks);
  EXPECT_GE(free_fraction, 0.10);
}

TEST(AutoDeleteTest, NeverDeletesSysFiles) {
  DaemonFixture f;
  // Fill with SYS files only: auto-delete has no candidates.
  int created = 0;
  Rng rng(8);
  for (int i = 0; i < 10000; ++i) {
    FileMeta meta = SynthesizeFile(FileType::kDocument, f.clock.now(), 0.0, rng);
    meta.size_bytes = 2048;
    if (!f.fs.CreateFile(meta, {}, f.critical).ok()) {
      break;
    }
    ++created;
  }
  AutoDeleteManager manager(&f.fs, &f.deletion, {});
  const auto stats = manager.RunOnce(f.clock.now());
  EXPECT_EQ(stats.files_deleted, 0u);
  EXPECT_EQ(f.fs.Stats().files, static_cast<uint64_t>(created));
}

TEST(DegradationMonitorTest, RefreshesAgedSparePages) {
  DaemonFixture f;
  FileMeta media;
  media.type = FileType::kVideo;
  media.path = "dcim/camera/old.mp4";
  media.size_bytes = 4096;
  auto id = f.fs.CreateFile(media, std::vector<uint8_t>(4096, 0xEE), f.critical);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(f.fs.ReclassifyFile(id.value(), f.degradable).ok());
  f.clock.Advance(YearsToUs(2.5));  // deep retention on ECC-less PLC
  DegradationMonitorConfig config;
  config.cloud_repair = false;
  DegradationMonitor monitor(&f.fs, &f.device, config);
  const auto stats = monitor.RunOnce(f.clock.now());
  EXPECT_GT(stats.pages_scanned, 0u);
  EXPECT_GT(stats.pages_refreshed, 0u);
  // Refreshed pages predict lower RBER now.
  for (uint64_t lba : f.device.ftl().LbasInPool(f.device.spare_pool())) {
    EXPECT_LT(f.device.ftl().PredictLbaRber(lba, 0.0).value(),
              f.device.config().spare_retire_rber);
  }
}

TEST(DegradationMonitorTest, CloudRepairRestoresContent) {
  DaemonFixture f;
  InMemoryCloud cloud;
  const std::vector<uint8_t> pristine(4096, 0xAB);
  FileMeta media;
  media.type = FileType::kPhoto;
  media.path = "dcim/camera/p.jpg";
  media.size_bytes = pristine.size();
  auto id = f.fs.CreateFile(media, pristine, f.critical);
  ASSERT_TRUE(id.ok());
  cloud.Store(id.value(), pristine);
  ASSERT_TRUE(f.fs.ReclassifyFile(id.value(), f.degradable).ok());
  f.clock.Advance(YearsToUs(2.5));

  DegradationMonitor monitor(&f.fs, &f.device, {}, &cloud);
  const auto stats = monitor.RunOnce(f.clock.now());
  EXPECT_GE(stats.files_repaired, 1u);
  // The stored copy is pristine again; the read itself may pick up a fresh
  // flip or two on the ECC-less pool, but the multi-year corruption is gone.
  auto read = f.fs.ReadFile(id.value());
  ASSERT_TRUE(read.ok());
  uint64_t diff_bits = 0;
  const std::vector<uint8_t>& got = read.value().data;
  ASSERT_EQ(got.size(), pristine.size());
  for (size_t i = 0; i < got.size(); ++i) {
    diff_bits += static_cast<uint64_t>(__builtin_popcount(
        static_cast<unsigned>(got[i] ^ pristine[i])));
  }
  EXPECT_LT(diff_bits, 16u);
}

// --- Lifetime simulation ---------------------------------------------------

LifetimeSimConfig QuickSim(DeviceKind kind, uint32_t days = 120) {
  LifetimeSimConfig config;
  config.kind = kind;
  config.days = days;
  config.seed = 5;
  config.nand.num_blocks = 128;
  config.training_files = 2000;
  // Keep the test fast and the device ~half full at the end (a 3-year phone
  // is typically not at capacity).
  config.workload.photos_per_day = 3.0;
  config.workload.reads_per_day = 40.0;
  config.workload.cache_files_per_day = 8.0;
  // Enough in-place churn that GC cycles blocks and wear becomes visible.
  config.workload.app_updates_per_day = 80.0;
  config.file_size_cap = 32 * kKiB;
  config.sample_period_days = 30;
  return config;
}

TEST(LifetimeSimTest, SosRunsAndWears) {
  LifetimeSim sim(QuickSim(DeviceKind::kSos));
  const LifetimeResult result = sim.Run();
  EXPECT_GT(result.host_bytes_written(), 0u);
  EXPECT_GT(result.final_max_wear_ratio(), 0.0);
  EXPECT_GT(result.files_alive(), 0u);
  EXPECT_GT(result.migration().demoted, 0u);  // the daemon did its job
  EXPECT_FALSE(result.samples().empty());
  EXPECT_EQ(result.create_failures(), 0u);
  EXPECT_GT(result.final_spare_quality(), 0.8);
  EXPECT_GT(result.projected_lifetime_years(), 1.0);
}

TEST(LifetimeSimTest, BaselinesRun) {
  for (DeviceKind kind :
       {DeviceKind::kTlcBaseline, DeviceKind::kQlcBaseline, DeviceKind::kPlcNaive}) {
    LifetimeSim sim(QuickSim(kind, 60));
    const LifetimeResult result = sim.Run();
    EXPECT_GT(result.host_bytes_written(), 0u) << DeviceKindName(kind);
    EXPECT_EQ(result.final_spare_quality(), 1.0) << "baselines have no SPARE";
    EXPECT_EQ(result.migration().demoted, 0u);
  }
}

TEST(LifetimeSimTest, DeterministicForSeed) {
  auto run = [] {
    LifetimeSim sim(QuickSim(DeviceKind::kSos, 60));
    return sim.Run();
  };
  const LifetimeResult a = run();
  const LifetimeResult b = run();
  EXPECT_EQ(a.host_bytes_written(), b.host_bytes_written());
  EXPECT_EQ(a.ftl().nand_writes(), b.ftl().nand_writes());
  EXPECT_EQ(a.final_max_wear_ratio(), b.final_max_wear_ratio());
  EXPECT_EQ(a.migration().demoted, b.migration().demoted);
}

TEST(LifetimeSimTest, SamplesAreOrderedAndMonotoneInWear) {
  LifetimeSim sim(QuickSim(DeviceKind::kSos));
  const LifetimeResult result = sim.Run();
  ASSERT_GE(result.samples().size(), 2u);
  for (size_t i = 1; i < result.samples().size(); ++i) {
    EXPECT_GT(result.samples()[i].day, result.samples()[i - 1].day);
    EXPECT_GE(result.samples()[i].mean_pec, result.samples()[i - 1].mean_pec);
  }
}

TEST(LifetimeSimTest, PeriodicRetrainingRuns) {
  LifetimeSimConfig config = QuickSim(DeviceKind::kSos, 120);
  config.retrain_period_days = 30;
  LifetimeSim sim(config);
  const LifetimeResult result = sim.Run();
  EXPECT_GE(result.retrainings(), 2u);
  // The retrained models keep the pipeline functional.
  EXPECT_GT(result.migration().demoted, 0u);
  EXPECT_EQ(result.create_failures(), 0u);
}

TEST(LifetimeSimTest, NameCoverage) {
  EXPECT_STRNE(DeviceKindName(DeviceKind::kSos), "???");
  EXPECT_STRNE(DeviceKindName(DeviceKind::kTlcBaseline), "???");
  EXPECT_STRNE(DeviceKindName(DeviceKind::kQlcBaseline), "???");
  EXPECT_STRNE(DeviceKindName(DeviceKind::kPlcNaive), "???");
}

}  // namespace
}  // namespace sos
