// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Unit tests for tools/soslint: every rule R1..R6 is exercised with a
// fixture that must fire and a near-identical fixture that must pass, so a
// lexer or matcher regression shows up as a test diff, not as lint noise on
// the real tree. Fixtures are raw strings; soslint's own lexer drops raw
// string bodies, so linting this file stays clean.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "tools/soslint/soslint.h"

namespace sos {
namespace {

using lint::Diagnostic;
using lint::SourceFile;

std::vector<Diagnostic> Lint(const std::string& path, const std::string& content) {
  return lint::LintTree({{path, content}});
}

int CountRule(const std::vector<Diagnostic>& diags, const std::string& rule) {
  return static_cast<int>(
      std::count_if(diags.begin(), diags.end(),
                    [&rule](const Diagnostic& d) { return d.rule == rule; }));
}

// --- R1: unordered-container iteration -------------------------------------

TEST(SoslintR1Test, FlagsRangeForOverUnorderedMapWithSink) {
  const auto diags = Lint("src/x.cc", R"cc(
    std::unordered_map<int, int> counters;
    void Dump() {
      for (const auto& [k, v] : counters) {
        printf("%d %d\n", k, v);
      }
    }
  )cc");
  ASSERT_EQ(CountRule(diags, "R1"), 1);
  EXPECT_EQ(diags[0].line, 4);
  // The sink in the loop body is named in the message.
  EXPECT_NE(diags[0].message.find("printf"), std::string::npos);
}

TEST(SoslintR1Test, FlagsIterationEvenWithoutSink) {
  // Order-insensitive-looking loops are still flagged: a later refactor can
  // add a sink without re-reviewing the loop, so the annotation is mandatory.
  const auto diags = Lint("src/x.cc", R"cc(
    std::unordered_set<uint64_t> live;
    uint64_t Sum() {
      uint64_t total = 0;
      for (uint64_t v : live) total += v;
      return total;
    }
  )cc");
  EXPECT_EQ(CountRule(diags, "R1"), 1);
}

TEST(SoslintR1Test, MemberDeclaredInHeaderCaughtInOtherFile) {
  // Two-pass: the container name is collected from the header, the iteration
  // is flagged in the .cc that never spells the type.
  const std::vector<SourceFile> files = {
      {"src/m.h",
       R"cc(
         #ifndef SOS_SRC_M_H_
         #define SOS_SRC_M_H_
         #include "src/common/status.h"
         class M { std::unordered_map<uint64_t, int> table_; };
         #endif  // SOS_SRC_M_H_
       )cc"},
      {"src/m.cc",
       R"cc(
         #include "src/m.h"
         void M::Walk() {
           for (const auto& [k, v] : table_) { Use(k); }
         }
       )cc"},
  };
  const auto diags = lint::LintTree(files);
  ASSERT_EQ(CountRule(diags, "R1"), 1);
  EXPECT_EQ(diags[0].file, "src/m.cc");
}

TEST(SoslintR1Test, IgnoresOrderedContainersAndClassicLoops) {
  const auto diags = Lint("src/x.cc", R"cc(
    std::unordered_map<int, int> m;
    std::vector<int> v;
    void F() {
      for (int x : v) Use(x);
      for (size_t i = 0; i < v.size(); ++i) Use(v[i]);
      auto it = m.find(3);
    }
  )cc");
  EXPECT_EQ(CountRule(diags, "R1"), 0);
}

TEST(SoslintR1Test, SortedKeysWrapperIsSafeByConstruction) {
  const auto diags = Lint("src/x.cc", R"cc(
    std::unordered_map<int, int> m;
    void F() {
      for (const int k : SortedKeys(m)) {
        printf("%d\n", k);
      }
    }
  )cc");
  EXPECT_EQ(CountRule(diags, "R1"), 0);
}

TEST(SoslintR1Test, AllowDirectiveSuppresses) {
  const auto diags = Lint("src/x.cc", R"cc(
    std::unordered_map<int, int> m;
    int F() {
      int sum = 0;
      // soslint:allow(R1) integer sum is commutative
      for (const auto& [k, v] : m) sum += v;
      return sum;
    }
  )cc");
  EXPECT_EQ(CountRule(diags, "R1"), 0);
  EXPECT_EQ(CountRule(diags, "R5"), 0);
}

// --- R2: ambient entropy / wall-clock time ----------------------------------

TEST(SoslintR2Test, FlagsBannedEntropySources) {
  const auto diags = Lint("src/x.cc", R"cc(
    void F() {
      int a = std::rand();
      std::random_device rd;
      auto t = std::chrono::system_clock::now();
      uint64_t now = ::time(nullptr);
    }
  )cc");
  EXPECT_EQ(CountRule(diags, "R2"), 4);
}

TEST(SoslintR2Test, BareTimeIdentifierIsNotFlagged) {
  // `time` is only banned as an explicit ::time / std::time call; plain
  // variables named time are everywhere in a simulator.
  const auto diags = Lint("src/x.cc", R"cc(
    void F(uint64_t time) {
      uint64_t arrival_time = time + 5;
    }
  )cc");
  EXPECT_EQ(CountRule(diags, "R2"), 0);
}

TEST(SoslintR2Test, RngImplementationIsExempt) {
  const std::string src = R"cc(
    void Seed() { std::random_device rd; }
  )cc";
  EXPECT_EQ(CountRule(Lint("src/common/rng.cc", src), "R2"), 0);
  EXPECT_EQ(CountRule(Lint("src/flash/nand.cc", src), "R2"), 1);
}

TEST(SoslintR2Test, MentionsInCommentsAndStringsAreNotFlagged) {
  const auto diags = Lint("src/x.cc", R"cc(
    // std::rand is banned here; see R2.
    const char* kMsg = "do not call rand()";
  )cc");
  EXPECT_EQ(CountRule(diags, "R2"), 0);
}

// --- R3: include style + header guards ---------------------------------------

TEST(SoslintR3Test, FlagsRelativeQuoteInclude) {
  const auto diags = Lint("src/ftl/ftl.cc", R"cc(
    #include "ftl.h"
    #include "src/common/status.h"
    #include <vector>
  )cc");
  ASSERT_EQ(CountRule(diags, "R3"), 1);
  EXPECT_NE(diags[0].message.find("ftl.h"), std::string::npos);
}

TEST(SoslintR3Test, EnforcesGuardNaming) {
  const std::string good = R"cc(
    #ifndef SOS_SRC_FTL_FTL_H_
    #define SOS_SRC_FTL_FTL_H_
    #endif  // SOS_SRC_FTL_FTL_H_
  )cc";
  EXPECT_EQ(CountRule(Lint("src/ftl/ftl.h", good), "R3"), 0);

  const std::string wrong = R"cc(
    #ifndef FTL_H
    #define FTL_H
    #endif
  )cc";
  const auto diags = Lint("src/ftl/ftl.h", wrong);
  ASSERT_EQ(CountRule(diags, "R3"), 1);
  EXPECT_NE(diags[0].message.find("SOS_SRC_FTL_FTL_H_"), std::string::npos);
}

TEST(SoslintR3Test, FlagsPragmaOnceAndMissingGuard) {
  EXPECT_EQ(CountRule(Lint("src/a.h", "#pragma once\n"), "R3"), 1);
  EXPECT_EQ(CountRule(Lint("src/a.h", "int x;\n"), "R3"), 1);
  // .cc files need no guard.
  EXPECT_EQ(CountRule(Lint("src/a.cc", "int x;\n"), "R3"), 0);
}

// --- R4: assert with side effects --------------------------------------------

TEST(SoslintR4Test, FlagsMutationInsideAssert) {
  const auto diags = Lint("src/x.cc", R"cc(
    void F(int x, int i) {
      assert(x = 1);
      assert(++i < 10);
    }
  )cc");
  EXPECT_EQ(CountRule(diags, "R4"), 2);
}

TEST(SoslintR4Test, ComparisonsAndCallsAreFine) {
  const auto diags = Lint("src/x.cc", R"cc(
    void F(int a, int b) {
      assert(a == b);
      assert(a != b && a <= b);
      assert(Check(a));
    }
  )cc");
  EXPECT_EQ(CountRule(diags, "R4"), 0);
}

// --- R5: the escape hatch itself ---------------------------------------------

TEST(SoslintR5Test, UnknownRuleIsAViolation) {
  const auto diags = Lint("src/x.cc", "// soslint:allow(R9) no such rule\n");
  ASSERT_EQ(CountRule(diags, "R5"), 1);
  EXPECT_NE(diags[0].message.find("R9"), std::string::npos);
}

TEST(SoslintR5Test, MissingReasonIsAViolation) {
  const auto diags = Lint("src/x.cc", "// soslint:allow(R1)\n");
  ASSERT_EQ(CountRule(diags, "R5"), 1);
  EXPECT_NE(diags[0].message.find("reason"), std::string::npos);
}

TEST(SoslintR5Test, AllowOnlySuppressesTheNamedRule) {
  // An R2 allow must not quietly waive the R1 violation on the same line.
  const auto diags = Lint("src/x.cc", R"cc(
    std::unordered_map<int, int> m;
    void F() {
      // soslint:allow(R2) wrong rule for this loop
      for (const auto& [k, v] : m) Use(k);
    }
  )cc");
  EXPECT_EQ(CountRule(diags, "R1"), 1);
}

TEST(SoslintR5Test, SameLineAllowWorks) {
  const auto diags = Lint("src/x.cc", R"cc(
    std::unordered_set<int> s;
    void F() {
      for (int v : s) Use(v);  // soslint:allow(R1) order-free side effects
    }
  )cc");
  EXPECT_EQ(CountRule(diags, "R1"), 0);
}

// --- R6: swallowed recovery Status ------------------------------------------

TEST(SoslintR6Test, FlagsBareRecoverCallOnFaultPath) {
  const auto diags = Lint("src/ftl/x.cc", R"cc(
    void Mount(Ftl& ftl) {
      ftl.RecoverFromFlash();
    }
  )cc");
  EXPECT_EQ(CountRule(diags, "R6"), 1);
}

TEST(SoslintR6Test, FlagsVoidCastThroughPointerReceiver) {
  const auto diags = Lint("src/sos/x.cc", R"cc(
    void Mount(SosDevice* dev) {
      (void)dev->RecoverFromPowerLoss();
    }
  )cc");
  EXPECT_EQ(CountRule(diags, "R6"), 1);
}

TEST(SoslintR6Test, FlagsBareDropBadBlockAndGateOp) {
  const auto diags = Lint("src/fault/x.cc", R"cc(
    void Handle(Ftl& ftl, FaultInjector& inj) {
      ftl.DropBadBlock(3);
      inj.GateOp(NandOpKind::kProgram, 0, 0);
    }
  )cc");
  EXPECT_EQ(CountRule(diags, "R6"), 2);
}

TEST(SoslintR6Test, PassesWhenStatusIsBoundOrPropagated) {
  const auto diags = Lint("src/ftl/x.cc", R"cc(
    Status Mount(Ftl& ftl) {
      if (Status s = ftl.RecoverFromFlash(); !s.ok()) {
        return s;
      }
      return ftl.DropBadBlock(3);
    }
  )cc");
  EXPECT_EQ(CountRule(diags, "R6"), 0);
}

TEST(SoslintR6Test, PassesIgnoreResultWaiverAndDeclaration) {
  const auto diags = Lint("src/ftl/x.cc", R"cc(
    Status Ftl::RecoverFromFlash() { return OkStatus(); }
    void BestEffort(Ftl& ftl) {
      IgnoreResult(ftl.RecoverFromFlash());
    }
  )cc");
  EXPECT_EQ(CountRule(diags, "R6"), 0);
}

TEST(SoslintR6Test, IgnoresBareCallOutsideRecoveryPaths) {
  const auto diags = Lint("tests/x.cc", R"cc(
    void Check(Ftl& ftl) {
      ftl.RecoverFromFlash();
    }
  )cc");
  EXPECT_EQ(CountRule(diags, "R6"), 0);
}

TEST(SoslintR6Test, AllowCommentSuppresses) {
  const auto diags = Lint("src/ftl/x.cc", R"cc(
    void Mount(Ftl& ftl) {
      ftl.RecoverFromFlash();  // soslint:allow(R6) failure re-audited below
    }
  )cc");
  EXPECT_EQ(CountRule(diags, "R6"), 0);
}

// --- Output format & determinism ---------------------------------------------

TEST(SoslintOutputTest, FormatDiagnosticIsEditorParseable) {
  const Diagnostic d{"src/ftl/ftl.cc", 42, "R1", "msg"};
  EXPECT_EQ(lint::FormatDiagnostic(d), "src/ftl/ftl.cc:42: [R1] msg");
}

TEST(SoslintOutputTest, LintTreeSortsDiagnosticsByFileAndLine) {
  // Files presented in reverse order; diagnostics must come out sorted so CI
  // diffs are stable run to run.
  const std::vector<SourceFile> files = {
      {"src/zzz.cc", "#include \"b.h\"\n"},
      {"src/aaa.cc", "#include \"a.h\"\n"},
  };
  const auto diags = lint::LintTree(files);
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_EQ(diags[0].file, "src/aaa.cc");
  EXPECT_EQ(diags[1].file, "src/zzz.cc");
}

}  // namespace
}  // namespace sos
