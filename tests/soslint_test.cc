// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Unit tests for tools/soslint: every rule R1..R10 is exercised with a
// fixture that must fire and a near-identical fixture that must pass, so a
// lexer or matcher regression shows up as a test diff, not as lint noise on
// the real tree. Fixtures are raw strings; soslint's own lexer drops raw
// string bodies, so linting this file stays clean.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "tools/soslint/soslint.h"

namespace sos {
namespace {

using lint::Baseline;
using lint::Diagnostic;
using lint::SourceFile;

std::vector<Diagnostic> Lint(const std::string& path, const std::string& content) {
  return lint::LintTree({{path, content}});
}

int CountRule(const std::vector<Diagnostic>& diags, const std::string& rule) {
  return static_cast<int>(
      std::count_if(diags.begin(), diags.end(),
                    [&rule](const Diagnostic& d) { return d.rule == rule; }));
}

// First diagnostic of the named rule (fixtures can also trip unrelated rules,
// e.g. a header fixture with no include guard).
const Diagnostic& FirstOf(const std::vector<Diagnostic>& diags, const std::string& rule) {
  const auto it = std::find_if(diags.begin(), diags.end(),
                               [&rule](const Diagnostic& d) { return d.rule == rule; });
  EXPECT_NE(it, diags.end()) << "no " << rule << " diagnostic";
  return *it;
}

// --- R1: unordered-container iteration -------------------------------------

TEST(SoslintR1Test, FlagsRangeForOverUnorderedMapWithSink) {
  const auto diags = Lint("src/x.cc", R"cc(
    std::unordered_map<int, int> counters;
    void Dump() {
      for (const auto& [k, v] : counters) {
        printf("%d %d\n", k, v);
      }
    }
  )cc");
  ASSERT_EQ(CountRule(diags, "R1"), 1);
  EXPECT_EQ(diags[0].line, 4);
  // The sink in the loop body is named in the message.
  EXPECT_NE(diags[0].message.find("printf"), std::string::npos);
}

TEST(SoslintR1Test, FlagsIterationEvenWithoutSink) {
  // Order-insensitive-looking loops are still flagged: a later refactor can
  // add a sink without re-reviewing the loop, so the annotation is mandatory.
  const auto diags = Lint("src/x.cc", R"cc(
    std::unordered_set<uint64_t> live;
    uint64_t Sum() {
      uint64_t total = 0;
      for (uint64_t v : live) total += v;
      return total;
    }
  )cc");
  EXPECT_EQ(CountRule(diags, "R1"), 1);
}

TEST(SoslintR1Test, MemberDeclaredInHeaderCaughtInOtherFile) {
  // Two-pass: the container name is collected from the header, the iteration
  // is flagged in the .cc that never spells the type.
  const std::vector<SourceFile> files = {
      {"src/m.h",
       R"cc(
         #ifndef SOS_SRC_M_H_
         #define SOS_SRC_M_H_
         #include "src/common/status.h"
         class M { std::unordered_map<uint64_t, int> table_; };
         #endif  // SOS_SRC_M_H_
       )cc"},
      {"src/m.cc",
       R"cc(
         #include "src/m.h"
         void M::Walk() {
           for (const auto& [k, v] : table_) { Use(k); }
         }
       )cc"},
  };
  const auto diags = lint::LintTree(files);
  ASSERT_EQ(CountRule(diags, "R1"), 1);
  EXPECT_EQ(diags[0].file, "src/m.cc");
}

TEST(SoslintR1Test, IgnoresOrderedContainersAndClassicLoops) {
  const auto diags = Lint("src/x.cc", R"cc(
    std::unordered_map<int, int> m;
    std::vector<int> v;
    void F() {
      for (int x : v) Use(x);
      for (size_t i = 0; i < v.size(); ++i) Use(v[i]);
      auto it = m.find(3);
    }
  )cc");
  EXPECT_EQ(CountRule(diags, "R1"), 0);
}

TEST(SoslintR1Test, BracedInitListRangeIsDeterministic) {
  // Iterating a braced list that merely *mentions* an indexed name keeps
  // written order; only the container itself is hash-ordered.
  const auto diags = Lint("src/x.cc", R"cc(
    std::unordered_set<int> special;
    void F() {
      for (int v : {1, 2, 3}) Use(v, special.count(v));
    }
  )cc");
  EXPECT_EQ(CountRule(diags, "R1"), 0);
}

TEST(SoslintR1Test, SortedKeysWrapperIsSafeByConstruction) {
  const auto diags = Lint("src/x.cc", R"cc(
    std::unordered_map<int, int> m;
    void F() {
      for (const int k : SortedKeys(m)) {
        printf("%d\n", k);
      }
    }
  )cc");
  EXPECT_EQ(CountRule(diags, "R1"), 0);
}

TEST(SoslintR1Test, AllowDirectiveSuppresses) {
  const auto diags = Lint("src/x.cc", R"cc(
    std::unordered_map<int, int> m;
    int F() {
      int sum = 0;
      // soslint:allow(R1) integer sum is commutative
      for (const auto& [k, v] : m) sum += v;
      return sum;
    }
  )cc");
  EXPECT_EQ(CountRule(diags, "R1"), 0);
  EXPECT_EQ(CountRule(diags, "R5"), 0);
}

// --- R2: ambient entropy / wall-clock time ----------------------------------

TEST(SoslintR2Test, FlagsBannedEntropySources) {
  const auto diags = Lint("src/x.cc", R"cc(
    void F() {
      int a = std::rand();
      std::random_device rd;
      auto t = std::chrono::system_clock::now();
      uint64_t now = ::time(nullptr);
    }
  )cc");
  EXPECT_EQ(CountRule(diags, "R2"), 4);
}

TEST(SoslintR2Test, BareTimeIdentifierIsNotFlagged) {
  // `time` is only banned as an explicit ::time / std::time call; plain
  // variables named time are everywhere in a simulator.
  const auto diags = Lint("src/x.cc", R"cc(
    void F(uint64_t time) {
      uint64_t arrival_time = time + 5;
    }
  )cc");
  EXPECT_EQ(CountRule(diags, "R2"), 0);
}

TEST(SoslintR2Test, RngImplementationIsExempt) {
  const std::string src = R"cc(
    void Seed() { std::random_device rd; }
  )cc";
  EXPECT_EQ(CountRule(Lint("src/common/rng.cc", src), "R2"), 0);
  EXPECT_EQ(CountRule(Lint("src/flash/nand.cc", src), "R2"), 1);
}

TEST(SoslintR2Test, MentionsInCommentsAndStringsAreNotFlagged) {
  const auto diags = Lint("src/x.cc", R"cc(
    // std::rand is banned here; see R2.
    const char* kMsg = "do not call rand()";
  )cc");
  EXPECT_EQ(CountRule(diags, "R2"), 0);
}

// --- R3: include style + header guards ---------------------------------------

TEST(SoslintR3Test, FlagsRelativeQuoteInclude) {
  const auto diags = Lint("src/ftl/ftl.cc", R"cc(
    #include "ftl.h"
    #include "src/common/status.h"
    #include <vector>
  )cc");
  ASSERT_EQ(CountRule(diags, "R3"), 1);
  EXPECT_NE(diags[0].message.find("ftl.h"), std::string::npos);
}

TEST(SoslintR3Test, EnforcesGuardNaming) {
  const std::string good = R"cc(
    #ifndef SOS_SRC_FTL_FTL_H_
    #define SOS_SRC_FTL_FTL_H_
    #endif  // SOS_SRC_FTL_FTL_H_
  )cc";
  EXPECT_EQ(CountRule(Lint("src/ftl/ftl.h", good), "R3"), 0);

  const std::string wrong = R"cc(
    #ifndef FTL_H
    #define FTL_H
    #endif
  )cc";
  const auto diags = Lint("src/ftl/ftl.h", wrong);
  ASSERT_EQ(CountRule(diags, "R3"), 1);
  EXPECT_NE(diags[0].message.find("SOS_SRC_FTL_FTL_H_"), std::string::npos);
}

TEST(SoslintR3Test, FlagsPragmaOnceAndMissingGuard) {
  EXPECT_EQ(CountRule(Lint("src/a.h", "#pragma once\n"), "R3"), 1);
  EXPECT_EQ(CountRule(Lint("src/a.h", "int x;\n"), "R3"), 1);
  // .cc files need no guard.
  EXPECT_EQ(CountRule(Lint("src/a.cc", "int x;\n"), "R3"), 0);
}

// --- R4: assert with side effects --------------------------------------------

TEST(SoslintR4Test, FlagsMutationInsideAssert) {
  const auto diags = Lint("src/x.cc", R"cc(
    void F(int x, int i) {
      assert(x = 1);
      assert(++i < 10);
    }
  )cc");
  EXPECT_EQ(CountRule(diags, "R4"), 2);
}

TEST(SoslintR4Test, ComparisonsAndCallsAreFine) {
  const auto diags = Lint("src/x.cc", R"cc(
    void F(int a, int b) {
      assert(a == b);
      assert(a != b && a <= b);
      assert(Check(a));
    }
  )cc");
  EXPECT_EQ(CountRule(diags, "R4"), 0);
}

// --- R5: the escape hatch itself ---------------------------------------------

TEST(SoslintR5Test, UnknownRuleIsAViolation) {
  const auto diags = Lint("src/x.cc", "// soslint:allow(R42) no such rule\n");
  ASSERT_EQ(CountRule(diags, "R5"), 1);
  EXPECT_NE(diags[0].message.find("R42"), std::string::npos);
}

TEST(SoslintR5Test, MissingReasonIsAViolation) {
  const auto diags = Lint("src/x.cc", "// soslint:allow(R1)\n");
  ASSERT_EQ(CountRule(diags, "R5"), 1);
  EXPECT_NE(diags[0].message.find("reason"), std::string::npos);
}

TEST(SoslintR5Test, AllowOnlySuppressesTheNamedRule) {
  // An R2 allow must not quietly waive the R1 violation on the same line.
  const auto diags = Lint("src/x.cc", R"cc(
    std::unordered_map<int, int> m;
    void F() {
      // soslint:allow(R2) wrong rule for this loop
      for (const auto& [k, v] : m) Use(k);
    }
  )cc");
  EXPECT_EQ(CountRule(diags, "R1"), 1);
}

TEST(SoslintR5Test, SameLineAllowWorks) {
  const auto diags = Lint("src/x.cc", R"cc(
    std::unordered_set<int> s;
    void F() {
      for (int v : s) Use(v);  // soslint:allow(R1) order-free side effects
    }
  )cc");
  EXPECT_EQ(CountRule(diags, "R1"), 0);
}

// --- R6: swallowed recovery Status ------------------------------------------

TEST(SoslintR6Test, FlagsBareRecoverCallOnFaultPath) {
  const auto diags = Lint("src/ftl/x.cc", R"cc(
    void Mount(Ftl& ftl) {
      ftl.RecoverFromFlash();
    }
  )cc");
  EXPECT_EQ(CountRule(diags, "R6"), 1);
}

TEST(SoslintR6Test, FlagsVoidCastThroughPointerReceiver) {
  const auto diags = Lint("src/sos/x.cc", R"cc(
    void Mount(SosDevice* dev) {
      (void)dev->RecoverFromPowerLoss();
    }
  )cc");
  EXPECT_EQ(CountRule(diags, "R6"), 1);
}

TEST(SoslintR6Test, FlagsBareDropBadBlockAndGateOp) {
  const auto diags = Lint("src/fault/x.cc", R"cc(
    void Handle(Ftl& ftl, FaultInjector& inj) {
      ftl.DropBadBlock(3);
      inj.GateOp(NandOpKind::kProgram, 0, 0);
    }
  )cc");
  EXPECT_EQ(CountRule(diags, "R6"), 2);
}

TEST(SoslintR6Test, PassesWhenStatusIsBoundOrPropagated) {
  const auto diags = Lint("src/ftl/x.cc", R"cc(
    Status Mount(Ftl& ftl) {
      if (Status s = ftl.RecoverFromFlash(); !s.ok()) {
        return s;
      }
      return ftl.DropBadBlock(3);
    }
  )cc");
  EXPECT_EQ(CountRule(diags, "R6"), 0);
}

TEST(SoslintR6Test, PassesIgnoreResultWaiverAndDeclaration) {
  const auto diags = Lint("src/ftl/x.cc", R"cc(
    Status Ftl::RecoverFromFlash() { return OkStatus(); }
    void BestEffort(Ftl& ftl) {
      IgnoreResult(ftl.RecoverFromFlash());
    }
  )cc");
  EXPECT_EQ(CountRule(diags, "R6"), 0);
}

TEST(SoslintR6Test, AppliesToBenchAndTestCodeToo) {
  // v2 widened the scan scope: a bench driver swallowing a recovery Status
  // is no more acceptable than the FTL doing it.
  const std::string src = R"cc(
    void Check(Ftl& ftl) {
      ftl.RecoverFromFlash();
    }
  )cc";
  EXPECT_EQ(CountRule(Lint("tests/x.cc", src), "R6"), 1);
  EXPECT_EQ(CountRule(Lint("bench/x.cc", src), "R6"), 1);
}

TEST(SoslintR6Test, AllowCommentSuppresses) {
  const auto diags = Lint("src/ftl/x.cc", R"cc(
    void Mount(Ftl& ftl) {
      ftl.RecoverFromFlash();  // soslint:allow(R6) failure re-audited below
    }
  )cc");
  EXPECT_EQ(CountRule(diags, "R6"), 0);
}

// --- R7: cross-TU Status propagation -----------------------------------------

// The canonical catch: the fallible signature lives in a header with no
// [[nodiscard]], the laundering call site lives in another file.
TEST(SoslintR7Test, CatchesVoidCastOfWrapperDeclaredInOtherFile) {
  const std::vector<SourceFile> files = {
      {"src/dev.h",
       R"cc(
         Status Flush();
         Result<uint64_t> Drain();
       )cc"},
      {"src/use.cc",
       R"cc(
         void Idle(Dev& dev) {
           (void)dev.Flush();
           dev.Drain();
         }
       )cc"},
  };
  const auto diags = lint::LintTree(files);
  ASSERT_EQ(CountRule(diags, "R7"), 2);
  // The message points back at the cross-file declaration.
  EXPECT_NE(FirstOf(diags, "R7").message.find("src/dev.h"), std::string::npos);
}

TEST(SoslintR7Test, SunkResultsPass) {
  const std::vector<SourceFile> files = {
      {"src/dev.h", "Status Flush();\n"},
      {"src/use.cc",
       R"cc(
         Status Propagate(Dev& dev) { return dev.Flush(); }
         void Check(Dev& dev) {
           if (!dev.Flush().ok()) {
             Abort();
           }
           EXPECT_TRUE(dev.Flush().ok());
           IgnoreResult(dev.Flush());
         }
       )cc"},
  };
  EXPECT_EQ(CountRule(lint::LintTree(files), "R7"), 0);
}

TEST(SoslintR7Test, AssignedButNeverReadIsFlagged) {
  const std::vector<SourceFile> files = {
      {"src/dev.h", "Status Flush();\n"},
      {"src/use.cc",
       R"cc(
         void Dropped(Dev& dev) {
           Status s = dev.Flush();
           DoOtherWork();
         }
       )cc"},
  };
  const auto diags = lint::LintTree(files);
  ASSERT_EQ(CountRule(diags, "R7"), 1);
  EXPECT_NE(FirstOf(diags, "R7").message.find("never read"), std::string::npos);
}

TEST(SoslintR7Test, AssignedAndCheckedPasses) {
  const std::vector<SourceFile> files = {
      {"src/dev.h", "Status Flush();\n"},
      {"src/use.cc",
       R"cc(
         void Checked(Dev& dev) {
           Status s = dev.Flush();
           if (!s.ok()) {
             Abort();
           }
         }
       )cc"},
  };
  EXPECT_EQ(CountRule(lint::LintTree(files), "R7"), 0);
}

TEST(SoslintR7Test, RetryReassignmentIsNotAFalsePositive) {
  // `s = F();` (no declaration) writes a variable from an enclosing scope
  // the flow pass cannot see; the retry idiom must stay clean.
  const std::vector<SourceFile> files = {
      {"src/dev.h", "Status Flush();\n"},
      {"src/use.cc",
       R"cc(
         void Retry(Dev& dev) {
           Status s = dev.Flush();
           if (!s.ok()) {
             s = dev.Flush();
           }
           Log(s);
         }
       )cc"},
  };
  EXPECT_EQ(CountRule(lint::LintTree(files), "R7"), 0);
}

TEST(SoslintR7Test, SnakeCaseVariablesAreNotIndexedAsFunctions) {
  // `Status result = ...` is a declaration, not a fallible-function
  // signature; calls to something named `result` elsewhere must not fire.
  const std::vector<SourceFile> files = {
      {"src/a.cc", "Status result = MakeStatus();\n"},
      {"src/b.cc", "void F() { result(); }\n"},
  };
  EXPECT_EQ(CountRule(lint::LintTree(files), "R7"), 0);
}

TEST(SoslintR7Test, AllowCommentSuppresses) {
  const std::vector<SourceFile> files = {
      {"src/dev.h", "Status Flush();\n"},
      {"src/use.cc",
       R"cc(
         void Idle(Dev& dev) {
           (void)dev.Flush();  // soslint:allow(R7) demo of the legacy idiom
         }
       )cc"},
  };
  EXPECT_EQ(CountRule(lint::LintTree(files), "R7"), 0);
}

// --- R8: shared-mutable captures in thread-pool lambdas ----------------------

TEST(SoslintR8Test, FlagsSharedAccumulatorByRefCapture) {
  const auto diags = Lint("bench/x.cc", R"cc(
    void Sum(ThreadPool& pool) {
      double total = 0.0;
      ParallelFor(pool, 0, 8, [&total](size_t i) { total += Work(i); });
      Report(total);
    }
  )cc");
  ASSERT_EQ(CountRule(diags, "R8"), 1);
  EXPECT_NE(diags[0].message.find("total"), std::string::npos);
}

TEST(SoslintR8Test, PerIndexSlotWriteIsTheSanctionedPattern) {
  // The ParallelMap contract: each task writes only its own slot.
  const auto diags = Lint("src/common/thread_pool.cc", R"cc(
    void Map(ThreadPool& pool, std::vector<double>& out) {
      ParallelFor(pool, 0, out.size(), [&out](size_t i) { out[i] = Work(i); });
    }
  )cc");
  EXPECT_EQ(CountRule(diags, "R8"), 0);
}

TEST(SoslintR8Test, MutexGuardedWriteIsFine) {
  const auto diags = Lint("bench/x.cc", R"cc(
    void Sum(ThreadPool& pool, std::mutex& mu) {
      double total = 0.0;
      ParallelFor(pool, 0, 8, [&total, &mu](size_t i) {
        std::lock_guard<std::mutex> lock(mu);
        total += Work(i);
      });
    }
  )cc");
  EXPECT_EQ(CountRule(diags, "R8"), 0);
}

TEST(SoslintR8Test, ByValueCaptureCannotRace) {
  const auto diags = Lint("bench/x.cc", R"cc(
    void F(ThreadPool& pool, uint64_t seed) {
      pool.Submit([seed] { Use(seed); });
    }
  )cc");
  EXPECT_EQ(CountRule(diags, "R8"), 0);
}

TEST(SoslintR8Test, DefaultRefCaptureWritingOutsideNameIsFlagged) {
  const auto diags = Lint("bench/x.cc", R"cc(
    void F(ThreadPool& pool) {
      uint64_t count = 0;
      pool.Submit([&] { count++; });
      Report(count);
    }
  )cc");
  EXPECT_EQ(CountRule(diags, "R8"), 1);
}

TEST(SoslintR8Test, BareQueuePushFromPoolLambdaIsFlagged) {
  // Positive seed for the queue verbs: Push on a plain struct (no mutex
  // member anywhere in the tree) from a Submit lambda is a data race.
  const auto diags = Lint("bench/x.cc", R"cc(
    struct PlainQueue {
      std::deque<int> items;
      void Push(int v);
    };
    void F(ThreadPool& pool, PlainQueue& results) {
      pool.Submit([&results] { results.Push(1); });
    }
  )cc");
  ASSERT_EQ(CountRule(diags, "R8"), 1);
  EXPECT_NE(FirstOf(diags, "R8").message.find("results"), std::string::npos);
}

TEST(SoslintR8Test, SynchronizedQueueHandoffIsExempt) {
  // Negative seed: the completion-queue hand-off idiom. BoundedQueue carries
  // its own mutex, so a Push through it from a pool lambda is the sanctioned
  // cross-thread channel -- no diagnostic, even though the lambda body holds
  // no lock of its own.
  const auto diags = Lint("src/serve/x.cc", R"cc(
    class BoundedQueue {
     public:
      void Push(int v);
     private:
      std::mutex mu_;
      std::condition_variable cv_;
    };
    void F(ThreadPool& pool, BoundedQueue& completions) {
      pool.Submit([&completions] { completions.Push(1); });
    }
  )cc");
  EXPECT_EQ(CountRule(diags, "R8"), 0);
}

TEST(SoslintR8Test, SynchronizedTypeResolvesAcrossTranslationUnits) {
  // The class and its instance live in different files: the exemption rides
  // on the cross-TU symbol index, not on same-file text.
  const std::vector<lint::SourceFile> files = {
      {"src/serve/bounded_queue.h", R"cc(
        class CompletionQueue {
         public:
          void Push(int v);
         private:
          std::mutex mu_;
        };
      )cc"},
      {"src/serve/service.cc", R"cc(
        void Pump(ThreadPool& pool, CompletionQueue& done) {
          pool.Submit([&done] { done.Push(2); });
        }
      )cc"},
  };
  const auto diags = lint::LintTree(files);
  EXPECT_EQ(CountRule(diags, "R8"), 0);
}

TEST(SoslintR8Test, AllowCommentSuppresses) {
  const auto diags = Lint("bench/x.cc", R"cc(
    void Sum(ThreadPool& pool) {
      double total = 0.0;
      // soslint:allow(R8) single worker pool in this configuration
      ParallelFor(pool, 0, 8, [&total](size_t i) { total += Work(i); });
    }
  )cc");
  EXPECT_EQ(CountRule(diags, "R8"), 0);
}

// --- R9: golden-output float stability ---------------------------------------

TEST(SoslintR9Test, FlagsStreamedDoubleVariable) {
  const auto diags = Lint("bench/x.cc", R"cc(
    void Print(std::ostream& os, double ratio) {
      os << ratio << "\n";
    }
  )cc");
  ASSERT_EQ(CountRule(diags, "R9"), 1);
  EXPECT_NE(diags[0].message.find("ratio"), std::string::npos);
}

TEST(SoslintR9Test, DoubleFieldIndexedCrossFile) {
  // The struct lives in a header; the stream insertion in another file never
  // spells the type. Only the tree-wide index can catch it.
  const std::vector<SourceFile> files = {
      {"src/stats.h", "struct Stats { double mean_latency; };\n"},
      {"bench/report.cc",
       R"cc(
         void Report(std::ostream& os, const Stats& stats) {
           os << stats.mean_latency;
         }
       )cc"},
  };
  const auto diags = lint::LintTree(files);
  ASSERT_EQ(CountRule(diags, "R9"), 1);
  EXPECT_EQ(diags[0].file, "bench/report.cc");
}

TEST(SoslintR9Test, SanctionedFormattersPass) {
  const auto diags = Lint("bench/x.cc", R"cc(
    void Print(std::ostream& os, double ratio) {
      os << FormatDouble(ratio, 3);
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.3f", ratio);
      std::printf("%.17g\n", ratio);
    }
  )cc");
  EXPECT_EQ(CountRule(diags, "R9"), 0);
}

TEST(SoslintR9Test, FlagsToStringOnDouble) {
  const auto diags = Lint("src/x.cc", R"cc(
    std::string Render(double score) {
      return std::to_string(score);
    }
  )cc");
  ASSERT_EQ(CountRule(diags, "R9"), 1);
  EXPECT_NE(diags[0].message.find("to_string"), std::string::npos);
}

TEST(SoslintR9Test, ToStringOnIntegerPasses) {
  const auto diags = Lint("src/x.cc", R"cc(
    std::string Render(uint64_t count) {
      return std::to_string(count);
    }
  )cc");
  EXPECT_EQ(CountRule(diags, "R9"), 0);
}

TEST(SoslintR9Test, TestsAreOutOfScope) {
  // gtest failure messages are not golden bytes.
  const auto diags = Lint("tests/x.cc", R"cc(
    void Check(double got) {
      std::cerr << got;
    }
  )cc");
  EXPECT_EQ(CountRule(diags, "R9"), 0);
}

TEST(SoslintR9Test, FloatLiteralThroughStreamIsFlagged) {
  const auto diags = Lint("src/x.cc", R"cc(
    void Banner(std::ostream& os) { os << 3.14; }
  )cc");
  EXPECT_EQ(CountRule(diags, "R9"), 1);
}

// --- R10: unit hygiene -------------------------------------------------------

TEST(SoslintR10Test, FlagsRawUnitLiterals) {
  const auto diags = Lint("src/x.cc", R"cc(
    uint64_t CacheBytes() { return 4 * 1024; }
    uint64_t Micros() { return 3 * 1000000; }
  )cc");
  EXPECT_EQ(CountRule(diags, "R10"), 2);
}

TEST(SoslintR10Test, NamedConstantsPass) {
  const auto diags = Lint("src/x.cc", R"cc(
    uint64_t CacheBytes() { return 4 * kKiB; }
    uint64_t Micros() { return 3 * kUsPerSecond; }
  )cc");
  EXPECT_EQ(CountRule(diags, "R10"), 0);
}

TEST(SoslintR10Test, UnitsHeaderItselfIsExempt) {
  const auto diags = Lint("src/common/units.h", R"cc(
    #ifndef SOS_SRC_COMMON_UNITS_H_
    #define SOS_SRC_COMMON_UNITS_H_
    inline constexpr uint64_t kKiB = 1024ull;
    #endif  // SOS_SRC_COMMON_UNITS_H_
  )cc");
  EXPECT_EQ(CountRule(diags, "R10"), 0);
}

TEST(SoslintR10Test, MixedBinaryAndDecimalFamiliesFlagged) {
  const auto diags = Lint("src/x.cc", R"cc(
    double Shady(uint64_t n) { return n * kGiB / kGB; }
  )cc");
  ASSERT_EQ(CountRule(diags, "R10"), 1);
  EXPECT_NE(diags[0].message.find("kGiB"), std::string::npos);
  EXPECT_NE(diags[0].message.find("kGB"), std::string::npos);
}

TEST(SoslintR10Test, ConversionHelperExemptsTheMix) {
  const auto diags = Lint("src/x.cc", R"cc(
    double Honest(uint64_t n) { return BytesToGB(n * kGiB); }
  )cc");
  EXPECT_EQ(CountRule(diags, "R10"), 0);
}

TEST(SoslintR10Test, MicrosecondsTimesDaysFlagged) {
  const auto diags = Lint("src/x.cc", R"cc(
    double Rate(double age_us, double life_days) {
      return age_us / life_days;
    }
  )cc");
  ASSERT_EQ(CountRule(diags, "R10"), 1);

  const auto fixed = Lint("src/x.cc", R"cc(
    double Rate(double age_us, double life_days) {
      return UsToDays(age_us) / life_days;
    }
  )cc");
  EXPECT_EQ(CountRule(fixed, "R10"), 0);
}

TEST(SoslintR10Test, AllowCommentSuppresses) {
  const auto diags = Lint("src/x.cc", R"cc(
    // soslint:allow(R10) grid density, not a size
    constexpr uint32_t kGridPoints = 1024;
  )cc");
  EXPECT_EQ(CountRule(diags, "R10"), 0);
}

// --- Symbol index ------------------------------------------------------------

TEST(SoslintIndexTest, CollectsFalliblesUnorderedAndDoubles) {
  const auto index = lint::BuildIndex({
      {"src/a.h",
       R"cc(
         Status Flush();
         Result<int> Count() const;
         std::unordered_map<int, int> table_;
         double mean_us = 0.0;
       )cc"},
  });
  ASSERT_EQ(index.fallible_fns.count("Flush"), 1u);
  EXPECT_EQ(index.fallible_fns.at("Flush").return_type, "Status");
  ASSERT_EQ(index.fallible_fns.count("Count"), 1u);
  EXPECT_EQ(index.fallible_fns.at("Count").return_type, "Result");
  EXPECT_EQ(index.unordered_names.count("table_"), 1u);
  EXPECT_EQ(index.double_idents.count("mean_us"), 1u);
}

TEST(SoslintIndexTest, LintFileConsultsAnExternalIndex) {
  const std::vector<SourceFile> header = {{"src/dev.h", "Status Flush();\n"}};
  const auto index = lint::BuildIndex(header);
  const SourceFile use{"src/use.cc", "void F(Dev& dev) { dev.Flush(); }\n"};
  EXPECT_EQ(CountRule(lint::LintFile(use, index), "R7"), 1);
}

// --- Output format & determinism ---------------------------------------------

TEST(SoslintOutputTest, FormatDiagnosticIsEditorParseable) {
  const Diagnostic d{"src/ftl/ftl.cc", 42, "R1", "msg"};
  EXPECT_EQ(lint::FormatDiagnostic(d), "src/ftl/ftl.cc:42: [R1] msg");
}

TEST(SoslintOutputTest, LintTreeSortsDiagnosticsByFileAndLine) {
  // Files presented in reverse order; diagnostics must come out sorted so CI
  // diffs are stable run to run.
  const std::vector<SourceFile> files = {
      {"src/zzz.cc", "#include \"b.h\"\n"},
      {"src/aaa.cc", "#include \"a.h\"\n"},
  };
  const auto diags = lint::LintTree(files);
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_EQ(diags[0].file, "src/aaa.cc");
  EXPECT_EQ(diags[1].file, "src/zzz.cc");
}

TEST(SoslintOutputTest, JsonReportEscapesAndCounts) {
  const std::vector<Diagnostic> diags = {
      {"src/a.cc", 3, "R2", "uses \"rand\" badly"},
  };
  const std::string json = lint::FormatReportJson(diags, 17);
  EXPECT_NE(json.find("\"schema\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"files_scanned\": 17"), std::string::npos);
  EXPECT_NE(json.find("\\\"rand\\\""), std::string::npos);
  EXPECT_NE(json.find("\"rule\": \"R2\""), std::string::npos);
}

// --- Baseline: enumerated, justified debt ------------------------------------

TEST(SoslintBaselineTest, RoundTripSuppressesOnlyEnumeratedDebt) {
  const std::vector<Diagnostic> old_debt = {
      {"src/legacy.cc", 10, "R10", "raw unit literal 1024"},
  };
  // load...
  Baseline baseline;
  std::string error;
  ASSERT_TRUE(lint::ParseBaselineJson(lint::WriteBaselineJson(old_debt), &baseline, &error))
      << error;
  ASSERT_EQ(baseline.entries.size(), 1u);
  EXPECT_EQ(baseline.entries[0].file, "src/legacy.cc");

  // ...suppress...
  const std::vector<Diagnostic> now = {
      {"src/legacy.cc", 10, "R10", "raw unit literal 1024"},
      {"src/fresh.cc", 4, "R7", "discarding the Status of 'Flush'"},
  };
  const auto remaining = lint::ApplyBaseline(now, baseline);
  // ...new violation still fails.
  ASSERT_EQ(remaining.size(), 1u);
  EXPECT_EQ(remaining[0].file, "src/fresh.cc");
  EXPECT_EQ(remaining[0].rule, "R7");
}

TEST(SoslintBaselineTest, StaleEntryIsItselfAViolation) {
  Baseline baseline;
  baseline.entries.push_back({"src/gone.cc", 9, "R1", "fixed long ago"});
  const auto remaining = lint::ApplyBaseline({}, baseline);
  ASSERT_EQ(remaining.size(), 1u);
  EXPECT_EQ(remaining[0].rule, "R5");
  EXPECT_NE(remaining[0].message.find("stale"), std::string::npos);
}

TEST(SoslintBaselineTest, MatchRequiresFileLineAndRule) {
  Baseline baseline;
  baseline.entries.push_back({"src/a.cc", 10, "R10", "justified"});
  // Same file+line, different rule: not suppressed (and the entry is stale).
  const std::vector<Diagnostic> diags = {{"src/a.cc", 10, "R9", "streamed double"}};
  const auto remaining = lint::ApplyBaseline(diags, baseline);
  EXPECT_EQ(CountRule(remaining, "R9"), 1);
  EXPECT_EQ(CountRule(remaining, "R5"), 1);
}

TEST(SoslintBaselineTest, RejectsMalformedAndUnjustifiedBaselines) {
  Baseline baseline;
  std::string error;
  EXPECT_FALSE(lint::ParseBaselineJson("not json", &baseline, &error));
  EXPECT_FALSE(lint::ParseBaselineJson("{\"schema\": 2, \"entries\": []}", &baseline, &error));
  EXPECT_NE(error.find("schema"), std::string::npos);
  // A note is mandatory: debt without a justification is not reviewable.
  const std::string no_note =
      "{\"schema\": 1, \"entries\": ["
      "{\"file\": \"src/a.cc\", \"line\": 3, \"rule\": \"R1\", \"note\": \"\"}]}";
  EXPECT_FALSE(lint::ParseBaselineJson(no_note, &baseline, &error));
  EXPECT_NE(error.find("note"), std::string::npos);
  // Unknown rules cannot be baselined.
  const std::string bad_rule =
      "{\"schema\": 1, \"entries\": ["
      "{\"file\": \"src/a.cc\", \"line\": 3, \"rule\": \"R42\", \"note\": \"x\"}]}";
  EXPECT_FALSE(lint::ParseBaselineJson(bad_rule, &baseline, &error));
  EXPECT_NE(error.find("R42"), std::string::npos);
}

TEST(SoslintBaselineTest, EmptyBaselineParsesAndSuppressesNothing) {
  Baseline baseline;
  std::string error;
  ASSERT_TRUE(
      lint::ParseBaselineJson("{\n  \"schema\": 1,\n  \"entries\": []\n}\n", &baseline, &error))
      << error;
  EXPECT_TRUE(baseline.entries.empty());
  const std::vector<Diagnostic> diags = {{"src/a.cc", 1, "R1", "m"}};
  EXPECT_EQ(lint::ApplyBaseline(diags, baseline).size(), 1u);
}

}  // namespace
}  // namespace sos
