// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Tests for the fleet subsystem (DESIGN.md §13): archetype sampling,
// the integer merge algebra of the ledger, and the shard partial codec.
// The end-to-end byte-identity of bench_fleet artifacts across --jobs and
// shard splits is enforced by the fleet_shard_merge ctest; this file proves
// the underlying properties at the unit level, including the algebraic ones
// (associativity, commutativity) the artifact test only samples.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/fleet/archetype.h"
#include "src/fleet/fleet.h"
#include "src/fleet/ledger.h"
#include "src/fleet/partial.h"
#include "src/obs/metrics.h"

namespace sos::fleet {
namespace {

// Full-state ledger comparison via the canonical serialization: two ledgers
// are equal iff their partial JSON (which carries every field, all integer)
// renders the same bytes.
std::string LedgerBytes(const FleetLedger& ledger) {
  FleetPartial partial;
  partial.fleet_seed = 1;
  partial.fleet_devices = ledger.devices();
  partial.mix = "test";
  partial.shard_devices = ledger.devices();
  partial.ledger = ledger;
  return PartialToJson(partial);
}

// A synthetic outcome stream: plausible magnitudes, deterministic, and
// varied enough to populate every histogram bucket including overflow.
DeviceOutcome RandomOutcome(Rng& rng) {
  DeviceOutcome outcome;
  outcome.archetype = static_cast<Archetype>(rng.NextBounded(kNumArchetypes));
  outcome.kind = rng.NextBool(0.5) ? DeviceKind::kSos : DeviceKind::kTlcBaseline;
  outcome.full_size_gb = static_cast<double>(64u << rng.NextBounded(4));
  outcome.sys_share = 0.25 + 0.5 * rng.NextDouble();
  outcome.projected_lifetime_years = 120.0 * rng.NextDouble();
  outcome.initial_exported_pages = 10000 + rng.NextBounded(1000);
  outcome.final_exported_pages = outcome.initial_exported_pages - rng.NextBounded(5000);
  outcome.pec_variance = 6000.0 * rng.NextDouble();
  outcome.autodelete_files = rng.NextBounded(8000);
  outcome.autodelete_bytes = outcome.autodelete_files * 4096;
  outcome.create_failures = rng.NextBounded(10);
  outcome.host_bytes_written = rng.NextBounded(1u << 30);
  outcome.daemon_activations = rng.NextBounded(500);
  outcome.trace_dropped = rng.NextBounded(100);
  return outcome;
}

std::vector<DeviceOutcome> RandomOutcomes(uint64_t seed, size_t n) {
  Rng rng(seed);
  std::vector<DeviceOutcome> outcomes;
  outcomes.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    outcomes.push_back(RandomOutcome(rng));
  }
  return outcomes;
}

FleetLedger FoldAll(const std::vector<DeviceOutcome>& outcomes) {
  FleetLedger ledger;
  for (const DeviceOutcome& outcome : outcomes) {
    ledger.Fold(outcome);
  }
  return ledger;
}

// --- Archetype sampling ----------------------------------------------------

TEST(ArchetypeTest, NamesRoundTrip) {
  for (size_t i = 0; i < kNumArchetypes; ++i) {
    const auto archetype = static_cast<Archetype>(i);
    const Result<Archetype> parsed = ParseArchetype(ArchetypeName(archetype));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), archetype);
  }
  EXPECT_FALSE(ParseArchetype("gamer").ok());
}

TEST(ArchetypeTest, DrawIsDeterministicPerIndex) {
  const MixSpec mix;
  const DeviceDraw a = DrawDevice(mix, 42, 7);
  const DeviceDraw b = DrawDevice(mix, 42, 7);
  EXPECT_EQ(a.archetype, b.archetype);
  EXPECT_EQ(a.config.seed, b.config.seed);
  EXPECT_EQ(a.config.kind, b.config.kind);
  EXPECT_EQ(a.config.days, b.config.days);
  EXPECT_EQ(a.config.nand.num_blocks, b.config.nand.num_blocks);
  EXPECT_EQ(a.config.nand.initial_pec, b.config.nand.initial_pec);
  EXPECT_DOUBLE_EQ(a.config.workload.photos_per_day, b.config.workload.photos_per_day);
  EXPECT_DOUBLE_EQ(a.config.workload.cache_files_per_day, b.config.workload.cache_files_per_day);
  EXPECT_DOUBLE_EQ(a.full_size_gb, b.full_size_gb);
}

TEST(ArchetypeTest, DrawOrderIndependent) {
  // Device i's draw must not depend on which devices were drawn before it --
  // that is what makes any shard partition see the same population.
  const MixSpec mix;
  const DeviceDraw direct = DrawDevice(mix, 9, 100);
  for (uint64_t i = 0; i < 100; ++i) {
    (void)DrawDevice(mix, 9, i);
  }
  const DeviceDraw after = DrawDevice(mix, 9, 100);
  EXPECT_EQ(direct.config.seed, after.config.seed);
  EXPECT_EQ(direct.archetype, after.archetype);
  EXPECT_DOUBLE_EQ(direct.config.workload.intensity, after.config.workload.intensity);
}

TEST(ArchetypeTest, SeedsAreUniquePerDevice) {
  const MixSpec mix;
  std::vector<uint64_t> seeds;
  for (uint64_t i = 0; i < 200; ++i) {
    seeds.push_back(DrawDevice(mix, 5, i).config.seed);
  }
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::unique(seeds.begin(), seeds.end()), seeds.end());
}

TEST(ArchetypeTest, MixWeightsDrivePopulationShares) {
  Result<MixSpec> mix = ParseMixSpec("light:80,app_churner:20");
  ASSERT_TRUE(mix.ok());
  std::array<uint64_t, kNumArchetypes> counts = {};
  const uint64_t n = 4000;
  for (uint64_t i = 0; i < n; ++i) {
    ++counts[static_cast<size_t>(DrawDevice(mix.value(), 3, i).archetype)];
  }
  EXPECT_EQ(counts[static_cast<size_t>(Archetype::kMediaHoarder)], 0u);
  const double light_share =
      static_cast<double>(counts[static_cast<size_t>(Archetype::kLight)]) / static_cast<double>(n);
  EXPECT_NEAR(light_share, 0.8, 0.03);
}

TEST(ArchetypeTest, MixSpecParsing) {
  Result<MixSpec> mix = ParseMixSpec("light:60,media_hoarder:25,app_churner:15");
  ASSERT_TRUE(mix.ok());
  EXPECT_DOUBLE_EQ(mix.value().TotalWeight(), 100.0);
  EXPECT_DOUBLE_EQ(mix.value().weights[static_cast<size_t>(Archetype::kMediaHoarder)], 25.0);

  // Unlisted archetypes get weight zero.
  Result<MixSpec> partial = ParseMixSpec("light:1");
  ASSERT_TRUE(partial.ok());
  EXPECT_DOUBLE_EQ(partial.value().weights[static_cast<size_t>(Archetype::kAppChurner)], 0.0);

  EXPECT_FALSE(ParseMixSpec("").ok());                  // zero total weight
  EXPECT_FALSE(ParseMixSpec("light").ok());             // no colon
  EXPECT_FALSE(ParseMixSpec("light:").ok());            // empty weight
  EXPECT_FALSE(ParseMixSpec("gamer:10").ok());          // unknown archetype
  EXPECT_FALSE(ParseMixSpec("light:-3").ok());          // negative weight
  EXPECT_FALSE(ParseMixSpec("light:abc").ok());         // non-numeric weight
  EXPECT_FALSE(ParseMixSpec("light:1,light:2").ok());   // duplicate entry
  EXPECT_FALSE(ParseMixSpec("light:0").ok());           // zero total weight
}

TEST(ArchetypeTest, MixSpecRoundTripsThroughString) {
  Result<MixSpec> mix = ParseMixSpec("light:3,media_hoarder:1.5,app_churner:0.25");
  ASSERT_TRUE(mix.ok());
  Result<MixSpec> again = ParseMixSpec(MixSpecToString(mix.value()));
  ASSERT_TRUE(again.ok());
  for (size_t i = 0; i < kNumArchetypes; ++i) {
    EXPECT_DOUBLE_EQ(mix.value().weights[i], again.value().weights[i]);
  }
}

// --- Shard specs and config validation -------------------------------------

TEST(FleetConfigTest, ShardSpecParsing) {
  Result<std::pair<uint64_t, uint64_t>> spec = ParseShardSpec("3/8");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec.value().first, 3u);
  EXPECT_EQ(spec.value().second, 8u);

  EXPECT_FALSE(ParseShardSpec("").ok());
  EXPECT_FALSE(ParseShardSpec("3").ok());
  EXPECT_FALSE(ParseShardSpec("/8").ok());
  EXPECT_FALSE(ParseShardSpec("3/").ok());
  EXPECT_FALSE(ParseShardSpec("a/b").ok());
  EXPECT_FALSE(ParseShardSpec("1/0").ok());
  EXPECT_FALSE(ParseShardSpec("8/8").ok());  // index must be < count
  EXPECT_FALSE(ParseShardSpec("1/2/3").ok());
}

TEST(FleetConfigTest, Validation) {
  FleetConfig config;
  EXPECT_TRUE(ValidateFleetConfig(config).ok());
  config.devices = 0;
  EXPECT_FALSE(ValidateFleetConfig(config).ok());
  config.devices = 10;
  config.shard_index = 2;
  config.shard_count = 2;
  EXPECT_FALSE(ValidateFleetConfig(config).ok());
  config.shard_index = 1;
  EXPECT_TRUE(ValidateFleetConfig(config).ok());
  config.mix.weights.fill(0.0);
  EXPECT_FALSE(ValidateFleetConfig(config).ok());
}

// --- Fixed point and histograms --------------------------------------------

TEST(FleetLedgerTest, MicroFixedPointRoundTrip) {
  EXPECT_EQ(ToMicro(1.5), 1500000);
  EXPECT_EQ(ToMicro(-2.25), -2250000);
  EXPECT_DOUBLE_EQ(FromMicro(ToMicro(3.141592)), 3.141592);
  // Rounding, not truncation.
  EXPECT_EQ(ToMicro(0.0000015), 2);
}

TEST(FleetLedgerTest, HistogramBucketsAndOverflow) {
  FleetHistogram h({1.0, 2.0, 4.0});
  h.Observe(0.5);   // bucket 0
  h.Observe(1.0);   // bucket 0 (inclusive upper bound)
  h.Observe(3.0);   // bucket 2
  h.Observe(100.0); // overflow
  ASSERT_EQ(h.buckets().size(), 4u);
  EXPECT_EQ(h.buckets()[0], 2u);
  EXPECT_EQ(h.buckets()[1], 0u);
  EXPECT_EQ(h.buckets()[2], 1u);
  EXPECT_EQ(h.buckets()[3], 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.micro_sum(), ToMicro(104.5));
}

TEST(FleetLedgerTest, HistogramMergeAddsAndChecksShape) {
  FleetHistogram a({1.0, 2.0});
  FleetHistogram b({1.0, 2.0});
  a.Observe(0.5);
  b.Observe(1.5);
  b.Observe(9.0);
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.buckets()[0], 1u);
  EXPECT_EQ(a.buckets()[1], 1u);
  EXPECT_EQ(a.buckets()[2], 1u);

  FleetHistogram mismatched({1.0, 3.0});
  EXPECT_FALSE(a.Merge(mismatched).ok());
}

// --- Merge algebra ---------------------------------------------------------

TEST(FleetLedgerTest, FoldCountsArchetypesAndKinds) {
  const std::vector<DeviceOutcome> outcomes = RandomOutcomes(11, 300);
  const FleetLedger ledger = FoldAll(outcomes);
  EXPECT_EQ(ledger.devices(), 300u);
  uint64_t archetype_sum = 0;
  for (uint64_t c : ledger.archetype_devices()) {
    archetype_sum += c;
  }
  EXPECT_EQ(archetype_sum, 300u);
  EXPECT_EQ(ledger.sos_devices() + ledger.baseline_devices(), 300u);
  EXPECT_EQ(ledger.lifetime_years().count(), 300u);
  // SOS devices cost less carbon than the TLC counterfactual, never more.
  EXPECT_GE(ledger.carbon().tlc_counterfactual_micro_kg, ledger.carbon().actual_micro_kg);
}

TEST(FleetLedgerTest, MergeEqualsUnpartitionedFold) {
  const std::vector<DeviceOutcome> outcomes = RandomOutcomes(17, 257);
  const FleetLedger whole = FoldAll(outcomes);

  // Strided 3-way partition, merged in order.
  std::array<FleetLedger, 3> parts;
  for (size_t i = 0; i < outcomes.size(); ++i) {
    parts[i % 3].Fold(outcomes[i]);
  }
  FleetLedger merged = parts[0];
  ASSERT_TRUE(merged.Merge(parts[1]).ok());
  ASSERT_TRUE(merged.Merge(parts[2]).ok());
  EXPECT_EQ(LedgerBytes(merged), LedgerBytes(whole));
}

TEST(FleetLedgerTest, MergeIsCommutative) {
  const std::vector<DeviceOutcome> outcomes = RandomOutcomes(23, 100);
  FleetLedger a, b;
  for (size_t i = 0; i < outcomes.size(); ++i) {
    (i < 40 ? a : b).Fold(outcomes[i]);
  }
  FleetLedger ab = a;
  ASSERT_TRUE(ab.Merge(b).ok());
  FleetLedger ba = b;
  ASSERT_TRUE(ba.Merge(a).ok());
  EXPECT_EQ(LedgerBytes(ab), LedgerBytes(ba));
}

TEST(FleetLedgerTest, MergeIsAssociative) {
  const std::vector<DeviceOutcome> outcomes = RandomOutcomes(29, 120);
  std::array<FleetLedger, 3> parts;
  for (size_t i = 0; i < outcomes.size(); ++i) {
    parts[i % 3].Fold(outcomes[i]);
  }
  // (a + b) + c
  FleetLedger left = parts[0];
  ASSERT_TRUE(left.Merge(parts[1]).ok());
  ASSERT_TRUE(left.Merge(parts[2]).ok());
  // a + (b + c)
  FleetLedger bc = parts[1];
  ASSERT_TRUE(bc.Merge(parts[2]).ok());
  FleetLedger right = parts[0];
  ASSERT_TRUE(right.Merge(bc).ok());
  EXPECT_EQ(LedgerBytes(left), LedgerBytes(right));
}

TEST(FleetLedgerTest, MetricsExportIsByteStableAcrossGroupings) {
  const std::vector<DeviceOutcome> outcomes = RandomOutcomes(31, 90);
  const FleetLedger whole = FoldAll(outcomes);
  FleetLedger halves_front, halves_back;
  for (size_t i = 0; i < outcomes.size(); ++i) {
    (i % 2 == 0 ? halves_front : halves_back).Fold(outcomes[i]);
  }
  FleetLedger merged = halves_back;  // deliberately merge "backwards"
  ASSERT_TRUE(merged.Merge(halves_front).ok());

  obs::MetricRegistry reg_whole, reg_merged;
  whole.ToMetrics(reg_whole);
  merged.ToMetrics(reg_merged);
  EXPECT_EQ(reg_whole.ToJson(), reg_merged.ToJson());
}

// --- Partial codec ---------------------------------------------------------

FleetPartial MakePartial(uint64_t outcome_seed, uint64_t shard_index, uint64_t shard_count) {
  FleetPartial partial;
  partial.fleet_seed = 77;
  partial.fleet_devices = 200;
  partial.mix = "light:60,media_hoarder:25,app_churner:15";
  partial.shard_index = shard_index;
  partial.shard_count = shard_count;
  partial.shard_devices = 100;
  partial.ledger = FoldAll(RandomOutcomes(outcome_seed, 100));
  return partial;
}

TEST(FleetPartialTest, JsonRoundTripIsExact) {
  const FleetPartial partial = MakePartial(37, 1, 2);
  const std::string json = PartialToJson(partial);
  Result<FleetPartial> parsed = ParsePartialJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(PartialToJson(parsed.value()), json);
  EXPECT_EQ(parsed.value().shard_index, 1u);
  EXPECT_EQ(parsed.value().ledger.devices(), 100u);
  EXPECT_EQ(parsed.value().ledger.carbon().actual_micro_kg,
            partial.ledger.carbon().actual_micro_kg);
}

TEST(FleetPartialTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ParsePartialJson("").ok());
  EXPECT_FALSE(ParsePartialJson("not json").ok());
  EXPECT_FALSE(ParsePartialJson("{}").ok());
  EXPECT_FALSE(ParsePartialJson("{\"fleet_partial\": {}}").ok());
  // Wrong schema version must be refused, not guessed at.
  std::string json = PartialToJson(MakePartial(41, 0, 1));
  const size_t pos = json.find("\"schema_version\": 1");
  ASSERT_NE(pos, std::string::npos);
  json.replace(pos, std::string("\"schema_version\": 1").size(), "\"schema_version\": 999");
  EXPECT_FALSE(ParsePartialJson(json).ok());
}

TEST(FleetPartialTest, MergeReconstructsWholeFleet) {
  const std::vector<DeviceOutcome> outcomes = RandomOutcomes(43, 200);

  FleetPartial whole;
  whole.fleet_seed = 77;
  whole.fleet_devices = 200;
  whole.mix = "m";
  whole.shard_devices = 200;
  whole.ledger = FoldAll(outcomes);

  std::vector<FleetPartial> shards(2);
  for (uint64_t s = 0; s < 2; ++s) {
    shards[s].fleet_seed = 77;
    shards[s].fleet_devices = 200;
    shards[s].mix = "m";
    shards[s].shard_index = s;
    shards[s].shard_count = 2;
  }
  for (size_t i = 0; i < outcomes.size(); ++i) {
    shards[i % 2].ledger.Fold(outcomes[i]);
    ++shards[i % 2].shard_devices;
  }
  std::swap(shards[0], shards[1]);  // merge must canonicalize order itself
  Result<FleetPartial> merged = MergePartials(std::move(shards));
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(merged.value().shard_index, 0u);
  EXPECT_EQ(merged.value().shard_count, 1u);
  EXPECT_EQ(PartialToJson(merged.value()), PartialToJson(whole));
}

TEST(FleetPartialTest, MergeRejectsBadShardSets) {
  // Empty set.
  EXPECT_FALSE(MergePartials({}).ok());

  // Mismatched population seed.
  {
    std::vector<FleetPartial> shards = {MakePartial(47, 0, 2), MakePartial(53, 1, 2)};
    shards[1].fleet_seed = 78;
    EXPECT_FALSE(MergePartials(std::move(shards)).ok());
  }
  // Mismatched mix.
  {
    std::vector<FleetPartial> shards = {MakePartial(47, 0, 2), MakePartial(53, 1, 2)};
    shards[1].mix = "light:100";
    EXPECT_FALSE(MergePartials(std::move(shards)).ok());
  }
  // Mismatched shard_count.
  {
    std::vector<FleetPartial> shards = {MakePartial(47, 0, 2), MakePartial(53, 1, 3)};
    EXPECT_FALSE(MergePartials(std::move(shards)).ok());
  }
  // Duplicate shard.
  {
    std::vector<FleetPartial> shards = {MakePartial(47, 0, 2), MakePartial(53, 0, 2)};
    EXPECT_FALSE(MergePartials(std::move(shards)).ok());
  }
  // Incomplete cover (1 of 2 shards).
  {
    std::vector<FleetPartial> shards = {MakePartial(47, 0, 2)};
    EXPECT_FALSE(MergePartials(std::move(shards)).ok());
  }
  // Shard device totals must add up to the population.
  {
    std::vector<FleetPartial> shards = {MakePartial(47, 0, 2), MakePartial(53, 1, 2)};
    shards[0].shard_devices = 99;
    EXPECT_FALSE(MergePartials(std::move(shards)).ok());
  }
}

// --- End-to-end (small fleets) ---------------------------------------------

TEST(FleetRunTest, ShardedRunsMergeToTheUnshardedLedger) {
  FleetConfig config;
  config.devices = 10;
  config.seed = 6;

  Result<FleetPartial> whole = RunFleet(config);
  ASSERT_TRUE(whole.ok()) << whole.status().ToString();
  EXPECT_EQ(whole.value().ledger.devices(), 10u);

  std::vector<FleetPartial> shards;
  for (uint64_t s = 0; s < 2; ++s) {
    config.shard_index = s;
    config.shard_count = 2;
    Result<FleetPartial> shard = RunFleet(config);
    ASSERT_TRUE(shard.ok()) << shard.status().ToString();
    shards.push_back(std::move(shard.value()));
  }
  Result<FleetPartial> merged = MergePartials(std::move(shards));
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(PartialToJson(merged.value()), PartialToJson(whole.value()));
}

TEST(FleetRunTest, JobsDoNotChangeTheLedger) {
  FleetConfig config;
  config.devices = 8;
  config.seed = 14;
  config.jobs = 1;
  Result<FleetPartial> serial = RunFleet(config);
  ASSERT_TRUE(serial.ok());
  config.jobs = 4;
  Result<FleetPartial> parallel = RunFleet(config);
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(PartialToJson(serial.value()), PartialToJson(parallel.value()));
}

}  // namespace
}  // namespace sos::fleet
