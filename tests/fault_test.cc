// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Tests for src/fault: the CLI fault-spec grammar, bit-identical injector
// replay, the power-cut recovery verifier's determinism contract (serial
// sweep == parallel sweep, byte for byte), golden recovery counters for two
// fixed seeds (same convention as determinism_test.cc: drift here means the
// fault schedule or recovery path moved), and SosDevice remount semantics
// after a simulated power cut.

#include <cstdint>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>
#include "src/common/rng.h"
#include "src/common/sim_clock.h"
#include "src/common/status.h"
#include "src/fault/fault.h"
#include "src/fault/recovery_verifier.h"
#include "src/sos/sos_device.h"

namespace sos {
namespace {

// --- Fault-spec grammar ------------------------------------------------------

TEST(FaultSpecTest, ParsesEveryGrammarFormAndRoundTrips) {
  struct Case {
    const char* text;
    FaultSpec want;
  };
  const Case kCases[] = {
      {"power_cut@1000", {FaultKind::kPowerCut, 1000}},
      {"die_fail@2,d3", {FaultKind::kDieFail, 2, 3}},
      {"plane_fail@64,p1/4", {FaultKind::kPlaneFail, 64, 0, 0, 1, 4}},
      {"block_stuck@50,b7", {FaultKind::kBlockStuck, 50, 0, 7}},
      {"program_fail@1", {FaultKind::kProgramFailTransient, 1}},
      {"erase_fail@9", {FaultKind::kEraseFailTransient, 9}},
      {"read_fail@33", {FaultKind::kReadFailTransient, 33}},
  };
  for (const Case& c : kCases) {
    SCOPED_TRACE(c.text);
    const Result<FaultSpec> parsed = ParseFaultSpec(c.text);
    ASSERT_TRUE(parsed.ok()) << parsed.status().message();
    EXPECT_EQ(parsed.value(), c.want);
    EXPECT_EQ(FormatFaultSpec(parsed.value()), c.text);
  }
}

TEST(FaultSpecTest, RejectsMalformedSpecsWithHardErrors) {
  const char* kBad[] = {
      "",                   // empty
      "power_cut",          // no @N
      "power_cut@",         // empty op index
      "power_cut@12junk",   // trailing garbage in the number
      "bogus@@1",           // double separator
      "warp_core@5",        // unknown kind
      "die_fail@2,x3",      // unknown qualifier letter
      "plane_fail@64,p1",   // plane_fail without /M interleave
      "block_stuck@50",     // block_stuck requires ,bB
  };
  for (const char* text : kBad) {
    SCOPED_TRACE(std::string("'") + text + "'");
    const Result<FaultSpec> parsed = ParseFaultSpec(text);
    ASSERT_FALSE(parsed.ok());
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
    // The message must name the offending spec so a CLI user can find it
    // among several repeated --fault flags.
    if (text[0] != '\0') {
      EXPECT_NE(parsed.status().message().find(text), std::string::npos)
          << parsed.status().message();
    }
  }
}

// --- Injector determinism ----------------------------------------------------

// Two injectors built from the same plan must make identical decisions for an
// identical op stream -- including the seed-derived before/after coin of each
// periodic power cut. This is the replayability contract fault.h promises.
TEST(FaultInjectorTest, IdenticalPlansReplayBitIdentically) {
  FaultPlan plan;
  plan.seed = 7;
  plan.power_cut_period = 50;
  plan.specs.push_back({FaultKind::kProgramFailTransient, 123});
  plan.specs.push_back({FaultKind::kBlockStuck, 200, 0, 5});
  plan.specs.push_back({FaultKind::kReadFailTransient, 321});

  FaultInjector a(plan);
  FaultInjector b(plan);
  for (uint64_t i = 0; i < 600; ++i) {
    const NandOpKind op = i % 3 == 0   ? NandOpKind::kProgram
                          : i % 3 == 1 ? NandOpKind::kRead
                                       : NandOpKind::kErase;
    const uint32_t block = static_cast<uint32_t>(i % 32);
    const NandFaultAction act_a = a.OnNandOp(op, block, 0);
    const NandFaultAction act_b = b.OnNandOp(op, block, 0);
    ASSERT_EQ(act_a.kind, act_b.kind) << "op " << i;
    ASSERT_EQ(act_a.code, act_b.code) << "op " << i;
    ASSERT_EQ(act_a.after_op, act_b.after_op) << "op " << i;
  }
  EXPECT_EQ(a.ops_observed(), b.ops_observed());
  EXPECT_EQ(a.injected_total(), b.injected_total());
  // Periodic cuts fire at positive multiples of the period; op indices run
  // 0..599, so 50,100,...,550 = 11 cuts (index 600 is never reached).
  EXPECT_EQ(a.injected(FaultKind::kPowerCut), 11u);
  EXPECT_EQ(a.injected(FaultKind::kProgramFailTransient), 1u);
  EXPECT_EQ(a.injected(FaultKind::kReadFailTransient), 1u);
  // The stuck block keeps failing programs/erases after activation.
  EXPECT_GT(a.injected(FaultKind::kBlockStuck), 1u);
}

// --- Verifier determinism ----------------------------------------------------

VerifierConfig QuickVerifierConfig() {
  VerifierConfig config;
  config.total_ops = 1500;
  config.cut_period = 250;
  return config;
}

// The sweep's rendered report and every per-seed metrics snapshot must be
// identical whether the seeds ran on one thread or four: thread scheduling
// must not leak into verification results (the PR-1 contract, extended to
// faulted runs).
TEST(FaultVerifierTest, SweepReportAndMetricsAreScheduleInvariant) {
  const VerifierConfig config = QuickVerifierConfig();
  const std::vector<uint64_t> seeds = {1, 2, 3, 4};
  const std::vector<VerifierResult> serial = RunRecoveryVerifierSweep(config, seeds, 1);
  const std::vector<VerifierResult> parallel = RunRecoveryVerifierSweep(config, seeds, 4);
  ASSERT_EQ(serial.size(), seeds.size());
  ASSERT_EQ(parallel.size(), seeds.size());

  const std::string serial_report = RenderVerifierReport(config, serial);
  EXPECT_EQ(serial_report, RenderVerifierReport(config, parallel));
  // Not vacuous: the report carries per-seed rows and an aggregate verdict.
  EXPECT_NE(serial_report.find("seed"), std::string::npos);
  EXPECT_NE(serial_report.find("PASS"), std::string::npos);

  for (size_t i = 0; i < seeds.size(); ++i) {
    SCOPED_TRACE("seed " + std::to_string(seeds[i]));
    EXPECT_EQ(serial[i].seed, seeds[i]);  // seed order, not completion order
    EXPECT_EQ(parallel[i].seed, seeds[i]);
    EXPECT_TRUE(serial[i].ok);
    EXPECT_EQ(serial[i].power_cuts, parallel[i].power_cuts);
    EXPECT_EQ(serial[i].replayed_pages, parallel[i].replayed_pages);
    EXPECT_EQ(serial[i].orphans_reclaimed, parallel[i].orphans_reclaimed);
    EXPECT_EQ(serial[i].sys_loss, parallel[i].sys_loss);
    EXPECT_TRUE(serial[i].metrics == parallel[i].metrics);  // every row, every field
  }
  // Different seeds must actually produce different fault landings.
  EXPECT_NE(serial[0].replayed_pages, serial[1].replayed_pages);
}

// Golden recovery counters for two fixed seeds (determinism_test.cc
// convention). The printf emits the actual values in golden-initializer form
// so an intentional model change can update this table from the test log.
// Any unexplained change means the fault schedule, the OOB metadata, or the
// recovery scan moved -- all are part of the reproduction contract.
struct RecoveryGolden {
  uint64_t seed;
  uint64_t power_cuts;
  uint64_t replayed_pages;
  uint64_t orphans_reclaimed;
  uint64_t torn_writes_committed;
  uint64_t torn_writes_rolled_back;
  uint64_t trim_resurrections;
  uint64_t sys_loss;
  uint64_t invariant_failures;
};

TEST(FaultVerifierTest, GoldenRecoveryCountersForFixedSeeds) {
  const RecoveryGolden kGoldens[] = {
      {2, 6, 864, 1163, 2, 3, 30, 0, 0},
      {7, 6, 873, 1230, 2, 3, 40, 0, 0},
  };
  for (const RecoveryGolden& golden : kGoldens) {
    SCOPED_TRACE("seed " + std::to_string(golden.seed));
    VerifierConfig config = QuickVerifierConfig();
    config.seed = golden.seed;
    const Result<VerifierResult> run = RunRecoveryVerifier(config);
    ASSERT_TRUE(run.ok()) << run.status().message();
    const VerifierResult& r = run.value();
    std::printf("recovery_golden{seed=%llu}: {%llu, %llu, %llu, %llu, %llu, %llu, %llu, %llu, %llu}\n",
                static_cast<unsigned long long>(golden.seed),
                static_cast<unsigned long long>(r.seed),
                static_cast<unsigned long long>(r.power_cuts),
                static_cast<unsigned long long>(r.replayed_pages),
                static_cast<unsigned long long>(r.orphans_reclaimed),
                static_cast<unsigned long long>(r.torn_writes_committed),
                static_cast<unsigned long long>(r.torn_writes_rolled_back),
                static_cast<unsigned long long>(r.trim_resurrections),
                static_cast<unsigned long long>(r.sys_loss),
                static_cast<unsigned long long>(r.invariant_failures));
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.power_cuts, golden.power_cuts);
    EXPECT_EQ(r.replayed_pages, golden.replayed_pages);
    EXPECT_EQ(r.orphans_reclaimed, golden.orphans_reclaimed);
    EXPECT_EQ(r.torn_writes_committed, golden.torn_writes_committed);
    EXPECT_EQ(r.torn_writes_rolled_back, golden.torn_writes_rolled_back);
    EXPECT_EQ(r.trim_resurrections, golden.trim_resurrections);
    EXPECT_EQ(r.sys_loss, golden.sys_loss);
    EXPECT_EQ(r.invariant_failures, golden.invariant_failures);
  }
}

// --- SosDevice remount -------------------------------------------------------

SosDeviceConfig SmallSosConfig() {
  SosDeviceConfig config;
  config.nand.num_blocks = 32;
  config.nand.wordlines_per_block = 4;
  config.nand.page_size_bytes = 512;
  config.nand.store_payloads = true;
  config.nand.seed = 3;
  config.sys_parity_stripe = 8;
  return config;
}

std::vector<uint8_t> Payload(uint64_t lba, uint32_t size) {
  std::vector<uint8_t> data(size);
  for (uint32_t i = 0; i < size; ++i) {
    data[i] = static_cast<uint8_t>((lba * 131 + i * 31) & 0xFF);
  }
  return data;
}

TEST(SosDeviceRecoveryTest, RemountAfterPowerCutServesAckedSysData) {
  SimClock clock;
  SosDevice dev(SmallSosConfig(), &clock);
  const uint32_t page = dev.block_size();
  const PlacementHandle critical = dev.OpenPlacement({Durability::kCritical}).value();

  constexpr uint64_t kLbas = 12;
  for (uint64_t lba = 0; lba < kLbas; ++lba) {
    ASSERT_TRUE(dev.Write(lba, Payload(lba, page), critical).ok()) << "lba " << lba;
  }

  dev.ftl().nand().PowerCut();
  // Dark device: host IO must fail loudly, not hang or serve stale bytes.
  EXPECT_FALSE(dev.Read(0).ok());

  ASSERT_TRUE(dev.RecoverFromPowerLoss().ok());
  for (uint64_t lba = 0; lba < kLbas; ++lba) {
    SCOPED_TRACE("lba " + std::to_string(lba));
    const Result<BlockReadResult> read = dev.Read(lba);
    ASSERT_TRUE(read.ok());
    EXPECT_FALSE(read.value().degraded);
    EXPECT_EQ(read.value().data, Payload(lba, page));
  }
  // Pool introspection (and with it the SOS daemons' health collection) is
  // live again after the remount: the recovered SYS pool accounts for the
  // written pages, and the capacity math still adds up.
  EXPECT_GE(dev.SysSnapshot().valid_pages, kLbas);
  EXPECT_GT(dev.FreeFraction(), 0.0);
  EXPECT_TRUE(dev.ftl().CheckInvariants().ok());
}

TEST(SosDeviceRecoveryTest, RecoveryIsIdempotentAcrossRepeatedCuts) {
  SimClock clock;
  SosDevice dev(SmallSosConfig(), &clock);
  const uint32_t page = dev.block_size();
  const PlacementHandle critical = dev.OpenPlacement({Durability::kCritical}).value();
  const PlacementHandle degradable = dev.OpenPlacement({Durability::kDegradable}).value();
  ASSERT_TRUE(dev.Write(5, Payload(5, page), critical).ok());

  for (int round = 0; round < 3; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    dev.ftl().nand().PowerCut();
    ASSERT_TRUE(dev.RecoverFromPowerLoss().ok());
    const Result<BlockReadResult> read = dev.Read(5);
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(read.value().data, Payload(5, page));
    // Handles stay open across remount, and the device keeps accepting
    // writes between cuts.
    ASSERT_TRUE(dev.Write(6 + static_cast<uint64_t>(round), Payload(9, page), degradable).ok());
  }
}

// Randomized mount oracle for the flat-array recovery path: a shadow map of
// every *acked* write (distinct payload per version) is the ground truth the
// rebuilt L2P is checked against after a mid-sequence power cut. The
// recovered mapping must contain every acked-live LBA with the right pool
// class and bytes, and anything extra must be a documented trim
// resurrection (DESIGN.md §10), never an invented mapping.
TEST(SosDeviceRecoveryTest, RecoveredMappingMatchesAckedWriteOracle) {
  SimClock clock;
  SosDevice dev(SmallSosConfig(), &clock);
  const uint32_t page = dev.block_size();
  const PlacementHandle critical = dev.OpenPlacement({Durability::kCritical}).value();
  const PlacementHandle degradable = dev.OpenPlacement({Durability::kDegradable}).value();
  const uint64_t kLbas = dev.ftl().ExportedPages() / 3;
  ASSERT_GT(kLbas, 8u);

  struct Acked {
    uint32_t pool;  // owning pool at ack time (classes can overflow pools)
    uint64_t version;
  };
  std::map<uint64_t, Acked> acked;     // live acked state at the cut
  std::set<uint64_t> ever_trimmed;     // resurrection candidates
  Rng rng(DeriveSeed({0xfa017u, 0x0c1eu}));

  const auto versioned = [page](uint64_t lba, uint64_t version) {
    std::vector<uint8_t> data(page);
    for (uint32_t i = 0; i < page; ++i) {
      data[i] = static_cast<uint8_t>((lba * 131 + version * 17 + i * 31) & 0xFF);
    }
    return data;
  };

  for (uint64_t op = 0; op < 400; ++op) {
    SCOPED_TRACE("op " + std::to_string(op));
    const uint64_t lba = rng.NextBounded(kLbas);
    if (rng.NextBounded(5) == 0) {  // trim
      const Status s = dev.Trim(lba);
      if (acked.erase(lba) > 0) {
        EXPECT_TRUE(s.ok()) << s.ToString();
        ever_trimmed.insert(lba);
      } else {
        EXPECT_EQ(s.code(), StatusCode::kNotFound);
      }
    } else {  // write / overwrite
      const PlacementHandle handle = rng.NextBool(0.5) ? critical : degradable;
      const Status s = dev.Write(lba, versioned(lba, op), handle);
      ASSERT_TRUE(s.ok() || s.code() == StatusCode::kOutOfSpace) << s.ToString();
      if (s.ok()) {
        acked[lba] = Acked{dev.ftl().PoolOf(lba), op};
        ever_trimmed.erase(lba);
      }
    }
  }
  ASSERT_GT(acked.size(), 4u);

  // Lights out mid-workload: the device must fail loudly until remount.
  dev.ftl().nand().PowerCut();
  EXPECT_FALSE(dev.Read(acked.begin()->first).ok());
  EXPECT_EQ(dev.Write(0, versioned(0, 9999), critical).code(),
            StatusCode::kPowerLost);

  ASSERT_TRUE(dev.RecoverFromPowerLoss().ok());
  ASSERT_TRUE(dev.ftl().CheckInvariants().ok());

  // Every acked-live LBA is mapped in the pool the write was acked into,
  // and an intact read returns the last acked bytes.
  for (const auto& [lba, want] : acked) {
    SCOPED_TRACE("acked lba " + std::to_string(lba));
    ASSERT_TRUE(dev.ftl().IsMapped(lba));
    EXPECT_EQ(dev.ftl().PoolOf(lba), want.pool);
    const Result<BlockReadResult> read = dev.Read(lba);
    ASSERT_TRUE(read.ok()) << read.status().ToString();
    if (!read.value().degraded && read.value().residual_bit_errors == 0) {
      EXPECT_EQ(read.value().data, versioned(lba, want.version));
    }
  }
  // Nothing materializes out of thin air: recovered ⊆ acked ∪ trimmed.
  for (uint64_t lba = 0; lba < kLbas; ++lba) {
    if (dev.ftl().IsMapped(lba) && acked.count(lba) == 0) {
      EXPECT_TRUE(ever_trimmed.count(lba) > 0)
          << "lba " << lba << " resurrected without ever being trimmed";
    }
  }
}

}  // namespace
}  // namespace sos
