// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Tests for the FTL: mapping, GC, write amplification, wear leveling on/off,
// parity rescue, retirement/capacity variance, resuscitation, migration.

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/ftl/ftl.h"

namespace sos {
namespace {

NandConfig TestNand(uint32_t blocks = 16, CellTech tech = CellTech::kPlc) {
  NandConfig nand;
  nand.num_blocks = blocks;
  nand.wordlines_per_block = 4;
  nand.page_size_bytes = 512;
  nand.tech = tech;
  nand.seed = 5;
  nand.store_payloads = true;
  return nand;
}

FtlConfig SinglePool(uint32_t blocks = 16, CellTech mode = CellTech::kPlc,
                     EccPreset ecc = EccPreset::kBch) {
  FtlConfig config;
  config.nand = TestNand(blocks, CellTech::kPlc);
  FtlPoolConfig pool;
  pool.name = "MAIN";
  pool.mode = mode;
  pool.ecc = EccScheme::FromPreset(ecc);
  if (ecc == EccPreset::kNone) {
    pool.retire_rber = 2e-3;
  }
  config.pools = {pool};
  return config;
}

std::vector<uint8_t> Page(uint8_t fill) { return std::vector<uint8_t>(512, fill); }

TEST(FtlTest, WriteReadRoundtrip) {
  SimClock clock;
  Ftl ftl(SinglePool(), &clock);
  ASSERT_TRUE(ftl.Write(7, Page(0xAB), 0).ok());
  auto read = ftl.Read(7);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value().data, Page(0xAB));
  EXPECT_FALSE(read.value().degraded);
  EXPECT_EQ(read.value().residual_bit_errors, 0u);
}

TEST(FtlTest, UnmappedReadsFail) {
  SimClock clock;
  Ftl ftl(SinglePool(), &clock);
  EXPECT_EQ(ftl.Read(1).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(ftl.Trim(1).code(), StatusCode::kNotFound);
  EXPECT_EQ(ftl.Migrate(1, 0).code(), StatusCode::kNotFound);
}

TEST(FtlTest, OverwriteReturnsLatest) {
  SimClock clock;
  Ftl ftl(SinglePool(), &clock);
  ASSERT_TRUE(ftl.Write(3, Page(1), 0).ok());
  ASSERT_TRUE(ftl.Write(3, Page(2), 0).ok());
  ASSERT_TRUE(ftl.Write(3, Page(3), 0).ok());
  auto read = ftl.Read(3);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value().data, Page(3));
  // One live mapping, three physical writes.
  EXPECT_EQ(ftl.stats().host_writes(), 3u);
  EXPECT_EQ(ftl.Snapshot(0).valid_pages, 1u);
}

TEST(FtlTest, TrimFreesMapping) {
  SimClock clock;
  Ftl ftl(SinglePool(), &clock);
  ASSERT_TRUE(ftl.Write(3, Page(1), 0).ok());
  ASSERT_TRUE(ftl.Trim(3).ok());
  EXPECT_FALSE(ftl.IsMapped(3));
  EXPECT_EQ(ftl.Read(3).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(ftl.Snapshot(0).valid_pages, 0u);
}

TEST(FtlTest, GcReclaimsOverwrittenSpace) {
  SimClock clock;
  Ftl ftl(SinglePool(), &clock);
  // Fill most of the device with cold data, then churn a hot subset: GC
  // victims then hold a mix of valid (cold) and stale (hot) pages, forcing
  // relocations of the cold data.
  const uint64_t cold = ftl.ExportedPages() * 8 / 10;
  for (uint64_t lba = 0; lba < cold; ++lba) {
    ASSERT_TRUE(ftl.Write(lba, Page(0xC0), 0).ok());
  }
  for (int round = 0; round < 60; ++round) {
    for (uint64_t lba = cold; lba < cold + 28; ++lba) {
      ASSERT_TRUE(ftl.Write(lba, Page(static_cast<uint8_t>(round)), 0).ok())
          << "round " << round << " lba " << lba;
    }
  }
  EXPECT_GT(ftl.stats().gc_erases(), 0u);
  EXPECT_GT(ftl.stats().gc_relocations(), 0u);
  // All data still readable and latest.
  for (uint64_t lba = 0; lba < cold; ++lba) {
    auto read = ftl.Read(lba);
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(read.value().data, Page(0xC0));
  }
  for (uint64_t lba = cold; lba < cold + 28; ++lba) {
    auto read = ftl.Read(lba);
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(read.value().data, Page(59));
  }
}

TEST(FtlTest, WriteAmplificationAboveOneUnderChurn) {
  SimClock clock;
  Ftl ftl(SinglePool(), &clock);
  const uint64_t working_set = ftl.ExportedPages() * 8 / 10;
  Rng rng(1);
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE(ftl.Write(rng.NextBounded(working_set), Page(1), 0).ok());
  }
  EXPECT_GT(ftl.stats().WriteAmplification(), 1.0);
  EXPECT_LT(ftl.stats().WriteAmplification(), 10.0);
}

TEST(FtlTest, OutOfSpaceWhenFullOfValidData) {
  SimClock clock;
  Ftl ftl(SinglePool(), &clock);
  const uint64_t exported = ftl.ExportedPages();
  uint64_t written = 0;
  Status last = Status::Ok();
  // Write unique LBAs until the device physically refuses.
  for (uint64_t lba = 0; lba < exported * 2; ++lba) {
    last = ftl.Write(lba, Page(9), 0);
    if (!last.ok()) {
      break;
    }
    ++written;
  }
  EXPECT_EQ(last.code(), StatusCode::kOutOfSpace);
  // It accepted at least the exported capacity before refusing.
  EXPECT_GE(written, exported);
}

TEST(FtlTest, CostBenefitGcAlsoWorks) {
  SimClock clock;
  FtlConfig config = SinglePool();
  config.gc_policy = GcPolicy::kCostBenefit;
  Ftl ftl(config, &clock);
  for (int round = 0; round < 40; ++round) {
    for (uint64_t lba = 0; lba < 16; ++lba) {
      ASSERT_TRUE(ftl.Write(lba, Page(static_cast<uint8_t>(round)), 0).ok());
    }
    clock.Advance(kUsPerDay);  // age matters for cost-benefit
  }
  EXPECT_GT(ftl.stats().gc_erases(), 0u);
  for (uint64_t lba = 0; lba < 16; ++lba) {
    EXPECT_TRUE(ftl.Read(lba).ok());
  }
}

TEST(FtlTest, WearLevelingNarrowsPecSpread) {
  // Two identical devices, one with WL, one without. Workload: hot/cold
  // split -- half the LBAs never rewritten, half hammered.
  auto run = [](bool wl) {
    SimClock clock;
    FtlConfig config = SinglePool(32);
    config.pools[0].wear_leveling = wl;
    Ftl ftl(config, &clock);
    const uint64_t cold = ftl.ExportedPages() / 2;
    for (uint64_t lba = 0; lba < cold; ++lba) {
      EXPECT_TRUE(ftl.Write(lba, Page(1), 0).ok());
    }
    Rng rng(3);
    for (int i = 0; i < 6000; ++i) {
      EXPECT_TRUE(ftl.Write(cold + rng.NextBounded(8), Page(2), 0).ok());
    }
    // Spread = max PEC - min PEC across blocks.
    uint32_t min_pec = ~0u;
    uint32_t max_pec = 0;
    for (uint32_t b = 0; b < config.nand.num_blocks; ++b) {
      min_pec = std::min(min_pec, ftl.nand().block_info(b).pec);
      max_pec = std::max(max_pec, ftl.nand().block_info(b).pec);
    }
    return max_pec - min_pec;
  };
  EXPECT_LT(run(true), run(false));
}

TEST(FtlTest, WearLevelingCostsExtraWrites) {
  // The paper's rationale for disabling WL on SPARE ([73]): leveling moves
  // data, which is pure overhead writes.
  auto total_nand_writes = [](bool wl) {
    SimClock clock;
    FtlConfig config = SinglePool(32);
    config.pools[0].wear_leveling = wl;
    Ftl ftl(config, &clock);
    const uint64_t cold = ftl.ExportedPages() / 2;
    for (uint64_t lba = 0; lba < cold; ++lba) {
      EXPECT_TRUE(ftl.Write(lba, Page(1), 0).ok());
    }
    Rng rng(3);
    for (int i = 0; i < 6000; ++i) {
      EXPECT_TRUE(ftl.Write(cold + rng.NextBounded(8), Page(2), 0).ok());
    }
    return ftl.stats().nand_writes() + ftl.stats().wl_relocations();
  };
  EXPECT_LE(total_nand_writes(false), total_nand_writes(true));
}

TEST(FtlTest, ParityStripeWritesParityPages) {
  SimClock clock;
  FtlConfig config = SinglePool();
  config.pools[0].parity_stripe = 4;  // every 4th page is parity
  Ftl ftl(config, &clock);
  for (uint64_t lba = 0; lba < 30; ++lba) {
    ASSERT_TRUE(ftl.Write(lba, Page(static_cast<uint8_t>(lba)), 0).ok());
  }
  EXPECT_GT(ftl.stats().parity_writes(), 0u);
  // Parity slots shrink exported capacity: 20 pages/block -> 15 data slots.
  const FtlConfig plain = SinglePool();
  SimClock clock2;
  Ftl ftl_plain(plain, &clock2);
  EXPECT_LT(ftl.ExportedPages(), ftl_plain.ExportedPages());
  for (uint64_t lba = 0; lba < 30; ++lba) {
    auto read = ftl.Read(lba);
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(read.value().data, Page(static_cast<uint8_t>(lba)));
  }
}

TEST(FtlTest, ParityRescuesFailedPage) {
  // Use a weak ECC + aged PLC so single-page ECC failures happen, with
  // parity stripes to catch them. Statistical test: rescued reads must
  // appear and rescued data must be pristine.
  SimClock clock;
  FtlConfig config = SinglePool(16, CellTech::kPlc, EccPreset::kWeakBch);
  config.pools[0].parity_stripe = 4;
  config.pools[0].nominal_retention_years = 5.0;  // don't retire in this test
  config.pools[0].retire_rber = 0.4;
  Ftl ftl(config, &clock);
  for (uint64_t lba = 0; lba < 80; ++lba) {
    ASSERT_TRUE(ftl.Write(lba, Page(static_cast<uint8_t>(lba)), 0).ok());
  }
  // Age deep into the weak-ECC failure regime: at ~7 years of PLC retention
  // the per-page failure probability is a few percent -- enough failures to
  // exercise rescue, few enough that stripe members usually survive.
  clock.Advance(YearsToUs(7.0));
  uint64_t rescued = 0;
  uint64_t degraded = 0;
  for (uint64_t lba = 0; lba < 80; ++lba) {
    auto read = ftl.Read(lba);
    ASSERT_TRUE(read.ok());
    if (read.value().parity_rescued) {
      ++rescued;
      EXPECT_EQ(read.value().data, Page(static_cast<uint8_t>(lba)));
    }
    if (read.value().degraded) {
      ++degraded;
    }
  }
  EXPECT_GT(rescued + degraded, 0u) << "aging produced no ECC failures; tune the test";
  EXPECT_GT(rescued, 0u);
  EXPECT_EQ(ftl.stats().parity_rescues(), rescued);
}

TEST(FtlTest, NoEccPoolDeliversDegradedBytes) {
  SimClock clock;
  Ftl ftl(SinglePool(16, CellTech::kPlc, EccPreset::kNone), &clock);
  for (uint64_t lba = 0; lba < 10; ++lba) {
    ASSERT_TRUE(ftl.Write(lba, Page(0xCD), 0).ok());
  }
  clock.Advance(YearsToUs(3.0));
  uint64_t degraded = 0;
  for (uint64_t lba = 0; lba < 10; ++lba) {
    auto read = ftl.Read(lba);
    ASSERT_TRUE(read.ok());
    if (read.value().degraded) {
      ++degraded;
      EXPECT_NE(read.value().data, Page(0xCD));
      EXPECT_GT(read.value().residual_bit_errors, 0u);
    }
  }
  EXPECT_GT(degraded, 0u);
}

// The strict-fidelity contract (paper's SYS pool): a host read either returns
// exactly the written bytes or fails loudly with kDataLoss -- corrupted bytes
// must never cross the host boundary unflagged. Same aging as
// NoEccPoolDeliversDegradedBytes, so corruption definitely occurs.
TEST(FtlTest, StrictFidelityPoolErrorsLoudlyInsteadOfServingCorruption) {
  SimClock clock;
  FtlConfig config = SinglePool(16, CellTech::kPlc, EccPreset::kNone);
  config.pools[0].strict_fidelity = true;
  Ftl ftl(config, &clock);
  for (uint64_t lba = 0; lba < 10; ++lba) {
    ASSERT_TRUE(ftl.Write(lba, Page(0xCD), 0).ok());
  }
  clock.Advance(YearsToUs(3.0));
  uint64_t loud_failures = 0;
  for (uint64_t lba = 0; lba < 10; ++lba) {
    auto read = ftl.Read(lba);
    if (!read.ok()) {
      EXPECT_EQ(read.status().code(), StatusCode::kDataLoss);
      ++loud_failures;
      continue;
    }
    EXPECT_FALSE(read.value().degraded);
    EXPECT_EQ(read.value().data, Page(0xCD));
  }
  EXPECT_GT(loud_failures, 0u);
  EXPECT_EQ(ftl.stats().degraded_reads(), 0u);
}

// READ RETRY on a strict pool: drift-tracking re-reads recover pages the
// first measurement could not decode, shrinking the loud-failure count
// without ever serving wrong bytes.
TEST(FtlTest, ReadRetriesRecoverStrictPoolFailures) {
  auto run = [](uint32_t retries) {
    SimClock clock;
    FtlConfig config = SinglePool(16, CellTech::kPlc, EccPreset::kWeakBch);
    config.pools[0].strict_fidelity = true;
    config.pools[0].read_retries = retries;
    config.pools[0].nominal_retention_years = 5.0;  // don't retire mid-test
    config.pools[0].retire_rber = 0.4;
    Ftl ftl(config, &clock);
    for (uint64_t lba = 0; lba < 80; ++lba) {
      EXPECT_TRUE(ftl.Write(lba, Page(static_cast<uint8_t>(lba)), 0).ok());
    }
    clock.Advance(YearsToUs(7.0));
    uint64_t loud = 0;
    for (uint64_t lba = 0; lba < 80; ++lba) {
      auto read = ftl.Read(lba);
      if (!read.ok()) {
        EXPECT_EQ(read.status().code(), StatusCode::kDataLoss);
        ++loud;
        continue;
      }
      EXPECT_EQ(read.value().data, Page(static_cast<uint8_t>(lba)));
    }
    EXPECT_GT(ftl.stats().ecc_failures(), 0u) << "aging produced no ECC failures; tune the test";
    return std::pair<uint64_t, uint64_t>(loud, ftl.stats().retry_recoveries());
  };
  const auto [loud_without, recoveries_without] = run(0);
  const auto [loud_with, recoveries_with] = run(3);
  EXPECT_EQ(recoveries_without, 0u);
  EXPECT_GT(recoveries_with, 0u);
  EXPECT_LT(loud_with, loud_without);
}

TEST(FtlTest, RetirementShrinksCapacityAndNotifies) {
  SimClock clock;
  FtlConfig config = SinglePool(8, CellTech::kPlc, EccPreset::kNone);
  config.pools[0].retire_rber = 1e-4;  // tight bound: retire quickly
  config.pools[0].min_live_blocks = 1;
  Ftl ftl(config, &clock);
  uint64_t last_capacity = ftl.ExportedPages();
  int notifications = 0;
  ftl.SetCapacityListener([&](uint64_t pages) {
    EXPECT_LT(pages, last_capacity);
    last_capacity = pages;
    ++notifications;
  });
  // Churn a tiny working set; blocks cycle until they retire.
  Rng rng(4);
  for (int i = 0; i < 20000; ++i) {
    if (!ftl.Write(rng.NextBounded(10), Page(1), 0).ok()) {
      break;
    }
  }
  EXPECT_GT(ftl.stats().retired_blocks(), 0u);
  EXPECT_GT(notifications, 0);
  EXPECT_LT(ftl.ExportedPages(), ftl.Snapshot(0).exported_pages + last_capacity);
}

TEST(FtlTest, ResuscitationMovesWornBlocksToSparserPool) {
  SimClock clock;
  FtlConfig config;
  config.nand = TestNand(8, CellTech::kPlc);
  FtlPoolConfig main;
  main.name = "MAIN";
  main.mode = CellTech::kPlc;
  main.ecc = EccScheme::FromPreset(EccPreset::kNone);
  main.retire_rber = 1e-4;
  main.share = 1.0;
  main.wear_leveling = false;
  main.min_live_blocks = 1;
  main.resuscitate_into = "SECOND";
  FtlPoolConfig second;
  second.name = "SECOND";
  second.mode = CellTech::kTlc;  // sparser rebirth
  second.ecc = EccScheme::FromPreset(EccPreset::kNone);
  second.retire_rber = 2e-3;
  second.share = 0.0;
  second.min_live_blocks = 1;
  config.pools = {main, second};
  Ftl ftl(config, &clock);
  const uint32_t second_id = ftl.PoolIdByName("SECOND");
  EXPECT_EQ(ftl.Snapshot(second_id).total_blocks, 0u);
  Rng rng(5);
  for (int i = 0; i < 30000; ++i) {
    if (!ftl.Write(rng.NextBounded(10), Page(1), 0).ok()) {
      break;
    }
  }
  EXPECT_GT(ftl.stats().retired_blocks(), 0u);
  EXPECT_GT(ftl.stats().resuscitated_blocks(), 0u);
  EXPECT_GT(ftl.Snapshot(second_id).total_blocks, 0u);
  // Resuscitated blocks are writable through the second pool.
  EXPECT_TRUE(ftl.Write(1000, Page(7), second_id).ok());
  auto read = ftl.Read(1000);
  ASSERT_TRUE(read.ok());
}

TEST(FtlTest, MigrateMovesBetweenPools) {
  SimClock clock;
  FtlConfig config;
  config.nand = TestNand(16, CellTech::kPlc);
  FtlPoolConfig a;
  a.name = "A";
  a.mode = CellTech::kQlc;
  a.share = 0.5;
  FtlPoolConfig b;
  b.name = "B";
  b.mode = CellTech::kPlc;
  b.ecc = EccScheme::FromPreset(EccPreset::kNone);
  b.retire_rber = 2e-3;
  b.share = 0.5;
  config.pools = {a, b};
  Ftl ftl(config, &clock);
  ASSERT_TRUE(ftl.Write(5, Page(0x42), 0).ok());
  EXPECT_EQ(ftl.PoolOf(5), 0u);
  ASSERT_TRUE(ftl.Migrate(5, 1).ok());
  EXPECT_EQ(ftl.PoolOf(5), 1u);
  EXPECT_EQ(ftl.stats().migrations(), 1u);
  auto read = ftl.Read(5);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value().data, Page(0x42));
  EXPECT_EQ(ftl.Snapshot(0).valid_pages, 0u);
  EXPECT_EQ(ftl.Snapshot(1).valid_pages, 1u);
  // Migrating to the same pool is a no-op.
  ASSERT_TRUE(ftl.Migrate(5, 1).ok());
  EXPECT_EQ(ftl.stats().migrations(), 1u);
}

TEST(FtlTest, RefreshResetsRetention) {
  SimClock clock;
  Ftl ftl(SinglePool(16, CellTech::kPlc, EccPreset::kNone), &clock);
  ASSERT_TRUE(ftl.Write(5, Page(1), 0).ok());
  clock.Advance(YearsToUs(2.0));
  const double before = ftl.PredictLbaRber(5, 0.0).value();
  ASSERT_TRUE(ftl.Refresh(5).ok());
  const double after = ftl.PredictLbaRber(5, 0.0).value();
  EXPECT_LT(after, before);
  EXPECT_EQ(ftl.stats().refreshes(), 1u);
}

TEST(FtlTest, SnapshotConsistency) {
  SimClock clock;
  Ftl ftl(SinglePool(16), &clock);
  for (uint64_t lba = 0; lba < 25; ++lba) {
    ASSERT_TRUE(ftl.Write(lba, Page(1), 0).ok());
  }
  const PoolSnapshot snap = ftl.Snapshot(0);
  EXPECT_EQ(snap.name, "MAIN");
  EXPECT_EQ(snap.valid_pages, 25u);
  EXPECT_EQ(snap.total_blocks, 16u);
  EXPECT_GT(snap.free_blocks, 0u);
  EXPECT_GT(snap.free_page_fraction, 0.0);
  EXPECT_LT(snap.free_page_fraction, 1.0);
  EXPECT_EQ(ftl.LbasInPool(0).size(), 25u);
}

TEST(FtlTest, LbasInPoolSortedAndExact) {
  SimClock clock;
  Ftl ftl(SinglePool(16), &clock);
  for (uint64_t lba : {9ull, 3ull, 7ull, 1ull}) {
    ASSERT_TRUE(ftl.Write(lba, Page(1), 0).ok());
  }
  ASSERT_TRUE(ftl.Trim(7).ok());
  const std::vector<uint64_t> expected{1, 3, 9};
  EXPECT_EQ(ftl.LbasInPool(0), expected);
}

TEST(FtlTest, HotColdSeparationSlowsRetirementCascade) {
  // With pure greedy GC and static cold data, greedy alone self-segregates,
  // so separation's standalone WA effect is small. Its value shows under
  // wear pressure: fewer relocation-polluted blocks means fewer erases,
  // which postpones the retirement cascade (retirement -> less capacity ->
  // higher utilization -> more GC -> more retirement). Same workload, same
  // retirement bound, both arms -- separation must end with materially lower
  // write amplification and fewer retired blocks.
  struct Outcome {
    double write_amp;
    uint64_t retired;
  };
  auto run = [](bool separation) {
    SimClock clock;
    FtlConfig config = SinglePool(32);
    config.nand.store_payloads = false;  // metadata-only: fast long run
    config.pools[0].hot_cold_separation = separation;
    Ftl ftl(config, &clock);
    const uint64_t space = ftl.ExportedPages() * 88 / 100;
    for (uint64_t lba = 0; lba < space; ++lba) {
      EXPECT_TRUE(ftl.Write(lba, {}, 0).ok());
    }
    Rng rng(21);
    const uint64_t hot = space / 10;
    for (int i = 0; i < 100000; ++i) {
      const uint64_t lba = rng.NextBool(0.9) ? rng.NextBounded(hot) : rng.NextBounded(space);
      if (!ftl.Write(lba, {}, 0).ok()) {
        break;  // deep wear can exhaust the pool in the no-separation arm
      }
    }
    EXPECT_TRUE(ftl.CheckInvariants().ok());
    return Outcome{ftl.stats().WriteAmplification(), ftl.stats().retired_blocks()};
  };
  const Outcome with_sep = run(true);
  const Outcome without = run(false);
  EXPECT_LT(with_sep.write_amp, without.write_amp * 0.7);
  EXPECT_LE(with_sep.retired, without.retired);
}

TEST(FtlTest, TaintTracksBakedInCorruption) {
  SimClock clock;
  Ftl ftl(SinglePool(16, CellTech::kPlc, EccPreset::kNone), &clock);
  ASSERT_TRUE(ftl.Write(5, Page(0x77), 0).ok());
  EXPECT_FALSE(ftl.IsTainted(5));

  // Age until reads are certainly degraded (at 10 years the page carries
  // ~8 expected raw errors), then refresh: the relocation re-encodes
  // corrupted bytes, which must set the taint.
  clock.Advance(YearsToUs(10.0));
  ASSERT_TRUE(ftl.Refresh(5).ok());
  EXPECT_TRUE(ftl.IsTainted(5));
  auto read = ftl.Read(5);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read.value().tainted);

  // A fresh host write supersedes the corruption and clears the taint.
  ASSERT_TRUE(ftl.Write(5, Page(0x78), 0).ok());
  EXPECT_FALSE(ftl.IsTainted(5));
}

TEST(FtlTest, CleanRefreshDoesNotTaint) {
  SimClock clock;
  Ftl ftl(SinglePool(16, CellTech::kPlc, EccPreset::kBch), &clock);
  ASSERT_TRUE(ftl.Write(5, Page(0x77), 0).ok());
  clock.Advance(DaysToUs(10));  // young: BCH corrects everything
  ASSERT_TRUE(ftl.Refresh(5).ok());
  EXPECT_FALSE(ftl.IsTainted(5));
}

TEST(FtlTest, InvariantsHoldOnFreshAndUsedDevice) {
  SimClock clock;
  Ftl ftl(SinglePool(), &clock);
  EXPECT_TRUE(ftl.CheckInvariants().ok());
  for (uint64_t lba = 0; lba < 50; ++lba) {
    ASSERT_TRUE(ftl.Write(lba, Page(1), 0).ok());
  }
  for (uint64_t lba = 0; lba < 50; lba += 3) {
    ASSERT_TRUE(ftl.Trim(lba).ok());
  }
  EXPECT_TRUE(ftl.CheckInvariants().ok());
}

TEST(FtlTest, BackgroundCollectPrepaysGc) {
  SimClock clock;
  FtlConfig config = SinglePool(24);
  config.nand.store_payloads = false;
  Ftl ftl(config, &clock);
  // Dirty the device: fill, then invalidate half via overwrites.
  const uint64_t space = ftl.ExportedPages() * 3 / 4;
  for (int round = 0; round < 2; ++round) {
    for (uint64_t lba = 0; lba < space; ++lba) {
      ASSERT_TRUE(ftl.Write(lba, {}, 0).ok());
    }
  }
  // Idle housekeeping reclaims blocks beyond the foreground threshold.
  const uint32_t collected = ftl.BackgroundCollect(8);
  EXPECT_GT(collected, 0u);
  EXPECT_EQ(ftl.stats().background_collections(), collected);
  EXPECT_TRUE(ftl.CheckInvariants().ok());
  // Foreground writes right after idle GC proceed without new collections.
  const uint64_t erases_before = ftl.stats().gc_erases();
  for (uint64_t lba = 0; lba < 10; ++lba) {
    ASSERT_TRUE(ftl.Write(lba, {}, 0).ok());
  }
  EXPECT_EQ(ftl.stats().gc_erases(), erases_before);
}

TEST(FtlTest, DeterministicAcrossRuns) {
  auto run = [] {
    SimClock clock;
    Ftl ftl(SinglePool(), &clock);
    Rng rng(9);
    for (int i = 0; i < 2000; ++i) {
      IgnoreResult(ftl.Write(rng.NextBounded(40), Page(static_cast<uint8_t>(i)), 0));
    }
    clock.Advance(YearsToUs(1.0));
    uint64_t checksum = 0;
    for (uint64_t lba = 0; lba < 40; ++lba) {
      auto read = ftl.Read(lba);
      if (read.ok()) {
        for (uint8_t byte : read.value().data) {
          checksum = checksum * 31 + byte;
        }
      }
    }
    return std::make_tuple(checksum, ftl.stats().nand_writes(), ftl.stats().gc_erases());
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace sos
