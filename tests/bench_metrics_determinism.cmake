# Copyright (c) 2026 The SOS Authors. MIT License.
#
# Artifact-level telemetry determinism check (ctest: bench_metrics_determinism).
#
# Runs bench_lifetime_gap twice -- serial and with a worker pool -- and
# requires the exported metrics JSON, trace JSONL and the stdout report to be
# byte-identical. This is the end-to-end form of the repo's determinism
# contract: not just equal parsed values, but equal bytes, which is what CI
# diffs against the in-repo golden.
#
# Expects -DBENCH=<path to bench_lifetime_gap> and -DWORK_DIR=<scratch dir>.

if(NOT DEFINED BENCH OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "pass -DBENCH=<bench binary> and -DWORK_DIR=<scratch dir>")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")

foreach(arm IN ITEMS serial parallel)
  if(arm STREQUAL "serial")
    set(jobs 1)
  else()
    set(jobs 4)
  endif()
  execute_process(
    COMMAND "${BENCH}"
      --jobs=${jobs}
      --metrics-out=${WORK_DIR}/metrics_${arm}.json
      --trace-out=${WORK_DIR}/trace_${arm}.jsonl
    OUTPUT_FILE "${WORK_DIR}/stdout_${arm}.txt"
    ERROR_VARIABLE bench_stderr
    RESULT_VARIABLE bench_rc)
  if(NOT bench_rc EQUAL 0)
    message(FATAL_ERROR "bench --jobs=${jobs} failed (rc=${bench_rc}): ${bench_stderr}")
  endif()
endforeach()

foreach(pair IN ITEMS "metrics_serial.json|metrics_parallel.json"
                      "trace_serial.jsonl|trace_parallel.jsonl"
                      "stdout_serial.txt|stdout_parallel.txt")
  string(REPLACE "|" ";" files "${pair}")
  list(GET files 0 a)
  list(GET files 1 b)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files "${WORK_DIR}/${a}" "${WORK_DIR}/${b}"
    RESULT_VARIABLE diff_rc)
  if(NOT diff_rc EQUAL 0)
    message(FATAL_ERROR
        "${a} and ${b} differ: telemetry export depends on --jobs "
        "(scheduling leaked into the deterministic stream)")
  endif()
endforeach()

message(STATUS "metrics, trace and stdout byte-identical for --jobs=1 vs --jobs=4")
