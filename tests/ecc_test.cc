// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Tests for the ECC layer: capability-model math, page decode, the bit-exact
// Hamming(72,64) codec, XOR parity, and CRC32.

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/ecc/ecc_scheme.h"
#include "src/ecc/hamming.h"
#include "src/ecc/parity.h"

namespace sos {
namespace {

// --- EccScheme model -------------------------------------------------------

TEST(EccSchemeTest, PresetsResolve) {
  EXPECT_EQ(EccScheme::FromPreset(EccPreset::kNone).correctable_bits, 0u);
  EXPECT_EQ(EccScheme::FromPreset(EccPreset::kWeakBch).correctable_bits, 8u);
  EXPECT_EQ(EccScheme::FromPreset(EccPreset::kBch).correctable_bits, 40u);
  EXPECT_EQ(EccScheme::FromPreset(EccPreset::kLdpc).correctable_bits, 72u);
  EXPECT_LT(EccScheme::FromPreset(EccPreset::kWeakBch).parity_overhead,
            EccScheme::FromPreset(EccPreset::kLdpc).parity_overhead);
}

TEST(EccSchemeTest, CodewordsPerPage) {
  const EccScheme scheme = EccScheme::FromPreset(EccPreset::kBch);
  EXPECT_EQ(scheme.CodewordsPerPage(4096), 4u);
  EXPECT_EQ(scheme.CodewordsPerPage(4097), 5u);
  EXPECT_EQ(scheme.CodewordsPerPage(100), 1u);
}

TEST(EccSchemeTest, FailureProbMonotonicInRber) {
  const EccScheme scheme = EccScheme::FromPreset(EccPreset::kBch);
  double prev = -1.0;
  for (double rber : {1e-6, 1e-5, 1e-4, 1e-3, 1e-2}) {
    const double p = scheme.CodewordFailureProb(rber);
    EXPECT_GE(p, prev);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    prev = p;
  }
}

TEST(EccSchemeTest, StrongerCodeFailsLess) {
  const double rber = 3e-3;
  EXPECT_LT(EccScheme::FromPreset(EccPreset::kLdpc).CodewordFailureProb(rber),
            EccScheme::FromPreset(EccPreset::kBch).CodewordFailureProb(rber));
  EXPECT_LT(EccScheme::FromPreset(EccPreset::kBch).CodewordFailureProb(rber),
            EccScheme::FromPreset(EccPreset::kWeakBch).CodewordFailureProb(rber));
}

TEST(EccSchemeTest, ZeroRberNeverFails) {
  const EccScheme scheme = EccScheme::FromPreset(EccPreset::kBch);
  EXPECT_EQ(scheme.CodewordFailureProb(0.0), 0.0);
  EXPECT_EQ(scheme.PageFailureProb(0.0, 4096), 0.0);
  EXPECT_EQ(scheme.Uber(0.0), 0.0);
}

TEST(EccSchemeTest, SaturatedRberAlwaysFails) {
  const EccScheme scheme = EccScheme::FromPreset(EccPreset::kBch);
  EXPECT_NEAR(scheme.CodewordFailureProb(0.4), 1.0, 1e-9);
}

TEST(EccSchemeTest, PageFailureAtLeastCodewordFailure) {
  const EccScheme scheme = EccScheme::FromPreset(EccPreset::kBch);
  for (double rber : {1e-4, 1e-3}) {
    EXPECT_GE(scheme.PageFailureProb(rber, 4096), scheme.CodewordFailureProb(rber));
  }
}

TEST(EccSchemeTest, NoEccUberEqualsRber) {
  const EccScheme none = EccScheme::FromPreset(EccPreset::kNone);
  EXPECT_DOUBLE_EQ(none.Uber(1e-4), 1e-4);
}

TEST(EccSchemeTest, MaxCorrectableRberConsistent) {
  const EccScheme scheme = EccScheme::FromPreset(EccPreset::kBch);
  const double limit = scheme.MaxCorrectableRber(4096, 1e-6);
  EXPECT_GT(limit, 0.0);
  EXPECT_LE(scheme.PageFailureProb(limit, 4096), 1e-6 * 1.1);
  EXPECT_GT(scheme.PageFailureProb(limit * 2.0, 4096), 1e-6);
  // A stronger code sustains a higher RBER.
  EXPECT_GT(EccScheme::FromPreset(EccPreset::kLdpc).MaxCorrectableRber(4096, 1e-6), limit);
}

TEST(EccSchemeTest, NoEccHasZeroLimit) {
  EXPECT_EQ(EccScheme::FromPreset(EccPreset::kNone).MaxCorrectableRber(4096), 0.0);
}

// --- DecodePage ------------------------------------------------------------

TEST(DecodePageTest, ZeroErrorsAlwaysCorrected) {
  for (EccPreset preset : {EccPreset::kNone, EccPreset::kWeakBch, EccPreset::kBch}) {
    const DecodeOutcome out = DecodePage(EccScheme::FromPreset(preset), 4096, 0, 1);
    EXPECT_TRUE(out.corrected);
    EXPECT_EQ(out.residual_errors, 0u);
  }
}

TEST(DecodePageTest, NoEccLeaksEverything) {
  const DecodeOutcome out = DecodePage(EccScheme::FromPreset(EccPreset::kNone), 4096, 17, 1);
  EXPECT_FALSE(out.corrected);
  EXPECT_EQ(out.residual_errors, 17u);
}

TEST(DecodePageTest, FewErrorsCorrected) {
  // 4 codewords * t=40: 20 errors can never exceed any single codeword.
  const DecodeOutcome out = DecodePage(EccScheme::FromPreset(EccPreset::kBch), 4096, 20, 42);
  EXPECT_TRUE(out.corrected);
}

TEST(DecodePageTest, ManyErrorsFail) {
  // 4 codewords * t=40 = 160 correctable in the best case; 400 must fail.
  const DecodeOutcome out = DecodePage(EccScheme::FromPreset(EccPreset::kBch), 4096, 400, 42);
  EXPECT_FALSE(out.corrected);
  EXPECT_GT(out.residual_errors, 0u);
  EXPECT_GT(out.failed_codewords, 0u);
}

TEST(DecodePageTest, DeterministicPerSeed) {
  const EccScheme scheme = EccScheme::FromPreset(EccPreset::kWeakBch);
  // 40 errors over 4 codewords of t=8: borderline, scatter decides.
  const DecodeOutcome a = DecodePage(scheme, 4096, 40, 7);
  const DecodeOutcome b = DecodePage(scheme, 4096, 40, 7);
  EXPECT_EQ(a.corrected, b.corrected);
  EXPECT_EQ(a.residual_errors, b.residual_errors);
  EXPECT_EQ(a.failed_codewords, b.failed_codewords);
}

// --- Hamming(72,64) --------------------------------------------------------

TEST(HammingTest, CleanRoundtrip) {
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const uint64_t data = rng.NextU64();
    HammingCodeword cw = HammingEncode(data);
    EXPECT_EQ(HammingDecode(cw), HammingResult::kClean);
    EXPECT_EQ(cw.data, data);
  }
}

TEST(HammingTest, CorrectsEverySingleDataBit) {
  Rng rng(6);
  const uint64_t data = rng.NextU64();
  for (int bit = 0; bit < 64; ++bit) {
    HammingCodeword cw = HammingEncode(data);
    cw.data ^= (1ull << bit);
    EXPECT_EQ(HammingDecode(cw), HammingResult::kCorrected) << "data bit " << bit;
    EXPECT_EQ(cw.data, data) << "data bit " << bit;
  }
}

TEST(HammingTest, CorrectsEverySingleCheckBit) {
  Rng rng(7);
  const uint64_t data = rng.NextU64();
  for (int bit = 0; bit < 8; ++bit) {
    HammingCodeword cw = HammingEncode(data);
    cw.check = static_cast<uint8_t>(cw.check ^ (1u << bit));
    EXPECT_EQ(HammingDecode(cw), HammingResult::kCorrected) << "check bit " << bit;
    EXPECT_EQ(cw.data, data) << "check bit " << bit;
  }
}

TEST(HammingTest, DetectsDoubleErrors) {
  Rng rng(8);
  int detected = 0;
  const int trials = 500;
  for (int i = 0; i < trials; ++i) {
    const uint64_t data = rng.NextU64();
    HammingCodeword cw = HammingEncode(data);
    const int b1 = static_cast<int>(rng.NextBounded(64));
    int b2 = static_cast<int>(rng.NextBounded(64));
    while (b2 == b1) {
      b2 = static_cast<int>(rng.NextBounded(64));
    }
    cw.data ^= (1ull << b1);
    cw.data ^= (1ull << b2);
    if (HammingDecode(cw) == HammingResult::kDetectedOnly) {
      ++detected;
    }
  }
  // SEC-DED guarantees detection of all double errors.
  EXPECT_EQ(detected, trials);
}

// --- Parity ----------------------------------------------------------------

TEST(ParityTest, ReconstructsAnyLostPage) {
  Rng rng(9);
  std::vector<std::vector<uint8_t>> stripe(5, std::vector<uint8_t>(64));
  for (auto& page : stripe) {
    for (auto& b : page) {
      b = static_cast<uint8_t>(rng.NextU64());
    }
  }
  const std::vector<uint8_t> parity = ComputeParityPage(stripe);
  for (size_t lost = 0; lost < stripe.size(); ++lost) {
    EXPECT_EQ(ReconstructFromParity(stripe, parity, lost), stripe[lost]) << "lost " << lost;
  }
}

TEST(ParityTest, SinglePageStripe) {
  std::vector<std::vector<uint8_t>> stripe{{1, 2, 3}};
  const std::vector<uint8_t> parity = ComputeParityPage(stripe);
  EXPECT_EQ(parity, stripe[0]);
  EXPECT_EQ(ReconstructFromParity(stripe, parity, 0), stripe[0]);
}

// --- CRC32 -----------------------------------------------------------------

TEST(Crc32Test, KnownVector) {
  // Standard test vector: CRC32("123456789") = 0xCBF43926.
  const std::string s = "123456789";
  EXPECT_EQ(Crc32({reinterpret_cast<const uint8_t*>(s.data()), s.size()}), 0xCBF43926u);
}

TEST(Crc32Test, EmptyIsZero) { EXPECT_EQ(Crc32({}), 0u); }

TEST(Crc32Test, DetectsSingleBitFlip) {
  std::vector<uint8_t> data(128, 0x42);
  const uint32_t crc = Crc32(data);
  data[37] ^= 0x04;
  EXPECT_NE(Crc32(data), crc);
}

}  // namespace
}  // namespace sos
