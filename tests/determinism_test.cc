// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Determinism regression harness. The repo's contract (src/common/rng.h)
// is that the same (config, seed) produces bit-identical simulations; the
// parallel experiment driver additionally promises that fanning jobs across
// threads changes nothing. Both promises are enforced here:
//
//   1. serial rerun       == serial run   (bit-identical, all DeviceKinds)
//   2. parallel driver    == serial run   (bit-identical, all DeviceKinds)
//   3. golden summaries for two fixed seeds, so RNG or error-model drift
//      (compiler, libm, platform) is caught even when a change is
//      self-consistent within one binary.

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>
#include "src/sos/experiment.h"
#include "src/sos/lifetime_sim.h"
#include "tools/perfcheck/microbench.h"

namespace sos {
namespace {

LifetimeSimConfig QuickConfig(DeviceKind kind, uint64_t seed, uint32_t days = 60) {
  LifetimeSimConfig config;
  config.kind = kind;
  config.seed = seed;
  config.days = days;
  config.nand.num_blocks = 128;
  config.training_files = 2000;
  config.workload.photos_per_day = 3.0;
  config.workload.reads_per_day = 40.0;
  config.workload.cache_files_per_day = 8.0;
  config.workload.app_updates_per_day = 80.0;
  config.file_size_cap = 32 * kKiB;
  config.sample_period_days = 30;
  return config;
}

LifetimeResult RunSerial(const LifetimeSimConfig& config) {
  LifetimeSim sim(config);
  return sim.Run();
}

// Every field, exactly. Doubles are compared with == on purpose: the two
// results come from the same binary, so any difference means real
// nondeterminism, not rounding.
void ExpectBitIdentical(const LifetimeResult& a, const LifetimeResult& b) {
  EXPECT_EQ(a.kind(), b.kind());
  EXPECT_EQ(a.host_bytes_written(), b.host_bytes_written());
  EXPECT_EQ(a.create_failures(), b.create_failures());
  EXPECT_EQ(a.final_max_wear_ratio(), b.final_max_wear_ratio());
  EXPECT_EQ(a.final_mean_wear_ratio(), b.final_mean_wear_ratio());
  EXPECT_EQ(a.final_exported_pages(), b.final_exported_pages());
  EXPECT_EQ(a.initial_exported_pages(), b.initial_exported_pages());
  EXPECT_EQ(a.final_spare_quality(), b.final_spare_quality());
  EXPECT_EQ(a.files_alive(), b.files_alive());
  EXPECT_EQ(a.retrainings(), b.retrainings());
  EXPECT_EQ(a.projected_lifetime_years(), b.projected_lifetime_years());

  EXPECT_EQ(a.ftl().host_writes(), b.ftl().host_writes());
  EXPECT_EQ(a.ftl().nand_writes(), b.ftl().nand_writes());
  EXPECT_EQ(a.ftl().parity_writes(), b.ftl().parity_writes());
  EXPECT_EQ(a.ftl().gc_relocations(), b.ftl().gc_relocations());
  EXPECT_EQ(a.ftl().wl_relocations(), b.ftl().wl_relocations());
  EXPECT_EQ(a.ftl().migrations(), b.ftl().migrations());
  EXPECT_EQ(a.ftl().refreshes(), b.ftl().refreshes());
  EXPECT_EQ(a.ftl().gc_erases(), b.ftl().gc_erases());
  EXPECT_EQ(a.ftl().background_collections(), b.ftl().background_collections());
  EXPECT_EQ(a.ftl().retired_blocks(), b.ftl().retired_blocks());
  EXPECT_EQ(a.ftl().resuscitated_blocks(), b.ftl().resuscitated_blocks());
  EXPECT_EQ(a.ftl().ecc_failures(), b.ftl().ecc_failures());
  EXPECT_EQ(a.ftl().retry_recoveries(), b.ftl().retry_recoveries());
  EXPECT_EQ(a.ftl().parity_rescues(), b.ftl().parity_rescues());
  EXPECT_EQ(a.ftl().degraded_reads(), b.ftl().degraded_reads());

  EXPECT_EQ(a.migration().scanned, b.migration().scanned);
  EXPECT_EQ(a.migration().demoted, b.migration().demoted);
  EXPECT_EQ(a.migration().promoted, b.migration().promoted);
  EXPECT_EQ(a.migration().demote_failures, b.migration().demote_failures);
  EXPECT_EQ(a.autodelete().activations, b.autodelete().activations);
  EXPECT_EQ(a.autodelete().files_deleted, b.autodelete().files_deleted);
  EXPECT_EQ(a.autodelete().bytes_freed, b.autodelete().bytes_freed);
  EXPECT_EQ(a.autodelete().exhausted, b.autodelete().exhausted);
  EXPECT_EQ(a.monitor().pages_scanned, b.monitor().pages_scanned);
  EXPECT_EQ(a.monitor().pages_refreshed, b.monitor().pages_refreshed);
  EXPECT_EQ(a.monitor().files_repaired, b.monitor().files_repaired);
  EXPECT_EQ(a.monitor().files_at_risk, b.monitor().files_at_risk);

  // Telemetry rides the same contract: metric rows and trace events are part
  // of the result, so they must be bit-identical too (operator== on the rows
  // compares every bound, bucket and field).
  EXPECT_EQ(a.daemon_activations(), b.daemon_activations());
  EXPECT_EQ(a.health_transitions(), b.health_transitions());
  EXPECT_EQ(a.trace_dropped(), b.trace_dropped());
  EXPECT_TRUE(a.device_metrics() == b.device_metrics());
  EXPECT_TRUE(a.trace() == b.trace());

  ASSERT_EQ(a.samples().size(), b.samples().size());
  for (size_t i = 0; i < a.samples().size(); ++i) {
    const DaySample& sa = a.samples()[i];
    const DaySample& sb = b.samples()[i];
    EXPECT_EQ(sa.day, sb.day) << "sample " << i;
    EXPECT_EQ(sa.max_wear_ratio, sb.max_wear_ratio) << "sample " << i;
    EXPECT_EQ(sa.mean_pec, sb.mean_pec) << "sample " << i;
    EXPECT_EQ(sa.exported_pages, sb.exported_pages) << "sample " << i;
    EXPECT_EQ(sa.fs_free_fraction, sb.fs_free_fraction) << "sample " << i;
    EXPECT_EQ(sa.live_files, sb.live_files) << "sample " << i;
    EXPECT_EQ(sa.retired_blocks, sb.retired_blocks) << "sample " << i;
    EXPECT_EQ(sa.spare_quality, sb.spare_quality) << "sample " << i;
    EXPECT_EQ(sa.spare_pages, sb.spare_pages) << "sample " << i;
  }
}

constexpr DeviceKind kAllKinds[] = {DeviceKind::kSos, DeviceKind::kTlcBaseline,
                                    DeviceKind::kQlcBaseline, DeviceKind::kPlcNaive};

TEST(DeterminismTest, SerialRerunAndParallelDriverAreBitIdentical) {
  std::vector<LifetimeSimConfig> configs;
  for (DeviceKind kind : kAllKinds) {
    configs.push_back(QuickConfig(kind, 5));
  }

  // Reference: plain serial runs on this thread.
  std::vector<LifetimeResult> serial;
  for (const LifetimeSimConfig& config : configs) {
    serial.push_back(RunSerial(config));
  }
  // Same (config, seed) serially again.
  for (size_t i = 0; i < configs.size(); ++i) {
    SCOPED_TRACE(DeviceKindName(configs[i].kind));
    ExpectBitIdentical(serial[i], RunSerial(configs[i]));
  }
  // Same batch through the parallel driver: more workers than cores is fine,
  // scheduling must not leak into results, and order must be job order.
  ExperimentDriver driver(4);
  const ExperimentBatch batch = driver.Run(configs);
  ASSERT_EQ(batch.results.size(), configs.size());
  EXPECT_EQ(batch.jobs_used, 4u);
  for (size_t i = 0; i < configs.size(); ++i) {
    SCOPED_TRACE(DeviceKindName(configs[i].kind));
    EXPECT_EQ(batch.results[i].kind(), configs[i].kind);  // job order, not completion order
    ExpectBitIdentical(serial[i], batch.results[i]);
  }
}

TEST(DeterminismTest, SeedSweepBatchMatchesIndividualRuns) {
  const std::vector<uint64_t> seeds = {3, 11, 12345};
  const std::vector<ExperimentJob> jobs = SeedSweep(QuickConfig(DeviceKind::kSos, 0), seeds);
  ASSERT_EQ(jobs.size(), seeds.size());
  for (size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(jobs[i].config.seed, seeds[i]);
  }
  ExperimentDriver driver(2);
  const ExperimentBatch batch = driver.RunBatch(jobs);
  for (size_t i = 0; i < seeds.size(); ++i) {
    SCOPED_TRACE("seed " + std::to_string(seeds[i]));
    ExpectBitIdentical(RunSerial(jobs[i].config), batch.results[i]);
  }
  // Different seeds must actually produce different workloads.
  EXPECT_NE(batch.results[0].host_bytes_written(), batch.results[1].host_bytes_written());
}

// The exported artifacts themselves -- the metrics JSON and trace JSONL a
// bench writes with --metrics-out / --trace-out -- must be byte-identical
// whether the batch ran serially or across workers, for every device kind.
// This is the telemetry determinism contract (DESIGN.md §9) at the level CI
// diffs: rendered bytes, not parsed fields.
TEST(DeterminismTest, TelemetryExportBytesAreScheduleInvariant) {
  for (const uint64_t seed : {uint64_t{5}, uint64_t{99}}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    std::vector<LifetimeSimConfig> configs;
    for (DeviceKind kind : kAllKinds) {
      configs.push_back(QuickConfig(kind, seed, 30));
    }

    std::vector<LifetimeResult> serial;
    for (const LifetimeSimConfig& config : configs) {
      serial.push_back(RunSerial(config));
    }
    ExperimentDriver driver(4);
    const ExperimentBatch batch = driver.Run(configs);
    ASSERT_EQ(batch.results.size(), serial.size());

    const std::string serial_metrics = BatchMetricsJson(serial);
    const std::string parallel_metrics = BatchMetricsJson(batch.results);
    EXPECT_EQ(serial_metrics, parallel_metrics);
    EXPECT_EQ(BatchTraceJsonl(serial), BatchTraceJsonl(batch.results));

    // The export must actually contain the instrumented layers, not vacuously
    // match as two empty documents.
    EXPECT_NE(serial_metrics.find("sim.host_bytes_written"), std::string::npos);
    EXPECT_NE(serial_metrics.find("ftl.pool."), std::string::npos);
    EXPECT_NE(serial_metrics.find("flash.die.read.rber"), std::string::npos);
    EXPECT_NE(serial_metrics.find("sos.daemon.activations"), std::string::npos);
  }
}

// Golden summaries for two fixed seeds. These values were produced by this
// test's own configuration at the time the harness was introduced; any
// change here means the simulation's deterministic stream moved -- either
// an intentional model change (update the goldens in the same commit) or
// cross-platform drift in the RNG / error model (a bug: both are written
// to avoid libm and std distribution differences).
struct Golden {
  uint64_t seed;
  uint64_t host_bytes_written;
  uint64_t nand_writes;
  uint64_t gc_erases;
  uint64_t migration_demoted;
  uint64_t files_alive;
  uint64_t final_exported_pages;
  double final_max_wear_ratio;
  double final_spare_quality;
};

TEST(DeterminismTest, GoldenSummariesForFixedSeeds) {
  // spare_quality goldens updated when Ftl::PickGcVictim / MaybeStaticWearLevel
  // gained strict block-id tie-breaks (soslint R1): equal-PEC/equal-score ties
  // now resolve to the lowest block id instead of hash-map order, which moves
  // SPARE data onto different (equivalent) physical blocks. All integer
  // counters were unchanged by that hardening.
  const Golden kGoldens[] = {
      {5, 182094209, 52407, 70, 718, 664, 32289, 0.0066666666666666671,
       0.96172271469443438},
      {99, 179395790, 50956, 66, 649, 612, 32289, 0.0033333333333333335,
       0.96181108467715759},
  };
  for (const Golden& golden : kGoldens) {
    SCOPED_TRACE("seed " + std::to_string(golden.seed));
    const LifetimeResult r = RunSerial(QuickConfig(DeviceKind::kSos, golden.seed));
    std::printf("golden{seed=%llu}: {%llu, %llu, %llu, %llu, %llu, %llu, %.17g, %.17g}\n",
                static_cast<unsigned long long>(golden.seed),
                static_cast<unsigned long long>(r.host_bytes_written()),
                static_cast<unsigned long long>(r.ftl().nand_writes()),
                static_cast<unsigned long long>(r.ftl().gc_erases()),
                static_cast<unsigned long long>(r.migration().demoted),
                static_cast<unsigned long long>(r.files_alive()),
                static_cast<unsigned long long>(r.final_exported_pages()),
                r.final_max_wear_ratio(), r.final_spare_quality());
    EXPECT_EQ(r.host_bytes_written(), golden.host_bytes_written);
    EXPECT_EQ(r.ftl().nand_writes(), golden.nand_writes);
    EXPECT_EQ(r.ftl().gc_erases(), golden.gc_erases);
    EXPECT_EQ(r.migration().demoted, golden.migration_demoted);
    EXPECT_EQ(r.files_alive(), golden.files_alive);
    EXPECT_EQ(r.final_exported_pages(), golden.final_exported_pages);
    EXPECT_DOUBLE_EQ(r.final_max_wear_ratio(), golden.final_max_wear_ratio);
    EXPECT_DOUBLE_EQ(r.final_spare_quality(), golden.final_spare_quality);
  }
}

// The opt-in hot-path variants (batched GC relocation, memoized RBER) ride
// the same schedule-invariance contract as the default path. Flipping them
// produces a *different* deterministic stream -- that is documented and why
// they default off -- but serial rerun and the parallel driver must still
// agree with the first serial run bit-for-bit.
TEST(DeterminismTest, BatchedRelocationAndRberMemoAreScheduleInvariant) {
  std::vector<LifetimeSimConfig> configs;
  for (const uint64_t seed : {uint64_t{5}, uint64_t{21}}) {
    // Default 60-day horizon: long enough that GC actually relocates pages
    // (the vacuity check below), unlike a 30-day run.
    LifetimeSimConfig config = QuickConfig(DeviceKind::kSos, seed);
    config.sos.batched_relocation = true;
    config.nand.rber_memo = true;
    configs.push_back(config);
  }

  std::vector<LifetimeResult> serial;
  for (const LifetimeSimConfig& config : configs) {
    serial.push_back(RunSerial(config));
  }
  // The batched path must actually have run, or this test is vacuous.
  EXPECT_GT(serial[0].ftl().gc_relocations() + serial[0].ftl().wl_relocations(), 0u);

  for (size_t i = 0; i < configs.size(); ++i) {
    SCOPED_TRACE("seed " + std::to_string(configs[i].seed));
    ExpectBitIdentical(serial[i], RunSerial(configs[i]));
  }
  ExperimentDriver driver(4);
  const ExperimentBatch batch = driver.Run(configs);
  ASSERT_EQ(batch.results.size(), configs.size());
  for (size_t i = 0; i < configs.size(); ++i) {
    SCOPED_TRACE("seed " + std::to_string(configs[i].seed));
    ExpectBitIdentical(serial[i], batch.results[i]);
  }
}

// Per-handle accounting rides the determinism contract too: the flash-cache
// workload under each directed placement policy must produce bit-identical
// per-handle metric rows (ftl.handle.<label>.*) and wear variance whether the
// batch runs serially or across driver workers. This is what makes the
// bench_flash_cache metrics golden diffable in CI for any --jobs.
TEST(DeterminismTest, PerHandleMetricsAreScheduleInvariant) {
  std::vector<LifetimeSimConfig> configs;
  for (PlacementPolicy policy : {PlacementPolicy::kStatic, PlacementPolicy::kLifetime}) {
    LifetimeSimConfig config = QuickConfig(DeviceKind::kSos, 21, 45);
    config.workload_kind = WorkloadKind::kFlashCache;
    config.cache_workload.objects_per_day = 60.0;
    config.cache_workload.lookups_per_day = 200.0;
    config.sos.placement_policy = policy;
    configs.push_back(config);
  }

  std::vector<LifetimeResult> serial;
  for (const LifetimeSimConfig& config : configs) {
    serial.push_back(RunSerial(config));
  }
  ExperimentDriver driver(4);
  const ExperimentBatch batch = driver.Run(configs);
  ASSERT_EQ(batch.results.size(), configs.size());
  for (size_t i = 0; i < configs.size(); ++i) {
    SCOPED_TRACE(PlacementPolicyName(configs[i].sos.placement_policy));
    ExpectBitIdentical(serial[i], batch.results[i]);
  }

  // Non-vacuity: the directed runs actually exported per-handle rows, and
  // those rows are in the byte-diffable export both schedules agree on.
  const std::string metrics = BatchMetricsJson(batch.results);
  EXPECT_EQ(metrics, BatchMetricsJson(serial));
  EXPECT_NE(metrics.find("ftl.handle."), std::string::npos);
  EXPECT_NE(metrics.find(".write_amplification"), std::string::npos);
  EXPECT_NE(metrics.find("ftl.placement.pec_variance"), std::string::npos);
  EXPECT_NE(metrics.find("sim.bytes_served"), std::string::npos);
}

// The perfcheck workload checksums (tools/perfcheck) are the CI gate for the
// hot-path refactors. They must not depend on the order benches are
// evaluated in or on which thread computes them: a fresh bench list
// evaluated in reverse, and two threads evaluating disjoint subsets from
// fresh state, all reproduce the in-order values.
TEST(DeterminismTest, PerfcheckChecksumsAreScheduleInvariant) {
  std::vector<perfcheck::MicroBench> benches = perfcheck::AllBenches();
  std::map<std::string, uint64_t> in_order;
  for (perfcheck::MicroBench& bench : benches) {
    in_order[bench.name] = bench.checksum();
  }
  ASSERT_EQ(in_order.size(), benches.size());

  std::vector<perfcheck::MicroBench> reversed = perfcheck::AllBenches();
  for (size_t i = reversed.size(); i-- > 0;) {
    SCOPED_TRACE(reversed[i].name);
    EXPECT_EQ(reversed[i].checksum(), in_order.at(reversed[i].name));
  }

  // Disjoint cheap subsets on two threads, each from a fresh AllBenches().
  const std::vector<std::string> left = {"l2p_flat", "rber_memo"};
  const std::vector<std::string> right = {"l2p_map", "ecc_decode"};
  const auto compute = [](const std::vector<std::string>& names,
                          std::map<std::string, uint64_t>* out) {
    std::vector<perfcheck::MicroBench> local = perfcheck::AllBenches();
    for (perfcheck::MicroBench& bench : local) {
      if (std::find(names.begin(), names.end(), bench.name) != names.end()) {
        (*out)[bench.name] = bench.checksum();
      }
    }
  };
  std::map<std::string, uint64_t> a;
  std::map<std::string, uint64_t> b;
  std::thread ta(compute, left, &a);
  std::thread tb(compute, right, &b);
  ta.join();
  tb.join();
  EXPECT_EQ(a.size(), left.size());
  EXPECT_EQ(b.size(), right.size());
  for (const auto& [name, value] : a) {
    EXPECT_EQ(value, in_order.at(name)) << name;
  }
  for (const auto& [name, value] : b) {
    EXPECT_EQ(value, in_order.at(name)) << name;
  }
}

}  // namespace
}  // namespace sos
