// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Randomized stress tests: long adversarial op sequences against the FTL and
// the full SOS device, auditing internal consistency after every batch and
// verifying that data that should be intact stays intact.

#include <gtest/gtest.h>

#include <map>

#include "src/classify/corpus.h"
#include "src/common/rng.h"
#include "src/fault/recovery_verifier.h"
#include "src/ftl/ftl.h"
#include "src/host/file_system.h"
#include "src/sos/sos_device.h"

namespace sos {
namespace {

// --- FTL stress -------------------------------------------------------------

FtlConfig StressFtlConfig(uint64_t seed, bool parity, CellTech mode) {
  FtlConfig config;
  config.nand.num_blocks = 24;
  config.nand.wordlines_per_block = 8;
  config.nand.page_size_bytes = 512;
  config.nand.tech = CellTech::kPlc;
  config.nand.seed = seed;
  config.nand.store_payloads = true;
  FtlPoolConfig a;
  a.name = "A";
  a.mode = mode;
  a.ecc = EccScheme::FromPreset(EccPreset::kLdpc);
  a.share = 0.6;
  a.parity_stripe = parity ? 4 : 0;
  FtlPoolConfig b;
  b.name = "B";
  b.mode = CellTech::kPlc;
  b.ecc = EccScheme::FromPreset(EccPreset::kNone);
  b.retire_rber = 5e-3;
  b.share = 0.4;
  b.wear_leveling = false;
  config.pools = {a, b};
  return config;
}

class FtlStressTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FtlStressTest, RandomOpsPreserveInvariants) {
  const uint64_t seed = GetParam();
  SimClock clock;
  Ftl ftl(StressFtlConfig(seed, seed % 2 == 0, seed % 3 == 0 ? CellTech::kQlc : CellTech::kTlc),
          &clock);
  Rng rng(DeriveSeed({seed, 0x7374726573ull /* "stres" */}));

  const uint64_t lba_space = ftl.ExportedPages() * 8 / 10;
  std::map<uint64_t, uint8_t> oracle;  // lba -> expected fill byte

  auto fill_of = [](uint64_t lba, uint32_t version) {
    return static_cast<uint8_t>(lba * 37 + version * 101 + 1);
  };
  std::map<uint64_t, uint32_t> version;

  for (int batch = 0; batch < 30; ++batch) {
    for (int op = 0; op < 200; ++op) {
      const uint64_t lba = rng.NextBounded(lba_space);
      switch (rng.NextBounded(10)) {
        case 0:
        case 1:
        case 2:
        case 3: {  // write / overwrite
          const uint8_t fill = fill_of(lba, ++version[lba]);
          const std::vector<uint8_t> data(512, fill);
          if (ftl.Write(lba, data, static_cast<uint32_t>(rng.NextBounded(2))).ok()) {
            oracle[lba] = fill;
          }
          break;
        }
        case 4: {  // trim
          if (oracle.erase(lba) > 0) {
            EXPECT_TRUE(ftl.Trim(lba).ok());
          } else {
            EXPECT_EQ(ftl.Trim(lba).code(), StatusCode::kNotFound);
          }
          break;
        }
        case 5: {  // migrate
          if (oracle.contains(lba)) {
            IgnoreResult(ftl.Migrate(lba, static_cast<uint32_t>(rng.NextBounded(2))));
          }
          break;
        }
        case 6: {  // refresh
          if (oracle.contains(lba)) {
            IgnoreResult(ftl.Refresh(lba));
          }
          break;
        }
        case 7: {  // time passes
          clock.Advance(rng.NextBounded(30) * kUsPerDay);
          break;
        }
        default: {  // read and verify against the oracle
          auto read = ftl.Read(lba);
          if (oracle.contains(lba)) {
            ASSERT_TRUE(read.ok());
            // Pool A is LDPC-protected and young: reads must be exact.
            // Pool B is approximate; only undegraded reads are checked.
            if (!read.value().degraded && !read.value().tainted) {
              EXPECT_EQ(read.value().data, std::vector<uint8_t>(512, oracle[lba]))
                  << "lba " << lba << " batch " << batch;
            }
          } else {
            EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
          }
          break;
        }
      }
    }
    ASSERT_TRUE(ftl.CheckInvariants().ok())
        << ftl.CheckInvariants().ToString() << " at batch " << batch;
  }

  // Final sweep: every oracle entry is mapped; every unmapped LBA reads as
  // not-found.
  for (const auto& [lba, fill] : oracle) {
    EXPECT_TRUE(ftl.IsMapped(lba));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FtlStressTest, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// --- Full-device stress -------------------------------------------------------

class SosStressTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SosStressTest, FileSystemChurnKeepsDeviceConsistent) {
  const uint64_t seed = GetParam();
  SimClock clock;
  SosDeviceConfig config;
  config.nand.num_blocks = 48;
  config.nand.wordlines_per_block = 8;
  config.nand.page_size_bytes = 512;
  config.nand.seed = seed;
  config.nand.store_payloads = true;
  config.spare_ecc = EccPreset::kWeakBch;  // checkable reads
  SosDevice device(config, &clock);
  ExtentFileSystem fs(&device, &clock);
  PlacementDirectory placements(&device);
  const PlacementHandle critical = placements.For({Durability::kCritical}).value();
  const PlacementHandle degradable = placements.For({Durability::kDegradable}).value();
  Rng rng(DeriveSeed({seed, 0x66737374ull /* "fsst" */}));

  std::vector<uint64_t> live;
  for (int round = 0; round < 400; ++round) {
    const uint64_t pick = rng.NextBounded(10);
    if (pick < 4 || live.empty()) {
      FileMeta meta = SynthesizeFile(SampleFileType(rng), clock.now(), 0.0, rng);
      meta.size_bytes = 512 + rng.NextBounded(4096);
      std::vector<uint8_t> content(meta.size_bytes);
      for (auto& c : content) {
        c = static_cast<uint8_t>(rng.NextU64());
      }
      auto id = fs.CreateFile(meta, content, rng.NextBool(0.5) ? critical : degradable);
      if (id.ok()) {
        live.push_back(id.value());
      }
    } else if (pick < 6) {
      const uint64_t id = live[rng.NextBounded(live.size())];
      auto read = fs.ReadFile(id);
      ASSERT_TRUE(read.ok());
    } else if (pick < 8) {
      const size_t idx = static_cast<size_t>(rng.NextBounded(live.size()));
      ASSERT_TRUE(fs.DeleteFile(live[idx]).ok());
      live[idx] = live.back();
      live.pop_back();
    } else if (pick == 8) {
      const uint64_t id = live[rng.NextBounded(live.size())];
      IgnoreResult(fs.ReclassifyFile(id, rng.NextBool(0.5) ? critical : degradable));
    } else {
      clock.Advance(rng.NextBounded(10) * kUsPerDay);
    }
    if (round % 50 == 0) {
      ASSERT_TRUE(device.ftl().CheckInvariants().ok())
          << device.ftl().CheckInvariants().ToString() << " at round " << round;
    }
  }
  ASSERT_TRUE(device.ftl().CheckInvariants().ok());
  // Every surviving file still reads end to end.
  for (uint64_t id : live) {
    EXPECT_TRUE(fs.ReadFile(id).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SosStressTest, ::testing::Values(11, 22, 33, 44));

// --- Fault-injected stress ----------------------------------------------------
//
// The same churn philosophy, but with the FaultInjector pulling power every
// few hundred device ops (plus a stuck block and transient program/read
// failures) and the recovery oracle auditing after every remount. The
// headline invariant is the paper's durability split: acked SYS data is
// never lost or wrong no matter where the cut lands; SPARE may come back
// degraded but must say so.

class FaultedStressTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FaultedStressTest, PowerCutsAndMediaFaultsNeverLoseAckedSysData) {
  VerifierConfig config;
  config.seed = GetParam();
  config.total_ops = 6000;
  config.cut_period = 350;  // a cut roughly every FTL op burst
  config.extra_faults = {
      {FaultKind::kBlockStuck, /*at_op=*/900, /*die=*/0, /*block=*/5},
      {FaultKind::kProgramFailTransient, /*at_op=*/1500},
      {FaultKind::kReadFailTransient, /*at_op=*/2500},
  };

  const Result<VerifierResult> run = RunRecoveryVerifier(config);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const VerifierResult& result = run.value();

  EXPECT_TRUE(result.ok) << "seed " << result.seed << ": sys_loss=" << result.sys_loss
                         << " invariant_failures=" << result.invariant_failures;
  EXPECT_EQ(result.sys_loss, 0u) << "acked SYS data lost under power cuts";
  EXPECT_EQ(result.invariant_failures, 0u);

  // The run must have actually exercised the fault path: power was cut,
  // remounts replayed journal pages, and the oracle audited reads after
  // every remount.
  EXPECT_GT(result.power_cuts, 0u);
  EXPECT_GT(result.audited_reads, 0u);
  EXPECT_GT(result.host_writes, 0u);
  // Torn-write accounting is exhaustive: every interrupted write either
  // committed or rolled back, never more than one fate per write.
  EXPECT_LE(result.torn_writes_committed + result.torn_writes_rolled_back,
            result.host_writes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultedStressTest, ::testing::Values(101, 202, 303, 404));

}  // namespace
}  // namespace sos
