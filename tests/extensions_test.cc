// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Tests for the extension modules: compression analysis (§5), the UFS LUN
// view (§4.3/[75]), user-preference biasing of the migration daemon (§4.4),
// and pseudo-SLC staging interplay with the rest of the stack.

#include <gtest/gtest.h>

#include "src/classify/corpus.h"
#include "src/classify/logistic.h"
#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/host/compression.h"
#include "src/media/quality.h"
#include "src/sos/daemons.h"
#include "src/sos/ufs.h"

namespace sos {
namespace {

// --- Compression (§5) --------------------------------------------------------

TEST(CompressionTest, LowEntropyCompressesWell) {
  FileMeta meta;
  meta.size_bytes = 1 << 20;
  meta.entropy_bits_per_byte = 4.0;  // text-like
  const CompressionEstimate est = EstimateFile(meta);
  EXPECT_GT(est.savings(), 0.4);
  EXPECT_LT(est.compressed_bytes, est.original_bytes);
}

TEST(CompressionTest, HighEntropyStoredRaw) {
  FileMeta meta;
  meta.size_bytes = 1 << 20;
  meta.entropy_bits_per_byte = 7.95;  // compressed media
  const CompressionEstimate est = EstimateFile(meta);
  EXPECT_DOUBLE_EQ(est.savings(), 0.0);
  EXPECT_EQ(est.compressed_bytes, est.original_bytes);
}

TEST(CompressionTest, EmptyFileIsNoOp) {
  FileMeta meta;
  meta.size_bytes = 0;
  EXPECT_DOUBLE_EQ(EstimateFile(meta).savings(), 0.0);
}

TEST(CompressionTest, PersonalCorpusSavesLittle) {
  // The §5 claim: media dominates personal bytes, so corpus-level savings
  // are small.
  const auto corpus = GenerateCorpus({.num_files = 8000, .seed = 9});
  const CorpusCompressionReport report = AnalyzeCorpus(corpus);
  EXPECT_LT(report.total.savings(), 0.15);
  // But the app-data slice individually compresses fine.
  const CompressionEstimate& appdata = report.by_type[static_cast<size_t>(FileType::kAppData)];
  EXPECT_GT(appdata.savings(), 0.2);
}

TEST(CompressionTest, MeasuredEntropyMatchesExpectations) {
  // Uniform random bytes -> ~8 bits/byte; constant bytes -> 0.
  Rng rng(3);
  std::vector<uint8_t> random(64 * kKiB);
  for (auto& b : random) {
    b = static_cast<uint8_t>(rng.NextU64());
  }
  EXPECT_GT(MeasuredEntropyBitsPerByte(random), 7.9);
  const std::vector<uint8_t> constant(4096, 0x55);
  EXPECT_DOUBLE_EQ(MeasuredEntropyBitsPerByte(constant), 0.0);
  EXPECT_DOUBLE_EQ(MeasuredEntropyBitsPerByte({}), 0.0);
  // The synthetic "photo" (gradient + noise) sits in between: structured
  // pixels, nontrivial but below media-codec entropy.
  const auto image = GenerateSyntheticImage(128, 128, 4);
  const double entropy = MeasuredEntropyBitsPerByte(image);
  EXPECT_GT(entropy, 3.0);
  EXPECT_LT(entropy, 8.0);
}

// --- UFS LUN view (§4.3, [75]) ------------------------------------------------

SosDeviceConfig UfsTestDevice() {
  SosDeviceConfig config;
  config.nand.num_blocks = 32;
  config.nand.wordlines_per_block = 4;
  config.nand.page_size_bytes = 512;
  config.nand.seed = 8;
  return config;
}

TEST(UfsViewTest, TwoLunsWithCorrectAttributes) {
  SimClock clock;
  SosDevice device(UfsTestDevice(), &clock);
  UfsView view(&device);
  const auto luns = view.Describe();
  ASSERT_EQ(luns.size(), 2u);
  EXPECT_TRUE(luns[0].high_reliability);
  EXPECT_FALSE(luns[0].dynamic_capacity);
  EXPECT_EQ(luns[0].backing_mode, CellTech::kQlc);
  EXPECT_FALSE(luns[1].high_reliability);
  EXPECT_TRUE(luns[1].dynamic_capacity);
  EXPECT_EQ(luns[1].backing_mode, CellTech::kPlc);
  EXPECT_GT(luns[0].capacity_bytes, 0u);
  EXPECT_GT(luns[1].capacity_bytes, luns[0].capacity_bytes);  // PLC is denser
  EXPECT_EQ(view.TotalBytes(), luns[0].capacity_bytes + luns[1].capacity_bytes);
}

TEST(UfsViewTest, AllocationTracksWrites) {
  SimClock clock;
  SosDevice device(UfsTestDevice(), &clock);
  UfsView view(&device);
  const auto before = view.Describe();
  const PlacementHandle degradable =
      device.OpenPlacement({Durability::kDegradable}).value();
  std::vector<uint8_t> page(512, 1);
  for (uint64_t lba = 0; lba < 10; ++lba) {
    ASSERT_TRUE(device.Write(lba, page, degradable).ok());
  }
  const auto after = view.Describe();
  EXPECT_EQ(before[1].allocated_bytes, 0u);
  EXPECT_EQ(after[1].allocated_bytes, 10u * 512u);
  EXPECT_EQ(after[0].allocated_bytes, 0u);
}

TEST(UfsViewTest, RenderMentionsBothLuns) {
  SimClock clock;
  SosDevice device(UfsTestDevice(), &clock);
  const std::string text = UfsView(&device).Render();
  EXPECT_NE(text.find("LUN 0"), std::string::npos);
  EXPECT_NE(text.find("LUN 1"), std::string::npos);
  EXPECT_NE(text.find("RELIABLE"), std::string::npos);
  EXPECT_NE(text.find("DYN-CAP"), std::string::npos);
}

// --- User preference bias (§4.4) ----------------------------------------------

TEST(PreferenceBiasTest, NegativeBiasProtectsAType) {
  SimClock clock;
  SosDevice device(UfsTestDevice(), &clock);
  ExtentFileSystem fs(&device, &clock);
  PlacementDirectory placements(&device);
  const auto corpus = GenerateCorpus({.num_files = 3000, .seed = 12});
  const LogisticClassifier model =
      LogisticClassifier::Train(AsPointers(corpus), &ExpendableLabel,
                                CorpusConfig{}.device_age_us);

  // A plain, zero-significance photo that the model would demote.
  Rng rng(4);
  FileMeta photo = SynthesizeFile(FileType::kPhoto, 0, 0.0, rng);
  photo.personal_signal = 0.0;
  photo.size_bytes = 512;
  auto id = fs.CreateFile(photo, std::vector<uint8_t>(512, 1),
                          placements.For({Durability::kCritical}).value());
  ASSERT_TRUE(id.ok());
  clock.Advance(7 * kUsPerDay);

  auto durability_of = [&](uint64_t file_id) {
    return fs.PlacementSpecOf(file_id).value().durability;
  };
  // Without bias: demoted.
  {
    MigrationDaemon daemon(&fs, &placements, &model, {});
    daemon.RunOnce(clock.now());
    EXPECT_EQ(durability_of(id.value()), Durability::kDegradable);
  }
  // User said "never risk photos": strong negative bias promotes it back
  // and prevents future demotion.
  {
    MigrationDaemonConfig config;
    config.type_score_bias[static_cast<size_t>(FileType::kPhoto)] = -1.0;
    MigrationDaemon daemon(&fs, &placements, &model, config);
    daemon.RunOnce(clock.now());
    EXPECT_EQ(durability_of(id.value()), Durability::kCritical);
    daemon.RunOnce(clock.now());
    EXPECT_EQ(durability_of(id.value()), Durability::kCritical);
  }
}

TEST(PreferenceBiasTest, PositiveBiasVolunteersAType) {
  SimClock clock;
  SosDevice device(UfsTestDevice(), &clock);
  ExtentFileSystem fs(&device, &clock);
  PlacementDirectory placements(&device);
  const auto corpus = GenerateCorpus({.num_files = 3000, .seed = 13});
  const LogisticClassifier model =
      LogisticClassifier::Train(AsPointers(corpus), &ExpendableLabel,
                                CorpusConfig{}.device_age_us);
  // A document the model keeps in SYS by default.
  Rng rng(5);
  FileMeta doc = SynthesizeFile(FileType::kDocument, 0, 0.0, rng);
  doc.size_bytes = 512;
  auto id = fs.CreateFile(doc, std::vector<uint8_t>(512, 2),
                          placements.For({Durability::kCritical}).value());
  ASSERT_TRUE(id.ok());
  clock.Advance(7 * kUsPerDay);

  MigrationDaemonConfig config;
  config.type_score_bias[static_cast<size_t>(FileType::kDocument)] = 1.0;
  MigrationDaemon daemon(&fs, &placements, &model, config);
  daemon.RunOnce(clock.now());
  EXPECT_EQ(fs.PlacementSpecOf(id.value()).value().durability, Durability::kDegradable);
}

}  // namespace
}  // namespace sos
