// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Unit tests for src/common: RNG determinism and distribution sanity,
// statistics, status/result plumbing, table formatting, units.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/common/rng.h"
#include "src/common/sim_clock.h"
#include "src/common/stats.h"
#include "src/common/status.h"
#include "src/common/table.h"
#include "src/common/units.h"

namespace sos {
namespace {

// --- RNG -------------------------------------------------------------------

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextBoundedRespectsBound) {
  Rng rng(9);
  for (uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
  EXPECT_EQ(rng.NextBounded(0), 0u);
}

TEST(RngTest, NextIntCoversRangeInclusive) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.NextInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextBoolEdgeCases) {
  Rng rng(13);
  EXPECT_FALSE(rng.NextBool(0.0));
  EXPECT_TRUE(rng.NextBool(1.0));
  int count = 0;
  for (int i = 0; i < 10000; ++i) {
    count += rng.NextBool(0.25) ? 1 : 0;
  }
  EXPECT_NEAR(count / 10000.0, 0.25, 0.03);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) {
    stats.Add(rng.NextGaussian(5.0, 2.0));
  }
  EXPECT_NEAR(stats.mean(), 5.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(19);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) {
    stats.Add(rng.NextExponential(3.0));
  }
  EXPECT_NEAR(stats.mean(), 3.0, 0.15);
}

TEST(RngTest, BinomialMeanSmallN) {
  Rng rng(23);
  RunningStats stats;
  for (int i = 0; i < 5000; ++i) {
    stats.Add(static_cast<double>(rng.NextBinomial(20, 0.3)));
  }
  EXPECT_NEAR(stats.mean(), 6.0, 0.2);
}

TEST(RngTest, BinomialMeanLargeNSmallP) {
  // Exercises the geometric-skip path (n > 64, np < 16).
  Rng rng(29);
  RunningStats stats;
  for (int i = 0; i < 3000; ++i) {
    stats.Add(static_cast<double>(rng.NextBinomial(32768, 1e-4)));
  }
  EXPECT_NEAR(stats.mean(), 3.2768, 0.25);
}

TEST(RngTest, BinomialMeanLargeNLargeP) {
  // Exercises the normal-approximation path.
  Rng rng(31);
  RunningStats stats;
  for (int i = 0; i < 3000; ++i) {
    stats.Add(static_cast<double>(rng.NextBinomial(100000, 0.01)));
  }
  EXPECT_NEAR(stats.mean(), 1000.0, 10.0);
}

TEST(RngTest, BinomialEdgeCases) {
  Rng rng(37);
  EXPECT_EQ(rng.NextBinomial(0, 0.5), 0u);
  EXPECT_EQ(rng.NextBinomial(100, 0.0), 0u);
  EXPECT_EQ(rng.NextBinomial(100, 1.0), 100u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(41);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(DeriveSeedTest, SensitiveToEveryKey) {
  const uint64_t base = DeriveSeed({1, 2, 3});
  EXPECT_NE(base, DeriveSeed({1, 2, 4}));
  EXPECT_NE(base, DeriveSeed({1, 3, 3}));
  EXPECT_NE(base, DeriveSeed({2, 2, 3}));
  EXPECT_EQ(base, DeriveSeed({1, 2, 3}));
}

TEST(ZipfTest, RankZeroMostPopular) {
  ZipfDistribution zipf(100, 1.0);
  Rng rng(43);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) {
    ++counts[zipf.Sample(rng)];
  }
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], counts[99]);
  // Zipf(1.0): rank 0 should take roughly 1/H(100) ~ 19% of mass.
  EXPECT_NEAR(counts[0] / 50000.0, 0.19, 0.05);
}

// --- Stats -----------------------------------------------------------------

TEST(RunningStatsTest, BasicMoments) {
  RunningStats stats;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) {
    stats.Add(x);
  }
  EXPECT_EQ(stats.count(), 5u);
  EXPECT_DOUBLE_EQ(stats.mean(), 3.0);
  EXPECT_DOUBLE_EQ(stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 5.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 15.0);
  EXPECT_NEAR(stats.variance(), 2.5, 1e-12);
}

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_EQ(stats.min(), 0.0);
}

TEST(PercentilesTest, InterpolatesOrderStatistics) {
  Percentiles p;
  for (int i = 100; i >= 1; --i) {
    p.Add(i);
  }
  EXPECT_DOUBLE_EQ(p.Get(0), 1.0);
  EXPECT_DOUBLE_EQ(p.Get(100), 100.0);
  EXPECT_NEAR(p.Get(50), 50.5, 1e-9);
  EXPECT_NEAR(p.Get(99), 99.01, 0.1);
}

TEST(PercentilesTest, EmptyReturnsZero) {
  Percentiles p;
  EXPECT_EQ(p.Get(50), 0.0);
}

TEST(HistogramTest, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.Add(-5.0);   // clamps to first bucket
  h.Add(0.5);
  h.Add(9.9);
  h.Add(100.0);  // clamps to last bucket
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.buckets().front(), 2u);
  EXPECT_EQ(h.buckets().back(), 2u);
  EXPECT_FALSE(h.Render().empty());
}

// --- Status / Result -------------------------------------------------------

TEST(StatusTest, OkAndError) {
  EXPECT_TRUE(Status::Ok().ok());
  EXPECT_EQ(Status::Ok().ToString(), "OK");
  Status err(StatusCode::kDataLoss, "page 42");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.ToString(), "DATA_LOSS: page 42");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kUnavailable); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "UNKNOWN");
  }
}

TEST(ResultTest, ValueAndStatus) {
  Result<int> ok_result(5);
  EXPECT_TRUE(ok_result.ok());
  EXPECT_EQ(ok_result.value(), 5);
  EXPECT_TRUE(ok_result.status().ok());

  Result<int> err_result(Status(StatusCode::kNotFound, "gone"));
  EXPECT_FALSE(err_result.ok());
  EXPECT_EQ(err_result.status().code(), StatusCode::kNotFound);
}

TEST(StatusTest, CodeNamesAreDistinct) {
  // A duplicate name would make two failure modes indistinguishable in logs
  // and table output; catch it when a new code is added.
  std::set<std::string> names;
  const int count = static_cast<int>(StatusCode::kUnavailable) + 1;
  for (int c = 0; c < count; ++c) {
    names.insert(StatusCodeName(static_cast<StatusCode>(c)));
  }
  EXPECT_EQ(names.size(), static_cast<size_t>(count));
}

TEST(StatusTest, ToStringWithEmptyMessage) {
  EXPECT_EQ(Status(StatusCode::kWornOut, "").ToString(), "WORN_OUT");
}

TEST(ResultTest, MovedFromResultKeepsItsAlternative) {
  // std::variant's move leaves the same alternative engaged (holding a
  // moved-from value), so ok() on a moved-from Result keeps answering
  // consistently instead of flipping to an error.
  Result<std::string> ok_result(std::string("payload"));
  Result<std::string> moved_ok = std::move(ok_result);
  EXPECT_TRUE(moved_ok.ok());
  EXPECT_EQ(moved_ok.value(), "payload");
  EXPECT_TRUE(ok_result.ok());  // NOLINT(bugprone-use-after-move)

  Result<std::string> err_result(Status(StatusCode::kWornOut, "dead"));
  Result<std::string> moved_err = std::move(err_result);
  EXPECT_FALSE(moved_err.ok());
  EXPECT_EQ(moved_err.status().code(), StatusCode::kWornOut);
  EXPECT_EQ(moved_err.status().message(), "dead");
  // The moved-from error still reports the (scalar) code even though the
  // message string's contents are unspecified after the move.
  EXPECT_FALSE(err_result.ok());  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(err_result.status().code(), StatusCode::kWornOut);
}

TEST(ResultTest, IgnoreResultConsumesNodiscardValues) {
  // IgnoreResult is the sanctioned sink for deliberately dropped values;
  // this compiles warning-free where a bare call would trip
  // -Werror=unused-result.
  IgnoreResult(Status(StatusCode::kUnavailable, "busy"));
  IgnoreResult(Result<int>(7));
}

#if GTEST_HAS_DEATH_TEST && !defined(NDEBUG)
TEST(ResultDeathTest, ValueOnErrorAsserts) {
  // The tree builds with assertions on (CMake strips NDEBUG), so misusing
  // value() must die loudly rather than return garbage.
  Result<int> err(Status(StatusCode::kNotFound, "gone"));
  EXPECT_DEATH({ [[maybe_unused]] const int v = err.value(); }, "ok");
}

TEST(ResultDeathTest, OkStatusWithoutValueAsserts) {
  EXPECT_DEATH(IgnoreResult(Result<int>(Status::Ok())), "OK status without a value");
}
#endif

// --- Table & formatting ----------------------------------------------------

TEST(TableTest, RendersAlignedColumns) {
  TextTable table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "22.5"});
  const std::string out = table.Render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("-+-"), std::string::npos);
}

TEST(FormatTest, Helpers) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatPercent(0.5, 1), "50.0%");
  EXPECT_EQ(FormatCount(1234567), "1,234,567");
  EXPECT_EQ(FormatCount(12), "12");
  EXPECT_EQ(FormatBytes(2048), "2.00 KiB");
  EXPECT_EQ(FormatBytes(3 * kGiB), "3.00 GiB");
}

// --- Units & clock ---------------------------------------------------------

TEST(UnitsTest, Conversions) {
  EXPECT_DOUBLE_EQ(BytesToGiB(kGiB), 1.0);
  EXPECT_DOUBLE_EQ(BytesToGB(kGB), 1.0);
  EXPECT_DOUBLE_EQ(UsToDays(kUsPerDay), 1.0);
  EXPECT_DOUBLE_EQ(UsToYears(kUsPerYear), 1.0);
  EXPECT_EQ(DaysToUs(2.0), 2 * kUsPerDay);
  EXPECT_DOUBLE_EQ(GramsToMegatonnes(1e12), 1.0);
  EXPECT_DOUBLE_EQ(GramsToTonnes(KgToGrams(1000.0)), 1.0);
}

TEST(SimClockTest, MonotonicAdvance) {
  SimClock clock;
  EXPECT_EQ(clock.now(), 0u);
  clock.Advance(100);
  EXPECT_EQ(clock.now(), 100u);
  clock.AdvanceTo(kUsPerDay);
  EXPECT_DOUBLE_EQ(clock.now_days(), 1.0);
}

}  // namespace
}  // namespace sos
