// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Cross-module integration tests: the full Figure-2 pipeline end to end,
// multi-year lifetime runs asserting the paper's headline claims in
// miniature, and whole-stack determinism.

#include <gtest/gtest.h>

#include "src/carbon/embodied.h"
#include "src/classify/corpus.h"
#include "src/classify/eval.h"
#include "src/classify/logistic.h"
#include "src/media/quality.h"
#include "src/sos/lifetime_sim.h"

namespace sos {
namespace {

LifetimeSimConfig YearSim(DeviceKind kind, uint32_t days = 365) {
  LifetimeSimConfig config;
  config.kind = kind;
  config.days = days;
  config.seed = 404;
  config.nand.num_blocks = 128;
  config.training_files = 3000;
  // Balanced to realistic utilization: a phone accumulates data but is not
  // near-full after a year (near-full devices thrash GC, which is the E11
  // stress scenario, not the typical one).
  config.workload.photos_per_day = 1.5;
  config.workload.reads_per_day = 60.0;
  config.workload.cache_files_per_day = 6.0;
  config.workload.deletes_per_day = 4.0;
  config.workload.app_updates_per_day = 60.0;
  config.file_size_cap = 32 * kKiB;
  config.sample_period_days = 60;
  return config;
}

TEST(IntegrationTest, EndToEndPipelineMovesMostMediaToSpare) {
  // Figure 2 end to end: after a year of operation with the daemons on,
  // the majority of stored pages should live on the approximate partition
  // (media dominates bytes and most media is low-priority).
  LifetimeSim sim(YearSim(DeviceKind::kSos));
  const LifetimeResult result = sim.Run();
  ASSERT_FALSE(result.samples().empty());
  const DaySample& last = result.samples().back();
  EXPECT_GT(last.spare_pages, 0u);
  EXPECT_GT(result.migration().demoted, result.migration().promoted);
  // Quality of degradable data stays high under typical use.
  EXPECT_GT(result.final_spare_quality(), 0.9);
}

TEST(IntegrationTest, WearGapClaim) {
  // Paper §2.3.2: under typical usage, a personal device consumes only a
  // small fraction (order 5%) of its flash endurance over its 2-3 year
  // life; the flash outlives the device by an order of magnitude.
  LifetimeSim sim(YearSim(DeviceKind::kSos, 365));
  const LifetimeResult result = sim.Run();
  // One year of typical use consumes a small fraction of endurance even on
  // low-endurance PLC-based SOS.
  EXPECT_LT(result.final_max_wear_ratio(), 0.15);
  // Extrapolated flash lifetime comfortably exceeds a 3-year service life.
  EXPECT_GT(result.projected_lifetime_years(), 5.0);
}

TEST(IntegrationTest, SosMatchesTlcOnSurvivalBeatsItOnCarbon) {
  // E12 in miniature: same workload on SOS vs the TLC baseline.
  const LifetimeResult sos_result = LifetimeSim(YearSim(DeviceKind::kSos)).Run();
  const LifetimeResult tlc_result = LifetimeSim(YearSim(DeviceKind::kTlcBaseline)).Run();

  // Both survive the year without rejecting user data.
  EXPECT_EQ(sos_result.create_failures(), 0u);
  EXPECT_EQ(tlc_result.create_failures(), 0u);

  // The SOS die exports more capacity from the same cells...
  EXPECT_GT(sos_result.initial_exported_pages(), tlc_result.initial_exported_pages());

  // ...which is exactly the embodied-carbon saving: same capacity needs
  // ~1/3 fewer cells (paper: 50% density gain vs TLC).
  const double gain = static_cast<double>(sos_result.initial_exported_pages()) /
                      static_cast<double>(tlc_result.initial_exported_pages());
  EXPECT_GT(gain, 1.3);
  EXPECT_LT(gain, 1.7);
}

TEST(IntegrationTest, FullStackDeterminism) {
  auto fingerprint = [](const LifetimeResult& r) {
    return std::make_tuple(r.host_bytes_written(), r.ftl().nand_writes(), r.ftl().gc_erases(),
                           r.ftl().migrations(), r.migration().demoted, r.final_max_wear_ratio(),
                           r.final_spare_quality());
  };
  const auto a = fingerprint(LifetimeSim(YearSim(DeviceKind::kSos, 120)).Run());
  const auto b = fingerprint(LifetimeSim(YearSim(DeviceKind::kSos, 120)).Run());
  EXPECT_EQ(a, b);
}

TEST(IntegrationTest, ClassifierQualityGatesDataRisk) {
  // The classifier's false-discovery rate bounds how much critical data can
  // land on the lossy partition. Verify the deployed configuration (logistic
  // at the daemon's demotion threshold) keeps the at-risk rate modest.
  CorpusConfig config;
  config.num_files = 8000;
  config.seed = 1234;
  const auto corpus = GenerateCorpus(config);
  const CorpusSplit split = SplitCorpus(corpus, 5);
  const LogisticClassifier model =
      LogisticClassifier::Train(split.train, &ExpendableLabel, config.device_age_us);
  const ConfusionMatrix cm = EvaluateClassifier(model, split.test, &ExpendableLabel,
                                                config.device_age_us,
                                                MigrationDaemonConfig{}.demote_threshold);
  // Of everything demoted to SPARE, under a quarter is labeled critical.
  // Note the floor: the corpus carries 8% symmetric label noise, which alone
  // puts ~13% "critical" labels among true expendables -- much of the FDR is
  // irreducible disagreement ([80]), not model error.
  EXPECT_LT(cm.false_discovery_rate(), 0.25);
  // And the demotion still captures most expendable data (density benefit).
  EXPECT_GT(cm.recall(), 0.55);
}

TEST(IntegrationTest, HeavyWorkloadTriggersFallbacks) {
  // Paper §4.5: under exceptionally write-intensive use, SOS trims data via
  // auto-delete and keeps functioning.
  LifetimeSimConfig config = YearSim(DeviceKind::kSos, 365);
  config.workload.intensity = 6.0;  // pathological power user
  config.workload.photos_per_day = 20.0;
  const LifetimeResult result = LifetimeSim(config).Run();
  EXPECT_GT(result.autodelete().activations, 0u);
  EXPECT_GT(result.autodelete().files_deleted, 0u);
  // Wear far above the typical case.
  LifetimeSim typical(YearSim(DeviceKind::kSos, 365));
  EXPECT_GT(result.final_max_wear_ratio(), typical.Run().final_max_wear_ratio());
}

TEST(IntegrationTest, SplitSchemeCarbonStoryHolds) {
  // Tie the device geometry to the carbon model: exported capacity per die
  // should track the analytic split density, and the carbon saving follows.
  LifetimeSimConfig config = YearSim(DeviceKind::kSos, 1);
  LifetimeSimConfig tlc_cfg = YearSim(DeviceKind::kTlcBaseline, 1);
  const uint64_t sos_pages = LifetimeSim(config).Run().initial_exported_pages();
  const uint64_t tlc_pages = LifetimeSim(tlc_cfg).Run().initial_exported_pages();
  const double measured_gain =
      static_cast<double>(sos_pages) / static_cast<double>(tlc_pages);
  const double analytic_gain =
      FlashCarbonModel::SplitDensityGain(CellTech::kQlc, CellTech::kPlc, 0.5, CellTech::kTlc);
  // The device loses a bit to SYS parity stripes, so measured < analytic,
  // but they must agree to ~15%.
  EXPECT_NEAR(measured_gain, analytic_gain, analytic_gain * 0.15);
  const FlashCarbonModel carbon;
  EXPECT_LT(carbon.KgPerGbSplit(CellTech::kQlc, CellTech::kPlc, 0.5),
            carbon.KgPerGb(CellTech::kTlc));
}

}  // namespace
}  // namespace sos
