// Copyright (c) 2026 The SOS Authors. MIT License.
//
// Tests for the carbon model: every quantitative claim in paper §2.3/§3/§4
// is checked here against the model that the benches print.

#include <gtest/gtest.h>

#include "src/carbon/embodied.h"
#include "src/carbon/market.h"
#include "src/carbon/projection.h"
#include "src/common/units.h"

namespace sos {
namespace {

// --- Embodied carbon -------------------------------------------------------

TEST(EmbodiedTest, TlcAnchor) {
  const FlashCarbonModel model;
  EXPECT_DOUBLE_EQ(model.KgPerGb(CellTech::kTlc), 0.16);
}

TEST(EmbodiedTest, CarbonScalesInverselyWithDensity) {
  const FlashCarbonModel model;
  EXPECT_GT(model.KgPerGb(CellTech::kSlc), model.KgPerGb(CellTech::kTlc));
  EXPECT_LT(model.KgPerGb(CellTech::kQlc), model.KgPerGb(CellTech::kTlc));
  EXPECT_LT(model.KgPerGb(CellTech::kPlc), model.KgPerGb(CellTech::kQlc));
  EXPECT_NEAR(model.KgPerGb(CellTech::kPlc), 0.16 * 3.0 / 5.0, 1e-12);
}

TEST(EmbodiedTest, SplitSchemeEffectiveBits) {
  // 50/50 pseudo-QLC + PLC: 1 / (0.5/4 + 0.5/5) = 4.444... bits/cell.
  EXPECT_NEAR(FlashCarbonModel::EffectiveBitsPerCell(CellTech::kQlc, CellTech::kPlc, 0.5),
              40.0 / 9.0, 1e-9);
}

TEST(EmbodiedTest, PaperCapacityGains) {
  // Paper §4.2: "50% and 10% capacity gain over using TLC or QLC memory".
  const double vs_tlc =
      FlashCarbonModel::SplitDensityGain(CellTech::kQlc, CellTech::kPlc, 0.5, CellTech::kTlc);
  const double vs_qlc =
      FlashCarbonModel::SplitDensityGain(CellTech::kQlc, CellTech::kPlc, 0.5, CellTech::kQlc);
  EXPECT_NEAR(vs_tlc, 1.48, 0.02);   // ~ +50%
  EXPECT_NEAR(vs_qlc, 1.11, 0.02);   // ~ +10%
}

TEST(EmbodiedTest, SplitCarbonBelowTlc) {
  const FlashCarbonModel model;
  const double split = model.KgPerGbSplit(CellTech::kQlc, CellTech::kPlc, 0.5);
  EXPECT_LT(split, model.KgPerGb(CellTech::kTlc));
  // The carbon saving equals the density gain: ~1/3 less carbon per GB.
  EXPECT_NEAR(model.KgPerGb(CellTech::kTlc) / split, 1.48, 0.02);
}

TEST(EmbodiedTest, DeviceFootprint) {
  const FlashCarbonModel model;
  // A 128 GB TLC phone: 128 * 0.16 = 20.5 kg CO2e of flash.
  EXPECT_NEAR(model.DeviceKg(128 * kGB, CellTech::kTlc), 20.48, 0.01);
}

TEST(EmbodiedTest, PeopleEquivalentAnchor) {
  // Paper §1: 122 Mt CO2 ~ annual emissions of 28M people.
  EXPECT_NEAR(PeopleEquivalent(122.4), 28.0e6, 1e5);
}

// --- Market (Figure 1) -----------------------------------------------------

TEST(MarketTest, SharesSumToOne) {
  double total = 0.0;
  for (const auto& seg : FlashMarketSegments()) {
    total += seg.bit_share;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(MarketTest, FigureOneAnchors) {
  // The labeled shares of Figure 1.
  for (const auto& seg : FlashMarketSegments()) {
    if (seg.name == "smartphone") {
      EXPECT_DOUBLE_EQ(seg.bit_share, 0.38);
    } else if (seg.name == "ssd") {
      EXPECT_DOUBLE_EQ(seg.bit_share, 0.32);
    } else if (seg.name == "memory card") {
      EXPECT_DOUBLE_EQ(seg.bit_share, 0.08);
    }
  }
}

TEST(MarketTest, PersonalShareIsAboutHalf) {
  // Paper §2.3.2: personal devices take "approximately half" of flash bits.
  EXPECT_NEAR(PersonalBitShare(), 0.5, 0.1);
  EXPECT_GT(PersonalBitShare(), 0.5);  // "over half ... will be discarded"
}

TEST(MarketTest, ThreeReplacementsPerDecade) {
  // Paper §2.3.2: personal flash "replaced over three times in the coming
  // decade".
  const double replacements = PersonalReplacementsOver(10.0);
  EXPECT_GT(replacements, 3.0);
  EXPECT_LT(replacements, 5.0);
}

TEST(MarketTest, WearUtilizationAboutFivePercent) {
  // Paper §2.3.2 / [38]: users wear out ~5% of rated endurance.
  EXPECT_NEAR(PersonalWearUtilization(), 0.05, 0.03);
}

// --- Projection (§3) -------------------------------------------------------

TEST(ProjectionTest, BaseYearEmissions) {
  const CarbonProjection projection{ProjectionParams{}};
  const YearProjection base = projection.ForYear(2021);
  EXPECT_DOUBLE_EQ(base.production_eb, 765.0);
  // 765 EB * 0.16 kg/GB = 122.4 Mt.
  EXPECT_NEAR(base.emissions_mt, 122.4, 0.1);
  EXPECT_NEAR(base.people_equivalent, 28.0e6, 1e5);
}

TEST(ProjectionTest, EmissionsGrowDespiteDensityGains) {
  // Paper §3: demand growth outpaces density improvement, so production
  // emissions keep rising through 2030.
  const CarbonProjection projection{ProjectionParams{}};
  double prev = 0.0;
  for (const auto& year : projection.Range(2021, 2030)) {
    EXPECT_GT(year.emissions_mt, prev);
    prev = year.emissions_mt;
  }
}

TEST(ProjectionTest, By2030Exceeds150MPeople) {
  // Paper §1: "by 2030 ... the equivalent of over 150M people".
  const CarbonProjection projection{ProjectionParams{}};
  EXPECT_GT(projection.ForYear(2030).people_equivalent, 150.0e6);
}

TEST(ProjectionTest, CarbonIntensityFallsSlowerThanDensity) {
  const CarbonProjection projection{ProjectionParams{}};
  const double start = projection.ForYear(2021).kg_per_gb;
  const double end = projection.ForYear(2030).kg_per_gb;
  EXPECT_LT(end, start);
  // Density quadruples over the decade ([24]) but per-wafer emissions grow
  // with layer count ([50][8]), so carbon intensity only halves (~2.1x).
  EXPECT_NEAR(start / end, 2.1, 0.3);
}

// --- Carbon credits (§3) ---------------------------------------------------

TEST(CreditTest, EuCreditIsFortyPercentOfQlcPrice) {
  // Paper §3: at $111/t and 0.16 kg/GB, EU credits ~ 40% of a $45/TB QLC SSD.
  const CarbonCredit eu{"EU ETS", 111.0};
  EXPECT_NEAR(eu.CostPerTb(0.16), 17.76, 0.01);
  EXPECT_NEAR(eu.PriceIncreaseFraction(kQlcUsdPerTb2023, 0.16), 0.40, 0.01);
}

TEST(CreditTest, RepresentativeSchemesOrdered) {
  const auto schemes = RepresentativeCreditSchemes();
  ASSERT_EQ(schemes.size(), 3u);
  // The EU scheme dominates the East-Asian ones (the paper's "nascent,
  // cheaper carbon credit schemes").
  EXPECT_GT(schemes[0].usd_per_tonne, 5.0 * schemes[1].usd_per_tonne);
  EXPECT_GT(schemes[1].usd_per_tonne, schemes[2].usd_per_tonne);
}

TEST(CreditTest, DenserFlashPaysLessCarbon) {
  const FlashCarbonModel model;
  const CarbonCredit eu{"EU ETS", 111.0};
  EXPECT_LT(eu.CostPerTb(model.KgPerGb(CellTech::kPlc)),
            eu.CostPerTb(model.KgPerGb(CellTech::kTlc)));
}

}  // namespace
}  // namespace sos
